// Command pimphony-serve runs the online serving simulator: a Poisson
// arrival stream of long-context requests is load-balanced across one or
// more continuous-batching PIM decode replicas, and the SLO metrics —
// p50/p95/p99 TTFT and TBT, goodput under the configured SLO — are
// printed as a latency–throughput table. Comma-separated -rate,
// -replicas and -policy values sweep the cross product through the
// parallel sweep engine; the table is byte-identical at any -parallel
// setting (every simulation is deterministic given -seed).
//
// Examples:
//
//	pimphony-serve -system cent -model 7b-32k -trace QMSum
//	pimphony-serve -rate 50,100,200 -replicas 1,2,4 -policy round-robin,least-tokens
//	pimphony-serve -rate 100 -policy session -sessions 4 -slo-ttft 50
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"strconv"
	"strings"

	"pimphony/internal/core"
	"pimphony/internal/model"
	"pimphony/internal/serve"
	"pimphony/internal/sweep"
	"pimphony/internal/workload"
)

func splitInts(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, fmt.Errorf("bad integer %q in %q", f, s)
		}
		out = append(out, v)
	}
	return out, nil
}

func splitFloats(s string) ([]float64, error) {
	var out []float64
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil {
			return nil, fmt.Errorf("bad number %q in %q", f, s)
		}
		out = append(out, v)
	}
	return out, nil
}

func main() {
	system := flag.String("system", "cent", "system preset: cent, neupims (GPU systems are not servable)")
	modelName := flag.String("model", "7b-32k", "model: 7b-32k, 7b-128k-gqa, 72b-32k, 72b-128k-gqa")
	traceName := flag.String("trace", "QMSum", "workload: QMSum, Musique, multifieldqa, Loogle-SD, or uniform:<tokens>")
	decode := flag.Int("decode", 32, "generation length per request (tokens)")
	n := flag.Int("n", 48, "number of requests in the arrival schedule")
	rates := flag.String("rate", "50,100,200", "arrival rate(s) in requests/second (comma-separated sweeps)")
	replicas := flag.String("replicas", "1", "replica count(s) behind the load balancer (comma-separated sweeps)")
	policies := flag.String("policy", "round-robin,least-tokens",
		fmt.Sprintf("load-balancing policy(ies), comma-separated; known: %s", strings.Join(serve.PolicyNames(), ", ")))
	sessions := flag.Int("sessions", 8, "number of conversation sessions arrivals are drawn from")
	sloTTFT := flag.Float64("slo-ttft", 100, "TTFT SLO in milliseconds (0 disables)")
	sloTBT := flag.Float64("slo-tbt", 25, "TBT SLO in milliseconds (0 disables)")
	prefill := flag.Bool("prefill", false, "add offloaded prompt-prefill latency to TTFT/E2E")
	seed := flag.Int64("seed", 42, "RNG seed for request sizes and arrival times")
	parallel := flag.Int("parallel", 0, "sweep worker bound, 0 = GOMAXPROCS (1 reproduces fully sequential runs)")
	csv := flag.Bool("csv", false, "emit CSV instead of the aligned table")
	flag.Parse()

	sweep.SetDefault(*parallel)
	m, err := model.ByFlag(*modelName)
	if err != nil {
		log.Fatal(err)
	}
	var sysCfg core.Config
	switch strings.ToLower(*system) {
	case "cent":
		sysCfg = core.CENT(m, core.PIMphony())
	case "neupims":
		sysCfg = core.NeuPIMs(m, core.PIMphony())
	default:
		log.Fatalf("unknown system %q (cent, neupims)", *system)
	}

	rateList, err := splitFloats(*rates)
	if err != nil {
		log.Fatal(err)
	}
	replList, err := splitInts(*replicas)
	if err != nil {
		log.Fatal(err)
	}
	var pts []serve.CurvePoint
	for _, pol := range strings.Split(*policies, ",") {
		pol = strings.TrimSpace(pol)
		for _, r := range replList {
			for _, rate := range rateList {
				pts = append(pts, serve.CurvePoint{Policy: pol, Replicas: r, Rate: rate})
			}
		}
	}

	// One deterministic schedule per rate: the request sequence (sizes,
	// sessions) is identical across rates; only the timestamps change.
	// The arrival process gets a derived seed so the size and timing
	// RNG streams are independent, not copies of one another.
	mkArrivals := func(rate float64) ([]workload.Arrival, error) {
		gen, err := workload.GeneratorByFlag(strings.TrimSpace(*traceName), *seed)
		if err != nil {
			return nil, err
		}
		gen.DecodeLen = *decode
		return workload.PoissonArrivals(gen, rate, *sessions, *n, *seed+1)
	}

	slo := serve.SLO{TTFT: *sloTTFT / 1e3, TBT: *sloTBT / 1e3}
	title := fmt.Sprintf("serving %s / %s / %s — %d requests, decode %d, SLO ttft<=%gms tbt<=%gms (latencies in ms)",
		*system, m.Name, strings.TrimSpace(*traceName), *n, *decode, *sloTTFT, *sloTBT)
	t, err := serve.CurveTable(context.Background(), title, sysCfg, pts, slo, *prefill, mkArrivals)
	if err != nil {
		log.Fatal(err)
	}
	if *csv {
		fmt.Print(t.CSV())
		return
	}
	fmt.Print(t.String())
}
