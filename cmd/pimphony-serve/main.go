// Command pimphony-serve runs the online serving simulator: a Poisson
// arrival stream of long-context requests is load-balanced across one or
// more continuous-batching PIM decode replicas, and the SLO metrics —
// p50/p95/p99 TTFT and TBT, goodput under the configured SLO — are
// printed as a latency–throughput table. Comma-separated -rate,
// -replicas and -policy values sweep the cross product through the
// parallel sweep engine; the table is byte-identical at any -parallel
// setting (every simulation is deterministic given -seed).
//
// The -alloc and -kv-budget flags pick the KV allocation scheme (static
// T_max reservation vs DPA lazy chunks) and cap the per-replica KV pool;
// -capacity renders the Static-vs-DPA capacity gap table (admission,
// preemption and pool high-water marks) instead of the latency curve.
// -turns switches the workload to multi-turn conversations whose
// contexts re-extend every turn.
//
// The -system flag resolves through the backend registry: every
// registered system organisation is servable, including the GPU
// baseline (admitted against its paged pool) and the DIMM-PIM system;
// -list enumerates backends and experiments.
//
// The -fleet flag replaces the homogeneous replica set with a
// heterogeneous fleet under the global scheduler: comma-separated
// backend:role:count[:kv=GiB][:alloc=static|dpa] specs (roles prefill,
// decode, unified), routed by a -placement policy, with KV handoffs
// and migrations priced over the -ic-gbps/-ic-lat-us interconnect.
//
// The -arrivals flag swaps the stationary Poisson stream for a bursty
// process at the same time-averaged -rate: a two-state MMPP
// (mmpp:<burst>[:<dwell-s>]) or a sinusoidal day curve
// (diurnal:<period-s>[:<amp>]). In fleet mode, -autoscale runs the
// fleet under an autoscaling policy instead of fixed: each spec keeps
// -min-online replicas always on, scale-ups pay -warmup seconds before
// capacity lands, and the table reports the provisioning-economics
// axes (time-weighted online replicas, joules/token, $/Mtok,
// SLO-compliant tokens per dollar) next to the latency metrics.
//
// Examples:
//
//	pimphony-serve -list
//	pimphony-serve -system cent -model 7b-32k -trace QMSum
//	pimphony-serve -system gpu -rate 50,100 -replicas 1,2
//	pimphony-serve -rate 50,100,200 -replicas 1,2,4 -policy round-robin,least-tokens
//	pimphony-serve -rate 100 -policy session -sessions 4 -slo-ttft 50
//	pimphony-serve -capacity -kv-budget 32 -trace heavy:2048-30000 -rate 32,96
//	pimphony-serve -alloc static -kv-budget 32 -turns 3 -think 0.2
//	pimphony-serve -fleet neupims:prefill:1,cent:decode:3:kv=32 -trace heavy:1024-24000 -rate 2,4,8 -slo-ttft 1000
//	pimphony-serve -fleet cent:unified:4:kv=24 -placement kv-headroom,least-tokens-fit -rate 4
//	pimphony-serve -fleet cent:unified:4:kv=24 -arrivals diurnal:60:0.9 -rate 3 -autoscale fixed,slo -slo-ttft 2500
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strconv"
	"strings"

	"pimphony/internal/cluster"
	"pimphony/internal/core"
	"pimphony/internal/experiments"
	"pimphony/internal/model"
	"pimphony/internal/profiling"
	"pimphony/internal/serve"
	"pimphony/internal/sweep"
	"pimphony/internal/timing"
	"pimphony/internal/workload"
)

// printCatalog renders the shared backend/experiment catalog with the
// serving-specific policy lists between the sections.
func printCatalog() {
	experiments.Catalog(os.Stdout, func(w io.Writer) {
		fmt.Fprintln(w, "\nload-balancing policies (-policy):")
		fmt.Fprintf(w, "  %s\n", strings.Join(serve.PolicyNames(), ", "))
		fmt.Fprintln(w, "\nfleet placement policies (-placement, with -fleet):")
		fmt.Fprintf(w, "  %s\n", strings.Join(serve.PlacementNames(), ", "))
		fmt.Fprintln(w, "\nfleet replica roles (-fleet backend:role:count[:kv=GiB][:alloc=static|dpa]):")
		fmt.Fprintln(w, "  prefill — prompt processing only; hands KV to a decode replica over the interconnect")
		fmt.Fprintln(w, "  decode  — continuous-batching decode only; receives prefilled KV")
		fmt.Fprintln(w, "  unified — prefills and decodes locally (no handoff transfer)")
		fmt.Fprintln(w, "\nfleet autoscaling policies (-autoscale, with -fleet; 'fixed' keeps every replica online):")
		fmt.Fprintf(w, "  %s\n", strings.Join(serve.AutoscalerNames(), ", "))
		fmt.Fprintln(w, "\narrival processes (-arrivals, time-averaged to -rate):")
		fmt.Fprintln(w, "  poisson, mmpp:<burst>[:<dwell-s>], diurnal:<period-s>[:<amp>]")
		fmt.Fprintln(w, "\nfault injection (-mtbf/-mttr/-fault-mode/-retries, with -fleet; seeded from -seed):")
		fmt.Fprintln(w, "  crash — replica fails, loses its KV, in-flight requests retry with exponential backoff")
		fmt.Fprintln(w, "  slow  — transient 2x iteration-time slowdown; placement and stealing route around it")
		fmt.Fprintln(w, "  link  — transient 4x interconnect degradation; migration re-prices against recompute")
	})
}

func splitInts(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, fmt.Errorf("bad integer %q in %q", f, s)
		}
		out = append(out, v)
	}
	return out, nil
}

func splitFloats(s string) ([]float64, error) {
	var out []float64
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil {
			return nil, fmt.Errorf("bad number %q in %q", f, s)
		}
		out = append(out, v)
	}
	return out, nil
}

func main() {
	system := flag.String("system", "cent", "system backend: a registry name or preset alias; see -list")
	modelName := flag.String("model", "7b-32k", "model: 7b-32k, 7b-128k-gqa, 72b-32k, 72b-128k-gqa")
	traceName := flag.String("trace", "QMSum", "workload: QMSum, Musique, multifieldqa, Loogle-SD, or uniform:<tokens>")
	decode := flag.Int("decode", 32, "generation length per request (tokens)")
	n := flag.Int("n", 48, "number of requests in the arrival schedule")
	rates := flag.String("rate", "50,100,200", "arrival rate(s) in requests/second (comma-separated sweeps)")
	arrivals := flag.String("arrivals", "poisson", "arrival process: poisson, mmpp:<burst>[:<dwell-s>], diurnal:<period-s>[:<amp>] (time-averaged to -rate)")
	replicas := flag.String("replicas", "1", "replica count(s) behind the load balancer (comma-separated sweeps)")
	policies := flag.String("policy", "round-robin,least-tokens",
		fmt.Sprintf("load-balancing policy(ies), comma-separated; known: %s", strings.Join(serve.PolicyNames(), ", ")))
	sessions := flag.Int("sessions", 8, "number of conversation sessions arrivals are drawn from")
	sloTTFT := flag.Float64("slo-ttft", 100, "TTFT SLO in milliseconds (0 disables)")
	sloTBT := flag.Float64("slo-tbt", 25, "TBT SLO in milliseconds (0 disables)")
	prefill := flag.Bool("prefill", false, "add offloaded prompt-prefill latency to TTFT/E2E")
	alloc := flag.String("alloc", "", "KV allocation scheme: static or dpa (default dpa; comma-separated or empty sweeps static,dpa in -capacity mode)")
	kvBudget := flag.Float64("kv-budget", 0, "per-replica KV capacity budget in GiB (0 = the full pool left after weights)")
	capacity := flag.Bool("capacity", false, "render the Static-vs-DPA capacity gap table (admission/preemption/pool peaks) instead of the latency curve")
	fleet := flag.String("fleet", "", "heterogeneous fleet specs, comma-separated backend:role:count[:kv=GiB][:alloc=static|dpa]; replaces -system/-replicas/-policy with the global scheduler")
	placements := flag.String("placement", "kv-headroom",
		fmt.Sprintf("fleet placement policy(ies), comma-separated sweeps; known: %s", strings.Join(serve.PlacementNames(), ", ")))
	autoscale := flag.String("autoscale", "",
		fmt.Sprintf("fleet mode: autoscaling policy(ies), comma-separated sweeps of fixed, %s (empty = the fixed fleet table)", strings.Join(serve.AutoscalerNames(), ", ")))
	warmup := flag.Float64("warmup", 2, "fleet autoscaling: seconds a scaled-up replica warms before it can serve")
	minOnline := flag.Int("min-online", 1, "fleet autoscaling: replicas per spec that start online (the rest are standby)")
	migrate := flag.Bool("migrate", true, "fleet mode: migrate preempted KV to a replica with headroom when the transfer is cheaper than recompute")
	steal := flag.Bool("steal", true, "fleet mode: idle replicas steal queued requests from overloaded ones")
	icGbps := flag.Float64("ic-gbps", 64, "fleet interconnect bandwidth in GiB/s (0 disables transfers: unified fleets only)")
	icLatUs := flag.Float64("ic-lat-us", 2, "fleet interconnect latency in microseconds")
	mtbf := flag.Float64("mtbf", 0, "fleet fault injection: mean seconds between failures per decode replica (0 disables)")
	mttr := flag.Float64("mttr", 2, "fleet fault injection: mean seconds to recover a failed replica")
	faultMode := flag.String("fault-mode", "crash", "fleet fault injection: crash (lose KV, retry), slow (2x iteration slowdown), or link (4x interconnect degradation)")
	retries := flag.Int("retries", 3, "fleet fault injection: per-request retry budget after a crash (-1 = unlimited)")
	turns := flag.Int("turns", 1, "turns per conversation; >1 switches to multi-turn sessions (-sessions conversations whose contexts re-extend per turn; -rate becomes the session-start rate)")
	think := flag.Float64("think", 0.2, "mean think time in seconds between turns of a session (multi-turn only)")
	seed := flag.Int64("seed", 42, "RNG seed for request sizes and arrival times")
	parallel := flag.Int("parallel", 0, "sweep worker bound, 0 = GOMAXPROCS (1 reproduces fully sequential runs)")
	csv := flag.Bool("csv", false, "emit CSV instead of the aligned table")
	list := flag.Bool("list", false, "list registered backends and experiments with descriptions, then exit")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	if *list {
		printCatalog()
		return
	}

	stopProf, err := profiling.Start(*cpuprofile, *memprofile)
	if err != nil {
		log.Fatal(err)
	}
	defer stopProf()
	// fatal/fatalf flush the profiles before exiting (log.Fatal skips
	// defers).
	fatal := func(v ...any) { stopProf(); log.Fatal(v...) }
	fatalf := func(format string, v ...any) { stopProf(); log.Fatalf(format, v...) }

	sweep.SetDefault(*parallel)
	m, err := model.ByFlag(*modelName)
	if err != nil {
		fatal(err)
	}
	preset, err := core.PresetByFlag(*system)
	if err != nil {
		fatal(err)
	}
	sysCfg := preset.Make(m, core.PIMphony())
	if *kvBudget > 0 {
		sysCfg.KVBudgetBytes = int64(*kvBudget * float64(1<<30))
	}
	// Probe whether the backend owns its allocator (the GPU's paged
	// pool): the -alloc/-capacity static-vs-dpa toggles act through the
	// technique-selected allocator and are inapplicable there — derived
	// from the backend's admission semantics, not its name, so a future
	// fixed-allocator backend is caught too.
	probe, err := cluster.New(sysCfg)
	if err != nil {
		fatal(err)
	}
	fixedAlloc := probe.FixedAllocator()

	rateList, err := splitFloats(*rates)
	if err != nil {
		fatal(err)
	}
	replList, err := splitInts(*replicas)
	if err != nil {
		fatal(err)
	}

	// One deterministic schedule per rate: the request sequence (sizes,
	// sessions) is identical across rates; only the timestamps change.
	// The arrival process gets a derived seed so the size and timing
	// RNG streams are independent, not copies of one another. The
	// -arrivals grammar picks the process (stationary Poisson, MMPP
	// bursts, diurnal day curve) at the same time-averaged rate. With
	// -turns > 1 the schedule is -sessions multi-turn conversations
	// instead, each turn re-extending its session's context.
	arrFlag := strings.TrimSpace(*arrivals)
	if *turns > 1 && arrFlag != "" && arrFlag != "poisson" {
		fatalf("-arrivals %s does not apply to multi-turn sessions: the session-start process is Poisson and turn timing comes from -think", arrFlag)
	}
	mkArrivals := func(rate float64) ([]workload.Arrival, error) {
		gen, err := workload.GeneratorByFlag(strings.TrimSpace(*traceName), *seed)
		if err != nil {
			return nil, err
		}
		gen.DecodeLen = *decode
		if *turns > 1 {
			return workload.MultiTurnArrivals(gen, workload.MultiTurnSpec{
				Sessions:   *sessions,
				Turns:      *turns,
				Rate:       rate,
				ThinkMean:  *think,
				PromptMin:  64,
				PromptMax:  512,
				MaxContext: m.ContextWindow - *decode,
			}, *seed+1)
		}
		return workload.ArrivalsByFlag(arrFlag, gen, rate, *sessions, *n, *seed+1)
	}

	slo := serve.SLO{TTFT: *sloTTFT / 1e3, TBT: *sloTBT / 1e3}
	workDesc := fmt.Sprintf("%d requests", *n)
	if *turns > 1 {
		workDesc = fmt.Sprintf("%d sessions x %d turns", *sessions, *turns)
	}

	emit := func(t interface {
		CSV() string
		String() string
	}) {
		if *csv {
			fmt.Print(t.CSV())
			return
		}
		fmt.Print(t.String())
	}

	if *fleet != "" {
		if *capacity {
			fatal("-fleet and -capacity are mutually exclusive")
		}
		if *prefill {
			fatal("-prefill is implicit in fleet mode: every role prices its own prefill, and prefill replicas price the KV handoff too")
		}
		policySet := false
		flag.Visit(func(f *flag.Flag) { policySet = policySet || f.Name == "policy" || f.Name == "replicas" })
		if policySet {
			fatal("-policy/-replicas do not apply in fleet mode; the fleet shape comes from -fleet and routing from -placement")
		}
		defBudget := int64(*kvBudget * float64(1<<30))
		specs, err := parseFleetSpecs(*fleet, m, defBudget)
		if err != nil {
			fatal(err)
		}
		ic := timing.Interconnect{BytesPerSecond: *icGbps * float64(1<<30), LatencySeconds: *icLatUs * 1e-6}
		// -mtbf compiles a recurring fault schedule over every decode
		// replica, seeded from -seed so the timeline is reproducible.
		var faults *serve.FaultPlan
		if *mtbf > 0 {
			fm, err := serve.FaultModeByName(strings.TrimSpace(*faultMode))
			if err != nil {
				fatal(err)
			}
			faults = &serve.FaultPlan{
				Seed: uint64(*seed),
				Groups: []serve.FaultGroup{{
					Spec: -1, Mode: fm, MTBFSeconds: *mtbf, MTTRSeconds: *mttr,
					Slowdown: 2, LinkFactor: 4,
				}},
				MaxRetries:     *retries,
				BackoffSeconds: 0.25,
			}
		}
		if *autoscale != "" {
			// The autoscale table has no placement column: like -capacity
			// with -policy, it sweeps policies under one placement.
			if strings.Contains(*placements, ",") {
				fatalf("-autoscale sweeps autoscaling policies under a single -placement; got %q", *placements)
			}
			// Decode-capable specs keep -min-online replicas always on
			// and pay -warmup per scale-up; prefill replicas are not
			// autoscaled (Min/WarmupSeconds are decode-pool knobs).
			ascSpecs := make([]serve.ReplicaSpec, len(specs))
			copy(ascSpecs, specs)
			for i := range ascSpecs {
				if ascSpecs[i].Role != serve.RolePrefill {
					ascSpecs[i].Min = *minOnline
					ascSpecs[i].WarmupSeconds = *warmup
				}
			}
			var pts []serve.AutoscalePoint
			for _, mode := range strings.Split(*autoscale, ",") {
				mode = strings.TrimSpace(mode)
				if mode == "fixed" {
					mode = ""
				}
				for _, rate := range rateList {
					name := arrFlag
					if name == "" {
						name = "poisson"
					}
					if len(rateList) > 1 {
						name = fmt.Sprintf("%s@%g", name, rate)
					}
					rate := rate
					pts = append(pts, serve.AutoscalePoint{
						Name: name, Specs: ascSpecs, AutoscalerName: mode,
						PlacementName: strings.TrimSpace(*placements),
						Cfg:           serve.Config{Interconnect: ic, Migrate: *migrate, Steal: *steal, Faults: faults},
						Arrivals:      func() ([]workload.Arrival, error) { return mkArrivals(rate) },
					})
				}
			}
			title := fmt.Sprintf("autoscale %s / %s / %s / %s — %s, decode %d, min %d, warm-up %gs, SLO ttft<=%gms tbt<=%gms (ttft-p95 in ms)",
				strings.TrimSpace(*fleet), m.Name, strings.TrimSpace(*traceName), arrFlag, workDesc, *decode, *minOnline, *warmup, *sloTTFT, *sloTBT)
			t, err := serve.AutoscaleTable(context.Background(), title, pts, slo)
			if err != nil {
				fatal(err)
			}
			emit(t)
			return
		}
		var pts []serve.FleetPoint
		for _, pl := range strings.Split(*placements, ",") {
			pl = strings.TrimSpace(pl)
			for _, rate := range rateList {
				pts = append(pts, serve.FleetPoint{
					Name: pl, Specs: specs, Rate: rate, PlacementName: pl,
					Cfg: serve.Config{Interconnect: ic, Migrate: *migrate, Steal: *steal, Faults: faults},
				})
			}
		}
		title := fmt.Sprintf("fleet %s / %s / %s — %s, decode %d, ic %ggbps+%gus, SLO ttft<=%gms tbt<=%gms (latencies in ms)",
			strings.TrimSpace(*fleet), m.Name, strings.TrimSpace(*traceName), workDesc, *decode, *icGbps, *icLatUs, *sloTTFT, *sloTBT)
		t, err := serve.FleetTable(context.Background(), title, pts, slo, mkArrivals)
		if err != nil {
			fatal(err)
		}
		emit(t)
		return
	}

	if *autoscale != "" {
		fatal("-autoscale requires fleet mode (set -fleet); the homogeneous replica set is fixed")
	}
	if *mtbf > 0 {
		fatal("-mtbf requires fleet mode (set -fleet); fault injection targets fleet replicas")
	}

	if *capacity {
		if *prefill {
			fatal("-prefill is not supported in -capacity mode (the capacity table reports decode-side latencies only)")
		}
		if fixedAlloc {
			fatalf("-capacity compares the static and dpa KV allocators; the %s backend admits against its own fixed pool", sysCfg.Backend)
		}
		allocList := strings.TrimSpace(*alloc)
		if allocList == "" {
			allocList = "static,dpa"
		}
		var pts []serve.CapacityPoint
		for _, al := range strings.Split(allocList, ",") {
			al = strings.TrimSpace(al)
			for _, r := range replList {
				for _, rate := range rateList {
					pts = append(pts, serve.CapacityPoint{Alloc: al, Replicas: r, Rate: rate})
				}
			}
		}
		// The capacity table sweeps allocators under one fixed policy:
		// a multi-policy sweep would need a policy column it does not
		// have. The curve-mode default (two policies) silently becomes
		// round-robin; an explicit multi-policy list is an error.
		policySet := false
		flag.Visit(func(f *flag.Flag) { policySet = policySet || f.Name == "policy" })
		policy := "round-robin"
		if policySet {
			if strings.Contains(*policies, ",") {
				fatalf("-capacity sweeps allocators under a single -policy; got %q", *policies)
			}
			policy = strings.TrimSpace(*policies)
		}
		title := fmt.Sprintf("capacity %s / %s / %s — %s, decode %d, KV budget %s, SLO ttft<=%gms tbt<=%gms (latencies in ms)",
			*system, m.Name, strings.TrimSpace(*traceName), workDesc, *decode, budgetDesc(sysCfg.KVBudgetBytes), *sloTTFT, *sloTBT)
		t, err := serve.CapacityTable(context.Background(), title, sysCfg, policy, pts, slo, mkArrivals)
		if err != nil {
			fatal(err)
		}
		emit(t)
		return
	}

	switch strings.TrimSpace(*alloc) {
	case "", "dpa":
		sysCfg.Tech.DPA = true
	case "static":
		sysCfg.Tech.DPA = false
	default:
		fatalf("unknown allocator %q (static, dpa; comma-separated sweeps need -capacity)", *alloc)
	}
	if fixedAlloc && strings.TrimSpace(*alloc) != "" {
		fatalf("-alloc selects the technique KV allocator; the %s backend always admits against its own fixed pool", sysCfg.Backend)
	}
	var pts []serve.CurvePoint
	for _, pol := range strings.Split(*policies, ",") {
		pol = strings.TrimSpace(pol)
		for _, r := range replList {
			for _, rate := range rateList {
				pts = append(pts, serve.CurvePoint{Policy: pol, Replicas: r, Rate: rate})
			}
		}
	}
	title := fmt.Sprintf("serving %s / %s / %s — %s, decode %d, SLO ttft<=%gms tbt<=%gms (latencies in ms)",
		*system, m.Name, strings.TrimSpace(*traceName), workDesc, *decode, *sloTTFT, *sloTBT)
	t, err := serve.CurveTable(context.Background(), title, sysCfg, pts, slo, *prefill, mkArrivals)
	if err != nil {
		fatal(err)
	}
	emit(t)
}

// budgetDesc renders the KV budget for titles.
func budgetDesc(b int64) string {
	if b <= 0 {
		return "full pool"
	}
	return fmt.Sprintf("%.3g GiB/replica", float64(b)/float64(1<<30))
}

// parseFleetSpecs parses the -fleet grammar: comma-separated
// backend:role:count specs with optional :kv=GiB and :alloc=static|dpa
// suffixes in any order. defBudget (from -kv-budget, 0 = full pool)
// applies to specs without an explicit kv= override.
func parseFleetSpecs(s string, m model.Config, defBudget int64) ([]serve.ReplicaSpec, error) {
	var specs []serve.ReplicaSpec
	for _, raw := range strings.Split(s, ",") {
		parts := strings.Split(strings.TrimSpace(raw), ":")
		if len(parts) < 3 {
			return nil, fmt.Errorf("fleet spec %q: want backend:role:count[:kv=GiB][:alloc=static|dpa]", raw)
		}
		preset, err := core.PresetByFlag(parts[0])
		if err != nil {
			return nil, fmt.Errorf("fleet spec %q: %w", raw, err)
		}
		var role serve.Role
		switch strings.ToLower(strings.TrimSpace(parts[1])) {
		case "prefill", "pre":
			role = serve.RolePrefill
		case "decode", "dec":
			role = serve.RoleDecode
		case "unified", "uni":
			role = serve.RoleUnified
		default:
			return nil, fmt.Errorf("fleet spec %q: unknown role %q (prefill, decode, unified)", raw, parts[1])
		}
		count, err := strconv.Atoi(strings.TrimSpace(parts[2]))
		if err != nil || count <= 0 {
			return nil, fmt.Errorf("fleet spec %q: bad replica count %q", raw, parts[2])
		}
		cfg := preset.Make(m, core.PIMphony())
		if defBudget > 0 {
			cfg.KVBudgetBytes = defBudget
		}
		for _, opt := range parts[3:] {
			opt = strings.TrimSpace(opt)
			switch {
			case strings.HasPrefix(opt, "kv="):
				gib, err := strconv.ParseFloat(opt[len("kv="):], 64)
				if err != nil || gib <= 0 {
					return nil, fmt.Errorf("fleet spec %q: bad KV budget %q", raw, opt)
				}
				cfg.KVBudgetBytes = int64(gib * float64(1<<30))
			case strings.HasPrefix(opt, "alloc="):
				switch opt[len("alloc="):] {
				case "static":
					cfg.Tech.DPA = false
				case "dpa":
					cfg.Tech.DPA = true
				default:
					return nil, fmt.Errorf("fleet spec %q: unknown allocator %q (static, dpa)", raw, opt)
				}
			default:
				return nil, fmt.Errorf("fleet spec %q: unknown option %q (kv=GiB, alloc=static|dpa)", raw, opt)
			}
		}
		specs = append(specs, serve.ReplicaSpec{System: cfg, Count: count, Role: role})
	}
	return specs, nil
}
