// Command pimphony-sim runs a single end-to-end decode simulation with
// explicit knobs, printing throughput, utilization and energy.
//
// Examples:
//
//	pimphony-sim -system cent -model 7b-32k -trace QMSum
//	pimphony-sim -system neupims -model 72b-128k-gqa -trace multifieldqa -tcp=false
//	pimphony-sim -system gpu -model 7b-32k -trace QMSum
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"pimphony/internal/core"
	"pimphony/internal/model"
	"pimphony/internal/workload"
)

func modelByFlag(name string) (model.Config, error) {
	switch strings.ToLower(name) {
	case "7b-32k":
		return model.LLM7B32K(), nil
	case "7b-128k-gqa":
		return model.LLM7B128KGQA(), nil
	case "72b-32k":
		return model.LLM72B32K(), nil
	case "72b-128k-gqa":
		return model.LLM72B128KGQA(), nil
	default:
		return model.Config{}, fmt.Errorf("unknown model %q (7b-32k, 7b-128k-gqa, 72b-32k, 72b-128k-gqa)", name)
	}
}

func main() {
	system := flag.String("system", "cent", "system preset: cent, neupims, gpu")
	modelName := flag.String("model", "7b-32k", "model: 7b-32k, 7b-128k-gqa, 72b-32k, 72b-128k-gqa")
	traceName := flag.String("trace", "QMSum", "workload: QMSum, Musique, multifieldqa, Loogle-SD, or uniform:<tokens>")
	tcp := flag.Bool("tcp", true, "enable token-centric partitioning")
	dcs := flag.Bool("dcs", true, "enable dynamic command scheduling")
	dpa := flag.Bool("dpa", true, "enable dynamic PIM access (lazy KV allocation)")
	tp := flag.Int("tp", 0, "override tensor parallelism (0 = preset)")
	pp := flag.Int("pp", 0, "override pipeline parallelism (0 = preset)")
	window := flag.Int("window", 8, "decode steps to simulate")
	pool := flag.Int("pool", 64, "candidate request pool size")
	seed := flag.Int64("seed", 42, "workload RNG seed")
	flag.Parse()

	m, err := modelByFlag(*modelName)
	if err != nil {
		log.Fatal(err)
	}
	tech := core.Technique{TCP: *tcp, DCS: *dcs, DPA: *dpa}
	var cfg core.Config
	switch strings.ToLower(*system) {
	case "cent":
		cfg = core.CENT(m, tech)
	case "neupims":
		cfg = core.NeuPIMs(m, tech)
	case "gpu":
		cfg = core.GPU(m)
	default:
		log.Fatalf("unknown system %q (cent, neupims, gpu)", *system)
	}
	if *tp > 0 && *pp > 0 {
		cfg.TP, cfg.PP = *tp, *pp
	}
	cfg.DecodeWindow = *window

	var gen *workload.Generator
	if rest, ok := strings.CutPrefix(*traceName, "uniform:"); ok {
		var tokens int
		if _, err := fmt.Sscanf(rest, "%d", &tokens); err != nil {
			log.Fatalf("bad uniform trace %q", *traceName)
		}
		gen = workload.Uniform(tokens, *seed)
	} else {
		tr, err := workload.ByName(*traceName)
		if err != nil {
			log.Fatal(err)
		}
		gen = workload.NewGenerator(tr, *seed)
	}

	sys, err := core.NewSystem(cfg)
	if err != nil {
		log.Fatal(err)
	}
	rep, err := sys.Serve(gen.Batch(*pool))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("system           %s (%s)\n", cfg.Name, rep.Kind)
	if cfg.Kind != 2 { // not GPU
		fmt.Printf("parallelism      TP=%d PP=%d over %d modules\n", cfg.TP, cfg.PP, cfg.Modules)
	}
	fmt.Printf("techniques       TCP=%v DCS=%v DPA=%v\n", *tcp, *dcs, *dpa)
	fmt.Printf("batch            %d requests\n", rep.Batch)
	fmt.Printf("decode window    %d steps in %.3f s\n", rep.Steps, rep.TotalSeconds)
	fmt.Printf("throughput       %.1f tokens/s\n", rep.Throughput)
	if rep.TBTSeconds > 0 {
		fmt.Printf("time/token       %.2f ms (per-request TBT)\n", 1e3*rep.TBTSeconds)
	}
	if rep.PIMUtil > 0 {
		fmt.Printf("PIM MAC util     %.1f%%\n", 100*rep.PIMUtil)
		fmt.Printf("attention share  %.1f%% of iteration time\n", 100*rep.AttnTimeShare)
		fmt.Printf("capacity util    %.1f%%\n", 100*rep.CapacityUtil)
		att := rep.AttnEnergy
		fmt.Printf("attn energy      %.1f uJ (MAC %.0f%%, IO %.0f%%, background %.0f%%, else %.0f%%)\n",
			att.Total()/1e6, 100*att.MAC/att.Total(), 100*att.IO/att.Total(),
			100*att.Background/att.Total(), 100*att.Else/att.Total())
	}
}
