// Command pimphony-sim runs end-to-end decode simulations with explicit
// knobs, printing throughput, utilization and energy. Comma-separated
// -system/-model/-trace values sweep the full cross product through the
// parallel sweep engine and print one summary row per point. The
// -system flag resolves through the backend registry: any registered
// system organisation (pim-only, xpu+pim, gpu, dimm-pim) or its preset
// alias (cent, neupims, a100, l3) is accepted; -list enumerates them.
//
// Examples:
//
//	pimphony-sim -list
//	pimphony-sim -system cent -model 7b-32k -trace QMSum
//	pimphony-sim -system neupims -model 72b-128k-gqa -trace multifieldqa -tcp=false
//	pimphony-sim -system cent,gpu,dimm-pim -model 7b-32k,7b-128k-gqa -trace QMSum -parallel 8
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"pimphony/internal/backend"
	"pimphony/internal/core"
	"pimphony/internal/experiments"
	"pimphony/internal/model"
	"pimphony/internal/profiling"
	"pimphony/internal/sweep"
	"pimphony/internal/tablefmt"
	"pimphony/internal/workload"
)

// point is one (system, model, trace) grid cell.
type point struct {
	system string
	cfg    core.Config
	trace  string
	reqs   []workload.Request
}

func main() {
	system := flag.String("system", "cent", "system backend(s): registry names or preset aliases; see -list (comma-separated sweeps the grid)")
	modelName := flag.String("model", "7b-32k", "model(s): 7b-32k, 7b-128k-gqa, 72b-32k, 72b-128k-gqa (comma-separated)")
	traceName := flag.String("trace", "QMSum", "workload(s): QMSum, Musique, multifieldqa, Loogle-SD, or uniform:<tokens> (comma-separated)")
	tcp := flag.Bool("tcp", true, "enable token-centric partitioning")
	dcs := flag.Bool("dcs", true, "enable dynamic command scheduling")
	dpa := flag.Bool("dpa", true, "enable dynamic PIM access (lazy KV allocation)")
	tp := flag.Int("tp", 0, "override tensor parallelism (0 = preset)")
	pp := flag.Int("pp", 0, "override pipeline parallelism (0 = preset)")
	window := flag.Int("window", 8, "decode steps to simulate")
	pool := flag.Int("pool", 64, "candidate request pool size")
	seed := flag.Int64("seed", 42, "workload RNG seed")
	parallel := flag.Int("parallel", 0, "worker bound per sweep level, 0 = GOMAXPROCS (nested sweeps each apply their own bound; 1 reproduces fully sequential runs)")
	list := flag.Bool("list", false, "list registered backends and experiments with descriptions, then exit")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	if *list {
		experiments.Catalog(os.Stdout, nil)
		return
	}

	stopProf, err := profiling.Start(*cpuprofile, *memprofile)
	if err != nil {
		log.Fatal(err)
	}
	defer stopProf()
	// fatal flushes the profiles before exiting (log.Fatal skips defers).
	fatal := func(v ...any) { stopProf(); log.Fatal(v...) }

	sweep.SetDefault(*parallel)
	tech := core.Technique{TCP: *tcp, DCS: *dcs, DPA: *dpa}

	// One request pool per trace, shared read-only by every (system,
	// model) cell of the grid.
	poolByTrace := map[string][]workload.Request{}
	for _, tName := range strings.Split(*traceName, ",") {
		tName = strings.TrimSpace(tName)
		if _, ok := poolByTrace[tName]; ok {
			continue
		}
		gen, err := workload.GeneratorByFlag(tName, *seed)
		if err != nil {
			fatal(err)
		}
		poolByTrace[tName] = gen.Batch(*pool)
	}

	var pts []point
	for _, sysName := range strings.Split(*system, ",") {
		preset, err := core.PresetByFlag(sysName)
		if err != nil {
			fatal(err)
		}
		for _, mName := range strings.Split(*modelName, ",") {
			m, err := model.ByFlag(strings.TrimSpace(mName))
			if err != nil {
				fatal(err)
			}
			cfg := preset.Make(m, tech)
			if *tp > 0 && *pp > 0 {
				cfg.TP, cfg.PP = *tp, *pp
			}
			cfg.DecodeWindow = *window
			for _, tName := range strings.Split(*traceName, ",") {
				tName = strings.TrimSpace(tName)
				pts = append(pts, point{
					system: strings.TrimSpace(sysName),
					cfg:    cfg,
					trace:  tName,
					reqs:   poolByTrace[tName],
				})
			}
		}
	}

	// The grid points are independent simulations; run them through the
	// sweep engine (reports come back in grid order).
	reps, err := sweep.Run(context.Background(), pts, func(ctx context.Context, p point) (*core.Report, error) {
		sys, err := core.NewSystem(p.cfg)
		if err != nil {
			return nil, err
		}
		return sys.ServeCtx(ctx, p.reqs)
	})
	if err != nil {
		fatal(err)
	}

	if len(pts) == 1 {
		printSingle(pts[0].cfg, reps[0], *tcp, *dcs, *dpa)
		return
	}
	t := tablefmt.New(fmt.Sprintf("sweep — %d points (window %d, pool %d)", len(pts), *window, *pool),
		"system", "model", "trace", "batch", "tok/s", "tbt-ms", "pim-util%", "cap-util%")
	for i, p := range pts {
		rep := reps[i]
		t.AddRow(p.system, p.cfg.Model.Name, p.trace, rep.Batch, rep.Throughput,
			1e3*rep.TBTSeconds, 100*rep.PIMUtil, 100*rep.CapacityUtil)
	}
	fmt.Print(t.String())
}

func printSingle(cfg core.Config, rep *core.Report, tcp, dcs, dpa bool) {
	fmt.Printf("system           %s (%s)\n", cfg.Name, rep.Backend)
	if cfg.Backend != backend.GPU {
		fmt.Printf("parallelism      TP=%d PP=%d over %d modules\n", cfg.TP, cfg.PP, cfg.Modules)
	}
	fmt.Printf("techniques       TCP=%v DCS=%v DPA=%v\n", tcp, dcs, dpa)
	fmt.Printf("batch            %d requests\n", rep.Batch)
	fmt.Printf("decode window    %d steps in %.3f s\n", rep.Steps, rep.TotalSeconds)
	fmt.Printf("throughput       %.1f tokens/s\n", rep.Throughput)
	if rep.TBTSeconds > 0 {
		fmt.Printf("time/token       %.2f ms (per-request TBT)\n", 1e3*rep.TBTSeconds)
	}
	if rep.PIMUtil > 0 {
		fmt.Printf("PIM MAC util     %.1f%%\n", 100*rep.PIMUtil)
		fmt.Printf("attention share  %.1f%% of iteration time\n", 100*rep.AttnTimeShare)
		fmt.Printf("capacity util    %.1f%%\n", 100*rep.CapacityUtil)
		att := rep.AttnEnergy
		fmt.Printf("attn energy      %.1f uJ (MAC %.0f%%, IO %.0f%%, background %.0f%%, else %.0f%%)\n",
			att.Total()/1e6, 100*att.MAC/att.Total(), 100*att.IO/att.Total(),
			100*att.Background/att.Total(), 100*att.Else/att.Total())
	}
}
