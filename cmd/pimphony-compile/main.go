// Command pimphony-compile runs the compiler pipeline on a model: it
// builds the decoder-layer IR, detects the PIM-amenable kernels, lowers
// them to PIM instruction programs, and prints the instruction-footprint
// comparison between the conventional static unrolling and the DPA
// encoding (the paper's Fig. 10c).
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"pimphony/internal/compiler"
	"pimphony/internal/isa"
	"pimphony/internal/model"
	"pimphony/internal/tablefmt"
	"pimphony/internal/timing"
)

func main() {
	modelName := flag.String("model", "7b-128k-gqa", "model: 7b-32k, 7b-128k-gqa, 72b-32k, 72b-128k-gqa")
	tcp := flag.Bool("tcp", true, "lower with token-centric channel masks")
	tokens := flag.Int("tokens", 65536, "context length to expand at")
	disasm := flag.Bool("disasm", false, "print the disassembly of every lowered attention program")
	flag.Parse()

	var m model.Config
	switch strings.ToLower(*modelName) {
	case "7b-32k":
		m = model.LLM7B32K()
	case "7b-128k-gqa":
		m = model.LLM7B128KGQA()
	case "72b-32k":
		m = model.LLM72B32K()
	case "72b-128k-gqa":
		m = model.LLM72B128KGQA()
	default:
		log.Fatalf("unknown model %q", *modelName)
	}

	tgt := compiler.Target{Dev: timing.AiM16().WithChannels(32), TCP: *tcp}
	c, err := compiler.Compile(m, tgt)
	if err != nil {
		log.Fatal(err)
	}

	kt := tablefmt.New(fmt.Sprintf("Detected kernels — %s", m.Name),
		"label", "class", "din", "dout", "head-dim", "token-dep")
	for _, k := range c.Kernels {
		kt.AddRow(k.Label, k.Class.String(), k.DIn, k.DOut, k.HeadDim, k.TokenDependent)
	}
	fmt.Print(kt)
	fmt.Println()

	pt := tablefmt.New("Lowered attention programs (DPA encoding)",
		"program", "inst-words", "bytes", "mac-cmds@tokens", "io-cmds@tokens")
	for _, p := range c.DPAttn {
		counts, err := p.CountExpanded(*tokens)
		if err != nil {
			log.Fatal(err)
		}
		pt.AddRow(p.Name, p.Len(), p.EncodedSize(),
			counts[isa.MAC], counts[isa.WRINP]+counts[isa.RDOUT])
	}
	fmt.Print(pt)
	fmt.Println()

	if *disasm {
		for _, p := range c.DPAttn {
			fmt.Println(p.Disassemble())
		}
	}

	ft := tablefmt.New("Instruction footprint: static unrolling vs DPA (per layer)",
		"context", "static-bytes", "dpa-bytes", "ratio")
	for _, ctx := range []int{32 << 10, 128 << 10, 512 << 10, 1 << 20} {
		st, err := c.StaticFootprint(ctx)
		if err != nil {
			log.Fatal(err)
		}
		dpa := c.DPAFootprint()
		ft.AddRow(ctx, st, dpa, float64(st)/float64(dpa))
	}
	fmt.Print(ft)
}
