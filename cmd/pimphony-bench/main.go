// Command pimphony-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	pimphony-bench -list
//	pimphony-bench -run fig13
//	pimphony-bench -run all [-csv]
//
// Every experiment prints the same rows/series the paper reports;
// EXPERIMENTS.md records the paper-vs-measured comparison.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"pimphony/internal/experiments"
)

func main() {
	list := flag.Bool("list", false, "list experiment ids and exit")
	run := flag.String("run", "all", "experiment id to run, or 'all'")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}

	ids := experiments.IDs()
	if *run != "all" {
		ids = []string{*run}
	}
	failed := 0
	for _, id := range ids {
		start := time.Now()
		res, err := experiments.Run(id)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiment %s failed: %v\n", id, err)
			failed++
			continue
		}
		if *csv {
			fmt.Printf("# %s — %s\n", res.ID, res.Title)
			for _, t := range res.Tables {
				fmt.Print(t.CSV())
			}
		} else {
			fmt.Print(res)
		}
		fmt.Printf("(%s in %.1fs)\n\n", id, time.Since(start).Seconds())
	}
	if failed > 0 {
		os.Exit(1)
	}
}
