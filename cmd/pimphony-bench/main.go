// Command pimphony-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	pimphony-bench -list
//	pimphony-bench -run fig13
//	pimphony-bench -run all [-csv] [-parallel 8]
//
// Gate mode (the CI bench-regression gate) times the serving-path
// experiments, hashes their tables and compares against a checked-in
// baseline; `make bench-check` mirrors what CI runs:
//
//	pimphony-bench -short -gate-emit BENCH_serve.json
//	pimphony-bench -short -gate-emit BENCH_serve.json -gate-check bench/baseline.json
//
// Every experiment prints the same rows/series the paper reports;
// docs/EXPERIMENTS.md catalogs the experiments and metrics. Experiments
// (and the sweep points inside each experiment) fan out across -parallel
// workers; output order and content are identical at every setting.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sync"
	"time"

	"pimphony/internal/benchgate"
	"pimphony/internal/experiments"
	"pimphony/internal/profiling"
	"pimphony/internal/sweep"
)

// outcome is one experiment's run, successful or not: the binary keeps
// going past failures and reports them all, so errors ride inside the
// sweep result instead of cancelling it.
type outcome struct {
	id  string
	res *experiments.Result
	err error
	dur time.Duration
}

func main() {
	os.Exit(run())
}

// run carries main's body so deferred cleanup (profile flushing) still
// happens on failing exits.
func run() int {
	list := flag.Bool("list", false, "list experiment ids and exit")
	run := flag.String("run", "all", "experiment id to run, or 'all'")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	short := flag.Bool("short", false, "use the scaled-down CI grids")
	parallel := flag.Int("parallel", 0, "worker bound per sweep level, 0 = GOMAXPROCS (nested sweeps each apply their own bound; 1 reproduces fully sequential runs)")
	gateEmit := flag.String("gate-emit", "", "write the bench-regression gate file (timings + table hashes for the serving experiments) to this path")
	gateCheck := flag.String("gate-check", "", "compare the gate measurements against this baseline file and exit non-zero on >tolerance regression or table drift")
	gateTol := flag.Float64("gate-tol", 0.20, "relative runtime regression tolerance for -gate-check")
	gateRuns := flag.Int("gate-runs", 3, "timing repetitions per gated experiment (best run is kept)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	stopProf, err := profiling.Start(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	defer stopProf()

	sweep.SetDefault(*parallel)
	experiments.SetShort(*short)

	if *gateEmit != "" || *gateCheck != "" {
		return runGate(*gateEmit, *gateCheck, *gateTol, *gateRuns)
	}

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return 0
	}

	ids := experiments.IDs()
	if *run != "all" {
		ids = []string{*run}
	}
	emit := func(o outcome) bool {
		if o.err != nil {
			fmt.Fprintf(os.Stderr, "experiment %s failed: %v\n", o.id, o.err)
			return false
		}
		if *csv {
			fmt.Printf("# %s — %s\n", o.res.ID, o.res.Title)
			for _, t := range o.res.Tables {
				fmt.Print(t.CSV())
			}
		} else {
			fmt.Print(o.res)
		}
		fmt.Printf("(%s in %.1fs)\n\n", o.id, o.dur.Seconds())
		return true
	}
	// Stream results in registry order as their prefix completes: with
	// -parallel 1 this prints each experiment the moment it finishes
	// (the old sequential behaviour); at higher parallelism an
	// experiment prints as soon as everything before it has.
	outs := make([]outcome, len(ids))
	done := make([]bool, len(ids))
	var mu sync.Mutex
	printed, failed := 0, 0
	idxs := make([]int, len(ids))
	for i := range idxs {
		idxs[i] = i
	}
	_, _ = sweep.Run(context.Background(), idxs, func(_ context.Context, i int) (struct{}, error) {
		start := time.Now()
		res, err := experiments.Run(ids[i])
		o := outcome{id: ids[i], res: res, err: err, dur: time.Since(start)}
		mu.Lock()
		outs[i], done[i] = o, true
		for printed < len(ids) && done[printed] {
			if !emit(outs[printed]) {
				failed++
			}
			printed++
		}
		mu.Unlock()
		return struct{}{}, nil
	})
	if failed > 0 {
		return 1
	}
	return 0
}

// runGate measures the gated experiments and optionally writes the
// artifact and/or checks it against a baseline, returning the exit code.
func runGate(emitPath, checkPath string, tol float64, runs int) int {
	cur, err := benchgate.Collect(benchgate.DefaultIDs(), runs)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	if emitPath != "" {
		if err := cur.Save(emitPath); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		fmt.Printf("wrote %s (%d experiments, calib %.1fms)\n",
			emitPath, len(cur.Experiments), float64(cur.CalibNs)/1e6)
	}
	if checkPath == "" {
		return 0
	}
	base, err := benchgate.Load(checkPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	if problems := benchgate.Compare(base, cur, tol); len(problems) > 0 {
		fmt.Fprintf(os.Stderr, "bench-regression gate FAILED vs %s:\n", checkPath)
		for _, p := range problems {
			fmt.Fprintf(os.Stderr, "  - %s\n", p)
		}
		return 1
	}
	fmt.Printf("bench-regression gate passed vs %s (tolerance %.0f%%)\n", checkPath, 100*tol)
	return 0
}
