// Dcs_timeline renders the paper's Fig. 7 worked example as an ASCII
// timing diagram: the (1x48)*(48x32) GEMV command stack under the static
// controller (34 cycles) and under DCS (22 cycles), showing per-command
// issue slots and the overlap DCS unlocks.
package main

import (
	"fmt"
	"log"
	"strings"

	"pimphony/internal/pim"
	"pimphony/internal/sched"
	"pimphony/internal/timing"
)

func fig7Stack() *pim.Stack {
	s := pim.NewStack(64, 32)
	s.WrInp(0)
	s.WrInp(1)
	s.WrInp(2)
	s.Mac(0, 0, 0, 0)
	s.Mac(1, 0, 0, 1)
	s.Mac(2, 0, 0, 2)
	s.RdOut(0)
	s.Mac(0, 1, 0, 3)
	s.Mac(1, 1, 0, 4)
	s.Mac(2, 1, 0, 5)
	s.RdOut(1)
	return s
}

// label gives each command the paper's W/M/R naming.
func label(c pim.Command) string {
	switch c.Kind {
	case pim.WRINP:
		return fmt.Sprintf("W%d", c.ID)
	case pim.MAC:
		return fmt.Sprintf("M%d", c.ID)
	case pim.RDOUT:
		return fmt.Sprintf("R%d", c.ID)
	default:
		return fmt.Sprintf("?%d", c.ID)
	}
}

func render(name string, stack *pim.Stack, res *sched.Result) {
	fmt.Printf("%s — %d cycles (MAC util %.0f%%)\n", name, res.Total, 100*res.MACUtilization())
	width := int(res.Total) + 4
	lanes := map[string][]pim.Command{"I/O ": nil, "MAC ": nil}
	for _, c := range stack.Cmds {
		if c.Kind == pim.MAC {
			lanes["MAC "] = append(lanes["MAC "], c)
		} else {
			lanes["I/O "] = append(lanes["I/O "], c)
		}
	}
	for _, lane := range []string{"I/O ", "MAC "} {
		row := make([]byte, width)
		for i := range row {
			row[i] = '.'
		}
		for _, c := range lanes[lane] {
			t := int(res.Issue[c.ID])
			l := label(c)
			copy(row[t:], l)
		}
		fmt.Printf("  %s |%s|\n", lane, string(row))
	}
	axis := make([]byte, width)
	for i := range axis {
		if i%5 == 0 {
			axis[i] = '+'
		} else {
			axis[i] = '-'
		}
	}
	fmt.Printf("  cyc  |%s|\n\n", string(axis))
}

func main() {
	dev := timing.AiM16()
	dev.TRFC = 0 // the worked example counts raw pipeline cycles

	fmt.Println("Fig. 7 — (1x48)*(48x32) GEMV: 3 WR-INP, 6 MAC, 2 RD-OUT")
	fmt.Println(strings.Repeat("=", 60))

	st, err := (&sched.Static{Dev: dev}).Schedule(fig7Stack())
	if err != nil {
		log.Fatal(err)
	}
	render("static controller (paper: 34 cycles)", fig7Stack(), st)

	dc, err := (&sched.DCS{Dev: dev}).Schedule(fig7Stack())
	if err != nil {
		log.Fatal(err)
	}
	render("DCS controller (paper: 22 cycles)", fig7Stack(), dc)

	fmt.Printf("latency saved by DCS: %d cycles (%.0f%%)\n",
		st.Total-dc.Total, 100*float64(st.Total-dc.Total)/float64(st.Total))
	fmt.Println("\nkey moves (Sec. V-C): M3 issues as soon as W0 completes instead of")
	fmt.Println("waiting for W2; M7 issues before R6 because they are independent;")
	fmt.Println("consecutive MACs on one OBuf entry chain at tCCDS via the is-MAC flag.")
}
