// Partition_viz renders the paper's Fig. 6 comparison as ASCII channel
// activity maps: head-first partitioning (HFP) versus token-centric
// partitioning (TCP) under tensor and pipeline parallelism, for the
// two-request, two-head, four-channel example.
package main

import (
	"fmt"
	"log"

	"pimphony/internal/mapping"
)

func bar(tokens, scale int) string {
	n := tokens / scale
	if n > 40 {
		n = 40
	}
	s := ""
	for i := 0; i < n; i++ {
		s += "#"
	}
	if tokens > 0 && n == 0 {
		s = "#"
	}
	return s
}

func showAssignment(title string, a *mapping.Assignment) {
	fmt.Printf("%s (balance %.0f%%, %d/%d channels active)\n",
		title, 100*a.Utilization(), a.ActiveChannels(), len(a.Channels))
	loads := a.TokenLoads()
	for ch, works := range a.Channels {
		desc := ""
		for _, w := range works {
			desc += fmt.Sprintf(" R%d.h%d:%dk", w.Req, w.KVHead, w.Tokens/1000)
		}
		fmt.Printf("  CH%d |%-40s|%s\n", ch, bar(loads[ch], 1024), desc)
	}
	fmt.Println()
}

func main() {
	// The long-context regime of Fig. 6: request 1 has twice the context
	// of request 2, two KV heads, four channels in one module.
	reqs := []mapping.Request{
		{ID: 1, Tokens: 32 << 10},
		{ID: 2, Tokens: 16 << 10},
	}

	fmt.Println("Fig. 6 — KV-cache partitioning across PIM channels")
	fmt.Println("(R = request, h = KV head; bar length = tokens mapped)")
	fmt.Println()

	fmt.Println("--- Tensor parallelism: both requests resident ---")
	h, err := mapping.HFP{}.Assign(reqs, 2, 1, 4)
	if err != nil {
		log.Fatal(err)
	}
	showAssignment("HFP (prior work): whole heads per channel", h)
	c, err := mapping.TCP{}.Assign(reqs, 2, 1, 4)
	if err != nil {
		log.Fatal(err)
	}
	showAssignment("TCP (PIMphony): token slices on every channel", c)

	fmt.Println("--- Pipeline parallelism: one request per stage step ---")
	for _, s := range []mapping.Strategy{mapping.HFP{}, mapping.TCP{}} {
		grid, err := mapping.PipelineActivity(s, reqs, 2, 1, 4, 4,
			func(step int) []int { return []int{reqs[step%2].ID} })
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: channel activity over 4 pipeline steps (active %.0f%%)\n",
			s.Name(), 100*grid.ActiveFraction())
		for step, row := range grid.Grid {
			line := ""
			for _, on := range row {
				if on {
					line += " [##]"
				} else {
					line += " [  ]"
				}
			}
			fmt.Printf("  step %d:%s\n", step, line)
		}
		fmt.Println()
	}
	fmt.Println("HFP leaves channels idle whenever the stage's request does not")
	fmt.Println("cover them; TCP activates every channel at every step (Fig. 6d/e).")
}
