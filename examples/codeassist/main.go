// Codeassist models repository-level code analysis (the paper's second
// motivating application): 128K-class contexts on a GQA model served by a
// heterogeneous xPU+PIM system, compared against a memory-matched GPU
// baseline with flash-decoding and paged-attention.
package main

import (
	"fmt"
	"log"

	"pimphony/internal/core"
	"pimphony/internal/model"
	"pimphony/internal/tablefmt"
	"pimphony/internal/workload"
)

func main() {
	m := model.LLM7B128KGQA()
	trace := workload.MultiFieldQA() // 20K-120K token contexts (LV-Eval)
	requests := workload.NewGenerator(trace, 7).Batch(64)

	fmt.Printf("repository-level code analysis: %s on %s contexts (mean %.0f tokens)\n\n",
		m.Name, trace.Name, trace.Mean)

	t := tablefmt.New("xPU+PIM (NeuPIMs-style, 4 modules) vs A100 GPU baseline",
		"system", "batch", "tokens/s", "notes")

	gpu, err := core.NewSystem(core.GPU(m))
	if err != nil {
		log.Fatal(err)
	}
	gpuRep, err := gpu.Serve(requests)
	if err != nil {
		log.Fatal(err)
	}
	t.AddRow("A100 x2 (FD+PA)", gpuRep.Batch, gpuRep.Throughput, "flash-decoding + paged-attention")

	baseSys, err := core.NewSystem(core.NeuPIMs(m, core.Baseline()))
	if err != nil {
		log.Fatal(err)
	}
	baseRep, err := baseSys.Serve(requests)
	if err != nil {
		log.Fatal(err)
	}
	t.AddRow("NeuPIMs (conventional)", baseRep.Batch, baseRep.Throughput, "HFP + static sched + T_max alloc")

	fullSys, err := core.NewSystem(core.NeuPIMs(m, core.PIMphony()))
	if err != nil {
		log.Fatal(err)
	}
	fullRep, err := fullSys.Serve(requests)
	if err != nil {
		log.Fatal(err)
	}
	t.AddRow("NeuPIMs + PIMphony", fullRep.Batch, fullRep.Throughput, "TCP + DCS + DPA")
	fmt.Print(t)

	fmt.Printf("\nPIMphony vs conventional PIM: %.1fx\n", fullRep.Throughput/baseRep.Throughput)
	fmt.Printf("PIMphony vs GPU baseline:     %.1fx\n", fullRep.Throughput/gpuRep.Throughput)
	fmt.Printf("\nGQA note: KV-cache reuse helps the GPU, but on PIM it inflates WR-INP\n")
	fmt.Printf("traffic under row-reuse; DCS hides that traffic behind MAC execution\n")
	fmt.Printf("(attention consumed %.0f%% of the PIM system's iteration time).\n",
		100*fullRep.AttnTimeShare)
}
