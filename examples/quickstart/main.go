// Quickstart: build a CENT-style PIM-only system, enable PIMphony's three
// techniques, and serve a LongBench-like workload — the minimal end-to-end
// use of the public API.
package main

import (
	"fmt"
	"log"

	"pimphony/internal/core"
	"pimphony/internal/model"
	"pimphony/internal/workload"
)

func main() {
	// 1. Pick a model from the paper's Table I and a system preset.
	m := model.LLM7B32K()
	cfg := core.CENT(m, core.PIMphony()) // TCP + DCS + DPA enabled
	cfg.DecodeWindow = 8

	// 2. Sample a request stream with QMSum's context-length statistics.
	gen := workload.NewGenerator(workload.QMSum(), 1)
	requests := gen.Batch(64)

	// 3. Compile, load the DPA programs onto the modules, and serve.
	sys, err := core.NewSystem(cfg)
	if err != nil {
		log.Fatal(err)
	}
	rep, err := sys.Serve(requests)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("served %d requests for %d decode steps\n", rep.Batch, rep.Steps)
	fmt.Printf("throughput: %.0f tokens/s\n", rep.Throughput)
	fmt.Printf("PIM MAC utilization: %.1f%%\n", 100*rep.PIMUtil)
	fmt.Printf("KV capacity utilization: %.1f%%\n", 100*rep.CapacityUtil)

	// 4. Compare with the conventional PIM stack (HFP + static scheduling
	//    + T_max reservations).
	base, err := core.NewSystem(core.CENT(m, core.Baseline()))
	if err != nil {
		log.Fatal(err)
	}
	baseRep, err := base.Serve(requests)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("baseline: %.0f tokens/s -> PIMphony speedup %.1fx\n",
		baseRep.Throughput, rep.Throughput/baseRep.Throughput)
}
