// Daycurve: serve one compressed diurnal "day" of bursty traffic on an
// autoscaled PIM fleet and watch the provisioning economics — the
// replica-count-over-time timeline, then the fixed-vs-autoscaled
// goodput-per-dollar comparison the autoscale experiment sweeps.
package main

import (
	"context"
	"fmt"
	"log"

	"pimphony/internal/core"
	"pimphony/internal/model"
	"pimphony/internal/serve"
	"pimphony/internal/workload"
)

func main() {
	// 1. A four-replica CENT+PIMphony fleet. Min keeps one replica
	//    always online; the other three are standby and pay a 2 s
	//    warm-up when the autoscaler provisions them.
	m := model.LLM7B32K()
	specs := func() []serve.ReplicaSpec {
		cfg := core.CENT(m, core.PIMphony())
		cfg.KVBudgetBytes = 24 << 30
		return []serve.ReplicaSpec{{
			System: cfg, Count: 4, Role: serve.RoleUnified,
			Min: 1, WarmupSeconds: 2,
		}}
	}

	// 2. One compressed day of traffic: a 60 s sinusoidal day curve at
	//    90% amplitude, time-averaged to 3 req/s, short prompts so the
	//    study isolates provisioning rather than prefill latency.
	arrivals := func() ([]workload.Arrival, error) {
		gen, err := workload.HeavyTailed(256, 2048, 1.2, 52)
		if err != nil {
			return nil, err
		}
		gen.DecodeLen = 32
		return workload.ArrivalsByFlag("diurnal:60:0.9", gen, 3, 4, 64, 53)
	}

	// 3. Run the day under the SLO-driven policy and render the scale
	//    timeline: replicas come online against TTFT pressure on the
	//    morning ramp and drain through the overnight valley.
	slo := serve.SLO{TTFT: 2.5, TBT: 0.025}
	arr, err := arrivals()
	if err != nil {
		log.Fatal(err)
	}
	pl, err := serve.PlacementByName("round-robin-fit")
	if err != nil {
		log.Fatal(err)
	}
	auto, err := serve.AutoscalerByName("slo")
	if err != nil {
		log.Fatal(err)
	}
	rep, err := serve.Run(context.Background(), serve.Config{
		Fleet: specs(), SLO: slo, Placement: pl, Autoscaler: auto,
	}, arr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(serve.ScaleTimeline(rep, "replica count over the day").String())
	fmt.Printf("\ntime-weighted online replicas: %.2f of %d\n",
		rep.Fleet.AvgOnlineReplicas, rep.Fleet.DecodeReplicas)
	fmt.Printf("replica-seconds paid: %.0f (fixed fleet would pay %.0f)\n\n",
		rep.Energy.ReplicaSeconds, float64(rep.Fleet.DecodeReplicas)*rep.MakespanSeconds)

	// 4. The economics table: the same day served fixed (every replica
	//    online throughout) vs autoscaled, at equal offered work —
	//    goodput per dollar is the axis the autoscaler moves.
	pts := []serve.AutoscalePoint{
		{Name: "daycurve", Specs: specs(), PlacementName: "round-robin-fit", Arrivals: arrivals},
		{Name: "daycurve", Specs: specs(), AutoscalerName: "slo", PlacementName: "round-robin-fit", Arrivals: arrivals},
	}
	t, err := serve.AutoscaleTable(context.Background(),
		"fixed vs SLO-autoscaled over one compressed day (ttft-p95 in ms)", pts, slo)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(t.String())
}
