// Longdoc models the paper's motivating scenario of long-document
// summarization (QMSum-style meeting transcripts): highly variable context
// lengths arriving at a PIM-only serving system. It shows why static
// memory management wastes capacity on this workload and how each
// PIMphony technique moves the throughput needle.
package main

import (
	"fmt"
	"log"

	"pimphony/internal/core"
	"pimphony/internal/model"
	"pimphony/internal/tablefmt"
	"pimphony/internal/workload"
)

func main() {
	m := model.LLM7B32K()
	trace := workload.QMSum()
	gen := workload.NewGenerator(trace, 2024)
	requests := gen.Batch(96)

	stats := workload.Summarize(requests)
	fmt.Printf("workload: %s (%s) — mean %.0f tokens, std %.0f, range [%d, %d]\n",
		trace.Name, trace.Suite, stats.Mean, stats.Std, stats.Min, stats.Max)
	fmt.Printf("model: %s, T_max %d, KV %d KiB/token\n\n",
		m.Name, m.ContextWindow, m.KVBytesPerToken()>>10)

	// Incremental study: the Fig. 13 ladder on this workload.
	cfg := core.CENT(m, core.Baseline())
	cfg.DecodeWindow = 8
	stages, err := core.IncrementalStudy(cfg, requests)
	if err != nil {
		log.Fatal(err)
	}
	t := tablefmt.New("long-document summarization on CENT-style PIM (8 modules, 128 GiB)",
		"stage", "batch", "tokens/s", "pim-util%", "capacity-util%", "vs-baseline")
	base := stages[0].Report.Throughput
	for _, st := range stages {
		r := st.Report
		t.AddRow(st.Stage, r.Batch, r.Throughput, 100*r.PIMUtil, 100*r.CapacityUtil,
			fmt.Sprintf("%.2fx", r.Throughput/base))
	}
	fmt.Print(t)

	// The static-reservation waste in isolation: how much of the KV pool
	// actually holds data when admission saturates.
	full := stages[3].Report
	fmt.Printf("\nstatic reservations strand %.0f%% of KV capacity on this trace;\n",
		100*(1-stages[2].Report.CapacityUtil))
	fmt.Printf("DPA's lazy 1 MiB chunks recover it (%.0f%% utilized, batch %d -> %d).\n",
		100*full.CapacityUtil, stages[2].Report.Batch, full.Batch)
}
