// Package pimphony's repository-level benchmark harness: one testing.B
// target per table and figure of the paper's evaluation. Each bench
// regenerates and prints the corresponding rows/series (run with
// -benchtime 1x for a single regeneration):
//
//	go test -bench . -benchtime 1x
//	go test -bench BenchmarkFig13 -benchtime 1x -v
//
// The experiment catalog and metrics glossary live in docs/EXPERIMENTS.md.
package pimphony_test

import (
	"testing"

	"pimphony/internal/experiments"
)

// runExperiment executes one experiment per benchmark iteration, printing
// its tables once. Under -short (the CI bench smoke lane) the scaled-down
// grids are used.
func runExperiment(b *testing.B, id string) {
	b.Helper()
	if testing.Short() {
		prev := experiments.SetShort(true)
		b.Cleanup(func() { experiments.SetShort(prev) })
	}
	printed := false
	for i := 0; i < b.N; i++ {
		res, err := experiments.Run(id)
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
		if !printed {
			b.Log("\n" + res.String())
			printed = true
		}
	}
}

// ---------------------------------------------------------------------------
// Tables
// ---------------------------------------------------------------------------

// BenchmarkTable1Models regenerates Table I (model specifications and
// derived weight/KV footprints).
func BenchmarkTable1Models(b *testing.B) { runExperiment(b, "tab1") }

// BenchmarkTable2Workloads regenerates Table II (context-length statistics
// of the four evaluated traces, paper vs sampled).
func BenchmarkTable2Workloads(b *testing.B) { runExperiment(b, "tab2") }

// BenchmarkTable4Configs regenerates Table IV (module configurations).
func BenchmarkTable4Configs(b *testing.B) { runExperiment(b, "tab4") }

// ---------------------------------------------------------------------------
// Figures
// ---------------------------------------------------------------------------

// BenchmarkFig2Motivation regenerates Fig. 2: compute intensity vs context
// length and memory footprint vs (context, batch).
func BenchmarkFig2Motivation(b *testing.B) { runExperiment(b, "fig2") }

// BenchmarkFig4Utilization regenerates Fig. 4: PIM utilization at 4K vs
// 32K context for CENT and the incremental PIMphony stages.
func BenchmarkFig4Utilization(b *testing.B) { runExperiment(b, "fig4") }

// BenchmarkFig6Partitioning regenerates Fig. 6: HFP vs TCP channel
// activity under TP and PP.
func BenchmarkFig6Partitioning(b *testing.B) { runExperiment(b, "fig6") }

// BenchmarkFig7DCSExample regenerates Fig. 7: the worked scheduling
// example (34 cycles static, 22 cycles DCS).
func BenchmarkFig7DCSExample(b *testing.B) { runExperiment(b, "fig7") }

// BenchmarkFig8Breakdown regenerates Fig. 8: the static latency breakdown
// across matrix dimensions.
func BenchmarkFig8Breakdown(b *testing.B) { runExperiment(b, "fig8") }

// BenchmarkFig9AttnBreakdown regenerates Fig. 9: QK^T/SV breakdown with
// and without DCS under the row-reuse mapping (LLM-72B GQA).
func BenchmarkFig9AttnBreakdown(b *testing.B) { runExperiment(b, "fig9") }

// BenchmarkFig10InstrFootprint regenerates Fig. 10c: static vs DPA
// instruction footprint vs context length.
func BenchmarkFig10InstrFootprint(b *testing.B) { runExperiment(b, "fig10") }

// BenchmarkFig13PIMOnly regenerates Fig. 13: PIM-only throughput with
// incremental TCP/DCS/DPA across all four models and their suites.
func BenchmarkFig13PIMOnly(b *testing.B) { runExperiment(b, "fig13") }

// BenchmarkFig14XPUPIM regenerates Fig. 14: xPU+PIM throughput with
// incremental TCP/DCS/DPA.
func BenchmarkFig14XPUPIM(b *testing.B) { runExperiment(b, "fig14") }

// BenchmarkFig15Parallelism regenerates Fig. 15: the (TP, PP) sweep.
func BenchmarkFig15Parallelism(b *testing.B) { runExperiment(b, "fig15") }

// BenchmarkFig16Energy regenerates Fig. 16: attention energy breakdowns,
// CENT vs CENT+PIMphony.
func BenchmarkFig16Energy(b *testing.B) { runExperiment(b, "fig16") }

// BenchmarkFig17Scalability regenerates Fig. 17: throughput vs capacity
// and vs context length (4K-1M) for CENT and NeuPIMs.
func BenchmarkFig17Scalability(b *testing.B) { runExperiment(b, "fig17") }

// BenchmarkFig18PingPong regenerates Fig. 18: DCS vs ping-pong buffering
// compute utilization across MHA and GQA group sizes.
func BenchmarkFig18PingPong(b *testing.B) { runExperiment(b, "fig18") }

// BenchmarkFig19Capacity regenerates Fig. 19: KV capacity utilization with
// and without DPA across the four traces.
func BenchmarkFig19Capacity(b *testing.B) { runExperiment(b, "fig19") }

// BenchmarkFig20GPUCompare regenerates Fig. 20: A100 (flash-decoding +
// paged-attention) vs memory-matched PIMphony systems.
func BenchmarkFig20GPUCompare(b *testing.B) { runExperiment(b, "fig20") }

// ---------------------------------------------------------------------------
// Ablations beyond the paper's figures (design choices called out in
// DESIGN.md)
// ---------------------------------------------------------------------------

// BenchmarkAblationIsMAC quantifies the is-MAC accumulate bypass in DCS.
func BenchmarkAblationIsMAC(b *testing.B) { runExperiment(b, "abl-ismac") }

// BenchmarkAblationOBufDepth sweeps the output-buffer depth added by
// I/O-aware buffering.
func BenchmarkAblationOBufDepth(b *testing.B) { runExperiment(b, "abl-obuf") }

// BenchmarkAblationChunkSize sweeps the DPA allocation granularity.
func BenchmarkAblationChunkSize(b *testing.B) { runExperiment(b, "abl-chunk") }

// BenchmarkAblationTCPReduce sweeps the HUB hop cost of TCP's SV
// reduction.
func BenchmarkAblationTCPReduce(b *testing.B) { runExperiment(b, "abl-tcp") }

// BenchmarkAblationPrefill quantifies prompt-phase cost across system
// kinds (the Hybe/NeuPIMs phase-splitting motivation).
func BenchmarkAblationPrefill(b *testing.B) { runExperiment(b, "abl-prefill") }

// ---------------------------------------------------------------------------
// Serving study beyond the paper's batch evaluation
// ---------------------------------------------------------------------------

// BenchmarkServeCurve regenerates the online latency–throughput curve:
// Poisson arrivals load-balanced across continuous-batching replicas,
// with goodput and p50/p95/p99 TTFT/TBT under the SLO.
func BenchmarkServeCurve(b *testing.B) { runExperiment(b, "serve") }

// BenchmarkMegafleetScale regenerates the scheduler-scaling table:
// SLO-autoscaled fleets from 100 to 10k replicas (50/200 in -short)
// under a diurnal trace, per-replica load held constant.
func BenchmarkMegafleetScale(b *testing.B) { runExperiment(b, "megafleet") }

// BenchmarkCapacityGap regenerates the online Static-vs-DPA capacity
// study: heavy-tailed and multi-turn schedules served at an equal
// per-replica KV budget, with admission, preemption and pool
// high-water-mark metrics next to the latency–goodput gap.
func BenchmarkCapacityGap(b *testing.B) { runExperiment(b, "capacity") }

// ---------------------------------------------------------------------------
// Cross-backend comparison over the system-backend registry
// ---------------------------------------------------------------------------

// BenchmarkSystemsCompare regenerates the cross-backend table: every
// registered system organisation (pim-only, xpu+pim, gpu, dimm-pim)
// priced on the shared (model, trace) grid through the unified step
// loop.
func BenchmarkSystemsCompare(b *testing.B) { runExperiment(b, "systems") }
