module pimphony

go 1.24
