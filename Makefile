# Local mirror of .github/workflows/ci.yml: `make ci` runs the exact
# gates CI enforces.

GO ?= go

# Statement-coverage floor for the system-backend seam (make cover / CI).
BACKEND_COVER_MIN ?= 80

# Statement-coverage floor for the serving spine's advancement and
# placement seams (make cover-serve / CI).
SERVE_COVER_MIN ?= 85

.PHONY: all fmt fmt-check vet staticcheck build examples test test-short race-serve fuzz-smoke fleet autoscale megafleet resilience bench bench-check bench-baseline cover cover-serve ci

all: build

# Format the tree in place.
fmt:
	gofmt -w .

# CI gate: fail if any file needs formatting.
fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "files need gofmt:" >&2; echo "$$out" >&2; exit 1; \
	fi

vet:
	$(GO) vet ./...

# CI pins staticcheck@2025.1.1; locally the gate runs when the tool is
# installed (go install honnef.co/go/tools/cmd/staticcheck@2025.1.1)
# and is skipped with a warning otherwise.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (CI runs the pinned version)" >&2; \
	fi

build:
	$(GO) build ./...

# Build and vet every documented example walkthrough explicitly.
examples:
	$(GO) vet ./examples/...
	$(GO) build -o /dev/null ./examples/...

# Full test suite (regenerates every paper figure on the full grids).
test:
	$(GO) test ./...

# The CI race lane: scaled-down grids, race detector on.
test-short:
	$(GO) test -race -short ./...

# The serving-spine race lane: the fleet scheduler and DES tests on
# their full grids, twice, under the race detector with a deadline — a
# schedule-order race that only bites on a warm second run still fails.
race-serve:
	$(GO) test -race -count=2 -timeout 10m ./internal/serve/

# 30-second fuzz smoke over the DES spine: randomized (seed,
# arrival-mix, fleet-shape) tuples must keep every synchronization
# discipline byte-identical and every DES invariant intact.
fuzz-smoke:
	$(GO) test -fuzz FuzzDESSchedule -fuzztime 30s ./internal/serve/

# Render the fleet study on the full grids: homogeneous PIM-only and
# GPU fleets vs the disaggregated xPU-prefill/PIM-decode split at an
# equal aggregate KV budget (the README's fleet table).
fleet:
	$(GO) run ./cmd/pimphony-bench -run fleet

# Render the autoscaling study on the full grids: fixed vs SLO-driven
# provisioning under bursty diurnal and MMPP traffic, priced in
# goodput per dollar (the README's autoscale table).
autoscale:
	$(GO) run ./cmd/pimphony-bench -run autoscale

# Render the megafleet scaling study on the full grids: SLO-autoscaled
# fleets from 100 to 10k replicas under a diurnal trace, per-replica
# load held constant (the scheduler-scaling table).
megafleet:
	$(GO) run ./cmd/pimphony-bench -run megafleet

# Render the resilience study on the full grids: fixed vs SLO-autoscaled
# fleets under seeded replica-crash schedules (MTBF x MTTR), reporting
# goodput retained, retry amplification and tail-TTFT inflation.
resilience:
	$(GO) run ./cmd/pimphony-bench -run resilience

# One iteration of every paper-figure benchmark on the short grids.
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x -short ./...

# CI mirror of the bench-regression gate: time the serving experiments,
# hash their tables, and fail on >20% runtime regression or table drift
# vs the checked-in baseline. BENCH_serve.json is the CI artifact.
bench-check:
	$(GO) run ./cmd/pimphony-bench -short -gate-emit BENCH_serve.json -gate-check bench/baseline.json

# Regenerate the checked-in gate baseline (after an intentional change
# to a gated experiment's output or cost).
bench-baseline:
	$(GO) run ./cmd/pimphony-bench -short -gate-emit bench/baseline.json

# Coverage: a whole-tree profile (coverage.out, the CI artifact) plus a
# gate on the system-backend seam — internal/backend below
# $(BACKEND_COVER_MIN)% statement coverage fails the target. The backend
# profile counts only the package's own tests, so the seam stays
# directly tested rather than incidentally covered through the stack.
cover:
	$(GO) test -short -coverprofile=coverage.out ./...
	$(GO) test -short -coverprofile=coverage-backend.out -coverpkg=./internal/backend ./internal/backend
	@pct=$$($(GO) tool cover -func=coverage-backend.out | awk '/^total:/ { gsub(/%/, "", $$3); print $$3 }'); \
	echo "internal/backend statement coverage: $$pct% (floor $(BACKEND_COVER_MIN)%)"; \
	awk -v p="$$pct" -v min="$(BACKEND_COVER_MIN)" 'BEGIN { exit (p + 0 < min) ? 1 : 0 }' || \
		{ echo "internal/backend coverage $$pct% is below $(BACKEND_COVER_MIN)%" >&2; exit 1; }

# Per-file statement-coverage gate on the serving spine's two policy
# seams: replica advancement (advance.go) and fleet placement
# (placement.go) must each stay at or above $(SERVE_COVER_MIN)%. The
# per-file numbers come straight from the coverage profile (cover -func
# only reports per-function), summed per block.
cover-serve:
	$(GO) test -coverprofile=coverage-serve.out ./internal/serve/
	@awk -v min="$(SERVE_COVER_MIN)" '\
		NR > 1 { \
			n = split($$1, loc, "/"); split(loc[n], parts, ":"); f = parts[1]; \
			tot[f] += $$2; if ($$3 > 0) cov[f] += $$2; \
		} \
		END { \
			bad = 0; \
			split("advance.go placement.go", want, " "); \
			for (i in want) { f = want[i]; \
				pct = tot[f] ? 100 * cov[f] / tot[f] : 0; \
				printf "internal/serve/%s statement coverage: %.1f%% (floor %d%%)\n", f, pct, min; \
				if (pct < min) bad = 1; \
			} \
			exit bad; \
		}' coverage-serve.out || { echo "serve spine coverage below $(SERVE_COVER_MIN)%" >&2; exit 1; }

ci: fmt-check vet staticcheck build examples test-short race-serve bench bench-check cover cover-serve
