# Local mirror of .github/workflows/ci.yml: `make ci` runs the exact
# gates CI enforces.

GO ?= go

.PHONY: all fmt fmt-check vet build examples test test-short bench ci

all: build

# Format the tree in place.
fmt:
	gofmt -w .

# CI gate: fail if any file needs formatting.
fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "files need gofmt:" >&2; echo "$$out" >&2; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

# Build and vet every documented example walkthrough explicitly.
examples:
	$(GO) vet ./examples/...
	$(GO) build -o /dev/null ./examples/...

# Full test suite (regenerates every paper figure on the full grids).
test:
	$(GO) test ./...

# The CI race lane: scaled-down grids, race detector on.
test-short:
	$(GO) test -race -short ./...

# One iteration of every paper-figure benchmark on the short grids.
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x -short ./...

ci: fmt-check vet build examples test-short bench
