package model

import (
	"testing"
	"testing/quick"
)

func TestAllConfigsValidate(t *testing.T) {
	for _, c := range All() {
		if err := c.Validate(); err != nil {
			t.Errorf("%s: %v", c.Name, err)
		}
	}
}

func TestByFlag(t *testing.T) {
	cases := map[string]string{
		"7b-32k":       "LLM-7B-32K",
		"7B-128K-GQA":  "LLM-7B-128K-GQA", // case-insensitive
		"72b-32k":      "LLM-72B-32K",
		"72b-128k-gqa": "LLM-72B-128K-GQA",
	}
	for flag, want := range cases {
		c, err := ByFlag(flag)
		if err != nil || c.Name != want {
			t.Errorf("ByFlag(%s) = %s, %v; want %s", flag, c.Name, err, want)
		}
	}
	if _, err := ByFlag("13b"); err == nil {
		t.Error("unknown model flag should error")
	}
}

func TestValidateCatchesBadConfigs(t *testing.T) {
	c := LLM7B32K()
	c.DIn = 1000 // != Heads*HeadDim
	if err := c.Validate(); err == nil {
		t.Error("mismatched DIn should fail validation")
	}
	c2 := LLM7B32K()
	c2.GQAGroup = 3 // does not divide 32
	if err := c2.Validate(); err == nil {
		t.Error("non-dividing GQA group should fail validation")
	}
}

func TestWeightFootprints(t *testing.T) {
	// The 7B-class model should weigh in near 14 GB at fp16, the 72B-class
	// near 140 GB (Table I shapes approximate the real checkpoints).
	w7 := float64(LLM7B32K().WeightBytes()) / (1 << 30)
	if w7 < 10 || w7 > 20 {
		t.Errorf("7B weights = %.1f GiB, want ~14", w7)
	}
	w72 := float64(LLM72B32K().WeightBytes()) / (1 << 30)
	if w72 < 110 || w72 > 170 {
		t.Errorf("72B weights = %.1f GiB, want ~140", w72)
	}
	// GQA shrinks the KV projections, so GQA models are slightly smaller.
	if LLM7B128KGQA().WeightBytes() >= LLM7B32K().WeightBytes() {
		t.Error("GQA model should have fewer parameters than MHA sibling")
	}
}

func TestKVBytesPerToken(t *testing.T) {
	// Non-GQA 7B: 2 * 32 heads * 128 * 2B * 32 layers = 512 KiB/token.
	if got := LLM7B32K().KVBytesPerToken(); got != 512<<10 {
		t.Errorf("7B KV/token = %d, want 512 KiB", got)
	}
	// GQA g=4 divides it by 4.
	if got := LLM7B128KGQA().KVBytesPerToken(); got != 128<<10 {
		t.Errorf("7B-GQA KV/token = %d, want 128 KiB", got)
	}
	// 72B GQA g=8: 2 * 8 * 128 * 2 * 80 = 320 KiB.
	if got := LLM72B128KGQA().KVBytesPerToken(); got != 320<<10 {
		t.Errorf("72B-GQA KV/token = %d, want 320 KiB", got)
	}
}

func TestComputeIntensityDropsWithContext(t *testing.T) {
	c := LLM7B128KGQA()
	const batch = 16 // Fig. 2a is a batched-serving scenario
	prev := c.ComputeIntensity(batch, 1024)
	for _, tk := range []int{4096, 16384, 65536, 262144, 1 << 20} {
		ci := c.ComputeIntensity(batch, tk)
		if ci >= prev {
			t.Errorf("compute intensity should fall with context: %d tokens -> %.3f (prev %.3f)", tk, ci, prev)
		}
		prev = ci
	}
	// Long-context decode is GEMV-bound: a handful of FLOPs per byte.
	if ci := c.ComputeIntensity(batch, 1<<20); ci > 8 {
		t.Errorf("1M-token intensity = %.2f FLOPs/B, expected memory-bound (<8)", ci)
	}
}

func TestAttentionShareGrows(t *testing.T) {
	c := LLM7B32K()
	if s4, s32 := c.AttentionShare(4096), c.AttentionShare(32768); s32 <= s4 {
		t.Errorf("attention share should grow with context: %f -> %f", s4, s32)
	}
	// Non-GQA 7B at 32K: KV = 16 GiB vs 14 GiB weights -> majority.
	if s := c.AttentionShare(32768); s < 0.5 {
		t.Errorf("32K non-GQA attention share = %.2f, want > 0.5", s)
	}
}

func TestMemoryFootprintFig2b(t *testing.T) {
	c := LLM7B128KGQA()
	// A100-80GB: batch 8 at 128K context must overflow (Fig. 2b's point).
	if got := c.MemoryFootprint(8, 128<<10); got <= 80<<30 {
		t.Errorf("batch-8 @128K footprint = %d GiB, expected OOM vs 80 GiB", got>>30)
	}
	// batch 1 at short context fits easily.
	if got := c.MemoryFootprint(1, 4096); got >= 80<<30 {
		t.Errorf("batch-1 @4K footprint = %d GiB, expected to fit", got>>30)
	}
}

func TestFCShapes(t *testing.T) {
	c := LLM72B128KGQA()
	shapes := c.FCShapes()
	if len(shapes) != 7 {
		t.Fatalf("expected 7 FC shapes, got %d", len(shapes))
	}
	var kOut int
	for _, s := range shapes {
		if s.DIn <= 0 || s.DOut <= 0 {
			t.Errorf("%s has non-positive dims", s.Name)
		}
		if s.Name == "k_proj" {
			kOut = s.DOut
		}
	}
	if kOut != c.DIn/8 {
		t.Errorf("k_proj out = %d, want DIn/8 for g=8", kOut)
	}
}

func TestAttentionShape(t *testing.T) {
	c := LLM72B128KGQA()
	a := c.Attention(65536)
	if a.KVHeads != 8 || a.Queries != 8 || a.HeadDim != 128 || a.Tokens != 65536 {
		t.Errorf("unexpected attention shape: %+v", a)
	}
}

// Property: footprints and FLOPs are monotone in tokens and batch.
func TestMonotonicityProperties(t *testing.T) {
	c := LLM7B32K()
	f := func(a, b uint16) bool {
		t1, t2 := int(a)+1, int(a)+int(b)+2
		if c.KVBytes(t1) > c.KVBytes(t2) {
			return false
		}
		if c.DecodeFLOPs(t1) > c.DecodeFLOPs(t2) {
			return false
		}
		return c.MemoryFootprint(1, t1) <= c.MemoryFootprint(2, t1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: FLOPs/bytes are consistent — intensity equals their ratio.
func TestIntensityConsistency(t *testing.T) {
	for _, c := range All() {
		for _, tk := range []int{1024, 32768, 1 << 20} {
			want := float64(c.DecodeFLOPs(tk)) / float64(c.DecodeBytes(tk))
			if got := c.ComputeIntensity(1, tk); got != want {
				t.Errorf("%s @%d: intensity %f != %f", c.Name, tk, got, want)
			}
		}
	}
}

// Property: higher batch raises intensity (weights amortize), and the
// limit as batch grows is bounded by the attention intensity.
func TestBatchRaisesIntensity(t *testing.T) {
	c := LLM72B32K()
	f := func(a uint8) bool {
		b := int(a%63) + 1
		return c.ComputeIntensity(b+1, 16384) >= c.ComputeIntensity(b, 16384)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestFCWorkHelpers pins the deduplicated FC-work helpers against the
// direct FCShapes loops they replaced (the prefill estimator and the
// decode backends all price FC through them now) and against the
// independent DecodeFLOPs accounting.
func TestFCWorkHelpers(t *testing.T) {
	for _, m := range All() {
		var wantFlops, wantBytes int64
		for _, sh := range m.FCShapes() {
			wantFlops += 2 * int64(sh.DIn) * int64(sh.DOut) * int64(sh.Count)
			wantBytes += int64(sh.DIn) * int64(sh.DOut) * int64(sh.Count) * int64(m.ElemBytes)
		}
		if got := m.FCLayerFlops(); got != wantFlops {
			t.Errorf("%s: FCLayerFlops %d, want %d", m.Name, got, wantFlops)
		}
		if got := m.FCLayerWeightBytes(); got != wantBytes {
			t.Errorf("%s: FCLayerWeightBytes %d, want %d", m.Name, got, wantBytes)
		}
		if got, want := m.FCFlopsPerToken(), int64(m.Layers)*wantFlops; got != want {
			t.Errorf("%s: FCFlopsPerToken %d, want %d", m.Name, got, want)
		}
		// At zero context, a decode step is pure FC work.
		if got, want := m.FCFlopsPerToken(), m.DecodeFLOPs(0); got != want {
			t.Errorf("%s: FCFlopsPerToken %d != DecodeFLOPs(0) %d", m.Name, got, want)
		}
		// One streaming pass over every FC weight is the whole layer's
		// parameter footprint.
		if got, want := m.FCLayerWeightBytes()*int64(m.Layers), m.WeightBytes(); got != want {
			t.Errorf("%s: FC weight bytes %d != WeightBytes %d", m.Name, got, want)
		}
	}
}
