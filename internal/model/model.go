// Package model describes the transformer decoder configurations of the
// paper's Table I and derives the quantities the performance model needs:
// per-decode-step kernel shapes, KV-cache geometry, weight footprints,
// FLOP counts and compute intensity (the paper's Fig. 2 motivation).
package model

import (
	"fmt"
	"strings"
)

// Config is one LLM configuration (Table I).
type Config struct {
	Name          string
	Layers        int // nl
	Heads         int // nh query heads
	HeadDim       int // dh
	DIn           int // hidden size (d_in); attention projections are DIn x DIn
	DFFN          int // FFN inner size (d_out of the up projection)
	GQAGroup      int // query heads per KV head; 1 = MHA
	ElemBytes     int // parameter/KV element size (fp16 = 2)
	ContextWindow int // maximum supported context length (T_max)
}

// Table I configurations. The 32K context-window variants are the non-GQA
// Qwen1.5-style models; the 128K variants are Llama3.1-style GQA models.
func LLM7B32K() Config {
	return Config{Name: "LLM-7B-32K", Layers: 32, Heads: 32, HeadDim: 128,
		DIn: 4096, DFFN: 12288, GQAGroup: 1, ElemBytes: 2, ContextWindow: 32 << 10}
}

func LLM7B128KGQA() Config {
	return Config{Name: "LLM-7B-128K-GQA", Layers: 32, Heads: 32, HeadDim: 128,
		DIn: 4096, DFFN: 12288, GQAGroup: 4, ElemBytes: 2, ContextWindow: 128 << 10}
}

func LLM72B32K() Config {
	return Config{Name: "LLM-72B-32K", Layers: 80, Heads: 64, HeadDim: 128,
		DIn: 8192, DFFN: 24576, GQAGroup: 1, ElemBytes: 2, ContextWindow: 32 << 10}
}

func LLM72B128KGQA() Config {
	return Config{Name: "LLM-72B-128K-GQA", Layers: 80, Heads: 64, HeadDim: 128,
		DIn: 8192, DFFN: 24576, GQAGroup: 8, ElemBytes: 2, ContextWindow: 128 << 10}
}

// All returns the four evaluated models in the paper's order.
func All() []Config {
	return []Config{LLM7B32K(), LLM72B32K(), LLM7B128KGQA(), LLM72B128KGQA()}
}

// ByFlag finds a Table I model by the short name the CLI binaries share
// ("7b-32k", "7b-128k-gqa", "72b-32k", "72b-128k-gqa"; case-insensitive).
func ByFlag(name string) (Config, error) {
	switch strings.ToLower(name) {
	case "7b-32k":
		return LLM7B32K(), nil
	case "7b-128k-gqa":
		return LLM7B128KGQA(), nil
	case "72b-32k":
		return LLM72B32K(), nil
	case "72b-128k-gqa":
		return LLM72B128KGQA(), nil
	default:
		return Config{}, fmt.Errorf("unknown model %q (7b-32k, 7b-128k-gqa, 72b-32k, 72b-128k-gqa)", name)
	}
}

// Validate reports configuration inconsistencies.
func (c Config) Validate() error {
	switch {
	case c.Layers <= 0 || c.Heads <= 0 || c.HeadDim <= 0:
		return fmt.Errorf("model %s: layers/heads/headdim must be positive", c.Name)
	case c.DIn != c.Heads*c.HeadDim:
		return fmt.Errorf("model %s: DIn (%d) != Heads*HeadDim (%d)", c.Name, c.DIn, c.Heads*c.HeadDim)
	case c.GQAGroup <= 0 || c.Heads%c.GQAGroup != 0:
		return fmt.Errorf("model %s: GQAGroup %d must divide Heads %d", c.Name, c.GQAGroup, c.Heads)
	case c.ElemBytes <= 0:
		return fmt.Errorf("model %s: ElemBytes must be positive", c.Name)
	case c.ContextWindow <= 0:
		return fmt.Errorf("model %s: ContextWindow must be positive", c.Name)
	}
	return nil
}

// KVHeads is the number of KV heads (Heads / GQAGroup).
func (c Config) KVHeads() int { return c.Heads / c.GQAGroup }

// IsGQA reports whether the model uses grouped-query attention.
func (c Config) IsGQA() bool { return c.GQAGroup > 1 }

// ---------------------------------------------------------------------------
// Footprints
// ---------------------------------------------------------------------------

// KVBytesPerToken is the KV-cache footprint of one token across all layers:
// 2 (K and V) x KVHeads x HeadDim x ElemBytes x Layers.
func (c Config) KVBytesPerToken() int64 {
	return 2 * int64(c.KVHeads()) * int64(c.HeadDim) * int64(c.ElemBytes) * int64(c.Layers)
}

// KVBytes is the KV-cache footprint of one request at the given context.
func (c Config) KVBytes(tokens int) int64 {
	return int64(tokens) * c.KVBytesPerToken()
}

// WeightBytes is the parameter footprint: per layer 4 attention projections
// (Q full-size, K/V shrunk by the GQA group, O full-size) plus a
// gated 3-matrix FFN (up, gate, down).
func (c Config) WeightBytes() int64 {
	din, dffn := int64(c.DIn), int64(c.DFFN)
	kvProj := din * din / int64(c.GQAGroup) // each of K, V
	attn := din*din + 2*kvProj + din*din    // Q, K, V, O
	ffn := 3 * din * dffn                   // up, gate, down
	return int64(c.Layers) * (attn + ffn) * int64(c.ElemBytes)
}

// ---------------------------------------------------------------------------
// Per-decode-step work
// ---------------------------------------------------------------------------

// DecodeFLOPs returns the FLOPs of generating one token for one request at
// the given context length (multiply-accumulate = 2 FLOPs).
func (c Config) DecodeFLOPs(tokens int) int64 {
	din, dffn := int64(c.DIn), int64(c.DFFN)
	kvProj := din * din / int64(c.GQAGroup)
	fc := 2 * (din*din + 2*kvProj + din*din + 3*din*dffn)             // all projections
	attn := 2 * 2 * int64(c.Heads) * int64(c.HeadDim) * int64(tokens) // QK^T + SV
	return int64(c.Layers) * (fc + attn)
}

// DecodeBytes returns the bytes read per generated token: all weights once
// (batch-1 GEMV) plus the KV cache of the current context.
func (c Config) DecodeBytes(tokens int) int64 {
	return c.WeightBytes() + c.KVBytes(tokens)
}

// BatchDecodeBytes returns the bytes read per decode iteration for a batch:
// weights are read once for the whole batch (batched GEMM), while every
// request attends over its own KV cache.
func (c Config) BatchDecodeBytes(batch, tokens int) int64 {
	return c.WeightBytes() + int64(batch)*c.KVBytes(tokens)
}

// ComputeIntensity is FLOPs/byte of a batched decode iteration at the given
// context length — the quantity that collapses as context grows while FC
// work shifts from batched GEMM to per-request GEMV attention (Fig. 2a).
func (c Config) ComputeIntensity(batch, tokens int) float64 {
	return float64(int64(batch)*c.DecodeFLOPs(tokens)) / float64(c.BatchDecodeBytes(batch, tokens))
}

// AttentionShare is the fraction of decode bytes read by the attention
// kernels (KV cache) rather than FC weights.
func (c Config) AttentionShare(tokens int) float64 {
	kv := float64(c.KVBytes(tokens))
	return kv / (kv + float64(c.WeightBytes()))
}

// MemoryFootprint returns the total memory needed to serve `batch` requests
// at context `tokens`: weights + per-request KV (Fig. 2b).
func (c Config) MemoryFootprint(batch, tokens int) int64 {
	return c.WeightBytes() + int64(batch)*c.KVBytes(tokens)
}

// ---------------------------------------------------------------------------
// Kernel shapes
// ---------------------------------------------------------------------------

// FCShape is one fully-connected GEMV of the decode step.
type FCShape struct {
	Name      string
	DIn, DOut int
	Count     int // occurrences per layer
}

// FCShapes lists the per-layer projection GEMVs in execution order.
func (c Config) FCShapes() []FCShape {
	kvOut := c.DIn / c.GQAGroup
	return []FCShape{
		{Name: "q_proj", DIn: c.DIn, DOut: c.DIn, Count: 1},
		{Name: "k_proj", DIn: c.DIn, DOut: kvOut, Count: 1},
		{Name: "v_proj", DIn: c.DIn, DOut: kvOut, Count: 1},
		{Name: "o_proj", DIn: c.DIn, DOut: c.DIn, Count: 1},
		{Name: "ffn_up", DIn: c.DIn, DOut: c.DFFN, Count: 1},
		{Name: "ffn_gate", DIn: c.DIn, DOut: c.DFFN, Count: 1},
		{Name: "ffn_down", DIn: c.DFFN, DOut: c.DIn, Count: 1},
	}
}

// FCLayerFlops is the FLOPs of one token's FC projections in a single
// layer (multiply-accumulate = 2 FLOPs), summed over FCShapes in
// execution order. It is the single source of truth for the FC-FLOPs
// loops the prefill estimator and every decode backend used to carry
// separately.
func (c Config) FCLayerFlops() int64 {
	var flops int64
	for _, sh := range c.FCShapes() {
		flops += 2 * int64(sh.DIn) * int64(sh.DOut) * int64(sh.Count)
	}
	return flops
}

// FCLayerWeightBytes is the weight bytes read by one layer's FC
// projections (one streaming pass over every projection matrix).
func (c Config) FCLayerWeightBytes() int64 {
	var bytes int64
	for _, sh := range c.FCShapes() {
		bytes += int64(sh.DIn) * int64(sh.DOut) * int64(sh.Count) * int64(c.ElemBytes)
	}
	return bytes
}

// FCFlopsPerToken is the FC FLOPs of generating one token across all
// layers: Layers x FCLayerFlops.
func (c Config) FCFlopsPerToken() int64 {
	return int64(c.Layers) * c.FCLayerFlops()
}

// AttentionShape describes the per-layer attention work of one request.
type AttentionShape struct {
	KVHeads int // independent KV head kernels
	Queries int // query vectors sharing each KV head (GQA group)
	HeadDim int
	Tokens  int
}

// Attention returns the attention kernel shape at a context length.
func (c Config) Attention(tokens int) AttentionShape {
	return AttentionShape{KVHeads: c.KVHeads(), Queries: c.GQAGroup, HeadDim: c.HeadDim, Tokens: tokens}
}
