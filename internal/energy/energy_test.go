package energy

import (
	"testing"

	"pimphony/internal/kernels"
	"pimphony/internal/sched"
	"pimphony/internal/timing"
)

func TestBreakdownArithmetic(t *testing.T) {
	b := Breakdown{MAC: 1, IO: 2, Background: 3, Else: 4}
	if b.Total() != 10 {
		t.Fatalf("Total = %f", b.Total())
	}
	b.Add(Breakdown{MAC: 1})
	if b.MAC != 2 {
		t.Fatal("Add broken")
	}
	s := b.Scale(2)
	if s.IO != 4 || s.Else != 8 {
		t.Fatal("Scale broken")
	}
	if got := (Breakdown{}).BackgroundShare(); got != 0 {
		t.Fatalf("empty share = %f", got)
	}
}

// TestBackgroundShareCollapsesWithDCS reproduces the Fig. 16 mechanism:
// the static schedule's long runtime makes background energy a large share;
// DCS shrinks runtime, so the share collapses while dynamic energy stays
// identical (same command counts).
func TestBackgroundShareCollapsesWithDCS(t *testing.T) {
	dev := timing.AiM16()
	m := Default()
	cfg := kernels.NewConfig(dev, kernels.BaselineBuffers(dev))
	stack, err := cfg.SV(4096, 128, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	st, err := (&sched.Static{Dev: dev}).Schedule(stack)
	if err != nil {
		t.Fatal(err)
	}
	cfg2 := kernels.NewConfig(dev, kernels.OBufBuffers(dev))
	stack2, err := cfg2.SV(4096, 128, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	dc, err := (&sched.DCS{Dev: dev}).Schedule(stack2)
	if err != nil {
		t.Fatal(err)
	}
	eStatic := m.ForStack(dev, stack, st)
	eDCS := m.ForStack(dev, stack2, dc)
	if eDCS.BackgroundShare() >= eStatic.BackgroundShare() {
		t.Errorf("background share should collapse: static %.2f dcs %.2f",
			eStatic.BackgroundShare(), eDCS.BackgroundShare())
	}
	if eDCS.MAC != eStatic.MAC {
		t.Errorf("MAC energy must be schedule-invariant: %f vs %f", eStatic.MAC, eDCS.MAC)
	}
	if eDCS.Total() >= eStatic.Total() {
		t.Error("total energy should drop with the shorter schedule")
	}
}

func TestForAggregateConsistency(t *testing.T) {
	dev := timing.AiM16()
	m := Default()
	b := m.ForAggregate(dev, 1000, 32000, 10, 16, 100000)
	if b.MAC != 1000*m.MACpJ {
		t.Errorf("MAC energy = %f", b.MAC)
	}
	if b.IO != 32000*m.IOpJPerByte {
		t.Errorf("IO energy = %f", b.IO)
	}
	wantBg := m.BackgroundWPerChannel * 100e-6 * 1e12 * 16
	if diff := b.Background - wantBg; diff > 1 || diff < -1 {
		t.Errorf("background = %f, want %f", b.Background, wantBg)
	}
	if b.Else <= 0 {
		t.Error("else category must include ACT/PRE and cell reads")
	}
}

func TestLongerRuntimeCostsMoreBackground(t *testing.T) {
	dev := timing.AiM16()
	m := Default()
	short := m.ForAggregate(dev, 100, 100, 1, 16, 1000)
	long := m.ForAggregate(dev, 100, 100, 1, 16, 100000)
	if long.Background <= short.Background {
		t.Error("background energy must scale with runtime")
	}
	if long.MAC != short.MAC {
		t.Error("dynamic energy must not depend on runtime")
	}
}
