// Package energy models PIM module energy in the categories of the paper's
// Fig. 16: MAC computation, I/O transfers, runtime-dependent background
// power and everything else (activate/precharge/refresh and HUB logic).
//
// Absolute constants are order-of-magnitude values for a GDDR6-class PIM;
// the reproduced claim is relational — in the baseline, low MAC utilization
// stretches runtime so background energy dominates (71.5% of Attention
// energy in the paper), and PIMphony's runtime reduction collapses that
// share (to 13.0%).
package energy

import (
	"pimphony/internal/pim"
	"pimphony/internal/sched"
	"pimphony/internal/timing"
)

// Model holds per-event energies and background power.
type Model struct {
	// MACpJ is the energy of one MAC command (all banks of a channel).
	MACpJ float64
	// IOpJPerByte is the energy per byte moved over the channel I/O path.
	IOpJPerByte float64
	// ActPrepJ is the energy of one activate+precharge pair (all banks).
	ActPrepJ float64
	// DRAMReadpJPerByte is the cell-array read energy per byte.
	DRAMReadpJPerByte float64
	// BackgroundWPerChannel is the standby power of one channel in watts.
	BackgroundWPerChannel float64
	// CyclesPerSecond converts cycles to seconds (1 GHz command clock).
	CyclesPerSecond float64
}

// Default returns GDDR6-AiM-scale constants.
func Default() Model {
	return Model{
		MACpJ:                 180,  // 16 banks x 16-element fp16 dot product
		IOpJPerByte:           4.0,  // on-module transfer to GBuf/GPR
		ActPrepJ:              900,  // row activate + precharge, all banks
		DRAMReadpJPerByte:     1.2,  // cell read + column access
		BackgroundWPerChannel: 0.11, // standby + peripheral per channel
		CyclesPerSecond:       1e9,
	}
}

// Breakdown is per-category energy in picojoules.
type Breakdown struct {
	MAC        float64
	IO         float64
	Background float64
	Else       float64 // ACT/PRE, refresh, cell reads, HUB logic
}

// Total sums all categories.
func (b Breakdown) Total() float64 { return b.MAC + b.IO + b.Background + b.Else }

// Add accumulates another breakdown.
func (b *Breakdown) Add(o Breakdown) {
	b.MAC += o.MAC
	b.IO += o.IO
	b.Background += o.Background
	b.Else += o.Else
}

// Scale multiplies all categories by f (e.g. per-layer to per-model).
func (b Breakdown) Scale(f float64) Breakdown {
	return Breakdown{MAC: b.MAC * f, IO: b.IO * f, Background: b.Background * f, Else: b.Else * f}
}

// BackgroundShare is the background fraction of the total (the paper's
// headline 71.5% -> 13.0% number).
func (b Breakdown) BackgroundShare() float64 {
	t := b.Total()
	if t == 0 {
		return 0
	}
	return b.Background / t
}

// ForStack computes the energy of executing one command stack on one
// channel given its schedule. Dynamic energy follows command counts;
// background energy follows the schedule's wall-clock.
func (m Model) ForStack(dev timing.Device, s *pim.Stack, res *sched.Result) Breakdown {
	counts := s.Counts()
	nMAC := float64(counts[pim.MAC])
	nIO := float64(counts[pim.WRINP] + counts[pim.RDOUT])
	nAct := float64(counts[pim.ACT])
	ioBytes := nIO * float64(dev.TileBytes)
	dramBytes := nMAC * float64(dev.TileBytes) * float64(dev.Banks)
	seconds := float64(res.Total) / m.CyclesPerSecond
	return Breakdown{
		MAC:        nMAC * m.MACpJ,
		IO:         ioBytes * m.IOpJPerByte,
		Background: m.BackgroundWPerChannel * seconds * 1e12,
		Else:       nAct*m.ActPrepJ + dramBytes*m.DRAMReadpJPerByte,
	}
}

// GridDollarsPerKWh is the electricity price the serving reports use
// to convert modeled device energy into operating dollars — an
// order-of-magnitude datacenter rate (grid power plus cooling
// overhead). The reproduced claims are relational (joules/token and
// cost/Mtok ratios between systems), not absolute tariffs.
const GridDollarsPerKWh = 0.14

// GridDollars converts joules of modeled energy to dollars at the
// GridDollarsPerKWh rate (1 kWh = 3.6e6 J).
func GridDollars(joules float64) float64 {
	return joules / 3.6e6 * GridDollarsPerKWh
}

// ForAggregate computes energy from pre-aggregated counts (the cluster
// simulator path, where stacks are not materialised per channel).
func (m Model) ForAggregate(dev timing.Device, macs, ioBytes, actPre int64, busyChannels int, cycles timing.Cycles) Breakdown {
	seconds := float64(cycles) / m.CyclesPerSecond
	return Breakdown{
		MAC:        float64(macs) * m.MACpJ,
		IO:         float64(ioBytes) * m.IOpJPerByte,
		Background: m.BackgroundWPerChannel * seconds * 1e12 * float64(busyChannels),
		Else:       float64(actPre)*m.ActPrepJ + float64(macs)*float64(dev.TileBytes)*float64(dev.Banks)*m.DRAMReadpJPerByte,
	}
}
