package sched

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pimphony/internal/pim"
	"pimphony/internal/timing"
)

// devNoRefresh is the AiM device with refresh disabled, used for the exact
// Fig. 7 calibration where the paper counts raw pipeline cycles.
func devNoRefresh() timing.Device {
	d := timing.AiM16()
	d.TRFC = 0
	return d
}

// fig7Stack reproduces the paper's Fig. 7(a) command stack for the
// (1x48)*(48x32) GEMV: three input tiles, two output groups, three
// accumulating MACs per group.
func fig7Stack() *pim.Stack {
	s := pim.NewStack(64, 32)
	s.WrInp(0)
	s.WrInp(1)
	s.WrInp(2)
	s.Mac(0, 0, 0, 0)
	s.Mac(1, 0, 0, 1)
	s.Mac(2, 0, 0, 2)
	s.RdOut(0)
	s.Mac(0, 1, 0, 3)
	s.Mac(1, 1, 0, 4)
	s.Mac(2, 1, 0, 5)
	s.RdOut(1)
	return s
}

// TestFig7Calibration pins the headline numbers of the paper's Fig. 7:
// 34 cycles under the static controller, 22 cycles under DCS.
func TestFig7Calibration(t *testing.T) {
	d := devNoRefresh()
	st, err := (&Static{Dev: d}).Schedule(fig7Stack())
	if err != nil {
		t.Fatal(err)
	}
	if st.Total != 34 {
		t.Errorf("static Fig.7 total = %d cycles, want 34 (paper)", st.Total)
	}
	dc, err := (&DCS{Dev: d}).Schedule(fig7Stack())
	if err != nil {
		t.Fatal(err)
	}
	if dc.Total != 22 {
		t.Errorf("DCS Fig.7 total = %d cycles, want 22 (paper)", dc.Total)
	}
}

func TestFig7StaticIssueTimes(t *testing.T) {
	d := devNoRefresh()
	res, err := (&Static{Dev: d}).Schedule(fig7Stack())
	if err != nil {
		t.Fatal(err)
	}
	want := []timing.Cycles{0, 2, 4, 8, 11, 14, 17, 21, 24, 27, 30}
	for i, w := range want {
		if res.Issue[i] != w {
			t.Errorf("static issue[%d] = %d, want %d", i, res.Issue[i], w)
		}
	}
}

func TestBreakdownSumsToTotal(t *testing.T) {
	d := timing.AiM16()
	for _, s := range []Scheduler{&Static{Dev: d}, &PingPong{Dev: d}, &DCS{Dev: d}, &DCS{Dev: d, DisableIsMAC: true}} {
		res, err := s.Schedule(fig7Stack())
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if got := res.Breakdown.Total(); got != res.Total {
			t.Errorf("%s: breakdown sums to %d, total is %d (%+v)", s.Name(), got, res.Total, res.Breakdown)
		}
	}
}

func TestDCSNeverSlowerThanStatic(t *testing.T) {
	d := timing.AiM16()
	stacks := map[string]*pim.Stack{
		"fig7":      fig7Stack(),
		"streaming": streamingStack(64, 8),
		"rows":      rowStack(4, 8),
	}
	for name, stack := range stacks {
		st, err := (&Static{Dev: d}).Schedule(stack)
		if err != nil {
			t.Fatalf("%s static: %v", name, err)
		}
		dc, err := (&DCS{Dev: d}).Schedule(cloneStack(stack))
		if err != nil {
			t.Fatalf("%s dcs: %v", name, err)
		}
		if dc.Total > st.Total {
			t.Errorf("%s: DCS (%d) slower than static (%d)", name, dc.Total, st.Total)
		}
	}
}

func TestIsMACBypassHelps(t *testing.T) {
	d := timing.AiM16()
	stack := fig7Stack()
	with, err := (&DCS{Dev: d}).Schedule(stack)
	if err != nil {
		t.Fatal(err)
	}
	without, err := (&DCS{Dev: d, DisableIsMAC: true}).Schedule(cloneStack(stack))
	if err != nil {
		t.Fatal(err)
	}
	if with.Total >= without.Total {
		t.Errorf("is-MAC bypass should reduce latency: with=%d without=%d", with.Total, without.Total)
	}
}

// streamingStack models an SV-like streaming kernel: `tiles` input tiles are
// streamed through a GBuf of `gbufEntries` entries, each tile feeding one
// accumulating MAC into output entry 0, drained once at the end.
func streamingStack(tiles, gbufEntries int) *pim.Stack {
	s := pim.NewStack(gbufEntries, 32)
	for i := 0; i < tiles; i++ {
		e := i % gbufEntries
		s.WrInp(e)
		s.Mac(e, 0, 0, i)
	}
	s.RdOut(0)
	return s
}

// rowStack models a kernel spanning several DRAM rows with ACT/PRE pairs.
func rowStack(rows, macsPerRow int) *pim.Stack {
	s := pim.NewStack(64, 32)
	s.WrInp(0)
	for r := 0; r < rows; r++ {
		s.Act(r)
		for m := 0; m < macsPerRow; m++ {
			s.Mac(0, 0, r, m)
		}
		s.Pre(r)
	}
	s.RdOut(0)
	return s
}

func cloneStack(s *pim.Stack) *pim.Stack {
	c := pim.NewStack(s.GBufEntries, s.OutEntries)
	c.Cmds = append(c.Cmds, s.Cmds...)
	return c
}

func TestPingPongBetweenStaticAndDCS(t *testing.T) {
	d := timing.AiM16()
	stack := streamingStack(128, 16)
	st, _ := (&Static{Dev: d}).Schedule(stack)
	pp, err := (&PingPong{Dev: d}).Schedule(cloneStack(stack))
	if err != nil {
		t.Fatal(err)
	}
	dc, _ := (&DCS{Dev: d}).Schedule(cloneStack(stack))
	if !(dc.Total <= pp.Total && pp.Total <= st.Total) {
		t.Errorf("expected dcs <= pingpong <= static, got dcs=%d pp=%d static=%d",
			dc.Total, pp.Total, st.Total)
	}
	if dc.Total == pp.Total {
		t.Logf("note: DCS and ping-pong tied on this stack (dcs=%d)", dc.Total)
	}
}

func TestRowCommandsGateMACs(t *testing.T) {
	d := devNoRefresh()
	stack := rowStack(2, 2)
	res, err := (&DCS{Dev: d}).Schedule(stack)
	if err != nil {
		t.Fatal(err)
	}
	// Find ACT of row 1 and first MAC on row 1: the MAC must issue at
	// least tRCD after the ACT.
	var actIssue, macIssue timing.Cycles = -1, -1
	for i, c := range stack.Cmds {
		if c.Kind == pim.ACT && c.Row == 1 {
			actIssue = res.Issue[i]
		}
		if c.Kind == pim.MAC && c.Row == 1 && macIssue < 0 {
			macIssue = res.Issue[i]
		}
	}
	if actIssue < 0 || macIssue < 0 {
		t.Fatal("did not find row-1 ACT/MAC")
	}
	if macIssue < actIssue+d.TRCD {
		t.Errorf("MAC on row 1 issued %d, want >= ACT(%d)+tRCD(%d)", macIssue, actIssue, d.TRCD)
	}
}

// TestDependencyOrderingInvariant: under every scheduler, a MAC never
// issues before the WR-INP that produced its input tile has completed.
func TestDependencyOrderingInvariant(t *testing.T) {
	d := timing.AiM16()
	schedulers := []Scheduler{&Static{Dev: d}, &PingPong{Dev: d}, &DCS{Dev: d}}
	f := func(seed int64) bool {
		stack := randomStack(seed, 80)
		for _, s := range schedulers {
			res, err := s.Schedule(cloneStack(stack))
			if err != nil {
				return false
			}
			lastW := map[int]int{}
			for i, c := range stack.Cmds {
				switch c.Kind {
				case pim.WRINP:
					lastW[c.GBuf] = i
				case pim.MAC:
					if w, ok := lastW[c.GBuf]; ok {
						if res.Issue[i] < res.Issue[w]+d.TWRINP {
							return false
						}
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestDrainOrderingInvariant: RD-OUT never issues before its producing MAC
// completes and commits.
func TestDrainOrderingInvariant(t *testing.T) {
	d := timing.AiM16()
	schedulers := []Scheduler{&PingPong{Dev: d}, &DCS{Dev: d}}
	f := func(seed int64) bool {
		stack := randomStack(seed, 80)
		for _, s := range schedulers {
			res, err := s.Schedule(cloneStack(stack))
			if err != nil {
				return false
			}
			lastM := map[int]int{}
			for i, c := range stack.Cmds {
				switch c.Kind {
				case pim.MAC:
					lastM[c.Out] = i
				case pim.RDOUT:
					if m, ok := lastM[c.Out]; ok {
						if res.Issue[i] < res.Issue[m]+d.TMAC+d.TOBufCommit {
							return false
						}
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// randomStack generates a well-formed random command stack.
func randomStack(seed int64, n int) *pim.Stack {
	rng := rand.New(rand.NewSource(seed))
	s := pim.NewStack(16, 8)
	written := []int{}
	pending := map[int]bool{}
	for i := 0; i < n; i++ {
		switch rng.Intn(4) {
		case 0, 1:
			g := rng.Intn(16)
			s.WrInp(g)
			written = append(written, g)
		case 2:
			if len(written) == 0 {
				continue
			}
			g := written[rng.Intn(len(written))]
			s.Mac(g, rng.Intn(8), 0, i)
			pending[rng.Intn(8)] = true
		case 3:
			for o := range pending {
				if hasAccum(s, o) {
					s.RdOut(o)
				}
				delete(pending, o)
				break
			}
		}
	}
	return s
}

// hasAccum reports whether output entry o has a pending accumulation in s.
func hasAccum(s *pim.Stack, o int) bool {
	pending := false
	for _, c := range s.Cmds {
		if c.Kind == pim.MAC && c.Out == o {
			pending = true
		}
		if c.Kind == pim.RDOUT && c.Out == o {
			pending = false
		}
	}
	return pending
}

// TestBreakdownSumsProperty: across random stacks and all schedulers the
// breakdown always sums exactly to the total.
func TestBreakdownSumsProperty(t *testing.T) {
	d := timing.AiM16()
	schedulers := []Scheduler{&Static{Dev: d}, &PingPong{Dev: d}, &DCS{Dev: d}}
	f := func(seed int64) bool {
		stack := randomStack(seed, 60)
		for _, s := range schedulers {
			res, err := s.Schedule(cloneStack(stack))
			if err != nil {
				return false
			}
			if res.Breakdown.Total() != res.Total {
				return false
			}
			if res.MACUtilization() < 0 || res.MACUtilization() > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyIshStacks(t *testing.T) {
	d := timing.AiM16()
	s := pim.NewStack(4, 4)
	s.WrInp(0) // I/O-only stack
	for _, sc := range []Scheduler{&Static{Dev: d}, &PingPong{Dev: d}, &DCS{Dev: d}} {
		res, err := sc.Schedule(cloneStack(s))
		if err != nil {
			t.Fatalf("%s on IO-only stack: %v", sc.Name(), err)
		}
		if res.Total <= 0 {
			t.Errorf("%s: non-positive total %d", sc.Name(), res.Total)
		}
		if res.Breakdown.Total() != res.Total {
			t.Errorf("%s: breakdown mismatch on IO-only stack", sc.Name())
		}
	}
}

func TestInvalidStackRejected(t *testing.T) {
	d := timing.AiM16()
	bad := pim.NewStack(2, 2)
	bad.Mac(0, 0, 0, 0) // read before write
	for _, sc := range []Scheduler{&Static{Dev: d}, &PingPong{Dev: d}, &DCS{Dev: d}} {
		if _, err := sc.Schedule(bad); err == nil {
			t.Errorf("%s accepted an invalid stack", sc.Name())
		}
	}
}

func TestReasonStrings(t *testing.T) {
	for r := ReasonNone; r <= ReasonInOrder; r++ {
		if r.String() == "" {
			t.Errorf("Reason(%d) renders empty", r)
		}
	}
}

func TestSchedulerNames(t *testing.T) {
	d := timing.AiM16()
	if (&Static{Dev: d}).Name() != "static" ||
		(&PingPong{Dev: d}).Name() != "pingpong" ||
		(&DCS{Dev: d}).Name() != "dcs" ||
		(&DCS{Dev: d, DisableIsMAC: true}).Name() != "dcs-no-ismac" {
		t.Fatal("scheduler names changed; experiment tables key on them")
	}
}
