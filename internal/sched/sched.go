// Package sched implements the three PIM command controllers compared in the
// paper: the conventional static in-order controller, a ping-pong
// (dual-region) buffering controller, and PIMphony's Dynamic PIM Command
// Scheduling (DCS) controller with per-buffer-entry dependency tracking.
//
// All controllers consume a pim.Stack (a linear command stream for one
// channel) and produce a Result with per-command issue times, the total
// latency, a latency breakdown in the categories of the paper's Fig. 8/9
// (MAC, ACT/PRE, REF, DT-GBuf, DT-OutReg, pipeline penalty) and the MAC-unit
// utilization.
//
// Timing semantics (calibrated to reproduce the paper's Fig. 7 example,
// 34 cycles static and 22 cycles DCS):
//
//   - The I/O data bus pipelines 32 B tiles: consecutive WR-INP/RD-OUT
//     issues are at least tCCDS apart. The MAC pipeline likewise accepts one
//     MAC per tCCDS.
//   - A command's effect completes execLatency(kind) cycles after issue
//     (tWR-INP, tMAC, tRD-OUT, tRCD, tRP).
//   - A RD-OUT additionally waits tOBufCommit for the last accumulate to
//     commit into the output buffer.
//   - The static controller issues strictly in order and separates
//     consecutive commands by the predecessor's fixed execution time, except
//     for same-kind I/O streams which pipeline at tCCDS (Sec. V-A).
//   - DCS splits commands into an I/O transfer queue and a compute queue,
//     issues out of order across queues, in order within each queue, and
//     waits only on true per-entry dependencies recorded in the D-Table.
//     Consecutive MACs to the same output entry chain at tCCDS (is-MAC flag).
//   - Ping-pong halves GBuf and the output registers into two regions and
//     tracks dependencies at region granularity only, reproducing the
//     hand-off stalls of dual-buffering schemes (Sec. VIII-C, Fig. 18).
package sched

import (
	"fmt"
	"math"

	"pimphony/internal/pim"
	"pimphony/internal/timing"
)

// Reason says which constraint was binding when a command was issued. It
// drives the latency-breakdown attribution.
type Reason uint8

const (
	// ReasonNone: the command issued as soon as its pipeline allowed.
	ReasonNone Reason = iota
	// ReasonBus: the command waited for its issue pipeline (I/O bus or MAC
	// pipeline) to free up.
	ReasonBus
	// ReasonDepWR: waited for a WR-INP to complete (input transfer).
	ReasonDepWR
	// ReasonDepRD: waited for an RD-OUT to complete (output drain).
	ReasonDepRD
	// ReasonDepMAC: waited for a MAC to complete.
	ReasonDepMAC
	// ReasonRow: waited for a row activate/precharge.
	ReasonRow
	// ReasonInOrder: waited for queue order (static program order).
	ReasonInOrder
)

// String implements fmt.Stringer.
func (r Reason) String() string {
	switch r {
	case ReasonNone:
		return "none"
	case ReasonBus:
		return "bus"
	case ReasonDepWR:
		return "dep-wrinp"
	case ReasonDepRD:
		return "dep-rdout"
	case ReasonDepMAC:
		return "dep-mac"
	case ReasonRow:
		return "row"
	case ReasonInOrder:
		return "in-order"
	default:
		return fmt.Sprintf("Reason(%d)", uint8(r))
	}
}

// Breakdown decomposes a schedule's total latency into the categories used
// by the paper's Fig. 8 and Fig. 9. All components sum to Total.
type Breakdown struct {
	MAC      timing.Cycles // cycles the MAC pipeline was genuinely busy
	ActPre   timing.Cycles // stalls waiting on DRAM activate/precharge
	Refresh  timing.Cycles // refresh overhead (tRFC/tREFI stretch)
	DTGBuf   timing.Cycles // stalls waiting on input transfers into GBuf
	DTOutReg timing.Cycles // stalls waiting on output drains from OutReg/OBuf
	Penalty  timing.Cycles // cumulative pipeline penalty (other stalls)
}

// Total is the sum of all breakdown components.
func (b Breakdown) Total() timing.Cycles {
	return b.MAC + b.ActPre + b.Refresh + b.DTGBuf + b.DTOutReg + b.Penalty
}

// Add accumulates another breakdown into this one.
func (b *Breakdown) Add(o Breakdown) {
	b.MAC += o.MAC
	b.ActPre += o.ActPre
	b.Refresh += o.Refresh
	b.DTGBuf += o.DTGBuf
	b.DTOutReg += o.DTOutReg
	b.Penalty += o.Penalty
}

// Result is the outcome of scheduling one command stack.
type Result struct {
	Scheduler string
	Total     timing.Cycles   // end-to-end latency including refresh stretch
	Issue     []timing.Cycles // per-command issue cycle (indexed by cmd ID)
	Reasons   []Reason        // binding constraint per command
	Breakdown Breakdown
	NumMAC    int
	NumIO     int
}

// MACUtilization is the fraction of the total latency during which the MAC
// pipeline was busy.
func (r *Result) MACUtilization() float64 {
	if r.Total == 0 {
		return 0
	}
	return float64(r.Breakdown.MAC) / float64(r.Total)
}

// Scheduler schedules a command stack onto one PIM channel.
type Scheduler interface {
	Name() string
	Schedule(s *pim.Stack) (*Result, error)
}

// execLatency is the completion latency of a command kind.
func execLatency(d timing.Device, k pim.Kind) timing.Cycles {
	switch k {
	case pim.WRINP:
		return d.TWRINP
	case pim.MAC:
		return d.TMAC
	case pim.RDOUT:
		return d.TRDOUT
	case pim.ACT:
		return d.TRCD
	case pim.PRE:
		return d.TRP
	default:
		return d.TCCDS
	}
}

const inf = timing.Cycles(math.MaxInt64 / 4)

// negOnes returns an int slice of length n filled with -1 ("no command").
func negOnes(n int) []int {
	s := make([]int, n)
	for i := range s {
		s[i] = -1
	}
	return s
}

// ---------------------------------------------------------------------------
// Static controller
// ---------------------------------------------------------------------------

// Static is the conventional in-order PIM controller: it separates every
// pair of consecutive commands by the predecessor's fixed execution time
// (pessimistically assuming a dependency), pipelining only same-kind I/O
// streams at tCCDS.
type Static struct {
	Dev timing.Device
}

// Name implements Scheduler.
func (s *Static) Name() string { return "static" }

// staticGap returns the static controller's mandatory issue gap after prev
// when cur follows it in program order.
func staticGap(d timing.Device, prev, cur pim.Kind) timing.Cycles {
	if prev == cur && (prev == pim.WRINP || prev == pim.RDOUT) {
		return d.TCCDS // pipelined tile streaming
	}
	return execLatency(d, prev)
}

// gapReason attributes a static gap to the breakdown category of the
// command that imposed it.
func gapReason(prev pim.Kind) Reason {
	switch prev {
	case pim.WRINP:
		return ReasonDepWR
	case pim.MAC:
		return ReasonDepMAC
	case pim.RDOUT:
		return ReasonDepRD
	case pim.ACT, pim.PRE:
		return ReasonRow
	default:
		return ReasonInOrder
	}
}

// Schedule implements Scheduler.
func (s *Static) Schedule(st *pim.Stack) (*Result, error) {
	if err := st.Validate(); err != nil {
		return nil, fmt.Errorf("sched: invalid stack: %w", err)
	}
	n := len(st.Cmds)
	res := &Result{Scheduler: s.Name(), Issue: make([]timing.Cycles, n), Reasons: make([]Reason, n)}
	var t timing.Cycles
	for i, c := range st.Cmds {
		if i > 0 {
			prev := st.Cmds[i-1]
			gap := staticGap(s.Dev, prev.Kind, c.Kind)
			t += gap
			if gap > s.Dev.TCCDS {
				res.Reasons[i] = gapReason(prev.Kind)
			} else {
				res.Reasons[i] = ReasonBus
			}
		}
		res.Issue[i] = t
	}
	finalize(s.Dev, st, res)
	return res, nil
}

// ---------------------------------------------------------------------------
// Shared two-queue engine (DCS and ping-pong)
// ---------------------------------------------------------------------------

// dep is a dependency edge: the command may not issue before the wait bound
// derived from the dependee's issue time.
type dep struct {
	id     int    // dependee command ID
	pipe   bool   // true: wait issue+tCCDS (is-MAC chain); false: wait completion
	commit bool   // true: add tOBufCommit after completion (RD-OUT after MAC)
	why    Reason // attribution if this edge is binding
}

// queued pairs a command with its dependency edges.
type queued struct {
	cmd  pim.Command
	deps []dep
}

// isIO reports whether a command issues on the I/O transfer queue.
func isIO(k pim.Kind) bool { return k == pim.WRINP || k == pim.RDOUT }

// runQueues executes the dual-queue out-of-order engine: in-order within the
// I/O and compute queues, out-of-order across them, waiting only on the
// provided dependency edges. Ties are broken in favour of the I/O queue so
// input prefetches are not starved by long MAC chains.
func runQueues(d timing.Device, st *pim.Stack, name string, depsOf func() [][]dep) (*Result, error) {
	if err := st.Validate(); err != nil {
		return nil, fmt.Errorf("sched: invalid stack: %w", err)
	}
	n := len(st.Cmds)
	allDeps := depsOf()
	if len(allDeps) != n {
		return nil, fmt.Errorf("sched: dependency pass returned %d entries for %d commands", len(allDeps), n)
	}
	var ioQ, cQ []queued
	for i, c := range st.Cmds {
		q := queued{cmd: c, deps: allDeps[i]}
		if isIO(c.Kind) {
			ioQ = append(ioQ, q)
		} else {
			cQ = append(cQ, q)
		}
	}
	res := &Result{Scheduler: name, Issue: make([]timing.Cycles, n), Reasons: make([]Reason, n)}
	issued := make([]bool, n)
	var ioFree, macFree timing.Cycles
	ioHead, cHead := 0, 0

	earliest := func(q queued, resFree timing.Cycles) (timing.Cycles, Reason) {
		t := resFree
		why := ReasonNone
		if resFree > 0 {
			why = ReasonBus
		}
		for _, dp := range q.deps {
			if !issued[dp.id] {
				return inf, ReasonInOrder
			}
			bound := res.Issue[dp.id]
			if dp.pipe {
				bound += d.TCCDS
			} else {
				bound += execLatency(d, st.Cmds[dp.id].Kind)
				if dp.commit {
					bound += d.TOBufCommit
				}
			}
			if bound > t {
				t, why = bound, dp.why
			}
		}
		return t, why
	}

	for ioHead < len(ioQ) || cHead < len(cQ) {
		tIO, whyIO := inf, ReasonNone
		if ioHead < len(ioQ) {
			tIO, whyIO = earliest(ioQ[ioHead], ioFree)
		}
		tC, whyC := inf, ReasonNone
		if cHead < len(cQ) {
			tC, whyC = earliest(cQ[cHead], macFree)
		}
		if tIO == inf && tC == inf {
			return nil, fmt.Errorf("sched: %s deadlocked with io head %d / compute head %d", name, ioHead, cHead)
		}
		if tIO <= tC {
			q := ioQ[ioHead]
			res.Issue[q.cmd.ID] = tIO
			res.Reasons[q.cmd.ID] = whyIO
			issued[q.cmd.ID] = true
			ioFree = tIO + d.TCCDS
			ioHead++
		} else {
			q := cQ[cHead]
			res.Issue[q.cmd.ID] = tC
			res.Reasons[q.cmd.ID] = whyC
			issued[q.cmd.ID] = true
			macFree = tC + d.TCCDS
			cHead++
		}
	}
	finalize(d, st, res)
	return res, nil
}

// ---------------------------------------------------------------------------
// DCS controller
// ---------------------------------------------------------------------------

// DCS is PIMphony's dynamic command scheduler: D-Table per-entry dependency
// assignment, S-Table readiness checks, dual queues and the is-MAC
// accumulate bypass. IsMACBypass can be disabled for ablation.
type DCS struct {
	Dev timing.Device
	// DisableIsMAC turns off the is-MAC flag: consecutive MACs to the same
	// output entry then wait for full tMAC completion (ablation knob).
	DisableIsMAC bool
}

// Name implements Scheduler.
func (s *DCS) Name() string {
	if s.DisableIsMAC {
		return "dcs-no-ismac"
	}
	return "dcs"
}

// Schedule implements Scheduler.
func (s *DCS) Schedule(st *pim.Stack) (*Result, error) {
	return runQueues(s.Dev, st, s.Name(), func() [][]dep {
		// D-Table: last writer / reader per GBuf entry, last MAC / drain per
		// output entry, plus row-state tracking.
		n := len(st.Cmds)
		deps := make([][]dep, n)
		lastGW := negOnes(st.GBufEntries) // GBuf entry -> last WR-INP
		lastGR := negOnes(st.GBufEntries) // GBuf entry -> last MAC reader
		lastOW := negOnes(st.OutEntries)  // out entry -> last MAC accumulate
		lastOR := negOnes(st.OutEntries)  // out entry -> last RD-OUT
		lastAct, lastPre, lastRowMAC := -1, -1, -1
		add := func(i int, dp dep) { deps[i] = append(deps[i], dp) }
		for i, c := range st.Cmds {
			switch c.Kind {
			case pim.WRINP:
				if id := lastGW[c.GBuf]; id >= 0 {
					add(i, dep{id: id, why: ReasonDepWR}) // WAW
				}
				if id := lastGR[c.GBuf]; id >= 0 {
					add(i, dep{id: id, why: ReasonDepMAC}) // WAR: reader must finish
				}
				lastGW[c.GBuf] = i
			case pim.MAC:
				if id := lastGW[c.GBuf]; id >= 0 {
					add(i, dep{id: id, why: ReasonDepWR}) // RAW on input tile
				}
				if id := lastOR[c.Out]; id >= 0 {
					add(i, dep{id: id, why: ReasonDepRD}) // WAR: drain before reuse
				}
				if id := lastOW[c.Out]; id >= 0 {
					if s.DisableIsMAC {
						add(i, dep{id: id, why: ReasonDepMAC})
					} else {
						add(i, dep{id: id, pipe: true, why: ReasonDepMAC}) // is-MAC chain
					}
				}
				if lastAct >= 0 {
					add(i, dep{id: lastAct, why: ReasonRow})
				}
				lastGR[c.GBuf] = i
				lastOW[c.Out] = i
				lastRowMAC = i
			case pim.RDOUT:
				if id := lastOW[c.Out]; id >= 0 {
					add(i, dep{id: id, commit: true, why: ReasonDepMAC})
				}
				lastOR[c.Out] = i
			case pim.ACT:
				if lastPre >= 0 {
					add(i, dep{id: lastPre, why: ReasonRow})
				}
				lastAct = i
			case pim.PRE:
				if lastRowMAC >= 0 {
					add(i, dep{id: lastRowMAC, why: ReasonDepMAC})
				}
				lastPre = i
			}
		}
		return deps
	})
}

// ---------------------------------------------------------------------------
// Ping-pong controller
// ---------------------------------------------------------------------------

// PingPong models dual-buffering schemes (PipePIM-style): GBuf and the
// output registers are split into two regions; I/O to one region may overlap
// compute on the other, but dependencies are tracked only at region
// granularity, so region hand-offs stall until the whole region is idle.
type PingPong struct {
	Dev timing.Device
}

// Name implements Scheduler.
func (s *PingPong) Name() string { return "pingpong" }

// Schedule implements Scheduler.
func (s *PingPong) Schedule(st *pim.Stack) (*Result, error) {
	gHalf := st.GBufEntries / 2
	if gHalf == 0 {
		gHalf = 1
	}
	oHalf := st.OutEntries / 2
	if oHalf == 0 {
		oHalf = 1
	}
	gRegion := func(e int) int { return e / gHalf }
	oRegion := func(e int) int { return e / oHalf }
	return runQueues(s.Dev, st, s.Name(), func() [][]dep {
		n := len(st.Cmds)
		deps := make([][]dep, n)
		gRegions := st.GBufEntries/gHalf + 1
		oRegions := st.OutEntries/oHalf + 1
		lastGW := negOnes(gRegions) // gbuf region -> last WR-INP
		lastGR := negOnes(gRegions) // gbuf region -> last MAC reader
		lastOW := negOnes(oRegions) // out region -> last MAC
		lastOR := negOnes(oRegions) // out region -> last RD-OUT
		lastAct, lastPre, lastRowMAC := -1, -1, -1
		add := func(i int, dp dep) { deps[i] = append(deps[i], dp) }
		for i, c := range st.Cmds {
			switch c.Kind {
			case pim.WRINP:
				r := gRegion(c.GBuf)
				if id := lastGR[r]; id >= 0 {
					add(i, dep{id: id, why: ReasonDepMAC}) // region hand-off
				}
				lastGW[r] = i
			case pim.MAC:
				r := gRegion(c.GBuf)
				if id := lastGW[r]; id >= 0 {
					add(i, dep{id: id, why: ReasonDepWR}) // whole region filled
				}
				or := oRegion(c.Out)
				if id := lastOR[or]; id >= 0 {
					add(i, dep{id: id, why: ReasonDepRD})
				}
				if lastAct >= 0 {
					add(i, dep{id: lastAct, why: ReasonRow})
				}
				lastGR[r] = i
				lastOW[or] = i
				lastRowMAC = i
			case pim.RDOUT:
				or := oRegion(c.Out)
				if id := lastOW[or]; id >= 0 {
					add(i, dep{id: id, commit: true, why: ReasonDepMAC})
				}
				lastOR[or] = i
			case pim.ACT:
				if lastPre >= 0 {
					add(i, dep{id: lastPre, why: ReasonRow})
				}
				lastAct = i
			case pim.PRE:
				if lastRowMAC >= 0 {
					add(i, dep{id: lastRowMAC, why: ReasonDepMAC})
				}
				lastPre = i
			}
		}
		return deps
	})
}

// ---------------------------------------------------------------------------
// Breakdown finalization
// ---------------------------------------------------------------------------

// finalize computes Total and the latency breakdown from issue times. The
// breakdown is built over the MAC-pipeline timeline: the MAC component is
// the pipeline's busy time (one tCCDS slot per MAC); all idle gaps between
// MAC issues are attributed to the binding constraint of the waiting MAC;
// the lead-in before the first MAC and the drain after the last are
// attributed to their binding causes. A refresh stretch is applied last.
func finalize(d timing.Device, st *pim.Stack, res *Result) {
	var end timing.Cycles
	for i, c := range st.Cmds {
		done := res.Issue[i] + execLatency(d, c.Kind)
		if done > end {
			end = done
		}
		if c.Kind == pim.MAC {
			res.NumMAC++
		} else if isIO(c.Kind) {
			res.NumIO++
		}
	}
	b := &res.Breakdown
	attribute := func(cycles timing.Cycles, why Reason) {
		if cycles <= 0 {
			return
		}
		switch why {
		case ReasonDepWR:
			b.DTGBuf += cycles
		case ReasonDepRD:
			b.DTOutReg += cycles
		case ReasonRow:
			b.ActPre += cycles
		default:
			b.Penalty += cycles
		}
	}
	if res.NumMAC > 0 {
		b.MAC = timing.Cycles(res.NumMAC) * d.TCCDS
		prev := timing.Cycles(-1)
		var lastMAC timing.Cycles
		first := true
		for i, c := range st.Cmds {
			if c.Kind != pim.MAC {
				continue
			}
			t := res.Issue[i]
			if first {
				attribute(t, leadReason(res.Reasons[i]))
				first = false
			} else {
				attribute(t-prev-d.TCCDS, res.Reasons[i])
			}
			prev = t
			if t > lastMAC {
				lastMAC = t
			}
		}
		// Drain: everything after the last MAC slot is output drain time.
		b.DTOutReg += end - (lastMAC + d.TCCDS)
	} else {
		// Pure I/O stack: attribute everything to transfer time.
		b.DTGBuf = end
	}
	total, ref := d.StretchForRefresh(end)
	b.Refresh = ref
	res.Total = total
}

// leadReason maps the first MAC's binding constraint to a breakdown
// category; an unconstrained first MAC is still waiting on input transfers.
func leadReason(r Reason) Reason {
	if r == ReasonNone || r == ReasonBus {
		return ReasonDepWR
	}
	return r
}
