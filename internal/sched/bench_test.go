package sched

import (
	"testing"

	"pimphony/internal/kernels"
	"pimphony/internal/pim"
	"pimphony/internal/timing"
)

// benchStack builds a realistic attention stack (~37K commands) once.
func benchStack(b *testing.B) *pim.Stack {
	b.Helper()
	d := timing.AiM16()
	cfg := kernels.NewConfig(d, kernels.OBufBuffers(d))
	s, err := cfg.QKT(65536, 128, 1, false)
	if err != nil {
		b.Fatal(err)
	}
	return s
}

func benchScheduler(b *testing.B, s Scheduler) {
	stack := benchStack(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := s.Schedule(stack)
		if err != nil {
			b.Fatal(err)
		}
		_ = res.Total
	}
	b.ReportMetric(float64(stack.Len()), "cmds/op")
}

// BenchmarkStaticScheduler measures the static controller's simulation
// throughput on a 64K-token QK^T stack.
func BenchmarkStaticScheduler(b *testing.B) { benchScheduler(b, &Static{Dev: timing.AiM16()}) }

// BenchmarkDCSScheduler measures the DCS engine (D-Table pass + dual-queue
// issue loop) on the same stack.
func BenchmarkDCSScheduler(b *testing.B) { benchScheduler(b, &DCS{Dev: timing.AiM16()}) }

// BenchmarkPingPongScheduler measures the region-granular engine.
func BenchmarkPingPongScheduler(b *testing.B) { benchScheduler(b, &PingPong{Dev: timing.AiM16()}) }
