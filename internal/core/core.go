// Package core is PIMphony's public orchestration API: it wires the
// compiler (kernel detection and PIM program lowering), the on-module
// dispatcher (DPA program loading and per-request state) and the
// multi-node cluster simulator behind one facade, and provides the
// paper's evaluated system presets (CENT-style PIM-only, NeuPIMs-style
// xPU+PIM, the A100 GPU baseline and an L3/LoL-PIM-style DIMM-PIM
// system), each resolved through the internal/backend registry.
//
// Typical use:
//
//	cfg := core.CENT(model.LLM7B32K(), core.PIMphony())
//	sys, err := core.NewSystem(cfg)
//	rep, err := sys.Serve(workload.NewGenerator(workload.QMSum(), 1).Batch(64))
//
// The incremental study helper reproduces the +TCP/+DCS/+DPA bars of the
// paper's Fig. 13/14.
package core

import (
	"context"
	"fmt"
	"strings"

	"pimphony/internal/backend"
	"pimphony/internal/cluster"
	"pimphony/internal/compiler"
	"pimphony/internal/dispatch"
	"pimphony/internal/model"
	"pimphony/internal/sweep"
	"pimphony/internal/timing"
	"pimphony/internal/workload"
)

// Technique re-exports the cluster toggles.
type Technique = cluster.Technique

// Baseline returns the all-off technique set (the prior-work PIM stack).
func Baseline() Technique { return cluster.Baseline() }

// PIMphony returns the full technique set (TCP + DCS + DPA).
func PIMphony() Technique { return cluster.PIMphony() }

// Report re-exports the cluster report.
type Report = cluster.Report

// Config is a fully specified system to simulate.
type Config = cluster.Config

// optimalParallelism picks the paper's "optimal TP/PP" default: maximise
// tensor parallelism up to the KV-head count, pipeline the rest.
func optimalParallelism(m model.Config, modules int) (tp, pp int) {
	tp = m.KVHeads()
	if tp > modules {
		tp = modules
	}
	for modules%tp != 0 {
		tp--
	}
	pp = modules / tp
	for pp > 1 && m.Layers%pp != 0 {
		tp, pp = tp*pp, 1 // fall back to pure TP if layers do not divide
	}
	return tp, pp
}

// CENT returns the PIM-only preset: 16 GiB modules with 32 PIM channels;
// 8 modules (128 GiB) for 7B-class models, 32 modules (512 GiB) for
// 72B-class models.
func CENT(m model.Config, tech Technique) Config {
	modules := 8
	if m.DIn > 4096 {
		modules = 32
	}
	dev := timing.AiM16().WithChannels(32).WithCapacity(16 << 30)
	tp, pp := optimalParallelism(m, modules)
	return Config{
		Name:         fmt.Sprintf("cent-%s", m.Name),
		Backend:      cluster.PIMOnly,
		Dev:          dev,
		Modules:      modules,
		TP:           tp,
		PP:           pp,
		Model:        m,
		Tech:         tech,
		RowReuse:     m.IsGQA(),
		DecodeWindow: 4,
	}
}

// NeuPIMs returns the xPU+PIM preset: 32 GiB modules with an NPU; 4
// modules (128 GiB) for 7B-class models, 16 modules (512 GiB) for
// 72B-class models. NeuPIMs scales through tensor parallelism only,
// sharding the token axis across module groups once TP exceeds the KV-head
// count (the stability the paper notes in Fig. 17).
func NeuPIMs(m model.Config, tech Technique) Config {
	modules := 4
	if m.DIn > 4096 {
		modules = 16
	}
	dev := timing.AiM16().WithChannels(32).WithCapacity(32 << 30)
	tp, pp := modules, 1
	return Config{
		Name:         fmt.Sprintf("neupims-%s", m.Name),
		Backend:      cluster.XPUPIM,
		Dev:          dev,
		Modules:      modules,
		TP:           tp,
		PP:           pp,
		Model:        m,
		Tech:         tech,
		RowReuse:     m.IsGQA(),
		DecodeWindow: 4,
	}
}

// GPU returns the A100 baseline of Fig. 20: GPU memory matched to the PIM
// system (two A100-80GB for 7B models, eight for 72B).
func GPU(m model.Config) Config {
	gpus := 2
	if m.DIn > 4096 {
		gpus = 8
	}
	return Config{
		Name:         fmt.Sprintf("a100x%d-%s", gpus, m.Name),
		Backend:      cluster.GPUSystem,
		Model:        m,
		GPUs:         gpus,
		DecodeWindow: 4,
	}
}

// DIMMPIM returns the L3/LoL-PIM-style DIMM-PIM preset: 64 GiB DDR5
// DIMMs whose rank-level PIM units run attention while a host GPU runs
// the FC projections out of its own HBM, so every DIMM byte serves KV
// cache. 8 DIMMs (512 GiB of KV) for 7B-class models, 16 DIMMs (1 TiB)
// for 72B-class — the capacity-first scale-out these systems trade on.
func DIMMPIM(m model.Config, tech Technique) Config {
	modules := 8
	if m.DIn > 4096 {
		modules = 16
	}
	dev := timing.DDR5DIMM()
	tp, pp := optimalParallelism(m, modules)
	return Config{
		Name:         fmt.Sprintf("dimmpim-%s", m.Name),
		Backend:      cluster.DIMMPIM,
		Dev:          dev,
		Modules:      modules,
		TP:           tp,
		PP:           pp,
		Model:        m,
		Tech:         tech,
		RowReuse:     m.IsGQA(),
		DecodeWindow: 4,
	}
}

// Preset pairs a registered backend with its paper-evaluated
// configuration builder and the CLI shorthands that select it.
type Preset struct {
	// Backend is the registry name (backend.Names() entry).
	Backend string
	// Aliases are accepted CLI spellings besides the backend name.
	Aliases []string
	// Make builds the evaluated configuration for a model. Technique
	// toggles are ignored by backends without PIM attention (the GPU).
	Make func(m model.Config, tech Technique) Config
}

// Presets returns the evaluated configuration builder for every
// registered backend, in registry (sorted-name) order.
func Presets() []Preset {
	byName := map[string]Preset{
		cluster.PIMOnly: {Backend: cluster.PIMOnly, Aliases: []string{"cent"}, Make: CENT},
		cluster.XPUPIM:  {Backend: cluster.XPUPIM, Aliases: []string{"neupims"}, Make: NeuPIMs},
		cluster.GPUSystem: {Backend: cluster.GPUSystem, Aliases: []string{"a100"},
			Make: func(m model.Config, _ Technique) Config { return GPU(m) }},
		cluster.DIMMPIM: {Backend: cluster.DIMMPIM, Aliases: []string{"l3", "lolpim"}, Make: DIMMPIM},
	}
	var out []Preset
	for _, name := range backend.Names() {
		if p, ok := byName[name]; ok {
			out = append(out, p)
		}
	}
	return out
}

// PresetByFlag resolves a CLI -system value — a backend registry name or
// one of its aliases, case-insensitive — through the backend registry.
func PresetByFlag(name string) (Preset, error) {
	want := strings.ToLower(strings.TrimSpace(name))
	var known []string
	for _, p := range Presets() {
		if want == p.Backend {
			return p, nil
		}
		known = append(known, p.Backend)
		for _, a := range p.Aliases {
			if want == a {
				return p, nil
			}
			known = append(known, a)
		}
	}
	return Preset{}, fmt.Errorf("unknown system %q (known: %s)", name, strings.Join(known, ", "))
}

// System is the orchestrator facade: a compiled model, per-module
// dispatchers and the cluster simulator.
type System struct {
	cfg      Config
	sim      *cluster.System
	compiled *compiler.Compiled
	// dispatchers is one on-module dispatcher per module (nil for
	// backends without PIM attention, which have no PIM programs).
	dispatchers []*dispatch.Dispatcher
}

// NewSystem compiles the model for the configured target, loads the DPA
// programs into every module's dispatcher and prepares the simulator.
// Backends without PIM attention (the GPU baseline) skip the compile
// and dispatch stages — they have no PIM programs to run.
func NewSystem(cfg Config) (*System, error) {
	sim, err := cluster.New(cfg)
	if err != nil {
		return nil, err
	}
	s := &System{cfg: cfg, sim: sim}
	if !sim.Backend().PIMAttention() {
		return s, nil
	}
	comp, err := compiler.Compile(cfg.Model, compiler.Target{Dev: cfg.Dev, TCP: cfg.Tech.TCP})
	if err != nil {
		return nil, fmt.Errorf("core: compiling %s: %w", cfg.Model.Name, err)
	}
	s.compiled = comp
	for i := 0; i < cfg.Modules; i++ {
		d := dispatch.New(cfg.Dev)
		for _, p := range comp.DPAttn {
			if err := d.LoadProgram(p); err != nil {
				return nil, fmt.Errorf("core: module %d: %w", i, err)
			}
		}
		for _, p := range comp.FCProgs {
			if err := d.LoadProgram(p); err != nil {
				return nil, fmt.Errorf("core: module %d: %w", i, err)
			}
		}
		s.dispatchers = append(s.dispatchers, d)
	}
	return s, nil
}

// Config returns the system configuration.
func (s *System) Config() Config { return s.cfg }

// Compiled exposes the compilation result (nil for backends without PIM
// attention).
func (s *System) Compiled() *compiler.Compiled { return s.compiled }

// InstructionFootprint reports the per-layer attention instruction bytes
// for this system: the DPA encoding when DPA is enabled, otherwise the
// static unrolling at the model's context window.
func (s *System) InstructionFootprint() (int64, error) {
	if s.compiled == nil {
		return 0, fmt.Errorf("core: %s has no PIM programs", s.cfg.Name)
	}
	if s.cfg.Tech.DPA {
		return s.compiled.DPAFootprint(), nil
	}
	tmax := s.cfg.TMaxOverride
	if tmax == 0 {
		tmax = s.cfg.Model.ContextWindow
	}
	return s.compiled.StaticFootprint(tmax)
}

// Serve simulates a decode window over the candidate requests, registering
// them with the module dispatchers first (DPA systems track per-request
// token state on-module).
func (s *System) Serve(reqs []workload.Request) (*Report, error) {
	return s.ServeCtx(context.Background(), reqs)
}

// ServeCtx is Serve with cancellation: the decode loop aborts between
// iterations once ctx is done, so grid sweeps can stop in-flight
// simulations when a sibling point fails.
func (s *System) ServeCtx(ctx context.Context, reqs []workload.Request) (*Report, error) {
	if s.cfg.Tech.DPA && len(s.dispatchers) > 0 {
		prog := s.compiled.DPAttn[0].Name
		d := s.dispatchers[0]
		for _, r := range reqs {
			// Registration is idempotent per request across Serve calls.
			if _, err := d.TCur(r.ID); err == nil {
				continue
			}
			if err := d.Register(r.ID, r.Context, prog); err != nil {
				return nil, fmt.Errorf("core: registering request %d: %w", r.ID, err)
			}
		}
	}
	return s.sim.RunCtx(ctx, reqs)
}

// Sweep builds one full System (compile + dispatcher load) per
// configuration and serves each against the shared candidate pool,
// fanning the independent simulations through the sweep engine. Reports
// come back in input order; the first failing configuration cancels the
// rest (in-flight decode loops abort between iterations). It is the
// facade-level counterpart of cluster.Sweep for grids that share one
// request pool; grids with per-point pools (e.g. cmd/pimphony-sim's
// trace cross-product) call sweep.Run with ServeCtx directly.
func Sweep(ctx context.Context, cfgs []Config, reqs []workload.Request, opts ...sweep.Option) ([]*Report, error) {
	return sweep.Run(ctx, cfgs, func(ctx context.Context, cfg Config) (*Report, error) {
		sys, err := NewSystem(cfg)
		if err != nil {
			return nil, err
		}
		return sys.ServeCtx(ctx, reqs)
	}, opts...)
}

// StageResult is one bar of the incremental technique study.
type StageResult struct {
	Stage  string
	Tech   Technique
	Report *Report
}

// Stages returns the incremental technique ladder of Fig. 13/14.
func Stages() []StageResult {
	return []StageResult{
		{Stage: "baseline", Tech: Technique{}},
		{Stage: "+TCP", Tech: Technique{TCP: true}},
		{Stage: "+DCS", Tech: Technique{TCP: true, DCS: true}},
		{Stage: "+DPA", Tech: Technique{TCP: true, DCS: true, DPA: true}},
	}
}

// IncrementalStudy runs the technique ladder on copies of a configuration,
// returning one report per stage.
func IncrementalStudy(cfg Config, reqs []workload.Request) ([]StageResult, error) {
	return IncrementalStudyCtx(context.Background(), cfg, reqs)
}

// IncrementalStudyCtx is IncrementalStudy with cancellation: the four
// stages are independent simulations (each builds its own System over
// the shared read-only request pool), so they fan out through the sweep
// engine and come back in ladder order.
func IncrementalStudyCtx(ctx context.Context, cfg Config, reqs []workload.Request) ([]StageResult, error) {
	return sweep.Run(ctx, Stages(), func(ctx context.Context, st StageResult) (StageResult, error) {
		c := cfg
		c.Tech = st.Tech
		sys, err := NewSystem(c)
		if err != nil {
			return st, fmt.Errorf("core: stage %s: %w", st.Stage, err)
		}
		rep, err := sys.ServeCtx(ctx, reqs)
		if err != nil {
			return st, fmt.Errorf("core: stage %s: %w", st.Stage, err)
		}
		st.Report = rep
		return st, nil
	})
}
