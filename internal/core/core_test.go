package core

import (
	"context"
	"testing"

	"pimphony/internal/backend"
	"pimphony/internal/cluster"
	"pimphony/internal/model"
	"pimphony/internal/workload"
)

// TestSweepMatchesSequentialServe runs a technique grid through Sweep
// and pins the reports to what per-config NewSystem+Serve produces, in
// input order; a broken config must surface its own error.
func TestSweepMatchesSequentialServe(t *testing.T) {
	m := model.LLM7B32K()
	reqs := workload.NewGenerator(workload.QMSum(), 11).Batch(16)
	cfgs := []Config{CENT(m, Baseline()), CENT(m, PIMphony()), NeuPIMs(m, PIMphony())}
	got, err := Sweep(context.Background(), cfgs, reqs)
	if err != nil {
		t.Fatal(err)
	}
	for i, cfg := range cfgs {
		sys, err := NewSystem(cfg)
		if err != nil {
			t.Fatal(err)
		}
		want, err := sys.Serve(reqs)
		if err != nil {
			t.Fatal(err)
		}
		if got[i].Throughput != want.Throughput || got[i].Batch != want.Batch {
			t.Errorf("config %d (%s): swept (%.3f tok/s, batch %d) != sequential (%.3f, %d)",
				i, cfg.Name, got[i].Throughput, got[i].Batch, want.Throughput, want.Batch)
		}
	}
	bad := CENT(m, Baseline())
	bad.TP, bad.PP = 3, 1 // 3*1 != 8 modules
	if _, err := Sweep(context.Background(), []Config{cfgs[0], bad}, reqs); err == nil {
		t.Error("invalid config in the grid should fail the sweep")
	}
}

func TestPresetsValidate(t *testing.T) {
	for _, m := range model.All() {
		for _, cfg := range []Config{CENT(m, Baseline()), NeuPIMs(m, PIMphony()), GPU(m)} {
			if _, err := cluster.New(cfg); err != nil {
				t.Errorf("%s: %v", cfg.Name, err)
			}
		}
	}
}

func TestOptimalParallelism(t *testing.T) {
	cases := []struct {
		m       model.Config
		modules int
		tp, pp  int
	}{
		{model.LLM7B32K(), 8, 8, 1},       // KV heads 32 >= 8 modules
		{model.LLM7B128KGQA(), 8, 8, 1},   // KV heads 8
		{model.LLM72B32K(), 32, 32, 1},    // KV heads 64
		{model.LLM72B128KGQA(), 32, 8, 4}, // KV heads 8 -> TP8 x PP4 (CENT)
		{model.LLM72B128KGQA(), 16, 8, 2},
	}
	for _, c := range cases {
		tp, pp := optimalParallelism(c.m, c.modules)
		if tp != c.tp || pp != c.pp {
			t.Errorf("%s x%d: got TP%d/PP%d, want TP%d/PP%d", c.m.Name, c.modules, tp, pp, c.tp, c.pp)
		}
		if tp*pp != c.modules {
			t.Errorf("%s x%d: TP*PP != modules", c.m.Name, c.modules)
		}
	}
}

func TestNewSystemLoadsPrograms(t *testing.T) {
	sys, err := NewSystem(CENT(model.LLM7B32K(), PIMphony()))
	if err != nil {
		t.Fatal(err)
	}
	if sys.Compiled() == nil {
		t.Fatal("compiled model missing")
	}
	if len(sys.dispatchers) != 8 {
		t.Fatalf("dispatchers = %d, want 8", len(sys.dispatchers))
	}
	if sys.dispatchers[0].BufferUsed() == 0 {
		t.Fatal("programs not loaded")
	}
}

func TestServeEndToEnd(t *testing.T) {
	sys, err := NewSystem(CENT(model.LLM7B32K(), PIMphony()))
	if err != nil {
		t.Fatal(err)
	}
	reqs := workload.NewGenerator(workload.QMSum(), 3).Batch(32)
	rep, err := sys.Serve(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Throughput <= 0 || rep.Batch <= 0 {
		t.Fatalf("bad report: %+v", rep)
	}
	// Serving again must not trip duplicate registration.
	if _, err := sys.Serve(reqs); err != nil {
		t.Fatalf("second Serve failed: %v", err)
	}
}

func TestInstructionFootprintSwitches(t *testing.T) {
	m := model.LLM7B128KGQA()
	withDPA, err := NewSystem(CENT(m, PIMphony()))
	if err != nil {
		t.Fatal(err)
	}
	noDPA, err := NewSystem(CENT(m, Technique{TCP: true, DCS: true}))
	if err != nil {
		t.Fatal(err)
	}
	fd, err := withDPA.InstructionFootprint()
	if err != nil {
		t.Fatal(err)
	}
	fs, err := noDPA.InstructionFootprint()
	if err != nil {
		t.Fatal(err)
	}
	if fd >= fs {
		t.Errorf("DPA footprint (%d B) should be far below static (%d B)", fd, fs)
	}
	gpu, err := NewSystem(GPU(m))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := gpu.InstructionFootprint(); err == nil {
		t.Error("GPU system has no PIM programs; footprint should error")
	}
}

func TestIncrementalStudyMonotone(t *testing.T) {
	reqs := workload.Uniform(14000, 1).Batch(48)
	stages, err := IncrementalStudy(CENT(model.LLM7B32K(), Baseline()), reqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(stages) != 4 {
		t.Fatalf("stages = %d, want 4", len(stages))
	}
	var prev float64
	for _, st := range stages {
		if st.Report == nil {
			t.Fatalf("stage %s has no report", st.Stage)
		}
		if st.Report.Throughput < prev*0.98 {
			t.Errorf("stage %s regressed: %.0f -> %.0f tok/s", st.Stage, prev, st.Report.Throughput)
		}
		prev = st.Report.Throughput
	}
	if s := stages[3].Report.Throughput / stages[0].Report.Throughput; s < 1.5 {
		t.Errorf("full-stack speedup %.2fx below expectation", s)
	}
}

func TestGPUSystemServe(t *testing.T) {
	sys, err := NewSystem(GPU(model.LLM7B32K()))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sys.Serve(workload.NewGenerator(workload.QMSum(), 3).Batch(32))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Backend != cluster.GPUSystem || rep.Throughput <= 0 {
		t.Fatalf("bad GPU report: %+v", rep)
	}
}

// TestPresetsCoverRegistry: every registered backend must have a preset
// (the CLIs resolve -system through this pairing), presets must build
// valid systems, and aliases must resolve case-insensitively.
func TestPresetsCoverRegistry(t *testing.T) {
	presets := Presets()
	if len(presets) != len(backend.Names()) {
		t.Fatalf("%d presets for %d registered backends", len(presets), len(backend.Names()))
	}
	m := model.LLM7B32K()
	for i, name := range backend.Names() {
		if presets[i].Backend != name {
			t.Errorf("preset %d is %q, want registry order %q", i, presets[i].Backend, name)
		}
		cfg := presets[i].Make(m, PIMphony())
		if cfg.Backend != name {
			t.Errorf("preset %q built a %q config", name, cfg.Backend)
		}
		sys, err := NewSystem(cfg)
		if err != nil {
			t.Fatalf("preset %q: %v", name, err)
		}
		rep, err := sys.Serve(workload.NewGenerator(workload.QMSum(), 3).Batch(8))
		if err != nil {
			t.Fatalf("preset %q serve: %v", name, err)
		}
		if rep.Throughput <= 0 || rep.Backend != name {
			t.Errorf("preset %q report %+v", name, rep)
		}
	}
	for flagName, want := range map[string]string{
		"cent": cluster.PIMOnly, "NeuPIMs": cluster.XPUPIM, "a100": cluster.GPUSystem,
		"gpu": cluster.GPUSystem, "l3": cluster.DIMMPIM, "dimm-pim": cluster.DIMMPIM,
	} {
		p, err := PresetByFlag(flagName)
		if err != nil {
			t.Errorf("PresetByFlag(%q): %v", flagName, err)
			continue
		}
		if p.Backend != want {
			t.Errorf("PresetByFlag(%q) = %q, want %q", flagName, p.Backend, want)
		}
	}
	if _, err := PresetByFlag("vax"); err == nil {
		t.Error("unknown system flag should error")
	}
}

// TestDIMMPIMSystem: the fourth backend end to end through the facade —
// compiled PIM programs (DIMM attention is PIM attention), an all-KV
// pool larger than the memory-matched AiM systems, and a working
// serving engine.
func TestDIMMPIMSystem(t *testing.T) {
	m := model.LLM7B32K()
	sys, err := NewSystem(DIMMPIM(m, PIMphony()))
	if err != nil {
		t.Fatal(err)
	}
	if sys.Compiled() == nil {
		t.Fatal("dimm-pim must compile PIM programs")
	}
	rep, err := sys.Serve(workload.NewGenerator(workload.QMSum(), 9).Batch(16))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Backend != cluster.DIMMPIM || rep.Throughput <= 0 || rep.PIMUtil <= 0 {
		t.Fatalf("dimm-pim report %+v", rep)
	}
	if rep.AttnEnergy.Total() <= 0 {
		t.Error("dimm attention energy must accrue")
	}
	if rep.FCEnergy.Total() != 0 {
		t.Error("dimm FC energy is host-side and outside the module model")
	}
}

// TestGPUEngineThroughCore: the GPU baseline now builds a serving
// engine through the facade (the refactor's Engine-support dividend).
func TestGPUEngineThroughCore(t *testing.T) {
	sys, err := cluster.New(GPU(model.LLM7B32K()))
	if err != nil {
		t.Fatal(err)
	}
	e, err := sys.NewEngine()
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Enqueue(workload.Request{ID: 1, Context: 4096, Decode: 3}); err != nil {
		t.Fatal(err)
	}
	for i := 0; !e.Idle(); i++ {
		if i > 100 {
			t.Fatal("engine did not drain")
		}
		if _, err := e.Step(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	if e.Generated() != 3 {
		t.Errorf("generated %d, want 3", e.Generated())
	}
}
