// Package profiling wires the standard -cpuprofile/-memprofile flags
// into the CLIs (pimphony-sim, pimphony-serve, pimphony-bench) so perf
// work on the simulator hot paths can ship flame graphs: Start begins a
// CPU profile and returns a stop function that finishes it and writes
// the heap profile, for callers to defer around their run.
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins profiling per the flag values: cpuPath starts a CPU
// profile immediately, memPath schedules a heap profile at stop time.
// Empty paths disable the corresponding profile. The returned stop
// function is idempotent — CLIs both defer it and invoke it on fatal
// exits (log.Fatal skips defers) — and reports file-system errors to
// stderr rather than failing the run, since a missing profile should
// not discard results.
func Start(cpuPath, memPath string) (stop func(), err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("profiling: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("profiling: %w", err)
		}
	}
	stopped := false
	return func() {
		if stopped {
			return
		}
		stopped = true
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "profiling:", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "profiling:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile reflects live data
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "profiling:", err)
			}
		}
	}, nil
}
