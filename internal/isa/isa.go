// Package isa defines the module-level PIM instruction set of the paper's
// Table III (WR-INP / MAC / RD-OUT with Ch-mask, Op-size and GPR-addr
// arguments) together with PIMphony's Dynamic PIM Access (DPA) extension:
// Dyn-Loop, whose bound is resolved from the request's current token length
// at decode time, and Dyn-Modi, which strides operand fields of a body
// instruction each iteration so one compact loop addresses the whole,
// possibly non-contiguous, KV cache.
//
// The Instruction Sequencer expands instructions by unrolling Op-size
// repetitions into channel commands; the on-module dispatcher (package
// dispatch) resolves DPA loops and virtual addresses before sequencing.
package isa

import (
	"fmt"
)

// Op enumerates instruction opcodes.
type Op uint8

const (
	// WRINP copies Op-size input tiles from the GPR into GBuf entries.
	WRINP Op = iota
	// MAC performs Op-size dot-product commands on DRAM rows.
	MAC
	// RDOUT copies Op-size output tiles from OutRegs to the GPR.
	RDOUT
	// DYNLOOP introduces a loop whose bound depends on the current token
	// length (DPA).
	DYNLOOP
	// DYNMODI adjusts an operand field of a body instruction by a stride
	// every loop iteration (DPA).
	DYNMODI
)

// String implements fmt.Stringer.
func (o Op) String() string {
	switch o {
	case WRINP:
		return "WR-INP"
	case MAC:
		return "MAC"
	case RDOUT:
		return "RD-OUT"
	case DYNLOOP:
		return "Dyn-Loop"
	case DYNMODI:
		return "Dyn-Modi"
	default:
		return fmt.Sprintf("Op(%d)", uint8(o))
	}
}

// Field names an operand field a Dyn-Modi instruction can stride.
type Field uint8

const (
	// FieldRow strides the DRAM row operand.
	FieldRow Field = iota
	// FieldCol strides the DRAM column operand.
	FieldCol
	// FieldGBuf strides the GBuf index operand.
	FieldGBuf
	// FieldOut strides the OutReg index operand.
	FieldOut
	// FieldGPR strides the GPR address operand.
	FieldGPR
)

// String implements fmt.Stringer.
func (f Field) String() string {
	switch f {
	case FieldRow:
		return "row"
	case FieldCol:
		return "col"
	case FieldGBuf:
		return "gbuf"
	case FieldOut:
		return "out"
	case FieldGPR:
		return "gpr"
	default:
		return fmt.Sprintf("Field(%d)", uint8(f))
	}
}

// EncodedBytes is the fixed binary size of one instruction word. AiMX-class
// hosts ship 128-bit instruction words; DPA instructions reuse the format.
const EncodedBytes = 16

// LoopBound describes how a Dyn-Loop bound is computed at dispatch time:
// bound = ceil(TCur / TokensPerIter) (+ Extra). A zero TokensPerIter makes
// the bound the constant Extra.
type LoopBound struct {
	TokensPerIter int
	Extra         int
}

// Resolve computes the concrete iteration count for a token length.
func (b LoopBound) Resolve(tcur int) int {
	n := b.Extra
	if b.TokensPerIter > 0 {
		n += (tcur + b.TokensPerIter - 1) / b.TokensPerIter
	}
	return n
}

// Instruction is one module-level PIM instruction.
type Instruction struct {
	Op     Op
	ChMask uint32 // target channel bitmask
	OpSize int    // sequencer repetition count
	GPR    int    // GPR base address (WR-INP / RD-OUT)
	GBuf   int    // GBuf base index
	Out    int    // OutReg base index
	Row    int    // DRAM row (virtual under DPA)
	Col    int    // DRAM column

	// DPA-only fields.
	Bound  LoopBound     // DYNLOOP iteration bound
	Body   []Instruction // DYNLOOP body
	Target int           // DYNMODI: body-instruction index to modify
	Field  Field         // DYNMODI: operand field
	Stride int           // DYNMODI: per-iteration increment
}

// Program is a module-level instruction sequence plus a human label.
type Program struct {
	Name  string
	Insts []Instruction
}

// Validate checks structural invariants: positive op sizes, non-empty
// channel masks, loop bodies present and Dyn-Modi targets in range.
func (p *Program) Validate() error {
	return validateInsts(p.Insts, 0)
}

func validateInsts(insts []Instruction, depth int) error {
	if depth > 4 {
		return fmt.Errorf("isa: loop nesting deeper than 4")
	}
	for i, in := range insts {
		switch in.Op {
		case WRINP, MAC, RDOUT:
			if in.OpSize <= 0 {
				return fmt.Errorf("isa: inst %d (%s) has non-positive Op-size %d", i, in.Op, in.OpSize)
			}
			if in.ChMask == 0 {
				return fmt.Errorf("isa: inst %d (%s) targets no channels", i, in.Op)
			}
		case DYNLOOP:
			if len(in.Body) == 0 {
				return fmt.Errorf("isa: inst %d Dyn-Loop has empty body", i)
			}
			if in.Bound.TokensPerIter < 0 || in.Bound.Extra < 0 {
				return fmt.Errorf("isa: inst %d Dyn-Loop has negative bound parts", i)
			}
			if err := validateInsts(in.Body, depth+1); err != nil {
				return err
			}
		case DYNMODI:
			if depth == 0 {
				return fmt.Errorf("isa: inst %d Dyn-Modi outside a Dyn-Loop body", i)
			}
			if in.Target < 0 {
				return fmt.Errorf("isa: inst %d Dyn-Modi has negative target", i)
			}
		default:
			return fmt.Errorf("isa: inst %d has unknown op %d", i, in.Op)
		}
	}
	return nil
}

// Len counts instruction words, recursing into loop bodies (the footprint
// unit of Fig. 10c).
func (p *Program) Len() int { return countInsts(p.Insts) }

func countInsts(insts []Instruction) int {
	n := 0
	for _, in := range insts {
		n++
		n += countInsts(in.Body)
	}
	return n
}

// EncodedSize is the binary footprint of the program in bytes.
func (p *Program) EncodedSize() int64 { return int64(p.Len()) * EncodedBytes }

// ---------------------------------------------------------------------------
// Instruction Sequencer
// ---------------------------------------------------------------------------

// ChannelCommand is one decoded channel-level command (the sequencer's
// output granularity; the channel simulator consumes richer pim.Command
// stacks built by the kernel builders — this type exists to audit command
// counts and address streams).
type ChannelCommand struct {
	Op      Op
	Channel int
	GBuf    int
	Out     int
	Row     int
	Col     int
	GPR     int
}

// Expand unrolls the program into channel commands for the given token
// length. Dyn-Loop bounds resolve against tcur; Dyn-Modi instructions in a
// body's prefix stride their target's operands each iteration. The translate
// hook (may be nil) maps virtual rows to physical rows, mirroring the
// dispatcher's VA2PA resolution.
func (p *Program) Expand(tcur int, translate func(row int) int) ([]ChannelCommand, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if translate == nil {
		translate = func(r int) int { return r }
	}
	var out []ChannelCommand
	if err := expandInto(p.Insts, tcur, translate, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// CountExpanded returns per-op counts of the expansion without
// materialising commands (fast path for footprint/throughput audits).
func (p *Program) CountExpanded(tcur int) (map[Op]int64, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	counts := make(map[Op]int64, 3)
	countInto(p.Insts, tcur, counts)
	return counts, nil
}

func countInto(insts []Instruction, tcur int, counts map[Op]int64) {
	for _, in := range insts {
		switch in.Op {
		case WRINP, MAC, RDOUT:
			counts[in.Op] += int64(in.OpSize) * int64(popcount(in.ChMask))
		case DYNLOOP:
			iters := int64(in.Bound.Resolve(tcur))
			sub := make(map[Op]int64, 3)
			countInto(in.Body, tcur, sub)
			for op, n := range sub {
				counts[op] += n * iters
			}
		}
	}
}

func expandInto(insts []Instruction, tcur int, translate func(int) int, out *[]ChannelCommand) error {
	for _, in := range insts {
		switch in.Op {
		case WRINP, MAC, RDOUT:
			emit(in, translate, out)
		case DYNLOOP:
			iters := in.Bound.Resolve(tcur)
			// Split the body into Dyn-Modi prefix and payload.
			var modis []Instruction
			var payload []Instruction
			for _, b := range in.Body {
				if b.Op == DYNMODI {
					modis = append(modis, b)
				} else {
					payload = append(payload, b)
				}
			}
			// Work on a copy so the loop can stride operands.
			body := make([]Instruction, len(payload))
			copy(body, payload)
			for it := 0; it < iters; it++ {
				if err := expandInto(body, tcur, translate, out); err != nil {
					return err
				}
				for _, m := range modis {
					if m.Target < 0 || m.Target >= len(body) {
						return fmt.Errorf("isa: Dyn-Modi target %d out of body range %d", m.Target, len(body))
					}
					applyStride(&body[m.Target], m.Field, m.Stride)
				}
			}
		case DYNMODI:
			return fmt.Errorf("isa: stray Dyn-Modi during expansion")
		}
	}
	return nil
}

func emit(in Instruction, translate func(int) int, out *[]ChannelCommand) {
	for ch := 0; ch < 32; ch++ {
		if in.ChMask&(1<<uint(ch)) == 0 {
			continue
		}
		for r := 0; r < in.OpSize; r++ {
			c := ChannelCommand{Op: in.Op, Channel: ch, GPR: in.GPR + r, Row: in.Row, Col: in.Col + r}
			switch in.Op {
			case WRINP:
				c.GBuf = in.GBuf + r
				c.Row, c.Col = -1, -1
			case MAC:
				c.GBuf = in.GBuf + r
				c.Out = in.Out
				c.Row = translate(in.Row)
			case RDOUT:
				c.Out = in.Out + r
				c.Row, c.Col = -1, -1
			}
			*out = append(*out, c)
		}
	}
}

func applyStride(in *Instruction, f Field, stride int) {
	switch f {
	case FieldRow:
		in.Row += stride
	case FieldCol:
		in.Col += stride
	case FieldGBuf:
		in.GBuf += stride
	case FieldOut:
		in.Out += stride
	case FieldGPR:
		in.GPR += stride
	}
}

func popcount(x uint32) int {
	n := 0
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}

// AllChannels returns a channel mask selecting channels [0, n).
func AllChannels(n int) uint32 {
	if n >= 32 {
		return ^uint32(0)
	}
	return (1 << uint(n)) - 1
}
