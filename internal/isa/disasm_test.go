package isa

import (
	"strings"
	"testing"
)

func TestDisassembleRendersAllOps(t *testing.T) {
	p := &Program{Name: "attn", Insts: []Instruction{
		{Op: WRINP, ChMask: 0xffff, OpSize: 8, GPR: 16},
		{Op: DYNLOOP, Bound: LoopBound{TokensPerIter: 256, Extra: 1}, Body: []Instruction{
			{Op: DYNMODI, Target: 0, Field: FieldRow, Stride: 2},
			{Op: MAC, ChMask: 0xffff, OpSize: 8, Row: 3, Col: 4, Out: 1},
			{Op: RDOUT, ChMask: 0xffff, OpSize: 1, Out: 1},
		}},
	}}
	out := p.Disassemble()
	for _, want := range []string{
		"program attn (5 words, 80 bytes)",
		"WR-INP", "Dyn-Loop", "bound=ceil(Tcur/256)+1",
		"Dyn-Modi", "field=row stride=+2",
		"MAC", "row=3 col=4",
		"RD-OUT",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("disassembly missing %q:\n%s", want, out)
		}
	}
	// Loop body is indented.
	if !strings.Contains(out, "  MAC") {
		t.Error("loop body should be indented")
	}
}

func TestDisassembleConstantBound(t *testing.T) {
	p := &Program{Name: "c", Insts: []Instruction{
		{Op: DYNLOOP, Bound: LoopBound{Extra: 7}, Body: []Instruction{
			{Op: MAC, ChMask: 1, OpSize: 1},
		}},
	}}
	if out := p.Disassemble(); !strings.Contains(out, "bound=const+7") {
		t.Errorf("constant bound rendering wrong:\n%s", out)
	}
}
