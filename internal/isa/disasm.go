package isa

import (
	"fmt"
	"strings"
)

// Disassemble renders a program as human-readable assembly, one
// instruction per line, with Dyn-Loop bodies indented. The format mirrors
// the paper's Table III argument names.
func (p *Program) Disassemble() string {
	var b strings.Builder
	fmt.Fprintf(&b, "; program %s (%d words, %d bytes)\n", p.Name, p.Len(), p.EncodedSize())
	disasmInto(&b, p.Insts, 0)
	return b.String()
}

func disasmInto(b *strings.Builder, insts []Instruction, depth int) {
	indent := strings.Repeat("  ", depth)
	for _, in := range insts {
		switch in.Op {
		case WRINP:
			fmt.Fprintf(b, "%s%-8s ch=%#x op-size=%d gpr=%d gbuf=%d\n",
				indent, in.Op, in.ChMask, in.OpSize, in.GPR, in.GBuf)
		case MAC:
			fmt.Fprintf(b, "%s%-8s ch=%#x op-size=%d gbuf=%d row=%d col=%d out=%d\n",
				indent, in.Op, in.ChMask, in.OpSize, in.GBuf, in.Row, in.Col, in.Out)
		case RDOUT:
			fmt.Fprintf(b, "%s%-8s ch=%#x op-size=%d gpr=%d out=%d\n",
				indent, in.Op, in.ChMask, in.OpSize, in.GPR, in.Out)
		case DYNLOOP:
			bound := "const"
			if in.Bound.TokensPerIter > 0 {
				bound = fmt.Sprintf("ceil(Tcur/%d)", in.Bound.TokensPerIter)
			}
			if in.Bound.Extra > 0 {
				bound += fmt.Sprintf("+%d", in.Bound.Extra)
			}
			fmt.Fprintf(b, "%s%-8s bound=%s {\n", indent, in.Op, bound)
			disasmInto(b, in.Body, depth+1)
			fmt.Fprintf(b, "%s}\n", indent)
		case DYNMODI:
			fmt.Fprintf(b, "%s%-8s target=%d field=%s stride=%+d\n",
				indent, in.Op, in.Target, in.Field, in.Stride)
		default:
			fmt.Fprintf(b, "%s%-8s ???\n", indent, in.Op)
		}
	}
}
