package isa

import (
	"testing"
	"testing/quick"
)

// staticQKT builds a fully unrolled score-kernel program for a fixed token
// count: one MAC instruction per score group (the conventional encoding
// whose size grows linearly with context, Fig. 10a/c).
func staticQKT(tokens, banks, channels int) *Program {
	groups := (tokens + banks - 1) / banks
	p := &Program{Name: "qkt-static"}
	p.Insts = append(p.Insts, Instruction{Op: WRINP, ChMask: AllChannels(channels), OpSize: 8})
	for g := 0; g < groups; g++ {
		p.Insts = append(p.Insts, Instruction{Op: MAC, ChMask: AllChannels(channels), OpSize: 8, Row: g / 8, Col: (g % 8) * 8})
		p.Insts = append(p.Insts, Instruction{Op: RDOUT, ChMask: AllChannels(channels), OpSize: 1, Out: g % 2})
	}
	return p
}

// dpaQKT builds the compact DPA encoding of the same kernel: a Dyn-Loop
// over score groups whose bound is resolved from T_cur, with Dyn-Modi
// instructions striding the row/col operands.
func dpaQKT(banks, channels int) *Program {
	body := []Instruction{
		{Op: DYNMODI, Target: 0, Field: FieldCol, Stride: 8},
		{Op: MAC, ChMask: AllChannels(channels), OpSize: 8, Row: 0, Col: 0},
		{Op: RDOUT, ChMask: AllChannels(channels), OpSize: 1, Out: 0},
	}
	return &Program{Name: "qkt-dpa", Insts: []Instruction{
		{Op: WRINP, ChMask: AllChannels(channels), OpSize: 8},
		{Op: DYNLOOP, Bound: LoopBound{TokensPerIter: banks}, Body: body},
	}}
}

func TestStaticProgramGrowsLinearly(t *testing.T) {
	small := staticQKT(1024, 16, 16)
	large := staticQKT(4096, 16, 16)
	if large.Len() <= small.Len() {
		t.Fatal("static program should grow with context")
	}
	ratio := float64(large.EncodedSize()) / float64(small.EncodedSize())
	if ratio < 3.5 || ratio > 4.5 {
		t.Errorf("4x context should give ~4x static footprint, got %.2fx", ratio)
	}
}

func TestDPAProgramConstantSize(t *testing.T) {
	p := dpaQKT(16, 16)
	if p.Len() != 5 {
		t.Errorf("DPA program length = %d instruction words, want 5", p.Len())
	}
	// Footprint is independent of context by construction: the same
	// program serves 1K and 1M tokens.
	c1, err := p.CountExpanded(1024)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := p.CountExpanded(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if c2[MAC] <= c1[MAC] {
		t.Error("expanded MAC work must still scale with context")
	}
}

func TestDPAExpansionMatchesStatic(t *testing.T) {
	banks, channels := 16, 16
	for _, tokens := range []int{256, 1024, 4096} {
		st, err := staticQKT(tokens, banks, channels).CountExpanded(tokens)
		if err != nil {
			t.Fatal(err)
		}
		dp, err := dpaQKT(banks, channels).CountExpanded(tokens)
		if err != nil {
			t.Fatal(err)
		}
		for _, op := range []Op{MAC, RDOUT} {
			if st[op] != dp[op] {
				t.Errorf("tokens=%d %s: static %d vs DPA %d commands", tokens, op, st[op], dp[op])
			}
		}
	}
}

func TestDynModiStridesOperands(t *testing.T) {
	p := dpaQKT(16, 1)
	cmds, err := p.Expand(64, nil) // 4 loop iterations
	if err != nil {
		t.Fatal(err)
	}
	var cols []int
	for _, c := range cmds {
		if c.Op == MAC && c.GBuf == 0 {
			cols = append(cols, c.Col)
		}
	}
	want := []int{0, 8, 16, 24}
	if len(cols) != len(want) {
		t.Fatalf("got %d first-tile MACs, want %d", len(cols), len(want))
	}
	for i, w := range want {
		if cols[i] != w {
			t.Errorf("iteration %d column = %d, want %d", i, cols[i], w)
		}
	}
}

func TestExpandAppliesTranslation(t *testing.T) {
	p := &Program{Name: "t", Insts: []Instruction{
		{Op: WRINP, ChMask: 1, OpSize: 1},
		{Op: MAC, ChMask: 1, OpSize: 1, Row: 3},
	}}
	cmds, err := p.Expand(1, func(r int) int { return r + 100 })
	if err != nil {
		t.Fatal(err)
	}
	if cmds[1].Row != 103 {
		t.Errorf("translated row = %d, want 103", cmds[1].Row)
	}
}

func TestChannelMaskMulticast(t *testing.T) {
	p := &Program{Name: "m", Insts: []Instruction{
		{Op: WRINP, ChMask: 0b1010, OpSize: 2},
	}}
	cmds, err := p.Expand(1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(cmds) != 4 { // 2 channels x 2 repetitions
		t.Fatalf("expanded %d commands, want 4", len(cmds))
	}
	chans := map[int]int{}
	for _, c := range cmds {
		chans[c.Channel]++
	}
	if chans[1] != 2 || chans[3] != 2 {
		t.Errorf("multicast decode wrong: %v", chans)
	}
}

func TestValidateRejectsBadPrograms(t *testing.T) {
	bad := []*Program{
		{Name: "zero-opsize", Insts: []Instruction{{Op: MAC, ChMask: 1, OpSize: 0}}},
		{Name: "no-channels", Insts: []Instruction{{Op: MAC, ChMask: 0, OpSize: 1}}},
		{Name: "empty-loop", Insts: []Instruction{{Op: DYNLOOP}}},
		{Name: "stray-modi", Insts: []Instruction{{Op: DYNMODI}}},
	}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("%s should fail validation", p.Name)
		}
	}
}

func TestLoopBoundResolve(t *testing.T) {
	b := LoopBound{TokensPerIter: 256}
	if b.Resolve(1024) != 4 || b.Resolve(1025) != 5 || b.Resolve(1) != 1 {
		t.Error("ceil division broken")
	}
	c := LoopBound{Extra: 7}
	if c.Resolve(999999) != 7 {
		t.Error("constant bound should ignore tokens")
	}
}

// Property: for any token count, CountExpanded agrees with len(Expand).
func TestCountMatchesExpandProperty(t *testing.T) {
	f := func(raw uint16) bool {
		tokens := int(raw%4096) + 16
		p := dpaQKT(16, 4)
		cmds, err := p.Expand(tokens, nil)
		if err != nil {
			return false
		}
		counts, err := p.CountExpanded(tokens)
		if err != nil {
			return false
		}
		var total int64
		for _, n := range counts {
			total += n
		}
		return total == int64(len(cmds))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestOpAndFieldStrings(t *testing.T) {
	for _, o := range []Op{WRINP, MAC, RDOUT, DYNLOOP, DYNMODI} {
		if o.String() == "" {
			t.Errorf("Op %d renders empty", o)
		}
	}
	for _, f := range []Field{FieldRow, FieldCol, FieldGBuf, FieldOut, FieldGPR} {
		if f.String() == "" {
			t.Errorf("Field %d renders empty", f)
		}
	}
}

func TestAllChannels(t *testing.T) {
	if AllChannels(4) != 0b1111 {
		t.Error("AllChannels(4) wrong")
	}
	if AllChannels(32) != ^uint32(0) {
		t.Error("AllChannels(32) wrong")
	}
	if AllChannels(33) != ^uint32(0) {
		t.Error("AllChannels(>32) should saturate")
	}
}
