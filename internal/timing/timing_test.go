package timing

import (
	"testing"
	"testing/quick"
)

func TestAiM16Validates(t *testing.T) {
	if err := AiM16().Validate(); err != nil {
		t.Fatalf("AiM16 should validate: %v", err)
	}
}

func TestDerivedGeometry(t *testing.T) {
	d := AiM16()
	if got := d.ElemsPerTile(); got != 16 {
		t.Errorf("ElemsPerTile = %d, want 16", got)
	}
	if got := d.GBufEntries(); got != 64 {
		t.Errorf("GBufEntries = %d, want 64", got)
	}
	if got := d.OutRegEntries(); got != 2 {
		t.Errorf("OutRegEntries = %d, want 2 (4 B / fp16)", got)
	}
	if got := d.OBufEntries(); got != 32 {
		t.Errorf("OBufEntries = %d, want 32", got)
	}
	if got := d.TilesPerRow(); got != 64 {
		t.Errorf("TilesPerRow = %d, want 64", got)
	}
	if got := d.ChannelBytes(); got != 1<<30 {
		t.Errorf("ChannelBytes = %d, want 1 GiB", got)
	}
	if got := d.ModuleBytes(); got != 16<<30 {
		t.Errorf("ModuleBytes = %d, want 16 GiB", got)
	}
}

func TestValidateRejectsBrokenConfigs(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Device)
	}{
		{"zero channels", func(d *Device) { d.Channels = 0 }},
		{"zero banks", func(d *Device) { d.Banks = 0 }},
		{"zero tile", func(d *Device) { d.TileBytes = 0 }},
		{"tiny gbuf", func(d *Device) { d.GBufBytes = 8 }},
		{"tiny row", func(d *Device) { d.RowBytes = 8 }},
		{"zero elem", func(d *Device) { d.ElemBytes = 0 }},
		{"tiny outreg", func(d *Device) { d.OutRegBytes = 1 }},
		{"zero tccds", func(d *Device) { d.TCCDS = 0 }},
		{"refresh interval", func(d *Device) { d.TREFI = d.TRFC }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d := AiM16()
			tc.mutate(&d)
			if err := d.Validate(); err == nil {
				t.Fatalf("expected validation error for %s", tc.name)
			}
		})
	}
}

func TestRefreshOverhead(t *testing.T) {
	d := AiM16()
	ov := d.RefreshOverhead()
	if ov <= 0 || ov >= 0.2 {
		t.Fatalf("refresh overhead %f outside plausible (0, 0.2) band", ov)
	}
	total, ref := d.StretchForRefresh(1000)
	if total != 1000+ref {
		t.Fatalf("StretchForRefresh inconsistent: total=%d ref=%d", total, ref)
	}
	if ref <= 0 {
		t.Fatalf("refresh share should be positive, got %d", ref)
	}
}

func TestWithCapacityRoundTrip(t *testing.T) {
	d := AiM16()
	for _, gib := range []int64{1, 4, 16, 32} {
		want := gib << 30
		got := d.WithCapacity(want).ModuleBytes()
		if got != want {
			t.Errorf("WithCapacity(%d GiB) -> %d bytes", gib, got)
		}
	}
}

// Property: StretchForRefresh is monotone and never shrinks a latency.
func TestStretchMonotoneProperty(t *testing.T) {
	d := AiM16()
	f := func(raw uint32) bool {
		c := Cycles(raw % (1 << 28))
		total, ref := d.StretchForRefresh(c)
		return total >= c && ref >= 0 && total == c+ref
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: WithChannels scales module capacity linearly.
func TestWithChannelsScalesCapacity(t *testing.T) {
	d := AiM16()
	f := func(raw uint8) bool {
		n := int(raw%63) + 1
		return d.WithChannels(n).ModuleBytes() == int64(n)*d.ChannelBytes()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestInternalBandwidthPlausible(t *testing.T) {
	d := AiM16()
	// 16 ch * 16 banks * 32 B / 2 cycles = 4096 B/cycle = 4 TB/s at 1 GHz.
	if got := d.InternalBandwidth(); got != 4096 {
		t.Fatalf("InternalBandwidth = %f, want 4096 B/cycle", got)
	}
}

// TestDDR5DIMM pins the DIMM-PIM module geometry: a valid device with
// 64 GiB capacity and the same per-rank MAC bandwidth as an AiM channel
// (the DIMM trades bandwidth per gigabyte for capacity, not per rank).
func TestDDR5DIMM(t *testing.T) {
	d := DDR5DIMM()
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := d.ModuleBytes(); got < 63<<30 || got > 64<<30 {
		t.Errorf("DIMM capacity %d, want ~64 GiB", got)
	}
	a := AiM16()
	perRankDIMM := float64(d.Banks*d.TileBytes) / float64(d.TCCDS)
	perChanAiM := float64(a.Banks*a.TileBytes) / float64(a.TCCDS)
	if perRankDIMM != perChanAiM {
		t.Errorf("per-rank bandwidth %g, want AiM per-channel %g", perRankDIMM, perChanAiM)
	}
	// Internally the DIMM is slower per module: fewer ranks than a
	// 32-channel AiM module has channels.
	if d.InternalBandwidth() >= a.WithChannels(32).InternalBandwidth() {
		t.Error("DIMM internal bandwidth should trail the GDDR6 module")
	}
	if d.ChannelBytes()*int64(d.Channels) != d.ModuleBytes() {
		t.Error("capacity bookkeeping inconsistent")
	}
}
