package timing

import (
	"math"
	"testing"
)

func TestInterconnectTransferSeconds(t *testing.T) {
	ic := Interconnect{BytesPerSecond: 1 << 30, LatencySeconds: 1e-6}
	if !ic.Usable() {
		t.Fatal("1 GiB/s link reported unusable")
	}
	got := ic.TransferSeconds(1 << 30)
	want := 1e-6 + 1.0
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("TransferSeconds(1 GiB) = %g, want %g", got, want)
	}
	if got := ic.TransferSeconds(0); got != 1e-6 {
		t.Errorf("TransferSeconds(0) = %g, want the bare latency", got)
	}
}

func TestInterconnectTransferMonotone(t *testing.T) {
	ic := DefaultInterconnect()
	prev := -1.0
	for _, n := range []int64{0, 1, 1 << 10, 1 << 20, 1 << 30, 1 << 40} {
		d := ic.TransferSeconds(n)
		if d <= prev {
			t.Fatalf("TransferSeconds not strictly increasing at %d bytes: %g after %g", n, d, prev)
		}
		prev = d
	}
}

func TestInterconnectUnusable(t *testing.T) {
	var ic Interconnect // zero value: no fabric
	if ic.Usable() {
		t.Fatal("zero-value interconnect reported usable")
	}
	if d := ic.TransferSeconds(1); !math.IsInf(d, 1) {
		t.Errorf("unusable TransferSeconds = %g, want +Inf", d)
	}
	neg := Interconnect{BytesPerSecond: -5}
	if neg.Usable() {
		t.Fatal("negative-bandwidth interconnect reported usable")
	}
}

func TestInterconnectNegativeBytesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("TransferSeconds(-1) did not panic")
		}
	}()
	DefaultInterconnect().TransferSeconds(-1)
}
