package timing

import (
	"fmt"
	"math"
)

// Interconnect models the inter-replica fabric of a serving fleet — the
// CXL/NVLink-class links over which prefilled or migrated KV caches move
// between replicas. Where Device.LinkBytesPerCycle prices the module's
// own host link inside one system, an Interconnect prices traffic
// *between* systems, so the fleet simulator can charge a KV handoff or
// migration explicitly instead of assuming it free.
//
// The model is a latency–bandwidth pipe: moving n bytes costs
// LatencySeconds + n/BytesPerSecond. The zero value is an unusable link
// (transfers take forever), which the fleet layer uses as the "no
// fabric" sentinel: migration and queue stealing are never chosen over
// an unusable link, degrading exactly to the preemption-by-recompute
// path.
type Interconnect struct {
	// BytesPerSecond is the link bandwidth; <= 0 means unusable.
	BytesPerSecond float64
	// LatencySeconds is the fixed per-transfer latency (propagation plus
	// protocol overhead), charged once per KV movement.
	LatencySeconds float64
}

// DefaultInterconnect returns the CXL/NVLink-class fabric assumed
// between fleet replicas: 64 GiB/s of bandwidth at 2 us latency —
// NVLink-generation bandwidth with a switch hop, conservative for
// intra-rack and optimistic for cross-rack.
func DefaultInterconnect() Interconnect {
	return Interconnect{BytesPerSecond: 64 << 30, LatencySeconds: 2e-6}
}

// Usable reports whether the link can move bytes at all.
func (ic Interconnect) Usable() bool { return ic.BytesPerSecond > 0 }

// TransferSeconds is the time to move n bytes across the link:
// LatencySeconds + n/BytesPerSecond. An unusable link returns +Inf, so
// cost comparisons (migrate vs recompute) naturally never pick it; a
// negative byte count is a caller bug and panics.
func (ic Interconnect) TransferSeconds(n int64) float64 {
	if n < 0 {
		panic(fmt.Sprintf("timing: negative transfer size %d", n))
	}
	if !ic.Usable() {
		return math.Inf(1)
	}
	return ic.LatencySeconds + float64(n)/ic.BytesPerSecond
}
