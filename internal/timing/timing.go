// Package timing defines the device geometry and timing parameters of the
// GDDR6-AiM-like PIM module modelled throughout this repository.
//
// All timings are expressed in PIM command-clock cycles (1 cycle = 1 ns at
// the 1 GHz command clock assumed by the AiMX platform documents). The
// constants are calibrated so that the worked scheduling example of the
// paper's Fig. 7 reproduces exactly: the static controller finishes the
// (1x48)*(48x32) GEMV command stack in 34 cycles.
package timing

import "fmt"

// Cycles is a duration measured in PIM command-clock cycles.
type Cycles int64

// PicoJoules is an energy amount in pJ. Energy bookkeeping lives in
// internal/energy; the type is defined here so device configs can carry
// energy-relevant geometry without import cycles.
type PicoJoules float64

// Device describes one PIM module: its channel geometry, buffer sizes and
// command timings. The zero value is not usable; start from AiM16() or one of
// the Table IV presets and override fields as needed.
type Device struct {
	// Geometry.
	Channels     int // independently operating PIM channels per module
	Banks        int // DRAM banks per channel, MAC units operate bank-parallel
	TileBytes    int // bytes moved per WR-INP and consumed per MAC per bank
	GBufBytes    int // global input buffer per channel (shared by banks)
	OutRegBytes  int // baseline per-bank output register bytes (static PIM)
	OBufBytes    int // expanded per-bank output buffer bytes (PIMphony DCS)
	RowBytes     int // DRAM row size per bank
	RowsPerBank  int // rows per bank (capacity = Banks*RowsPerBank*RowBytes)
	ElemBytes    int // bytes per element (fp16 = 2)
	GPRBytes     int // HUB general-purpose register file capacity
	InstrBufKB   int // on-module dispatcher instruction buffer capacity (KB)
	VA2PAEntries int // dispatcher VA2PA translation table entries

	// Command timings (cycles).
	TCCDS       Cycles // minimum command-to-command interval on a pipelined bus
	TWRINP      Cycles // WR-INP completion: GBuf entry valid after this
	TMAC        Cycles // MAC completion: accumulate visible after this
	TRDOUT      Cycles // RD-OUT completion: OutReg/OBuf entry drained
	TOBufCommit Cycles // extra cycle for a MAC accumulate to commit before RD-OUT
	TRCD        Cycles // row activate (ACT) latency
	TRP         Cycles // row precharge (PRE) latency
	TRFC        Cycles // refresh cycle time
	TREFI       Cycles // average refresh interval

	// HUB / inter-channel costs (cycles).
	HubHopCycles      Cycles  // latency of one tile hop between a channel and the HUB GPR
	HubBytesPerCycle  float64 // aggregate HUB gather bandwidth across channel links
	EPUAddCycles      Cycles  // EPU vector add of one tile during reduction
	EPUSoftmaxBase    Cycles  // EPU softmax fixed cost per head
	EPUSoftmaxPerTile Cycles  // EPU softmax marginal cost per score tile

	// Module-external link (host or inter-module, CXL-like).
	LinkBytesPerCycle float64 // external link bandwidth
	LinkLatency       Cycles  // external link latency per message
}

// AiM16 returns the commercial-PIM-like module used for channel-level
// studies: 16 channels x 16 banks, 2 KB GBuf, 4 B baseline OutReg per bank.
func AiM16() Device {
	return Device{
		Channels:     16,
		Banks:        16,
		TileBytes:    32,
		GBufBytes:    2048,
		OutRegBytes:  4,
		OBufBytes:    64,
		RowBytes:     2048,
		RowsPerBank:  32768, // 16 banks * 32768 rows * 2 KB = 1 GiB per channel
		ElemBytes:    2,
		GPRBytes:     512 << 10,
		InstrBufKB:   192,
		VA2PAEntries: 4096,

		TCCDS:       2,
		TWRINP:      4,
		TMAC:        3,
		TRDOUT:      4,
		TOBufCommit: 1,
		TRCD:        14,
		TRP:         14,
		TRFC:        280,
		TREFI:       3900,

		HubHopCycles:      4,
		HubBytesPerCycle:  256,
		EPUAddCycles:      1,
		EPUSoftmaxBase:    64,
		EPUSoftmaxPerTile: 2,

		LinkBytesPerCycle: 64,
		LinkLatency:       500,
	}
}

// DDR5DIMM returns the commodity DIMM-PIM module of the L3/LoL-PIM-style
// DIMM-PIM backend: 8 rank-level PIM units ("channels") of 32 DDR5 banks
// each, a slower command interval than the GDDR6-AiM module (DDR5 bus
// rate), smaller 1 KB rows with the DDR5-class tRFC, and a narrower
// host link — but 64 GiB of capacity per DIMM, four times the AiM
// module. The per-rank MAC bandwidth matches AiM per channel
// (32 banks x 32 B / 4 cycles = 16 banks x 32 B / 2 cycles), so the
// DIMM trades internal bandwidth per gigabyte for capacity: the
// long-context roofline these systems are built around.
func DDR5DIMM() Device {
	d := AiM16()
	d.Channels = 8
	d.Banks = 32
	d.RowBytes = 1024
	d.TCCDS = 4
	d.TMAC = 4
	d.TRFC = 410
	d.LinkBytesPerCycle = 32
	return d.WithCapacity(64 << 30)
}

// Validate reports a descriptive error if the device configuration is
// internally inconsistent.
func (d Device) Validate() error {
	switch {
	case d.Channels <= 0:
		return fmt.Errorf("timing: Channels must be positive, got %d", d.Channels)
	case d.Banks <= 0:
		return fmt.Errorf("timing: Banks must be positive, got %d", d.Banks)
	case d.TileBytes <= 0:
		return fmt.Errorf("timing: TileBytes must be positive, got %d", d.TileBytes)
	case d.GBufBytes < d.TileBytes:
		return fmt.Errorf("timing: GBufBytes %d smaller than one tile (%d)", d.GBufBytes, d.TileBytes)
	case d.RowBytes < d.TileBytes:
		return fmt.Errorf("timing: RowBytes %d smaller than one tile (%d)", d.RowBytes, d.TileBytes)
	case d.ElemBytes <= 0:
		return fmt.Errorf("timing: ElemBytes must be positive, got %d", d.ElemBytes)
	case d.OutRegBytes < 2*d.ElemBytes:
		return fmt.Errorf("timing: OutRegBytes %d cannot hold one accumulator", d.OutRegBytes)
	case d.TCCDS <= 0 || d.TWRINP <= 0 || d.TMAC <= 0 || d.TRDOUT <= 0:
		return fmt.Errorf("timing: command timings must be positive")
	case d.TREFI <= d.TRFC:
		return fmt.Errorf("timing: TREFI (%d) must exceed TRFC (%d)", d.TREFI, d.TRFC)
	}
	return nil
}

// ElemsPerTile is the number of elements carried by one 32 B tile.
func (d Device) ElemsPerTile() int { return d.TileBytes / d.ElemBytes }

// GBufEntries is the number of tile-sized entries in the Global Buffer.
func (d Device) GBufEntries() int { return d.GBufBytes / d.TileBytes }

// OutRegEntries is the number of accumulator entries per bank in the
// baseline output register file (each accumulator holds one element).
func (d Device) OutRegEntries() int { return d.OutRegBytes / d.ElemBytes }

// OBufEntries is the number of accumulator entries per bank in the expanded
// PIMphony output buffer.
func (d Device) OBufEntries() int { return d.OBufBytes / d.ElemBytes }

// TilesPerRow is the number of tiles stored in one DRAM row of one bank.
func (d Device) TilesPerRow() int { return d.RowBytes / d.TileBytes }

// ChannelBytes is the DRAM capacity of a single channel.
func (d Device) ChannelBytes() int64 {
	return int64(d.Banks) * int64(d.RowsPerBank) * int64(d.RowBytes)
}

// ModuleBytes is the DRAM capacity of the whole module.
func (d Device) ModuleBytes() int64 { return int64(d.Channels) * d.ChannelBytes() }

// RefreshOverhead is the fraction of time a channel is unavailable due to
// refresh, modelled analytically as TRFC/TREFI.
func (d Device) RefreshOverhead() float64 {
	return float64(d.TRFC) / float64(d.TREFI)
}

// StretchForRefresh inflates a latency by the refresh overhead and returns
// the inflated latency together with the cycles attributed to refresh.
func (d Device) StretchForRefresh(c Cycles) (total, ref Cycles) {
	ref = Cycles(float64(c) * d.RefreshOverhead())
	return c + ref, ref
}

// InternalBandwidth is the peak internal bandwidth of the module in bytes
// per cycle: every bank can consume one tile per TCCDS in steady state.
func (d Device) InternalBandwidth() float64 {
	return float64(d.Channels*d.Banks*d.TileBytes) / float64(d.TCCDS)
}

// WithChannels returns a copy of the device with a different channel count
// (capacity scales with it). Used to derive the Table IV 32-channel modules.
func (d Device) WithChannels(n int) Device {
	d.Channels = n
	return d
}

// WithCapacity returns a copy of the device resized (via RowsPerBank) so the
// module holds the requested number of bytes as closely as possible.
func (d Device) WithCapacity(bytes int64) Device {
	perRow := int64(d.Channels) * int64(d.Banks) * int64(d.RowBytes)
	rows := bytes / perRow
	if rows < 1 {
		rows = 1
	}
	d.RowsPerBank = int(rows)
	return d
}
