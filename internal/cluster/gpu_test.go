package cluster

import (
	"math"
	"strings"
	"testing"

	"pimphony/internal/model"
	"pimphony/internal/workload"
	"pimphony/internal/xpu"
)

// refGPURun reimplements the pre-refactor dedicated GPU path (runGPU)
// verbatim as an oracle: greedy skip-unfit admission against the
// paged-attention-derated pool with upfront context+window reservations,
// MaxBatch truncation after admission, and per-step roofline pricing.
// The backend refactor must reproduce its Batch, TotalSeconds and
// Throughput bit for bit.
func refGPURun(cfg Config, reqs []workload.Request) (batch int, totalSec, throughput float64, ok bool) {
	g := xpu.A100()
	m := cfg.Model
	capacity := int64(cfg.GPUs) * g.MemBytes
	w := m.WeightBytes()
	if w >= capacity {
		return 0, 0, 0, false
	}
	pool := capacity - w
	if b := cfg.KVBudgetBytes; b > 0 && b < pool {
		pool = b
	}
	pool = int64(float64(pool) * g.PagedAttentionEff)
	var admitted []workload.Request
	var kvBytes int64
	for _, r := range reqs {
		need := m.KVBytes(r.Context + cfg.DecodeWindow)
		if kvBytes+need > pool {
			continue
		}
		kvBytes += need
		admitted = append(admitted, r)
		if cfg.MaxBatch > 0 && len(admitted) >= cfg.MaxBatch {
			break
		}
	}
	if len(admitted) == 0 {
		return 0, 0, 0, false
	}
	fcFlopsPerReq := m.FCFlopsPerToken()
	weightBytes := m.WeightBytes()
	grown := 0
	for step := 0; step < cfg.DecodeWindow; step++ {
		var kv int64
		for _, r := range admitted {
			kv += m.KVBytes(r.Context + grown)
		}
		fc := g.OpTime(int64(len(admitted))*fcFlopsPerReq/int64(cfg.GPUs), weightBytes/int64(cfg.GPUs))
		attn := g.AttentionTime(kv / int64(cfg.GPUs))
		totalSec += fc + attn
		grown++
	}
	return len(admitted), totalSec, float64(len(admitted)*cfg.DecodeWindow) / totalSec, true
}

// gpuCase runs both paths and requires bit-exact agreement.
func gpuCase(t *testing.T, name string, cfg Config, reqs []workload.Request) *Report {
	t.Helper()
	wantBatch, wantSec, wantTput, ok := refGPURun(cfg, reqs)
	sys, err := New(cfg)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	rep, err := sys.Run(reqs)
	if !ok {
		if err == nil {
			t.Fatalf("%s: oracle admits nothing but refactored path returned %+v", name, rep)
		}
		return nil
	}
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	if rep.Batch != wantBatch {
		t.Errorf("%s: batch %d, oracle %d", name, rep.Batch, wantBatch)
	}
	if rep.TotalSeconds != wantSec {
		t.Errorf("%s: total %v, oracle %v (diff %g)", name, rep.TotalSeconds, wantSec, rep.TotalSeconds-wantSec)
	}
	if rep.Throughput != wantTput {
		t.Errorf("%s: throughput %v, oracle %v", name, rep.Throughput, wantTput)
	}
	if rep.Steps != cfg.DecodeWindow {
		t.Errorf("%s: steps %d, want %d", name, rep.Steps, cfg.DecodeWindow)
	}
	return rep
}

// TestGPUByteIdenticalAcrossRefactor pins the three GPU-baseline edge
// cases of the backend extraction: an overflowing pool whose unfit
// requests are skipped (not queue-blocking), MaxBatch truncation, and
// the PagedAttentionEff capacity derate — all bit-exact against the
// pre-refactor math.
func TestGPUByteIdenticalAcrossRefactor(t *testing.T) {
	m7 := model.LLM7B32K()
	m72 := model.LLM72B32K()
	qmsum := qmsumBatch(64)

	// Pool overflow with skip-unfit packing: on 8 GPUs the 72B model's
	// per-request KV (tens of GiB at QMSum contexts) overflows the pool,
	// so the admitted batch is a strict, non-prefix subset of the queue.
	cfg := Config{Name: "gpu-72b", Backend: GPUSystem, Model: m72, GPUs: 8, DecodeWindow: 4}
	rep := gpuCase(t, "overflow", cfg, qmsum)
	if rep != nil && (rep.Batch == 0 || rep.Batch == len(qmsum)) {
		t.Errorf("overflow case should admit a strict subset, got %d of %d", rep.Batch, len(qmsum))
	}

	// MaxBatch truncation.
	cfgMax := Config{Name: "gpu-maxbatch", Backend: GPUSystem, Model: m7, GPUs: 2, DecodeWindow: 4, MaxBatch: 5}
	repMax := gpuCase(t, "maxbatch", cfgMax, qmsum)
	if repMax != nil && repMax.Batch != 5 {
		t.Errorf("MaxBatch=5 admitted %d", repMax.Batch)
	}

	// The PagedAttentionEff derate decides admission at the boundary: a
	// KV budget sized so one request fits only at the full (underated)
	// budget must reject it at 0.9x. CapacityUtil must keep reporting
	// the derate itself.
	one := []workload.Request{{ID: 1, Context: 10000, Decode: 4}}
	need := m7.KVBytes(one[0].Context + 4)
	cfgTight := Config{Name: "gpu-derate", Backend: GPUSystem, Model: m7, GPUs: 2, DecodeWindow: 4,
		KVBudgetBytes: need + 1} // fits undated, not after *0.9
	if _, err := New(cfgTight); err != nil {
		t.Fatal(err)
	}
	gpuCase(t, "derate-reject", cfgTight, one) // oracle and refactored path both reject
	cfgLoose := cfgTight
	cfgLoose.Name = "gpu-derate-fit"
	cfgLoose.KVBudgetBytes = int64(math.Ceil(float64(need)/xpu.A100().PagedAttentionEff)) + 1
	repFit := gpuCase(t, "derate-fit", cfgLoose, one)
	if repFit == nil || repFit.Batch != 1 {
		t.Fatalf("request should fit once the budget covers the derate: %+v", repFit)
	}
	if repFit.CapacityUtil != xpu.A100().PagedAttentionEff {
		t.Errorf("CapacityUtil %v, want the paged-attention efficiency", repFit.CapacityUtil)
	}
}

// TestGPUNoRequestFits: an empty admissible set must error out of the
// unified admission path, like the dedicated path did.
func TestGPUNoRequestFits(t *testing.T) {
	m := model.LLM7B32K()
	cfg := Config{Name: "gpu-nofit", Backend: GPUSystem, Model: m, GPUs: 2, DecodeWindow: 4,
		KVBudgetBytes: 1 << 20}
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, err = sys.Run(qmsumBatch(8))
	if err == nil || !strings.Contains(err.Error(), "no request fits") {
		t.Fatalf("want a no-request-fits error, got %v", err)
	}
}

// TestGPUThroughputUnchangedBaseline pins the headline Fig. 20 GPU
// numbers (7B on 2 GPUs) against the oracle on the standard preset
// shape, so a pricing regression cannot hide behind the admission path.
func TestGPUThroughputUnchangedBaseline(t *testing.T) {
	cfg := Config{Name: "a100x2", Backend: GPUSystem, Model: model.LLM7B32K(), GPUs: 2, DecodeWindow: 4}
	rep := gpuCase(t, "fig20-7b", cfg, qmsumBatch(48))
	if rep == nil || rep.Throughput <= 0 {
		t.Fatalf("GPU baseline produced %+v", rep)
	}
	// The refactor newly reports TBT for GPU systems (one decode
	// iteration); it must be consistent with the totals.
	if rep.TBTSeconds <= 0 || math.Abs(rep.TBTSeconds*float64(rep.Steps)-rep.TotalSeconds) > 1e-12 {
		t.Errorf("TBT %v inconsistent with total %v over %d steps", rep.TBTSeconds, rep.TotalSeconds, rep.Steps)
	}
}
