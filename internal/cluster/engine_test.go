package cluster

import (
	"context"
	"testing"

	"pimphony/internal/model"
	"pimphony/internal/timing"
	"pimphony/internal/workload"
)

// engineConfig is a small CENT-style system for engine tests.
func engineConfig(t *testing.T, tech Technique) Config {
	t.Helper()
	m := model.LLM7B32K()
	return Config{
		Name:         "engine-test",
		Kind:         PIMOnly,
		Dev:          timing.AiM16().WithChannels(32).WithCapacity(16 << 30),
		Modules:      8,
		TP:           8,
		PP:           1,
		Model:        m,
		Tech:         tech,
		DecodeWindow: 4,
	}
}

// drain steps the engine to completion, returning all completions in
// retirement order.
func drain(t *testing.T, e *Engine) []workload.Request {
	t.Helper()
	var done []workload.Request
	for i := 0; !e.Idle(); i++ {
		if i > 1_000_000 {
			t.Fatal("engine did not drain")
		}
		res, err := e.Step(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		done = append(done, res.Completed...)
	}
	return done
}

func TestEngineServesAllRequests(t *testing.T) {
	sys, err := New(engineConfig(t, PIMphony()))
	if err != nil {
		t.Fatal(err)
	}
	e, err := sys.NewEngine()
	if err != nil {
		t.Fatal(err)
	}
	reqs := workload.NewGenerator(workload.QMSum(), 42).Batch(12)
	want := 0
	for i := range reqs {
		reqs[i].Decode = 3 + i%4
		want += reqs[i].Decode
		if err := e.Enqueue(reqs[i]); err != nil {
			t.Fatal(err)
		}
	}
	done := drain(t, e)
	if len(done) != len(reqs) {
		t.Fatalf("completed %d of %d requests", len(done), len(reqs))
	}
	if e.Generated() != want {
		t.Errorf("generated %d tokens, want %d", e.Generated(), want)
	}
	if e.OutstandingTokens() != 0 {
		t.Errorf("outstanding %d tokens after drain", e.OutstandingTokens())
	}
	if e.BusySeconds() <= 0 || e.Steps() == 0 {
		t.Errorf("no time accounted: busy=%g steps=%d", e.BusySeconds(), e.Steps())
	}
	if u := e.Utilization(); u <= 0 || u > 1 {
		t.Errorf("utilization %g out of (0,1]", u)
	}
}

// TestEngineStepEvents checks the per-step event stream: admissions on
// the step that first decodes a request, one generated token per active
// request, completions exactly at each request's generation length.
func TestEngineStepEvents(t *testing.T) {
	sys, err := New(engineConfig(t, PIMphony()))
	if err != nil {
		t.Fatal(err)
	}
	e, err := sys.NewEngine()
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Enqueue(workload.Request{ID: 1, Context: 4096, Decode: 2}); err != nil {
		t.Fatal(err)
	}
	res, err := e.Step(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Admitted) != 1 || res.Admitted[0].ID != 1 {
		t.Fatalf("step 1 admitted %v", res.Admitted)
	}
	if len(res.Generated) != 1 || len(res.Completed) != 0 || res.Batch != 1 {
		t.Fatalf("step 1: %+v", res)
	}
	if res.Seconds <= 0 {
		t.Fatal("step 1 took no time")
	}
	// Mid-flight arrival joins at the next step boundary.
	if err := e.Enqueue(workload.Request{ID: 2, Context: 4096, Decode: 1}); err != nil {
		t.Fatal(err)
	}
	res, err = e.Step(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Admitted) != 1 || res.Admitted[0].ID != 2 || res.Batch != 2 {
		t.Fatalf("step 2: %+v", res)
	}
	// Request 1 finishes its 2 tokens, request 2 its single token.
	if len(res.Completed) != 2 {
		t.Fatalf("step 2 completed %v", res.Completed)
	}
	if !e.Idle() {
		t.Fatal("engine should be idle")
	}
	// Idle steps are free and report nothing.
	res, err = e.Step(context.Background())
	if err != nil || res.Seconds != 0 || res.Batch != 0 {
		t.Fatalf("idle step: %+v, %v", res, err)
	}
}

func TestEngineEnqueueErrors(t *testing.T) {
	sys, err := New(engineConfig(t, PIMphony()))
	if err != nil {
		t.Fatal(err)
	}
	e, err := sys.NewEngine()
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Enqueue(workload.Request{ID: 1, Context: 1024}); err == nil {
		t.Error("zero Decode should be rejected")
	}
	if err := e.Enqueue(workload.Request{ID: 1, Context: 1024, Decode: 4}); err != nil {
		t.Fatal(err)
	}
	if err := e.Enqueue(workload.Request{ID: 1, Context: 2048, Decode: 4}); err == nil {
		t.Error("duplicate ID should be rejected")
	}
	// A context at (or past) T_max can never emit a token.
	window := engineConfig(t, PIMphony()).Model.ContextWindow
	if err := e.Enqueue(workload.Request{ID: 2, Context: window, Decode: 4}); err == nil {
		t.Error("context at T_max should be rejected at enqueue")
	}
}

// TestEngineTruncatesAtTMax: under static allocation a request whose
// Context+Decode overruns T_max must not freeze forever — generation is
// truncated at the window and the request retires with the tokens it
// actually produced.
func TestEngineTruncatesAtTMax(t *testing.T) {
	cfg := engineConfig(t, Technique{}) // static T_max reservation
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e, err := sys.NewEngine()
	if err != nil {
		t.Fatal(err)
	}
	tmax := cfg.Model.ContextWindow
	req := workload.Request{ID: 1, Context: tmax - 2, Decode: 8}
	if err := e.Enqueue(req); err != nil {
		t.Fatal(err)
	}
	done := drain(t, e)
	if len(done) != 1 || done[0].ID != 1 {
		t.Fatalf("truncated request did not retire: %v", done)
	}
	if e.Generated() != 2 {
		t.Errorf("generated %d tokens, want 2 (truncated at T_max)", e.Generated())
	}
}

func TestEngineRejectsGPUAndOversized(t *testing.T) {
	gpu := Config{Name: "gpu", Kind: GPUSystem, Model: model.LLM7B32K(), GPUs: 2, DecodeWindow: 4}
	sys, err := New(gpu)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.NewEngine(); err == nil {
		t.Error("GPU systems should not build a serving engine")
	}

	// A request that fits the context window but not the KV pool can
	// never be admitted: the engine must surface the stuck head-of-queue
	// instead of spinning idle. 8x2 GiB modules leave ~2.5 GiB of pool
	// after the 7B weights — under static T_max reservation (~16 GiB per
	// request at the 32K window) nothing fits.
	cfg := engineConfig(t, Technique{}) // static T_max reservation
	cfg.Dev = cfg.Dev.WithCapacity(2 << 30)
	sys, err = New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e, err := sys.NewEngine()
	if err != nil {
		t.Fatal(err)
	}
	big := workload.Request{ID: 9, Context: 8192, Decode: 4}
	if err := e.Enqueue(big); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Step(context.Background()); err == nil {
		t.Error("un-admittable head of queue should error")
	}
}

// TestEngineMatchesRunThroughput cross-checks the engine against the
// batch simulator: serving one request is priced by the same iteration
// model, so total time over its decode length must match a Run of the
// same request with ContinuousBatching (which retires it at the same
// point).
func TestEngineMatchesRunThroughput(t *testing.T) {
	cfg := engineConfig(t, PIMphony())
	cfg.ContinuousBatching = true
	cfg.DecodeWindow = 8
	req := workload.Request{ID: 0, Context: 8192, Decode: 5}

	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sys.Run([]workload.Request{req})
	if err != nil {
		t.Fatal(err)
	}

	sys2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e, err := sys2.NewEngine()
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Enqueue(req); err != nil {
		t.Fatal(err)
	}
	drain(t, e)
	if e.Steps() != rep.Steps {
		t.Fatalf("engine ran %d steps, Run ran %d", e.Steps(), rep.Steps)
	}
	if diff := e.BusySeconds() - rep.TotalSeconds; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("engine time %g vs Run time %g", e.BusySeconds(), rep.TotalSeconds)
	}
}
