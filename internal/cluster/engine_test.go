package cluster

import (
	"context"
	"testing"

	"pimphony/internal/model"
	"pimphony/internal/timing"
	"pimphony/internal/workload"
)

// engineConfig is a small CENT-style system for engine tests.
func engineConfig(t testing.TB, tech Technique) Config {
	t.Helper()
	m := model.LLM7B32K()
	return Config{
		Name:         "engine-test",
		Backend:      PIMOnly,
		Dev:          timing.AiM16().WithChannels(32).WithCapacity(16 << 30),
		Modules:      8,
		TP:           8,
		PP:           1,
		Model:        m,
		Tech:         tech,
		DecodeWindow: 4,
	}
}

// drain steps the engine to completion, returning all completions in
// retirement order.
func drain(t *testing.T, e *Engine) []workload.Request {
	t.Helper()
	var done []workload.Request
	for i := 0; !e.Idle(); i++ {
		if i > 1_000_000 {
			t.Fatal("engine did not drain")
		}
		res, err := e.Step(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		done = append(done, res.Completed...)
	}
	return done
}

func TestEngineServesAllRequests(t *testing.T) {
	sys, err := New(engineConfig(t, PIMphony()))
	if err != nil {
		t.Fatal(err)
	}
	e, err := sys.NewEngine()
	if err != nil {
		t.Fatal(err)
	}
	reqs := workload.NewGenerator(workload.QMSum(), 42).Batch(12)
	want := 0
	for i := range reqs {
		reqs[i].Decode = 3 + i%4
		want += reqs[i].Decode
		if err := e.Enqueue(reqs[i]); err != nil {
			t.Fatal(err)
		}
	}
	done := drain(t, e)
	if len(done) != len(reqs) {
		t.Fatalf("completed %d of %d requests", len(done), len(reqs))
	}
	if e.Generated() != want {
		t.Errorf("generated %d tokens, want %d", e.Generated(), want)
	}
	if e.OutstandingTokens() != 0 {
		t.Errorf("outstanding %d tokens after drain", e.OutstandingTokens())
	}
	if e.BusySeconds() <= 0 || e.Steps() == 0 {
		t.Errorf("no time accounted: busy=%g steps=%d", e.BusySeconds(), e.Steps())
	}
	if u := e.Utilization(); u <= 0 || u > 1 {
		t.Errorf("utilization %g out of (0,1]", u)
	}
}

// TestEngineStepEvents checks the per-step event stream: admissions on
// the step that first decodes a request, one generated token per active
// request, completions exactly at each request's generation length.
func TestEngineStepEvents(t *testing.T) {
	sys, err := New(engineConfig(t, PIMphony()))
	if err != nil {
		t.Fatal(err)
	}
	e, err := sys.NewEngine()
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Enqueue(workload.Request{ID: 1, Context: 4096, Decode: 2}); err != nil {
		t.Fatal(err)
	}
	res, err := e.Step(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Admitted) != 1 || res.Admitted[0].ID != 1 {
		t.Fatalf("step 1 admitted %v", res.Admitted)
	}
	if len(res.Generated) != 1 || len(res.Completed) != 0 || res.Batch != 1 {
		t.Fatalf("step 1: %+v", res)
	}
	if res.Seconds <= 0 {
		t.Fatal("step 1 took no time")
	}
	// Mid-flight arrival joins at the next step boundary.
	if err := e.Enqueue(workload.Request{ID: 2, Context: 4096, Decode: 1}); err != nil {
		t.Fatal(err)
	}
	res, err = e.Step(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Admitted) != 1 || res.Admitted[0].ID != 2 || res.Batch != 2 {
		t.Fatalf("step 2: %+v", res)
	}
	// Request 1 finishes its 2 tokens, request 2 its single token.
	if len(res.Completed) != 2 {
		t.Fatalf("step 2 completed %v", res.Completed)
	}
	if !e.Idle() {
		t.Fatal("engine should be idle")
	}
	// Idle steps are free and report nothing.
	res, err = e.Step(context.Background())
	if err != nil || res.Seconds != 0 || res.Batch != 0 {
		t.Fatalf("idle step: %+v, %v", res, err)
	}
}

func TestEngineEnqueueErrors(t *testing.T) {
	sys, err := New(engineConfig(t, PIMphony()))
	if err != nil {
		t.Fatal(err)
	}
	e, err := sys.NewEngine()
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Enqueue(workload.Request{ID: 1, Context: 1024}); err == nil {
		t.Error("zero Decode should be rejected")
	}
	if err := e.Enqueue(workload.Request{ID: 1, Context: 1024, Decode: 4}); err != nil {
		t.Fatal(err)
	}
	if err := e.Enqueue(workload.Request{ID: 1, Context: 2048, Decode: 4}); err == nil {
		t.Error("duplicate ID should be rejected")
	}
	// A context at (or past) T_max can never emit a token.
	window := engineConfig(t, PIMphony()).Model.ContextWindow
	if err := e.Enqueue(workload.Request{ID: 2, Context: window, Decode: 4}); err == nil {
		t.Error("context at T_max should be rejected at enqueue")
	}
}

// TestEngineTruncatesAtTMax: under static allocation a request whose
// Context+Decode overruns T_max must not freeze forever — generation is
// truncated at the window and the request retires with the tokens it
// actually produced.
func TestEngineTruncatesAtTMax(t *testing.T) {
	cfg := engineConfig(t, Technique{}) // static T_max reservation
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e, err := sys.NewEngine()
	if err != nil {
		t.Fatal(err)
	}
	tmax := cfg.Model.ContextWindow
	req := workload.Request{ID: 1, Context: tmax - 2, Decode: 8}
	if err := e.Enqueue(req); err != nil {
		t.Fatal(err)
	}
	done := drain(t, e)
	if len(done) != 1 || done[0].ID != 1 {
		t.Fatalf("truncated request did not retire: %v", done)
	}
	if e.Generated() != 2 {
		t.Errorf("generated %d tokens, want 2 (truncated at T_max)", e.Generated())
	}
}

// TestEngineServesGPU: the refactored step loop gives the GPU baseline
// full serving-engine support — admission against its paged pool,
// per-step events, completion accounting — where the pre-backend code
// refused to build an engine at all.
func TestEngineServesGPU(t *testing.T) {
	gpu := Config{Name: "gpu", Backend: GPUSystem, Model: model.LLM7B32K(), GPUs: 2, DecodeWindow: 4}
	sys, err := New(gpu)
	if err != nil {
		t.Fatal(err)
	}
	e, err := sys.NewEngine()
	if err != nil {
		t.Fatal(err)
	}
	reqs := workload.NewGenerator(workload.QMSum(), 7).Batch(6)
	want := 0
	for i := range reqs {
		reqs[i].Decode = 2 + i%3
		want += reqs[i].Decode
		if err := e.Enqueue(reqs[i]); err != nil {
			t.Fatal(err)
		}
	}
	done := drain(t, e)
	if len(done) != len(reqs) {
		t.Fatalf("completed %d of %d requests", len(done), len(reqs))
	}
	if e.Generated() != want {
		t.Errorf("generated %d tokens, want %d", e.Generated(), want)
	}
	if e.BusySeconds() <= 0 || e.Steps() == 0 {
		t.Errorf("no time accounted: busy=%g steps=%d", e.BusySeconds(), e.Steps())
	}
	if e.AllocName() != "paged" {
		t.Errorf("GPU engine allocator %q, want paged", e.AllocName())
	}
	// No PIM channels: utilization has no denominator and stays zero.
	if u := e.Utilization(); u != 0 {
		t.Errorf("GPU utilization %g, want 0", u)
	}
}

func TestEngineRejectsOversized(t *testing.T) {
	// A request that fits the context window but not the KV pool can
	// never be admitted: the engine must surface the stuck head-of-queue
	// instead of spinning idle. 8x2 GiB modules leave ~2.5 GiB of pool
	// after the 7B weights — under static T_max reservation (~16 GiB per
	// request at the 32K window) nothing fits.
	cfg := engineConfig(t, Technique{}) // static T_max reservation
	cfg.Dev = cfg.Dev.WithCapacity(2 << 30)
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e, err := sys.NewEngine()
	if err != nil {
		t.Fatal(err)
	}
	big := workload.Request{ID: 9, Context: 8192, Decode: 4}
	if err := e.Enqueue(big); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Step(context.Background()); err == nil {
		t.Error("un-admittable head of queue should error")
	}
}

// TestEngineMatchesRunThroughput cross-checks the engine against the
// batch simulator: serving one request is priced by the same iteration
// model, so total time over its decode length must match a Run of the
// same request with ContinuousBatching (which retires it at the same
// point).
func TestEngineMatchesRunThroughput(t *testing.T) {
	cfg := engineConfig(t, PIMphony())
	cfg.ContinuousBatching = true
	cfg.DecodeWindow = 8
	req := workload.Request{ID: 0, Context: 8192, Decode: 5}

	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sys.Run([]workload.Request{req})
	if err != nil {
		t.Fatal(err)
	}

	sys2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e, err := sys2.NewEngine()
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Enqueue(req); err != nil {
		t.Fatal(err)
	}
	drain(t, e)
	if e.Steps() != rep.Steps {
		t.Fatalf("engine ran %d steps, Run ran %d", e.Steps(), rep.Steps)
	}
	if diff := e.BusySeconds() - rep.TotalSeconds; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("engine time %g vs Run time %g", e.BusySeconds(), rep.TotalSeconds)
	}
}

// TestEngineKVBudgetCapsPool: Config.KVBudgetBytes caps the serving
// pool below the physical capacity left after weights.
func TestEngineKVBudgetCapsPool(t *testing.T) {
	cfg := engineConfig(t, PIMphony())
	cfg.KVBudgetBytes = 1 << 30
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e, err := sys.NewEngine()
	if err != nil {
		t.Fatal(err)
	}
	if got := e.KVPoolBytes(); got != 1<<30 {
		t.Fatalf("pool %d, want the 1 GiB budget", got)
	}
	cfg.KVBudgetBytes = -1
	if _, err := New(cfg); err == nil {
		t.Error("negative KV budget should fail validation")
	}
}

// TestEnginePreemptsUnderDPAExhaustion builds the failure mode static
// allocation over-reserves to avoid: two DPA requests admitted into a
// pool with room for their prompts but not their combined growth. The
// engine must evict the youngest back to the queue (freeing its
// chunks), let the older one finish, then re-admit the victim — paying
// a KV recompute — and still serve every token exactly once.
func TestEnginePreemptsUnderDPAExhaustion(t *testing.T) {
	cfg := engineConfig(t, PIMphony()) // DPA on
	// LLM-7B KV is 0.5 MiB/token -> 2 tokens per 1 MiB chunk. 4100
	// chunks hold two 4096-token prompts (2048 chunks each) with only 4
	// chunks of slack — each request wants 4 more chunks of growth.
	cfg.KVBudgetBytes = 4100 << 20
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e, err := sys.NewEngine()
	if err != nil {
		t.Fatal(err)
	}
	a := workload.Request{ID: 1, Context: 4096, Decode: 8}
	b := workload.Request{ID: 2, Context: 4096, Decode: 8}
	for _, r := range []workload.Request{a, b} {
		if err := e.Enqueue(r); err != nil {
			t.Fatal(err)
		}
	}
	var done []workload.Request
	var preempted []workload.Request
	tokens := map[int]int{}
	for i := 0; !e.Idle(); i++ {
		if i > 10_000 {
			t.Fatal("engine did not drain")
		}
		res, err := e.Step(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		done = append(done, res.Completed...)
		preempted = append(preempted, res.Preempted...)
		for _, id := range res.Generated {
			tokens[id]++
		}
		// Invariant: the allocator never reserves past the budget and
		// live never exceeds reserved.
		al := e.Alloc()
		if al.ReservedBytes() > al.CapacityBytes() {
			t.Fatalf("step %d: reserved %d past capacity %d", i, al.ReservedBytes(), al.CapacityBytes())
		}
		if al.LiveBytes() > al.ReservedBytes() {
			t.Fatalf("step %d: live %d > reserved %d", i, al.LiveBytes(), al.ReservedBytes())
		}
	}
	if e.Preemptions() == 0 || len(preempted) == 0 {
		t.Fatal("expected at least one preemption in the exhaustion scenario")
	}
	if preempted[0].ID != b.ID {
		t.Errorf("victim was %d, want the youngest (%d)", preempted[0].ID, b.ID)
	}
	if len(done) != 2 {
		t.Fatalf("completed %d of 2 requests", len(done))
	}
	// The older request finishes first; the victim re-admits after.
	if done[0].ID != a.ID || done[1].ID != b.ID {
		t.Errorf("completion order %v, want [1 2]", []int{done[0].ID, done[1].ID})
	}
	// Every decode token emitted exactly once — eviction keeps progress,
	// recompute rebuilds KV, not tokens.
	if tokens[a.ID] != a.Decode || tokens[b.ID] != b.Decode {
		t.Errorf("token counts %v, want 8 each", tokens)
	}
	if e.RecomputeSeconds() <= 0 {
		t.Error("re-admission should have charged KV recompute time")
	}
	if e.MaxActive() != 2 {
		t.Errorf("max active %d, want 2", e.MaxActive())
	}
	// Reserve/release accounting under preemption: the drained pool is
	// empty.
	if r := e.Alloc().ReservedBytes(); r != 0 {
		t.Errorf("reserved %d bytes after drain", r)
	}
	if l := e.Alloc().LiveBytes(); l != 0 {
		t.Errorf("live %d bytes after drain", l)
	}
}

// TestEngineStaticNeverPreempts: the same exhaustion-shaped workload
// under static allocation cannot over-admit — T_max reservation blocks
// the second request at admission instead, so it queues (blocked time
// accrues) and no preemption ever happens.
func TestEngineStaticNeverPreempts(t *testing.T) {
	cfg := engineConfig(t, Technique{TCP: true, DCS: true}) // DPA off
	cfg.TMaxOverride = 8192                                 // 4 GiB static reservation per request
	cfg.KVBudgetBytes = 4100 << 20                          // room for exactly one
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e, err := sys.NewEngine()
	if err != nil {
		t.Fatal(err)
	}
	for id := 1; id <= 2; id++ {
		if err := e.Enqueue(workload.Request{ID: id, Context: 4096, Decode: 8}); err != nil {
			t.Fatal(err)
		}
	}
	done := drain(t, e)
	if len(done) != 2 {
		t.Fatalf("completed %d of 2", len(done))
	}
	if e.Preemptions() != 0 {
		t.Errorf("static allocation preempted %d times", e.Preemptions())
	}
	if e.MaxActive() != 1 {
		t.Errorf("max active %d, want 1 (one T_max reservation fits)", e.MaxActive())
	}
	if e.BlockedSeconds() <= 0 {
		t.Error("the queued request should have accrued admission-blocked time")
	}
	if e.PeakReservedBytes() <= e.PeakLiveBytes() {
		t.Errorf("static peak reserved %d should exceed peak live %d",
			e.PeakReservedBytes(), e.PeakLiveBytes())
	}
}
