package cluster

import (
	"context"
	"math"
	"testing"

	"pimphony/internal/workload"
)

// benchEngine builds a serving engine with a long-running batch: 8
// QMSum-sized requests whose generation lengths keep the batch busy for
// the whole measurement.
func benchEngine(b *testing.B) *Engine {
	b.Helper()
	cfg := engineConfig(b, PIMphony())
	sys, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	e, err := sys.NewEngine()
	if err != nil {
		b.Fatal(err)
	}
	for i, r := range workload.NewGenerator(workload.QMSum(), 42).Batch(8) {
		r.Decode = 20000 + i
		if err := e.Enqueue(r); err != nil {
			b.Fatal(err)
		}
	}
	return e
}

// BenchmarkEngineStep measures the naive one-iteration serving step —
// admission scan, memoized pricing, growth, retirement — the unit the
// multi-step fast-forward amortizes away.
func BenchmarkEngineStep(b *testing.B) {
	e := benchEngine(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if e.Idle() {
			b.StopTimer()
			e = benchEngine(b)
			b.StartTimer()
		}
		if _, err := e.Step(context.Background()); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(e.Generated())/b.Elapsed().Seconds(), "tokens/s")
}

// BenchmarkEngineLeap measures the fast-forward path: each op is one
// Leap call, which advances the batch through every iteration up to the
// next serving event.
func BenchmarkEngineLeap(b *testing.B) {
	e := benchEngine(b)
	tokens := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if e.Idle() {
			b.StopTimer()
			tokens += e.Generated()
			e = benchEngine(b)
			b.StartTimer()
		}
		res, err := e.Leap(context.Background(), 0, math.Inf(1))
		if err != nil {
			b.Fatal(err)
		}
		_ = res
	}
	b.ReportMetric(float64(tokens+e.Generated())/b.Elapsed().Seconds(), "tokens/s")
}
