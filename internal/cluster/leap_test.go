package cluster

import (
	"context"
	"math"
	"reflect"
	"testing"

	"pimphony/internal/model"
	"pimphony/internal/timing"
	"pimphony/internal/workload"
)

// stepTrace is the flattened per-iteration event stream of an engine
// drain: one entry per decode iteration, in simulation order, with the
// admission/preemption/completion events attached to the iteration that
// produced them (a leap expands to Iterations entries).
type stepTrace struct {
	Seconds   float64
	Batch     int
	Admitted  []int
	Generated []int
	Preempted []int
	Completed []int
}

func ids(reqs []workload.Request) []int {
	if len(reqs) == 0 {
		return nil
	}
	out := make([]int, len(reqs))
	for i, r := range reqs {
		out[i] = r.ID
	}
	return out
}

// drainTrace drains an engine and returns the flattened iteration
// trace. leap selects Engine.Leap (multi-step fast-forward) over the
// naive one-iteration Step loop.
func drainTrace(t *testing.T, e *Engine, leap bool) []stepTrace {
	t.Helper()
	var out []stepTrace
	for i := 0; !e.Idle(); i++ {
		if i > 1_000_000 {
			t.Fatal("engine did not drain")
		}
		var res StepResult
		var err error
		if leap {
			res, err = e.Leap(context.Background(), 0, math.Inf(1))
		} else {
			res, err = e.Step(context.Background())
		}
		if err != nil {
			t.Fatal(err)
		}
		if res.Iterations <= 1 {
			out = append(out, stepTrace{Seconds: res.Seconds, Batch: res.Batch,
				Admitted: ids(res.Admitted), Generated: append([]int(nil), res.Generated...),
				Preempted: ids(res.Preempted), Completed: ids(res.Completed)})
			continue
		}
		// Expand the leap: every Generated ID emitted one token per
		// iteration; completions land on the final iteration.
		for it, sec := range res.IterSeconds {
			st := stepTrace{Seconds: sec, Batch: res.Batch,
				Generated: append([]int(nil), res.Generated...)}
			if it == res.Iterations-1 {
				st.Completed = ids(res.Completed)
			}
			out = append(out, st)
		}
	}
	return out
}

// engineFor builds a fresh engine for a config with the given requests
// enqueued.
func engineFor(t *testing.T, cfg Config, reqs []workload.Request) *Engine {
	t.Helper()
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e, err := sys.NewEngine()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range reqs {
		if err := e.Enqueue(r); err != nil {
			t.Fatal(err)
		}
	}
	return e
}

// TestLeapMatchesStepEventStream pins the fast-forward contract at the
// engine level: draining via Leap must produce the identical flattened
// iteration trace — same per-iteration durations, same events on the
// same iterations — and identical aggregate counters as the naive
// one-step loop, including under DPA preemption pressure and on the GPU
// baseline's paged pool.
func TestLeapMatchesStepEventStream(t *testing.T) {
	long := func(cfg Config) Config {
		cfg.DecodeWindow = 8
		return cfg
	}
	tightDPA := long(engineConfig(t, PIMphony()))
	tightDPA.KVBudgetBytes = 4100 << 20 // forces mid-decode preemption
	static := long(engineConfig(t, Technique{TCP: true, DCS: true}))
	static.TMaxOverride = 8192
	static.KVBudgetBytes = 4100 << 20 // admits one at a time
	cases := []struct {
		name string
		cfg  Config
		reqs []workload.Request
	}{
		{"pim-dpa", long(engineConfig(t, PIMphony())), withDecode(workload.NewGenerator(workload.QMSum(), 42).Batch(10), 37)},
		{"pim-static-queued", static, withDecode(workload.Uniform(4096, 3).Batch(4), 60)},
		{"pim-dpa-preempting", tightDPA, []workload.Request{
			{ID: 1, Context: 4096, Decode: 8}, {ID: 2, Context: 4096, Decode: 8}}},
		{"pim-truncating", long(engineConfig(t, PIMphony())), []workload.Request{{ID: 1, Context: 32768 - 90, Decode: 400}}},
		{"gpu-paged", Config{Name: "gpu", Backend: GPUSystem, Model: model.LLM7B32K(), GPUs: 2, DecodeWindow: 4},
			withDecode(workload.NewGenerator(workload.QMSum(), 7).Batch(6), 50)},
		{"dimm-dpa", Config{Name: "dimm", Backend: DIMMPIM, Dev: timing.DDR5DIMM(), Modules: 8, TP: 8, PP: 1,
			Model: model.LLM7B32K(), Tech: PIMphony(), DecodeWindow: 4},
			withDecode(workload.NewGenerator(workload.QMSum(), 9).Batch(6), 45)},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			naive := engineFor(t, c.cfg, c.reqs)
			fast := engineFor(t, c.cfg, c.reqs)
			nt := drainTrace(t, naive, false)
			ft := drainTrace(t, fast, true)
			if !reflect.DeepEqual(nt, ft) {
				if len(nt) != len(ft) {
					t.Fatalf("trace lengths diverged: naive %d vs leap %d iterations", len(nt), len(ft))
				}
				for i := range nt {
					if !reflect.DeepEqual(nt[i], ft[i]) {
						t.Fatalf("iteration %d diverged:\nnaive %+v\nleap  %+v", i, nt[i], ft[i])
					}
				}
			}
			if c.name == "pim-dpa-preempting" && naive.Preemptions() == 0 {
				t.Fatal("scenario did not exercise preemption")
			}
			// Aggregates must agree exactly too.
			if naive.Generated() != fast.Generated() || naive.Steps() != fast.Steps() ||
				naive.BusySeconds() != fast.BusySeconds() ||
				naive.Preemptions() != fast.Preemptions() ||
				naive.BlockedSeconds() != fast.BlockedSeconds() ||
				naive.RecomputeSeconds() != fast.RecomputeSeconds() ||
				naive.Utilization() != fast.Utilization() ||
				naive.MaxActive() != fast.MaxActive() ||
				naive.PeakLiveBytes() != fast.PeakLiveBytes() ||
				naive.PeakReservedBytes() != fast.PeakReservedBytes() {
				t.Errorf("aggregates diverged:\nnaive gen=%d steps=%d busy=%g preempt=%d blocked=%g recomp=%g\nleap  gen=%d steps=%d busy=%g preempt=%d blocked=%g recomp=%g",
					naive.Generated(), naive.Steps(), naive.BusySeconds(), naive.Preemptions(), naive.BlockedSeconds(), naive.RecomputeSeconds(),
					fast.Generated(), fast.Steps(), fast.BusySeconds(), fast.Preemptions(), fast.BlockedSeconds(), fast.RecomputeSeconds())
			}
		})
	}
}

func withDecode(reqs []workload.Request, base int) []workload.Request {
	for i := range reqs {
		reqs[i].Decode = base + i%7
	}
	return reqs
}

// TestLeapRespectsUntil: a leap advancing toward a time bound must stop
// with the first iteration that crosses it — the property that keeps
// arrival admission timing identical to single stepping.
func TestLeapRespectsUntil(t *testing.T) {
	cfg := engineConfig(t, PIMphony())
	e := engineFor(t, cfg, []workload.Request{{ID: 1, Context: 4096, Decode: 64}})
	// First call prices one iteration (admission forces the Step path).
	res, err := e.Leap(context.Background(), 0, math.Inf(1))
	if err != nil {
		t.Fatal(err)
	}
	perStep := res.Seconds
	if res.Iterations != 1 {
		t.Fatalf("admitting call leapt %d iterations", res.Iterations)
	}
	// Advance toward a bound ~3.5 iterations out: the leap must stop
	// after the 4th iteration (the one that crosses), not run to the
	// completion horizon.
	until := perStep * 3.5
	res, err = e.Leap(context.Background(), 0, until)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != 4 {
		t.Fatalf("leap ran %d iterations toward a 3.5-iteration bound, want 4", res.Iterations)
	}
	var clock float64
	for _, d := range res.IterSeconds[:res.Iterations-1] {
		clock += d
	}
	if clock >= until {
		t.Fatal("leap kept running after crossing the bound")
	}
}

// TestLeapReducesCacheLookups asserts the step-cost memoization's
// headline: a serving drain through the memoizing stepper consults the
// perfmodel cache at least 2x less than the pre-memoization path (which
// priced every (channel, kernel) work unit of every iteration).
func TestLeapReducesCacheLookups(t *testing.T) {
	cfg := engineConfig(t, PIMphony())
	reqs := withDecode(workload.NewGenerator(workload.QMSum(), 11).Batch(8), 48)

	lookupsOf := func(strip bool, leap bool) int64 {
		e := engineFor(t, cfg, reqs)
		if strip {
			e.sys.stepper = nil // the pre-memoization pricing path
		}
		before := e.sys.env.Perf.CacheLookups()
		drainTrace(t, e, leap)
		return e.sys.env.Perf.CacheLookups() - before
	}
	naive := lookupsOf(true, false)
	fast := lookupsOf(false, true)
	if naive == 0 || fast == 0 {
		t.Fatalf("lookup counters not wired: naive=%d fast=%d", naive, fast)
	}
	if fast*2 > naive {
		t.Errorf("memoized serving run did %d lookups vs %d un-memoized — less than the required 2x reduction", fast, naive)
	}
	t.Logf("perfmodel cache lookups per serving run: %d un-memoized -> %d memoized (%.0fx fewer)",
		naive, fast, float64(naive)/float64(fast))
}
