package cluster

import (
	"testing"

	"pimphony/internal/backend"
	"pimphony/internal/model"
	"pimphony/internal/timing"
	"pimphony/internal/workload"
)

// centConfig is a CENT-like PIM-only system: 8 modules x 16 GiB for the 7B
// models (Table IV / Sec. VIII-A), 32 channels per module.
func centConfig(m model.Config, tech Technique) Config {
	dev := timing.AiM16().WithChannels(32).WithCapacity(16 << 30)
	return Config{
		Name:         "cent-7b",
		Backend:      PIMOnly,
		Dev:          dev,
		Modules:      8,
		TP:           8,
		PP:           1,
		Model:        m,
		Tech:         tech,
		RowReuse:     m.IsGQA(),
		DecodeWindow: 4,
	}
}

func neuPIMsConfig(m model.Config, tech Technique) Config {
	dev := timing.AiM16().WithChannels(32).WithCapacity(32 << 30)
	return Config{
		Name:         "neupims-7b",
		Backend:      XPUPIM,
		Dev:          dev,
		Modules:      4,
		TP:           4,
		PP:           1,
		Model:        m,
		Tech:         tech,
		RowReuse:     m.IsGQA(),
		DecodeWindow: 4,
	}
}

func qmsumBatch(n int) []workload.Request {
	return workload.NewGenerator(workload.QMSum(), 11).Batch(n)
}

func runOrFatal(t *testing.T, cfg Config, reqs []workload.Request) *Report {
	t.Helper()
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sys.Run(reqs)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestIncrementalTechniqueOrdering is the headline Fig. 13 shape: each
// added technique must not reduce throughput, and the full stack must be
// substantially faster than the baseline. A uniform-context workload
// isolates the techniques from batch-composition sampling effects (with a
// skewed trace, a bigger DPA batch can simply contain longer requests).
func TestIncrementalTechniqueOrdering(t *testing.T) {
	m := model.LLM7B32K()
	reqs := workload.Uniform(14000, 1).Batch(64)
	steps := []Technique{
		{},
		{TCP: true},
		{TCP: true, DCS: true},
		{TCP: true, DCS: true, DPA: true},
	}
	var prev float64
	var tps []float64
	for _, tech := range steps {
		rep := runOrFatal(t, centConfig(m, tech), reqs)
		if rep.Throughput < prev*0.98 { // allow sub-1% modelling noise
			t.Errorf("technique %+v reduced throughput: %.0f -> %.0f tok/s", tech, prev, rep.Throughput)
		}
		prev = rep.Throughput
		tps = append(tps, rep.Throughput)
	}
	speedup := tps[3] / tps[0]
	t.Logf("CENT LLM-7B-32K uniform-14K: base=%.0f +TCP=%.0f +DCS=%.0f +DPA=%.0f tok/s (%.1fx)",
		tps[0], tps[1], tps[2], tps[3], speedup)
	if speedup < 1.5 {
		t.Errorf("full PIMphony speedup %.2fx is below the paper's 2.1x-4.5x band floor", speedup)
	}
	// The QMSum trace must land in the paper's reported band as well.
	base := runOrFatal(t, centConfig(m, Baseline()), qmsumBatch(64))
	full := runOrFatal(t, centConfig(m, PIMphony()), qmsumBatch(64))
	t.Logf("CENT LLM-7B-32K QMSum: base=%.0f full=%.0f tok/s (%.1fx)",
		base.Throughput, full.Throughput, full.Throughput/base.Throughput)
	if full.Throughput/base.Throughput < 1.5 {
		t.Errorf("QMSum speedup %.2fx below band floor", full.Throughput/base.Throughput)
	}
}

func TestDPAIncreasesBatch(t *testing.T) {
	m := model.LLM7B32K()
	reqs := qmsumBatch(64)
	noDPA := runOrFatal(t, centConfig(m, Technique{TCP: true, DCS: true}), reqs)
	withDPA := runOrFatal(t, centConfig(m, PIMphony()), reqs)
	if withDPA.Batch <= noDPA.Batch {
		t.Errorf("DPA should raise the effective batch: %d vs %d", withDPA.Batch, noDPA.Batch)
	}
	if withDPA.CapacityUtil <= noDPA.CapacityUtil {
		t.Errorf("DPA should raise capacity utilization: %.2f vs %.2f",
			withDPA.CapacityUtil, noDPA.CapacityUtil)
	}
	t.Logf("batch %d -> %d, capacity util %.1f%% -> %.1f%%",
		noDPA.Batch, withDPA.Batch, 100*noDPA.CapacityUtil, 100*withDPA.CapacityUtil)
}

func TestPIMUtilizationImproves(t *testing.T) {
	m := model.LLM7B32K()
	reqs := qmsumBatch(64)
	base := runOrFatal(t, centConfig(m, Baseline()), reqs)
	full := runOrFatal(t, centConfig(m, PIMphony()), reqs)
	if full.PIMUtil <= base.PIMUtil {
		t.Errorf("PIMphony should raise PIM utilization: %.3f vs %.3f", full.PIMUtil, base.PIMUtil)
	}
	t.Logf("PIM util %.1f%% -> %.1f%%", 100*base.PIMUtil, 100*full.PIMUtil)
	if base.PIMUtil < 0 || base.PIMUtil > 1 || full.PIMUtil > 1 {
		t.Error("utilization out of [0,1]")
	}
}

func TestXPUPIMRuns(t *testing.T) {
	m := model.LLM7B32K()
	reqs := qmsumBatch(64)
	base := runOrFatal(t, neuPIMsConfig(m, Baseline()), reqs)
	full := runOrFatal(t, neuPIMsConfig(m, PIMphony()), reqs)
	if full.Throughput <= base.Throughput {
		t.Errorf("PIMphony on xPU+PIM should win: %.0f vs %.0f tok/s", full.Throughput, base.Throughput)
	}
	t.Logf("NeuPIMs 7B: %.0f -> %.0f tok/s (%.1fx)", base.Throughput, full.Throughput, full.Throughput/base.Throughput)
}

func TestPPBubblesWithSmallBatch(t *testing.T) {
	// Two long requests through an 8-stage pipeline: stage idling should
	// make PP slower than pure TP at the same module count.
	m := model.LLM7B32K()
	reqs := workload.NewGenerator(workload.QMSum(), 5).Batch(2)
	tp := centConfig(m, Baseline())
	tp.MaxBatch = 2
	pp := tp
	pp.TP, pp.PP = 1, 8
	repTP := runOrFatal(t, tp, reqs)
	repPP := runOrFatal(t, pp, reqs)
	if repPP.Throughput >= repTP.Throughput {
		t.Errorf("PP with batch 2 over 8 stages should bubble: PP %.0f vs TP %.0f tok/s",
			repPP.Throughput, repTP.Throughput)
	}
}

func TestGPUBaselineRuns(t *testing.T) {
	m := model.LLM7B32K()
	cfg := Config{
		Name:         "a100x2",
		Backend:      GPUSystem,
		Model:        m,
		GPUs:         2,
		DecodeWindow: 4,
	}
	rep := runOrFatal(t, cfg, qmsumBatch(64))
	if rep.Throughput <= 0 || rep.Batch <= 0 {
		t.Fatalf("GPU baseline produced %+v", rep)
	}
	// Memory-matched PIM system should beat the GPU on this non-GQA model
	// (Fig. 20a shape).
	pim := runOrFatal(t, centConfig(m, PIMphony()), qmsumBatch(64))
	if pim.Throughput <= rep.Throughput {
		t.Errorf("PIMphony (%.0f tok/s) should beat A100x2 (%.0f tok/s) on non-GQA", pim.Throughput, rep.Throughput)
	}
	t.Logf("GPU %.0f vs PIMphony %.0f tok/s", rep.Throughput, pim.Throughput)
}

func TestAttentionEnergyTracked(t *testing.T) {
	m := model.LLM7B32K()
	rep := runOrFatal(t, centConfig(m, Baseline()), qmsumBatch(32))
	if rep.AttnEnergy.Total() <= 0 || rep.FCEnergy.Total() <= 0 {
		t.Fatal("energy must be tracked")
	}
	if rep.AttnEnergy.BackgroundShare() <= 0 {
		t.Fatal("baseline background share must be positive")
	}
	full := runOrFatal(t, centConfig(m, PIMphony()), qmsumBatch(32))
	if full.AttnEnergy.BackgroundShare() >= rep.AttnEnergy.BackgroundShare() {
		t.Errorf("background share should collapse: %.2f -> %.2f",
			rep.AttnEnergy.BackgroundShare(), full.AttnEnergy.BackgroundShare())
	}
}

func TestConfigValidation(t *testing.T) {
	m := model.LLM7B32K()
	good := centConfig(m, Baseline())
	bad1 := good
	bad1.TP = 3 // 3*1 != 8
	if _, err := New(bad1); err == nil {
		t.Error("TP*PP != Modules should fail")
	}
	bad2 := good
	bad2.TP, bad2.PP, bad2.Modules = 48, 1, 48 // 48 neither divides nor is divided by 32 KV heads
	if _, err := New(bad2); err == nil {
		t.Error("non-dividing TP should fail")
	}
	good2 := good
	good2.TP, good2.PP, good2.Modules = 64, 1, 64 // token-sharded TP beyond KV heads
	if _, err := New(good2); err != nil {
		t.Errorf("TP beyond KV heads with even sharding should be legal: %v", err)
	}
	bad3 := good
	bad3.PP, bad3.TP = 3, 1
	bad3.Modules = 3 // 32 layers % 3 != 0
	if _, err := New(bad3); err == nil {
		t.Error("PP not dividing layers should fail")
	}
	bad4 := Config{Name: "gpu", Backend: GPUSystem, Model: m, GPUs: 0}
	if _, err := New(bad4); err == nil {
		t.Error("GPU system without GPUs should fail")
	}
}

func TestWeightsMustFit(t *testing.T) {
	m := model.LLM72B32K() // ~140 GiB weights
	cfg := centConfig(m, Baseline())
	cfg.TP = 8 // 8 modules x 16 GiB = 128 GiB < weights
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(qmsumBatch(8)); err == nil {
		t.Fatal("72B on 128 GiB should fail")
	}
}

func TestAttnShareGrowsWithContext(t *testing.T) {
	m := model.LLM7B128KGQA()
	cfg := centConfig(m, PIMphony())
	short := runOrFatal(t, cfg, workload.Uniform(4096, 1).Batch(16))
	long := runOrFatal(t, cfg, workload.Uniform(100000, 1).Batch(16))
	if long.AttnTimeShare <= short.AttnTimeShare {
		t.Errorf("attention share should grow with context: %.2f -> %.2f",
			short.AttnTimeShare, long.AttnTimeShare)
	}
}

func TestBackendNames(t *testing.T) {
	if PIMOnly != "pim-only" || XPUPIM != "xpu+pim" || GPUSystem != "gpu" || DIMMPIM != "dimm-pim" {
		t.Fatal("backend names changed")
	}
	// Every re-exported name must resolve through the registry, and the
	// empty name must default to the PIM-only backend.
	for _, name := range []string{PIMOnly, XPUPIM, GPUSystem, DIMMPIM, ""} {
		if _, err := backend.Lookup(name); err != nil {
			t.Errorf("Lookup(%q): %v", name, err)
		}
	}
}

// TestDIMMPIMAllKVPool: the DIMM-PIM backend hosts weights on its GPU,
// so the whole DIMM capacity serves KV — unlike the memory-matched
// AiM systems, whose pool shrinks by the resident weights.
func TestDIMMPIMAllKVPool(t *testing.T) {
	m := model.LLM7B32K()
	dev := timing.DDR5DIMM()
	cfg := Config{
		Name: "dimm-7b", Backend: DIMMPIM, Dev: dev,
		Modules: 8, TP: 8, PP: 1, Model: m, Tech: PIMphony(), DecodeWindow: 4,
	}
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e, err := sys.NewEngine()
	if err != nil {
		t.Fatal(err)
	}
	if got, want := e.KVPoolBytes(), int64(8)*dev.ModuleBytes(); got != want {
		t.Fatalf("dimm pool %d, want the full capacity %d (weights hosted)", got, want)
	}
	rep, err := sys.Run(qmsumBatch(16))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Throughput <= 0 || rep.PIMUtil <= 0 || rep.Backend != DIMMPIM {
		t.Fatalf("dimm report %+v", rep)
	}
	// The host GPU FC keeps attention dominant; the all-KV pool admits
	// every candidate at these sizes.
	if rep.Batch != 16 {
		t.Errorf("dimm pool should admit all 16, got %d", rep.Batch)
	}
}
