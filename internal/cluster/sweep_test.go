package cluster

import (
	"context"
	"strings"
	"testing"

	"pimphony/internal/model"
	"pimphony/internal/sweep"
	"pimphony/internal/workload"
)

// TestSweepOrderAndContent runs a technique grid through Sweep and checks
// the reports come back in input order with the same numbers a
// sequential loop produces.
func TestSweepOrderAndContent(t *testing.T) {
	m := model.LLM7B32K()
	reqs := qmsumBatch(32)
	cfgs := []Config{
		centConfig(m, Baseline()),
		centConfig(m, Technique{TCP: true}),
		centConfig(m, PIMphony()),
		neuPIMsConfig(m, PIMphony()),
	}
	got, err := Sweep(context.Background(), cfgs, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(cfgs) {
		t.Fatalf("got %d reports for %d configs", len(got), len(cfgs))
	}
	for i, cfg := range cfgs {
		want := runOrFatal(t, cfg, reqs)
		if got[i].Throughput != want.Throughput || got[i].Batch != want.Batch {
			t.Errorf("config %d (%s): swept report (%.3f tok/s, batch %d) != sequential (%.3f, %d)",
				i, cfg.Name, got[i].Throughput, got[i].Batch, want.Throughput, want.Batch)
		}
	}
	// Parallelism=1 must agree as well.
	seq, err := Sweep(context.Background(), cfgs, reqs, sweep.Parallelism(1))
	if err != nil {
		t.Fatal(err)
	}
	for i := range seq {
		if seq[i].Throughput != got[i].Throughput {
			t.Errorf("config %d: parallelism=1 throughput %.6f != default %.6f",
				i, seq[i].Throughput, got[i].Throughput)
		}
	}
}

// TestSweepPropagatesConfigError checks a broken grid point surfaces its
// own validation error.
func TestSweepPropagatesConfigError(t *testing.T) {
	m := model.LLM7B32K()
	bad := centConfig(m, Baseline())
	bad.TP = 3 // 3*1 != 8 modules
	_, err := Sweep(context.Background(), []Config{centConfig(m, Baseline()), bad}, qmsumBatch(8))
	if err == nil {
		t.Fatal("invalid config in the grid should fail the sweep")
	}
	if !strings.Contains(err.Error(), "TP(3)") {
		t.Errorf("error should come from the bad config's validation: %v", err)
	}
}

// TestRunCtxCancellation checks a cancelled context aborts the decode
// loop instead of simulating the whole window.
func TestRunCtxCancellation(t *testing.T) {
	m := model.LLM7B32K()
	cfg := centConfig(m, PIMphony())
	cfg.DecodeWindow = 64
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sys.RunCtx(ctx, qmsumBatch(16)); err == nil {
		t.Fatal("cancelled context should abort the run")
	}
}

// TestPPParallelStagesMatchSequential pins the parallelized PP
// micro-batch path against an explicit sequential reduction: the same
// config swept at parallelism 1 and 8 must agree bit-for-bit.
func TestPPParallelStagesMatchSequential(t *testing.T) {
	m := model.LLM7B32K()
	cfg := centConfig(m, Baseline())
	cfg.TP, cfg.PP = 1, 8
	reqs := workload.NewGenerator(workload.QMSum(), 5).Batch(6)
	run := func(par int) *Report {
		prev := sweep.SetDefault(par)
		defer sweep.SetDefault(prev)
		sys, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := sys.Run(reqs)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	seq, par := run(1), run(8)
	if seq.Throughput != par.Throughput {
		t.Errorf("PP throughput diverges: seq %.9f vs par %.9f", seq.Throughput, par.Throughput)
	}
	if seq.TotalSeconds != par.TotalSeconds {
		t.Errorf("PP total time diverges: seq %.9f vs par %.9f", seq.TotalSeconds, par.TotalSeconds)
	}
	if seq.AttnEnergy != par.AttnEnergy {
		t.Errorf("PP attention energy diverges: %+v vs %+v", seq.AttnEnergy, par.AttnEnergy)
	}
	if seq.PIMUtil != par.PIMUtil {
		t.Errorf("PP utilization diverges: %.9f vs %.9f", seq.PIMUtil, par.PIMUtil)
	}
}
