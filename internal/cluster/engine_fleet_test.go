package cluster

import (
	"context"
	"math"
	"reflect"
	"testing"

	"pimphony/internal/workload"
)

// fleetReqs is a mixed-length request set that exercises completions,
// bucket crossings and DPA chunk growth inside leaps.
func fleetReqs() []workload.Request {
	gen := workload.NewGenerator(workload.QMSum(), 7)
	reqs := gen.Batch(10)
	for i := range reqs {
		reqs[i].Decode = 5 + 7*(i%3)
	}
	return reqs
}

// TestLeapHorizonMatchesStepEventStream pins the SetHorizon clamp: a
// clamped leap drain must produce the identical flattened iteration
// trace as the naive one-step loop, at every clamp width, while never
// aggregating more iterations than the clamp allows.
func TestLeapHorizonMatchesStepEventStream(t *testing.T) {
	cfg := engineConfig(t, PIMphony())
	ref := drainTrace(t, engineFor(t, cfg, fleetReqs()), false)
	for _, h := range []int{1, 2, 3, 8} {
		e := engineFor(t, cfg, fleetReqs())
		e.SetHorizon(h)
		var got []stepTrace
		for i := 0; !e.Idle(); i++ {
			if i > 1_000_000 {
				t.Fatal("engine did not drain")
			}
			res, err := e.Leap(context.Background(), 0, math.Inf(1))
			if err != nil {
				t.Fatal(err)
			}
			if res.Iterations > h {
				t.Fatalf("horizon %d: leap aggregated %d iterations", h, res.Iterations)
			}
			if res.Iterations <= 1 {
				got = append(got, stepTrace{Seconds: res.Seconds, Batch: res.Batch,
					Admitted: ids(res.Admitted), Generated: append([]int(nil), res.Generated...),
					Preempted: ids(res.Preempted), Completed: ids(res.Completed)})
				continue
			}
			for it, sec := range res.IterSeconds {
				st := stepTrace{Seconds: sec, Batch: res.Batch,
					Generated: append([]int(nil), res.Generated...)}
				if it == res.Iterations-1 {
					st.Completed = ids(res.Completed)
				}
				got = append(got, st)
			}
		}
		if !reflect.DeepEqual(got, ref) {
			t.Errorf("horizon %d: clamped leap trace diverges from single stepping (%d vs %d iterations)",
				h, len(got), len(ref))
		}
	}
}

// TestEngineEnergyLeapEquivalence: per-iteration energy accrual must be
// identical between the single-step and fast-forward paths (the leap
// prices each aggregated iteration with the same cost the naive loop
// sees), and non-zero for a PIM backend.
func TestEngineEnergyLeapEquivalence(t *testing.T) {
	cfg := engineConfig(t, PIMphony())
	step := engineFor(t, cfg, fleetReqs())
	drain(t, step)
	leap := engineFor(t, cfg, fleetReqs())
	for i := 0; !leap.Idle(); i++ {
		if i > 1_000_000 {
			t.Fatal("engine did not drain")
		}
		if _, err := leap.Leap(context.Background(), 0, math.Inf(1)); err != nil {
			t.Fatal(err)
		}
	}
	sa, sf := step.Energy()
	la, lf := leap.Energy()
	if sa != la || sf != lf {
		t.Errorf("leap energy (%v, %v) != step energy (%v, %v)", la, lf, sa, sf)
	}
	if sa.Total() <= 0 || sf.Total() <= 0 {
		t.Errorf("PIM backend accrued no energy: attn %v fc %v", sa, sf)
	}
}

// TestEngineWithdrawResume walks the full migration handshake: preempt
// under DPA exhaustion, withdraw the victim with its progress, resume
// it on a second replica, and check that the destination charges no
// recompute and generates exactly the remaining tokens.
func TestEngineWithdrawResume(t *testing.T) {
	cfg := engineConfig(t, PIMphony())
	cfg.KVBudgetBytes = 4100 << 20 // two 4096-token prompts, 4 chunks of slack
	src := engineFor(t, cfg, []workload.Request{
		{ID: 1, Context: 4096, Decode: 8},
		{ID: 2, Context: 4096, Decode: 8},
	})
	var victim workload.Request
	for i := 0; ; i++ {
		if i > 10_000 {
			t.Fatal("no preemption under the exhaustion scenario")
		}
		res, err := src.Step(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Preempted) > 0 {
			victim = res.Preempted[0]
			break
		}
	}
	if _, _, err := src.Withdraw(victim.ID + 100); err == nil {
		t.Error("withdrawing an unknown request should fail")
	}
	if _, _, err := src.Withdraw(1); err == nil {
		t.Error("withdrawing the active request should fail")
	}
	r, gen, err := src.Withdraw(victim.ID)
	if err != nil {
		t.Fatal(err)
	}
	if r.ID != victim.ID || gen <= 0 || gen >= r.Decode {
		t.Fatalf("withdrew %d with progress %d, want %d with progress in (0, %d)", r.ID, gen, victim.ID, r.Decode)
	}
	if src.Pending() != 0 {
		t.Errorf("source still has %d pending after withdrawal", src.Pending())
	}

	dstCfg := engineConfig(t, PIMphony())
	dst := engineFor(t, dstCfg, nil)
	if err := dst.EnqueueResumed(r, gen); err != nil {
		t.Fatal(err)
	}
	if got := dst.OutstandingTokens(); got != r.Decode-gen {
		t.Errorf("destination owes %d tokens, want the remaining %d", got, r.Decode-gen)
	}
	done := drain(t, dst)
	if len(done) != 1 || done[0].ID != r.ID {
		t.Fatalf("destination completed %v, want [%d]", ids(done), r.ID)
	}
	if dst.Generated() != r.Decode-gen {
		t.Errorf("destination generated %d tokens, want %d", dst.Generated(), r.Decode-gen)
	}
	if dst.RecomputeSeconds() != 0 {
		t.Errorf("resumed admission charged %g s of recompute; migration moves KV, it does not rebuild it",
			dst.RecomputeSeconds())
	}
	// The source finishes its survivor normally.
	if done := drain(t, src); len(done) != 1 || done[0].ID != 1 {
		t.Errorf("source completed %v, want [1]", ids(done))
	}
}

func TestEngineEnqueueResumedValidation(t *testing.T) {
	e := engineFor(t, engineConfig(t, PIMphony()), nil)
	r := workload.Request{ID: 9, Context: 4096, Decode: 8}
	if err := e.EnqueueResumed(r, -1); err == nil {
		t.Error("negative progress accepted")
	}
	if err := e.EnqueueResumed(r, 8); err == nil {
		t.Error("progress == Decode accepted (nothing left to generate)")
	}
	if err := e.EnqueueResumed(r, 3); err != nil {
		t.Fatal(err)
	}
	if err := e.EnqueueResumed(r, 3); err == nil {
		t.Error("duplicate resumed enqueue accepted")
	}
}

// TestEngineStealNewest: stealing pops the newest zero-progress pending
// request and leaves preempted (progressed) requests alone.
func TestEngineStealNewest(t *testing.T) {
	e := engineFor(t, engineConfig(t, PIMphony()), []workload.Request{
		{ID: 1, Context: 1024, Decode: 4},
		{ID: 2, Context: 1024, Decode: 4},
		{ID: 3, Context: 1024, Decode: 4},
	})
	r, ok := e.StealNewest()
	if !ok || r.ID != 3 {
		t.Fatalf("stole %v, want request 3 (the newest)", r.ID)
	}
	if e.Pending() != 2 {
		t.Errorf("pending %d after steal, want 2", e.Pending())
	}
	// The stolen request is fully forgotten: another engine — or even
	// this one — can enqueue it again.
	if err := e.Enqueue(r); err != nil {
		t.Fatalf("re-enqueue after steal: %v", err)
	}
	done := drain(t, e)
	if len(done) != 3 {
		t.Errorf("completed %d of 3", len(done))
	}
	if _, ok := e.StealNewest(); ok {
		t.Error("stole from an empty queue")
	}
}
