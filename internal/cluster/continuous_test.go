package cluster

import (
	"testing"

	"pimphony/internal/model"
	"pimphony/internal/workload"
)

// shortDecode builds a request stream whose generation lengths complete
// within the decode window, so continuous batching has completions to act
// on.
func shortDecode(n, context, decode int) []workload.Request {
	reqs := workload.Uniform(context, 3).Batch(n)
	for i := range reqs {
		reqs[i].Decode = decode
	}
	return reqs
}

func TestContinuousBatchingRefills(t *testing.T) {
	m := model.LLM7B32K()
	cfg := centConfig(m, PIMphony())
	cfg.DecodeWindow = 12
	cfg.MaxBatch = 4
	cfg.ContinuousBatching = true
	reqs := shortDecode(16, 8000, 3) // finish every 3 steps

	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sys.Run(reqs)
	if err != nil {
		t.Fatal(err)
	}
	// 4 slots x 12 steps / 3 steps per request = up to 16 completions;
	// far more than the 4 a static batch would serve.
	if got := rep.Throughput; got <= 0 {
		t.Fatalf("bad throughput %f", got)
	}
	staticCfg := cfg
	staticCfg.ContinuousBatching = false
	sys2, err := New(staticCfg)
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := sys2.Run(reqs)
	if err != nil {
		t.Fatal(err)
	}
	// Same batch cap, same per-step cost: throughput should be close, but
	// continuous batching must have served more distinct requests (its
	// peak batch stays at the cap after refills).
	if rep.Batch < rep2.Batch {
		t.Errorf("continuous batching peak batch %d below static %d", rep.Batch, rep2.Batch)
	}
	if rep.Steps != 12 {
		t.Errorf("window should stay filled by refills, ran %d steps", rep.Steps)
	}
}

func TestContinuousBatchingDrainsWhenPoolEmpty(t *testing.T) {
	m := model.LLM7B32K()
	cfg := centConfig(m, PIMphony())
	cfg.DecodeWindow = 20
	cfg.ContinuousBatching = true
	reqs := shortDecode(3, 8000, 2) // only 3 requests, each 2 steps

	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sys.Run(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Steps >= 20 {
		t.Errorf("window should end early once all requests complete, ran %d steps", rep.Steps)
	}
	// 3 requests x 2 tokens = 6 generated tokens.
	wantTokens := 6.0
	if got := rep.Throughput * rep.TotalSeconds; got < wantTokens-0.5 || got > wantTokens+0.5 {
		t.Errorf("generated %.1f tokens, want %.0f", got, wantTokens)
	}
}

func TestContinuousBatchingFreesChannelBudget(t *testing.T) {
	// Under head-first placement the channel budget must be returned on
	// release, or refills would starve.
	m := model.LLM7B128KGQA()
	cfg := centConfig(m, Technique{DPA: true}) // HFP placement + DPA alloc
	cfg.DecodeWindow = 16
	cfg.ContinuousBatching = true
	cfg.TMaxOverride = 40000
	cfg.MaxBatch = 6
	reqs := shortDecode(24, 30000, 2)

	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sys.Run(reqs)
	if err != nil {
		t.Fatal(err)
	}
	served := int(rep.Throughput*rep.TotalSeconds) / 2 // 2 tokens each
	if served <= rep.Batch {
		t.Errorf("refills should serve more requests (%d) than one batch (%d)", served, rep.Batch)
	}
}

func TestPrefillSeconds(t *testing.T) {
	m := model.LLM7B32K()
	cent, err := New(centConfig(m, PIMphony()))
	if err != nil {
		t.Fatal(err)
	}
	neu, err := New(neuPIMsConfig(m, PIMphony()))
	if err != nil {
		t.Fatal(err)
	}
	gpuCfg := Config{Name: "gpu", Backend: GPUSystem, Model: m, GPUs: 2, DecodeWindow: 2}
	gpu, err := New(gpuCfg)
	if err != nil {
		t.Fatal(err)
	}
	const ctx = 32768
	pc, pn, pg := cent.PrefillSeconds(ctx), neu.PrefillSeconds(ctx), gpu.PrefillSeconds(ctx)
	// Prefill is compute bound: the 3-TFLOPS PNM must be far slower than
	// the 256-TFLOPS NPU and the GPU (the Hybe motivation).
	if !(pc > pn && pc > pg) {
		t.Errorf("PIM-only prefill (%.3fs) should be slowest (npu %.3fs, gpu %.3fs)", pc, pn, pg)
	}
	// Quadratic attention term: 4x context should cost more than 4x time.
	if r := cent.PrefillSeconds(4*ctx) / pc; r < 4 {
		t.Errorf("prefill should grow superlinearly with context, got %.1fx for 4x", r)
	}
	if pc <= 0 || pn <= 0 || pg <= 0 {
		t.Error("prefill times must be positive")
	}
}
