// Package cluster composes the channel-level performance model into the
// multi-node decode simulator the paper's end-to-end evaluation needs.
// The system organisations themselves — PIM-only nodes in the style of
// CENT, heterogeneous xPU+PIM nodes in the style of NeuPIMs, the A100
// GPU baseline of Fig. 20, and an L3/LoL-PIM-style DIMM-PIM system —
// live behind the internal/backend seam: this package owns the
// backend-agnostic step loop (admission against a KV allocator,
// iteration pricing, growth, retirement, energy accrual) and asks the
// configured backend to price each phase. Adding a system organisation
// is a backend.Register call, not a fork of the loops here.
//
// Parallelism follows Sec. II-C: tensor parallelism (TP) shards KV heads
// and FC weights across modules with a per-layer all-reduce, and pipeline
// parallelism (PP) assigns contiguous layer ranges to module groups with
// request-granular micro-batches (pipeline bubbles appear whenever the
// batch cannot fill the stages — the CENT long-context collapse of
// Fig. 17).
package cluster

import (
	"context"
	"fmt"
	"sync/atomic"

	"pimphony/internal/backend"
	"pimphony/internal/energy"
	"pimphony/internal/hub"
	"pimphony/internal/memory"
	"pimphony/internal/model"
	"pimphony/internal/perfmodel"
	"pimphony/internal/sweep"
	"pimphony/internal/timing"
	"pimphony/internal/workload"
)

// simTokens tallies every decode token priced by a step loop in this
// process (batch simulator and serving engine alike). The benchgate
// derives its sim_rate metric — simulated tokens per wall-second — from
// deltas of this counter around a timed experiment.
var simTokens atomic.Int64

// SimulatedTokens reports the process-wide count of decode tokens
// simulated since start.
func SimulatedTokens() int64 { return simTokens.Load() }

// Re-exported backend names: the values Config.Backend accepts. The
// full set (including backends registered later) is backend.Names().
const (
	// PIMOnly is a CENT-style system: FC on per-module PNM, attention on PIM.
	PIMOnly = backend.PIMOnly
	// XPUPIM is a NeuPIMs-style system: FC on an NPU, attention on PIM.
	XPUPIM = backend.XPUPIM
	// GPUSystem is the A100 flash-decoding + paged-attention baseline.
	GPUSystem = backend.GPU
	// DIMMPIM is an L3/LoL-PIM-style system: host-GPU FC, DIMM-PIM attention.
	DIMMPIM = backend.DIMMPIM
)

// Technique toggles PIMphony's three co-designed techniques.
type Technique = backend.Technique

// Baseline is the all-off configuration.
func Baseline() Technique { return backend.Baseline() }

// PIMphony is the all-on configuration.
func PIMphony() Technique { return backend.PIMphony() }

// Config describes one simulated system.
type Config struct {
	Name string
	// Backend selects the system organisation by registry name
	// (backend.Names()); empty means PIMOnly.
	Backend string
	Dev     timing.Device
	Modules int
	TP, PP  int
	Model   model.Config
	Tech    Technique
	// RowReuse applies the row-reuse KV mapping (Sec. V-C); the paper
	// enables it for GQA models on both baselines and PIMphony.
	RowReuse bool
	// TMaxOverride replaces the model's context window as the static
	// reservation size (used by the Fig. 17 long-context sweep).
	TMaxOverride int
	// DecodeWindow is the number of decode steps to simulate.
	DecodeWindow int
	// GPUs is the device count for GPUSystem configurations.
	GPUs int
	// MaxBatch optionally caps admission (0 = capacity-bound only).
	MaxBatch int
	// KVBudgetBytes optionally caps the KV-cache pool below the physical
	// capacity left after weights (0 = whole pool). The capacity studies
	// use it to compare allocation schemes at an equal memory budget.
	KVBudgetBytes int64
	// ContinuousBatching enables Orca-style iteration-level scheduling:
	// requests that finish their generation length release their KV
	// memory and the next pending request is admitted mid-window.
	ContinuousBatching bool
}

// env builds the backend pricing environment for this configuration.
// The services (perfmodel, hub, energy) are attached by New; a bare env
// suffices for validation.
func (c *Config) env() *backend.Env {
	return &backend.Env{
		Name:     c.Name,
		Dev:      c.Dev,
		Modules:  c.Modules,
		TP:       c.TP,
		PP:       c.PP,
		GPUs:     c.GPUs,
		Model:    c.Model,
		Tech:     c.Tech,
		RowReuse: c.RowReuse,
	}
}

// validate resolves the backend and checks the configuration; Validate
// and New share it, so the backend a config validates against is the
// one New prices with.
func (c *Config) validate() (backend.Backend, *backend.Env, error) {
	if err := c.Model.Validate(); err != nil {
		return nil, nil, err
	}
	if c.KVBudgetBytes < 0 {
		return nil, nil, fmt.Errorf("cluster %s: KVBudgetBytes must be non-negative", c.Name)
	}
	be, err := backend.Lookup(c.Backend)
	if err != nil {
		return nil, nil, err
	}
	env := c.env()
	if err := be.Validate(env); err != nil {
		return nil, nil, err
	}
	return be, env, nil
}

// Validate reports configuration errors.
func (c *Config) Validate() error {
	_, _, err := c.validate()
	return err
}

// Report is the outcome of one simulation.
type Report struct {
	Config string
	// Backend is the system organisation's registry name.
	Backend      string
	Batch        int
	Steps        int
	TotalSeconds float64
	// Throughput is decode tokens per second (the paper's metric).
	Throughput float64
	// PIMUtil is aggregate MAC-pipeline utilization over the attention
	// phase across all channels (the Fig. 4 metric). Zero for GPU systems.
	PIMUtil float64
	// AttnTimeShare is the attention fraction of iteration time.
	AttnTimeShare float64
	// CapacityUtil is the KV allocator's live/reserved ratio at admission.
	CapacityUtil float64
	// TBTSeconds is the mean time-between-tokens a request observes (the
	// serving-latency counterpart of throughput: one decode iteration).
	TBTSeconds float64
	// Energy breakdowns (attention on PIM; FC on PNM/NPU/GPU). Zero for
	// backends outside the PIM module energy model.
	AttnEnergy energy.Breakdown
	FCEnergy   energy.Breakdown
}

// System is a reusable simulator instance (kernel latencies are memoized
// across runs on the same device). A System is not safe for concurrent
// use: the step loops and the backend's incremental stepper share
// per-System scratch state. Sweeps build one System per point.
type System struct {
	cfg Config
	be  backend.Backend
	env *backend.Env
	adm backend.Admission
	// stepper is the backend's memoizing iteration pricer (nil for
	// backends without one); iterate routes every decode iteration
	// through it so both the batch simulator and the serving engine
	// price steps incrementally. sliceStepper is its batch-order
	// token-slice fast path, when the stepper offers one.
	stepper      backend.Stepper
	sliceStepper backend.SliceStepper
}

// New builds a simulator for a configuration.
func New(cfg Config) (*System, error) {
	if cfg.DecodeWindow <= 0 {
		cfg.DecodeWindow = 16
	}
	be, env, err := cfg.validate()
	if err != nil {
		return nil, err
	}
	// The latency service is shared per device across all Systems in the
	// process: kernel pricing is pure in (device, query), so grid sweeps
	// and serving replicas reuse each other's cold simulations instead
	// of re-running them per instance.
	env.Perf = perfmodel.Shared(cfg.Dev)
	env.Hub = hub.New(cfg.Dev)
	env.EMod = energy.Default()
	s := &System{cfg: cfg, be: be, env: env, adm: be.Admission(env)}
	if inc, ok := be.(backend.Incremental); ok {
		s.stepper = inc.NewStepper(env)
		if ss, ok := s.stepper.(backend.SliceStepper); ok {
			s.sliceStepper = ss
		}
	}
	return s, nil
}

// Config returns the system configuration.
func (s *System) Config() Config { return s.cfg }

// Backend returns the system's backend.
func (s *System) Backend() backend.Backend { return s.be }

// FixedAllocator reports whether the backend supplies its own KV
// allocator (the GPU's paged pool), making the static-vs-DPA technique
// toggle inapplicable to this system.
func (s *System) FixedAllocator() bool { return s.adm.NewAllocator != nil }

// tmax is the static reservation length.
func (s *System) tmax() int {
	if s.cfg.TMaxOverride > 0 {
		return s.cfg.TMaxOverride
	}
	return s.cfg.Model.ContextWindow
}

// kvPoolBytes is the system-wide memory available for KV cache: the
// backend's device capacity minus resident weights (unless the backend
// hosts them elsewhere), capped by the configured budget and derated to
// the backend's usable fraction.
func (s *System) kvPoolBytes() (int64, error) {
	capacity := s.be.CapacityBytes(s.env)
	pool := capacity
	if !s.adm.WeightsHosted {
		w := s.cfg.Model.WeightBytes()
		if w >= capacity {
			return 0, fmt.Errorf("cluster %s: weights (%d GiB) exceed capacity (%d GiB)",
				s.cfg.Name, w>>30, capacity>>30)
		}
		pool = capacity - w
	}
	if b := s.cfg.KVBudgetBytes; b > 0 && b < pool {
		pool = b
	}
	if sc := s.adm.PoolScale; sc > 0 && sc != 1 {
		pool = int64(float64(pool) * sc)
	}
	return pool, nil
}

// admitter owns the admission state: the KV allocator, the head-first
// per-channel budget and the FCFS pending queue. With continuous batching
// it also refills the batch when requests complete.
type admitter struct {
	sys        *System
	alloc      memory.Allocator
	headBudget int64
	headUsed   int64
	headNeed   map[int]int64 // per admitted request (for release)
	kvHeads    int
	headFirst  bool // charge the per-channel head budget on admission
	skipUnfit  bool // scan past unfit requests instead of stopping
	pending    []workload.Request
	active     []workload.Request
	// horizon is the token count a request must be able to reach without
	// eviction, used for headroom-aware admission. The batch simulator
	// grows every request through the decode window; the serving engine
	// grows each request to its own generation length.
	horizon func(workload.Request) int
	// admitTokens is the KV size (in tokens) a request occupies at the
	// moment of admission. The default is the prompt context (or the
	// full horizon for upfront-reserving backends); the serving engine
	// overrides it so a preempted request re-admits at its full
	// recomputed KV (context + tokens already generated).
	admitTokens func(workload.Request) int
}

// newAdmitter builds the allocator and admission bookkeeping from the
// backend's admission parameters.
func (s *System) newAdmitter(reqs []workload.Request) (*admitter, error) {
	pool, err := s.kvPoolBytes()
	if err != nil {
		return nil, err
	}
	bpt := s.cfg.Model.KVBytesPerToken()
	newAlloc := s.adm.NewAllocator
	if newAlloc == nil {
		newAlloc = func(pool, bpt int64, tmax int) (memory.Allocator, error) {
			if s.cfg.Tech.DPA {
				return memory.NewDPA(pool, bpt, memory.DefaultChunkBytes)
			}
			return memory.NewStatic(pool, bpt, tmax)
		}
	}
	alloc, err := newAlloc(pool, bpt, s.tmax())
	if err != nil {
		return nil, err
	}
	ad := &admitter{sys: s, alloc: alloc, headNeed: make(map[int]int64), pending: reqs,
		skipUnfit: s.adm.SkipUnfit}
	ad.admitTokens = func(r workload.Request) int { return r.Context }
	if s.adm.ReserveHorizon {
		ad.admitTokens = func(r workload.Request) int { return ad.horizon(r) }
	}
	ad.horizon = func(r workload.Request) int {
		need := r.Context + s.cfg.DecodeWindow
		if !s.adm.UnclampedHorizon && need > s.tmax() {
			need = s.tmax()
		}
		return need
	}
	ad.kvHeads = s.adm.KVHeadsPerModule
	if s.adm.HeadBudget > 0 {
		ad.headFirst = true
		ad.headBudget = s.adm.HeadBudget
	}
	return ad, nil
}

// admitFits is the admission predicate shared by fill and wouldAdmit
// (keeping the two in lockstep is what keeps Leap equivalent to Step):
// whether a pending request can be admitted right now — headroom to
// grow to its horizon without eviction, and under head-first placement
// the per-channel head budget — plus the head-budget charge admission
// would record.
func (a *admitter) admitFits(r workload.Request) (bool, int64) {
	s := a.sys
	need := a.horizon(r)
	if !a.alloc.CanAdmit(need) {
		return false, 0
	}
	var headNeed int64
	if a.headFirst {
		// Static allocation also reserves T_max per channel tile.
		reserve := int64(s.tmax())
		if s.cfg.Tech.DPA {
			reserve = int64(need)
		}
		headNeed = reserve * int64(a.kvHeads)
		if a.headUsed+headNeed > a.headBudget {
			return false, 0
		}
	}
	return true, headNeed
}

// fill admits pending requests FCFS until the head of the queue no longer
// fits (strict in-order admission, as a serving queue would). Backends
// with SkipUnfit admission (the GPU's greedy paged pool) scan past
// requests that do not fit; the skipped requests keep their queue order.
func (a *admitter) fill() {
	s := a.sys
	var skipped []workload.Request
	for len(a.pending) > 0 {
		r := a.pending[0]
		if s.cfg.MaxBatch > 0 && len(a.active) >= s.cfg.MaxBatch {
			break
		}
		fits, headNeed := a.admitFits(r)
		if !fits {
			if a.skipUnfit {
				skipped = append(skipped, r)
				a.pending = a.pending[1:]
				continue
			}
			break
		}
		if err := a.alloc.Admit(r.ID, a.admitTokens(r)); err != nil {
			break
		}
		a.headUsed += headNeed
		a.headNeed[r.ID] = headNeed
		a.active = append(a.active, r)
		a.pending = a.pending[1:]
	}
	if len(skipped) > 0 {
		a.pending = append(skipped, a.pending...)
	}
}

// wouldAdmit reports whether fill would admit at least one pending
// request right now, without admitting it — the serving engine's leap
// gate: a possible admission forces the one-step path. It shares fill's
// admitFits predicate, so the two cannot drift apart (a false negative
// here would break fast-forward equivalence); a request that passes the
// predicate but fails the allocator's Admit merely costs a harmless
// single step.
func (a *admitter) wouldAdmit() bool {
	if len(a.pending) == 0 {
		return false
	}
	if s := a.sys; s.cfg.MaxBatch > 0 && len(a.active) >= s.cfg.MaxBatch {
		return false
	}
	if a.skipUnfit {
		for _, r := range a.pending {
			if fits, _ := a.admitFits(r); fits {
				return true
			}
		}
		return false
	}
	fits, _ := a.admitFits(a.pending[0])
	return fits
}

// isActive reports whether a request is currently admitted (headNeed
// keeps one entry per admitted request, including zero entries under
// TCP, so it doubles as the membership set).
func (a *admitter) isActive(reqID int) bool {
	_, ok := a.headNeed[reqID]
	return ok
}

// requeueFront frees an active request's memory and head budget and
// puts it back at the head of the pending queue — the serving engine's
// preemption path. Unlike release, the request will be re-admitted (and
// its KV recomputed) once capacity frees up.
func (a *admitter) requeueFront(reqID int) error {
	var req workload.Request
	found := false
	for _, r := range a.active {
		if r.ID == reqID {
			req, found = r, true
			break
		}
	}
	if !found {
		return fmt.Errorf("cluster %s: cannot preempt inactive request %d", a.sys.cfg.Name, reqID)
	}
	if err := a.release(reqID); err != nil {
		return err
	}
	a.pending = append([]workload.Request{req}, a.pending...)
	return nil
}

// release frees a completed request's memory and head budget.
func (a *admitter) release(reqID int) error {
	if err := a.alloc.Release(reqID); err != nil {
		return err
	}
	a.headUsed -= a.headNeed[reqID]
	delete(a.headNeed, reqID)
	for i, r := range a.active {
		if r.ID == reqID {
			a.active = append(a.active[:i], a.active[i+1:]...)
			break
		}
	}
	return nil
}

// formBatch admits requests against the configured allocator and returns
// the admitter for growth and (optionally) continuous-batching refills.
func (s *System) formBatch(reqs []workload.Request) (*admitter, error) {
	ad, err := s.newAdmitter(reqs)
	if err != nil {
		return nil, err
	}
	ad.fill()
	if len(ad.active) == 0 {
		return nil, fmt.Errorf("cluster %s: no request fits (pool %d GiB, T_max %d)",
			s.cfg.Name, ad.alloc.CapacityBytes()>>30, s.tmax())
	}
	return ad, nil
}

// iterate prices one decode iteration, through the backend's memoizing
// stepper when it has one (bit-identical to Backend.Step, amortized
// cheap) and through the backend directly otherwise. Every simulated
// decode token is tallied for the SimulatedTokens rate metric.
func (s *System) iterate(ctx context.Context, batch []workload.Request, tokensOf backend.TokensOf) (backend.StepCost, error) {
	simTokens.Add(int64(len(batch)))
	if s.stepper != nil {
		return s.stepper.Step(ctx, batch, tokensOf)
	}
	return s.be.Step(ctx, s.env, batch, tokensOf)
}

// iterateToks is iterate for callers that hold batch-order token counts:
// it routes through the stepper's slice fast path when one exists and
// falls back to the TokensOf seam otherwise.
func (s *System) iterateToks(ctx context.Context, batch []workload.Request, toks []int, tokensOf backend.TokensOf) (backend.StepCost, error) {
	if s.sliceStepper != nil {
		simTokens.Add(int64(len(batch)))
		return s.sliceStepper.StepSlice(ctx, batch, toks)
	}
	return s.iterate(ctx, batch, tokensOf)
}

// Run simulates a decode window over the given candidate requests and
// reports throughput, utilization and energy.
func (s *System) Run(reqs []workload.Request) (*Report, error) {
	return s.RunCtx(context.Background(), reqs)
}

// RunCtx is Run with cancellation: the decode loop aborts between
// iterations once ctx is done, so config-grid sweeps can stop early when
// a sibling point fails.
func (s *System) RunCtx(ctx context.Context, reqs []workload.Request) (*Report, error) {
	ad, err := s.formBatch(reqs)
	if err != nil {
		return nil, err
	}
	batch := ad.active
	alloc := ad.alloc
	capUtil := memory.PoolUtilization(alloc)
	if u := s.adm.ReportedUtil; u > 0 {
		capUtil = u
	}
	grown := make(map[int]int, len(batch)) // extra tokens generated so far
	rep := &Report{Config: s.cfg.Name, Backend: s.be.Name(), Batch: len(batch), Steps: s.cfg.DecodeWindow, CapacityUtil: capUtil}
	var totalSec, attnShareAcc float64
	var busy, span timing.Cycles
	var channels int
	generated := 0
	stepsRun := 0
	for step := 0; step < s.cfg.DecodeWindow; step++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		tokensOf := func(r workload.Request) int { return r.Context + grown[r.ID] }
		cost, err := s.iterate(ctx, batch, tokensOf)
		if err != nil {
			return nil, err
		}
		iterSec := cost.Seconds
		busy += cost.Stats.Busy
		span += cost.Stats.Cycles
		channels = cost.Stats.Channels
		totalSec += iterSec
		attnShareAcc += cost.AttnShare
		generated += len(batch)
		stepsRun++
		// Advance every request by one generated token.
		for _, r := range batch {
			grown[r.ID]++
			target := tokensOf(r) + 1
			if s.adm.ReserveHorizon {
				// The full horizon is already reserved upfront; growth
				// needs no extra headroom and stops at the reservation
				// edge instead of probing past it.
				if h := ad.horizon(r); target > h {
					target = h
				}
			}
			if err := alloc.Grow(r.ID, target); err != nil {
				// Out of headroom: freeze this request's growth (the real
				// system would evict; the window is short enough not to).
				grown[r.ID]--
			}
		}
		// Continuous batching: retire finished requests and refill FCFS.
		// (Collect first: release mutates the active slice batch aliases.)
		if s.cfg.ContinuousBatching {
			var done []int
			for _, r := range batch {
				if r.Decode > 0 && grown[r.ID] >= r.Decode {
					done = append(done, r.ID)
				}
			}
			for _, id := range done {
				if err := ad.release(id); err != nil {
					return nil, err
				}
			}
			ad.fill()
			batch = ad.active
			if len(batch) > rep.Batch {
				rep.Batch = len(batch)
			}
			if len(batch) == 0 {
				break
			}
		}
		// Accrue this iteration's energy on the backend's model.
		ae, fe := s.be.IterEnergy(s.env, cost, len(batch))
		rep.AttnEnergy.Add(ae)
		rep.FCEnergy.Add(fe)
	}
	rep.Steps = stepsRun
	rep.TotalSeconds = totalSec
	rep.Throughput = float64(generated) / totalSec
	if stepsRun > 0 {
		rep.AttnTimeShare = attnShareAcc / float64(stepsRun)
		rep.TBTSeconds = totalSec / float64(stepsRun)
	}
	if span > 0 {
		rep.PIMUtil = float64(busy) / (float64(span) * float64(channels))
	}
	return rep, nil
}

// Sweep builds one System per configuration and runs each against the
// shared (read-only) candidate pool, fanning the independent simulations
// through the sweep engine. Reports come back in input order; the first
// failing configuration cancels the rest.
func Sweep(ctx context.Context, cfgs []Config, reqs []workload.Request, opts ...sweep.Option) ([]*Report, error) {
	return sweep.Run(ctx, cfgs, func(ctx context.Context, cfg Config) (*Report, error) {
		sys, err := New(cfg)
		if err != nil {
			return nil, err
		}
		return sys.RunCtx(ctx, reqs)
	}, opts...)
}

// PrefillSeconds estimates the prompt-processing time of one request at
// the given context length. Prefill is the compute-bound phase (batched
// GEMM over all prompt tokens plus causal attention, quadratic in the
// context), so it runs on the backend's dense engine: the per-module PNM
// for PIM-only systems (their known weakness — the motivation for
// GPU/NPU prefill offload in Hybe and NeuPIMs), the NPU for xPU+PIM, the
// host GPU for DIMM-PIM, and the GPU itself for the baseline.
func (s *System) PrefillSeconds(context int) float64 {
	return s.be.PrefillSeconds(s.env, context)
}

// CostPerHour is the amortised provisioning cost of this system in
// dollars per hour (hardware capital plus hosting, excluding modeled
// device energy) — the backend's order-of-magnitude rate for the
// configured module/device counts. Serving reports multiply it by the
// seconds a replica was provisioned to price goodput per dollar.
func (s *System) CostPerHour() float64 {
	return s.be.CostPerHour(s.env)
}
