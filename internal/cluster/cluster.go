// Package cluster composes the channel-level performance model into the
// multi-node decode simulator the paper's end-to-end evaluation needs. It
// models PIM-only nodes in the style of CENT (near-memory PNM units execute
// the FC projections, PIM channels execute attention), heterogeneous
// xPU+PIM nodes in the style of NeuPIMs (an NPU executes batched GEMM,
// overlapped with PIM attention), and the A100 GPU baseline of Fig. 20.
//
// Parallelism follows Sec. II-C: tensor parallelism (TP) shards KV heads
// and FC weights across modules with a per-layer all-reduce, and pipeline
// parallelism (PP) assigns contiguous layer ranges to module groups with
// request-granular micro-batches (pipeline bubbles appear whenever the
// batch cannot fill the stages — the CENT long-context collapse of
// Fig. 17).
package cluster

import (
	"context"
	"fmt"

	"pimphony/internal/energy"
	"pimphony/internal/hub"
	"pimphony/internal/mapping"
	"pimphony/internal/memory"
	"pimphony/internal/model"
	"pimphony/internal/perfmodel"
	"pimphony/internal/sweep"
	"pimphony/internal/timing"
	"pimphony/internal/workload"
	"pimphony/internal/xpu"
)

// Kind selects the system organisation.
type Kind uint8

const (
	// PIMOnly is a CENT-style system: FC on per-module PNM, attention on PIM.
	PIMOnly Kind = iota
	// XPUPIM is a NeuPIMs-style system: FC on an NPU, attention on PIM.
	XPUPIM
	// GPUSystem is the A100 flash-decoding + paged-attention baseline.
	GPUSystem
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case PIMOnly:
		return "pim-only"
	case XPUPIM:
		return "xpu+pim"
	case GPUSystem:
		return "gpu"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Technique toggles PIMphony's three co-designed techniques.
type Technique struct {
	TCP bool // token-centric partitioning (vs head-first)
	DCS bool // dynamic command scheduling + I/O-aware buffering (vs static)
	DPA bool // dynamic PIM access / lazy KV allocation (vs T_max reservation)
}

// Baseline is the all-off configuration.
func Baseline() Technique { return Technique{} }

// PIMphony is the all-on configuration.
func PIMphony() Technique { return Technique{TCP: true, DCS: true, DPA: true} }

// Config describes one simulated system.
type Config struct {
	Name    string
	Kind    Kind
	Dev     timing.Device
	Modules int
	TP, PP  int
	Model   model.Config
	Tech    Technique
	// RowReuse applies the row-reuse KV mapping (Sec. V-C); the paper
	// enables it for GQA models on both baselines and PIMphony.
	RowReuse bool
	// TMaxOverride replaces the model's context window as the static
	// reservation size (used by the Fig. 17 long-context sweep).
	TMaxOverride int
	// DecodeWindow is the number of decode steps to simulate.
	DecodeWindow int
	// GPUs is the device count for GPUSystem configurations.
	GPUs int
	// MaxBatch optionally caps admission (0 = capacity-bound only).
	MaxBatch int
	// KVBudgetBytes optionally caps the KV-cache pool below the physical
	// capacity left after weights (0 = whole pool). The capacity studies
	// use it to compare allocation schemes at an equal memory budget.
	KVBudgetBytes int64
	// ContinuousBatching enables Orca-style iteration-level scheduling:
	// requests that finish their generation length release their KV
	// memory and the next pending request is admitted mid-window.
	ContinuousBatching bool
}

// Validate reports configuration errors.
func (c *Config) Validate() error {
	if err := c.Model.Validate(); err != nil {
		return err
	}
	if c.KVBudgetBytes < 0 {
		return fmt.Errorf("cluster %s: KVBudgetBytes must be non-negative", c.Name)
	}
	if c.Kind == GPUSystem {
		if c.GPUs <= 0 {
			return fmt.Errorf("cluster %s: GPU system needs GPUs > 0", c.Name)
		}
		return nil
	}
	if err := c.Dev.Validate(); err != nil {
		return err
	}
	switch {
	case c.Modules <= 0:
		return fmt.Errorf("cluster %s: Modules must be positive", c.Name)
	case c.TP <= 0 || c.PP <= 0:
		return fmt.Errorf("cluster %s: TP and PP must be positive", c.Name)
	case c.TP*c.PP != c.Modules:
		return fmt.Errorf("cluster %s: TP(%d) x PP(%d) != Modules(%d)", c.Name, c.TP, c.PP, c.Modules)
	case c.TP > c.Model.KVHeads() && c.TP%c.Model.KVHeads() != 0:
		return fmt.Errorf("cluster %s: TP(%d) beyond KV heads (%d) must shard tokens evenly", c.Name, c.TP, c.Model.KVHeads())
	case c.TP < c.Model.KVHeads() && c.Model.KVHeads()%c.TP != 0:
		return fmt.Errorf("cluster %s: TP(%d) must divide KV heads (%d)", c.Name, c.TP, c.Model.KVHeads())
	case c.Model.Layers%c.PP != 0:
		return fmt.Errorf("cluster %s: PP(%d) must divide layers (%d)", c.Name, c.PP, c.Model.Layers)
	}
	return nil
}

// Report is the outcome of one simulation.
type Report struct {
	Config       string
	Kind         Kind
	Batch        int
	Steps        int
	TotalSeconds float64
	// Throughput is decode tokens per second (the paper's metric).
	Throughput float64
	// PIMUtil is aggregate MAC-pipeline utilization over the attention
	// phase across all channels (the Fig. 4 metric). Zero for GPU systems.
	PIMUtil float64
	// AttnTimeShare is the attention fraction of iteration time.
	AttnTimeShare float64
	// CapacityUtil is the KV allocator's live/reserved ratio at admission.
	CapacityUtil float64
	// TBTSeconds is the mean time-between-tokens a request observes (the
	// serving-latency counterpart of throughput: one decode iteration).
	TBTSeconds float64
	// Energy breakdowns (attention on PIM; FC on PNM/NPU/GPU).
	AttnEnergy energy.Breakdown
	FCEnergy   energy.Breakdown
}

// System is a reusable simulator instance (kernel latencies are memoized
// across runs on the same device).
type System struct {
	cfg  Config
	perf *perfmodel.Service
	hub  *hub.Hub
	emod energy.Model
}

// New builds a simulator for a configuration.
func New(cfg Config) (*System, error) {
	if cfg.DecodeWindow <= 0 {
		cfg.DecodeWindow = 16
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &System{
		cfg:  cfg,
		perf: perfmodel.New(cfg.Dev),
		hub:  hub.New(cfg.Dev),
		emod: energy.Default(),
	}, nil
}

// Config returns the system configuration.
func (s *System) Config() Config { return s.cfg }

// tmax is the static reservation length.
func (s *System) tmax() int {
	if s.cfg.TMaxOverride > 0 {
		return s.cfg.TMaxOverride
	}
	return s.cfg.Model.ContextWindow
}

// kvPoolBytes is the system-wide memory available for KV cache.
func (s *System) kvPoolBytes() (int64, error) {
	var capacity int64
	if s.cfg.Kind == GPUSystem {
		capacity = int64(s.cfg.GPUs) * xpu.A100().MemBytes
	} else {
		capacity = int64(s.cfg.Modules) * s.cfg.Dev.ModuleBytes()
	}
	w := s.cfg.Model.WeightBytes()
	if w >= capacity {
		return 0, fmt.Errorf("cluster %s: weights (%d GiB) exceed capacity (%d GiB)",
			s.cfg.Name, w>>30, capacity>>30)
	}
	pool := capacity - w
	if b := s.cfg.KVBudgetBytes; b > 0 && b < pool {
		pool = b
	}
	return pool, nil
}

// admitter owns the admission state: the KV allocator, the head-first
// per-channel budget and the FCFS pending queue. With continuous batching
// it also refills the batch when requests complete.
type admitter struct {
	sys        *System
	alloc      memory.Allocator
	headBudget int64
	headUsed   int64
	headNeed   map[int]int64 // per admitted request (for release)
	kvHeads    int
	pending    []workload.Request
	active     []workload.Request
	// horizon is the token count a request must be able to reach without
	// eviction, used for headroom-aware admission. The batch simulator
	// grows every request through the decode window; the serving engine
	// grows each request to its own generation length.
	horizon func(workload.Request) int
	// admitTokens is the KV size (in tokens) a request occupies at the
	// moment of admission. The default is the prompt context; the serving
	// engine overrides it so a preempted request re-admits at its full
	// recomputed KV (context + tokens already generated).
	admitTokens func(workload.Request) int
}

// newAdmitter builds the allocator and admission bookkeeping.
func (s *System) newAdmitter(reqs []workload.Request) (*admitter, error) {
	pool, err := s.kvPoolBytes()
	if err != nil {
		return nil, err
	}
	bpt := s.cfg.Model.KVBytesPerToken()
	var alloc memory.Allocator
	if s.cfg.Tech.DPA {
		a, err := memory.NewDPA(pool, bpt, memory.DefaultChunkBytes)
		if err != nil {
			return nil, err
		}
		alloc = a
	} else {
		a, err := memory.NewStatic(pool, bpt, s.tmax())
		if err != nil {
			return nil, err
		}
		alloc = a
	}
	ad := &admitter{sys: s, alloc: alloc, headNeed: make(map[int]int64), pending: reqs}
	ad.admitTokens = func(r workload.Request) int { return r.Context }
	ad.horizon = func(r workload.Request) int {
		need := r.Context + s.cfg.DecodeWindow
		if need > s.tmax() {
			need = s.tmax()
		}
		return need
	}
	// Head-first placement additionally binds each (request, KV head) tile
	// to one channel's capacity; TCP's token slices are spread over all
	// channels and never hit this bound.
	kvHeadsPerModule, tokenShard := s.headGeometry()
	ad.kvHeads = kvHeadsPerModule
	if !s.cfg.Tech.TCP {
		ad.headBudget = int64(s.cfg.Dev.Channels) * int64(s.headCapacityTokens()) * int64(tokenShard)
	}
	return ad, nil
}

// fill admits pending requests FCFS until the head of the queue no longer
// fits (strict in-order admission, as a serving queue would).
func (a *admitter) fill() {
	s := a.sys
	for len(a.pending) > 0 {
		r := a.pending[0]
		if s.cfg.MaxBatch > 0 && len(a.active) >= s.cfg.MaxBatch {
			return
		}
		// Headroom: a request must be able to grow to its horizon
		// without eviction.
		need := a.horizon(r)
		if !a.alloc.CanAdmit(need) {
			return
		}
		var headNeed int64
		if !s.cfg.Tech.TCP {
			// Static allocation also reserves T_max per channel tile.
			reserve := int64(s.tmax())
			if s.cfg.Tech.DPA {
				reserve = int64(need)
			}
			headNeed = reserve * int64(a.kvHeads)
			if a.headUsed+headNeed > a.headBudget {
				return
			}
		}
		if err := a.alloc.Admit(r.ID, a.admitTokens(r)); err != nil {
			return
		}
		a.headUsed += headNeed
		a.headNeed[r.ID] = headNeed
		a.active = append(a.active, r)
		a.pending = a.pending[1:]
	}
}

// isActive reports whether a request is currently admitted (headNeed
// keeps one entry per admitted request, including zero entries under
// TCP, so it doubles as the membership set).
func (a *admitter) isActive(reqID int) bool {
	_, ok := a.headNeed[reqID]
	return ok
}

// requeueFront frees an active request's memory and head budget and
// puts it back at the head of the pending queue — the serving engine's
// preemption path. Unlike release, the request will be re-admitted (and
// its KV recomputed) once capacity frees up.
func (a *admitter) requeueFront(reqID int) error {
	var req workload.Request
	found := false
	for _, r := range a.active {
		if r.ID == reqID {
			req, found = r, true
			break
		}
	}
	if !found {
		return fmt.Errorf("cluster %s: cannot preempt inactive request %d", a.sys.cfg.Name, reqID)
	}
	if err := a.release(reqID); err != nil {
		return err
	}
	a.pending = append([]workload.Request{req}, a.pending...)
	return nil
}

// release frees a completed request's memory and head budget.
func (a *admitter) release(reqID int) error {
	if err := a.alloc.Release(reqID); err != nil {
		return err
	}
	a.headUsed -= a.headNeed[reqID]
	delete(a.headNeed, reqID)
	for i, r := range a.active {
		if r.ID == reqID {
			a.active = append(a.active[:i], a.active[i+1:]...)
			break
		}
	}
	return nil
}

// formBatch admits requests against the configured allocator and returns
// the admitter for growth and (optionally) continuous-batching refills.
func (s *System) formBatch(reqs []workload.Request) (*admitter, error) {
	ad, err := s.newAdmitter(reqs)
	if err != nil {
		return nil, err
	}
	ad.fill()
	if len(ad.active) == 0 {
		return nil, fmt.Errorf("cluster %s: no request fits (pool %d GiB, T_max %d)",
			s.cfg.Name, ad.alloc.CapacityBytes()>>30, s.tmax())
	}
	return ad, nil
}

// schedKind maps the DCS toggle to the scheduler/buffer pair.
func (s *System) schedKind() (perfmodel.Sched, bool) {
	if s.cfg.Tech.DCS {
		return perfmodel.DCS, false // PIMphony OBuf geometry
	}
	return perfmodel.Static, true // baseline OutReg geometry
}

// headGeometry returns how TP shards attention: KV heads per module, and
// the token-axis sharding factor once TP exceeds the head count.
func (s *System) headGeometry() (kvHeadsPerModule, tokenShard int) {
	kvHeadsPerModule = s.cfg.Model.KVHeads() / s.cfg.TP
	tokenShard = 1
	if kvHeadsPerModule == 0 {
		kvHeadsPerModule = 1
		tokenShard = s.cfg.TP / s.cfg.Model.KVHeads()
	}
	return kvHeadsPerModule, tokenShard
}

// headCapacityTokens is the KV capacity of one channel in (module-sharded)
// tokens for a single head tile: under head-first placement a (request,
// KV head) tile must live — and compute — within one channel, so this
// bounds both placement and admission. Sec. IV: "a request typically
// consumes nearly the entire memory capacity of a single PIM channel".
func (s *System) headCapacityTokens() int {
	m := s.cfg.Model
	perHead := m.KVBytesPerToken() / int64(m.KVHeads()) / int64(s.cfg.PP)
	if perHead <= 0 {
		perHead = 1
	}
	return int(s.cfg.Dev.ChannelBytes() / perHead)
}

// strategy maps the TCP toggle to the partitioning strategy.
func (s *System) strategy() mapping.Strategy {
	if s.cfg.Tech.TCP {
		return mapping.TCP{}
	}
	return mapping.HFP{CapacityTokens: s.headCapacityTokens()}
}

// epuLanes is the number of parallel EPU softmax lanes per module.
const epuLanes = 16

// attnStats carries one stage-layer attention evaluation.
type attnStats struct {
	cycles   timing.Cycles
	busy     timing.Cycles // aggregate MAC-busy cycles across channels
	macs     int64
	ioBytes  int64
	actPre   int64
	channels int
}

// attentionLayer evaluates one layer's attention time on one module group
// for the given micro-batch of requests.
func (s *System) attentionLayer(reqs []workload.Request, tokensOf func(workload.Request) int) (attnStats, error) {
	m := s.cfg.Model
	// TP shards KV heads first; beyond the head count it shards the token
	// axis across module groups (how TP-centric systems like NeuPIMs keep
	// scaling past the head count).
	kvHeadsPerModule := m.KVHeads() / s.cfg.TP
	tokenShard := 1
	if kvHeadsPerModule == 0 {
		kvHeadsPerModule = 1
		tokenShard = s.cfg.TP / m.KVHeads()
	}
	mreqs := make([]mapping.Request, len(reqs))
	for i, r := range reqs {
		t := (tokensOf(r) + tokenShard - 1) / tokenShard
		mreqs[i] = mapping.Request{ID: r.ID, Tokens: t}
	}
	assign, err := s.strategy().Assign(mreqs, kvHeadsPerModule, m.GQAGroup, s.cfg.Dev.Channels)
	if err != nil {
		return attnStats{}, err
	}
	sc, baseline := s.schedKind()
	var st attnStats
	st.channels = s.cfg.Dev.Channels
	var maxCh timing.Cycles
	for _, works := range assign.Channels {
		var chCycles timing.Cycles
		for _, w := range works {
			lat, err := s.priceAttention(w.Tokens, m.HeadDim, w.Queries, baseline, sc)
			if err != nil {
				return attnStats{}, err
			}
			chCycles += lat.Cycles
			st.busy += lat.Breakdown.MAC
			st.macs += lat.MACs
			st.ioBytes += lat.IOBytes
			st.actPre += lat.ActPre
		}
		if chCycles > maxCh {
			maxCh = chCycles
		}
	}
	st.cycles = maxCh
	// EPU softmax: one per (request, query head) on this module, spread
	// over the EPU lanes; under TCP the segments are concatenated first
	// (no extra cost beyond the softmax itself).
	var softmax timing.Cycles
	qHeadsPerModule := kvHeadsPerModule * m.GQAGroup
	for _, r := range reqs {
		softmax += s.hub.SoftmaxCycles((tokensOf(r)+tokenShard-1)/tokenShard) * timing.Cycles(qHeadsPerModule)
	}
	st.cycles += softmax / epuLanes
	// TCP pays one SV reduction per (request, KV head); the HUB performs
	// reductions for completed heads while the channels compute the next
	// head, so only the lane-parallel EPU residue is exposed (the paper
	// measures < 0.2% of attention latency).
	if s.cfg.Tech.TCP {
		red := s.hub.ReduceCycles(s.cfg.Dev.Channels, m.HeadDim)
		st.cycles += red * timing.Cycles(len(reqs)*kvHeadsPerModule) / epuLanes
	}
	return st, nil
}

// priceAttention prices one channel's attention tile. The KV mapping
// (row-reuse vs query-resident) is a compile-time choice, so every
// configuration gets the cheaper of the two under its own scheduler —
// row-reuse wins under DCS because the extra WR-INP traffic hides behind
// MAC execution (Sec. V-C), while static controllers often prefer the
// query-resident mapping.
func (s *System) priceAttention(tokens, headDim, queries int, baseline bool, sc perfmodel.Sched) (perfmodel.Latency, error) {
	plain, err := s.perf.AttentionLatency(tokens, headDim, queries, false, baseline, sc)
	if err != nil {
		return perfmodel.Latency{}, err
	}
	if !s.cfg.RowReuse || queries == 1 {
		return plain, nil
	}
	reuse, err := s.perf.AttentionLatency(tokens, headDim, queries, true, baseline, sc)
	if err != nil {
		return perfmodel.Latency{}, err
	}
	if reuse.Cycles < plain.Cycles {
		return reuse, nil
	}
	return plain, nil
}

// npuMemGBsPerModule is the weight-read bandwidth available to the NeuPIMs
// NPU per module. The NPU accesses DRAM through the regular channel
// interface (not the bank-internal MAC path), so it sees GDDR6-class
// external bandwidth rather than the 32 TB/s internal figure.
const npuMemGBsPerModule = 1000

// fcLayer evaluates one layer's FC time (seconds) for a micro-batch.
//
// PIM-only (CENT-style) systems run the projection GEMVs on the PIM banks
// themselves: the time is the max of the MAC-command issue roof (one
// command per Banks*ElemsPerTile MAC-ops per channel, at the scheduler's
// steady-state interval) and the weight-read roof (weights stream once per
// accumulator-file batch). xPU+PIM systems run the batched GEMM on the NPU
// roofline instead.
func (s *System) fcLayer(batch int) float64 {
	m := s.cfg.Model
	var fcFlops, fcBytes int64
	for _, sh := range m.FCShapes() {
		fcFlops += 2 * int64(sh.DIn) * int64(sh.DOut) * int64(sh.Count)
		fcBytes += int64(sh.DIn) * int64(sh.DOut) * int64(sh.Count) * int64(m.ElemBytes)
	}
	// Per-module shard.
	shardFlops := fcFlops / int64(s.cfg.TP)
	shardBytes := fcBytes / int64(s.cfg.TP)
	if s.cfg.Kind == XPUPIM {
		return xpu.NeuPIMsNPU(npuMemGBsPerModule).OpTime(int64(batch)*shardFlops, shardBytes)
	}
	dev := s.cfg.Dev
	macOpsPerCmd := int64(dev.Banks * dev.ElemsPerTile())
	cmds := int64(batch) * shardFlops / 2 / macOpsPerCmd
	perChannel := cmds / int64(dev.Channels)
	interval := dev.TMAC // static controllers pace MACs at tMAC
	if s.cfg.Tech.DCS {
		interval = dev.TCCDS // DCS sustains the pipelined interval
	}
	cmdSec := float64(perChannel) * float64(interval) / cyclesPerSecond
	// The accumulator file bounds how many requests share one weight
	// streaming pass; the baseline OutReg re-reads weights per pair.
	outEntries := dev.OutRegEntries()
	if s.cfg.Tech.DCS {
		outEntries = dev.OBufEntries()
	}
	passes := (batch + outEntries - 1) / outEntries
	byteSec := float64(shardBytes*int64(passes)) / (dev.InternalBandwidth() * cyclesPerSecond)
	if cmdSec > byteSec {
		return cmdSec
	}
	return byteSec
}

// syncCycles is the per-layer TP all-reduce cost.
func (s *System) syncCycles(batch int) timing.Cycles {
	if s.cfg.TP <= 1 {
		return 0
	}
	bytes := int64(batch) * int64(s.cfg.Model.DIn) * int64(s.cfg.Model.ElemBytes)
	per := timing.Cycles(float64(bytes) * float64(s.cfg.TP-1) / float64(s.cfg.TP) / s.cfg.Dev.LinkBytesPerCycle)
	return 2 * (s.cfg.Dev.LinkLatency + per) // attention-out + FFN-out
}

const cyclesPerSecond = 1e9

// stageTime returns the per-stage time in seconds for a micro-batch, plus
// the attention stats for utilization/energy accounting.
func (s *System) stageTime(reqs []workload.Request, tokensOf func(workload.Request) int) (float64, attnStats, float64, error) {
	layers := s.cfg.Model.Layers / s.cfg.PP
	at, err := s.attentionLayer(reqs, tokensOf)
	if err != nil {
		return 0, attnStats{}, 0, err
	}
	attnSec := float64(at.cycles) / cyclesPerSecond
	fcSec := s.fcLayer(len(reqs))
	syncSec := float64(s.syncCycles(len(reqs))) / cyclesPerSecond
	var layerSec float64
	if s.cfg.Kind == XPUPIM {
		// NeuPIMs sub-batch interleaving overlaps NPU GEMM with PIM GEMV;
		// 85% of the shorter phase hides under the longer one.
		longer, shorter := attnSec, fcSec
		if fcSec > attnSec {
			longer, shorter = fcSec, attnSec
		}
		layerSec = longer + 0.15*shorter + syncSec
	} else {
		layerSec = attnSec + fcSec + syncSec
	}
	stage := layerSec * float64(layers)
	attnShare := attnSec / layerSec
	// Scale the per-layer attention stats to the stage.
	at.cycles *= timing.Cycles(layers)
	at.busy *= timing.Cycles(layers)
	at.macs *= int64(layers)
	at.ioBytes *= int64(layers)
	at.actPre *= int64(layers)
	return stage, at, attnShare, nil
}

// iterate evaluates one decode iteration for a batch: the iteration time
// in seconds, the attention stats merged across the per-request stage
// evaluations (cycles and busy sum over PP micro-batches), and the
// attention share of iteration time. Both the batch simulator (RunCtx)
// and the serving engine (Engine.Step) price their iterations here.
func (s *System) iterate(ctx context.Context, batch []workload.Request, tokensOf func(workload.Request) int) (float64, attnStats, float64, error) {
	if s.cfg.PP == 1 {
		return s.stageTime(batch, tokensOf)
	}
	// Request-granular micro-batches through PP stages: sum of
	// per-request stage times + (PP-1) bubbles of the max. The
	// per-request evaluations are independent (the perfmodel cache
	// is internally locked), so they fan out through the sweep
	// engine; the ordered reduction below accumulates floats in
	// request order, keeping the result identical to the
	// sequential loop.
	type stageOut struct {
		sec   float64
		stats attnStats
		share float64
	}
	evalOne := func(r workload.Request) (stageOut, error) {
		st, stats1, share1, err := s.stageTime([]workload.Request{r}, tokensOf)
		return stageOut{st, stats1, share1}, err
	}
	var outs []stageOut
	var err error
	// Tiny batches are mostly memoized perfmodel hits; spinning a
	// worker pool per decode step costs more than it saves there
	// (and this loop already nests under the experiment grid and
	// stage-ladder sweeps).
	if len(batch) < 4 {
		outs = make([]stageOut, len(batch))
		for i, r := range batch {
			if outs[i], err = evalOne(r); err != nil {
				return 0, attnStats{}, 0, err
			}
		}
	} else {
		if outs, err = sweep.Run(ctx, batch, func(_ context.Context, r workload.Request) (stageOut, error) {
			return evalOne(r)
		}); err != nil {
			return 0, attnStats{}, 0, err
		}
	}
	var stats attnStats
	var share float64
	var sum, max float64
	for _, o := range outs {
		sum += o.sec
		if o.sec > max {
			max = o.sec
		}
		stats.busy += o.stats.busy
		stats.cycles += o.stats.cycles
		stats.channels = o.stats.channels
		share += o.share
		stats.macs += o.stats.macs
		stats.ioBytes += o.stats.ioBytes
		stats.actPre += o.stats.actPre
	}
	share /= float64(len(batch))
	iterSec := sum + float64(s.cfg.PP-1)*max
	return iterSec, stats, share, nil
}

// Run simulates a decode window over the given candidate requests and
// reports throughput, utilization and energy.
func (s *System) Run(reqs []workload.Request) (*Report, error) {
	return s.RunCtx(context.Background(), reqs)
}

// RunCtx is Run with cancellation: the decode loop aborts between
// iterations once ctx is done, so config-grid sweeps can stop early when
// a sibling point fails.
func (s *System) RunCtx(ctx context.Context, reqs []workload.Request) (*Report, error) {
	if s.cfg.Kind == GPUSystem {
		return s.runGPU(reqs)
	}
	ad, err := s.formBatch(reqs)
	if err != nil {
		return nil, err
	}
	batch := ad.active
	alloc := ad.alloc
	capUtil := memory.PoolUtilization(alloc)
	grown := make(map[int]int, len(batch)) // extra tokens generated so far
	rep := &Report{Config: s.cfg.Name, Kind: s.cfg.Kind, Batch: len(batch), Steps: s.cfg.DecodeWindow, CapacityUtil: capUtil}
	var totalSec, attnShareAcc float64
	var busy, span timing.Cycles
	var channels int
	generated := 0
	stepsRun := 0
	for step := 0; step < s.cfg.DecodeWindow; step++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		tokensOf := func(r workload.Request) int { return r.Context + grown[r.ID] }
		iterSec, stats, share, err := s.iterate(ctx, batch, tokensOf)
		if err != nil {
			return nil, err
		}
		busy += stats.busy
		span += stats.cycles
		channels = stats.channels
		totalSec += iterSec
		attnShareAcc += share
		generated += len(batch)
		stepsRun++
		// Advance every request by one generated token.
		for _, r := range batch {
			grown[r.ID]++
			if err := alloc.Grow(r.ID, tokensOf(r)+1); err != nil {
				// Out of headroom: freeze this request's growth (the real
				// system would evict; the window is short enough not to).
				grown[r.ID]--
			}
		}
		// Continuous batching: retire finished requests and refill FCFS.
		// (Collect first: release mutates the active slice batch aliases.)
		if s.cfg.ContinuousBatching {
			var done []int
			for _, r := range batch {
				if r.Decode > 0 && grown[r.ID] >= r.Decode {
					done = append(done, r.ID)
				}
			}
			for _, id := range done {
				if err := ad.release(id); err != nil {
					return nil, err
				}
			}
			ad.fill()
			batch = ad.active
			if len(batch) > rep.Batch {
				rep.Batch = len(batch)
			}
			if len(batch) == 0 {
				break
			}
		}
		// Attention energy for this iteration: the accumulated stats cover
		// one module's shard (TP) of one stage (PP); all Modules perform
		// equivalent shards, and background power accrues only over the
		// attention phase of the iteration.
		attnCycles := timing.Cycles(iterSec * share * cyclesPerSecond)
		eb := s.emod.ForAggregate(s.cfg.Dev, stats.macs, stats.ioBytes, stats.actPre,
			channels, attnCycles)
		rep.AttnEnergy.Add(eb.Scale(float64(s.cfg.Modules)))
		rep.FCEnergy.Add(s.fcEnergy(len(batch), iterSec))
	}
	rep.Steps = stepsRun
	rep.TotalSeconds = totalSec
	rep.Throughput = float64(generated) / totalSec
	if stepsRun > 0 {
		rep.AttnTimeShare = attnShareAcc / float64(stepsRun)
		rep.TBTSeconds = totalSec / float64(stepsRun)
	}
	if span > 0 {
		rep.PIMUtil = float64(busy) / (float64(span) * float64(channels))
	}
	return rep, nil
}

// Sweep builds one System per configuration and runs each against the
// shared (read-only) candidate pool, fanning the independent simulations
// through the sweep engine. Reports come back in input order; the first
// failing configuration cancels the rest.
func Sweep(ctx context.Context, cfgs []Config, reqs []workload.Request, opts ...sweep.Option) ([]*Report, error) {
	return sweep.Run(ctx, cfgs, func(ctx context.Context, cfg Config) (*Report, error) {
		sys, err := New(cfg)
		if err != nil {
			return nil, err
		}
		return sys.RunCtx(ctx, reqs)
	}, opts...)
}

// fcEnergy coarsely prices the FC phase of one iteration: DRAM reads of all
// sharded weights plus MAC-array energy for the batched GEMM.
func (s *System) fcEnergy(batch int, iterSec float64) energy.Breakdown {
	m := s.cfg.Model
	var fcBytes int64
	for _, sh := range m.FCShapes() {
		fcBytes += int64(sh.DIn) * int64(sh.DOut) * int64(sh.Count) * int64(m.ElemBytes)
	}
	fcBytes *= int64(m.Layers)
	macEquiv := fcBytes / int64(s.cfg.Dev.TileBytes*s.cfg.Dev.Banks) * int64(batch)
	return energy.Breakdown{
		MAC:        float64(macEquiv) * s.emod.MACpJ,
		IO:         float64(batch) * float64(m.DIn*m.Layers*m.ElemBytes) * s.emod.IOpJPerByte,
		Background: 0, // background power is attributed once, in AttnEnergy
		Else:       float64(fcBytes) * s.emod.DRAMReadpJPerByte,
	}
}

// PrefillSeconds estimates the prompt-processing time of one request at
// the given context length. Prefill is the compute-bound phase (batched
// GEMM over all prompt tokens plus causal attention, quadratic in the
// context), so it runs on the system's dense engine: the per-module PNM
// for PIM-only systems (their known weakness — the motivation for
// GPU/NPU prefill offload in Hybe and NeuPIMs), the NPU for xPU+PIM, and
// the GPU itself for the baseline.
func (s *System) PrefillSeconds(context int) float64 {
	m := s.cfg.Model
	var fcFlopsPerTok int64
	for _, sh := range m.FCShapes() {
		fcFlopsPerTok += 2 * int64(sh.DIn) * int64(sh.DOut) * int64(sh.Count)
	}
	fcFlopsPerTok *= int64(m.Layers)
	// Causal attention per layer: sum_{t=1..T} 2*2*heads*dh*t ~ 2*heads*dh*T^2.
	attnFlops := int64(m.Layers) * 2 * int64(m.Heads) * int64(m.HeadDim) * int64(context) * int64(context)
	flops := int64(context)*fcFlopsPerTok + attnFlops
	weights := m.WeightBytes()
	switch s.cfg.Kind {
	case GPUSystem:
		g := xpu.A100()
		return g.OpTime(flops/int64(s.cfg.GPUs), weights/int64(s.cfg.GPUs))
	case XPUPIM:
		dev := xpu.NeuPIMsNPU(npuMemGBsPerModule)
		return dev.OpTime(flops/int64(s.cfg.Modules), weights/int64(s.cfg.Modules))
	default:
		dev := xpu.CENTPNM(s.cfg.Dev.InternalBandwidth())
		return dev.OpTime(flops/int64(s.cfg.Modules), weights/int64(s.cfg.Modules))
	}
}

// runGPU evaluates the A100 baseline.
func (s *System) runGPU(reqs []workload.Request) (*Report, error) {
	g := xpu.A100()
	m := s.cfg.Model
	pool, err := s.kvPoolBytes()
	if err != nil {
		return nil, err
	}
	pool = int64(float64(pool) * g.PagedAttentionEff)
	var batch []workload.Request
	var kvBytes int64
	for _, r := range reqs {
		need := m.KVBytes(r.Context + s.cfg.DecodeWindow)
		if kvBytes+need > pool {
			continue
		}
		kvBytes += need
		batch = append(batch, r)
		if s.cfg.MaxBatch > 0 && len(batch) >= s.cfg.MaxBatch {
			break
		}
	}
	if len(batch) == 0 {
		return nil, fmt.Errorf("cluster %s: no request fits on %d GPUs", s.cfg.Name, s.cfg.GPUs)
	}
	var fcFlopsPerReq int64
	var weightBytes int64 = m.WeightBytes()
	for _, sh := range m.FCShapes() {
		fcFlopsPerReq += 2 * int64(sh.DIn) * int64(sh.DOut) * int64(sh.Count)
	}
	fcFlopsPerReq *= int64(m.Layers)
	rep := &Report{Config: s.cfg.Name, Kind: GPUSystem, Batch: len(batch), Steps: s.cfg.DecodeWindow, CapacityUtil: g.PagedAttentionEff}
	var totalSec float64
	grown := 0
	for step := 0; step < s.cfg.DecodeWindow; step++ {
		var kv int64
		for _, r := range batch {
			kv += m.KVBytes(r.Context + grown)
		}
		fc := g.OpTime(int64(len(batch))*fcFlopsPerReq/int64(s.cfg.GPUs), weightBytes/int64(s.cfg.GPUs))
		attn := g.AttentionTime(kv / int64(s.cfg.GPUs))
		totalSec += fc + attn
		grown++
	}
	rep.TotalSeconds = totalSec
	rep.Throughput = float64(len(batch)*s.cfg.DecodeWindow) / totalSec
	return rep, nil
}
