// Fleet autoscaling: a policy seam on the discrete-event spine that
// lets the global scheduler change the online decode-replica set while
// a simulation runs. A fleet built with Config.Autoscaler starts with
// each spec's Min replicas online and the rest offline (standby); at
// every scheduler decision boundary — arrival routing, engine-call
// reactions, idle retries — the Autoscaler inspects an AutoscaleView
// and asks for replicas to be provisioned or drained:
//
//   - Provisioning marks the lowest-index standby replica warming and
//     schedules an evProvision at now + WarmupSeconds (a zero warm-up
//     applies synchronously, which is what pins the fixed-fleet
//     regression: MaxScaler with zero warm-up reproduces the fixed
//     fleet byte-for-byte). When the event dispatches, the replica
//     joins the online pool and is immediately placeable.
//   - Draining retires the highest-index idle online replica (no
//     active batch, no queued work, nothing in flight toward it) via
//     an evDrain at the decision time. Draining replicas are excluded
//     from placement, stealing and migration, so nothing can land on
//     one between the decision and its event. Draining to zero is
//     allowed; held arrivals then re-provision (the spine's idleWork
//     backstop guarantees a standby is brought up rather than
//     stalling).
//
// Online seconds are integrated per replica from provision to drain
// (clamped to the makespan window), so Report.Energy prices an
// autoscaled fleet for the capacity it actually kept online — the
// goodput-per-dollar axis the autoscale experiment sweeps.
package serve

import (
	"fmt"
	"math"
)

// replState is one fleet replica's autoscaling lifecycle state.
type replState int

const (
	// stateOnline: the replica takes placements, steals and migrations.
	stateOnline replState = iota
	// stateWarming: provisioning was decided; the replica joins the
	// online pool when its evProvision dispatches.
	stateWarming
	// stateDraining: retirement was decided; the replica is already
	// excluded from placement and leaves the pool when its evDrain
	// dispatches (same timestamp — the state exists so nothing can be
	// routed to it in between).
	stateDraining
	// stateOffline: standby — provisioned capacity not currently online
	// (not charged for provisioning while offline).
	stateOffline
	// stateFailed: the replica crashed (faults.go). Its KV is lost, its
	// in-flight requests were withdrawn to the global retry path, and it
	// takes no placements, steals or migrations until its evRecover
	// brings it back online. Downtime is not billed as online seconds.
	stateFailed
)

func (s replState) String() string {
	switch s {
	case stateOnline:
		return "online"
	case stateWarming:
		return "warming"
	case stateDraining:
		return "draining"
	case stateOffline:
		return "offline"
	case stateFailed:
		return "failed"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// ScaleEvent is one autoscaler action in a fleet run's timeline.
type ScaleEvent struct {
	// At is the simulation time the replica set changed (seconds; for a
	// provision, the warm-up end, not the decision time).
	At float64
	// Delta is +1 for a replica coming online, -1 for a drain.
	Delta int
	// Online is the online decode-replica count after the event.
	Online int
}

// AutoscaleView is the fleet state an Autoscaler decides on: the
// replica pool by lifecycle state, the work visible to the global
// scheduler, and how long the oldest un-served request has waited.
// Everything in it is deterministic, so autoscaled runs stay
// byte-identical across leap granularity and sweep parallelism.
type AutoscaleView struct {
	// Now is the decision boundary's simulation time (seconds).
	Now float64
	// SLO is the run's latency target (the scale-up trigger is usually
	// relative to SLO.TTFT).
	SLO SLO
	// Online / Warming / Standby count decode replicas by state
	// (draining replicas have already left Online).
	Online, Warming, Standby int
	// Failed counts crashed replicas currently waiting out their
	// recovery — capacity the fleet owns but cannot use right now. The
	// autoscaler sees a crash as capacity loss (Online drops, Failed
	// rises) and may provision standby replacements.
	Failed int
	// IdleOnline counts online replicas with no work at all — no active
	// batch, no queue, nothing in flight toward them — i.e. the ones a
	// drain decision could retire right now.
	IdleOnline int
	// Held is the global queue: requests no online replica could admit
	// at their decision point.
	Held int
	// Queued / Active sum the online replicas' pending and admitted
	// request counts.
	Queued, Active int
	// FreeKVFrac is the online replicas' pooled free KV fraction (zero
	// when nothing is online).
	FreeKVFrac float64
	// OldestWaitSeconds is the longest time any arrived request has
	// waited without producing its first token (zero when none wait).
	OldestWaitSeconds float64
	// Waiting is how many arrived requests have not yet produced their
	// first token; OldestArrival is the earliest such request's arrival
	// time (+Inf when Waiting is zero). Together they let a policy
	// compute its future wait-threshold crossings for NextEval.
	Waiting       int
	OldestArrival float64
}

// Autoscaler decides, at each scheduler decision boundary, whether the
// fleet's online decode-replica set should change. Implementations may
// keep state (cooldowns), so each Run needs a fresh instance.
type Autoscaler interface {
	// Name labels the policy in reports and CLI flags.
	Name() string
	// Scale returns how many replicas to provision (positive), drain
	// (negative), or zero to hold. The scheduler clamps the request to
	// what exists: provisioning stops at the standby pool, draining at
	// the idle online replicas.
	Scale(v AutoscaleView) int
}

// evalScheduler is the timer half of a time-sensitive autoscaler:
// after each Scale call the fleet asks when the policy next needs to be
// re-evaluated absent any other event — a cooldown expiring, the oldest
// wait crossing a threshold — and pushes an evScaleEval at that time
// through the DES heap. Scale decisions therefore fire only at
// heap-event boundaries (arrivals, completions, landings, timers),
// never at engine-call density, which is what makes autoscaled runs
// leap-invariant. Policies without time-dependent triggers (MaxScaler)
// simply do not implement it.
type evalScheduler interface {
	// NextEval returns the next absolute time (> v.Now) the policy
	// wants a re-evaluation, or +Inf when no timer is needed.
	NextEval(v AutoscaleView) float64
}

// SLOScaler is the default autoscaling policy: scale up when TTFT
// attainment is threatened — a request is held with nowhere to go, the
// oldest un-served wait crosses TTFTFraction of the TTFT SLO, or KV
// headroom is nearly gone with work still queued — and drain one idle
// replica at a time when the fleet is quiet. Both directions are
// cooldown-limited so one burst does not thrash the pool.
type SLOScaler struct {
	// TTFTFraction triggers scale-up when the oldest un-served request
	// has waited longer than this fraction of SLO.TTFT (ignored when
	// the SLO has no TTFT target).
	TTFTFraction float64
	// HeadroomLow triggers scale-up when the pooled free-KV fraction
	// falls below it while requests are queued.
	HeadroomLow float64
	// CooldownSeconds is the minimum gap between two scale-ups and
	// between two drains.
	CooldownSeconds float64

	lastUp, lastDown float64
}

// NewSLOScaler builds the default SLO-driven policy: scale up at half
// the TTFT budget or under 10% pooled KV headroom, drain when quiet,
// 4s cooldown each way.
func NewSLOScaler() *SLOScaler {
	return &SLOScaler{
		TTFTFraction:    0.5,
		HeadroomLow:     0.1,
		CooldownSeconds: 4,
		lastUp:          math.Inf(-1),
		lastDown:        math.Inf(-1),
	}
}

// Name implements Autoscaler.
func (s *SLOScaler) Name() string { return "slo" }

// Scale implements Autoscaler: +1 under SLO pressure, -1 when idle
// capacity sits in a quiet fleet, 0 otherwise.
func (s *SLOScaler) Scale(v AutoscaleView) int {
	pressed := v.Held > 0 ||
		(v.SLO.TTFT > 0 && v.OldestWaitSeconds > s.TTFTFraction*v.SLO.TTFT) ||
		(v.FreeKVFrac < s.HeadroomLow && v.Queued > 0)
	if pressed {
		// The cooldown paces ordinary ramping; once the oldest wait has
		// blown the whole TTFT budget the burst is outrunning that pace
		// and every decision boundary may bring a replica up.
		urgent := v.SLO.TTFT > 0 && v.OldestWaitSeconds > v.SLO.TTFT
		if v.Standby > 0 && (urgent || v.Now >= s.lastUp+s.CooldownSeconds) {
			s.lastUp = v.Now
			return 1
		}
		return 0
	}
	quiet := v.Held == 0 && v.Queued == 0 && v.Warming == 0 && v.OldestWaitSeconds == 0
	if quiet && v.IdleOnline > 0 && v.Now >= s.lastDown+s.CooldownSeconds {
		s.lastDown = v.Now
		return -1
	}
	return 0
}

// NextEval implements evalScheduler: the earliest future time one of
// Scale's time-driven triggers can change its answer — the oldest
// waiting request crossing the TTFT-fraction (or full-TTFT urgency)
// threshold, a pressed fleet's scale-up cooldown expiring, or a quiet
// fleet's drain cooldown expiring. +Inf when none applies; every other
// trigger (held work, KV headroom, queue changes) moves only at heap
// events, which evaluate on their own.
func (s *SLOScaler) NextEval(v AutoscaleView) float64 {
	next := math.Inf(1)
	add := func(t float64) {
		if t > v.Now && t < next {
			next = t
		}
	}
	if v.Waiting > 0 && v.SLO.TTFT > 0 {
		add(v.OldestArrival + s.TTFTFraction*v.SLO.TTFT)
		add(v.OldestArrival + v.SLO.TTFT)
	}
	pressed := v.Held > 0 ||
		(v.SLO.TTFT > 0 && v.OldestWaitSeconds > s.TTFTFraction*v.SLO.TTFT) ||
		(v.FreeKVFrac < s.HeadroomLow && v.Queued > 0)
	if pressed && v.Standby > 0 {
		add(s.lastUp + s.CooldownSeconds)
	}
	quiet := v.Held == 0 && v.Queued == 0 && v.Warming == 0 && v.OldestWaitSeconds == 0
	if quiet && v.IdleOnline > 0 {
		add(s.lastDown + s.CooldownSeconds)
	}
	return next
}

// MaxScaler provisions every standby replica at the first decision
// boundary and never drains — the all-capacity upper bound. With zero
// warm-up it reproduces the fixed fleet exactly (the regression suite
// pins that byte-identity), which is what anchors autoscaled runs to
// the fixed-fleet tables.
type MaxScaler struct{}

// Name implements Autoscaler.
func (MaxScaler) Name() string { return "max" }

// Scale implements Autoscaler: bring everything online, keep it there.
func (MaxScaler) Scale(v AutoscaleView) int { return v.Standby }

// AutoscalerByName builds a fresh autoscaler instance from its CLI
// name.
func AutoscalerByName(name string) (Autoscaler, error) {
	switch name {
	case "slo":
		return NewSLOScaler(), nil
	case "max":
		return MaxScaler{}, nil
	default:
		return nil, fmt.Errorf("serve: unknown autoscaler %q (known: %v)", name, AutoscalerNames())
	}
}

// AutoscalerNames lists the selectable autoscaling policies in CLI
// order.
func AutoscalerNames() []string {
	return []string{"max", "slo"}
}
