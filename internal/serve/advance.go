package serve

import (
	"context"

	"pimphony/internal/cluster"
	"pimphony/internal/workload"
)

// record tracks one request's lifecycle timestamps.
type record struct {
	req     workload.Request
	arrival float64
	first   float64 // end of the iteration that produced token 1
	done    float64 // end of the iteration that produced the last token
	tokens  int     // tokens actually generated (Decode, unless truncated at T_max)
	replica int
	prefill float64
	// retries counts crash-loss re-admissions (faults.go); failed marks a
	// request whose retry budget ran out — it never completes and is
	// excluded from the latency samples.
	retries int
	failed  bool
}

// replica is one decode engine plus its private clock.
type replica struct {
	sys   *cluster.System
	eng   *cluster.Engine
	clock float64
	// iterScratch backs apply's single-iteration view of a plain Step
	// result, reused across steps.
	iterScratch []float64
}

// tracker owns the per-request records and the replica-advancement
// machinery — how an engine is driven and how its event stream becomes
// per-token timestamps. It is the half of the simulator that does not
// know about routing: the load-balanced simulator (sim) and the fleet
// simulator (fleetSim) both embed it, so placement, handoff and
// migration policies can differ while the advancement semantics — and
// therefore every timestamp — stay shared and byte-identical.
type tracker struct {
	recs       map[int]*record
	singleStep bool
}

// step advances a replica by one engine call — a single decode
// iteration, or a multi-iteration leap bounded by t (the time the
// replica is advancing toward) — and stamps the resulting events with
// the replica's clock. The engine result is returned so callers that
// react to per-step events (the fleet scheduler's migration decisions)
// can inspect it; the load balancer ignores it.
func (tk *tracker) step(ctx context.Context, r *replica, t float64) (cluster.StepResult, error) {
	var res cluster.StepResult
	var err error
	if tk.singleStep {
		res, err = r.eng.Step(ctx)
	} else {
		res, err = r.eng.Leap(ctx, r.clock, t)
	}
	if err != nil {
		return res, err
	}
	if res.Batch == 0 {
		return res, nil // idle; the caller advances the clock to the next event
	}
	tk.apply(res, r)
	return res, nil
}

// apply folds one engine result — single-iteration or an aggregated
// leap — into the per-request records. Replaying IterSeconds keeps
// every per-token timestamp identical to single stepping: the clock
// accumulates iteration by iteration, and a request's first token is
// stamped at the end of the iteration that produced it (its token count
// reaching one — not the first==0 sentinel, which a first iteration
// ending at simulated time exactly zero would leave unset for later
// tokens to re-stamp).
func (tk *tracker) apply(res cluster.StepResult, r *replica) {
	iters := res.IterSeconds
	if iters == nil {
		iters = r.iterScratch[:0]
		iters = append(iters, res.Seconds)
		r.iterScratch = iters
	}
	// The clock accumulates iteration by iteration (the float addition
	// order is what keeps leaps bit-identical to single stepping), but
	// the per-request fold factors out: a leap has no mid-leap batch
	// changes, so every Generated id gains exactly len(iters) tokens and
	// a request's count can only reach one on the leap's first iteration.
	end := r.clock
	firstEnd := end
	for i, d := range iters {
		end += d
		if i == 0 {
			firstEnd = end
		}
	}
	n := len(iters)
	for _, id := range res.Generated {
		rec := tk.recs[id]
		if rec.tokens == 0 {
			rec.first = firstEnd
		}
		rec.tokens += n
	}
	for _, q := range res.Completed {
		tk.recs[q.ID].done = end
	}
	r.clock = end
}

// advance simulates a replica up to time t (or through its current work
// if it empties earlier); an idle replica's clock jumps to t.
func (tk *tracker) advance(ctx context.Context, r *replica, t float64) error {
	for r.clock < t && !r.eng.Idle() {
		if _, err := tk.step(ctx, r, t); err != nil {
			return err
		}
	}
	if r.eng.Idle() && r.clock < t {
		r.clock = t
	}
	return nil
}
