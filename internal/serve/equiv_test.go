// The simulation-equivalence suite: the serving spine (des.go) must
// produce byte-identical reports across every axis that is supposed to
// change only how fast the simulation runs, never what it computes —
// synchronization discipline (barrier vs lazy destination-only
// advancement), leap granularity (SingleStep, LeapHorizon), sweep
// parallelism, and the push order of commuting equal-timestamp events.
// The suite runs black-box through internal/simtest so the same
// oracles serve the fuzz target and any future simulator front end.
package serve_test

import (
	"context"
	"testing"

	"pimphony/internal/serve"
	"pimphony/internal/simtest"
	"pimphony/internal/sweep"
	"pimphony/internal/timing"
	"pimphony/internal/workload"
)

func mustRun(t *testing.T, cfg serve.Config, arr []workload.Arrival) *serve.Report {
	t.Helper()
	rep, err := serve.Run(context.Background(), cfg, arr)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// fp runs a configuration, checks the report invariants, and returns
// the equivalence fingerprint.
func fp(t *testing.T, cfg serve.Config, arr []workload.Arrival) string {
	t.Helper()
	rep := mustRun(t, cfg, arr)
	simtest.CheckInvariants(t, rep, arr)
	return simtest.Fingerprint(rep)
}

// classicPolicies builds fresh instances of every routing policy
// (policies may keep state, so each run needs its own).
func classicPolicies() map[string]func() serve.Policy {
	return map[string]func() serve.Policy{
		"round-robin":  serve.RoundRobin,
		"least-tokens": serve.LeastOutstandingTokens,
		"session":      serve.SessionAffinity,
	}
}

// TestClassicSpineEquivalence sweeps the backend × allocator grid with
// every routing policy and pins, per cell: leap against single-step
// advancement, the lazy destination-only discipline against the
// barrier (via simtest.Opaque), and parallel against sequential
// replica advancement.
func TestClassicSpineEquivalence(t *testing.T) {
	long, err := simtest.PoissonSchedule(16, 24, 42)
	if err != nil {
		t.Fatal(err)
	}
	tight, err := simtest.TightSchedule(8)
	if err != nil {
		t.Fatal(err)
	}
	for _, sysName := range simtest.SystemNames() {
		arr := long
		if sysName == "pim-tight" {
			arr = tight // exercise the preemption/recompute path
		}
		for polName, mkPol := range classicPolicies() {
			t.Run(sysName+"/"+polName, func(t *testing.T) {
				mk := func(pol serve.Policy, single bool) string {
					return fp(t, serve.Config{
						System:     simtest.System(sysName),
						Replicas:   2,
						Policy:     pol,
						SLO:        serve.SLO{TTFT: 1, TBT: 0.2},
						SingleStep: single,
					}, arr)
				}
				leap := mk(mkPol(), false)
				if single := mk(mkPol(), true); single != leap {
					t.Errorf("single-step diverged from leap advancement")
				}
				if barrier := mk(simtest.Opaque(mkPol()), false); barrier != leap {
					t.Errorf("barrier discipline diverged from the spine's default")
				}
				prev := sweep.SetDefault(8)
				par := mk(mkPol(), false)
				sweep.SetDefault(prev)
				if par != leap {
					t.Errorf("parallel replica advancement diverged from sequential")
				}
			})
		}
	}
}

// TestFleetSpineEquivalence pins the fleet half of the spine across
// every placement policy: horizon-clamped leaps, one-iteration
// stepping, and tighter leap horizons must agree byte-for-byte while
// migration and stealing fire.
func TestFleetSpineEquivalence(t *testing.T) {
	arr, err := simtest.TightSchedule(10)
	if err != nil {
		t.Fatal(err)
	}
	for _, plName := range serve.PlacementNames() {
		t.Run(plName, func(t *testing.T) {
			mk := func(single bool, horizon int) string {
				pl, err := serve.PlacementByName(plName)
				if err != nil {
					t.Fatal(err)
				}
				return fp(t, serve.Config{
					Fleet: []serve.ReplicaSpec{
						{System: simtest.System("pim-dpa"), Count: 1, Role: serve.RolePrefill},
						{System: simtest.System("pim-tight"), Count: 2, Role: serve.RoleDecode},
					},
					Interconnect: timing.DefaultInterconnect(),
					Placement:    pl,
					Migrate:      true,
					Steal:        true,
					SingleStep:   single,
					LeapHorizon:  horizon,
					SLO:          serve.SLO{TTFT: 1, TBT: 0.2},
				}, arr)
			}
			leap := mk(false, 0)
			if single := mk(true, 0); single != leap {
				t.Errorf("single-step fleet diverged from leap advancement")
			}
			for _, horizon := range []int{1, 5} {
				if clamped := mk(false, horizon); clamped != leap {
					t.Errorf("LeapHorizon %d changed the fleet report", horizon)
				}
			}
		})
	}
}

// TestFaultedSpineEquivalence pins the fault layer to the same
// determinism contract as the rest of the spine: a fault plan compiles
// to explicit heap events, so crash, slowdown and link schedules — and
// every retry, recompute and re-placement they trigger — must be
// byte-identical across sync discipline, leap horizon and sweep
// parallelism. The autoscaled variant doubles as the regression pin for
// timer-driven scale evaluation: autoscaled runs are now leap-invariant
// too, faults or no faults.
func TestFaultedSpineEquivalence(t *testing.T) {
	arr, err := simtest.TightSchedule(10)
	if err != nil {
		t.Fatal(err)
	}
	plan := func() *serve.FaultPlan {
		return &serve.FaultPlan{
			Seed: 17,
			Groups: []serve.FaultGroup{
				{Spec: 1, Mode: serve.FaultCrash, MTBFSeconds: 0.05, MTTRSeconds: 0.01},
				{Spec: 1, Mode: serve.FaultSlowdown, MTBFSeconds: 0.04, MTTRSeconds: 0.03, Slowdown: 3},
				{Spec: 1, Mode: serve.FaultLink, MTBFSeconds: 0.06, MTTRSeconds: 0.02, LinkFactor: 4},
			},
			MaxRetries:     -1,
			BackoffSeconds: 0.002,
		}
	}
	t.Run("disaggregated", func(t *testing.T) {
		mk := func(single bool, horizon int) string {
			rep := mustRun(t, serve.Config{
				Fleet: []serve.ReplicaSpec{
					{System: simtest.System("pim-dpa"), Count: 1, Role: serve.RolePrefill},
					{System: simtest.System("pim-tight"), Count: 2, Role: serve.RoleDecode},
				},
				Interconnect: timing.DefaultInterconnect(),
				Migrate:      true,
				Steal:        true,
				Faults:       plan(),
				SingleStep:   single,
				LeapHorizon:  horizon,
				SLO:          serve.SLO{TTFT: 1, TBT: 0.2},
			}, arr)
			simtest.CheckInvariants(t, rep, arr)
			if rep.Faults == nil || rep.Faults.Crashes == 0 {
				t.Fatal("fault schedule never fired; the equivalence check is vacuous")
			}
			return simtest.Fingerprint(rep)
		}
		leap := mk(false, 0)
		if single := mk(true, 0); single != leap {
			t.Errorf("single-step faulted fleet diverged from leap advancement")
		}
		for _, horizon := range []int{1, 5} {
			if clamped := mk(false, horizon); clamped != leap {
				t.Errorf("LeapHorizon %d changed the faulted fleet report", horizon)
			}
		}
		prev := sweep.SetDefault(8)
		par := mk(false, 0)
		sweep.SetDefault(prev)
		if par != leap {
			t.Errorf("parallel sweep changed the faulted fleet report")
		}
	})
	t.Run("autoscaled", func(t *testing.T) {
		mk := func(single bool, horizon int) string {
			rep := mustRun(t, serve.Config{
				Fleet: []serve.ReplicaSpec{
					{System: simtest.System("pim-dpa"), Count: 3, Role: serve.RoleUnified, Min: 1, WarmupSeconds: 0.02},
				},
				Autoscaler: serve.NewSLOScaler(),
				Faults: &serve.FaultPlan{
					Seed: 5,
					Groups: []serve.FaultGroup{
						{Spec: -1, Mode: serve.FaultCrash, MTBFSeconds: 0.05, MTTRSeconds: 0.02},
					},
					MaxRetries:     -1,
					BackoffSeconds: 0.005,
				},
				SingleStep:  single,
				LeapHorizon: horizon,
				SLO:         serve.SLO{TTFT: 1, TBT: 0.2},
			}, arr)
			simtest.CheckInvariants(t, rep, arr)
			return simtest.Fingerprint(rep)
		}
		leap := mk(false, 0)
		if single := mk(true, 0); single != leap {
			t.Errorf("single-step autoscaled faulted fleet diverged from leap advancement")
		}
		for _, horizon := range []int{1, 5} {
			if clamped := mk(false, horizon); clamped != leap {
				t.Errorf("LeapHorizon %d changed the autoscaled faulted report", horizon)
			}
		}
		prev := sweep.SetDefault(8)
		par := mk(false, 0)
		sweep.SetDefault(prev)
		if par != leap {
			t.Errorf("parallel sweep changed the autoscaled faulted report")
		}
	})
}

// TestEqualTimestampPermutationInvariance is the metamorphic
// event-order oracle: two arrivals at the same timestamp that route to
// different replicas commute — swapping their push order permutes heap
// sequence numbers but may not change a single timestamp. Session
// affinity routes independently of arrival order, so the invariance is
// checkable end to end.
func TestEqualTimestampPermutationInvariance(t *testing.T) {
	const replicas = 4
	// Pick three session keys that hash to pairwise-distinct replicas,
	// so the requests in each equal-time group never share a queue.
	pol := serve.SessionAffinity()
	probe := make([]serve.Load, replicas)
	var sessions []int
	seen := map[int]bool{}
	for s := 0; len(sessions) < 3 && s < 256; s++ {
		idx := pol.Pick(workload.Arrival{Session: s}, probe)
		if !seen[idx] {
			seen[idx] = true
			sessions = append(sessions, s)
		}
	}
	if len(sessions) < 3 {
		t.Fatal("could not find three sessions with distinct replicas")
	}
	gen := workload.NewGenerator(workload.QMSum(), 11)
	gen.DecodeLen = 6
	var arr []workload.Arrival
	for g := 0; g < 5; g++ {
		at := 0.01 * float64(g)
		for _, s := range sessions {
			arr = append(arr, workload.Arrival{Req: gen.Next(), At: at, Session: s})
		}
	}
	// Rotate each equal-time group: (a b c) -> (b c a).
	perm := append([]workload.Arrival(nil), arr...)
	for g := 0; g < len(perm); g += 3 {
		perm[g], perm[g+1], perm[g+2] = perm[g+1], perm[g+2], perm[g]
	}
	cfg := func() serve.Config {
		return serve.Config{System: simtest.System("pim-dpa"), Replicas: replicas,
			Policy: serve.SessionAffinity(), SLO: serve.SLO{TTFT: 1, TBT: 0.2}}
	}
	if a, b := fp(t, cfg(), arr), fp(t, cfg(), perm); a != b {
		t.Error("permuting commuting equal-timestamp arrivals changed the report")
	}
}
