// The indexed-scheduler oracle suite: every O(log n) decision the fleet
// scheduler answers from its maintained views (views.go, placement.go)
// is pinned byte-identical to the O(n) linear scan it replaced, two
// ways. End-to-end: full fleet simulations — migration, stealing,
// autoscaling, disaggregation — run once through the indexed fast path
// and once through a wrapper that hides the fast-path interface, and
// the reports must be deeply equal. Per-decision: a randomized driver
// pushes a fleetSim through admit/step/preempt/provision/drain/steal
// sequences and, after every operation, audits each index's membership,
// keys and order against the live engine state, and each decision
// procedure against its scan.
package serve

import (
	"container/heap"
	"math"
	"reflect"
	"testing"

	"pimphony/internal/timing"
	"pimphony/internal/workload"
)

// linearOnly hides a built-in placement's placeIndexed method behind an
// interface embed: the dynamic type no longer implements
// indexedPlacement, so place() takes the scratch-built []FleetLoad scan
// with byte-identical semantics. Name passes through, keeping reports
// comparable field for field.
type linearOnly struct{ Placement }

// TestIndexedPlacementMatchesLinearEndToEnd runs full fleet simulations
// — fixed, autoscaled, and disaggregated shapes with migration and
// stealing on — under every built-in placement, indexed and forced
// linear, and requires deeply equal reports.
func TestIndexedPlacementMatchesLinearEndToEnd(t *testing.T) {
	shapes := []struct {
		name string
		cfg  func() Config
	}{
		{"fixed-mixed", func() Config {
			return Config{
				Fleet: []ReplicaSpec{
					{System: tightSystem(), Count: 2, Role: RoleUnified},
					{System: testSystem(), Count: 2, Role: RoleUnified},
				},
				Interconnect: timing.DefaultInterconnect(),
				Migrate:      true,
				Steal:        true,
				SLO:          SLO{TTFT: 1, TBT: 0.2},
			}
		}},
		{"autoscaled", func() Config {
			return Config{
				Fleet: []ReplicaSpec{
					{System: tightSystem(), Count: 3, Role: RoleUnified, Min: 1, WarmupSeconds: 0.05},
					{System: testSystem(), Count: 2, Role: RoleUnified, Min: 1},
				},
				Interconnect: timing.DefaultInterconnect(),
				Migrate:      true,
				Steal:        true,
				Autoscaler:   NewSLOScaler(),
				SLO:          SLO{TTFT: 1, TBT: 0.2},
			}
		}},
		{"disaggregated", func() Config {
			return Config{
				Fleet: []ReplicaSpec{
					{System: testSystem(), Count: 1, Role: RolePrefill},
					{System: tightSystem(), Count: 3, Role: RoleDecode},
				},
				Interconnect: timing.DefaultInterconnect(),
				Migrate:      true,
				Steal:        true,
				SLO:          SLO{TTFT: 1, TBT: 0.2},
			}
		}},
	}
	placements := []struct {
		name string
		mk   func() Placement
	}{
		{"kv-headroom", KVHeadroom},
		{"least-tokens-fit", LeastTokensFit},
		{"round-robin-fit", RoundRobinFit},
	}
	for _, sh := range shapes {
		for _, pl := range placements {
			t.Run(sh.name+"/"+pl.name, func(t *testing.T) {
				arr := fleetTestArrivals(14, 5)
				cfgIdx := sh.cfg()
				cfgIdx.Placement = pl.mk()
				cfgLin := sh.cfg()
				cfgLin.Placement = linearOnly{pl.mk()}
				idx := run(t, cfgIdx, arr)
				lin := run(t, cfgLin, arr)
				if !reflect.DeepEqual(idx, lin) {
					t.Errorf("indexed placement diverged from linear scan:\n%+v\n%+v", idx, lin)
				}
			})
		}
	}
}

// linearLoads replicates the pre-index []FleetLoad build the linear
// scans decided on.
func linearLoads(fs *fleetSim, r workload.Request) []FleetLoad {
	loads := make([]FleetLoad, len(fs.decoders))
	for i, d := range fs.decoders {
		clk := d.clock
		if clk < fs.clock && d.eng.Idle() {
			clk = fs.clock
		}
		loads[i] = FleetLoad{
			Load: Load{
				OutstandingTokens: d.eng.OutstandingTokens(),
				Active:            d.eng.Active(),
				Pending:           d.eng.Pending(),
				Clock:             clk,
			},
			Role:        d.role,
			FreeKVBytes: d.eng.FreeKVBytes(),
			Fits:        d.eng.HasHeadroom(r),
		}
		if fs.state[i] != stateOnline {
			loads[i].Fits = false
			loads[i].FreeKVBytes = 0
		}
	}
	return loads
}

// auditIndex checks one index's membership and key for one replica.
func auditIndex(t *testing.T, op int, name string, x *ordIndex, i int, member bool, key int64) {
	t.Helper()
	if x.contains(i) != member {
		t.Fatalf("op %d: %s.contains(%d) = %v, want %v", op, name, i, x.contains(i), member)
	}
	if member && x.nodes[i].key != key {
		t.Fatalf("op %d: %s key for %d = %d, want %d", op, name, i, x.nodes[i].key, key)
	}
}

// auditViews is the full O(n) recheck: every index's membership and key
// against live engine state, every cached contribution, and every
// aggregate counter.
func auditViews(t *testing.T, op int, fs *fleetSim) {
	t.Helper()
	v := &fs.views
	var queued, activeSum, onlineCnt, warmingCnt, standbyCnt int
	var freeSum, poolSum int64
	for i, d := range fs.decoders {
		online := fs.state[i] == stateOnline
		pending, active := d.eng.Pending(), d.eng.Active()
		free := d.eng.FreeKVBytes()
		idleFree := d.eng.Idle() && fs.incoming[i] == 0
		auditIndex(t, op, "byFreeKV", &v.byFreeKV, i, online, -free)
		auditIndex(t, op, "byTokens", &v.byTokens, i, online, int64(d.eng.OutstandingTokens()))
		auditIndex(t, op, "online", &v.online, i, online, int64(i))
		auditIndex(t, op, "stealSrc", &v.stealSrc, i, online && active > 0 && pending > 0, -int64(pending))
		auditIndex(t, op, "thieves", &v.thieves, i, online && idleFree, int64(i))
		auditIndex(t, op, "drainable", &v.drainable, i, online && idleFree && fs.landing[i] == 0, int64(i))
		auditIndex(t, op, "standby", &v.standby, i, fs.state[i] == stateOffline, int64(i))
		wantP, wantA, wantF := 0, 0, int64(0)
		if online {
			wantP, wantA, wantF = pending, active, free
			queued += pending
			activeSum += active
			freeSum += free
			poolSum += d.eng.KVPoolBytes()
			onlineCnt++
		}
		if v.pending[i] != wantP || v.active[i] != wantA || v.free[i] != wantF {
			t.Fatalf("op %d: replica %d cache (%d,%d,%d), want (%d,%d,%d)",
				op, i, v.pending[i], v.active[i], v.free[i], wantP, wantA, wantF)
		}
		switch fs.state[i] {
		case stateWarming:
			warmingCnt++
		case stateOffline:
			standbyCnt++
		}
	}
	if v.queued != queued || v.activeSum != activeSum || v.freeSum != freeSum || v.poolSum != poolSum ||
		v.onlineCnt != onlineCnt || v.warmingCnt != warmingCnt || v.standbyCnt != standbyCnt {
		t.Fatalf("op %d: aggregates (q=%d a=%d f=%d p=%d on=%d warm=%d off=%d), want (q=%d a=%d f=%d p=%d on=%d warm=%d off=%d)",
			op, v.queued, v.activeSum, v.freeSum, v.poolSum, v.onlineCnt, v.warmingCnt, v.standbyCnt,
			queued, activeSum, freeSum, poolSum, onlineCnt, warmingCnt, standbyCnt)
	}
}

// auditDecisions pins each decision procedure against its linear scan
// at the current state.
func auditDecisions(t *testing.T, op int, fs *fleetSim, r workload.Request, now float64) {
	t.Helper()
	loads := linearLoads(fs, r)
	if lin, idx := (kvHeadroom{}).Place(r, loads), (kvHeadroom{}).placeIndexed(fs, r); lin != idx {
		t.Fatalf("op %d: kv-headroom linear %d, indexed %d", op, lin, idx)
	}
	if lin, idx := (leastTokensFit{}).Place(r, loads), (leastTokensFit{}).placeIndexed(fs, r); lin != idx {
		t.Fatalf("op %d: least-tokens-fit linear %d, indexed %d", op, lin, idx)
	}
	for start := 0; start <= len(fs.decoders); start++ {
		a, b := &roundRobinFit{next: start}, &roundRobinFit{next: start}
		if lin, idx := a.Place(r, loads), b.placeIndexed(fs, r); lin != idx || a.next != b.next {
			t.Fatalf("op %d: round-robin(next=%d) linear (%d,%d), indexed (%d,%d)",
				op, start, lin, a.next, idx, b.next)
		}
	}
	// Migration destination: roomiest fitting online replica != di.
	for di := range fs.decoders {
		lin, bestFree := -1, int64(-1)
		for i, o := range fs.decoders {
			if i == di || fs.state[i] != stateOnline || !o.eng.HasHeadroom(r) {
				continue
			}
			if free := o.eng.FreeKVBytes(); free > bestFree {
				lin, bestFree = i, free
			}
		}
		idx := -1
		fs.views.byFreeKV.ascend(func(i int) bool {
			if i == di || !fs.decoders[i].eng.HasHeadroom(r) {
				return true
			}
			idx = i
			return false
		})
		if lin != idx {
			t.Fatalf("op %d: migration dst from %d: linear %d, indexed %d", op, di, lin, idx)
		}
	}
	// Steal source: most backlogged decoding replica.
	lin := -1
	for si, s := range fs.decoders {
		if fs.state[si] != stateOnline || s.eng.Active() == 0 || s.eng.Pending() == 0 {
			continue
		}
		if lin < 0 || s.eng.Pending() > fs.decoders[lin].eng.Pending() {
			lin = si
		}
	}
	if idx := fs.views.stealSrc.first(); lin != idx {
		t.Fatalf("op %d: steal source linear %d, indexed %d", op, lin, idx)
	}
	// Drain victim: highest-index idle online replica.
	lin = -1
	for i := len(fs.decoders) - 1; i >= 0; i-- {
		if fs.state[i] == stateOnline && fs.decoders[i].eng.Idle() &&
			fs.incoming[i] == 0 && fs.landing[i] == 0 {
			lin = i
			break
		}
	}
	if idx := fs.views.drainable.last(); lin != idx {
		t.Fatalf("op %d: drain victim linear %d, indexed %d", op, lin, idx)
	}
	// Provision target: lowest-index standby.
	lin = -1
	for i := range fs.decoders {
		if fs.state[i] == stateOffline {
			lin = i
			break
		}
	}
	if idx := fs.views.standby.first(); lin != idx {
		t.Fatalf("op %d: provision target linear %d, indexed %d", op, lin, idx)
	}
	// AutoscaleView: the O(1) fold against the per-replica scan.
	want := AutoscaleView{Now: now, SLO: fs.cfg.SLO, Held: fs.held.len()}
	var free, pool int64
	for i, d := range fs.decoders {
		switch fs.state[i] {
		case stateOnline:
			want.Online++
			want.Queued += d.eng.Pending()
			want.Active += d.eng.Active()
			free += d.eng.FreeKVBytes()
			pool += d.eng.KVPoolBytes()
			if d.eng.Idle() && fs.incoming[i] == 0 && fs.landing[i] == 0 {
				want.IdleOnline++
			}
		case stateWarming:
			want.Warming++
		case stateOffline:
			want.Standby++
		case stateFailed:
			want.Failed++
		}
	}
	if pool > 0 {
		want.FreeKVFrac = float64(free) / float64(pool)
	}
	want.Waiting = len(fs.waiting)
	want.OldestArrival = math.Inf(1)
	for _, rec := range fs.waiting {
		if w := now - rec.arrival; w > want.OldestWaitSeconds {
			want.OldestWaitSeconds = w
		}
		if rec.arrival < want.OldestArrival {
			want.OldestArrival = rec.arrival
		}
	}
	if got := fs.view(now); got != want {
		t.Fatalf("op %d: view %+v, want %+v", op, got, want)
	}
}

// TestViewsOracle is the per-decision oracle: a randomized driver takes
// a mixed-budget autoscaled fleet through placements, engine steps
// (with preemption-driven migrations), event landings, provisions,
// drains and steals, auditing every index and every decision procedure
// against the linear scans after each operation.
func TestViewsOracle(t *testing.T) {
	cfg := Config{
		Fleet: []ReplicaSpec{
			{System: testSystem(), Count: 3, Role: RoleUnified, Min: 2, WarmupSeconds: 0.02},
			{System: tightSystem(), Count: 3, Role: RoleUnified, Min: 1},
		},
		Interconnect: timing.DefaultInterconnect(),
		Migrate:      true,
		Steal:        true,
		Autoscaler:   NewSLOScaler(),
		SLO:          SLO{TTFT: 1, TBT: 0.2},
		SingleStep:   true,
	}
	fs, err := newFleetSim(cfg, 512)
	if err != nil {
		t.Fatal(err)
	}
	ctx := t.Context()
	s := uint64(2026)
	next := func(m int) int {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		return int(s % uint64(m))
	}
	now := 0.0
	id := 0
	probes := []workload.Request{
		{ID: 1 << 20, Context: 16, Decode: 8},
		{ID: 1<<20 + 1, Context: 400, Decode: 2800},
	}
	for op := 0; op < 700; op++ {
		switch c := next(100); {
		case c < 40: // arrive: the unified routeArrival flow
			id++
			now += 0.001 * float64(next(8))
			req := workload.Request{ID: id, Context: 16 + next(300), Decode: 4 + next(48)}
			if next(6) == 0 {
				req.Decode = 2000 + next(1000) // pressure the tight pool
			}
			rec := &record{req: req, arrival: now, replica: -1}
			fs.recs[req.ID] = rec
			fs.waiting[req.ID] = rec
			fs.waitq.pushBack(rec)
			fs.autoscale(now)
			if dst := fs.place(req); dst >= 0 {
				fs.localPrefill(dst, rec, now)
			} else {
				fs.held.pushBack(heldReq{rec: rec, needsPrefill: true})
			}
		case c < 65: // step one busy replica
			busy := make([]int, 0, len(fs.decoders))
			for i, d := range fs.decoders {
				if !d.eng.Idle() {
					busy = append(busy, i)
				}
			}
			if len(busy) == 0 {
				continue
			}
			i := busy[next(len(busy))]
			d := fs.decoders[i]
			res, err := fs.step(ctx, &d.replica, math.Inf(1))
			if err != nil {
				t.Fatalf("op %d: step replica %d: %v", op, i, err)
			}
			if d.clock > now {
				now = d.clock
			}
			if err := fs.onStep(i, res); err != nil {
				t.Fatalf("op %d: onStep: %v", op, err)
			}
			if err := fs.react(now); err != nil {
				t.Fatalf("op %d: react: %v", op, err)
			}
		case c < 80: // land pending events in time order
			for fs.events.Len() > 0 {
				e := heap.Pop(&fs.events).(*event)
				if e.kind == evReady {
					continue
				}
				if e.at > now {
					now = e.at
				}
				if err := fs.dispatch(ctx, e); err != nil {
					// A delayed migration/steal landing can find its
					// destination full; real runs dispatch promptly. The
					// request is dropped, the views stay consistent.
					if e.kind != evMigrated && e.kind != evStolen {
						t.Fatalf("op %d: dispatch kind %d: %v", op, int(e.kind), err)
					}
				}
			}
		case c < 87:
			fs.provision(now, 1+next(2))
		case c < 94:
			fs.drainIdle(now, 1+next(2))
		default:
			fs.trySteal(now)
		}
		auditViews(t, op, fs)
		auditDecisions(t, op, fs, probes[op%len(probes)], now)
	}
}

// TestPickPrefillMatchesLinear pins the prefill-server index against
// the earliest-free scan as servers take staggered prompts.
func TestPickPrefillMatchesLinear(t *testing.T) {
	cfg := Config{
		Fleet: []ReplicaSpec{
			{System: testSystem(), Count: 4, Role: RolePrefill},
			{System: testSystem(), Count: 1, Role: RoleDecode},
		},
		Interconnect: timing.DefaultInterconnect(),
	}
	fs, err := newFleetSim(cfg, 64)
	if err != nil {
		t.Fatal(err)
	}
	s := uint64(5)
	next := func(m int) int {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		return int(s % uint64(m))
	}
	now := 0.0
	for op := 0; op < 200; op++ {
		lin := 0
		for pi := 1; pi < len(fs.prefills); pi++ {
			if fs.prefills[pi].free < fs.prefills[lin].free {
				lin = pi
			}
		}
		got := fs.pickPrefill()
		if got != lin {
			t.Fatalf("op %d: pickPrefill %d, want %d", op, got, lin)
		}
		p := fs.prefills[got]
		p.serve(now, 64+next(2048))
		fs.touchPrefill(got, p)
		now += 0.001 * float64(next(5))
	}
}

// TestHeldQueueChurn floods a deliberately starved single-replica fleet
// so well over a thousand requests pass through the global held queue
// — the hold/retry pattern that was O(n²) on the slice-backed queue —
// and requires strict FCFS service to completion.
func TestHeldQueueChurn(t *testing.T) {
	small := testSystem()
	// One admitted request's horizon nearly fills the tiny pool, so the
	// replica serves one request at a time and every arrival after the
	// first admission is held until a completion frees the pool.
	small.KVBudgetBytes = 40 << 20
	const n = 1200
	arr := make([]workload.Arrival, n)
	for i := range arr {
		arr[i] = workload.Arrival{At: float64(i) * 1e-4, Req: workload.Request{ID: i + 1, Context: 16, Decode: 50}}
	}
	rep := run(t, Config{
		Fleet: []ReplicaSpec{{System: small, Count: 1, Role: RoleUnified}},
		SLO:   SLO{TTFT: 1000, TBT: 1000},
	}, arr)
	if rep.Requests != n {
		t.Fatalf("served %d of %d", rep.Requests, n)
	}
	if rep.Fleet.Held < n/2 {
		t.Fatalf("held only %d of %d: the scenario did not churn the global queue", rep.Fleet.Held, n)
	}
}
