package serve

import (
	"context"
	"fmt"

	"pimphony/internal/cluster"
	"pimphony/internal/sweep"
	"pimphony/internal/tablefmt"
	"pimphony/internal/workload"
)

// CurvePoint is one cell of a latency–throughput sweep: a load-balancing
// policy serving a Poisson (or replayed) arrival schedule at the given
// rate across a replica count.
type CurvePoint struct {
	Policy   string  // a PolicyNames() entry
	Replicas int     // decode engines behind the load balancer
	Rate     float64 // offered arrival rate in requests/second
}

// CurveTable evaluates every sweep point — each an independent serving
// simulation — through the parallel sweep engine and renders the
// latency–throughput table: goodput and SLO attainment next to
// p50/p95/p99 TTFT and TBT (milliseconds). mkArrivals builds the
// arrival schedule for a rate and must be deterministic, so the table
// is byte-identical at any sweep parallelism. The cmd/pimphony-serve
// CLI and the "serve" experiment driver both render through here.
func CurveTable(ctx context.Context, title string, sys cluster.Config, pts []CurvePoint, slo SLO,
	includePrefill bool, mkArrivals func(rate float64) ([]workload.Arrival, error),
	opts ...sweep.Option) (*tablefmt.Table, error) {
	t := tablefmt.New(title,
		"policy", "repl", "req/s", "tok/s", "goodput", "slo-met%",
		"ttft-p50", "ttft-p95", "ttft-p99", "tbt-p50", "tbt-p95", "tbt-p99")
	rows, err := sweep.Rows(ctx, pts, func(ctx context.Context, p CurvePoint) ([]any, error) {
		pol, err := PolicyByName(p.Policy)
		if err != nil {
			return nil, err
		}
		arr, err := mkArrivals(p.Rate)
		if err != nil {
			return nil, err
		}
		rep, err := Run(ctx, Config{
			System:         sys,
			Replicas:       p.Replicas,
			Policy:         pol,
			SLO:            slo,
			IncludePrefill: includePrefill,
		}, arr)
		if err != nil {
			return nil, fmt.Errorf("%s x%d @ %g req/s: %w", p.Policy, p.Replicas, p.Rate, err)
		}
		ms := func(v float64) float64 { return 1e3 * v }
		return []any{p.Policy, p.Replicas, p.Rate, rep.Throughput, rep.Goodput, 100 * rep.SLOMet,
			ms(rep.TTFT.P50), ms(rep.TTFT.P95), ms(rep.TTFT.P99),
			ms(rep.TBT.P50), ms(rep.TBT.P95), ms(rep.TBT.P99)}, nil
	}, opts...)
	if err != nil {
		return nil, err
	}
	for _, r := range rows {
		t.AddRow(r...)
	}
	return t, nil
}

// CapacityPoint is one cell of a Static-vs-DPA capacity sweep: an
// allocation scheme serving an arrival schedule at the given rate
// across a replica count, all at the same per-replica KV budget.
type CapacityPoint struct {
	Alloc    string  // "static" or "dpa"
	Replicas int     // decode engines behind the load balancer
	Rate     float64 // offered arrival rate in requests/second
}

// CapacityTable renders the online Static-vs-DPA capacity gap: every
// sweep point runs the same arrival schedule on the same system with
// only the KV allocation scheme toggled (sys.Tech.DPA), and the table
// reports how admission, preemption and the live/reserved high-water
// marks translate into latency and goodput. mkArrivals must be
// deterministic, so the table is byte-identical at any sweep
// parallelism. The cmd/pimphony-serve -capacity mode and the
// "capacity" experiment driver both render through here.
func CapacityTable(ctx context.Context, title string, sys cluster.Config, policy string,
	pts []CapacityPoint, slo SLO, mkArrivals func(rate float64) ([]workload.Arrival, error),
	opts ...sweep.Option) (*tablefmt.Table, error) {
	t := tablefmt.New(title,
		"alloc", "repl", "req/s", "max-act", "preempt", "blocked-s", "recomp-s",
		"peak-live-gib", "peak-resv-gib", "tok/s", "goodput", "slo-met%",
		"ttft-p95", "tbt-p95")
	rows, err := sweep.Rows(ctx, pts, func(ctx context.Context, p CapacityPoint) ([]any, error) {
		cfg := sys
		switch p.Alloc {
		case "static":
			cfg.Tech.DPA = false
		case "dpa":
			cfg.Tech.DPA = true
		default:
			return nil, fmt.Errorf("serve: unknown allocator %q (static, dpa)", p.Alloc)
		}
		pol, err := PolicyByName(policy)
		if err != nil {
			return nil, err
		}
		arr, err := mkArrivals(p.Rate)
		if err != nil {
			return nil, err
		}
		rep, err := Run(ctx, Config{System: cfg, Replicas: p.Replicas, Policy: pol, SLO: slo}, arr)
		if err != nil {
			return nil, fmt.Errorf("%s x%d @ %g req/s: %w", p.Alloc, p.Replicas, p.Rate, err)
		}
		gib := func(b int64) float64 { return float64(b) / float64(1<<30) }
		ms := func(v float64) float64 { return 1e3 * v }
		c := rep.Capacity
		return []any{p.Alloc, p.Replicas, p.Rate, c.MaxActive, c.Preemptions,
			c.BlockedSeconds, c.RecomputeSeconds, gib(c.PeakLiveBytes), gib(c.PeakReservedBytes),
			rep.Throughput, rep.Goodput, 100 * rep.SLOMet,
			ms(rep.TTFT.P95), ms(rep.TBT.P95)}, nil
	}, opts...)
	if err != nil {
		return nil, err
	}
	for _, r := range rows {
		t.AddRow(r...)
	}
	return t, nil
}
