package serve

import (
	"context"
	"fmt"

	"pimphony/internal/cluster"
	"pimphony/internal/sweep"
	"pimphony/internal/tablefmt"
	"pimphony/internal/workload"
)

// CurvePoint is one cell of a latency–throughput sweep: a load-balancing
// policy serving a Poisson (or replayed) arrival schedule at the given
// rate across a replica count.
type CurvePoint struct {
	Policy   string  // a PolicyNames() entry
	Replicas int     // decode engines behind the load balancer
	Rate     float64 // offered arrival rate in requests/second
}

// CurveTable evaluates every sweep point — each an independent serving
// simulation — through the parallel sweep engine and renders the
// latency–throughput table: goodput and SLO attainment next to
// p50/p95/p99 TTFT and TBT (milliseconds). mkArrivals builds the
// arrival schedule for a rate and must be deterministic, so the table
// is byte-identical at any sweep parallelism. The cmd/pimphony-serve
// CLI and the "serve" experiment driver both render through here.
func CurveTable(ctx context.Context, title string, sys cluster.Config, pts []CurvePoint, slo SLO,
	includePrefill bool, mkArrivals func(rate float64) ([]workload.Arrival, error),
	opts ...sweep.Option) (*tablefmt.Table, error) {
	t := tablefmt.New(title,
		"policy", "repl", "req/s", "tok/s", "goodput", "slo-met%",
		"ttft-p50", "ttft-p95", "ttft-p99", "tbt-p50", "tbt-p95", "tbt-p99")
	rows, err := sweep.Rows(ctx, pts, func(ctx context.Context, p CurvePoint) ([]any, error) {
		pol, err := PolicyByName(p.Policy)
		if err != nil {
			return nil, err
		}
		arr, err := mkArrivals(p.Rate)
		if err != nil {
			return nil, err
		}
		rep, err := Run(ctx, Config{
			System:         sys,
			Replicas:       p.Replicas,
			Policy:         pol,
			SLO:            slo,
			IncludePrefill: includePrefill,
		}, arr)
		if err != nil {
			return nil, fmt.Errorf("%s x%d @ %g req/s: %w", p.Policy, p.Replicas, p.Rate, err)
		}
		ms := func(v float64) float64 { return 1e3 * v }
		return []any{p.Policy, p.Replicas, p.Rate, rep.Throughput, rep.Goodput, 100 * rep.SLOMet,
			ms(rep.TTFT.P50), ms(rep.TTFT.P95), ms(rep.TTFT.P99),
			ms(rep.TBT.P50), ms(rep.TBT.P95), ms(rep.TBT.P99)}, nil
	}, opts...)
	if err != nil {
		return nil, err
	}
	for _, r := range rows {
		t.AddRow(r...)
	}
	return t, nil
}
