// Autoscaling oracles: a zero-warm-up always-scale policy must
// reproduce the fixed fleet byte-for-byte (the anchor pinning the
// autoscaler to the spine's equivalence guarantees), warm-up must
// delay capacity by exactly the configured seconds, the SLO policy
// must drain idle replicas and re-provision under pressure, and
// autoscaled runs must stay byte-identical across leap granularity.
package serve_test

import (
	"testing"

	"pimphony/internal/serve"
	"pimphony/internal/simtest"
	"pimphony/internal/timing"
	"pimphony/internal/workload"
)

// autoFleet is the shared autoscaling test fleet: three unified
// replicas of one spec.
func autoFleet(min int, warmup float64) []serve.ReplicaSpec {
	return []serve.ReplicaSpec{
		{System: simtest.System("pim-dpa"), Count: 3, Role: serve.RoleUnified, Min: min, WarmupSeconds: warmup},
	}
}

// normalizeScale clears the scale bookkeeping that legitimately
// differs between a fixed fleet and an autoscaled one that converged
// to the same serving behaviour.
func normalizeScale(rep *serve.Report) {
	if rep.Fleet != nil {
		rep.Fleet.ScaleUps = 0
		rep.Fleet.ScaleEvents = nil
	}
}

// TestAutoscaleMaxZeroWarmupEqualsFixed pins the regression the rest
// of the autoscaler hangs off: MaxScaler with zero warm-up and Min 0
// provisions the whole fleet at the first arrival's decision boundary,
// before placement, and from then on every timestamp — and therefore
// the whole report — is byte-identical to the fixed fleet. Covered for
// both the unified fleet (placement at arrival) and the disaggregated
// one (placement at handoff landing, stealing and migration live).
func TestAutoscaleMaxZeroWarmupEqualsFixed(t *testing.T) {
	poisson, err := simtest.PoissonSchedule(16, 20, 7)
	if err != nil {
		t.Fatal(err)
	}
	tight, err := simtest.TightSchedule(10)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		arr  []workload.Arrival
		cfg  func() serve.Config
	}{
		{"unified", poisson, func() serve.Config {
			return serve.Config{
				Fleet: autoFleet(0, 0),
				SLO:   serve.SLO{TTFT: 1, TBT: 0.2},
			}
		}},
		{"disaggregated", tight, func() serve.Config {
			return serve.Config{
				Fleet: []serve.ReplicaSpec{
					{System: simtest.System("pim-dpa"), Count: 1, Role: serve.RolePrefill},
					{System: simtest.System("pim-tight"), Count: 2, Role: serve.RoleDecode},
				},
				Interconnect: timing.DefaultInterconnect(),
				Migrate:      true,
				Steal:        true,
				SLO:          serve.SLO{TTFT: 1, TBT: 0.2},
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fixed := mustRun(t, tc.cfg(), tc.arr)
			auto := tc.cfg()
			auto.Autoscaler = serve.MaxScaler{}
			scaled := mustRun(t, auto, tc.arr)
			simtest.CheckInvariants(t, scaled, tc.arr)
			if got, want := scaled.Fleet.ScaleUps, scaled.Fleet.DecodeReplicas-minOnline(auto.Fleet); got != want {
				t.Errorf("ScaleUps = %d, want %d (everything above Min)", got, want)
			}
			normalizeScale(fixed)
			normalizeScale(scaled)
			if a, b := simtest.Fingerprint(fixed), simtest.Fingerprint(scaled); a != b {
				t.Errorf("zero-warm-up MaxScaler diverged from the fixed fleet")
			}
		})
	}
}

// minOnline sums the decode-capable Min counts of a fleet.
func minOnline(fleet []serve.ReplicaSpec) int {
	n := 0
	for _, s := range fleet {
		if s.Role != serve.RolePrefill {
			n += s.Min
		}
	}
	return n
}

// TestAutoscaleWarmupDelaysCapacity: with a warm-up, MaxScaler's
// provisions land exactly WarmupSeconds after the first arrival's
// decision boundary, and the fleet is charged for strictly less
// replica time than the fixed pool.
func TestAutoscaleWarmupDelaysCapacity(t *testing.T) {
	arr, err := simtest.PoissonSchedule(16, 20, 7)
	if err != nil {
		t.Fatal(err)
	}
	const warmup = 2.5
	cfg := serve.Config{
		Fleet:      autoFleet(1, warmup),
		SLO:        serve.SLO{TTFT: 1, TBT: 0.2},
		Autoscaler: serve.MaxScaler{},
	}
	rep := mustRun(t, cfg, arr)
	simtest.CheckInvariants(t, rep, arr)
	st := rep.Fleet
	if st.ScaleUps != 2 || len(st.ScaleEvents) != 2 {
		t.Fatalf("ScaleUps %d, %d events; want both standbys provisioned", st.ScaleUps, len(st.ScaleEvents))
	}
	for i, ev := range st.ScaleEvents {
		if want := arr[0].At + warmup; ev.At != want {
			t.Errorf("provision %d landed at t=%g, want first-arrival decision + warm-up = %g", i, ev.At, want)
		}
		if ev.Delta != 1 || ev.Online != 2+i {
			t.Errorf("provision %d: delta %d online %d, want +1 reaching %d", i, ev.Delta, ev.Online, 2+i)
		}
	}
	if fixedSecs := float64(st.DecodeReplicas) * rep.MakespanSeconds; rep.Energy.ReplicaSeconds >= fixedSecs {
		t.Errorf("ReplicaSeconds %g not below the fixed pool's %g despite warming starts", rep.Energy.ReplicaSeconds, fixedSecs)
	}
	if st.AvgOnlineReplicas >= float64(st.DecodeReplicas) {
		t.Errorf("AvgOnlineReplicas %g, want below %d", st.AvgOnlineReplicas, st.DecodeReplicas)
	}
}

// TestAutoscaleSLODrainLifecycle drives the full lifecycle: a burst
// provisions under TTFT pressure, the quiet valley drains idle
// replicas (down to zero included), and late arrivals re-provision
// rather than stalling. The scale timeline must be self-consistent.
func TestAutoscaleSLODrainLifecycle(t *testing.T) {
	arr, err := simtest.PoissonSchedule(12, 30, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Three lone arrivals deep in the valley: each dispatch is a quiet
	// decision boundary (drains fire), and placement afterwards may
	// find nothing online (the re-provision path).
	last := arr[len(arr)-1].At
	for i := 0; i < 3; i++ {
		req := arr[0].Req
		req.ID = 10000 + i
		arr = append(arr, workload.Arrival{Req: req, At: last + 30 + 20*float64(i)})
	}
	sc := serve.NewSLOScaler()
	sc.CooldownSeconds = 1
	cfg := serve.Config{
		Fleet:      autoFleet(1, 0.5),
		SLO:        serve.SLO{TTFT: 1, TBT: 0.2},
		Autoscaler: sc,
	}
	rep := mustRun(t, cfg, arr)
	simtest.CheckInvariants(t, rep, arr)
	st := rep.Fleet
	if st.ScaleUps == 0 {
		t.Error("burst at 30 req/s on one online replica never provisioned")
	}
	if st.Drains == 0 {
		t.Error("quiet valley never drained an idle replica")
	}
	online := minOnline(cfg.Fleet)
	for i, ev := range st.ScaleEvents {
		if i > 0 && ev.At < st.ScaleEvents[i-1].At {
			t.Fatalf("scale timeline out of order at %d: %g after %g", i, ev.At, st.ScaleEvents[i-1].At)
		}
		online += ev.Delta
		if online != ev.Online {
			t.Fatalf("event %d: running online count %d, event says %d", i, online, ev.Online)
		}
		if online < 0 || online > st.DecodeReplicas {
			t.Fatalf("event %d: online count %d outside [0, %d]", i, online, st.DecodeReplicas)
		}
	}
	if st.AvgOnlineReplicas >= float64(st.DecodeReplicas) {
		t.Errorf("AvgOnlineReplicas %g, want below the fixed %d", st.AvgOnlineReplicas, st.DecodeReplicas)
	}
	if rep.Energy.ReplicaSeconds >= float64(st.DecodeReplicas)*rep.MakespanSeconds {
		t.Errorf("autoscaled ReplicaSeconds %g not below the fixed pool's", rep.Energy.ReplicaSeconds)
	}
}

// TestAutoscaleSpineEquivalence: autoscaled runs ride the same
// exactness guarantees as everything else on the spine — single-step
// advancement and tighter leap horizons may not change a byte.
func TestAutoscaleSpineEquivalence(t *testing.T) {
	arr, err := simtest.PoissonSchedule(12, 30, 3)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(single bool, horizon int) string {
		sc := serve.NewSLOScaler()
		sc.CooldownSeconds = 1
		return fp(t, serve.Config{
			Fleet:       autoFleet(1, 0.5),
			SLO:         serve.SLO{TTFT: 1, TBT: 0.2},
			Autoscaler:  sc,
			SingleStep:  single,
			LeapHorizon: horizon,
		}, arr)
	}
	leap := mk(false, 0)
	if single := mk(true, 0); single != leap {
		t.Errorf("single-step autoscaled run diverged from leap advancement")
	}
	for _, horizon := range []int{1, 5} {
		if clamped := mk(false, horizon); clamped != leap {
			t.Errorf("LeapHorizon %d changed the autoscaled report", horizon)
		}
	}
}

// TestAutoscaleConfigErrors pins the validation surface.
func TestAutoscaleConfigErrors(t *testing.T) {
	bad := []serve.Config{
		// Autoscaler without a fleet.
		{System: simtest.System("pim-dpa"), Replicas: 2, Policy: serve.RoundRobin(), Autoscaler: serve.MaxScaler{}},
		// Min out of range.
		{Fleet: []serve.ReplicaSpec{{System: simtest.System("pim-dpa"), Count: 2, Min: 3}}},
		{Fleet: []serve.ReplicaSpec{{System: simtest.System("pim-dpa"), Count: 2, Min: -1}}},
		// Negative warm-up.
		{Fleet: []serve.ReplicaSpec{{System: simtest.System("pim-dpa"), Count: 2, WarmupSeconds: -1}}},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %d validated; want error", i)
		}
	}
}

// TestAutoscalerByName round-trips every listed policy and rejects
// unknown names.
func TestAutoscalerByName(t *testing.T) {
	for _, name := range serve.AutoscalerNames() {
		a, err := serve.AutoscalerByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if a.Name() != name {
			t.Errorf("AutoscalerByName(%q).Name() = %q", name, a.Name())
		}
	}
	if _, err := serve.AutoscalerByName("nope"); err == nil {
		t.Error("unknown autoscaler name accepted")
	}
}
