// Package serve is the online serving simulator: it feeds a timed
// arrival stream (internal/workload's Poisson or trace-replay schedules)
// into one or more continuous-batching decode replicas (cluster.Engine),
// routes each arrival through a pluggable load-balancing policy, and
// reports the SLO metrics a serving system is judged on — TTFT, TBT and
// end-to-end latency at p50/p95/p99, plus goodput (decode tokens per
// second from requests that met the SLO).
//
// The simulation is a discrete-event simulation on the shared spine
// (des.go): each replica advances its own clock by the duration of its
// decode iterations, and an arrival is routed only after every replica
// whose state the policy observes has simulated up to the arrival time
// — all of them for a load-aware policy, only the destination for a
// LoadOblivious one. Between events a replica does not step one
// iteration at a time — cluster.Engine.Leap fast-forwards a stable
// batch through its analytically computed event horizon in one call,
// and independent replicas advance concurrently through
// internal/sweep — but every optimization is exact: every per-token timestamp, and therefore
// every report, is bit-identical to the naive single-stepped
// sequential loop (Config.SingleStep pins this in tests). Everything
// is deterministic — same arrival schedule, same configuration, same
// report — which is what lets the latency–throughput tables in CI be
// byte-identical at any sweep parallelism.
//
// Metric definitions (all per request, in seconds):
//
//   - TTFT (time to first token): from arrival to the end of the first
//     decode iteration that includes the request, i.e. queueing delay +
//     one iteration; with Config.IncludePrefill it also adds the prompt
//     prefill time on the system's dense engine.
//   - TBT (time between tokens): the request's mean gap between
//     subsequent tokens, (completion - first token) / (tokens - 1),
//     over the tokens actually generated (a request whose KV cache hits
//     the context window is truncated, like a real serving system).
//   - E2E: from arrival to completion of the last token.
//   - Goodput: decode tokens of SLO-compliant requests / makespan,
//     where makespan runs from the first arrival to the last completion.
package serve

import (
	"context"
	"fmt"
	"math"

	"pimphony/internal/cluster"
	"pimphony/internal/energy"
	"pimphony/internal/timing"
	"pimphony/internal/workload"
)

// SLO is the latency target a request must meet to count toward
// goodput. Zero fields are not enforced.
type SLO struct {
	TTFT float64 // seconds from arrival to first token
	TBT  float64 // seconds between subsequent tokens (per-request mean)
}

// Met reports whether a request's latencies satisfy the SLO.
func (s SLO) Met(ttft, tbt float64) bool {
	if s.TTFT > 0 && ttft > s.TTFT {
		return false
	}
	if s.TBT > 0 && tbt > s.TBT {
		return false
	}
	return true
}

// Config describes one serving simulation.
type Config struct {
	// System is the replica template; every replica is an independent
	// cluster.System built from it. Every registered backend is
	// servable — PIM systems admit against their static/DPA allocator,
	// the GPU baseline against its paged pool (see
	// cluster.System.NewEngine).
	System cluster.Config
	// Replicas is the number of identical decode engines behind the
	// load balancer (>= 1).
	Replicas int
	// Policy routes arrivals to replicas. Each Run needs a fresh
	// instance (policies may keep state).
	Policy Policy
	// SLO classifies completed requests for the goodput metric.
	SLO SLO
	// IncludePrefill adds each request's prompt-processing time on the
	// system's dense engine (cluster.System.PrefillSeconds) to its TTFT
	// and E2E. The prefill is modelled as offloaded — it delays the
	// request's tokens but does not occupy the decode engine, the
	// disaggregation NeuPIMs and Hybe argue for.
	IncludePrefill bool
	// SingleStep forces the one-iteration-per-call engine path instead
	// of multi-step fast-forward (cluster.Engine.Leap). Reports are
	// identical either way — the fast-forward equivalence tests pin that
	// — so the knob exists for those tests and for debugging; production
	// runs leave it off and simulate the same traffic many times faster.
	SingleStep bool

	// Fleet, when non-empty, switches Run to the heterogeneous fleet
	// simulator: replicas are built from these specs (each with its own
	// backend, allocator technique and KV budget) instead of Replicas
	// copies of System, prefill and decode can run on different
	// replicas with an explicitly priced KV-transfer hop, and the
	// global scheduler (Placement, Migrate, Steal) replaces Policy.
	// System, Replicas, Policy and IncludePrefill are ignored in fleet
	// mode; see fleet.go.
	Fleet []ReplicaSpec
	// Interconnect prices every inter-replica KV movement in fleet mode
	// (prefill→decode handoffs, migrations, steals). The zero value is
	// an unusable fabric: fine for unified fleets (KV stays local and
	// migration/stealing simply never win), an error for disaggregated
	// ones (handoffs need a link).
	Interconnect timing.Interconnect
	// Placement places decode work on fleet replicas against fleet-wide
	// KV headroom (nil = KVHeadroom()). Like Policy, each Run needs a
	// fresh instance.
	Placement Placement
	// Migrate lets the fleet scheduler move a preempted request's KV to
	// another replica when the transfer is cheaper than the recompute
	// its re-admission would charge.
	Migrate bool
	// Steal lets idle decode replicas take queued zero-progress
	// requests from the most backlogged replica (prompt KV moves over
	// the interconnect).
	Steal bool
	// Autoscaler, when non-nil, lets the fleet's global scheduler grow
	// and shrink the online decode-replica set while the run plays out:
	// each spec starts with Min replicas online, the rest standby, and
	// scale-ups pay the spec's WarmupSeconds (see autoscale.go). Fleet
	// mode only; nil keeps every replica online for the whole run. Like
	// Policy, each Run needs a fresh instance.
	Autoscaler Autoscaler
	// LeapHorizon caps iterations per engine leap in fleet mode, so a
	// draining replica cannot run arbitrarily far past the next global
	// event (0 = the fleetLeapHorizon default). Reports are identical
	// at any value; only simulation granularity changes.
	LeapHorizon int
	// Faults injects deterministic replica failures — crashes, transient
	// slowdowns, interconnect degradation — compiled into explicit heap
	// events (see faults.go). Fleet mode only; nil or an empty plan
	// reproduces the fault-free run byte-for-byte.
	Faults *FaultPlan
}

// Validate reports configuration errors.
func (c *Config) Validate() error {
	if len(c.Fleet) > 0 {
		return c.validateFleet()
	}
	switch {
	case c.Replicas <= 0:
		return fmt.Errorf("serve: Replicas must be positive, got %d", c.Replicas)
	case c.Policy == nil:
		return fmt.Errorf("serve: Policy is required")
	case c.Autoscaler != nil:
		return fmt.Errorf("serve: Autoscaler requires fleet mode (set Fleet specs)")
	case c.Faults.active():
		return fmt.Errorf("serve: Faults require fleet mode (set Fleet specs)")
	}
	return nil
}

// Quantiles summarises one latency distribution.
type Quantiles struct {
	Mean, P50, P95, P99 float64
}

// quantiles computes nearest-rank percentiles over a sample, sorting xs
// in place (radix, O(len(xs))). tmp is optional scratch for the sort,
// reusable across calls; the mean accumulates in ascending order,
// exactly as the sort-then-sum fold it replaces.
func quantiles(xs, tmp []float64) Quantiles {
	if len(xs) == 0 {
		return Quantiles{}
	}
	radixSortFloat64(xs, tmp)
	var sum float64
	for _, x := range xs {
		sum += x
	}
	rank := func(p float64) float64 {
		i := int(math.Ceil(p*float64(len(xs)))) - 1
		if i < 0 {
			i = 0
		}
		return xs[i]
	}
	return Quantiles{Mean: sum / float64(len(xs)), P50: rank(0.50), P95: rank(0.95), P99: rank(0.99)}
}

// ReplicaStats is one replica's share of the work.
type ReplicaStats struct {
	Requests    int
	Tokens      int
	Steps       int
	BusySeconds float64
	// Utilization is the replica's PIM MAC utilization over its
	// attention phases.
	Utilization float64
	// MaxActive is the replica's largest concurrent admitted batch.
	MaxActive int
	// Preemptions counts requests evicted back to the queue when DPA
	// lazy growth exhausted the replica's pool mid-decode.
	Preemptions int
	// BlockedSeconds is decode time spent with at least one request
	// waiting in the queue (admission-blocked on KV capacity).
	BlockedSeconds float64
	// RecomputeSeconds is KV-rebuild time charged for re-admitting
	// preempted requests.
	RecomputeSeconds float64
	// PeakLiveBytes / PeakReservedBytes are the replica allocator's
	// high-water marks: bytes holding actual KV data vs bytes
	// unavailable to other requests (T_max reservations or DPA chunks).
	PeakLiveBytes     int64
	PeakReservedBytes int64
}

// CapacityStats aggregates the KV-capacity behaviour of one serving run
// — the online counterpart of the paper's Fig. 19 pool-utilization
// study, comparing what an allocation scheme reserved against what it
// actually used while admission and preemption played out.
type CapacityStats struct {
	// Alloc is the KV allocation scheme ("static" or "dpa").
	Alloc string
	// PoolBytes is the per-replica KV capacity budget.
	PoolBytes int64
	// PeakLiveBytes / PeakReservedBytes are the maxima across replicas.
	PeakLiveBytes     int64
	PeakReservedBytes int64
	// MaxActive is the largest concurrent admitted batch on any replica
	// — static T_max reservations cap this well below DPA at an equal
	// budget.
	MaxActive int
	// Preemptions and BlockedSeconds / RecomputeSeconds are summed
	// across replicas.
	Preemptions      int
	BlockedSeconds   float64
	RecomputeSeconds float64
}

// EnergyStats prices one serving run: the modeled device energy of the
// decode replicas and the provisioning cost of everything that was kept
// online, folded into the per-token production metrics (joules/token,
// cost/Mtok, goodput per dollar). Energy comes from the backends'
// module model (internal/energy; the GPU baseline prices no module
// energy, so its joules are zero by construction) and is charged at the
// grid electricity rate; provisioning comes from each replica's
// System.CostPerHour times the seconds it was online — which is where
// an autoscaled fleet earns its keep against a fixed one.
type EnergyStats struct {
	// DecodeJoules is the modeled decode energy across replicas, in
	// joules.
	DecodeJoules float64
	// JoulesPerToken is DecodeJoules per generated token (zero for
	// backends without an energy model).
	JoulesPerToken float64
	// ReplicaSeconds is the total decode-replica online time: replicas x
	// makespan for a fixed fleet, the provision-to-drain integral for an
	// autoscaled one.
	ReplicaSeconds float64
	// ProvisionDollars charges ReplicaSeconds (plus any dedicated
	// prefill servers, kept online for the whole run) at each replica's
	// CostPerHour; EnergyDollars charges DecodeJoules at the grid rate;
	// Dollars is their sum.
	ProvisionDollars float64
	EnergyDollars    float64
	Dollars          float64
	// CostPerMTok is Dollars per million generated tokens.
	CostPerMTok float64
	// GoodTokensPerDollar is the run's production metric: SLO-compliant
	// tokens per dollar spent.
	GoodTokensPerDollar float64
}

// Report is the outcome of one serving simulation.
type Report struct {
	Policy   string
	Replicas int
	// Requests is the number of requests served to completion (every
	// arrival, unless the simulation errored).
	Requests int
	// OfferedRate is the arrival schedule's empirical requests/second.
	OfferedRate float64
	// MakespanSeconds runs from the first arrival to the last
	// completion.
	MakespanSeconds float64
	// Throughput is decode tokens per second of makespan.
	Throughput float64
	// Goodput is decode tokens per second of makespan produced by
	// SLO-compliant requests (the LoL-PIM-style serving metric).
	Goodput float64
	// SLOMet is the fraction of requests that met the SLO.
	SLOMet float64
	// Tokens / GoodTokens are the generated decode tokens in total and
	// from SLO-compliant requests (the numerators of Throughput and
	// Goodput).
	Tokens, GoodTokens int
	// Latency distributions across completed requests.
	TTFT, TBT, E2E Quantiles
	// Capacity aggregates the KV-allocator behaviour across replicas.
	Capacity CapacityStats
	// Energy prices the run: modeled joules/token plus provisioning and
	// electricity dollars (see EnergyStats).
	Energy EnergyStats
	// PerReplica breaks the work down by replica.
	PerReplica []ReplicaStats
	// Fleet carries the fleet-mode extras — roles, transfer accounting,
	// scheduler actions, joules/token — and is nil for the load-balanced
	// path.
	Fleet *FleetStats
	// Faults carries the failure-and-recovery accounting — crashes,
	// retries, permanently failed requests, lost KV, downtime — and is
	// nil unless the run injected faults (see faults.go).
	Faults *FaultStats
}

// sim is the load-balanced path on the discrete-event spine: identical
// replicas, a Policy routing arrivals, and a synchronization discipline
// chosen by what the policy observes — a load-aware policy needs every
// replica advanced to the arrival time (syncBarrier), a LoadOblivious
// one only the destination (syncLazy).
type sim struct {
	spine
	cfg  Config
	lazy bool
	// loads is the per-arrival snapshot buffer, reused across dispatches
	// (valid only during the Policy.Pick call; in lazy mode it stays
	// zeroed, matching the empty snapshot LoadOblivious policies see).
	loads []Load
}

// onStep and idleWork are no-ops: the load balancer reacts to nothing
// between arrivals, and a drained schedule leaves no deferred work.
func (s *sim) onStep(int, cluster.StepResult) error { return nil }
func (s *sim) react(float64) error                  { return nil }
func (s *sim) idleWork() (bool, error)              { return false, nil }

// dispatch routes one arrival: snapshot every replica's load (barrier
// mode — the spine has already advanced them all to e.at) or none of
// them (lazy mode — only the destination is advanced, here), ask the
// Policy, and enqueue.
func (s *sim) dispatch(ctx context.Context, e *event) error {
	loads := s.loads
	if !s.lazy {
		for j, r := range s.replicas {
			loads[j] = Load{
				OutstandingTokens: r.eng.OutstandingTokens(),
				Active:            r.eng.Active(),
				Pending:           r.eng.Pending(),
				Clock:             r.clock,
			}
		}
	}
	idx := s.cfg.Policy.Pick(e.arr, loads)
	if idx < 0 || idx >= len(s.replicas) {
		return fmt.Errorf("serve: policy %s routed to replica %d of %d", s.cfg.Policy.Name(), idx, len(s.replicas))
	}
	if s.lazy {
		if err := s.advance(ctx, s.replicas[idx], e.at); err != nil {
			return err
		}
	}
	rec := e.rec
	rec.replica = idx
	if s.cfg.IncludePrefill {
		rec.prefill = s.replicas[idx].sys.PrefillSeconds(e.arr.Req.Context)
	}
	return s.replicas[idx].eng.Enqueue(e.arr.Req)
}

// Run serves a timed arrival schedule to completion and reports the SLO
// metrics. Arrivals must be sorted by At with unique request IDs; every
// request needs a positive Decode length. With Config.Fleet set, the
// heterogeneous fleet simulator serves the schedule instead (see
// fleet.go); everything below is the classic load-balanced path.
func Run(ctx context.Context, cfg Config, arrivals []workload.Arrival) (*Report, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(arrivals) == 0 {
		return nil, fmt.Errorf("serve: empty arrival schedule")
	}
	if len(cfg.Fleet) > 0 {
		return runFleet(ctx, cfg, arrivals)
	}
	s := &sim{cfg: cfg}
	_, s.lazy = cfg.Policy.(LoadOblivious)
	mode := syncBarrier
	if s.lazy {
		mode = syncLazy
	}
	s.spine = spine{
		tracker: tracker{recs: make(map[int]*record, len(arrivals)), singleStep: cfg.SingleStep},
		sync:    mode,
		sched:   s,
	}
	for i := 0; i < cfg.Replicas; i++ {
		sys, err := cluster.New(cfg.System)
		if err != nil {
			return nil, err
		}
		eng, err := sys.NewEngine()
		if err != nil {
			return nil, err
		}
		s.replicas = append(s.replicas, &replica{sys: sys, eng: eng})
	}
	s.loads = make([]Load, len(s.replicas))
	for i, a := range arrivals {
		if i > 0 && a.At < arrivals[i-1].At {
			return nil, fmt.Errorf("serve: arrivals not sorted at %d (%g after %g)", i, a.At, arrivals[i-1].At)
		}
		if _, dup := s.recs[a.Req.ID]; dup {
			return nil, fmt.Errorf("serve: duplicate request ID %d in schedule", a.Req.ID)
		}
		rec := &record{req: a.Req, arrival: a.At, replica: -1}
		s.recs[a.Req.ID] = rec
		s.pushArrival(rec, a)
	}
	if err := s.spine.run(ctx); err != nil {
		return nil, err
	}
	return s.report(arrivals)
}

// report folds the per-request records into the SLO metrics and prices
// the run: every classic-path replica is provisioned for the whole
// makespan.
func (s *sim) report(arrivals []workload.Arrival) (*Report, error) {
	rep, err := foldReport(s.recs, arrivals, s.cfg.SLO, s.cfg.Policy.Name(), s.replicas)
	if err != nil {
		return nil, err
	}
	secs := make([]float64, len(s.replicas))
	hourly := make([]float64, len(s.replicas))
	for i, r := range s.replicas {
		secs[i] = rep.MakespanSeconds
		hourly[i] = r.sys.CostPerHour()
	}
	priceReport(rep, secs, hourly, 0)
	return rep, nil
}

// foldReport turns per-request records and replica counters into a
// Report. The metric definitions are shared verbatim by the
// load-balanced and fleet paths — only how work reached a replica
// differs between them, never how its latencies are scored.
func foldReport(recs map[int]*record, arrivals []workload.Arrival, slo SLO, policyName string,
	replicas []*replica) (*Report, error) {
	rep := &Report{
		Policy:      policyName,
		Replicas:    len(replicas),
		Requests:    len(recs),
		OfferedRate: workload.OfferedRate(arrivals),
		PerReplica:  make([]ReplicaStats, len(replicas)),
	}
	firstArrival := arrivals[0].At
	var lastDone float64
	// One latency sample per request: size the sample buffers (and the
	// sort scratch shared by the three quantile folds) exactly once.
	ttfts := make([]float64, 0, len(arrivals))
	tbts := make([]float64, 0, len(arrivals))
	e2es := make([]float64, 0, len(arrivals))
	var goodTokens, allTokens int
	met := 0
	// Iterate in arrival order for deterministic accumulation.
	for _, a := range arrivals {
		rec := recs[a.Req.ID]
		if rec.failed {
			// Retry budget exhausted (faults.go): no latency sample, no
			// tokens, counts against SLO attainment via the denominator.
			continue
		}
		if rec.done == 0 {
			return nil, fmt.Errorf("serve: request %d never completed", a.Req.ID)
		}
		ttft := rec.first - rec.arrival + rec.prefill
		var tbt float64
		if rec.tokens > 1 {
			tbt = (rec.done - rec.first) / float64(rec.tokens-1)
		}
		e2e := rec.done - rec.arrival + rec.prefill
		ttfts = append(ttfts, ttft)
		tbts = append(tbts, tbt)
		e2es = append(e2es, e2e)
		allTokens += rec.tokens
		if slo.Met(ttft, tbt) {
			met++
			goodTokens += rec.tokens
		}
		if rec.done+rec.prefill > lastDone {
			lastDone = rec.done + rec.prefill
		}
		st := &rep.PerReplica[rec.replica]
		st.Requests++
		st.Tokens += rec.tokens
	}
	for i, r := range replicas {
		st := &rep.PerReplica[i]
		st.Steps = r.eng.Steps()
		st.BusySeconds = r.eng.BusySeconds()
		st.Utilization = r.eng.Utilization()
		st.MaxActive = r.eng.MaxActive()
		st.Preemptions = r.eng.Preemptions()
		st.BlockedSeconds = r.eng.BlockedSeconds()
		st.RecomputeSeconds = r.eng.RecomputeSeconds()
		st.PeakLiveBytes = r.eng.PeakLiveBytes()
		st.PeakReservedBytes = r.eng.PeakReservedBytes()

		c := &rep.Capacity
		c.Alloc = r.eng.AllocName()
		c.PoolBytes = r.eng.KVPoolBytes()
		if st.PeakLiveBytes > c.PeakLiveBytes {
			c.PeakLiveBytes = st.PeakLiveBytes
		}
		if st.PeakReservedBytes > c.PeakReservedBytes {
			c.PeakReservedBytes = st.PeakReservedBytes
		}
		if st.MaxActive > c.MaxActive {
			c.MaxActive = st.MaxActive
		}
		c.Preemptions += st.Preemptions
		c.BlockedSeconds += st.BlockedSeconds
		c.RecomputeSeconds += st.RecomputeSeconds
	}
	if lastDone < firstArrival {
		lastDone = firstArrival // every request failed; an empty makespan
	}
	rep.MakespanSeconds = lastDone - firstArrival
	if rep.MakespanSeconds > 0 {
		rep.Throughput = float64(allTokens) / rep.MakespanSeconds
		rep.Goodput = float64(goodTokens) / rep.MakespanSeconds
	}
	rep.Tokens = allTokens
	rep.GoodTokens = goodTokens
	rep.SLOMet = float64(met) / float64(len(recs))
	tmp := make([]float64, len(ttfts))
	rep.TTFT = quantiles(ttfts, tmp)
	rep.TBT = quantiles(tbts, tmp)
	rep.E2E = quantiles(e2es, tmp)
	// Decode energy, accumulated in replica index order (the float
	// addition order is pinned — the fleet tables hash it).
	var picoJoules float64
	for _, r := range replicas {
		ae, fe := r.eng.Energy()
		picoJoules += ae.Total() + fe.Total()
	}
	rep.Energy.DecodeJoules = picoJoules * 1e-12
	if allTokens > 0 {
		rep.Energy.JoulesPerToken = picoJoules * 1e-12 / float64(allTokens)
	}
	return rep, nil
}

// priceReport fills the dollar half of Report.Energy: decode replicas
// charged for their online seconds at their CostPerHour, plus any
// always-on extras (dedicated prefill servers), plus the modeled energy
// at the grid electricity rate.
func priceReport(rep *Report, onlineSeconds, dollarsPerHour []float64, extraDollars float64) {
	e := &rep.Energy
	for i, secs := range onlineSeconds {
		e.ReplicaSeconds += secs
		e.ProvisionDollars += secs / 3600 * dollarsPerHour[i]
	}
	e.ProvisionDollars += extraDollars
	e.EnergyDollars = energy.GridDollars(e.DecodeJoules)
	e.Dollars = e.ProvisionDollars + e.EnergyDollars
	if e.Dollars > 0 {
		if rep.Tokens > 0 {
			e.CostPerMTok = e.Dollars / float64(rep.Tokens) * 1e6
		}
		e.GoodTokensPerDollar = float64(rep.GoodTokens) / e.Dollars
	}
}
