// The discrete-event spine shared by the classic load-balanced
// simulator (serve.go) and the heterogeneous fleet simulator
// (fleet.go). Both paths run the same loop over one priority heap of
// typed events — arrivals, prefill handoffs, migration and steal
// landings, and replica-ready ticks — with every replica keeping an
// independent clock. What differs between the paths is only the
// synchronization discipline: how far other replicas must have
// simulated before an event may be dispatched. A replica synchronizes
// exactly when the scheduler genuinely observes cross-replica state,
// and never otherwise:
//
//   - syncBarrier (classic, load-aware policy): routing reads every
//     replica's live queue state, so all replicas advance to the
//     arrival time before it dispatches. Replicas share no state
//     between events, so the barrier advance runs them concurrently
//     (internal/sweep) with byte-identical results at any parallelism.
//   - syncLazy (classic, LoadOblivious policy): routing reads nothing,
//     so only the destination replica advances to the arrival time —
//     the others keep simulating in larger leaps and catch up when
//     they are next routed to (or at drain). Exact by the
//     leap-partitioning argument below.
//   - syncInterleaved (fleet): the global scheduler reacts to every
//     engine-call boundary (preemptions become migrations, completions
//     free headroom for held requests, idle replicas steal), so busy
//     replicas advance one engine call at a time in global clock
//     order. Each busy replica owns one evReady entry at its clock;
//     popping it advances that replica bounded by the next heap entry,
//     which is exactly "the earliest pending event or the
//     next-lagging replica's clock, whichever comes first".
//
// Exactness. Every per-token timestamp is bit-identical across
// disciplines and leap granularities because engine advancement
// composes: cluster.Engine.Leap prices the same per-iteration sequence
// of (batch, tokens) no matter where the until clamp partitions it,
// and tracker.apply replays IterSeconds one float addition at a time
// in iteration order. A partition boundary inserted where no enqueue,
// admission or retirement happens (the only thing lazy advancement
// removes) therefore changes which Leap call prices an iteration, but
// never what the iteration costs or when it ends. The equivalence
// suite (equiv_test.go) pins this across backends, allocators,
// policies, horizons and sweep parallelism.
package serve

import (
	"container/heap"
	"context"
	"fmt"
	"math"

	"pimphony/internal/cluster"
	"pimphony/internal/sweep"
	"pimphony/internal/workload"
)

// eventKind labels one entry in the spine's heap.
type eventKind int

const (
	// evArrival: a request enters the system at its schedule time.
	evArrival eventKind = iota
	// evHandoff: a prompt prefill finished and (for disaggregated
	// fleets) its KV landed; the request is ready to decode.
	evHandoff
	// evMigrated: a preempted request's live KV landed on its migration
	// destination.
	evMigrated
	// evStolen: a stolen queued request's prompt KV landed on the idle
	// replica that pulled it.
	evStolen
	// evProvision: an autoscaled standby replica's warm-up finished; it
	// joins the online pool at this timestamp (fleet autoscaling only,
	// see autoscale.go). dst is the replica index.
	evProvision
	// evDrain: the autoscaler retired an idle online replica; it leaves
	// the online pool at this timestamp (fleet autoscaling only). dst
	// is the replica index.
	evDrain
	// evReady: a busy replica's next engine-call boundary — its clock.
	// Popping it advances that replica by one (horizon-clamped) engine
	// call; a leap cut short by Engine.SetHorizon simply re-arms the
	// entry at the new clock, so horizon expiry needs no separate
	// bookkeeping. Only the interleaved discipline arms these.
	evReady
	// evFail: a fault chain fires on a replica (crash, transient
	// slowdown or link degradation; see faults.go). gen is the chain
	// index, dst the replica (fleet fault injection only).
	evFail
	// evRecover: a fault chain's down interval ends; the replica (or
	// the fabric) returns to health and the chain re-arms its next
	// failure. gen is the chain index, dst the replica.
	evRecover
	// evRetry: a request lost to a crash re-enters routing after its
	// deterministic backoff. gen carries the tokens it had generated
	// before the loss (recomputed on re-admission).
	evRetry
	// evScaleEval: an autoscaler-requested re-evaluation deadline
	// (cooldown expiry, oldest-wait threshold crossing). Explicit timer
	// events are what make autoscaled runs leap-invariant: scale
	// decisions fire at heap-event boundaries, which are identical at
	// every leap granularity, instead of at engine-call density.
	evScaleEval
)

// event is one scheduled entry in the spine's heap.
type event struct {
	at   float64
	seq  int // push order among non-ready events; FIFO tie-break
	kind eventKind
	rec  *record
	arr  workload.Arrival // evArrival: the arrival being routed
	gen  int              // evMigrated: tokens already generated (migration progress)
	dst  int              // target decoder index; -1 = placement decides at dispatch

	// evReady fields: the replica the entry belongs to and the arming
	// generation — a stale generation means the replica was re-armed
	// (its clock moved) and the entry is discarded on pop.
	replica int
	rgen    int
}

// eventQueue is a min-heap on (at, kind class, seq | replica): at equal
// timestamps global events dispatch before any replica advances past
// them (the scheduler must see the event at that boundary), events keep
// FIFO push order among themselves, and ready entries tie-break to the
// lowest replica index — the same total order the sequential
// lagging-replica scan produced.
type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	a, b := q[i], q[j]
	if a.at != b.at {
		return a.at < b.at
	}
	if ar, br := a.kind == evReady, b.kind == evReady; ar != br {
		return br // the non-ready event first
	}
	if a.kind == evReady {
		return a.replica < b.replica
	}
	return a.seq < b.seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// syncMode selects the spine's synchronization discipline.
type syncMode int

const (
	syncBarrier syncMode = iota
	syncLazy
	syncInterleaved
)

// scheduler is the policy half a simulator plugs into the spine: how
// events are applied and how the global scheduler reacts to progress.
// The spine owns when replicas advance; the scheduler owns where work
// goes.
type scheduler interface {
	// dispatch applies one popped non-ready event at its timestamp.
	dispatch(ctx context.Context, e *event) error
	// onStep reacts to one replica engine call (the fleet scheduler
	// turns preemptions into migrations here).
	onStep(replica int, res cluster.StepResult) error
	// react runs after every engine call and event dispatch, at that
	// boundary's time (the fleet scheduler retries held requests and
	// considers steals here).
	react(now float64) error
	// idleWork runs when the heap is drained and every replica is
	// idle; it reports whether new work was created (the fleet's held
	// queue being retried) or the simulation is complete.
	idleWork() (bool, error)
}

// spine is the discrete-event core: the per-request tracker, the
// replica set with independent clocks, and the event heap.
type spine struct {
	tracker
	replicas []*replica
	sync     syncMode
	sched    scheduler
	events   eventQueue
	seq      int
	readyGen []int
	// clock is the scheduler's notion of now: the latest dispatched
	// event time.
	clock float64
}

// pushArrival schedules a request's entry into the system.
func (s *spine) pushArrival(rec *record, a workload.Arrival) {
	s.seq++
	heap.Push(&s.events, &event{at: a.At, seq: s.seq, kind: evArrival, rec: rec, arr: a, dst: -1})
}

// push schedules a handoff/migration/steal landing.
func (s *spine) push(kind eventKind, rec *record, gen, dst int, at float64) {
	s.seq++
	heap.Push(&s.events, &event{at: at, seq: s.seq, kind: kind, rec: rec, gen: gen, dst: dst})
}

// wake (re-)arms a replica's ready entry at its current clock,
// invalidating any previous entry. Call it whenever a replica gains
// work or its clock moves; arming an already-armed replica is safe.
// Only the interleaved discipline uses ready entries.
func (s *spine) wake(i int) {
	if s.sync != syncInterleaved || s.replicas[i].eng.Idle() {
		return
	}
	s.readyGen[i]++
	heap.Push(&s.events, &event{at: s.replicas[i].clock, kind: evReady, replica: i, rgen: s.readyGen[i]})
}

// busyCount reports how many replicas still hold work.
func (s *spine) busyCount() int {
	n := 0
	for _, r := range s.replicas {
		if !r.eng.Idle() {
			n++
		}
	}
	return n
}

// syncIdle jumps idle replicas' clocks forward to t (never backward).
func (s *spine) syncIdle(t float64) {
	for _, r := range s.replicas {
		if r.eng.Idle() && r.clock < t {
			r.clock = t
		}
	}
}

// advanceAll advances every replica up to time t. Replicas share no
// state between events, so they advance concurrently through the sweep
// engine; every load snapshot — and therefore every table — is
// byte-identical to the sequential loop at any parallelism.
func (s *spine) advanceAll(ctx context.Context, t float64) error {
	if len(s.replicas) == 1 {
		return s.advance(ctx, s.replicas[0], t)
	}
	_, err := sweep.Run(ctx, s.replicas, func(ctx context.Context, r *replica) (struct{}, error) {
		return struct{}{}, s.advance(ctx, r, t)
	})
	return err
}

// run is the event loop. It pops the globally earliest entry: a ready
// entry advances its replica by one engine call bounded by the next
// entry, a global event is dispatched once the discipline's
// synchronization requirement holds — by construction for interleaved
// mode (a lagging busy replica's ready entry sorts first), by an
// explicit concurrent barrier advance for barrier mode, and vacuously
// for lazy mode (the dispatch advances its destination itself).
func (s *spine) run(ctx context.Context) error {
	for {
		if s.events.Len() == 0 {
			if s.busyCount() > 0 {
				if s.sync == syncInterleaved {
					return fmt.Errorf("serve: event heap drained with %d replicas still busy", s.busyCount())
				}
				// Classic drain: no more arrivals, run everything out.
				if err := s.advanceAll(ctx, math.Inf(1)); err != nil {
					return err
				}
			}
			made, err := s.sched.idleWork()
			if err != nil {
				return err
			}
			if made {
				continue
			}
			return nil
		}
		e := s.events[0]
		if e.kind == evReady {
			heap.Pop(&s.events)
			d := s.replicas[e.replica]
			if e.rgen != s.readyGen[e.replica] || d.eng.Idle() {
				continue // re-armed or drained since push
			}
			// DES invariants, checked on every pop: a fresh ready entry
			// sits exactly at its replica's clock (wake re-arms on every
			// clock move, so a mismatch means a replica advanced without
			// re-arming), and no entry fires behind the scheduler clock
			// (the heap dispatched something out of order).
			if e.at != d.clock {
				return fmt.Errorf("serve: replica %d ready entry at t=%g fired off its clock t=%g", e.replica, e.at, d.clock)
			}
			if e.at < s.clock {
				return fmt.Errorf("serve: replica %d ready entry at t=%g fired behind the scheduler clock t=%g", e.replica, e.at, s.clock)
			}
			// Bound the engine call by the next entry: the earliest
			// pending event or the next-lagging replica's clock.
			until := math.Inf(1)
			if s.events.Len() > 0 {
				until = s.events[0].at
			}
			before := d.clock
			res, err := s.step(ctx, d, until)
			if err != nil {
				return err
			}
			// A stall — no iteration ran, nothing drained, the clock did
			// not move — would re-arm this entry at the same timestamp
			// forever (the classic symptom: a stolen or misplaced request
			// queued on a replica that can never admit it). Fail loudly
			// instead of spinning.
			if res.Batch == 0 && !d.eng.Idle() && d.clock == before {
				return fmt.Errorf("serve: replica %d stalled at t=%g with %d queued requests it cannot admit",
					e.replica, d.clock, d.eng.Pending())
			}
			s.wake(e.replica)
			if err := s.sched.onStep(e.replica, res); err != nil {
				return err
			}
			if err := s.sched.react(d.clock); err != nil {
				return err
			}
			continue
		}
		if s.sync == syncBarrier {
			if err := s.advanceAll(ctx, e.at); err != nil {
				return err
			}
		}
		heap.Pop(&s.events)
		if e.at < s.clock {
			return fmt.Errorf("serve: event kind %d at t=%g fired behind the scheduler clock t=%g", int(e.kind), e.at, s.clock)
		}
		if e.at > s.clock {
			s.clock = e.at
		}
		// Interleaved mode pulls idle clocks lazily at their use sites
		// (enqueue, resume, provision, the []FleetLoad snapshot) instead
		// of sweeping all n replicas on every event — the sweep is the
		// one per-event cost that grows with fleet size. The classic
		// disciplines keep the eager sync: their policies see Load.Clock
		// for every replica on every pick.
		if s.sync != syncInterleaved {
			s.syncIdle(e.at)
		}
		if err := s.sched.dispatch(ctx, e); err != nil {
			return err
		}
		if err := s.sched.react(e.at); err != nil {
			return err
		}
	}
}
