package serve

import (
	"context"
	"math"
	"reflect"
	"strings"
	"testing"

	"pimphony/internal/cluster"
	"pimphony/internal/model"
	"pimphony/internal/timing"
	"pimphony/internal/workload"
)

// tightSystem is testSystem with a KV budget sized so two of the
// long-decode requests below are admitted together and then exhaust the
// DPA pool mid-decode — the preemption scenario the migration oracle
// needs. The numbers leave wide margins: the 1800 MiB pool holds 3600
// tokens, one request's serving horizon is 3016, and the second request
// lands only a prompt-prefill (~tens of iterations) behind the first,
// so admission succeeds and lockstep growth exhausts the pool long
// before the first request's 3000 tokens complete.
func tightSystem() cluster.Config {
	cfg := testSystem()
	cfg.KVBudgetBytes = 1800 << 20
	return cfg
}

// tinyArrivals is n tiny-prompt, long-decode requests all arriving at
// once: the prompt prefill is nearly free (so requests become
// co-resident in decode) while the decode KV grows for thousands of
// iterations (so a tight pool exhausts mid-flight).
func tinyArrivals(n int) []workload.Arrival {
	arr := make([]workload.Arrival, n)
	for i := range arr {
		arr[i] = workload.Arrival{At: 0, Req: workload.Request{ID: i + 1, Context: 16, Decode: 3000}}
	}
	return arr
}

// pinFirst is a test placement that funnels everything to replica 0 —
// the way to build a hot replica next to an idle one.
type pinFirst struct{}

func (pinFirst) Name() string { return "pin-first" }
func (pinFirst) Place(_ workload.Request, loads []FleetLoad) int {
	if loads[0].Fits {
		return 0
	}
	return -1
}

// TestFleetMigrationBeatsRecompute: with a free interconnect and an
// empty roomy replica next door, every DPA preemption must migrate —
// the fleet finishes with zero recompute seconds and the victim's
// remaining tokens decoded on the destination.
func TestFleetMigrationBeatsRecompute(t *testing.T) {
	mk := func() *Report {
		return run(t, Config{
			Fleet: []ReplicaSpec{
				{System: tightSystem(), Count: 1, Role: RoleUnified},
				{System: testSystem(), Count: 1, Role: RoleUnified},
			},
			Interconnect: timing.Interconnect{BytesPerSecond: math.Inf(1)},
			Placement:    pinFirst{},
			Migrate:      true,
			SLO:          SLO{TTFT: 10, TBT: 1},
		}, tinyArrivals(2))
	}
	rep := mk()
	if rep.Requests != 2 {
		t.Fatalf("served %d of 2", rep.Requests)
	}
	fl := rep.Fleet
	if fl == nil {
		t.Fatal("fleet report missing FleetStats")
	}
	if rep.Capacity.Preemptions == 0 {
		t.Fatal("scenario did not exercise preemption")
	}
	if fl.Migrations == 0 {
		t.Fatal("free transfer never chosen over recompute")
	}
	if rep.Capacity.RecomputeSeconds != 0 {
		t.Errorf("recompute charged %g s despite free migration", rep.Capacity.RecomputeSeconds)
	}
	if fl.TransferSeconds != 0 {
		t.Errorf("infinite bandwidth priced %g s of transfer", fl.TransferSeconds)
	}
	// The victim carried Context plus its progress to the destination.
	if min := int64(16) * tightSystem().Model.KVBytesPerToken(); fl.TransferBytes <= min {
		t.Errorf("migrated %d bytes, want more than the bare prompt KV %d", fl.TransferBytes, min)
	}
	if rep.PerReplica[1].Tokens == 0 {
		t.Error("destination replica decoded nothing; migration did not land")
	}
	if other := mk(); !reflect.DeepEqual(rep, other) {
		t.Error("migration run is not deterministic")
	}
}

// TestFleetZeroBandwidthDegradesToRecompute is the other half of the
// migration oracle: with an unusable fabric the migration machinery
// must change nothing — the report is byte-identical to a
// migration-disabled fleet riding the engine's recompute path.
func TestFleetZeroBandwidthDegradesToRecompute(t *testing.T) {
	mk := func(migrate bool, ic timing.Interconnect) *Report {
		return run(t, Config{
			Fleet: []ReplicaSpec{
				{System: tightSystem(), Count: 1, Role: RoleUnified},
				{System: testSystem(), Count: 1, Role: RoleUnified},
			},
			Interconnect: ic,
			Placement:    pinFirst{},
			Migrate:      migrate,
			SLO:          SLO{TTFT: 10, TBT: 1},
		}, tinyArrivals(2))
	}
	zeroBW := mk(true, timing.Interconnect{})
	if zeroBW.Capacity.Preemptions == 0 {
		t.Fatal("scenario did not exercise preemption")
	}
	if zeroBW.Fleet.Migrations != 0 {
		t.Fatalf("%d migrations over an unusable fabric", zeroBW.Fleet.Migrations)
	}
	if zeroBW.Capacity.RecomputeSeconds <= 0 {
		t.Error("recompute path not taken: preempted re-admission charged nothing")
	}
	if off := mk(false, timing.Interconnect{}); !reflect.DeepEqual(zeroBW, off) {
		t.Errorf("zero-bandwidth migration diverged from the recompute path:\n%+v\n%+v", zeroBW, off)
	}
	if off := mk(false, timing.DefaultInterconnect()); !reflect.DeepEqual(zeroBW, off) {
		t.Error("migration-disabled report depends on the interconnect it never uses")
	}
}

// TestFleetDisaggregatedHandoff: a prefill→decode split must hand every
// request off exactly once, pricing the prompt-KV transfer.
func TestFleetDisaggregatedHandoff(t *testing.T) {
	arr := testArrivals(t, 8, 8)
	rep := run(t, Config{
		Fleet: []ReplicaSpec{
			{System: testSystem(), Count: 1, Role: RolePrefill},
			{System: testSystem(), Count: 2, Role: RoleDecode},
		},
		Interconnect: timing.DefaultInterconnect(),
		SLO:          SLO{TTFT: 10, TBT: 1},
	}, arr)
	if rep.Requests != 8 {
		t.Fatalf("served %d of 8", rep.Requests)
	}
	fl := rep.Fleet
	if fl.PrefillReplicas != 1 || fl.DecodeReplicas != 2 {
		t.Fatalf("fleet shape %d pre / %d dec, want 1 / 2", fl.PrefillReplicas, fl.DecodeReplicas)
	}
	if fl.Handoffs != 8 {
		t.Errorf("%d handoffs for 8 requests", fl.Handoffs)
	}
	var ctxTokens int64
	for _, a := range arr {
		ctxTokens += int64(a.Req.Context)
	}
	if want := ctxTokens * testSystem().Model.KVBytesPerToken(); fl.TransferBytes != want {
		t.Errorf("transferred %d bytes, want the prompt KV %d", fl.TransferBytes, want)
	}
	if fl.TransferSeconds <= 0 || fl.PrefillSeconds <= 0 {
		t.Errorf("unpriced handoff: transfer %g s, prefill %g s", fl.TransferSeconds, fl.PrefillSeconds)
	}
	// Every request's first token waits for its prefill and transfer.
	if rep.TTFT.P50 <= 0 {
		t.Error("disaggregated TTFT does not include the handoff")
	}
	if fl.JoulesPerToken <= 0 {
		t.Error("PIM decode fleet accrued no energy")
	}
}

// TestFleetStealDrainsBacklog: an idle replica must pull queued work
// off a backlogged one and finish the schedule sooner than a fleet with
// stealing disabled.
func TestFleetStealDrainsBacklog(t *testing.T) {
	mk := func(steal bool) *Report {
		return run(t, Config{
			Fleet: []ReplicaSpec{
				{System: tightSystem(), Count: 1, Role: RoleUnified},
				{System: testSystem(), Count: 1, Role: RoleUnified},
			},
			Interconnect: timing.DefaultInterconnect(),
			Placement:    pinFirst{},
			Steal:        steal,
			SLO:          SLO{TTFT: 10, TBT: 1},
		}, tinyArrivals(4))
	}
	with, without := mk(true), mk(false)
	if with.Fleet.Steals == 0 {
		t.Fatal("idle replica never stole from the backlog")
	}
	if without.Fleet.Steals != 0 {
		t.Fatalf("%d steals with stealing disabled", without.Fleet.Steals)
	}
	if with.MakespanSeconds >= without.MakespanSeconds {
		t.Errorf("stealing did not help: makespan %g s with vs %g s without",
			with.MakespanSeconds, without.MakespanSeconds)
	}
	if with.PerReplica[1].Tokens == 0 {
		t.Error("thief decoded nothing")
	}
}

// starvedSystem is testSystem with a KV budget below one tinyArrivals
// request's serving horizon (3016 tokens need ~1508 MiB at 512 KiB per
// token): the replica is a valid fleet member but can never admit one
// of those requests.
func starvedSystem() cluster.Config {
	cfg := testSystem()
	cfg.KVBudgetBytes = 1024 << 20
	return cfg
}

// TestStealSkipsUnadmittableThief is the livelock-guard regression: a
// busy source holding exactly one queued request next to an idle
// replica whose KV budget cannot admit it. Without the destination
// headroom check in trySteal, the thief steals the request anyway, it
// lands in a queue it can never leave, and the thief's clock freezes —
// the spine re-examines it at the same timestamp forever. The pinned
// trace: zero steals, zero transfers, both requests decoded serially on
// the source, the starved replica untouched.
func TestStealSkipsUnadmittableThief(t *testing.T) {
	source := testSystem()
	source.MaxBatch = 1 // admit one, queue the other: the steal bait
	rep := run(t, Config{
		Fleet: []ReplicaSpec{
			{System: source, Count: 1, Role: RoleUnified},
			{System: starvedSystem(), Count: 1, Role: RoleUnified},
		},
		Interconnect: timing.DefaultInterconnect(),
		Placement:    pinFirst{},
		Steal:        true,
		SLO:          SLO{TTFT: 10, TBT: 1},
	}, tinyArrivals(2))
	fl := rep.Fleet
	trace := [5]int{fl.Steals, fl.Migrations, fl.Held, rep.PerReplica[0].Requests, rep.PerReplica[1].Requests}
	if want := [5]int{0, 0, 0, 2, 0}; trace != want {
		t.Errorf("event trace [steals migrations held src-reqs thief-reqs] = %v, want %v", trace, want)
	}
	if fl.TransferBytes != 0 || fl.TransferSeconds != 0 {
		t.Errorf("skipped steal still priced a transfer: %d bytes, %g s", fl.TransferBytes, fl.TransferSeconds)
	}
	if rep.Requests != 2 {
		t.Errorf("served %d of 2", rep.Requests)
	}
}

// pinSecond funnels everything to replica 1 whether it fits or not — a
// misbehaving custom placement, used to prove a request queued on a
// replica that can never admit it fails loudly instead of spinning.
type pinSecond struct{}

func (pinSecond) Name() string                                { return "pin-second" }
func (pinSecond) Place(_ workload.Request, _ []FleetLoad) int { return 1 }

// TestSpineStallIsLoud: a request queued on a replica that can never
// admit it (the failure mode the steal guard prevents) must surface as
// an error naming the unservable request — the engine rejects it at the
// first step, and the spine's stall guard backstops any future
// admission path that defers the rejection — never as a silent spin.
func TestSpineStallIsLoud(t *testing.T) {
	_, err := Run(context.Background(), Config{
		Fleet: []ReplicaSpec{
			{System: testSystem(), Count: 1, Role: RoleUnified},
			{System: starvedSystem(), Count: 1, Role: RoleUnified},
		},
		Interconnect: timing.DefaultInterconnect(),
		Placement:    pinSecond{},
		SLO:          SLO{TTFT: 10, TBT: 1},
	}, tinyArrivals(1))
	if err == nil {
		t.Fatal("misplacing onto a replica that can never admit should error")
	}
	if !strings.Contains(err.Error(), "does not fit") && !strings.Contains(err.Error(), "stalled") {
		t.Errorf("stall error does not name the unservable request: %v", err)
	}
}

// fleetTestArrivals builds a deterministic schedule of small-prompt,
// long-decode requests arriving in a tight burst — every request fits
// the tight decoders' budget, but their lockstep KV growth overlaps
// enough that preemption, migration and stealing all fire.
func fleetTestArrivals(n int, seed int64) []workload.Arrival {
	s := uint64(seed)*2654435761 + 1
	next := func(m int) int {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		return int(s % uint64(m))
	}
	arr := make([]workload.Arrival, n)
	at := 0.0
	for i := range arr {
		at += 0.02 * float64(next(6))
		arr[i] = workload.Arrival{At: at,
			Req: workload.Request{ID: i + 1, Context: 16 + next(500), Decode: 2500 + next(500)}}
	}
	return arr
}

// TestFleetSingleStepEquivalence pins the fleet loop's fast-forward
// exactness: horizon-clamped leaps and one-iteration stepping must
// produce byte-identical reports, including under migration and
// stealing.
func TestFleetSingleStepEquivalence(t *testing.T) {
	arr := fleetTestArrivals(12, 3)
	mk := func(single bool) *Report {
		return run(t, Config{
			Fleet: []ReplicaSpec{
				{System: testSystem(), Count: 1, Role: RolePrefill},
				{System: tightSystem(), Count: 2, Role: RoleDecode},
			},
			Interconnect: timing.DefaultInterconnect(),
			Migrate:      true,
			Steal:        true,
			SingleStep:   single,
			SLO:          SLO{TTFT: 1, TBT: 0.2},
		}, arr)
	}
	fast, slow := mk(false), mk(true)
	if !reflect.DeepEqual(fast, slow) {
		t.Fatalf("fast-forward fleet diverged from single stepping:\n%+v\n%+v", fast, slow)
	}
	// And the leap clamp only changes granularity, never the report.
	for _, horizon := range []int{1, 7} {
		cfgRep := run(t, Config{
			Fleet: []ReplicaSpec{
				{System: testSystem(), Count: 1, Role: RolePrefill},
				{System: tightSystem(), Count: 2, Role: RoleDecode},
			},
			Interconnect: timing.DefaultInterconnect(),
			Migrate:      true,
			Steal:        true,
			LeapHorizon:  horizon,
			SLO:          SLO{TTFT: 1, TBT: 0.2},
		}, arr)
		if !reflect.DeepEqual(fast, cfgRep) {
			t.Errorf("LeapHorizon %d changed the report", horizon)
		}
	}
}

// TestFleetRoutingDeterminism: the full scheduler — placement,
// migration, stealing, handoffs — must be reproducible across runs for
// several workload seeds.
func TestFleetRoutingDeterminism(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		arr := fleetTestArrivals(14, seed)
		mk := func() *Report {
			return run(t, Config{
				Fleet: []ReplicaSpec{
					{System: testSystem(), Count: 1, Role: RolePrefill},
					{System: tightSystem(), Count: 2, Role: RoleDecode},
				},
				Interconnect: timing.DefaultInterconnect(),
				Migrate:      true,
				Steal:        true,
				SLO:          SLO{TTFT: 1, TBT: 0.2},
			}, arr)
		}
		a, b := mk(), mk()
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: fleet reports diverged:\n%+v\n%+v", seed, a, b)
		}
		if a.Requests != 14 {
			t.Fatalf("seed %d: served %d of 14", seed, a.Requests)
		}
	}
}

// TestFleetValidate covers the fleet-config error surface.
func TestFleetValidate(t *testing.T) {
	base := ReplicaSpec{System: testSystem(), Count: 1, Role: RoleUnified}
	cases := []struct {
		name string
		cfg  Config
	}{
		{"zero count", Config{Fleet: []ReplicaSpec{{System: testSystem(), Role: RoleUnified}}}},
		{"unknown role", Config{Fleet: []ReplicaSpec{{System: testSystem(), Count: 1, Role: Role(9)}}}},
		{"prefill only", Config{Fleet: []ReplicaSpec{{System: testSystem(), Count: 1, Role: RolePrefill}},
			Interconnect: timing.DefaultInterconnect()}},
		{"disaggregated without fabric", Config{Fleet: []ReplicaSpec{
			{System: testSystem(), Count: 1, Role: RolePrefill}, base}}},
		{"negative horizon", Config{Fleet: []ReplicaSpec{base}, LeapHorizon: -1}},
	}
	for _, c := range cases {
		if err := c.cfg.Validate(); err == nil {
			t.Errorf("%s: validated", c.name)
		}
	}
	ok := Config{Fleet: []ReplicaSpec{base}}
	if err := ok.Validate(); err != nil {
		t.Errorf("unified single-replica fleet rejected: %v", err)
	}
	// KV portability is checked at build time: mixing models whose KV
	// layouts differ cannot share a fleet.
	big := testSystem()
	big.Model = model.LLM72B32K()
	mixed := Config{Fleet: []ReplicaSpec{base, {System: big, Count: 1, Role: RoleUnified}}}
	if _, err := Run(context.Background(), mixed, tinyArrivals(1)); err == nil {
		t.Error("fleet with mismatched KV bytes/token accepted")
	}
}

func TestRoleSummary(t *testing.T) {
	got := RoleSummary([]ReplicaSpec{
		{Count: 1, Role: RolePrefill},
		{Count: 3, Role: RoleDecode},
	})
	if got != "1pre+3dec" {
		t.Errorf("RoleSummary = %q, want 1pre+3dec", got)
	}
	if got := RoleSummary([]ReplicaSpec{{Count: 4, Role: RoleUnified}}); got != "4uni" {
		t.Errorf("RoleSummary = %q, want 4uni", got)
	}
}

func TestPlacementByName(t *testing.T) {
	for _, name := range PlacementNames() {
		p, err := PlacementByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if p.Name() != name {
			t.Errorf("PlacementByName(%q).Name() = %q", name, p.Name())
		}
	}
	if _, err := PlacementByName("nope"); err == nil {
		t.Error("unknown placement accepted")
	}
}

// TestPlacements exercises the built-in policies' selection rules.
func TestPlacements(t *testing.T) {
	loads := []FleetLoad{
		{Load: Load{OutstandingTokens: 5}, FreeKVBytes: 10, Fits: true},
		{Load: Load{OutstandingTokens: 1}, FreeKVBytes: 30, Fits: true},
		{Load: Load{OutstandingTokens: 0}, FreeKVBytes: 99, Fits: false},
	}
	r := workload.Request{ID: 1, Context: 10, Decode: 5}
	if got := KVHeadroom().Place(r, loads); got != 1 {
		t.Errorf("kv-headroom picked %d, want 1 (most free among fitting)", got)
	}
	if got := LeastTokensFit().Place(r, loads); got != 1 {
		t.Errorf("least-tokens-fit picked %d, want 1", got)
	}
	rr := RoundRobinFit()
	if a, b := rr.Place(r, loads), rr.Place(r, loads); a != 0 || b != 1 {
		t.Errorf("round-robin-fit picked %d,%d, want 0,1 (skipping the non-fitting)", a, b)
	}
	none := []FleetLoad{{Fits: false}}
	for _, p := range []Placement{KVHeadroom(), LeastTokensFit(), RoundRobinFit()} {
		if got := p.Place(r, none); got != -1 {
			t.Errorf("%s placed %d with nothing fitting, want -1 (hold)", p.Name(), got)
		}
	}
}
