package serve

import (
	"context"
	"fmt"

	"pimphony/internal/sweep"
	"pimphony/internal/tablefmt"
	"pimphony/internal/workload"
)

// ResiliencePoint is one cell of a fault-injection sweep: a fleet
// composition serving an arrival pattern under a named fault schedule,
// either fixed or autoscaled. Points with a nil plan are the mode's
// zero-fault baseline; every faulted row's goodput is reported relative
// to it.
type ResiliencePoint struct {
	// Name labels the row's fault schedule (e.g. "none",
	// "crash mtbf=20s mttr=1s").
	Name  string
	Specs []ReplicaSpec
	// AutoscalerName is an AutoscalerNames() entry, built fresh per
	// run; "" runs the fleet fixed.
	AutoscalerName string
	// PlacementName is a PlacementNames() entry, built fresh per run;
	// "" = kv-headroom.
	PlacementName string
	// Faults is the row's fault schedule; nil marks the mode's
	// zero-fault baseline row.
	Faults *FaultPlan
	// Cfg carries the scheduler knobs (Interconnect, Migrate, Steal);
	// Fleet, SLO, Placement, Autoscaler and Faults are filled in per
	// point.
	Cfg Config
	// Arrivals builds the point's schedule; it must be deterministic,
	// so the table is byte-identical at any sweep parallelism.
	Arrivals func() ([]workload.Arrival, error)
}

// ResilienceTable evaluates fault-injection points through the parallel
// sweep engine and renders the resilience comparison: the failure and
// retry activity (crashes, retries, permanently failed requests, KV
// lost to crashes, replica downtime) next to what it cost — goodput
// retained against the same mode's zero-fault baseline, tail TTFT
// inflation, and SLO-compliant tokens per dollar. The retained% column
// is computed after the sweep from the baseline rows, so point order
// within a mode is free; rows render in point order.
func ResilienceTable(ctx context.Context, title string, pts []ResiliencePoint, slo SLO,
	opts ...sweep.Option) (*tablefmt.Table, error) {
	t := tablefmt.New(title,
		"mode", "faults", "crashes", "retries", "failed", "lost-kv(MiB)",
		"down(s)", "goodput", "retained%", "ttft-p99", "goodtok/$")
	type cell struct {
		mode    string
		rep     *Report
		baseRow bool
	}
	cells, err := sweep.Rows(ctx, pts, func(ctx context.Context, p ResiliencePoint) ([]any, error) {
		cfg := p.Cfg
		cfg.Fleet = p.Specs
		cfg.SLO = slo
		cfg.Faults = p.Faults
		plName := p.PlacementName
		if plName == "" {
			plName = "kv-headroom"
		}
		pl, err := PlacementByName(plName)
		if err != nil {
			return nil, err
		}
		cfg.Placement = pl
		mode := "fixed"
		if p.AutoscalerName != "" {
			auto, err := AutoscalerByName(p.AutoscalerName)
			if err != nil {
				return nil, err
			}
			cfg.Autoscaler = auto
			mode = p.AutoscalerName
		}
		arr, err := p.Arrivals()
		if err != nil {
			return nil, err
		}
		rep, err := Run(ctx, cfg, arr)
		if err != nil {
			return nil, fmt.Errorf("resilience %s/%s: %w", p.Name, mode, err)
		}
		return []any{cell{mode, rep, p.Faults == nil}}, nil
	}, opts...)
	if err != nil {
		return nil, err
	}
	baseline := map[string]float64{}
	for _, row := range cells {
		if c := row[0].(cell); c.baseRow {
			baseline[c.mode] = c.rep.Goodput
		}
	}
	for i, row := range cells {
		c := row[0].(cell)
		retained := 100.0
		if base := baseline[c.mode]; base > 0 {
			retained = 100 * c.rep.Goodput / base
		}
		f := c.rep.Faults
		if f == nil {
			f = &FaultStats{}
		}
		t.AddRow(c.mode, pts[i].Name, f.Crashes, f.Retries, f.Failed,
			float64(f.LostKVBytes)/(1<<20), f.DowntimeSeconds,
			c.rep.Goodput, retained, 1e3*c.rep.TTFT.P99,
			c.rep.Energy.GoodTokensPerDollar)
	}
	return t, nil
}
