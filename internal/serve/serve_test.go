package serve

import (
	"context"
	"math"
	"reflect"
	"testing"

	"pimphony/internal/cluster"
	"pimphony/internal/model"
	"pimphony/internal/sweep"
	"pimphony/internal/timing"
	"pimphony/internal/workload"
)

// testSystem is a small CENT-style replica template.
func testSystem() cluster.Config {
	return cluster.Config{
		Name:         "serve-test",
		Backend:      cluster.PIMOnly,
		Dev:          timing.AiM16().WithChannels(32).WithCapacity(16 << 30),
		Modules:      8,
		TP:           8,
		PP:           1,
		Model:        model.LLM7B32K(),
		Tech:         cluster.PIMphony(),
		DecodeWindow: 4,
	}
}

// testArrivals builds a deterministic Poisson schedule with short
// generations so tests stay fast.
func testArrivals(t *testing.T, n int, rate float64) []workload.Arrival {
	t.Helper()
	gen := workload.NewGenerator(workload.QMSum(), 42)
	gen.DecodeLen = 6
	arr, err := workload.PoissonArrivals(gen, rate, 4, n, 7)
	if err != nil {
		t.Fatal(err)
	}
	return arr
}

func run(t *testing.T, cfg Config, arr []workload.Arrival) *Report {
	t.Helper()
	rep, err := Run(context.Background(), cfg, arr)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestServeCompletesAndMeasures(t *testing.T) {
	arr := testArrivals(t, 16, 8)
	rep := run(t, Config{System: testSystem(), Replicas: 2, Policy: RoundRobin(),
		SLO: SLO{TTFT: 10, TBT: 1}}, arr)
	if rep.Requests != 16 {
		t.Fatalf("served %d of 16", rep.Requests)
	}
	if rep.Throughput <= 0 || rep.MakespanSeconds <= 0 {
		t.Fatalf("no throughput measured: %+v", rep)
	}
	if rep.Goodput > rep.Throughput {
		t.Errorf("goodput %g exceeds throughput %g", rep.Goodput, rep.Throughput)
	}
	if rep.SLOMet < 0 || rep.SLOMet > 1 {
		t.Errorf("SLO-met fraction %g out of [0,1]", rep.SLOMet)
	}
	for _, q := range []Quantiles{rep.TTFT, rep.TBT, rep.E2E} {
		if q.P50 > q.P95 || q.P95 > q.P99 {
			t.Errorf("quantiles not monotone: %+v", q)
		}
		if q.Mean <= 0 {
			t.Errorf("zero latency distribution: %+v", q)
		}
	}
	// E2E dominates TTFT for every request, so also in aggregate.
	if rep.E2E.P50 < rep.TTFT.P50 {
		t.Errorf("E2E p50 %g below TTFT p50 %g", rep.E2E.P50, rep.TTFT.P50)
	}
	var reqs, toks int
	for _, st := range rep.PerReplica {
		reqs += st.Requests
		toks += st.Tokens
	}
	if reqs != 16 || toks != 16*6 {
		t.Errorf("per-replica accounting off: %d requests, %d tokens", reqs, toks)
	}
}

// TestServeDeterminism: the same schedule and configuration must yield
// the identical report — the property that makes the latency tables
// reproducible in CI.
func TestServeDeterminism(t *testing.T) {
	arr := testArrivals(t, 12, 8)
	mk := func() *Report {
		return run(t, Config{System: testSystem(), Replicas: 2, Policy: LeastOutstandingTokens(),
			SLO: SLO{TTFT: 1, TBT: 0.2}}, arr)
	}
	a, b := mk(), mk()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("reports diverged:\n%+v\n%+v", a, b)
	}
}

func TestRoundRobinSpreads(t *testing.T) {
	arr := testArrivals(t, 12, 8)
	rep := run(t, Config{System: testSystem(), Replicas: 3, Policy: RoundRobin()}, arr)
	for i, st := range rep.PerReplica {
		if st.Requests != 4 {
			t.Errorf("replica %d got %d requests, want 4", i, st.Requests)
		}
	}
}

func TestSessionAffinityPinsSessions(t *testing.T) {
	// Route a hand-built schedule where sessions repeat.
	gen := workload.NewGenerator(workload.QMSum(), 1)
	gen.DecodeLen = 4
	var arr []workload.Arrival
	for i := 0; i < 12; i++ {
		arr = append(arr, workload.Arrival{Req: gen.Next(), At: float64(i) * 0.05, Session: i % 3})
	}
	cfg := Config{System: testSystem(), Replicas: 4, Policy: SessionAffinity()}
	rep := run(t, cfg, arr)
	if rep.Requests != 12 {
		t.Fatal("not all served")
	}
	// Re-derive the routing: same session must always map to the same
	// replica index.
	pol := SessionAffinity()
	loads := make([]Load, 4)
	bySession := map[int]int{}
	for _, a := range arr {
		idx := pol.Pick(a, loads)
		if prev, ok := bySession[a.Session]; ok && prev != idx {
			t.Fatalf("session %d routed to both %d and %d", a.Session, prev, idx)
		}
		bySession[a.Session] = idx
	}
}

// TestLeastTokensBalancesSkew: with one replica pre-loaded by a burst,
// the load-aware policy routes the follow-up arrivals away from it,
// improving tail TTFT over round-robin on the same schedule.
func TestLeastTokensBalancesSkew(t *testing.T) {
	gen := workload.NewGenerator(workload.QMSum(), 5)
	gen.DecodeLen = 8
	// A burst at t=0 (lands on replica 0 under both policies), then a
	// trickle that round-robin alternates but least-tokens steers away
	// from the loaded replica.
	var arr []workload.Arrival
	for i := 0; i < 6; i++ {
		arr = append(arr, workload.Arrival{Req: gen.Next(), At: 0, Session: 0})
	}
	for i := 0; i < 6; i++ {
		arr = append(arr, workload.Arrival{Req: gen.Next(), At: 0.001 * float64(i+1), Session: 0})
	}
	lt := run(t, Config{System: testSystem(), Replicas: 2, Policy: LeastOutstandingTokens()}, arr)
	// The burst must not all sit on one replica.
	if lt.PerReplica[0].Requests == 12 || lt.PerReplica[1].Requests == 12 {
		t.Errorf("least-tokens left one replica empty: %+v", lt.PerReplica)
	}
	diff := lt.PerReplica[0].Tokens - lt.PerReplica[1].Tokens
	if diff < 0 {
		diff = -diff
	}
	if diff > 8 {
		t.Errorf("least-tokens imbalance of %d tokens: %+v", diff, lt.PerReplica)
	}
}

func TestIncludePrefillRaisesTTFT(t *testing.T) {
	arr := testArrivals(t, 8, 8)
	base := run(t, Config{System: testSystem(), Replicas: 1, Policy: RoundRobin()}, arr)
	pre := run(t, Config{System: testSystem(), Replicas: 1, Policy: RoundRobin(), IncludePrefill: true}, arr)
	if pre.TTFT.Mean <= base.TTFT.Mean {
		t.Errorf("prefill did not raise TTFT: %g vs %g", pre.TTFT.Mean, base.TTFT.Mean)
	}
	if pre.E2E.Mean <= base.E2E.Mean {
		t.Errorf("prefill did not raise E2E: %g vs %g", pre.E2E.Mean, base.E2E.Mean)
	}
	// TBT is a decode-phase metric; prefill must not change it.
	if pre.TBT != base.TBT {
		t.Errorf("prefill changed TBT: %+v vs %+v", pre.TBT, base.TBT)
	}
}

func TestMoreReplicasImproveTail(t *testing.T) {
	arr := testArrivals(t, 24, 16)
	one := run(t, Config{System: testSystem(), Replicas: 1, Policy: RoundRobin()}, arr)
	four := run(t, Config{System: testSystem(), Replicas: 4, Policy: RoundRobin()}, arr)
	if four.TTFT.P99 >= one.TTFT.P99 {
		t.Errorf("4 replicas did not improve p99 TTFT: %g vs %g", four.TTFT.P99, one.TTFT.P99)
	}
}

func TestRunErrors(t *testing.T) {
	arr := testArrivals(t, 4, 8)
	if _, err := Run(context.Background(), Config{System: testSystem(), Replicas: 0, Policy: RoundRobin()}, arr); err == nil {
		t.Error("zero replicas should error")
	}
	if _, err := Run(context.Background(), Config{System: testSystem(), Replicas: 1}, arr); err == nil {
		t.Error("nil policy should error")
	}
	if _, err := Run(context.Background(), Config{System: testSystem(), Replicas: 1, Policy: RoundRobin()}, nil); err == nil {
		t.Error("empty schedule should error")
	}
	unsorted := []workload.Arrival{{Req: workload.Request{ID: 0, Context: 1024, Decode: 2}, At: 1},
		{Req: workload.Request{ID: 1, Context: 1024, Decode: 2}, At: 0.5}}
	if _, err := Run(context.Background(), Config{System: testSystem(), Replicas: 1, Policy: RoundRobin()}, unsorted); err == nil {
		t.Error("unsorted schedule should error")
	}
	dup := []workload.Arrival{{Req: workload.Request{ID: 0, Context: 1024, Decode: 2}, At: 0},
		{Req: workload.Request{ID: 0, Context: 1024, Decode: 2}, At: 1}}
	if _, err := Run(context.Background(), Config{System: testSystem(), Replicas: 1, Policy: RoundRobin()}, dup); err == nil {
		t.Error("duplicate IDs should error")
	}
}

func TestPolicyByName(t *testing.T) {
	for _, name := range PolicyNames() {
		p, err := PolicyByName(name)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if p.Name() != name {
			t.Errorf("PolicyByName(%s).Name() = %s", name, p.Name())
		}
	}
	if _, err := PolicyByName("nope"); err == nil {
		t.Error("unknown policy should error")
	}
}

func TestSLOMet(t *testing.T) {
	s := SLO{TTFT: 0.5, TBT: 0.1}
	cases := []struct {
		ttft, tbt float64
		want      bool
	}{
		{0.4, 0.05, true},
		{0.5, 0.1, true}, // boundaries are inclusive
		{0.6, 0.05, false},
		{0.4, 0.2, false},
	}
	for _, c := range cases {
		if got := s.Met(c.ttft, c.tbt); got != c.want {
			t.Errorf("Met(%g,%g) = %v", c.ttft, c.tbt, got)
		}
	}
	if !(SLO{}).Met(99, 99) {
		t.Error("zero SLO enforces nothing")
	}
	if !(SLO{TTFT: 1}).Met(0.5, 99) {
		t.Error("unset TBT must not be enforced")
	}
}

func TestQuantiles(t *testing.T) {
	if q := quantiles(nil, nil); q != (Quantiles{}) {
		t.Errorf("empty sample: %+v", q)
	}
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = float64(100 - i) // 100..1, unsorted on purpose
	}
	q := quantiles(xs, nil)
	if q.P50 != 50 || q.P95 != 95 || q.P99 != 99 {
		t.Errorf("nearest-rank percentiles wrong: %+v", q)
	}
	if math.Abs(q.Mean-50.5) > 1e-12 {
		t.Errorf("mean = %g", q.Mean)
	}
	// quantiles sorts in place (the report fold owns its samples).
	if xs[0] != 1 || xs[99] != 100 {
		t.Error("quantiles did not sort the sample ascending")
	}
}

// TestCapacityStatsReported: a tightly budgeted DPA run must surface
// the capacity metrics — peaks, max concurrency — and aggregate them
// consistently with the per-replica breakdown.
func TestCapacityStatsReported(t *testing.T) {
	cfg := testSystem()
	cfg.KVBudgetBytes = 32 << 30
	arr := testArrivals(t, 16, 64)
	rep := run(t, Config{System: cfg, Replicas: 2, Policy: RoundRobin()}, arr)
	c := rep.Capacity
	if c.Alloc != "dpa" {
		t.Errorf("alloc %q, want dpa", c.Alloc)
	}
	if c.PoolBytes != 32<<30 {
		t.Errorf("pool %d, want the 32 GiB budget", c.PoolBytes)
	}
	if c.PeakLiveBytes <= 0 || c.PeakReservedBytes <= 0 {
		t.Errorf("peaks not sampled: %+v", c)
	}
	if c.PeakLiveBytes > c.PeakReservedBytes {
		t.Errorf("peak live %d > peak reserved %d", c.PeakLiveBytes, c.PeakReservedBytes)
	}
	if c.PeakReservedBytes > c.PoolBytes {
		t.Errorf("peak reserved %d past the pool %d", c.PeakReservedBytes, c.PoolBytes)
	}
	if c.MaxActive <= 0 {
		t.Error("max active not tracked")
	}
	var pre int
	maxAct := 0
	for _, st := range rep.PerReplica {
		pre += st.Preemptions
		if st.MaxActive > maxAct {
			maxAct = st.MaxActive
		}
		if st.PeakLiveBytes > c.PeakLiveBytes || st.PeakReservedBytes > c.PeakReservedBytes {
			t.Errorf("aggregate peaks below a replica's: %+v vs %+v", c, st)
		}
	}
	if pre != c.Preemptions || maxAct != c.MaxActive {
		t.Errorf("aggregate (%d preempt, %d max-act) disagrees with replicas (%d, %d)",
			c.Preemptions, c.MaxActive, pre, maxAct)
	}
	// Static on the same schedule reserves more than it fills.
	cfg.Tech.DPA = false
	srep := run(t, Config{System: cfg, Replicas: 2, Policy: RoundRobin()}, arr)
	if srep.Capacity.Alloc != "static" {
		t.Errorf("alloc %q, want static", srep.Capacity.Alloc)
	}
	if srep.Capacity.PeakReservedBytes <= srep.Capacity.PeakLiveBytes {
		t.Errorf("static should strand reservation: reserved %d vs live %d",
			srep.Capacity.PeakReservedBytes, srep.Capacity.PeakLiveBytes)
	}
	if srep.Capacity.MaxActive > rep.Capacity.MaxActive {
		t.Errorf("static admitted more (%d) than DPA (%d) at the same budget",
			srep.Capacity.MaxActive, rep.Capacity.MaxActive)
	}
}

// TestServeGPUAndDIMMBackends: the serving simulator now accepts every
// registered backend — the GPU baseline is admitted against its paged
// pool and the DIMM-PIM system against its all-KV DIMM pool — and both
// complete a schedule with positive SLO metrics.
func TestServeGPUAndDIMMBackends(t *testing.T) {
	arr := testArrivals(t, 12, 16)
	gpuCfg := cluster.Config{Name: "serve-gpu", Backend: cluster.GPUSystem,
		Model: model.LLM7B32K(), GPUs: 2, DecodeWindow: 4}
	dimmCfg := cluster.Config{Name: "serve-dimm", Backend: cluster.DIMMPIM,
		Dev: timing.DDR5DIMM(), Modules: 8, TP: 8, PP: 1,
		Model: model.LLM7B32K(), Tech: cluster.PIMphony(), DecodeWindow: 4}
	for _, sys := range []cluster.Config{gpuCfg, dimmCfg} {
		rep := run(t, Config{System: sys, Replicas: 1, Policy: RoundRobin(),
			SLO: SLO{TTFT: 10, TBT: 1}}, arr)
		if rep.Requests != 12 {
			t.Fatalf("%s: served %d of 12", sys.Name, rep.Requests)
		}
		if rep.Throughput <= 0 || rep.TTFT.P50 <= 0 || rep.TBT.P95 <= 0 {
			t.Errorf("%s: missing metrics %+v", sys.Name, rep)
		}
		if rep.Capacity.PoolBytes <= 0 || rep.Capacity.PeakLiveBytes <= 0 {
			t.Errorf("%s: missing capacity accounting %+v", sys.Name, rep.Capacity)
		}
	}
}

// TestFastForwardEquivalence is the end-to-end fast-forward contract:
// every backend x allocator combination — including a preemption-heavy
// DPA configuration and the GPU's paged pool — must produce an
// identical Report through the multi-step leap path and the naive
// one-iteration loop (Config.SingleStep), at sequential and parallel
// replica advancement alike.
func TestFastForwardEquivalence(t *testing.T) {
	pim := testSystem()
	static := testSystem()
	static.Tech.DPA = false
	tight := testSystem()
	tight.KVBudgetBytes = 4106 << 20 // DPA over-admission preempts mid-decode
	xpu := testSystem()
	xpu.Backend = cluster.XPUPIM
	gpu := cluster.Config{Name: "ff-gpu", Backend: cluster.GPUSystem,
		Model: model.LLM7B32K(), GPUs: 2, DecodeWindow: 4}
	dimm := cluster.Config{Name: "ff-dimm", Backend: cluster.DIMMPIM,
		Dev: timing.DDR5DIMM(), Modules: 8, TP: 8, PP: 1,
		Model: model.LLM7B32K(), Tech: cluster.PIMphony(), DecodeWindow: 4}

	long := testArrivals(t, 16, 24)
	tightArr := func() []workload.Arrival {
		gen := workload.Uniform(4096, 5)
		gen.DecodeLen = 16
		arr, err := workload.PoissonArrivals(gen, 1000, 2, 8, 7)
		if err != nil {
			t.Fatal(err)
		}
		return arr
	}()
	cases := []struct {
		name       string
		sys        cluster.Config
		replicas   int
		arr        []workload.Arrival
		wantEvents bool // the scenario must actually preempt
	}{
		{"pim-dpa", pim, 2, long, false},
		{"pim-static", static, 2, long, false},
		{"pim-dpa-preempting", tight, 1, tightArr, true},
		{"xpu-pim", xpu, 1, long, false},
		{"gpu-paged", gpu, 1, long, false},
		{"dimm-pim", dimm, 1, long, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			mk := func(single bool) *Report {
				return run(t, Config{System: c.sys, Replicas: c.replicas,
					Policy: LeastOutstandingTokens(), SLO: SLO{TTFT: 0.1, TBT: 0.025},
					SingleStep: single}, c.arr)
			}
			naive, fast := mk(true), mk(false)
			if !reflect.DeepEqual(naive, fast) {
				t.Errorf("reports diverged:\nsingle-step %+v\nfast-forward %+v", naive, fast)
			}
			if c.wantEvents && fast.Capacity.Preemptions == 0 {
				t.Error("scenario did not exercise preemption")
			}
			// The fast path must be identical under parallel replica
			// advancement too.
			prev := sweep.SetDefault(8)
			par := mk(false)
			sweep.SetDefault(prev)
			if !reflect.DeepEqual(fast, par) {
				t.Errorf("parallel replica advancement diverged:\nsequential %+v\nparallel %+v", fast, par)
			}
		})
	}
}

// TestApplyStampsFirstTokenByCount is the regression test for the
// first-token sentinel: a first iteration ending at simulated time
// exactly zero must still stamp the request's first-token time — the
// token count, not the zero-value of record.first, decides.
func TestApplyStampsFirstTokenByCount(t *testing.T) {
	s := &sim{spine: spine{tracker: tracker{recs: map[int]*record{7: {}}}}}
	r := &replica{} // clock 0
	// A zero-duration iteration generates token 1 at t=0.
	s.apply(cluster.StepResult{Seconds: 0, Batch: 1, Generated: []int{7}}, r)
	// A later iteration generates token 2 at t=5 — it must NOT re-stamp
	// the first-token time.
	s.apply(cluster.StepResult{Seconds: 5, Batch: 1, Generated: []int{7}}, r)
	rec := s.recs[7]
	if rec.tokens != 2 {
		t.Fatalf("counted %d tokens, want 2", rec.tokens)
	}
	if rec.first != 0 {
		t.Errorf("first-token time re-stamped to %g, want 0 (the end of the iteration that produced token 1)", rec.first)
	}
	if r.clock != 5 {
		t.Errorf("clock %g, want 5", r.clock)
	}
	// Multi-iteration results stamp the first token at the end of the
	// iteration that produced it, not the leap's end.
	s2 := &sim{spine: spine{tracker: tracker{recs: map[int]*record{1: {}}}}}
	r2 := &replica{clock: 1}
	s2.apply(cluster.StepResult{Seconds: 3, Iterations: 3, IterSeconds: []float64{1, 1, 1},
		Batch: 1, Generated: []int{1}, Completed: []workload.Request{{ID: 1}}}, r2)
	rec = s2.recs[1]
	if rec.tokens != 3 {
		t.Fatalf("leap counted %d tokens, want 3", rec.tokens)
	}
	if rec.first != 2 {
		t.Errorf("leap first-token time %g, want 2 (end of iteration 1)", rec.first)
	}
	if rec.done != 4 || r2.clock != 4 {
		t.Errorf("leap completion %g / clock %g, want 4 / 4", rec.done, r2.clock)
	}
}
