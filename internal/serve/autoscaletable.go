package serve

import (
	"context"
	"fmt"

	"pimphony/internal/sweep"
	"pimphony/internal/tablefmt"
	"pimphony/internal/workload"
)

// AutoscalePoint is one cell of an autoscaling sweep: a fleet
// composition serving a named arrival pattern either fixed (every
// replica online for the whole run) or under an autoscaling policy.
type AutoscalePoint struct {
	// Name labels the row's traffic pattern (e.g. "diurnal", "mmpp").
	Name  string
	Specs []ReplicaSpec
	// AutoscalerName is an AutoscalerNames() entry, built fresh per
	// run; "" runs the fleet fixed.
	AutoscalerName string
	// PlacementName is a PlacementNames() entry, built fresh per run;
	// "" = kv-headroom.
	PlacementName string
	// Cfg carries the scheduler knobs (Interconnect, Migrate, Steal);
	// Fleet, SLO, Placement and Autoscaler are filled in per point.
	Cfg Config
	// Arrivals builds the point's schedule; it must be deterministic,
	// so the table is byte-identical at any sweep parallelism.
	Arrivals func() ([]workload.Arrival, error)
}

// AutoscaleTable evaluates autoscaling points through the parallel
// sweep engine and renders the provisioning-economics comparison: the
// time-weighted online replica count and the scale-up/drain activity
// next to goodput and SLO attainment, then the cost axis those
// decisions move — joules per token, dollars per million tokens, and
// SLO-compliant tokens per dollar (the study's headline metric). The
// cmd/pimphony-serve -autoscale mode and the "autoscale" experiment
// driver both render through here.
func AutoscaleTable(ctx context.Context, title string, pts []AutoscalePoint, slo SLO,
	opts ...sweep.Option) (*tablefmt.Table, error) {
	t := tablefmt.New(title,
		"arrivals", "mode", "repl", "avg-onl", "ups", "drains",
		"goodput", "slo-met%", "ttft-p95", "j/tok", "$/Mtok", "goodtok/$")
	rows, err := sweep.Rows(ctx, pts, func(ctx context.Context, p AutoscalePoint) ([]any, error) {
		cfg := p.Cfg
		cfg.Fleet = p.Specs
		cfg.SLO = slo
		plName := p.PlacementName
		if plName == "" {
			plName = "kv-headroom"
		}
		pl, err := PlacementByName(plName)
		if err != nil {
			return nil, err
		}
		cfg.Placement = pl
		mode := "fixed"
		if p.AutoscalerName != "" {
			auto, err := AutoscalerByName(p.AutoscalerName)
			if err != nil {
				return nil, err
			}
			cfg.Autoscaler = auto
			mode = p.AutoscalerName
		}
		arr, err := p.Arrivals()
		if err != nil {
			return nil, err
		}
		rep, err := Run(ctx, cfg, arr)
		if err != nil {
			return nil, fmt.Errorf("autoscale %s/%s: %w", p.Name, mode, err)
		}
		fl, e := rep.Fleet, rep.Energy
		return []any{p.Name, mode, RoleSummary(p.Specs), fl.AvgOnlineReplicas,
			fl.ScaleUps, fl.Drains, rep.Goodput, 100 * rep.SLOMet,
			1e3 * rep.TTFT.P95, e.JoulesPerToken, e.CostPerMTok, e.GoodTokensPerDollar}, nil
	}, opts...)
	if err != nil {
		return nil, err
	}
	for _, r := range rows {
		t.AddRow(r...)
	}
	return t, nil
}

// ScaleTimeline renders a fleet run's replica-count-over-time: one row
// per provision/drain event, timestamped relative to the first event.
// Empty (headers only) for fixed fleets.
func ScaleTimeline(rep *Report, title string) *tablefmt.Table {
	t := tablefmt.New(title, "t(s)", "event", "online")
	if rep.Fleet == nil {
		return t
	}
	for _, ev := range rep.Fleet.ScaleEvents {
		kind := "provision"
		if ev.Delta < 0 {
			kind = "drain"
		}
		t.AddRow(ev.At, kind, ev.Online)
	}
	return t
}
