// Fleet mode: a heterogeneous pool of replicas under one global
// scheduler, instead of N identical replicas behind a load balancer.
//
// A fleet is described by []ReplicaSpec — each spec is its own
// cluster.Config (backend, allocator technique, KV budget) times a
// replica count, tagged with a Role. Unified replicas prefill and
// decode locally, like the classic path. A disaggregated fleet splits
// the phases: RolePrefill replicas run prompt prefills only (they are
// dense-engine servers, not decode engines), and every prefilled
// request is handed off to a RoleDecode replica with its prompt KV
// moving over Config.Interconnect — the PIM-side disaggregation the
// paper's hybrid systems argue for, with the transfer hop explicitly
// priced (bytes = live KV footprint, seconds = latency + bytes/BW).
//
// The global scheduler owns three decisions the per-replica engines
// cannot make:
//
//   - Cross-replica admission: Placement picks a decode replica against
//     fleet-wide KV headroom; a request fitting nowhere waits in a
//     global FIFO instead of being committed to a replica's queue.
//   - KV migration: when a replica preempts a request (DPA pool
//     exhaustion), the scheduler compares moving the live KV over the
//     interconnect against the recompute its re-admission would charge,
//     and migrates to the roomiest other replica when the transfer is
//     cheaper (reusing the engine's requeue/resume machinery).
//   - Queue stealing: an idle decode replica takes a queued
//     zero-progress request from the most backlogged replica, paying
//     the prompt-KV transfer.
//
// The simulation runs on the shared discrete-event spine (des.go)
// under the interleaved discipline: replicas advance their own clocks
// via the tracker one engine call at a time in global clock order, and
// a global event (arrival, handoff completion, migration/steal
// landing) is dispatched only once every busy replica has simulated up
// to it, with Engine.SetHorizon bounding how far one leap can
// overshoot. Everything is deterministic, and the fleet loop is
// internally sequential — tables over fleets sweep across grid points,
// not inside one run — so fleet tables are byte-identical at any sweep
// parallelism.
package serve

import (
	"context"
	"fmt"
	"math"

	"pimphony/internal/cluster"
	"pimphony/internal/timing"
	"pimphony/internal/workload"
)

// fleetLeapHorizon is the default Engine.SetHorizon clamp for fleet
// replicas: long enough to amortize leap pricing, short enough that a
// replica cannot run far past a migration or handoff landing on it.
const fleetLeapHorizon = 64

// Role assigns a fleet replica to a phase of the request lifecycle.
type Role int

const (
	// RoleUnified replicas prefill and decode locally (the classic
	// colocated serving shape).
	RoleUnified Role = iota
	// RolePrefill replicas run prompt prefills only; every request they
	// finish is handed off to a decode replica over the interconnect.
	RolePrefill
	// RoleDecode replicas decode only; their prompts were prefilled
	// elsewhere.
	RoleDecode
)

// String names the role as the -fleet spec grammar spells it.
func (r Role) String() string {
	switch r {
	case RoleUnified:
		return "unified"
	case RolePrefill:
		return "prefill"
	case RoleDecode:
		return "decode"
	default:
		return fmt.Sprintf("role(%d)", int(r))
	}
}

// ReplicaSpec is one homogeneous slice of a fleet: Count replicas built
// from System, serving as Role.
type ReplicaSpec struct {
	System cluster.Config
	Count  int
	Role   Role
	// Min is how many of the Count replicas start online when the fleet
	// is autoscaled (Config.Autoscaler non-nil); the remainder start as
	// offline standby the autoscaler may provision. Ignored — every
	// replica is online — for fixed fleets and for RolePrefill specs
	// (prefill servers are never autoscaled).
	Min int
	// WarmupSeconds is the provisioning delay an autoscaled replica of
	// this spec pays between the scale-up decision and taking work
	// (weight loading, pool initialisation). Zero means scale-ups apply
	// instantly at the decision boundary.
	WarmupSeconds float64
}

// validateFleet checks the fleet half of a Config.
func (c *Config) validateFleet() error {
	decode, prefill := 0, 0
	for i, spec := range c.Fleet {
		if spec.Count <= 0 {
			return fmt.Errorf("serve: fleet spec %d: Count must be positive, got %d", i, spec.Count)
		}
		if spec.Min < 0 || spec.Min > spec.Count {
			return fmt.Errorf("serve: fleet spec %d: Min %d outside [0, Count=%d]", i, spec.Min, spec.Count)
		}
		if spec.WarmupSeconds < 0 {
			return fmt.Errorf("serve: fleet spec %d: WarmupSeconds must be non-negative, got %g", i, spec.WarmupSeconds)
		}
		switch spec.Role {
		case RoleUnified, RoleDecode:
			decode += spec.Count
		case RolePrefill:
			prefill += spec.Count
		default:
			return fmt.Errorf("serve: fleet spec %d: unknown role %d", i, int(spec.Role))
		}
	}
	if decode == 0 {
		return fmt.Errorf("serve: fleet has no decode-capable replica (every spec is RolePrefill)")
	}
	if prefill > 0 && !c.Interconnect.Usable() {
		return fmt.Errorf("serve: disaggregated fleet (RolePrefill replicas) needs a usable Interconnect to hand KV off")
	}
	if c.LeapHorizon < 0 {
		return fmt.Errorf("serve: LeapHorizon must be non-negative, got %d", c.LeapHorizon)
	}
	if err := c.Faults.validate(c.Fleet, decode); err != nil {
		return err
	}
	return nil
}

// FleetStats is the fleet-mode half of a Report: the shape of the
// fleet, the prefill work, and every explicitly priced KV movement the
// global scheduler chose.
type FleetStats struct {
	// PrefillReplicas / DecodeReplicas describe the fleet shape (unified
	// replicas count as decode replicas; their colocated prefill engines
	// are not separate replicas).
	PrefillReplicas int
	DecodeReplicas  int
	// PrefillSeconds is total prompt-processing busy time across the
	// fleet's prefill engines (dedicated and colocated).
	PrefillSeconds float64
	// Handoffs counts prefill→decode transfers in a disaggregated fleet.
	Handoffs int
	// Migrations counts preempted requests whose live KV the scheduler
	// moved to another replica instead of letting re-admission recompute
	// it; Steals counts queued requests pulled by idle replicas.
	Migrations int
	Steals     int
	// Held counts requests that waited in the global queue because no
	// replica had KV headroom at their decision point.
	Held int
	// TransferBytes / TransferSeconds total every KV movement over the
	// interconnect (handoffs, migrations, steals).
	TransferBytes   int64
	TransferSeconds float64
	// JoulesPerToken is decode energy per generated token across the
	// fleet (internal/energy; zero for backends without an energy
	// model).
	JoulesPerToken float64
	// ScaleUps / Drains count the autoscaler's replica provisioning and
	// retirement actions (zero for a fixed fleet).
	ScaleUps int
	Drains   int
	// AvgOnlineReplicas is the time-weighted online decode-replica
	// count over the makespan (equal to DecodeReplicas for a fixed
	// fleet).
	AvgOnlineReplicas float64
	// ScaleEvents is the provision/drain timeline in event order (nil
	// for a fixed fleet).
	ScaleEvents []ScaleEvent
}

// prefillServer is a dense prompt-processing engine with a FIFO busy
// window: requests serialize on it, each charged the system's
// PrefillSeconds.
type prefillServer struct {
	sys  *cluster.System
	free float64 // time the server next becomes available
	busy float64 // total busy seconds
	reqs int
	spec int
	// slow, when positive, multiplies every prompt's duration — the
	// colocated half of a replica's transient slowdown fault (faults.go).
	slow float64
}

// serve schedules one prompt starting no earlier than at, returning the
// completion time.
func (p *prefillServer) serve(at float64, contextTokens int) float64 {
	start := at
	if p.free > start {
		start = p.free
	}
	dur := p.sys.PrefillSeconds(contextTokens)
	if p.slow > 0 {
		dur *= p.slow
	}
	p.free = start + dur
	p.busy += dur
	p.reqs++
	return p.free
}

// fleetReplica is one decode-capable fleet replica: the shared
// advancement replica plus its fleet role and, for unified replicas,
// the colocated prefill engine.
type fleetReplica struct {
	replica
	role Role
	spec int
	pre  *prefillServer // non-nil only for RoleUnified
}

// heldReq is one entry in the global queue: a request no replica could
// admit at its decision point.
type heldReq struct {
	rec *record
	// needsPrefill: the request has not been prefilled yet (unified
	// fleets place before prefilling, so a held request still owes its
	// prompt pass once placed).
	needsPrefill bool
	// recompute: the request was crash-lost with gen tokens of progress;
	// placing it re-admits through the engine's recompute-charging path
	// (faults.go).
	recompute bool
	gen       int
}

// fleetSim drives one fleet simulation: the shared discrete-event
// spine under the interleaved discipline, plus the global scheduler
// state (placement, held queue, in-flight transfers).
type fleetSim struct {
	spine
	cfg       Config
	ic        timing.Interconnect
	placement Placement
	// indexed is the placement's O(log n) fast path (nil for custom
	// policies, which fall back to the scratch-built []FleetLoad scan).
	indexed  indexedPlacement
	decoders []*fleetReplica
	prefills []*prefillServer
	held     deque[heldReq]
	// views holds the incrementally maintained scheduler indexes and
	// autoscale aggregates (views.go), kept in step with every engine
	// call and lifecycle change via touch/setState.
	views fleetViews
	// incoming counts KV transfers in flight toward each decoder, so
	// stealing never targets a replica that already has work landing.
	incoming []int
	// landing counts colocated prefills whose handoff is scheduled onto
	// each decoder, so a drain decision never retires a replica with a
	// prompt about to land (incoming covers migrations/steals only).
	landing []int
	stats   FleetStats
	bpt     int64 // KV bytes per token (uniform across the fleet)

	// Autoscaling state (auto nil = fixed fleet; the per-replica slices
	// are still built, all-online, so placement/steal/drain checks are
	// uniform).
	auto        Autoscaler
	state       []replState
	onlineSince []float64 // provision time of the current online interval
	onlineSecs  []float64 // completed online intervals, makespan-clamped
	// waiting tracks arrived requests that have not produced their
	// first token, for AutoscaleView.OldestWaitSeconds (nil when auto
	// is nil).
	waiting map[int]*record
	// waitq holds the waiting records in arrival order with lazy
	// deletion (the waiting map is the membership marker), so the
	// oldest-wait fold is a front peek instead of a map scan.
	waitq        deque[*record]
	firstArrival float64

	// Timer-driven scale evaluation: total/finished bound the run (no
	// scaling after the workload drains), evalSched is the policy's
	// NextEval half when it has one, and evalAt is the earliest armed
	// evScaleEval deadline (+Inf when none).
	total     int
	finished  int
	evalSched evalScheduler
	evalAt    float64

	// Fault-injection state (faults.go); all nil/zero unless
	// cfg.Faults is active, so the fault-free path is untouched.
	chains    []*faultChain
	slowStack [][]*faultChain // per-replica active slowdown chains
	linkStack []*faultChain   // active fabric-degradation chains
	icScale   float64         // current interconnect transfer-time factor
	fstats    *FaultStats
}

func newFleetSim(cfg Config, n int) (*fleetSim, error) {
	fs := &fleetSim{
		cfg:       cfg,
		ic:        cfg.Interconnect,
		placement: cfg.Placement,
	}
	if fs.placement == nil {
		fs.placement = KVHeadroom()
	}
	horizon := cfg.LeapHorizon
	if horizon == 0 {
		horizon = fleetLeapHorizon
	}
	bpt := int64(-1)
	for si, spec := range cfg.Fleet {
		if b := spec.System.Model.KVBytesPerToken(); bpt < 0 {
			bpt = b
		} else if b != bpt {
			return nil, fmt.Errorf("serve: fleet spec %d: KV bytes/token %d differs from %d; KV is not portable across the fleet", si, b, bpt)
		}
		for c := 0; c < spec.Count; c++ {
			sys, err := cluster.New(spec.System)
			if err != nil {
				return nil, err
			}
			if spec.Role == RolePrefill {
				fs.prefills = append(fs.prefills, &prefillServer{sys: sys, spec: si})
				continue
			}
			eng, err := sys.NewEngine()
			if err != nil {
				return nil, err
			}
			eng.SetHorizon(horizon)
			fr := &fleetReplica{replica: replica{sys: sys, eng: eng}, role: spec.Role, spec: si}
			if spec.Role == RoleUnified {
				fr.pre = &prefillServer{sys: sys, spec: si}
			}
			fs.decoders = append(fs.decoders, fr)
			if cfg.Autoscaler == nil || c < spec.Min {
				fs.state = append(fs.state, stateOnline)
			} else {
				fs.state = append(fs.state, stateOffline)
			}
			fs.onlineSince = append(fs.onlineSince, 0)
		}
	}
	fs.bpt = bpt
	fs.incoming = make([]int, len(fs.decoders))
	fs.landing = make([]int, len(fs.decoders))
	fs.onlineSecs = make([]float64, len(fs.decoders))
	fs.auto = cfg.Autoscaler
	fs.evalSched, _ = cfg.Autoscaler.(evalScheduler)
	fs.evalAt = math.Inf(1)
	fs.total = n
	if fs.auto != nil {
		fs.waiting = make(map[int]*record, n)
	}
	reps := make([]*replica, len(fs.decoders))
	for i, d := range fs.decoders {
		reps[i] = &d.replica
	}
	fs.spine = spine{
		tracker:  tracker{recs: make(map[int]*record, n), singleStep: cfg.SingleStep},
		replicas: reps,
		sync:     syncInterleaved,
		readyGen: make([]int, len(reps)),
		sched:    fs,
	}
	fs.indexed, _ = fs.placement.(indexedPlacement)
	fs.initViews()
	return fs, nil
}

// runFleet serves a timed arrival schedule on a heterogeneous fleet.
func runFleet(ctx context.Context, cfg Config, arrivals []workload.Arrival) (*Report, error) {
	fs, err := newFleetSim(cfg, len(arrivals))
	if err != nil {
		return nil, err
	}
	for i, a := range arrivals {
		if i > 0 && a.At < arrivals[i-1].At {
			return nil, fmt.Errorf("serve: arrivals not sorted at %d (%g after %g)", i, a.At, arrivals[i-1].At)
		}
		if _, dup := fs.recs[a.Req.ID]; dup {
			return nil, fmt.Errorf("serve: duplicate request ID %d in schedule", a.Req.ID)
		}
		rec := &record{req: a.Req, arrival: a.At, replica: -1}
		fs.recs[a.Req.ID] = rec
		fs.pushArrival(rec, a)
	}
	fs.firstArrival = arrivals[0].At
	fs.initFaults()
	if err := fs.spine.run(ctx); err != nil {
		return nil, err
	}
	return fs.report(arrivals)
}

// onStep reacts to one decoder engine call: first tokens retire their
// requests from the autoscaler's waiting set, completions advance the
// finished count (and, being leap-invariant boundaries — leaps end
// exactly at completing iterations — give the autoscaler a decision),
// and any preemptions the step produced become migration candidates.
func (fs *fleetSim) onStep(di int, res cluster.StepResult) error {
	fs.touch(di)
	if fs.auto != nil {
		for _, id := range res.Generated {
			delete(fs.waiting, id)
		}
	}
	if len(res.Completed) > 0 {
		fs.finished += len(res.Completed)
		fs.autoscale(fs.decoders[di].clock)
	}
	if len(res.Preempted) == 0 || !fs.cfg.Migrate || !fs.ic.Usable() {
		return nil
	}
	for _, v := range res.Preempted {
		if err := fs.considerMigration(di, v); err != nil {
			return err
		}
	}
	return nil
}

// react runs at every engine-call and dispatch boundary: retry the held
// queue against freed headroom, then let idle decoders steal. Scale
// evaluation deliberately does NOT run here — it fires only at heap
// events (arrivals, completions, landings, crashes, retries and the
// policy's own evScaleEval timers), which are identical at every leap
// granularity, so autoscaled runs are leap-invariant.
func (fs *fleetSim) react(now float64) error {
	fs.placeHeld(now)
	fs.trySteal(now)
	return nil
}

// idleWork retries the held queue once the fleet is fully drained. An
// autoscaled fleet gets a policy decision first, and — if the policy
// holds back (cooldown) while requests sit unplaceable — a backstop
// provision of one standby, so a drained-to-zero fleet never stalls on
// capacity it owns. A held request that still fits nowhere is a
// permanent stall.
func (fs *fleetSim) idleWork() (bool, error) {
	if fs.held.len() == 0 {
		return false, nil
	}
	n := fs.held.len()
	fs.autoscale(fs.clock)
	if fs.pendingProgress() {
		return true, nil // a provision is warming; its landing resumes placement
	}
	fs.placeHeld(fs.clock)
	if fs.held.len() < n {
		return true, nil
	}
	if fs.auto != nil && fs.provision(fs.clock, 1) > 0 {
		if fs.pendingProgress() {
			return true, nil
		}
		fs.placeHeld(fs.clock)
		if fs.held.len() < n {
			return true, nil
		}
	}
	return false, fmt.Errorf("serve: %d requests held with no fleet replica able to admit them", n)
}

// pendingProgress reports whether the heap holds an event that can move
// work or create capacity. Fault chains, scale-eval timers and ready
// ticks do not count: an eternal fault chain must not keep a stalled
// simulation alive, and a bare timer resolves at its own dispatch.
func (fs *fleetSim) pendingProgress() bool {
	for _, ev := range fs.events {
		switch ev.kind {
		case evFail, evRecover, evScaleEval, evReady:
		default:
			return true
		}
	}
	return false
}

// considerMigration decides a preempted request's fate: move its live
// KV to another replica if the transfer is cheaper than the recompute
// re-admission would charge here, otherwise leave it queued for the
// recompute path.
func (fs *fleetSim) considerMigration(di int, v workload.Request) error {
	d := fs.decoders[di]
	gen := d.eng.Progress(v.ID)
	kvTokens := v.Context + gen
	bytes := int64(kvTokens) * fs.bpt
	transfer := fs.transferSeconds(bytes)
	recompute := d.sys.PrefillSeconds(kvTokens)
	if f := fs.slowFactor(di); f > 1 {
		recompute *= f // a degraded replica recomputes slower, too
	}
	if transfer >= recompute {
		return nil // recompute locally is at least as cheap
	}
	// byFreeKV visits online decoders by free KV descending, ties to the
	// lowest index — the first entry (other than the preempting replica)
	// that can admit the request is exactly the linear scan's roomiest
	// destination.
	dst := -1
	fs.views.byFreeKV.ascend(func(i int) bool {
		if i == di || !fs.decoders[i].eng.HasHeadroom(v) {
			return true
		}
		dst = i
		return false
	})
	if dst < 0 {
		return nil // nowhere to go; recompute path
	}
	if _, _, err := d.eng.Withdraw(v.ID); err != nil {
		return err
	}
	fs.touch(di)
	fs.stats.Migrations++
	fs.stats.TransferBytes += bytes
	fs.stats.TransferSeconds += transfer
	fs.incoming[dst]++
	fs.touch(dst)
	fs.push(evMigrated, fs.recs[v.ID], gen, dst, d.clock+transfer)
	return nil
}

// dispatch applies one global event at its timestamp.
func (fs *fleetSim) dispatch(_ context.Context, e *event) error {
	switch e.kind {
	case evArrival:
		return fs.routeArrival(e)
	case evHandoff:
		if e.dst >= 0 {
			fs.landing[e.dst]--
			if fs.state[e.dst] == stateFailed {
				// The destination crashed after its colocated prefill was
				// scheduled; the prompt KV went down with it.
				return fs.retryOrFail(e.rec, 0, e.at)
			}
			return fs.enqueueOn(e.dst, e.rec)
		}
		// Disaggregated handoff: the KV is staged, place it now (after
		// an autoscale decision — the landing is a placement boundary).
		fs.autoscale(e.at)
		if dst := fs.place(e.rec.req); dst >= 0 {
			return fs.enqueueOn(dst, e.rec)
		}
		fs.held.pushBack(heldReq{rec: e.rec})
		fs.stats.Held++
		return nil
	case evMigrated, evStolen:
		fs.incoming[e.dst]--
		if fs.state[e.dst] == stateFailed {
			// The destination crashed with this KV in flight toward it.
			return fs.retryOrFail(e.rec, e.gen, e.at)
		}
		e.rec.replica = e.dst
		d := fs.decoders[e.dst]
		if d.eng.Idle() && d.clock < e.at {
			d.clock = e.at // lazy idle-clock pull; see enqueueOn
		}
		if err := d.eng.EnqueueResumed(e.rec.req, e.gen); err != nil {
			return err
		}
		fs.touch(e.dst)
		fs.wake(e.dst)
		return nil
	case evProvision:
		if fs.state[e.dst] != stateWarming {
			return fmt.Errorf("serve: provision landed on replica %d in state %v", e.dst, fs.state[e.dst])
		}
		fs.setOnline(e.dst, e.at)
		return nil
	case evDrain:
		if fs.state[e.dst] != stateDraining {
			return fmt.Errorf("serve: drain landed on replica %d in state %v", e.dst, fs.state[e.dst])
		}
		d := fs.decoders[e.dst]
		if !d.eng.Idle() || fs.incoming[e.dst] > 0 || fs.landing[e.dst] > 0 {
			return fmt.Errorf("serve: draining replica %d still holds work at t=%g", e.dst, e.at)
		}
		fs.setState(e.dst, stateOffline)
		since := fs.onlineSince[e.dst]
		if since < fs.firstArrival {
			since = fs.firstArrival
		}
		if e.at > since {
			fs.onlineSecs[e.dst] += e.at - since
		}
		fs.recordScale(e.at, -1)
		return nil
	case evFail:
		c := fs.chains[e.gen]
		if fs.finished >= fs.total {
			return nil // workload drained; the chain ends here
		}
		if err := fs.applyFault(c, e.at); err != nil {
			return err
		}
		// The down interval is drawn whether or not the fault applied
		// (see faultChain.exp), keeping the chain's stream stable.
		fs.push(evRecover, nil, e.gen, e.dst, e.at+c.downFor())
		return nil
	case evRecover:
		c := fs.chains[e.gen]
		fs.clearFault(c, e.at)
		if !c.oneshot && fs.finished < fs.total {
			fs.push(evFail, nil, e.gen, e.dst, e.at+c.exp(c.mtbf))
		}
		// Stall guard: if nothing but fault timers can ever run again and
		// requests are still held, idleWork either makes progress or
		// surfaces the same loud stall error the fault-free run would —
		// an eternal fault chain must not keep a dead simulation spinning.
		if fs.held.len() > 0 && fs.faultQuiescent() {
			if _, err := fs.idleWork(); err != nil {
				return err
			}
		}
		return nil
	case evRetry:
		fs.autoscale(e.at)
		if e.gen > 0 {
			// Progress to recompute: the request decodes from gen, but its
			// re-admission charges the full Context+gen KV rebuild.
			if dst := fs.place(e.rec.req); dst >= 0 {
				return fs.enqueueRecomputeOn(dst, e.rec, e.gen)
			}
			fs.held.pushBack(heldReq{rec: e.rec, recompute: true, gen: e.gen})
			fs.stats.Held++
			return nil
		}
		// Zero progress: route like a fresh arrival (the prompt pass
		// reruns wherever it lands).
		return fs.routeBody(e.rec, e.at)
	case evScaleEval:
		fs.evalAt = math.Inf(1)
		fs.autoscale(e.at)
		return nil
	default:
		return fmt.Errorf("serve: unknown fleet event kind %d", int(e.kind))
	}
}

// routeArrival sends a new request into its prefill phase. In a
// disaggregated fleet the earliest-free prefill server takes it and the
// handoff (prefill end + KV transfer) is scheduled with placement
// deferred to landing time; in a unified fleet placement happens now —
// the prompt KV is built where the request will decode — and a held
// request owes its prefill once placed.
func (fs *fleetSim) routeArrival(e *event) error {
	rec := e.rec
	if fs.auto != nil {
		// The arrival joins the waiting set before the scale decision,
		// so the autoscaler sees it — and an always-scale policy brings
		// the whole fleet up before this very placement (the fixed-fleet
		// equivalence hinges on that ordering).
		fs.waiting[rec.req.ID] = rec
		fs.waitq.pushBack(rec)
		fs.autoscale(e.at)
	}
	return fs.routeBody(rec, e.at)
}

// routeBody sends an un-prefilled request into its prefill phase —
// fresh arrivals and zero-progress crash retries take the same path.
func (fs *fleetSim) routeBody(rec *record, at float64) error {
	if len(fs.prefills) > 0 {
		pi := fs.pickPrefill()
		p := fs.prefills[pi]
		end := p.serve(at, rec.req.Context)
		fs.touchPrefill(pi, p)
		bytes := int64(rec.req.Context) * fs.bpt
		transfer := fs.transferSeconds(bytes)
		fs.stats.Handoffs++
		fs.stats.TransferBytes += bytes
		fs.stats.TransferSeconds += transfer
		fs.push(evHandoff, rec, 0, -1, end+transfer)
		return nil
	}
	if dst := fs.place(rec.req); dst >= 0 {
		fs.localPrefill(dst, rec, at)
		return nil
	}
	fs.held.pushBack(heldReq{rec: rec, needsPrefill: true})
	fs.stats.Held++
	return nil
}

// localPrefill runs a unified replica's colocated prompt pass and
// schedules the (transfer-free) handoff into its own decode queue.
func (fs *fleetSim) localPrefill(dst int, rec *record, now float64) {
	end := fs.decoders[dst].pre.serve(now, rec.req.Context)
	fs.landing[dst]++
	fs.touch(dst)
	fs.push(evHandoff, rec, 0, dst, end)
}

// pickPrefill picks the earliest-available dedicated prefill server
// (ties to the lowest index): the first entry of the free-time index.
func (fs *fleetSim) pickPrefill() int {
	return fs.views.prefillFree.first()
}

// place asks the placement policy for a decode replica, -1 to hold.
// Replicas that are not online (standby, warming, draining) are never
// placement targets: they show as non-fitting with zero headroom. The
// built-in policies answer from the ordered indexes in O(log n); a
// custom Placement still sees the full []FleetLoad snapshot, built into
// a reused scratch buffer.
func (fs *fleetSim) place(r workload.Request) int {
	if fs.indexed != nil {
		return fs.indexed.placeIndexed(fs, r)
	}
	v := &fs.views
	if cap(v.loadScratch) < len(fs.decoders) {
		v.loadScratch = make([]FleetLoad, len(fs.decoders))
	}
	loads := v.loadScratch[:len(fs.decoders)]
	for i, d := range fs.decoders {
		// An idle replica's clock is pulled lazily (enqueueOn); the
		// snapshot shows what the eager every-event sync would have: the
		// scheduler clock.
		clk := d.clock
		if clk < fs.clock && d.eng.Idle() {
			clk = fs.clock
		}
		loads[i] = FleetLoad{
			Load: Load{
				OutstandingTokens: d.eng.OutstandingTokens(),
				Active:            d.eng.Active(),
				Pending:           d.eng.Pending(),
				Clock:             clk,
			},
			Role:        d.role,
			FreeKVBytes: d.eng.FreeKVBytes(),
			Fits:        d.eng.HasHeadroom(r),
		}
		if fs.state[i] != stateOnline || fs.degraded(i) {
			loads[i].Fits = false
			loads[i].FreeKVBytes = 0
		}
	}
	dst := fs.placement.Place(r, loads)
	if dst >= len(fs.decoders) {
		return -1
	}
	return dst
}

// enqueueOn commits a prefilled request to a decoder's queue. An idle
// destination's clock is pulled up to the scheduler clock first (the
// lazy counterpart of the old every-event syncIdle sweep), so the ready
// entry wake arms lands at now, not at a stale idle timestamp.
func (fs *fleetSim) enqueueOn(dst int, rec *record) error {
	rec.replica = dst
	d := fs.decoders[dst]
	if d.eng.Idle() && d.clock < fs.clock {
		d.clock = fs.clock
	}
	if err := d.eng.Enqueue(rec.req); err != nil {
		return err
	}
	fs.touch(dst)
	fs.wake(dst)
	return nil
}

// enqueueRecomputeOn commits a crash-lost request with prior progress to
// a decoder: re-admission charges the Context+gen KV rebuild through the
// engine's recompute path, then decoding resumes at gen.
func (fs *fleetSim) enqueueRecomputeOn(dst int, rec *record, gen int) error {
	rec.replica = dst
	d := fs.decoders[dst]
	if d.eng.Idle() && d.clock < fs.clock {
		d.clock = fs.clock
	}
	if err := d.eng.EnqueueRecompute(rec.req, gen); err != nil {
		return err
	}
	fs.touch(dst)
	fs.wake(dst)
	return nil
}

// placeHeld retries the global queue in FIFO order, stopping at the
// first request that still fits nowhere (strict FCFS, matching the
// engines' own queue discipline).
func (fs *fleetSim) placeHeld(now float64) {
	for fs.held.len() > 0 {
		h := fs.held.front()
		dst := fs.place(h.rec.req)
		if dst < 0 {
			return
		}
		fs.held.popFront()
		d := fs.decoders[dst]
		if d.eng.Idle() && d.clock < now {
			d.clock = now
		}
		if h.needsPrefill {
			fs.localPrefill(dst, h.rec, now)
			continue
		}
		// Unplaceable enqueue errors cannot happen here: place() only
		// returns fitting replicas for the built-in policies, and a
		// custom policy routing a duplicate would have failed earlier.
		var err error
		if h.recompute {
			err = fs.enqueueRecomputeOn(dst, h.rec, h.gen)
		} else {
			err = fs.enqueueOn(dst, h.rec)
		}
		if err != nil {
			// Put it back and stop; run() will surface the stall.
			fs.held.pushFront(h)
			return
		}
	}
}

// trySteal lets each idle decoder (with nothing already in flight
// toward it) pull the newest zero-progress queued request from the most
// backlogged other decoder, paying the prompt-KV transfer.
func (fs *fleetSim) trySteal(now float64) {
	if !fs.cfg.Steal || !fs.ic.Usable() {
		return
	}
	v := &fs.views
	if v.thieves.count == 0 || v.stealSrc.count == 0 {
		return
	}
	// Snapshot the thief set in index order. No replica becomes a thief
	// mid-loop — a steal only touches the current thief's incoming count
	// and the source's queue, and sources (Active > 0) are never thieves
	// — so the snapshot visits exactly the replicas the index-order scan
	// visited; conditions are still re-checked at each visit.
	v.thiefScratch = v.thiefScratch[:0]
	v.thieves.ascend(func(i int) bool {
		v.thiefScratch = append(v.thiefScratch, i)
		return true
	})
	for _, di := range v.thiefScratch {
		d := fs.decoders[di]
		if fs.state[di] != stateOnline || !d.eng.Idle() || fs.incoming[di] > 0 || fs.degraded(di) {
			continue
		}
		// The steal-source index orders decoders with an active batch and
		// a backlog by pending count descending, ties to the lowest index
		// — its first entry is the linear scan's most backlogged source.
		// (A replica whose queue is non-empty but idle is about to admit
		// that work itself, and stealing it back and forth would never
		// converge; such replicas are not in the index. The thief itself
		// is idle, so it is never its own source.)
		src := v.stealSrc.first()
		if src < 0 {
			return // no sources left for any thief
		}
		s := fs.decoders[src]
		r, ok := s.eng.PeekStealable()
		if !ok {
			continue
		}
		// Livelock guard, checked while the request is still queued: a
		// thief may only steal what it can admit. Without the check, a
		// busy source with exactly one queued request keeps losing it to
		// an idle replica whose KV budget cannot hold it — the request
		// then sits in the thief's queue with the thief's clock frozen,
		// re-examined at the same timestamp forever, while the source
		// would have admitted it as soon as its batch shrank.
		if !d.eng.HasHeadroom(r) {
			continue
		}
		r2, ok := s.eng.StealNewest()
		if ok {
			fs.touch(src)
		}
		if !ok || r2.ID != r.ID {
			continue
		}
		bytes := int64(r.Context) * fs.bpt
		transfer := fs.transferSeconds(bytes)
		at := now
		if s.clock > at {
			at = s.clock
		}
		fs.stats.Steals++
		fs.stats.TransferBytes += bytes
		fs.stats.TransferSeconds += transfer
		fs.incoming[di]++
		fs.touch(di)
		fs.push(evStolen, fs.recs[r.ID], 0, di, at+transfer)
	}
}

// autoscale gives the policy one decision at a heap-event boundary and
// applies it, clamped to what exists (standby pool going up, idle
// online replicas going down), then arms the policy's next evaluation
// timer. No-op for fixed fleets and once the workload has drained (no
// post-completion scaling, and no timer chain to keep the heap alive).
func (fs *fleetSim) autoscale(now float64) {
	if fs.auto == nil || fs.finished >= fs.total {
		return
	}
	switch n := fs.auto.Scale(fs.view(now)); {
	case n > 0:
		fs.provision(now, n)
	case n < 0:
		fs.drainIdle(now, -n)
	}
	if fs.evalSched != nil {
		fs.armEval(now, fs.evalSched.NextEval(fs.view(now)))
	}
}

// armEval schedules an evScaleEval at the policy's requested deadline,
// keeping only the earliest outstanding timer: a later deadline never
// needs its own event, because the earlier dispatch re-evaluates and
// re-arms. Stale timers (the fleet re-armed earlier and already fired)
// dispatch as cheap deterministic no-op evaluations.
func (fs *fleetSim) armEval(now, at float64) {
	if !(at > now) || math.IsInf(at, 1) || at >= fs.evalAt {
		return
	}
	fs.evalAt = at
	fs.push(evScaleEval, nil, 0, -1, at)
}

// view snapshots the fleet for one autoscaling decision, entirely from
// the maintained aggregates — O(1) regardless of fleet size (amortizing
// the lazy waitq pops), and exactly the fold the per-replica scan
// produced: the counters accumulate the same integers, FreeKVFrac
// divides the same int64 sums, and the oldest wait is now minus the
// earliest still-waiting arrival (arrivals enter the queue in
// nondecreasing order, so the live front is the minimum).
func (fs *fleetSim) view(now float64) AutoscaleView {
	v := &fs.views
	av := AutoscaleView{
		Now: now, SLO: fs.cfg.SLO, Held: fs.held.len(),
		Online: v.onlineCnt, Warming: v.warmingCnt, Standby: v.standbyCnt,
		Failed:     v.failedCnt,
		IdleOnline: v.drainable.count,
		Queued:     v.queued, Active: v.activeSum,
		Waiting:       len(fs.waiting),
		OldestArrival: math.Inf(1),
	}
	if v.poolSum > 0 {
		av.FreeKVFrac = float64(v.freeSum) / float64(v.poolSum)
	}
	for fs.waitq.len() > 0 {
		if _, ok := fs.waiting[fs.waitq.front().req.ID]; ok {
			break
		}
		fs.waitq.popFront()
	}
	if fs.waitq.len() > 0 {
		av.OldestArrival = fs.waitq.front().arrival
		if w := now - av.OldestArrival; w > 0 {
			av.OldestWaitSeconds = w
		}
	}
	return av
}

// provision brings up to k standby replicas online, lowest index
// first, and reports how many it started. A spec with zero warm-up
// comes online synchronously at the decision time (this is what makes
// a zero-warm-up always-scale policy reproduce the fixed fleet
// exactly); otherwise the replica warms until its evProvision lands.
func (fs *fleetSim) provision(now float64, k int) int {
	done := 0
	for done < k {
		i := fs.views.standby.first() // lowest-index offline replica
		if i < 0 {
			break
		}
		fs.stats.ScaleUps++
		fs.setState(i, stateWarming)
		if w := fs.cfg.Fleet[fs.decoders[i].spec].WarmupSeconds; w > 0 {
			fs.push(evProvision, nil, 0, i, now+w)
		} else {
			fs.setOnline(i, now)
		}
		done++
	}
	return done
}

// setOnline completes a provision: the replica joins the online pool
// at t, with its idle clock pulled up so its first work starts no
// earlier than its arrival into the pool.
func (fs *fleetSim) setOnline(i int, t float64) {
	fs.setState(i, stateOnline)
	fs.onlineSince[i] = t
	if d := fs.decoders[i]; d.eng.Idle() && d.clock < t {
		d.clock = t
	}
	fs.recordScale(t, +1)
}

// drainIdle retires up to k idle online replicas, highest index first
// (the low indices stay as the stable base the provision order
// rebuilds). Each drain is an evDrain at the decision time; flipping
// to stateDraining immediately keeps placement, stealing and
// migration off the replica until the event lands.
func (fs *fleetSim) drainIdle(now float64, k int) {
	for ; k > 0; k-- {
		i := fs.views.drainable.last() // highest-index idle online replica
		if i < 0 {
			return
		}
		fs.setState(i, stateDraining)
		fs.push(evDrain, nil, 0, i, now)
	}
}

// recordScale appends one timeline entry after a replica-set change
// and keeps the action counters.
func (fs *fleetSim) recordScale(at float64, delta int) {
	fs.stats.ScaleEvents = append(fs.stats.ScaleEvents, ScaleEvent{At: at, Delta: delta, Online: fs.views.onlineCnt})
	if delta < 0 {
		fs.stats.Drains++
	}
}

// report folds the shared per-request records plus the fleet extras.
func (fs *fleetSim) report(arrivals []workload.Arrival) (*Report, error) {
	reps := make([]*replica, len(fs.decoders))
	for i, d := range fs.decoders {
		reps[i] = &d.replica
	}
	rep, err := foldReport(fs.recs, arrivals, fs.cfg.SLO, fs.placement.Name(), reps)
	if err != nil {
		return nil, err
	}
	st := fs.stats
	st.PrefillReplicas = len(fs.prefills)
	st.DecodeReplicas = len(fs.decoders)
	for _, p := range fs.prefills {
		st.PrefillSeconds += p.busy
	}
	for _, d := range fs.decoders {
		if d.pre != nil {
			st.PrefillSeconds += d.pre.busy
		}
	}
	// The energy fold (foldReport) accumulated the decoders' joules in
	// the same replica order as before; mirror its per-token figure.
	st.JoulesPerToken = rep.Energy.JoulesPerToken
	// Provisioning: decode replicas for their online seconds — the
	// whole makespan for a fixed fleet, the provision-to-drain integral
	// for an autoscaled one — plus dedicated prefill servers, kept
	// online for the whole run.
	secs := make([]float64, len(fs.decoders))
	hourly := make([]float64, len(fs.decoders))
	for i, d := range fs.decoders {
		hourly[i] = d.sys.CostPerHour()
	}
	if fs.auto == nil && fs.fstats == nil {
		for i := range fs.decoders {
			secs[i] = rep.MakespanSeconds
		}
	} else {
		// Close the still-open online intervals at the exact makespan
		// end (recomputed here as foldReport computes it, so a replica
		// online since the first arrival is charged bit-identically to
		// the fixed fleet's MakespanSeconds).
		end := fs.firstArrival
		for _, a := range arrivals {
			if rec := fs.recs[a.Req.ID]; rec.done+rec.prefill > end {
				end = rec.done + rec.prefill
			}
		}
		for i := range fs.decoders {
			if fs.state[i] == stateOnline {
				since := fs.onlineSince[i]
				if since < fs.firstArrival {
					since = fs.firstArrival
				}
				if end > since {
					fs.onlineSecs[i] += end - since
				}
			}
			secs[i] = fs.onlineSecs[i]
		}
	}
	var prefillDollars float64
	for _, p := range fs.prefills {
		prefillDollars += rep.MakespanSeconds / 3600 * p.sys.CostPerHour()
	}
	priceReport(rep, secs, hourly, prefillDollars)
	if rep.MakespanSeconds > 0 {
		st.AvgOnlineReplicas = rep.Energy.ReplicaSeconds / rep.MakespanSeconds
	}
	rep.Fleet = &st
	rep.Faults = fs.fstats
	return rep, nil
}
