// Fault injection on the DES spine: replica crashes, transient
// slowdowns and interconnect degradation, with deterministic timing and
// recovery (fleet mode only).
//
// A FaultPlan compiles into explicit evFail/evRecover events on the
// shared event heap before the first arrival dispatches: every fault
// chain owns a splitmix64 stream seeded from (plan seed, group,
// replica), draws exponential time-between-failure and time-to-repair
// intervals from it, and schedules each failure and recovery as a heap
// event. Failure timing is therefore a pure function of the plan — the
// same instants at any leap horizon, sync discipline or sweep
// parallelism — and a zero plan compiles to nothing, leaving every
// fault-free table byte-identical.
//
// The three modes degrade different layers:
//
//   - FaultCrash: the replica leaves the online pool (stateFailed), its
//     KV is dropped, and every in-flight request is withdrawn to the
//     global retry path (Engine.FailAll). Each lost request gets a
//     per-request retry budget and deterministic exponential backoff;
//     retries re-admit through the recompute-charging path (the KV is
//     rebuilt where the request lands), and an exhausted budget marks
//     the request Failed in the report.
//   - FaultSlowdown: the replica's engine prices every iteration (and
//     recompute charge) Slowdown-times longer (Engine.SetTimeScale),
//     and its colocated prefill server slows by the same factor.
//     Degraded replicas are excluded from placement, stealing-into and
//     migration destinations — but stay stealable-from and drainable —
//     so work routes around slow machines while their admitted batch
//     limps on.
//   - FaultLink: every interconnect transfer (handoffs, migrations,
//     steals) prices LinkFactor-times longer fleet-wide, which re-prices
//     migration-vs-recompute decisions live.
//
// Concurrent faults compose: slowdown factors multiply per replica,
// link factors multiply fleet-wide, and a crash chain firing on an
// already-failed replica is a no-op (its recovery stream still
// advances, keeping the chain's draws stable).
package serve

import (
	"fmt"
	"math"
)

// FaultMode selects what a fault group or injection degrades.
type FaultMode int

const (
	// FaultCrash takes the replica offline, losing its KV and
	// withdrawing its in-flight requests to the retry path.
	FaultCrash FaultMode = iota
	// FaultSlowdown multiplies the replica's iteration and recompute
	// pricing by Slowdown while active.
	FaultSlowdown
	// FaultLink multiplies every interconnect transfer time by
	// LinkFactor while active (fabric-wide).
	FaultLink
)

// String names the mode as the -fault-mode CLI grammar spells it.
func (m FaultMode) String() string {
	switch m {
	case FaultCrash:
		return "crash"
	case FaultSlowdown:
		return "slow"
	case FaultLink:
		return "link"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// FaultModeByName parses a -fault-mode flag value.
func FaultModeByName(name string) (FaultMode, error) {
	switch name {
	case "crash":
		return FaultCrash, nil
	case "slow", "slowdown":
		return FaultSlowdown, nil
	case "link":
		return FaultLink, nil
	default:
		return 0, fmt.Errorf("serve: unknown fault mode %q (crash, slow, link)", name)
	}
}

// FaultGroup is one recurring failure process: every matching decode
// replica gets an independent fault chain alternating exponential
// up-intervals (mean MTBFSeconds) and down-intervals (mean
// MTTRSeconds), both drawn from the chain's own seeded stream.
type FaultGroup struct {
	// Spec selects which fleet spec's replicas the group covers (-1 =
	// every decode-capable replica). Prefill specs cannot fault.
	Spec int
	Mode FaultMode
	// MTBFSeconds is the mean up-time between failures (> 0).
	MTBFSeconds float64
	// MTTRSeconds is the mean down-time per failure (>= 0; zero means
	// instant recovery — for crashes, a pure KV-loss event).
	MTTRSeconds float64
	// Slowdown (> 1) is the iteration-pricing factor while a
	// FaultSlowdown chain is down; ignored for other modes.
	Slowdown float64
	// LinkFactor (> 1) is the interconnect transfer-time factor while a
	// FaultLink chain is down; ignored for other modes.
	LinkFactor float64
}

// Injection is one scripted fault: replica Replica degrades at At for
// exactly DurationSeconds. Oracle tests script single faults with it;
// experiments use Groups.
type Injection struct {
	// Replica indexes the decode-capable replicas in fleet construction
	// order (prefill servers are not in the index space).
	Replica         int
	Mode            FaultMode
	At              float64
	DurationSeconds float64
	Slowdown        float64
	LinkFactor      float64
}

// FaultPlan seeds a fleet run's fault injection. The zero value (and a
// nil plan) injects nothing and reproduces the fault-free run
// byte-for-byte.
type FaultPlan struct {
	// Seed roots every fault chain's splitmix64 stream.
	Seed uint64
	// Groups are recurring MTBF/MTTR failure processes.
	Groups []FaultGroup
	// Injections are scripted one-shot faults.
	Injections []Injection
	// MaxRetries is the per-request retry budget for requests lost to
	// crashes: negative = unlimited, 0 = a first loss is permanent.
	MaxRetries int
	// BackoffSeconds is the base of the deterministic exponential
	// backoff: a request's k-th retry re-enters routing
	// BackoffSeconds*2^(k-1) after the loss (zero = immediate).
	BackoffSeconds float64
}

// active reports whether the plan injects anything at all.
func (p *FaultPlan) active() bool {
	return p != nil && (len(p.Groups) > 0 || len(p.Injections) > 0)
}

// validate checks the plan against the fleet shape: specs is the
// Config.Fleet slice, decoders the decode-capable replica count.
func (p *FaultPlan) validate(specs []ReplicaSpec, decoders int) error {
	if p == nil {
		return nil
	}
	if p.BackoffSeconds < 0 {
		return fmt.Errorf("serve: fault plan: BackoffSeconds must be non-negative, got %g", p.BackoffSeconds)
	}
	checkMode := func(what string, i int, mode FaultMode, slowdown, link float64) error {
		switch mode {
		case FaultCrash:
		case FaultSlowdown:
			if slowdown <= 1 {
				return fmt.Errorf("serve: fault %s %d: Slowdown must be > 1, got %g", what, i, slowdown)
			}
		case FaultLink:
			if link <= 1 {
				return fmt.Errorf("serve: fault %s %d: LinkFactor must be > 1, got %g", what, i, link)
			}
		default:
			return fmt.Errorf("serve: fault %s %d: unknown mode %d", what, i, int(mode))
		}
		return nil
	}
	for i, g := range p.Groups {
		if g.Spec < -1 || g.Spec >= len(specs) {
			return fmt.Errorf("serve: fault group %d: Spec %d outside [-1, %d)", i, g.Spec, len(specs))
		}
		if g.Spec >= 0 && specs[g.Spec].Role == RolePrefill {
			return fmt.Errorf("serve: fault group %d: spec %d is a prefill spec; faults cover decode-capable replicas only", i, g.Spec)
		}
		if g.MTBFSeconds <= 0 {
			return fmt.Errorf("serve: fault group %d: MTBFSeconds must be positive, got %g", i, g.MTBFSeconds)
		}
		if g.MTTRSeconds < 0 {
			return fmt.Errorf("serve: fault group %d: MTTRSeconds must be non-negative, got %g", i, g.MTTRSeconds)
		}
		if err := checkMode("group", i, g.Mode, g.Slowdown, g.LinkFactor); err != nil {
			return err
		}
	}
	for i, inj := range p.Injections {
		if inj.Replica < 0 || inj.Replica >= decoders {
			return fmt.Errorf("serve: fault injection %d: Replica %d outside [0, %d)", i, inj.Replica, decoders)
		}
		if inj.At < 0 || inj.DurationSeconds < 0 {
			return fmt.Errorf("serve: fault injection %d: At and DurationSeconds must be non-negative", i)
		}
		if err := checkMode("injection", i, inj.Mode, inj.Slowdown, inj.LinkFactor); err != nil {
			return err
		}
	}
	return nil
}

// FaultStats is the failure-and-recovery block of a Report (nil when
// the run injected no faults).
type FaultStats struct {
	// Crashes / Slowdowns / LinkDegradations count applied fault events
	// by mode (a crash chain firing on an already-down replica applies
	// nothing and counts nothing).
	Crashes          int
	Slowdowns        int
	LinkDegradations int
	// Retries counts re-admissions of crash-lost requests; Failed
	// counts requests whose retry budget ran out (they are excluded
	// from latency samples and token counts but still count against
	// SLO attainment).
	Retries int
	Failed  int
	// LostKVBytes totals the live KV dropped by crashes.
	LostKVBytes int64
	// DowntimeSeconds integrates every applied fault's down interval
	// (crash outages plus degraded intervals).
	DowntimeSeconds float64
}

// faultChain is one compiled failure process: a replica, a mode, and
// the private RNG stream its intervals are drawn from.
type faultChain struct {
	replica int
	mode    FaultMode
	// factor is the slowdown or link multiplier while down.
	factor float64
	// mtbf/mttr are the draw means; oneshot chains (Injections) fire
	// once at a scripted time for a scripted duration instead.
	mtbf, mttr float64
	oneshot    bool
	duration   float64
	// state is the splitmix64 stream position.
	state uint64
	// applied marks a chain currently holding its fault on the fleet
	// (a crash chain that fired on a non-online replica applies
	// nothing); failedAt is when it was applied.
	applied  bool
	failedAt float64
}

// next advances the chain's splitmix64 stream one position.
func (c *faultChain) next() uint64 {
	c.state += 0x9e3779b97f4a7c15
	z := c.state
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// exp draws an exponential interval with the given mean. The stream
// advances even when the mean is zero, so a chain's later draws do not
// depend on which earlier faults applied.
func (c *faultChain) exp(mean float64) float64 {
	u := float64(c.next()>>11) * (1.0 / (1 << 53))
	return -mean * math.Log(1-u)
}

// downFor is the chain's next down-interval length.
func (c *faultChain) downFor() float64 {
	if c.oneshot {
		return c.duration
	}
	return c.exp(c.mttr)
}

// initFaults compiles the plan into chains and pushes each chain's
// first evFail. Group chains start their up-interval at the first
// arrival (machines are healthy when traffic starts); injections fire
// at their scripted time.
func (fs *fleetSim) initFaults() {
	p := fs.cfg.Faults
	if !p.active() {
		return
	}
	fs.slowStack = make([][]*faultChain, len(fs.decoders))
	fs.icScale = 1
	fs.fstats = &FaultStats{}
	for gi, g := range p.Groups {
		for di, d := range fs.decoders {
			if g.Spec >= 0 && d.spec != g.Spec {
				continue
			}
			c := &faultChain{
				replica: di, mode: g.Mode, mtbf: g.MTBFSeconds, mttr: g.MTTRSeconds,
				factor: g.Slowdown,
				state:  p.Seed + uint64(gi)*0x9e3779b97f4a7c15 + uint64(di)*0x517cc1b727220a95,
			}
			if g.Mode == FaultLink {
				c.factor = g.LinkFactor
			}
			fs.chains = append(fs.chains, c)
			fs.push(evFail, nil, len(fs.chains)-1, di, fs.firstArrival+c.exp(c.mtbf))
		}
	}
	for _, inj := range p.Injections {
		c := &faultChain{
			replica: inj.Replica, mode: inj.Mode, factor: inj.Slowdown,
			oneshot: true, duration: inj.DurationSeconds,
		}
		if inj.Mode == FaultLink {
			c.factor = inj.LinkFactor
		}
		fs.chains = append(fs.chains, c)
		fs.push(evFail, nil, len(fs.chains)-1, inj.Replica, inj.At)
	}
}

// degraded reports whether replica i currently runs under a slowdown
// fault (excluded from placement, steal-into and migration targets).
func (fs *fleetSim) degraded(i int) bool {
	return fs.slowStack != nil && len(fs.slowStack[i]) > 0
}

// slowFactor is replica i's current iteration-pricing multiplier: the
// product of its active slowdown chains' factors (1 when healthy).
func (fs *fleetSim) slowFactor(i int) float64 {
	f := 1.0
	if fs.slowStack != nil {
		for _, c := range fs.slowStack[i] {
			f *= c.factor
		}
	}
	return f
}

// applySlow re-derives replica i's slowdown product from its chain
// stack (recomputed in stack order, never divided out, so repeated
// fault/recover cycles cannot drift) and installs it on the engine and
// the colocated prefill server.
func (fs *fleetSim) applySlow(i int) {
	f := fs.slowFactor(i)
	d := fs.decoders[i]
	d.eng.SetTimeScale(f)
	if d.pre != nil {
		if f != 1 {
			d.pre.slow = f
		} else {
			d.pre.slow = 0
		}
	}
	fs.touch(i)
}

// applyLink re-derives the fleet-wide interconnect factor from the
// active link chains.
func (fs *fleetSim) applyLink() {
	f := 1.0
	for _, c := range fs.linkStack {
		f *= c.factor
	}
	fs.icScale = f
}

// transferSeconds prices one interconnect transfer under the current
// link degradation.
func (fs *fleetSim) transferSeconds(bytes int64) float64 {
	t := fs.ic.TransferSeconds(bytes)
	if fs.icScale > 1 {
		t *= fs.icScale
	}
	return t
}

// applyFault applies one fired chain at its timestamp.
func (fs *fleetSim) applyFault(c *faultChain, at float64) error {
	switch c.mode {
	case FaultCrash:
		i := c.replica
		if fs.state[i] != stateOnline {
			return nil // only serving replicas crash; the chain still re-arms
		}
		d := fs.decoders[i]
		lost, liveKV, err := d.eng.FailAll()
		if err != nil {
			return err
		}
		// setState's exit-online branch subtracts the replica's cached
		// view contributions (its pre-crash load), so the aggregates stay
		// consistent without an intermediate touch.
		fs.setState(i, stateFailed)
		c.applied, c.failedAt = true, at
		fs.fstats.Crashes++
		fs.fstats.LostKVBytes += liveKV
		// Close the online interval: downtime is not billed as capacity.
		since := fs.onlineSince[i]
		if since < fs.firstArrival {
			since = fs.firstArrival
		}
		if at > since {
			fs.onlineSecs[i] += at - since
		}
		for _, l := range lost {
			if err := fs.retryOrFail(fs.recs[l.Req.ID], l.Gen, at); err != nil {
				return err
			}
		}
		// The crash is a capacity-loss boundary: let the autoscaler
		// provision a replacement before the retries land.
		fs.autoscale(at)
	case FaultSlowdown:
		c.applied, c.failedAt = true, at
		fs.fstats.Slowdowns++
		fs.slowStack[c.replica] = append(fs.slowStack[c.replica], c)
		fs.applySlow(c.replica)
	case FaultLink:
		c.applied, c.failedAt = true, at
		fs.fstats.LinkDegradations++
		fs.linkStack = append(fs.linkStack, c)
		fs.applyLink()
	}
	return nil
}

// clearFault ends one applied chain's down interval at its timestamp.
func (fs *fleetSim) clearFault(c *faultChain, at float64) {
	if !c.applied {
		return
	}
	c.applied = false
	fs.fstats.DowntimeSeconds += at - c.failedAt
	switch c.mode {
	case FaultCrash:
		i := c.replica
		// Manual restore, not setOnline: recovery is not a scale event
		// (the timeline and ScaleUps count autoscaler actions only).
		fs.setState(i, stateOnline)
		fs.onlineSince[i] = at
		if d := fs.decoders[i]; d.eng.Idle() && d.clock < at {
			d.clock = at
		}
	case FaultSlowdown:
		stack := fs.slowStack[c.replica]
		for k, sc := range stack {
			if sc == c {
				fs.slowStack[c.replica] = append(stack[:k], stack[k+1:]...)
				break
			}
		}
		fs.applySlow(c.replica)
	case FaultLink:
		for k, lc := range fs.linkStack {
			if lc == c {
				fs.linkStack = append(fs.linkStack[:k], fs.linkStack[k+1:]...)
				break
			}
		}
		fs.applyLink()
	}
}

// retryOrFail routes one crash-lost request: within budget it schedules
// an evRetry after the deterministic exponential backoff (gen tokens of
// progress ride along for the recompute), out of budget it is marked
// permanently failed.
func (fs *fleetSim) retryOrFail(rec *record, gen int, at float64) error {
	p := fs.cfg.Faults
	rec.retries++
	if p.MaxRetries >= 0 && rec.retries > p.MaxRetries {
		rec.failed = true
		fs.fstats.Failed++
		fs.finished++
		delete(fs.waiting, rec.req.ID) // no-op for fixed fleets (nil map)
		return nil
	}
	fs.fstats.Retries++
	backoff := p.BackoffSeconds
	for k := 1; k < rec.retries; k++ {
		backoff *= 2
	}
	fs.push(evRetry, rec, gen, -1, at+backoff)
	return nil
}

// faultQuiescent reports whether nothing but fault timers can ever run
// again: no chain applied, every decoder idle, and only
// fault/scale-eval entries (or stale ready entries) left in the heap.
// In that state no future event changes placement capacity upward, so a
// non-empty held queue must either be resolved by idleWork's backstop
// or is a permanent stall — without the check, an eternal fault chain
// would keep a stalled simulation spinning forever.
func (fs *fleetSim) faultQuiescent() bool {
	for _, c := range fs.chains {
		if c.applied {
			return false
		}
	}
	for _, d := range fs.decoders {
		if !d.eng.Idle() {
			return false
		}
	}
	for _, ev := range fs.events {
		switch ev.kind {
		case evFail, evRecover, evScaleEval, evReady:
		default:
			return false
		}
	}
	return true
}
