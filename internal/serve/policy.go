package serve

import (
	"fmt"
	"hash/fnv"

	"pimphony/internal/workload"
)

// Load is one replica's queue state at a routing decision, as a policy
// sees it.
type Load struct {
	// OutstandingTokens is the decode work still owed by the replica:
	// remaining generation tokens of active requests plus the full
	// generation length of pending ones.
	OutstandingTokens int
	// Active and Pending are the replica's admitted and queued request
	// counts.
	Active, Pending int
	// Clock is the replica's simulated time (it can run ahead of the
	// arrival being routed by up to one decode iteration).
	Clock float64
}

// Policy routes one arrival to a replica index. Policies may keep state
// (round-robin does), so each simulation needs its own instance.
type Policy interface {
	Name() string
	Pick(a workload.Arrival, loads []Load) int
}

// LoadOblivious marks a Policy whose Pick reads nothing from the loads
// slice beyond its length. The serving spine exploits the marker: a
// routing decision that observes no replica state needs no replica
// synchronized, so only the destination is advanced to the arrival
// time and the rest keep simulating in larger leaps (des.go). Reports
// are byte-identical either way — the equivalence suite pins it — so
// the marker is purely a performance contract; implement it only if
// Pick truly never inspects a Load.
type LoadOblivious interface {
	LoadOblivious()
}

// RoundRobin cycles through replicas in arrival order, the baseline
// load-oblivious policy.
func RoundRobin() Policy { return &roundRobin{} }

type roundRobin struct{ next int }

func (p *roundRobin) Name() string { return "round-robin" }

// LoadOblivious marks round-robin for destination-only advancement: it
// cycles by arrival order alone.
func (p *roundRobin) LoadOblivious() {}

func (p *roundRobin) Pick(_ workload.Arrival, loads []Load) int {
	i := p.next % len(loads)
	p.next++
	return i
}

// LeastOutstandingTokens routes to the replica owing the fewest decode
// tokens (ties break to the lowest index), the serving analogue of
// least-outstanding-requests that weights long generations more.
func LeastOutstandingTokens() Policy { return leastTokens{} }

type leastTokens struct{}

func (leastTokens) Name() string { return "least-tokens" }

func (leastTokens) Pick(_ workload.Arrival, loads []Load) int {
	best := 0
	for i, l := range loads {
		if l.OutstandingTokens < loads[best].OutstandingTokens {
			best = i
		}
	}
	return best
}

// SessionAffinity hashes the arrival's session key to a replica, so all
// requests of one conversation land on the same engine (where a KV-prefix
// cache would make their contexts cheap to re-admit).
func SessionAffinity() Policy { return sessionAffinity{} }

type sessionAffinity struct{}

func (sessionAffinity) Name() string { return "session" }

// LoadOblivious marks session affinity for destination-only
// advancement: it hashes the session key alone.
func (sessionAffinity) LoadOblivious() {}

func (sessionAffinity) Pick(a workload.Arrival, loads []Load) int {
	h := fnv.New32a()
	var buf [8]byte
	v := uint64(a.Session)
	for i := range buf {
		buf[i] = byte(v >> (8 * i))
	}
	h.Write(buf[:])
	return int(h.Sum32() % uint32(len(loads)))
}

// PolicyByName builds a fresh policy instance from its CLI name.
func PolicyByName(name string) (Policy, error) {
	switch name {
	case "round-robin":
		return RoundRobin(), nil
	case "least-tokens":
		return LeastOutstandingTokens(), nil
	case "session":
		return SessionAffinity(), nil
	default:
		return nil, fmt.Errorf("serve: unknown policy %q (known: %v)", name, PolicyNames())
	}
}

// PolicyNames lists the selectable policies in CLI order.
func PolicyNames() []string { return []string{"round-robin", "least-tokens", "session"} }
