package serve

import "testing"

// TestDequeFIFOAndPrepend checks the ring against a reference slice
// through mixed pushBack/pushFront/popFront traffic that forces several
// growths and full wrap-arounds.
func TestDequeFIFOAndPrepend(t *testing.T) {
	var d deque[int]
	var ref []int
	s := uint64(99)
	next := func(m int) int {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		return int(s % uint64(m))
	}
	val := 0
	for op := 0; op < 20000; op++ {
		switch next(5) {
		case 0, 1:
			val++
			d.pushBack(val)
			ref = append(ref, val)
		case 2:
			val++
			d.pushFront(val)
			ref = append([]int{val}, ref...)
		default:
			if len(ref) == 0 {
				if d.len() != 0 {
					t.Fatalf("op %d: len %d, want 0", op, d.len())
				}
				continue
			}
			if got := d.front(); got != ref[0] {
				t.Fatalf("op %d: front %d, want %d", op, got, ref[0])
			}
			if got := d.popFront(); got != ref[0] {
				t.Fatalf("op %d: popFront %d, want %d", op, got, ref[0])
			}
			ref = ref[1:]
		}
		if d.len() != len(ref) {
			t.Fatalf("op %d: len %d, want %d", op, d.len(), len(ref))
		}
	}
	// Drain and verify the full remaining order.
	for i, want := range ref {
		if got := d.popFront(); got != want {
			t.Fatalf("drain %d: got %d, want %d", i, got, want)
		}
	}
	if d.len() != 0 {
		t.Errorf("drained deque has len %d", d.len())
	}
}

// TestDequeReleasesReferences: popped slots must not pin pointers.
func TestDequeReleasesReferences(t *testing.T) {
	var d deque[*int]
	v := new(int)
	d.pushBack(v)
	d.popFront()
	if d.buf[0] != nil {
		t.Error("popFront left a live pointer in the ring")
	}
}
