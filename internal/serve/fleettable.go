package serve

import (
	"context"
	"fmt"
	"strings"

	"pimphony/internal/sweep"
	"pimphony/internal/tablefmt"
	"pimphony/internal/workload"
)

// FleetPoint is one cell of a fleet-comparison sweep: a named fleet
// composition serving an arrival schedule at the given rate. The specs
// carry their own KV budgets, so comparisons at equal aggregate budget
// are expressed by the point set, not the table.
type FleetPoint struct {
	Name  string // fleet label, e.g. "pim", "gpu", "disagg"
	Specs []ReplicaSpec
	Rate  float64 // offered arrival rate in requests/second
	// Cfg carries the scheduler knobs (Interconnect, Placement is built
	// fresh per run from PlacementName, Migrate, Steal); System/Replicas
	// /Policy fields are ignored.
	Cfg           Config
	PlacementName string // a PlacementNames() entry; "" = kv-headroom
}

// FleetTable evaluates fleet compositions — each an independent,
// internally sequential fleet simulation — through the parallel sweep
// engine and renders the disaggregation comparison: goodput and SLO
// attainment at equal SLO next to TTFT/TBT tails, the explicitly priced
// transfer seconds against the recompute seconds they displaced, the
// scheduler's migration/steal counts, and joules per generated token.
// mkArrivals must be deterministic, so the table is byte-identical at
// any sweep parallelism. The cmd/pimphony-serve -fleet mode and the
// "fleet" experiment driver both render through here.
func FleetTable(ctx context.Context, title string, pts []FleetPoint, slo SLO,
	mkArrivals func(rate float64) ([]workload.Arrival, error),
	opts ...sweep.Option) (*tablefmt.Table, error) {
	t := tablefmt.New(title,
		"fleet", "repl", "req/s", "tok/s", "goodput", "slo-met%",
		"ttft-p50", "ttft-p95", "tbt-p95",
		"xfer-s", "recomp-s", "migr", "steal", "j/tok")
	rows, err := sweep.Rows(ctx, pts, func(ctx context.Context, p FleetPoint) ([]any, error) {
		cfg := p.Cfg
		cfg.Fleet = p.Specs
		cfg.SLO = slo
		name := p.PlacementName
		if name == "" {
			name = "kv-headroom"
		}
		pl, err := PlacementByName(name)
		if err != nil {
			return nil, err
		}
		cfg.Placement = pl
		arr, err := mkArrivals(p.Rate)
		if err != nil {
			return nil, err
		}
		rep, err := Run(ctx, cfg, arr)
		if err != nil {
			return nil, fmt.Errorf("fleet %s @ %g req/s: %w", p.Name, p.Rate, err)
		}
		ms := func(v float64) float64 { return 1e3 * v }
		fl := rep.Fleet
		return []any{p.Name, RoleSummary(p.Specs), p.Rate, rep.Throughput, rep.Goodput, 100 * rep.SLOMet,
			ms(rep.TTFT.P50), ms(rep.TTFT.P95), ms(rep.TBT.P95),
			fl.TransferSeconds, rep.Capacity.RecomputeSeconds,
			fl.Migrations, fl.Steals, fl.JoulesPerToken}, nil
	}, opts...)
	if err != nil {
		return nil, err
	}
	for _, r := range rows {
		t.AddRow(r...)
	}
	return t, nil
}

// RoleSummary compresses a fleet's shape into a label like "1pre+3dec"
// or "4uni" for table rows and logs.
func RoleSummary(specs []ReplicaSpec) string {
	counts := map[Role]int{}
	for _, s := range specs {
		counts[s.Role] += s.Count
	}
	abbrev := map[Role]string{RoleUnified: "uni", RolePrefill: "pre", RoleDecode: "dec"}
	var parts []string
	for _, r := range []Role{RolePrefill, RoleDecode, RoleUnified} {
		if counts[r] > 0 {
			parts = append(parts, fmt.Sprintf("%d%s", counts[r], abbrev[r]))
		}
	}
	return strings.Join(parts, "+")
}
