package serve

import (
	"context"
	"testing"

	"pimphony/internal/sweep"
	"pimphony/internal/workload"
)

func curvePoints() []CurvePoint {
	return []CurvePoint{
		{Policy: "round-robin", Replicas: 1, Rate: 50},
		{Policy: "round-robin", Replicas: 2, Rate: 50},
		{Policy: "least-tokens", Replicas: 1, Rate: 50},
		{Policy: "least-tokens", Replicas: 2, Rate: 50},
		{Policy: "session", Replicas: 2, Rate: 100},
	}
}

func curveArrivals(rate float64) ([]workload.Arrival, error) {
	gen := workload.NewGenerator(workload.QMSum(), 42)
	gen.DecodeLen = 6
	return workload.PoissonArrivals(gen, rate, 8, 16, 7)
}

// TestCurveTableParallelEquivalence is the serving counterpart of the
// experiment drivers' determinism contract: the rendered
// latency–throughput table must be byte-identical whether the sweep
// points run sequentially or on eight workers.
func TestCurveTableParallelEquivalence(t *testing.T) {
	slo := SLO{TTFT: 0.1, TBT: 0.025}
	seq, err := CurveTable(context.Background(), "curve", testSystem(), curvePoints(), slo, false,
		curveArrivals, sweep.Parallelism(1))
	if err != nil {
		t.Fatal(err)
	}
	par, err := CurveTable(context.Background(), "curve", testSystem(), curvePoints(), slo, false,
		curveArrivals, sweep.Parallelism(8))
	if err != nil {
		t.Fatal(err)
	}
	if seq.String() != par.String() {
		t.Errorf("parallel table diverges from sequential:\n--- sequential ---\n%s--- parallel ---\n%s",
			seq.String(), par.String())
	}
	if len(seq.Rows) != len(curvePoints()) {
		t.Fatalf("table has %d rows for %d points", len(seq.Rows), len(curvePoints()))
	}
}

func TestCurveTableErrors(t *testing.T) {
	bad := []CurvePoint{{Policy: "nope", Replicas: 1, Rate: 10}}
	if _, err := CurveTable(context.Background(), "curve", testSystem(), bad, SLO{}, false, curveArrivals); err == nil {
		t.Error("unknown policy should error")
	}
}

// TestCapacityTable: the Static-vs-DPA renderer must produce one row
// per point with the alloc column intact, be byte-identical at any
// sweep parallelism, and reject unknown allocator names.
func TestCapacityTable(t *testing.T) {
	cfg := testSystem()
	cfg.KVBudgetBytes = 32 << 30
	mk := func(rate float64) ([]workload.Arrival, error) {
		gen := workload.NewGenerator(workload.QMSum(), 42)
		gen.DecodeLen = 4
		return workload.PoissonArrivals(gen, rate, 4, 10, 43)
	}
	pts := []CapacityPoint{
		{Alloc: "static", Replicas: 1, Rate: 32},
		{Alloc: "dpa", Replicas: 1, Rate: 32},
	}
	render := func(par int) string {
		t.Helper()
		prev := sweep.SetDefault(par)
		defer sweep.SetDefault(prev)
		tb, err := CapacityTable(context.Background(), "cap", cfg, "round-robin", pts, SLO{}, mk)
		if err != nil {
			t.Fatal(err)
		}
		return tb.String()
	}
	seq := render(1)
	if par := render(8); par != seq {
		t.Fatalf("capacity table diverges across parallelism:\n%s\nvs\n%s", seq, par)
	}
	tb, err := CapacityTable(context.Background(), "cap", cfg, "round-robin", pts, SLO{}, mk)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 2 || tb.Rows[0][0] != "static" || tb.Rows[1][0] != "dpa" {
		t.Fatalf("unexpected rows: %v", tb.Rows)
	}
	if _, err := CapacityTable(context.Background(), "cap", cfg, "round-robin",
		[]CapacityPoint{{Alloc: "paged", Replicas: 1, Rate: 1}}, SLO{}, mk); err == nil {
		t.Error("unknown allocator should error")
	}
	if _, err := CapacityTable(context.Background(), "cap", cfg, "nope", pts, SLO{}, mk); err == nil {
		t.Error("unknown policy should error")
	}
}
