package serve

import (
	"fmt"

	"pimphony/internal/workload"
)

// FleetLoad is one decode replica's state at a fleet placement
// decision: the routing Load plus the KV-headroom view the global
// scheduler admits against.
type FleetLoad struct {
	Load
	// Role is the replica's place in the prefill/decode split
	// (RoleUnified or RoleDecode; pure-prefill replicas are not decode
	// targets and never appear in a placement decision).
	Role Role
	// FreeKVBytes is the replica's unreserved KV pool capacity.
	FreeKVBytes int64
	// Fits reports whether the replica's allocator could admit the
	// request being placed right now at its serving horizon (the same
	// predicate the engine's own admission uses). Placement against
	// fleet-wide headroom means preferring fitting replicas; a request
	// fitting nowhere is held in the global queue until capacity frees.
	Fits bool
}

// Placement places one request on a decode replica index, or returns -1
// to hold it in the fleet's global queue until a later decision point
// (the cross-replica admission control: no replica has KV headroom, so
// the request should not yet be committed to any per-replica queue).
// Placements may keep state, so each simulation needs its own instance.
type Placement interface {
	Name() string
	Place(r workload.Request, loads []FleetLoad) int
}

// indexedPlacement is the built-in policies' O(log n) fast path: answer
// a placement from the fleet's ordered indexes (views.go) instead of a
// freshly built []FleetLoad scan. Each implementation must pick the
// byte-identical replica its Place method picks — the indexes order by
// (key, replica index), so "first acceptable entry in index order"
// reproduces the scans' lowest-index tie-breaking exactly; the oracle
// suite in views_test.go pins the equivalence. Custom Placements
// without this interface still get the full snapshot scan.
type indexedPlacement interface {
	placeIndexed(fs *fleetSim, r workload.Request) int
}

// KVHeadroom places on the fitting replica with the most free KV pool
// (ties break to the lowest index) and holds when nothing fits — the
// default global-scheduler policy: pack by capacity headroom, never
// commit a request to a replica that would have to queue it on memory.
func KVHeadroom() Placement { return kvHeadroom{} }

type kvHeadroom struct{}

func (kvHeadroom) Name() string { return "kv-headroom" }

func (kvHeadroom) Place(_ workload.Request, loads []FleetLoad) int {
	best := -1
	for i, l := range loads {
		if !l.Fits {
			continue
		}
		if best < 0 || l.FreeKVBytes > loads[best].FreeKVBytes {
			best = i
		}
	}
	return best
}

// placeIndexed walks online decoders by free KV descending (ties to the
// lowest index) and takes the first that can admit the request.
func (kvHeadroom) placeIndexed(fs *fleetSim, r workload.Request) int {
	dst := -1
	fs.views.byFreeKV.ascend(func(i int) bool {
		if !fs.decoders[i].eng.HasHeadroom(r) {
			return true
		}
		dst = i
		return false
	})
	return dst
}

// LeastTokensFit places on the fitting replica owing the fewest decode
// tokens (ties break to the lowest index) and holds when nothing fits —
// the load-balancing analogue of LeastOutstandingTokens under the
// fleet's admission control.
func LeastTokensFit() Placement { return leastTokensFit{} }

type leastTokensFit struct{}

func (leastTokensFit) Name() string { return "least-tokens-fit" }

func (leastTokensFit) Place(_ workload.Request, loads []FleetLoad) int {
	best := -1
	for i, l := range loads {
		if !l.Fits {
			continue
		}
		if best < 0 || l.OutstandingTokens < loads[best].OutstandingTokens {
			best = i
		}
	}
	return best
}

// placeIndexed walks online decoders by outstanding decode tokens
// ascending (ties to the lowest index) and takes the first that can
// admit the request.
func (leastTokensFit) placeIndexed(fs *fleetSim, r workload.Request) int {
	dst := -1
	fs.views.byTokens.ascend(func(i int) bool {
		if !fs.decoders[i].eng.HasHeadroom(r) {
			return true
		}
		dst = i
		return false
	})
	return dst
}

// RoundRobinFit cycles through the fitting replicas in decision order
// and holds when nothing fits — the load-oblivious fleet baseline.
func RoundRobinFit() Placement { return &roundRobinFit{} }

type roundRobinFit struct{ next int }

func (*roundRobinFit) Name() string { return "round-robin-fit" }

func (p *roundRobinFit) Place(_ workload.Request, loads []FleetLoad) int {
	for probe := 0; probe < len(loads); probe++ {
		i := (p.next + probe) % len(loads)
		if loads[i].Fits {
			p.next = i + 1
			return i
		}
	}
	return -1
}

// placeIndexed resumes the cyclic probe at the cursor over the online
// set (keyed by replica index): entries at or after the cursor first,
// then wrapping to those before it. The linear probe visited non-online
// replicas too, but they never fit, so skipping them is identical; the
// cursor advances only on a successful placement, as in Place. Degraded
// replicas stay in the online index (they are online), so the probe
// skips them explicitly, matching the snapshot's Fits=false.
func (p *roundRobinFit) placeIndexed(fs *fleetSim, r workload.Request) int {
	start := p.next % len(fs.decoders)
	dst := -1
	probe := func(i int) bool {
		if fs.degraded(i) || !fs.decoders[i].eng.HasHeadroom(r) {
			return true
		}
		dst = i
		return false
	}
	fs.views.online.ascendFrom(int64(start), start, probe)
	if dst < 0 {
		fs.views.online.ascend(func(i int) bool {
			if i >= start {
				return false // wrapped back to the cursor; stop
			}
			return probe(i)
		})
	}
	if dst >= 0 {
		p.next = dst + 1
	}
	return dst
}

// PlacementByName builds a fresh placement instance from its CLI name.
func PlacementByName(name string) (Placement, error) {
	switch name {
	case "kv-headroom":
		return KVHeadroom(), nil
	case "least-tokens-fit":
		return LeastTokensFit(), nil
	case "round-robin-fit":
		return RoundRobinFit(), nil
	default:
		return nil, fmt.Errorf("serve: unknown placement %q (known: %v)", name, PlacementNames())
	}
}

// PlacementNames lists the selectable fleet placement policies in CLI
// order.
func PlacementNames() []string {
	return []string{"kv-headroom", "least-tokens-fit", "round-robin-fit"}
}
