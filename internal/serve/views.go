// Incrementally maintained scheduler views: the fleet-size-independent
// answer to every question the global scheduler used to answer with an
// O(n) scan per decision. Each ordered index (ordindex.go) and each
// aggregate counter is updated at exactly the engine events that change
// it — admit, token growth, completion, preemption, transfer landing,
// provision, drain — through two choke points:
//
//   - touch(i): replica i's engine state (or its incoming/landing
//     transfer counts) changed; refresh its index keys, set
//     memberships and aggregate contributions. O(log n).
//   - setState(i, st): replica i's autoscaling lifecycle state changed;
//     move it between the online views, the standby index and the
//     state counters. O(log n).
//
// Every view reproduces its linear scan byte for byte: the indexes
// order by (key, replica index), so "first acceptable entry in index
// order" is exactly "best entry, ties to the lowest index" — the oracle
// suite in views_test.go pins each one against the scan it replaced.
package serve

import "math"

// fleetViews is the indexed-scheduler state embedded in fleetSim.
type fleetViews struct {
	// byFreeKV orders online decoders by free KV descending (key is
	// -FreeKVBytes): KVHeadroom placement and migration-destination
	// picks take the first entry that admits the request.
	byFreeKV ordIndex
	// byTokens orders online decoders by outstanding decode tokens
	// ascending: LeastTokensFit takes the first entry that admits.
	byTokens ordIndex
	// online is the online decoder set in index order — the cyclic
	// cursor domain of RoundRobinFit.
	online ordIndex
	// stealSrc orders steal sources — decoders with an active batch and
	// a backlog — by pending count descending (key is -Pending): the
	// first entry is the most backlogged replica, ties to lowest index.
	stealSrc ordIndex
	// thieves is the steal-thief set: online decoders with no work at
	// all and no transfer already in flight toward them.
	thieves ordIndex
	// drainable is the drain-candidate set (thieves minus replicas with
	// a colocated prefill about to land); its count is the view's
	// IdleOnline and its last entry the next drain victim.
	drainable ordIndex
	// standby is the offline replica set; its first entry is the next
	// provision target.
	standby ordIndex
	// prefillFree orders dedicated prefill servers by next-free time
	// (key is the order-preserving Float64bits image of the
	// non-negative free timestamp).
	prefillFree ordIndex

	// Cached per-decoder contributions currently folded into the
	// aggregates below (zero while a replica is not online).
	pending, active []int
	free            []int64
	pool            []int64 // KVPoolBytes, constant per replica

	// Aggregates over the online decoders, and the lifecycle counters —
	// together the O(1) AutoscaleView fold.
	queued, activeSum                 int
	freeSum, poolSum                  int64
	onlineCnt, warmingCnt, standbyCnt int
	failedCnt                         int

	// thiefScratch and loadScratch are reused per-decision buffers: the
	// steal loop's thief snapshot and the []FleetLoad build for custom
	// (non-indexed) placements.
	thiefScratch []int
	loadScratch  []FleetLoad
}

// initViews sizes the indexes and folds in the fleet's initial replica
// states (engines all empty, pools all free).
func (fs *fleetSim) initViews() {
	v := &fs.views
	n := len(fs.decoders)
	v.byFreeKV.init(n)
	v.byTokens.init(n)
	v.online.init(n)
	v.stealSrc.init(n)
	v.thieves.init(n)
	v.drainable.init(n)
	v.standby.init(n)
	v.pending = make([]int, n)
	v.active = make([]int, n)
	v.free = make([]int64, n)
	v.pool = make([]int64, n)
	for i, d := range fs.decoders {
		v.pool[i] = d.eng.KVPoolBytes()
		switch fs.state[i] {
		case stateOnline:
			v.onlineCnt++
			v.poolSum += v.pool[i]
			v.online.set(i, int64(i))
			fs.touch(i)
		case stateOffline:
			v.standbyCnt++
			v.standby.set(i, int64(i))
		}
	}
	v.prefillFree.init(len(fs.prefills))
	for pi, p := range fs.prefills {
		fs.touchPrefill(pi, p)
	}
}

// touch refreshes replica i's view entries after any engine call or
// transfer-count change. Non-online replicas carry no entries (their
// engines are empty by construction — work never lands on standby,
// warming or draining replicas), so the online guard keeps touch and
// setState from double-counting.
func (fs *fleetSim) touch(i int) {
	if fs.state[i] != stateOnline {
		return
	}
	v := &fs.views
	eng := fs.decoders[i].eng
	pending, active := eng.Pending(), eng.Active()
	free := eng.FreeKVBytes()
	v.queued += pending - v.pending[i]
	v.activeSum += active - v.active[i]
	v.freeSum += free - v.free[i]
	v.pending[i], v.active[i], v.free[i] = pending, active, free
	if fs.degraded(i) {
		// A slowdown-degraded replica leaves the placement and
		// migration-target indexes — new work routes around it while its
		// admitted batch limps on — but keeps its aggregate contributions
		// (it is online and still serving) and stays a steal source.
		v.byFreeKV.remove(i)
		v.byTokens.remove(i)
	} else {
		v.byFreeKV.set(i, -free)
		v.byTokens.set(i, int64(eng.OutstandingTokens()))
	}
	if active > 0 && pending > 0 {
		v.stealSrc.set(i, -int64(pending))
	} else {
		v.stealSrc.remove(i)
	}
	idle := eng.Idle() && fs.incoming[i] == 0
	if idle && !fs.degraded(i) {
		v.thieves.set(i, int64(i))
	} else {
		v.thieves.remove(i)
	}
	if idle && fs.landing[i] == 0 {
		v.drainable.set(i, int64(i))
	} else {
		v.drainable.remove(i)
	}
}

// setState moves replica i across the autoscaling lifecycle, keeping
// every index membership and counter in step with fs.state.
func (fs *fleetSim) setState(i int, st replState) {
	if fs.state[i] == st {
		return
	}
	v := &fs.views
	switch fs.state[i] {
	case stateOnline:
		v.onlineCnt--
		v.queued -= v.pending[i]
		v.activeSum -= v.active[i]
		v.freeSum -= v.free[i]
		v.poolSum -= v.pool[i]
		v.pending[i], v.active[i], v.free[i] = 0, 0, 0
		v.byFreeKV.remove(i)
		v.byTokens.remove(i)
		v.online.remove(i)
		v.stealSrc.remove(i)
		v.thieves.remove(i)
		v.drainable.remove(i)
	case stateWarming:
		v.warmingCnt--
	case stateOffline:
		v.standbyCnt--
		v.standby.remove(i)
	case stateFailed:
		v.failedCnt--
	}
	fs.state[i] = st
	switch st {
	case stateOnline:
		v.onlineCnt++
		v.poolSum += v.pool[i]
		v.online.set(i, int64(i))
		fs.touch(i)
	case stateWarming:
		v.warmingCnt++
	case stateOffline:
		v.standbyCnt++
		v.standby.set(i, int64(i))
	case stateFailed:
		v.failedCnt++
	}
}

// touchPrefill re-keys a dedicated prefill server after it took a
// prompt. Float64bits is order-preserving on the non-negative free
// timestamps, so first() is the earliest-free server, ties to the
// lowest index — exactly the scan pickPrefill ran.
func (fs *fleetSim) touchPrefill(pi int, p *prefillServer) {
	fs.views.prefillFree.set(pi, int64(math.Float64bits(p.free)))
}
