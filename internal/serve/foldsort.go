// The report fold's sorting primitive: an LSD radix sort over the
// order-preserving integer image of float64, replacing the
// sort.Float64s call in quantiles. Comparison sorting R latencies per
// distribution made the report fold O(R log R); the radix passes are
// O(R) with a single reused scratch buffer, and the resulting ascending
// sequence is value-identical to sort.Float64s on the latency samples
// (which contain no NaNs and no negative zeros), so every quantile pick
// and the mean's left-to-right summation order — and therefore every
// pinned table — are byte-identical.
package serve

import "math"

// floatKey maps a float64 to a uint64 whose unsigned order matches the
// float's ascending order: flip all bits of negatives, set the sign bit
// of non-negatives.
func floatKey(x float64) uint64 {
	b := math.Float64bits(x)
	if b>>63 == 1 {
		return ^b
	}
	return b | 1<<63
}

// radixSortFloat64 sorts xs ascending in place. tmp is scratch space of
// at least len(xs) (allocated here when too small), letting callers
// reuse one buffer across distributions.
func radixSortFloat64(xs, tmp []float64) {
	n := len(xs)
	if n < 2 {
		return
	}
	if n <= 48 {
		// Insertion sort: cheaper than eight counting passes, same
		// ascending value sequence.
		for i := 1; i < n; i++ {
			x := xs[i]
			j := i - 1
			for j >= 0 && xs[j] > x {
				xs[j+1] = xs[j]
				j--
			}
			xs[j+1] = x
		}
		return
	}
	if len(tmp) < n {
		tmp = make([]float64, n)
	}
	// Histogram every byte lane in one pass.
	var counts [8][256]int
	for _, x := range xs {
		k := floatKey(x)
		for p := 0; p < 8; p++ {
			counts[p][(k>>(p*8))&0xff]++
		}
	}
	src, dst := xs, tmp[:n]
	for p := 0; p < 8; p++ {
		c := &counts[p]
		// A lane where every key shares one byte value permutes nothing.
		if c[(floatKey(src[0])>>(p*8))&0xff] == n {
			continue
		}
		sum := 0
		for i := range c {
			c[i], sum = sum, sum+c[i]
		}
		for _, x := range src {
			b := (floatKey(x) >> (p * 8)) & 0xff
			dst[c[b]] = x
			c[b]++
		}
		src, dst = dst, src
	}
	if &src[0] != &xs[0] {
		copy(xs, src)
	}
}
