// Fault-injection oracles: a zero plan must reproduce the fault-free
// tables byte-for-byte, an instant-recover crash must price exactly one
// KV recompute, an unlimited retry budget must lose nothing, an
// exhausted budget must surface in the Faults block without corrupting
// the fold, and fault timing must be a pure function of the plan across
// leap granularity and sweep parallelism (equiv_test.go pins that
// axis).
package serve_test

import (
	"math"
	"testing"

	"pimphony/internal/serve"
	"pimphony/internal/simtest"
	"pimphony/internal/timing"
	"pimphony/internal/workload"
)

// faultFleets builds the fleet shapes the fault oracles sweep: unified
// fixed, disaggregated fixed with migration and stealing, and an
// SLO-autoscaled unified pool.
func faultFleets() map[string]func() serve.Config {
	return map[string]func() serve.Config{
		"unified": func() serve.Config {
			return serve.Config{
				Fleet: []serve.ReplicaSpec{
					{System: simtest.System("pim-dpa"), Count: 3, Role: serve.RoleUnified},
				},
				SLO: serve.SLO{TTFT: 1, TBT: 0.2},
			}
		},
		"disaggregated": func() serve.Config {
			return serve.Config{
				Fleet: []serve.ReplicaSpec{
					{System: simtest.System("pim-dpa"), Count: 1, Role: serve.RolePrefill},
					{System: simtest.System("pim-tight"), Count: 2, Role: serve.RoleDecode},
				},
				Interconnect: timing.DefaultInterconnect(),
				Migrate:      true,
				Steal:        true,
				SLO:          serve.SLO{TTFT: 1, TBT: 0.2},
			}
		},
		"autoscaled": func() serve.Config {
			return serve.Config{
				Fleet: []serve.ReplicaSpec{
					{System: simtest.System("pim-dpa"), Count: 3, Role: serve.RoleUnified, Min: 1, WarmupSeconds: 0.05},
				},
				Autoscaler: serve.NewSLOScaler(),
				SLO:        serve.SLO{TTFT: 1, TBT: 0.2},
			}
		},
	}
}

// TestZeroFaultPlanIsIdentity pins the gating guarantee: a nil plan and
// an empty FaultPlan{} compile to nothing, so every fleet table —
// fixed, disaggregated, autoscaled — is byte-identical with and without
// the fault layer in the configuration. (The benchgate pins the same
// identity for the full pinned experiment tables: the serve, capacity,
// fleet and systems hashes in bench/baseline.json predate the fault
// layer and must not move.)
func TestZeroFaultPlanIsIdentity(t *testing.T) {
	poisson, err := simtest.PoissonSchedule(16, 20, 7)
	if err != nil {
		t.Fatal(err)
	}
	tight, err := simtest.TightSchedule(10)
	if err != nil {
		t.Fatal(err)
	}
	for name, mk := range faultFleets() {
		t.Run(name, func(t *testing.T) {
			arr := poisson
			if name == "disaggregated" {
				// The pim-tight decode tier cannot admit the Poisson
				// schedule's long contexts; use the preemption schedule
				// sized for its KV budget.
				arr = tight
			}
			base := fp(t, mk(), arr)
			withNil := mk()
			withNil.Faults = nil
			empty := mk()
			// MaxRetries/Backoff without Groups or Injections is still an
			// inactive plan: nothing can fail, so nothing may change.
			empty.Faults = &serve.FaultPlan{Seed: 99, MaxRetries: 3, BackoffSeconds: 0.5}
			if got := fp(t, withNil, arr); got != base {
				t.Errorf("nil FaultPlan changed the report")
			}
			if got := fp(t, empty, arr); got != base {
				t.Errorf("empty FaultPlan changed the report")
			}
		})
	}
}

// TestInstantRecoverCrashEqualsRecompute is the pricing oracle for the
// crash path: one replica, one request, one zero-duration crash
// mid-decode. The request loses its KV, retries immediately (zero
// backoff, unlimited budget) onto the same — instantly recovered —
// replica, and re-admits through the recompute path. The completion
// must shift by exactly the recompute charge: crash-and-retry equals
// preempt-and-recompute.
func TestInstantRecoverCrashEqualsRecompute(t *testing.T) {
	arr := []workload.Arrival{{Req: workload.Request{ID: 1, Context: 64, Decode: 200}, At: 0}}
	mk := func() serve.Config {
		return serve.Config{
			Fleet: []serve.ReplicaSpec{
				{System: simtest.System("pim-dpa"), Count: 1, Role: serve.RoleUnified},
			},
			SLO: serve.SLO{TTFT: 1, TBT: 0.2},
		}
	}
	clean := mustRun(t, mk(), arr)
	first, done := clean.TTFT.Mean, clean.E2E.Mean
	if done <= first {
		t.Fatalf("degenerate clean run: first %g, done %g", first, done)
	}
	cfg := mk()
	cfg.Faults = &serve.FaultPlan{
		Injections: []serve.Injection{
			{Replica: 0, Mode: serve.FaultCrash, At: (first + done) / 2},
		},
		MaxRetries:     -1,
		BackoffSeconds: 0,
	}
	faulted := mustRun(t, cfg, arr)
	simtest.CheckInvariants(t, faulted, arr)
	f := faulted.Faults
	if f == nil {
		t.Fatal("faulted run reported no Faults block")
	}
	if f.Crashes != 1 || f.Retries != 1 || f.Failed != 0 {
		t.Fatalf("crashes/retries/failed = %d/%d/%d, want 1/1/0", f.Crashes, f.Retries, f.Failed)
	}
	if f.LostKVBytes <= 0 {
		t.Errorf("crash mid-decode lost %d KV bytes, want positive", f.LostKVBytes)
	}
	rc := faulted.Capacity.RecomputeSeconds
	if rc <= 0 {
		t.Fatalf("recompute charge %g, want positive", rc)
	}
	if shift := faulted.E2E.Mean - clean.E2E.Mean; math.Abs(shift-rc) > 1e-9 {
		t.Errorf("completion shifted by %g, want the recompute charge %g", shift, rc)
	}
	if faulted.TTFT.Mean != clean.TTFT.Mean {
		t.Errorf("first token moved from %g to %g; the crash happened after it", clean.TTFT.Mean, faulted.TTFT.Mean)
	}
}

// TestUnlimitedRetryBudgetLosesNothing: recurring crashes across the
// whole fleet with an unlimited retry budget must complete every
// request — failures cost latency and recompute, never requests.
func TestUnlimitedRetryBudgetLosesNothing(t *testing.T) {
	arr, err := simtest.PoissonSchedule(24, 20, 7)
	if err != nil {
		t.Fatal(err)
	}
	cfg := faultFleets()["unified"]()
	cfg.Faults = &serve.FaultPlan{
		Seed: 3,
		Groups: []serve.FaultGroup{
			{Spec: -1, Mode: serve.FaultCrash, MTBFSeconds: 0.05, MTTRSeconds: 0.02},
		},
		MaxRetries:     -1,
		BackoffSeconds: 0.005,
	}
	rep := mustRun(t, cfg, arr)
	simtest.CheckInvariants(t, rep, arr)
	f := rep.Faults
	if f == nil || f.Crashes == 0 {
		t.Fatalf("fault schedule never fired (Faults=%+v); the oracle is vacuous", f)
	}
	if f.Failed != 0 {
		t.Errorf("unlimited retry budget lost %d requests", f.Failed)
	}
	if f.Retries == 0 {
		t.Errorf("crashes fired but nothing retried; in-flight work was not withdrawn")
	}
	if f.DowntimeSeconds <= 0 {
		t.Errorf("downtime %g, want positive", f.DowntimeSeconds)
	}
}

// TestExhaustedRetryBudgetFailsLoudly: a zero retry budget under a
// guaranteed mid-run crash must surface permanently failed requests in
// the Faults block while the rest of the report still folds (the
// fault-aware invariants accept served = arrivals - failed).
func TestExhaustedRetryBudgetFailsLoudly(t *testing.T) {
	arr, err := simtest.PoissonSchedule(24, 20, 7)
	if err != nil {
		t.Fatal(err)
	}
	cfg := faultFleets()["unified"]()
	cfg.Faults = &serve.FaultPlan{
		Seed: 3,
		Groups: []serve.FaultGroup{
			{Spec: -1, Mode: serve.FaultCrash, MTBFSeconds: 0.05, MTTRSeconds: 0.02},
		},
		MaxRetries:     0,
		BackoffSeconds: 0,
	}
	rep := mustRun(t, cfg, arr)
	simtest.CheckInvariants(t, rep, arr)
	f := rep.Faults
	if f == nil || f.Crashes == 0 {
		t.Fatalf("fault schedule never fired (Faults=%+v); the oracle is vacuous", f)
	}
	if f.Failed == 0 {
		t.Errorf("zero retry budget under recurring crashes failed no requests")
	}
	if f.Retries != 0 {
		t.Errorf("zero budget retried %d times", f.Retries)
	}
}

// TestDegradationModesBite: slowdown and link faults must change the
// tables they claim to price — a slowed replica stretches latency, a
// degraded fabric stretches transfer seconds — while crash accounting
// stays zero.
func TestDegradationModesBite(t *testing.T) {
	arr, err := simtest.TightSchedule(10)
	if err != nil {
		t.Fatal(err)
	}
	mk := faultFleets()["disaggregated"]
	clean := mustRun(t, mk(), arr)

	slow := mk()
	slow.Faults = &serve.FaultPlan{
		Injections: []serve.Injection{
			{Replica: 0, Mode: serve.FaultSlowdown, At: 0, DurationSeconds: 1e6, Slowdown: 4},
			{Replica: 1, Mode: serve.FaultSlowdown, At: 0, DurationSeconds: 1e6, Slowdown: 4},
		},
	}
	srep := mustRun(t, slow, arr)
	simtest.CheckInvariants(t, srep, arr)
	if srep.Faults.Slowdowns != 2 || srep.Faults.Crashes != 0 {
		t.Fatalf("slowdowns/crashes = %d/%d, want 2/0", srep.Faults.Slowdowns, srep.Faults.Crashes)
	}
	if srep.E2E.Mean <= clean.E2E.Mean {
		t.Errorf("4x slowdown on every decoder left E2E at %g (clean %g)", srep.E2E.Mean, clean.E2E.Mean)
	}

	link := mk()
	link.Faults = &serve.FaultPlan{
		Injections: []serve.Injection{
			{Replica: 0, Mode: serve.FaultLink, At: 0, DurationSeconds: 1e6, LinkFactor: 8},
		},
	}
	lrep := mustRun(t, link, arr)
	simtest.CheckInvariants(t, lrep, arr)
	if lrep.Faults.LinkDegradations != 1 {
		t.Fatalf("link degradations = %d, want 1", lrep.Faults.LinkDegradations)
	}
	if lrep.Fleet.TransferSeconds <= clean.Fleet.TransferSeconds {
		t.Errorf("8x link degradation left transfer seconds at %g (clean %g)",
			lrep.Fleet.TransferSeconds, clean.Fleet.TransferSeconds)
	}
}
