package serve

import (
	"math"
	"sort"
	"testing"
)

// TestRadixSortMatchesSortFloat64s: across sizes spanning the insertion
// threshold and value mixes with negatives, infinities and heavy
// duplicates, the radix sort must produce the exact value sequence
// sort.Float64s produces.
func TestRadixSortMatchesSortFloat64s(t *testing.T) {
	s := uint64(7)
	next := func() uint64 {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		return s
	}
	tmp := make([]float64, 0)
	for _, n := range []int{0, 1, 2, 3, 47, 48, 49, 100, 1000, 4096} {
		for trial := 0; trial < 5; trial++ {
			xs := make([]float64, n)
			for i := range xs {
				switch next() % 5 {
				case 0:
					xs[i] = float64(int64(next()%64)) - 32 // duplicates, negatives
				case 1:
					xs[i] = math.Inf(1)
				case 2:
					xs[i] = -math.Ldexp(float64(next()%1000), -20)
				default:
					xs[i] = math.Ldexp(float64(next()%(1<<30)), int(next()%60)-30)
				}
			}
			want := append([]float64(nil), xs...)
			sort.Float64s(want)
			radixSortFloat64(xs, tmp)
			for i := range xs {
				if xs[i] != want[i] {
					t.Fatalf("n=%d trial=%d: index %d: radix %g, sort %g", n, trial, i, xs[i], want[i])
				}
			}
		}
	}
}

// TestQuantilesMatchesSortedFold pins the fold byte-identity the tables
// rely on: quantiles over a shuffled sample must equal the
// sort-then-sum reference, including the mean's float accumulation.
func TestQuantilesMatchesSortedFold(t *testing.T) {
	s := uint64(21)
	next := func() uint64 {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		return s
	}
	for _, n := range []int{1, 17, 128, 999} {
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = math.Ldexp(float64(next()%(1<<24)), int(next()%10)-24)
		}
		ref := append([]float64(nil), xs...)
		sort.Float64s(ref)
		var sum float64
		for _, x := range ref {
			sum += x
		}
		rank := func(p float64) float64 {
			i := int(math.Ceil(p*float64(n))) - 1
			if i < 0 {
				i = 0
			}
			return ref[i]
		}
		want := Quantiles{Mean: sum / float64(n), P50: rank(0.50), P95: rank(0.95), P99: rank(0.99)}
		if got := quantiles(xs, nil); got != want {
			t.Fatalf("n=%d: quantiles %+v, want %+v", n, got, want)
		}
	}
}
