package serve

import (
	"sort"
	"testing"
)

// ordModel is the reference the treap is checked against: a plain
// member→key map, sorted by (key, index) on demand.
type ordModel map[int]int64

func (m ordModel) sorted() []int {
	out := make([]int, 0, len(m))
	for i := range m {
		out = append(out, i)
	}
	sort.Slice(out, func(a, b int) bool {
		ia, ib := out[a], out[b]
		if m[ia] != m[ib] {
			return m[ia] < m[ib]
		}
		return ia < ib
	})
	return out
}

func collect(x *ordIndex) []int {
	var out []int
	x.ascend(func(i int) bool {
		out = append(out, i)
		return true
	})
	return out
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestOrdIndexAgainstModel drives random set/remove sequences and
// checks every query — order, bounds, membership, count, and the
// ascendFrom suffix traversal — against the sorted-map reference.
func TestOrdIndexAgainstModel(t *testing.T) {
	const n = 64
	var x ordIndex
	x.init(n)
	model := ordModel{}
	s := uint64(12345)
	next := func(m int) int {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		return int(s % uint64(m))
	}
	for op := 0; op < 5000; op++ {
		i := next(n)
		switch next(4) {
		case 0:
			x.remove(i)
			delete(model, i)
		default:
			// Small key range forces heavy tie-breaking on index.
			key := int64(next(9) - 4)
			x.set(i, key)
			model[i] = key
		}
		if x.count != len(model) {
			t.Fatalf("op %d: count %d, model has %d", op, x.count, len(model))
		}
		want := model.sorted()
		if got := collect(&x); !equalInts(got, want) {
			t.Fatalf("op %d: ascend %v, want %v", op, got, want)
		}
		wantFirst, wantLast := -1, -1
		if len(want) > 0 {
			wantFirst, wantLast = want[0], want[len(want)-1]
		}
		if got := x.first(); got != wantFirst {
			t.Fatalf("op %d: first %d, want %d", op, got, wantFirst)
		}
		if got := x.last(); got != wantLast {
			t.Fatalf("op %d: last %d, want %d", op, got, wantLast)
		}
		if x.contains(i) != (func() bool { _, ok := model[i]; return ok })() {
			t.Fatalf("op %d: contains(%d) wrong", op, i)
		}
		// ascendFrom at a random (key, idx) bound must be the suffix of
		// the full order starting at the first entry not before it.
		bk, bi := int64(next(9)-4), next(n)
		var from []int
		x.ascendFrom(bk, bi, func(j int) bool {
			from = append(from, j)
			return true
		})
		var wantFrom []int
		for _, j := range want {
			if model[j] > bk || (model[j] == bk && j >= bi) {
				wantFrom = append(wantFrom, j)
			}
		}
		if !equalInts(from, wantFrom) {
			t.Fatalf("op %d: ascendFrom(%d,%d) %v, want %v", op, bk, bi, from, wantFrom)
		}
	}
}

// TestOrdIndexEarlyExit: a traversal stopped by the callback visits
// exactly the ordered prefix.
func TestOrdIndexEarlyExit(t *testing.T) {
	var x ordIndex
	x.init(8)
	for i := 0; i < 8; i++ {
		x.set(i, int64(8-i)) // order: 7, 6, ..., 0
	}
	var got []int
	x.ascend(func(i int) bool {
		got = append(got, i)
		return len(got) < 3
	})
	if !equalInts(got, []int{7, 6, 5}) {
		t.Errorf("early-exit ascend visited %v, want [7 6 5]", got)
	}
	// Re-keying in place keeps the node reachable at its new position.
	x.set(7, 100)
	if last := x.last(); last != 7 {
		t.Errorf("after re-key, last = %d, want 7", last)
	}
	// set with an unchanged key is a no-op, not a duplicate insert.
	x.set(7, 100)
	if x.count != 8 {
		t.Errorf("count after no-op re-key = %d, want 8", x.count)
	}
}
