// ordIndex is the ordered replica index behind the fleet scheduler's
// O(log n) decisions: a treap over replica indices sorted by
// (key, index), with one preallocated node slot per replica. Every
// scheduling question the fleet used to answer with an O(n) scan —
// "most free KV that fits", "fewest outstanding tokens that fits",
// "next fitting replica after the cursor", "lowest-index standby",
// "highest-index drainable", "most backlogged steal source" — becomes
// an ordered traversal that stops at the first acceptable entry.
//
// Determinism: node priorities are a fixed hash of the replica index,
// so the tree shape is a pure function of the membership set and keys —
// independent of insertion order — and every traversal visits entries
// in exact (key asc, index asc) order, reproducing the lowest-index
// tie-breaking of the linear scans byte for byte.
package serve

// ordIndex is an ordered set of replica indices sorted by
// (key asc, index asc). The zero value is unusable; call init first.
type ordIndex struct {
	nodes []ordNode
	root  int32
	count int
}

// ordNode is one replica's slot in the treap (left/right children are
// replica indices; -1 = none).
type ordNode struct {
	left, right int32
	key         int64
	prio        uint64
	in          bool
}

// splitmix64 is the fixed index→priority hash (SplitMix64 finalizer).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// init sizes the index for n replicas, all absent.
func (x *ordIndex) init(n int) {
	x.nodes = make([]ordNode, n)
	for i := range x.nodes {
		x.nodes[i] = ordNode{left: -1, right: -1, prio: splitmix64(uint64(i))}
	}
	x.root = -1
}

// less orders node i before node j by (key, index).
func (x *ordIndex) less(i int32, key int64, j int32) bool {
	return key < x.nodes[j].key || (key == x.nodes[j].key && i < j)
}

// insertAt inserts node i (key already set) under subtree t.
func (x *ordIndex) insertAt(t, i int32) int32 {
	if t < 0 {
		return i
	}
	n := &x.nodes[t]
	if x.nodes[i].prio > n.prio {
		// i becomes the subtree root: split t around i's key.
		l, r := x.split(t, i)
		x.nodes[i].left, x.nodes[i].right = l, r
		return i
	}
	if x.less(i, x.nodes[i].key, t) {
		n.left = x.insertAt(n.left, i)
	} else {
		n.right = x.insertAt(n.right, i)
	}
	return t
}

// split partitions subtree t into (< pivot i, > pivot i) by (key, index).
func (x *ordIndex) split(t, i int32) (int32, int32) {
	if t < 0 {
		return -1, -1
	}
	if x.less(t, x.nodes[t].key, i) {
		l, r := x.split(x.nodes[t].right, i)
		x.nodes[t].right = l
		return t, r
	}
	l, r := x.split(x.nodes[t].left, i)
	x.nodes[t].left = r
	return l, t
}

// merge joins subtrees l and r (every l entry orders before every r).
func (x *ordIndex) merge(l, r int32) int32 {
	if l < 0 {
		return r
	}
	if r < 0 {
		return l
	}
	if x.nodes[l].prio > x.nodes[r].prio {
		x.nodes[l].right = x.merge(x.nodes[l].right, r)
		return l
	}
	x.nodes[r].left = x.merge(l, x.nodes[r].left)
	return r
}

// removeAt removes node i from subtree t.
func (x *ordIndex) removeAt(t, i int32) int32 {
	if t == i {
		return x.merge(x.nodes[t].left, x.nodes[t].right)
	}
	if x.less(i, x.nodes[i].key, t) {
		x.nodes[t].left = x.removeAt(x.nodes[t].left, i)
	} else {
		x.nodes[t].right = x.removeAt(x.nodes[t].right, i)
	}
	return t
}

// set inserts replica i with the given sort key, or re-keys it if
// already present. O(log n); a no-op when the key is unchanged.
func (x *ordIndex) set(i int, key int64) {
	n := &x.nodes[i]
	if n.in {
		if n.key == key {
			return
		}
		x.root = x.removeAt(x.root, int32(i))
	} else {
		x.count++
	}
	n.key, n.in = key, true
	n.left, n.right = -1, -1
	x.root = x.insertAt(x.root, int32(i))
}

// remove takes replica i out of the index; absent is a no-op.
func (x *ordIndex) remove(i int) {
	if !x.nodes[i].in {
		return
	}
	x.root = x.removeAt(x.root, int32(i))
	x.nodes[i].in = false
	x.count--
}

// contains reports membership.
func (x *ordIndex) contains(i int) bool { return x.nodes[i].in }

// first returns the (key, index)-smallest entry, -1 when empty.
func (x *ordIndex) first() int {
	t := x.root
	if t < 0 {
		return -1
	}
	for x.nodes[t].left >= 0 {
		t = x.nodes[t].left
	}
	return int(t)
}

// last returns the (key, index)-largest entry, -1 when empty.
func (x *ordIndex) last() int {
	t := x.root
	if t < 0 {
		return -1
	}
	for x.nodes[t].right >= 0 {
		t = x.nodes[t].right
	}
	return int(t)
}

// ascend visits entries in (key, index) order until fn returns false.
func (x *ordIndex) ascend(fn func(i int) bool) { x.ascendAt(x.root, fn) }

func (x *ordIndex) ascendAt(t int32, fn func(i int) bool) bool {
	if t < 0 {
		return true
	}
	if !x.ascendAt(x.nodes[t].left, fn) {
		return false
	}
	if !fn(int(t)) {
		return false
	}
	return x.ascendAt(x.nodes[t].right, fn)
}

// ascendFrom visits, in (key, index) order, the entries ordering at or
// after (key, idx) until fn returns false. With key == index keys this
// is the cyclic-cursor primitive: resume a round-robin scan at the
// cursor, then wrap with a plain ascend.
func (x *ordIndex) ascendFrom(key int64, idx int, fn func(i int) bool) {
	x.ascendFromAt(x.root, key, idx, fn)
}

func (x *ordIndex) ascendFromAt(t int32, key int64, idx int, fn func(i int) bool) bool {
	if t < 0 {
		return true
	}
	n := &x.nodes[t]
	// Entry t orders before the (key, idx) bound: skip its left subtree.
	if n.key < key || (n.key == key && int(t) < idx) {
		return x.ascendFromAt(n.right, key, idx, fn)
	}
	if !x.ascendFromAt(n.left, key, idx, fn) {
		return false
	}
	if !fn(int(t)) {
		return false
	}
	return x.ascendAt(n.right, fn)
}
