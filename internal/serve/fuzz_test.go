// FuzzDESSchedule drives the discrete-event spine with randomized
// (seed, arrival-mix, fleet-shape, fault-schedule) tuples and asserts
// the DES invariant set on every input:
//
//   - the spine's own always-on checks (des.go): no event fires behind
//     the scheduler clock, a ready entry fires exactly at its replica's
//     clock, and a ready replica is never starved (a drained heap with
//     busy replicas, or a stalled replica, is a loud error);
//   - the report oracles (simtest.CheckInvariants): conservation of
//     requests and tokens, latency clock order, capacity bounds;
//   - simulation equivalence: leap and single-step advancement, the
//     lazy and barrier disciplines, and tight leap horizons must agree
//     byte-for-byte — and if one discipline rejects an input, all must.
package serve_test

import (
	"context"
	"testing"

	"pimphony/internal/serve"
	"pimphony/internal/simtest"
	"pimphony/internal/timing"
	"pimphony/internal/workload"
)

// fuzzSchedule expands a seed and mix byte into a bounded arrival
// schedule: up to 12 requests, contexts up to 2 Ki tokens, short
// generations, bursty timestamps with deliberate equal-time collisions.
func fuzzSchedule(seed uint64, nn, mix uint8) []workload.Arrival {
	n := 1 + int(nn)%12
	s := seed | 1
	next := func(m int) int {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		return int(s % uint64(m))
	}
	maxCtx := 4 << (int(mix) % 10) // 4 .. 2048
	arr := make([]workload.Arrival, n)
	at := 0.0
	for i := range arr {
		// Half the deltas are zero, so equal-timestamp events are the
		// common case, not the rare one.
		if d := next(100); d >= 50 {
			at += float64(d-50) * 0.002
		}
		arr[i] = workload.Arrival{
			At:      at,
			Session: next(4),
			Req: workload.Request{
				ID:      i + 1,
				Context: 1 + next(maxCtx),
				Decode:  1 + next(32),
			},
		}
	}
	return arr
}

// runVariant runs one configuration, tolerating a rejected input: the
// fuzzer may assemble configurations the validator refuses, which is
// fine as long as every equivalent variant refuses them identically.
func runVariant(t *testing.T, cfg serve.Config, arr []workload.Arrival) (string, bool) {
	t.Helper()
	rep, err := serve.Run(context.Background(), cfg, arr)
	if err != nil {
		return err.Error(), false
	}
	simtest.CheckInvariants(t, rep, arr)
	return simtest.Fingerprint(rep), true
}

// hiddenIndex wraps a built-in placement behind an interface embed so
// its O(log n) fast path is invisible to the scheduler's type
// assertion, forcing the linear []FleetLoad fallback.
type hiddenIndex struct{ serve.Placement }

// fuzzFaultPlan expands the fault word into a bounded recurring fault
// schedule over every decode replica: zero means fault-free, anything
// else picks a mode, an MTBF floor high enough that retries outrun the
// next crash, and a short repair/backoff scale. Fleet variants all
// share the plan, so fault timing joins the axes the equivalence
// assertions must hold across.
func fuzzFaultPlan(fault uint16) *serve.FaultPlan {
	if fault == 0 {
		return nil
	}
	return &serve.FaultPlan{
		Seed: uint64(fault)*2654435761 + 1,
		Groups: []serve.FaultGroup{{
			Spec:        -1,
			Mode:        serve.FaultMode(int(fault) % 3),
			MTBFSeconds: 0.2 + float64((fault>>8)&63)/128,
			MTTRSeconds: float64((fault>>2)&63) / 1024,
			Slowdown:    2,
			LinkFactor:  4,
		}},
		MaxRetries:     int(fault>>14) - 1, // -1 (unlimited) .. 2
		BackoffSeconds: float64(fault&3) / 512,
	}
}

func FuzzDESSchedule(f *testing.F) {
	f.Add(uint64(1), uint8(4), uint8(0), uint8(0), uint16(0))
	f.Add(uint64(42), uint8(8), uint8(3), uint8(5), uint16(0))
	f.Add(uint64(7), uint8(11), uint8(9), uint8(255), uint16(0))
	f.Add(uint64(0xdeadbeef), uint8(12), uint8(7), uint8(42), uint16(0))
	f.Add(uint64(9), uint8(10), uint8(6), uint8(255), uint16(768)) // crash storm, autoscaled branch on
	f.Add(uint64(3), uint8(6), uint8(4), uint8(112), uint16(277))  // slowdown on a disaggregated fleet
	f.Fuzz(func(t *testing.T, seed uint64, nn, mix, shape uint8, fault uint16) {
		arr := fuzzSchedule(seed, nn, mix)

		// Classic path: replicas 1..3, load-oblivious and load-aware
		// policies, across leap granularity and both disciplines.
		replicas := 1 + int(shape)%3
		classic := func(pol serve.Policy, single bool) serve.Config {
			return serve.Config{
				System:     simtest.System("pim-dpa"),
				Replicas:   replicas,
				Policy:     pol,
				SLO:        serve.SLO{TTFT: 1, TBT: 0.2},
				SingleStep: single,
			}
		}
		pol := func() serve.Policy {
			if shape&4 != 0 {
				return serve.SessionAffinity()
			}
			return serve.RoundRobin()
		}
		leap, okLeap := runVariant(t, classic(pol(), false), arr)
		single, okSingle := runVariant(t, classic(pol(), true), arr)
		barrier, okBarrier := runVariant(t, classic(simtest.Opaque(pol()), false), arr)
		if okLeap != okSingle || okLeap != okBarrier || leap != single || leap != barrier {
			t.Errorf("classic variants diverged:\n leap    (%v) %s\n single  (%v) %s\n barrier (%v) %s",
				okLeap, leap, okSingle, single, okBarrier, barrier)
		}

		// Fleet path: 1..2 decoders, optionally a dedicated prefill
		// tier, with migration and stealing on, across leap horizons.
		fleet := func(single bool, horizon int) serve.Config {
			specs := []serve.ReplicaSpec{
				{System: simtest.System("pim-dpa"), Count: 1 + (int(shape)>>3)%2, Role: serve.RoleUnified},
			}
			if shape&64 != 0 {
				specs = []serve.ReplicaSpec{
					{System: simtest.System("pim-dpa"), Count: 1, Role: serve.RolePrefill},
					{System: simtest.System("pim-dpa"), Count: 1 + (int(shape)>>3)%2, Role: serve.RoleDecode},
				}
			}
			return serve.Config{
				Fleet:        specs,
				Interconnect: timing.DefaultInterconnect(),
				Migrate:      shape&16 != 0,
				Steal:        shape&32 != 0,
				Faults:       fuzzFaultPlan(fault),
				SingleStep:   single,
				LeapHorizon:  horizon,
				SLO:          serve.SLO{TTFT: 1, TBT: 0.2},
			}
		}
		fLeap, okF := runVariant(t, fleet(false, 0), arr)
		fSingle, okFS := runVariant(t, fleet(true, 0), arr)
		fTight, okFT := runVariant(t, fleet(false, 1), arr)
		if okF != okFS || okF != okFT || fLeap != fSingle || fLeap != fTight {
			t.Errorf("fleet variants diverged:\n leap      (%v) %s\n single    (%v) %s\n horizon 1 (%v) %s",
				okF, fLeap, okFS, fSingle, okFT, fTight)
		}

		// Autoscaled fleet: provisions, warmups and drains churn the
		// scheduler's index membership mid-run. Scale decisions fire
		// only at heap events (arrivals, completions, faults, retries
		// and explicit evScaleEval timers), so autoscaled runs are
		// leap-invariant like every other configuration — single-step
		// must match leap, and at every granularity the indexed
		// O(log n) placement path must produce the same bytes as the
		// linear []FleetLoad scan it replaced (hiddenIndex forces the
		// fallback for the same built-in policy).
		if shape&128 != 0 {
			auto := func(single bool, hide bool) serve.Config {
				cfg := fleet(single, 0)
				cfg.Fleet = []serve.ReplicaSpec{
					{System: simtest.System("pim-dpa"), Count: 3, Min: 1, Role: serve.RoleUnified,
						WarmupSeconds: float64(int(shape)>>3%2) * 0.05},
				}
				cfg.Autoscaler = serve.NewSLOScaler()
				cfg.Placement = serve.KVHeadroom()
				if hide {
					cfg.Placement = hiddenIndex{cfg.Placement}
				}
				return cfg
			}
			ref, okRef := runVariant(t, auto(false, false), arr)
			for _, v := range []struct{ single, hide bool }{{false, true}, {true, false}, {true, true}} {
				got, ok := runVariant(t, auto(v.single, v.hide), arr)
				if ok != okRef || got != ref {
					t.Errorf("autoscaled variant diverged (single=%v hidden-index=%v):\n ref (%v) %s\n got (%v) %s",
						v.single, v.hide, okRef, ref, ok, got)
				}
			}
		}
	})
}
