// FuzzDESSchedule drives the discrete-event spine with randomized
// (seed, arrival-mix, fleet-shape) tuples and asserts the DES invariant
// set on every input:
//
//   - the spine's own always-on checks (des.go): no event fires behind
//     the scheduler clock, a ready entry fires exactly at its replica's
//     clock, and a ready replica is never starved (a drained heap with
//     busy replicas, or a stalled replica, is a loud error);
//   - the report oracles (simtest.CheckInvariants): conservation of
//     requests and tokens, latency clock order, capacity bounds;
//   - simulation equivalence: leap and single-step advancement, the
//     lazy and barrier disciplines, and tight leap horizons must agree
//     byte-for-byte — and if one discipline rejects an input, all must.
package serve_test

import (
	"context"
	"testing"

	"pimphony/internal/serve"
	"pimphony/internal/simtest"
	"pimphony/internal/timing"
	"pimphony/internal/workload"
)

// fuzzSchedule expands a seed and mix byte into a bounded arrival
// schedule: up to 12 requests, contexts up to 2 Ki tokens, short
// generations, bursty timestamps with deliberate equal-time collisions.
func fuzzSchedule(seed uint64, nn, mix uint8) []workload.Arrival {
	n := 1 + int(nn)%12
	s := seed | 1
	next := func(m int) int {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		return int(s % uint64(m))
	}
	maxCtx := 4 << (int(mix) % 10) // 4 .. 2048
	arr := make([]workload.Arrival, n)
	at := 0.0
	for i := range arr {
		// Half the deltas are zero, so equal-timestamp events are the
		// common case, not the rare one.
		if d := next(100); d >= 50 {
			at += float64(d-50) * 0.002
		}
		arr[i] = workload.Arrival{
			At:      at,
			Session: next(4),
			Req: workload.Request{
				ID:      i + 1,
				Context: 1 + next(maxCtx),
				Decode:  1 + next(32),
			},
		}
	}
	return arr
}

// runVariant runs one configuration, tolerating a rejected input: the
// fuzzer may assemble configurations the validator refuses, which is
// fine as long as every equivalent variant refuses them identically.
func runVariant(t *testing.T, cfg serve.Config, arr []workload.Arrival) (string, bool) {
	t.Helper()
	rep, err := serve.Run(context.Background(), cfg, arr)
	if err != nil {
		return err.Error(), false
	}
	simtest.CheckInvariants(t, rep, arr)
	return simtest.Fingerprint(rep), true
}

// hiddenIndex wraps a built-in placement behind an interface embed so
// its O(log n) fast path is invisible to the scheduler's type
// assertion, forcing the linear []FleetLoad fallback.
type hiddenIndex struct{ serve.Placement }

func FuzzDESSchedule(f *testing.F) {
	f.Add(uint64(1), uint8(4), uint8(0), uint8(0))
	f.Add(uint64(42), uint8(8), uint8(3), uint8(5))
	f.Add(uint64(7), uint8(11), uint8(9), uint8(255))
	f.Add(uint64(0xdeadbeef), uint8(12), uint8(7), uint8(42))
	f.Fuzz(func(t *testing.T, seed uint64, nn, mix, shape uint8) {
		arr := fuzzSchedule(seed, nn, mix)

		// Classic path: replicas 1..3, load-oblivious and load-aware
		// policies, across leap granularity and both disciplines.
		replicas := 1 + int(shape)%3
		classic := func(pol serve.Policy, single bool) serve.Config {
			return serve.Config{
				System:     simtest.System("pim-dpa"),
				Replicas:   replicas,
				Policy:     pol,
				SLO:        serve.SLO{TTFT: 1, TBT: 0.2},
				SingleStep: single,
			}
		}
		pol := func() serve.Policy {
			if shape&4 != 0 {
				return serve.SessionAffinity()
			}
			return serve.RoundRobin()
		}
		leap, okLeap := runVariant(t, classic(pol(), false), arr)
		single, okSingle := runVariant(t, classic(pol(), true), arr)
		barrier, okBarrier := runVariant(t, classic(simtest.Opaque(pol()), false), arr)
		if okLeap != okSingle || okLeap != okBarrier || leap != single || leap != barrier {
			t.Errorf("classic variants diverged:\n leap    (%v) %s\n single  (%v) %s\n barrier (%v) %s",
				okLeap, leap, okSingle, single, okBarrier, barrier)
		}

		// Fleet path: 1..2 decoders, optionally a dedicated prefill
		// tier, with migration and stealing on, across leap horizons.
		fleet := func(single bool, horizon int) serve.Config {
			specs := []serve.ReplicaSpec{
				{System: simtest.System("pim-dpa"), Count: 1 + (int(shape)>>3)%2, Role: serve.RoleUnified},
			}
			if shape&64 != 0 {
				specs = []serve.ReplicaSpec{
					{System: simtest.System("pim-dpa"), Count: 1, Role: serve.RolePrefill},
					{System: simtest.System("pim-dpa"), Count: 1 + (int(shape)>>3)%2, Role: serve.RoleDecode},
				}
			}
			return serve.Config{
				Fleet:        specs,
				Interconnect: timing.DefaultInterconnect(),
				Migrate:      shape&16 != 0,
				Steal:        shape&32 != 0,
				SingleStep:   single,
				LeapHorizon:  horizon,
				SLO:          serve.SLO{TTFT: 1, TBT: 0.2},
			}
		}
		fLeap, okF := runVariant(t, fleet(false, 0), arr)
		fSingle, okFS := runVariant(t, fleet(true, 0), arr)
		fTight, okFT := runVariant(t, fleet(false, 1), arr)
		if okF != okFS || okF != okFT || fLeap != fSingle || fLeap != fTight {
			t.Errorf("fleet variants diverged:\n leap      (%v) %s\n single    (%v) %s\n horizon 1 (%v) %s",
				okF, fLeap, okFS, fSingle, okFT, fTight)
		}

		// Autoscaled fleet: provisions, warmups and drains churn the
		// scheduler's index membership mid-run. At every advancement
		// granularity, the indexed O(log n) placement path must produce
		// the same bytes as the linear []FleetLoad scan it replaced —
		// hiddenIndex forces the fallback for the same built-in policy.
		// (Leap vs single-step equivalence of the autoscaler itself is
		// NOT asserted here: scale decisions are evaluated after every
		// engine call, so their timing is evaluation-density-sensitive —
		// a pre-existing property, see ROADMAP.)
		if shape&128 != 0 {
			auto := func(single bool, hide bool) serve.Config {
				cfg := fleet(single, 0)
				cfg.Fleet = []serve.ReplicaSpec{
					{System: simtest.System("pim-dpa"), Count: 3, Min: 1, Role: serve.RoleUnified,
						WarmupSeconds: float64(int(shape)>>3%2) * 0.05},
				}
				cfg.Autoscaler = serve.NewSLOScaler()
				cfg.Placement = serve.KVHeadroom()
				if hide {
					cfg.Placement = hiddenIndex{cfg.Placement}
				}
				return cfg
			}
			for _, single := range []bool{false, true} {
				idx, okI := runVariant(t, auto(single, false), arr)
				lin, okL := runVariant(t, auto(single, true), arr)
				if okI != okL || idx != lin {
					t.Errorf("autoscaled indexed placement diverged from linear scan (single=%v):\n indexed (%v) %s\n linear  (%v) %s",
						single, okI, idx, okL, lin)
				}
			}
		}
	})
}
