// Report.Energy: every backend's serving report must carry the
// energy/cost axis — joules/token where the backend models energy,
// provisioning dollars everywhere — with the accounting identities
// intact.
package serve_test

import (
	"math"
	"testing"

	"pimphony/internal/serve"
	"pimphony/internal/simtest"
)

func TestReportEnergyAllBackends(t *testing.T) {
	arr, err := simtest.PoissonSchedule(12, 20, 3)
	if err != nil {
		t.Fatal(err)
	}
	tight, err := simtest.TightSchedule(12)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range simtest.SystemNames() {
		t.Run(name, func(t *testing.T) {
			arr := arr
			if name == "pim-tight" {
				arr = tight // QMSum prompts overflow the tight budget outright
			}
			cfg := serve.Config{
				System:   simtest.System(name),
				Replicas: 2,
				Policy:   serve.RoundRobin(),
				SLO:      serve.SLO{TTFT: 1.0},
			}
			rep := mustRun(t, cfg, arr)
			e := rep.Energy
			if name == "gpu-paged" {
				// The GPU backend prices no module energy; its cost is
				// provisioning-only.
				if e.DecodeJoules != 0 || e.JoulesPerToken != 0 {
					t.Errorf("gpu energy %g J (%g J/tok), want zero by construction", e.DecodeJoules, e.JoulesPerToken)
				}
			} else if e.DecodeJoules <= 0 || e.JoulesPerToken <= 0 {
				t.Errorf("energy %g J, %g J/tok, want positive for a modeled backend", e.DecodeJoules, e.JoulesPerToken)
			}
			if e.CostPerMTok <= 0 || e.ProvisionDollars <= 0 {
				t.Errorf("cost %g $/Mtok, provision $%g, want positive", e.CostPerMTok, e.ProvisionDollars)
			}
			// Accounting identities.
			if got, want := e.Dollars, e.ProvisionDollars+e.EnergyDollars; got != want {
				t.Errorf("Dollars %g != provision %g + energy %g", got, e.ProvisionDollars, e.EnergyDollars)
			}
			if want := float64(cfg.Replicas) * rep.MakespanSeconds; math.Abs(e.ReplicaSeconds-want) > 1e-9*want {
				t.Errorf("fixed-pool ReplicaSeconds %g, want replicas x makespan %g", e.ReplicaSeconds, want)
			}
			if e.JoulesPerToken > 0 {
				if got := e.JoulesPerToken * float64(rep.Tokens); math.Abs(got-e.DecodeJoules) > 1e-9*e.DecodeJoules {
					t.Errorf("J/tok x tokens = %g, want DecodeJoules %g", got, e.DecodeJoules)
				}
			}
			if rep.GoodTokens > rep.Tokens {
				t.Errorf("good tokens %d exceed total %d", rep.GoodTokens, rep.Tokens)
			}
			if e.GoodTokensPerDollar > float64(rep.Tokens)/e.Dollars+1e-9 {
				t.Errorf("goodtok/$ %g above tok/$ %g", e.GoodTokensPerDollar, float64(rep.Tokens)/e.Dollars)
			}
		})
	}
}
