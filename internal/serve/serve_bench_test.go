package serve

import (
	"context"
	"testing"

	"pimphony/internal/workload"
)

// BenchmarkServeRun measures one full online serving simulation — 48
// QMSum-sized requests at 100 req/s over two replicas — through the
// multi-step fast-forward path and the naive single-step loop, so the
// speedup the event-horizon work buys stays visible in bench output.
func BenchmarkServeRun(b *testing.B) {
	gen := workload.NewGenerator(workload.QMSum(), 42)
	gen.DecodeLen = 32
	arr, err := workload.PoissonArrivals(gen, 100, 8, 48, 43)
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []struct {
		name   string
		single bool
	}{
		{"fast-forward", false},
		{"single-step", true},
	} {
		b.Run(mode.name, func(b *testing.B) {
			var tokens int
			for i := 0; i < b.N; i++ {
				rep, err := Run(context.Background(), Config{
					System:     testSystem(),
					Replicas:   2,
					Policy:     RoundRobin(),
					SLO:        SLO{TTFT: 0.1, TBT: 0.025},
					SingleStep: mode.single,
				}, arr)
				if err != nil {
					b.Fatal(err)
				}
				tokens += rep.Requests * 32
			}
			b.ReportMetric(float64(tokens)/b.Elapsed().Seconds(), "tokens/s")
		})
	}
}

// BenchmarkFleetPlacement measures one placement decision on a
// few-hundred-replica fleet and pins the allocation contract the
// indexed scheduler exists for: zero allocations per decision, for
// every built-in policy's O(log n) path and for the custom-policy
// fallback once its []FleetLoad scratch is warm.
func BenchmarkFleetPlacement(b *testing.B) {
	const replicas = 256
	fs, err := newFleetSim(Config{
		Fleet: []ReplicaSpec{{System: testSystem(), Count: replicas, Role: RoleUnified}},
		SLO:   SLO{TTFT: 1, TBT: 0.2},
	}, 64)
	if err != nil {
		b.Fatal(err)
	}
	// Load a third of the fleet so the indexes are non-trivial.
	for i := 0; i < replicas; i += 3 {
		rec := &record{req: workload.Request{ID: i + 1, Context: 64, Decode: 32}}
		if err := fs.enqueueOn(i, rec); err != nil {
			b.Fatal(err)
		}
	}
	probe := workload.Request{ID: 1 << 20, Context: 64, Decode: 32}
	cases := []struct {
		name string
		p    Placement
	}{
		{"kv-headroom", KVHeadroom()},
		{"least-tokens-fit", LeastTokensFit()},
		{"round-robin-fit", RoundRobinFit()},
		{"custom-fallback", linearOnly{KVHeadroom()}},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			fs.placement = c.p
			fs.indexed, _ = c.p.(indexedPlacement)
			fs.place(probe) // warm the fallback's scratch buffer
			if allocs := testing.AllocsPerRun(100, func() { fs.place(probe) }); allocs != 0 {
				b.Fatalf("%s: %v allocs per placement, want 0", c.name, allocs)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				fs.place(probe)
			}
		})
	}
}
