package serve

import (
	"context"
	"testing"

	"pimphony/internal/workload"
)

// BenchmarkServeRun measures one full online serving simulation — 48
// QMSum-sized requests at 100 req/s over two replicas — through the
// multi-step fast-forward path and the naive single-step loop, so the
// speedup the event-horizon work buys stays visible in bench output.
func BenchmarkServeRun(b *testing.B) {
	gen := workload.NewGenerator(workload.QMSum(), 42)
	gen.DecodeLen = 32
	arr, err := workload.PoissonArrivals(gen, 100, 8, 48, 43)
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []struct {
		name   string
		single bool
	}{
		{"fast-forward", false},
		{"single-step", true},
	} {
		b.Run(mode.name, func(b *testing.B) {
			var tokens int
			for i := 0; i < b.N; i++ {
				rep, err := Run(context.Background(), Config{
					System:     testSystem(),
					Replicas:   2,
					Policy:     RoundRobin(),
					SLO:        SLO{TTFT: 0.1, TBT: 0.025},
					SingleStep: mode.single,
				}, arr)
				if err != nil {
					b.Fatal(err)
				}
				tokens += rep.Requests * 32
			}
			b.ReportMetric(float64(tokens)/b.Elapsed().Seconds(), "tokens/s")
		})
	}
}
