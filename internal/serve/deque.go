// A growable ring-buffer deque, the queue primitive behind the fleet
// scheduler's held queue and the autoscaler's waiting set. The previous
// slice-backed held queue popped by re-slicing and re-prepended a
// failed head via append([]heldReq{h}, held...) — O(n) per operation,
// O(n²) across a hold-heavy phase. The ring makes every push and pop
// O(1) amortized, with the backing array reused across fill/drain
// cycles.
package serve

// deque is a double-ended queue over a power-of-two ring buffer.
// The zero value is an empty deque ready for use.
type deque[T any] struct {
	buf  []T
	head int // index of the front element
	n    int // number of elements
}

// len reports the number of queued elements.
func (d *deque[T]) len() int { return d.n }

// grow doubles the ring (or seeds it) so one more element fits.
func (d *deque[T]) grow() {
	c := len(d.buf) * 2
	if c == 0 {
		c = 8
	}
	buf := make([]T, c)
	for i := 0; i < d.n; i++ {
		buf[i] = d.buf[(d.head+i)&(len(d.buf)-1)]
	}
	d.buf, d.head = buf, 0
}

// pushBack appends to the tail.
func (d *deque[T]) pushBack(v T) {
	if d.n == len(d.buf) {
		d.grow()
	}
	d.buf[(d.head+d.n)&(len(d.buf)-1)] = v
	d.n++
}

// pushFront prepends to the head (a failed retry putting the element
// back where strict FCFS needs it).
func (d *deque[T]) pushFront(v T) {
	if d.n == len(d.buf) {
		d.grow()
	}
	d.head = (d.head - 1) & (len(d.buf) - 1)
	d.buf[d.head] = v
	d.n++
}

// front returns the head element; it must exist.
func (d *deque[T]) front() T { return d.buf[d.head] }

// popFront removes and returns the head element; it must exist.
func (d *deque[T]) popFront() T {
	v := d.buf[d.head]
	var zero T
	d.buf[d.head] = zero // release references for GC
	d.head = (d.head + 1) & (len(d.buf) - 1)
	d.n--
	return v
}
