// Package simtest is the simulation-equivalence toolkit behind the
// serving spine's correctness suite. The simulator's core guarantee is
// that every report is a pure, deterministic function of (configuration,
// arrival schedule) — independent of leap granularity, synchronization
// discipline, sweep parallelism and event-push order among commuting
// events. This package provides the pieces tests and fuzz targets need
// to pin that guarantee:
//
//   - Fingerprint: a stable content hash of a serve.Report, so
//     equivalence checks compare one string instead of walking structs.
//   - Opaque: a Policy wrapper that strips the LoadOblivious marker,
//     forcing the spine's barrier discipline for a policy that would
//     otherwise advance lazily — the two disciplines must agree.
//   - Scenario builders: deterministic systems and arrival schedules
//     spanning the backend × allocator grid, including a
//     preemption-heavy configuration.
//   - CheckInvariants: metamorphic oracles every valid report satisfies
//     regardless of configuration — conservation of requests and
//     tokens, latency-order sanity (a request completes no earlier than
//     its first token, which is no earlier than its arrival), and
//     capacity accounting bounds.
package simtest

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"testing"

	"pimphony/internal/cluster"
	"pimphony/internal/model"
	"pimphony/internal/serve"
	"pimphony/internal/timing"
	"pimphony/internal/workload"
)

// Fingerprint returns a stable hex content hash of a report. Two runs
// are equivalent iff their fingerprints match: the report carries every
// latency quantile at full float precision, so any timestamp
// divergence — even one ULP on one request — changes the hash.
func Fingerprint(rep *serve.Report) string {
	b, err := json.Marshal(rep)
	if err != nil {
		panic(fmt.Sprintf("simtest: report not marshalable: %v", err))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// Opaque wraps a Policy so the serving spine cannot see its
// LoadOblivious marker: routing decisions are unchanged, but every
// replica is advanced to each arrival (the barrier discipline) as if
// the policy were load-aware. Comparing a run against its Opaque twin
// pins the lazy destination-only advancement as exact.
func Opaque(p serve.Policy) serve.Policy { return opaquePolicy{p} }

type opaquePolicy struct{ p serve.Policy }

func (o opaquePolicy) Name() string                                    { return o.p.Name() }
func (o opaquePolicy) Pick(a workload.Arrival, loads []serve.Load) int { return o.p.Pick(a, loads) }

// System returns the named deterministic replica template. The names
// span the backend × allocator grid the equivalence suite sweeps:
//
//	pim-dpa     CENT-style PIM decode cluster, DPA chunked allocator
//	pim-static  the same cluster with static T_max reservations
//	pim-tight   pim-dpa with a KV budget sized to preempt mid-decode
//	xpu-pim     the XPU+PIM hybrid
//	gpu-paged   the GPU baseline with its paged KV pool
//	dimm-pim    the DIMM-PIM system
func System(name string) cluster.Config {
	pim := cluster.Config{
		Name:         "equiv-" + name,
		Backend:      cluster.PIMOnly,
		Dev:          timing.AiM16().WithChannels(32).WithCapacity(16 << 30),
		Modules:      8,
		TP:           8,
		PP:           1,
		Model:        model.LLM7B32K(),
		Tech:         cluster.PIMphony(),
		DecodeWindow: 4,
	}
	switch name {
	case "pim-dpa":
		return pim
	case "pim-static":
		pim.Tech.DPA = false
		return pim
	case "pim-tight":
		pim.KVBudgetBytes = 4106 << 20
		return pim
	case "xpu-pim":
		pim.Backend = cluster.XPUPIM
		return pim
	case "gpu-paged":
		return cluster.Config{Name: "equiv-" + name, Backend: cluster.GPUSystem,
			Model: model.LLM7B32K(), GPUs: 2, DecodeWindow: 4}
	case "dimm-pim":
		return cluster.Config{Name: "equiv-" + name, Backend: cluster.DIMMPIM,
			Dev: timing.DDR5DIMM(), Modules: 8, TP: 8, PP: 1,
			Model: model.LLM7B32K(), Tech: cluster.PIMphony(), DecodeWindow: 4}
	default:
		panic(fmt.Sprintf("simtest: unknown system %q", name))
	}
}

// SystemNames lists the System templates in grid order.
func SystemNames() []string {
	return []string{"pim-dpa", "pim-static", "pim-tight", "xpu-pim", "gpu-paged", "dimm-pim"}
}

// PoissonSchedule builds a deterministic Poisson arrival schedule with
// short generations, the workhorse load for equivalence runs.
func PoissonSchedule(n int, rate float64, seed int64) ([]workload.Arrival, error) {
	gen := workload.NewGenerator(workload.QMSum(), seed)
	gen.DecodeLen = 6
	return workload.PoissonArrivals(gen, rate, 4, n, seed+5)
}

// TightSchedule builds a burst of small-prompt requests whose lockstep
// KV growth exhausts the pim-tight budget mid-decode, so equivalence
// runs cover the preemption/recompute path.
func TightSchedule(n int) ([]workload.Arrival, error) {
	gen := workload.Uniform(4096, 5)
	gen.DecodeLen = 16
	return workload.PoissonArrivals(gen, 1000, 2, n, 7)
}

// CheckInvariants asserts the oracles every valid report satisfies, no
// matter the configuration, discipline or schedule that produced it.
func CheckInvariants(tb testing.TB, rep *serve.Report, arrivals []workload.Arrival) {
	tb.Helper()
	// Conservation: every arrival is served exactly once — except
	// requests fault injection permanently failed (retry budget
	// exhausted), which own no replica and no latency sample — and each
	// completed request is owned by exactly one replica.
	served := len(arrivals)
	if rep.Faults != nil {
		if rep.Faults.Failed < 0 || rep.Faults.Failed > len(arrivals) {
			tb.Errorf("faults: %d failed requests for %d arrivals", rep.Faults.Failed, len(arrivals))
		}
		served -= rep.Faults.Failed
	}
	if rep.Requests != len(arrivals) {
		tb.Errorf("conservation: %d requests reported for %d arrivals", rep.Requests, len(arrivals))
	}
	var reqs, toks, maxToks int
	for _, st := range rep.PerReplica {
		reqs += st.Requests
		toks += st.Tokens
	}
	for _, a := range arrivals {
		maxToks += a.Req.Decode
	}
	if reqs != served {
		tb.Errorf("conservation: per-replica requests sum to %d, want %d", reqs, served)
	}
	// Tokens: at least one per completed request (admission implies a
	// first token), at most the requested generation length (T_max may
	// truncate below it, never above).
	if toks < served || toks > maxToks {
		tb.Errorf("conservation: %d tokens generated for %d completed requests asking %d", toks, served, maxToks)
	}
	// Clock order: arrival <= first token <= completion holds per
	// request, so the aggregates obey TTFT >= 0, TBT >= 0 and
	// E2E >= TTFT at every rank, and nothing is negative.
	for name, q := range map[string]serve.Quantiles{"TTFT": rep.TTFT, "TBT": rep.TBT, "E2E": rep.E2E} {
		if q.Mean < 0 || q.P50 < 0 || q.P95 < 0 || q.P99 < 0 {
			tb.Errorf("clock order: negative %s latency %+v", name, q)
		}
		if q.P50 > q.P95 || q.P95 > q.P99 {
			tb.Errorf("quantiles: %s not monotone %+v", name, q)
		}
	}
	for _, rank := range []struct {
		name      string
		ttft, e2e float64
	}{{"mean", rep.TTFT.Mean, rep.E2E.Mean}, {"p50", rep.TTFT.P50, rep.E2E.P50}, {"p99", rep.TTFT.P99, rep.E2E.P99}} {
		if rank.e2e < rank.ttft {
			tb.Errorf("clock order: E2E %s %g below TTFT %s %g", rank.name, rank.e2e, rank.name, rank.ttft)
		}
	}
	if served > 0 && rep.MakespanSeconds <= 0 {
		tb.Errorf("makespan %g, want positive", rep.MakespanSeconds)
	}
	if rep.Goodput > rep.Throughput {
		tb.Errorf("goodput %g exceeds throughput %g", rep.Goodput, rep.Throughput)
	}
	if rep.SLOMet < 0 || rep.SLOMet > 1 {
		tb.Errorf("SLO-met fraction %g outside [0,1]", rep.SLOMet)
	}
	// Capacity accounting: peaks fit the pool, and reserving less than
	// is live would mean the allocator lost track of real data.
	c := rep.Capacity
	if c.PoolBytes > 0 {
		if c.PeakLiveBytes > c.PoolBytes || c.PeakReservedBytes > c.PoolBytes {
			tb.Errorf("capacity: peaks %d/%d exceed pool %d", c.PeakLiveBytes, c.PeakReservedBytes, c.PoolBytes)
		}
		if c.PeakLiveBytes > c.PeakReservedBytes {
			tb.Errorf("capacity: live peak %d above reserved peak %d", c.PeakLiveBytes, c.PeakReservedBytes)
		}
	}
}
