package refmath

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGEMVKnown(t *testing.T) {
	x := []float32{1, 2}
	w := [][]float32{{1, 0, 2}, {0, 1, 3}}
	y, err := GEMV(x, w)
	if err != nil {
		t.Fatal(err)
	}
	want := []float32{1, 2, 8}
	if MaxAbsDiff(y, want) > 1e-6 {
		t.Fatalf("GEMV = %v, want %v", y, want)
	}
}

func TestGEMVErrors(t *testing.T) {
	if _, err := GEMV([]float32{1}, [][]float32{{1}, {2}}); err == nil {
		t.Error("dim mismatch should fail")
	}
	if _, err := GEMV(nil, nil); err == nil {
		t.Error("empty GEMV should fail")
	}
	if _, err := GEMV([]float32{1, 2}, [][]float32{{1, 2}, {3}}); err == nil {
		t.Error("ragged matrix should fail")
	}
}

func TestSoftmaxProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		x := RandVec(rng, rng.Intn(100)+1)
		for i := range x {
			x[i] *= 20 // widen range to stress stability
		}
		s := Softmax(x)
		var sum float64
		for _, v := range s {
			if v < 0 || math.IsNaN(float64(v)) {
				return false
			}
			sum += float64(v)
		}
		return math.Abs(sum-1) < 1e-4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSoftmaxStability(t *testing.T) {
	s := Softmax([]float32{1000, 1000, 1000})
	for _, v := range s {
		if math.Abs(float64(v)-1.0/3) > 1e-5 {
			t.Fatalf("large-input softmax unstable: %v", s)
		}
	}
	if out := Softmax(nil); len(out) != 0 {
		t.Fatal("empty softmax should stay empty")
	}
}

func TestAttentionUniform(t *testing.T) {
	// Identical keys -> uniform scores -> output is the mean of values.
	q := []float32{1, 0}
	k := [][]float32{{1, 1}, {1, 1}, {1, 1}}
	v := [][]float32{{3, 0}, {6, 0}, {0, 9}}
	out, err := Attention(q, k, v)
	if err != nil {
		t.Fatal(err)
	}
	want := []float32{3, 3}
	if MaxAbsDiff(out, want) > 1e-5 {
		t.Fatalf("attention = %v, want %v", out, want)
	}
}

func TestAttentionErrors(t *testing.T) {
	if _, err := Attention([]float32{1}, [][]float32{{1}}, nil); err == nil {
		t.Error("K/V mismatch should fail")
	}
	if _, err := Attention([]float32{1}, nil, nil); err == nil {
		t.Error("empty attention should fail")
	}
	if _, err := Attention([]float32{1, 2}, [][]float32{{1}}, [][]float32{{1}}); err == nil {
		t.Error("key dim mismatch should fail")
	}
}

func TestDotAndAdd(t *testing.T) {
	d, err := Dot([]float32{1, 2, 3}, []float32{4, 5, 6})
	if err != nil || d != 32 {
		t.Fatalf("Dot = %f, %v", d, err)
	}
	if _, err := Dot([]float32{1}, []float32{1, 2}); err == nil {
		t.Error("dot length mismatch should fail")
	}
	dst := []float32{1, 1}
	if err := Add(dst, []float32{2, 3}); err != nil || dst[0] != 3 || dst[1] != 4 {
		t.Fatalf("Add broken: %v %v", dst, err)
	}
	if err := Add(dst, []float32{1}); err == nil {
		t.Error("add length mismatch should fail")
	}
}

func TestMaxAbsDiff(t *testing.T) {
	if d := MaxAbsDiff([]float32{1, 2}, []float32{1, 5}); d != 3 {
		t.Fatalf("MaxAbsDiff = %f", d)
	}
	if d := MaxAbsDiff([]float32{1}, []float32{1, 2}); !math.IsInf(d, 1) {
		t.Fatal("length mismatch should be +Inf")
	}
}

// Property: GEMV is linear — GEMV(a*x) = a*GEMV(x).
func TestGEMVLinearity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		x := RandVec(rng, 8)
		w := RandMat(rng, 8, 6)
		y1, err := GEMV(x, w)
		if err != nil {
			return false
		}
		xs := make([]float32, len(x))
		for i := range x {
			xs[i] = 2 * x[i]
		}
		y2, err := GEMV(xs, w)
		if err != nil {
			return false
		}
		for i := range y1 {
			if math.Abs(float64(y2[i]-2*y1[i])) > 1e-4 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
