// Package refmath provides a small float32 reference implementation of the
// decoder math PIM executes (GEMV, softmax, single-query attention). It is
// the ground truth used to verify that the partitioning and reduction
// bookkeeping of the performance model (TCP token slicing, EPU softmax and
// SV partial-sum reduction) is numerically faithful.
package refmath

import (
	"fmt"
	"math"
	"math/rand"
)

// GEMV computes y = x * W for x of length din and W of shape (din, dout),
// stored row-major.
func GEMV(x []float32, w [][]float32) ([]float32, error) {
	if len(w) != len(x) {
		return nil, fmt.Errorf("refmath: GEMV dims mismatch: len(x)=%d rows(W)=%d", len(x), len(w))
	}
	if len(w) == 0 {
		return nil, fmt.Errorf("refmath: empty GEMV")
	}
	dout := len(w[0])
	y := make([]float32, dout)
	for i, xi := range x {
		if len(w[i]) != dout {
			return nil, fmt.Errorf("refmath: ragged weight row %d", i)
		}
		for j, wij := range w[i] {
			y[j] += xi * wij
		}
	}
	return y, nil
}

// Softmax computes a numerically-stable softmax in place and returns it.
func Softmax(x []float32) []float32 {
	if len(x) == 0 {
		return x
	}
	max := x[0]
	for _, v := range x[1:] {
		if v > max {
			max = v
		}
	}
	var sum float64
	for i, v := range x {
		e := math.Exp(float64(v - max))
		x[i] = float32(e)
		sum += e
	}
	for i := range x {
		x[i] = float32(float64(x[i]) / sum)
	}
	return x
}

// Attention computes single-query attention: softmax(q . K^T / sqrt(d)) * V
// with K and V of shape (tokens, d).
func Attention(q []float32, k, v [][]float32) ([]float32, error) {
	if len(k) != len(v) {
		return nil, fmt.Errorf("refmath: K/V token mismatch: %d vs %d", len(k), len(v))
	}
	if len(k) == 0 {
		return nil, fmt.Errorf("refmath: empty attention")
	}
	d := len(q)
	scores := make([]float32, len(k))
	scale := float32(1.0 / math.Sqrt(float64(d)))
	for t, kt := range k {
		if len(kt) != d {
			return nil, fmt.Errorf("refmath: key %d has dim %d, want %d", t, len(kt), d)
		}
		var s float32
		for i := range q {
			s += q[i] * kt[i]
		}
		scores[t] = s * scale
	}
	Softmax(scores)
	out := make([]float32, len(v[0]))
	for t, vt := range v {
		for i := range out {
			out[i] += scores[t] * vt[i]
		}
	}
	return out, nil
}

// Dot returns the inner product of two equal-length vectors.
func Dot(a, b []float32) (float32, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("refmath: dot length mismatch %d vs %d", len(a), len(b))
	}
	var s float32
	for i := range a {
		s += a[i] * b[i]
	}
	return s, nil
}

// Add accumulates src into dst element-wise.
func Add(dst, src []float32) error {
	if len(dst) != len(src) {
		return fmt.Errorf("refmath: add length mismatch %d vs %d", len(dst), len(src))
	}
	for i := range src {
		dst[i] += src[i]
	}
	return nil
}

// MaxAbsDiff returns the largest element-wise absolute difference.
func MaxAbsDiff(a, b []float32) float64 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	var m float64
	for i := 0; i < n; i++ {
		d := math.Abs(float64(a[i] - b[i]))
		if d > m {
			m = d
		}
	}
	if len(a) != len(b) {
		return math.Inf(1)
	}
	return m
}

// RandVec samples a deterministic vector in [-1, 1).
func RandVec(rng *rand.Rand, n int) []float32 {
	v := make([]float32, n)
	for i := range v {
		v[i] = rng.Float32()*2 - 1
	}
	return v
}

// RandMat samples a deterministic (rows, cols) matrix in [-1, 1).
func RandMat(rng *rand.Rand, rows, cols int) [][]float32 {
	m := make([][]float32, rows)
	for i := range m {
		m[i] = RandVec(rng, cols)
	}
	return m
}
