package backend

import (
	"context"
	"fmt"

	"pimphony/internal/energy"
	"pimphony/internal/mapping"
	"pimphony/internal/model"
	"pimphony/internal/perfmodel"
	"pimphony/internal/sweep"
	"pimphony/internal/timing"
	"pimphony/internal/workload"
	"pimphony/internal/xpu"
)

// cyclesPerSecond converts command-clock cycles (1 GHz) to seconds.
const cyclesPerSecond = 1e9

// epuLanes is the number of parallel EPU softmax lanes per module.
const epuLanes = 16

// fcFunc prices one layer's FC projections (seconds) for a micro-batch.
type fcFunc func(env *Env, batch int) float64

// combineFunc composes one layer's attention, FC and all-reduce times.
type combineFunc func(attnSec, fcSec, syncSec float64) float64

// pimShared is the channel-level pricing machinery every PIM-attention
// backend shares: TP/PP geometry, the mapping + perfmodel attention
// path, EPU softmax/reduction costs, the TP all-reduce, the stage/PP
// pipeline composition, head-first admission bounds and the attention
// energy model. Concrete backends embed it and differ in how FC is
// priced and how the phases combine into a layer.
type pimShared struct{}

// validatePIM checks the shared PIM configuration constraints.
func (pimShared) validatePIM(env *Env) error {
	if err := env.Dev.Validate(); err != nil {
		return err
	}
	m := env.Model
	switch {
	case env.Modules <= 0:
		return fmt.Errorf("cluster %s: Modules must be positive", env.Name)
	case env.TP <= 0 || env.PP <= 0:
		return fmt.Errorf("cluster %s: TP and PP must be positive", env.Name)
	case env.TP*env.PP != env.Modules:
		return fmt.Errorf("cluster %s: TP(%d) x PP(%d) != Modules(%d)", env.Name, env.TP, env.PP, env.Modules)
	case env.TP > m.KVHeads() && env.TP%m.KVHeads() != 0:
		return fmt.Errorf("cluster %s: TP(%d) beyond KV heads (%d) must shard tokens evenly", env.Name, env.TP, m.KVHeads())
	case env.TP < m.KVHeads() && m.KVHeads()%env.TP != 0:
		return fmt.Errorf("cluster %s: TP(%d) must divide KV heads (%d)", env.Name, env.TP, m.KVHeads())
	case m.Layers%env.PP != 0:
		return fmt.Errorf("cluster %s: PP(%d) must divide layers (%d)", env.Name, env.PP, m.Layers)
	}
	return nil
}

// moduleCapacity is the shared PIM capacity: Modules x module bytes.
func (pimShared) moduleCapacity(env *Env) int64 {
	return int64(env.Modules) * env.Dev.ModuleBytes()
}

// admission returns the shared PIM admitter parameters: the
// technique-selected allocator plus, under head-first placement, the
// per-channel head-capacity budget.
func (p pimShared) admission(env *Env) Admission {
	adm := Admission{}
	kvHeadsPerModule, tokenShard := p.headGeometry(env)
	adm.KVHeadsPerModule = kvHeadsPerModule
	// Head-first placement additionally binds each (request, KV head)
	// tile to one channel's capacity; TCP's token slices are spread over
	// all channels and never hit this bound.
	if !env.Tech.TCP {
		adm.HeadBudget = int64(env.Dev.Channels) * int64(p.headCapacityTokens(env)) * int64(tokenShard)
	}
	return adm
}

// schedKind maps the DCS toggle to the scheduler/buffer pair.
func (pimShared) schedKind(env *Env) (perfmodel.Sched, bool) {
	if env.Tech.DCS {
		return perfmodel.DCS, false // PIMphony OBuf geometry
	}
	return perfmodel.Static, true // baseline OutReg geometry
}

// headGeometry returns how TP shards attention: KV heads per module, and
// the token-axis sharding factor once TP exceeds the head count.
func (pimShared) headGeometry(env *Env) (kvHeadsPerModule, tokenShard int) {
	kvHeadsPerModule = env.Model.KVHeads() / env.TP
	tokenShard = 1
	if kvHeadsPerModule == 0 {
		kvHeadsPerModule = 1
		tokenShard = env.TP / env.Model.KVHeads()
	}
	return kvHeadsPerModule, tokenShard
}

// headCapacityTokens is the KV capacity of one channel in (module-sharded)
// tokens for a single head tile: under head-first placement a (request,
// KV head) tile must live — and compute — within one channel, so this
// bounds both placement and admission. Sec. IV: "a request typically
// consumes nearly the entire memory capacity of a single PIM channel".
func (pimShared) headCapacityTokens(env *Env) int {
	m := env.Model
	perHead := m.KVBytesPerToken() / int64(m.KVHeads()) / int64(env.PP)
	if perHead <= 0 {
		perHead = 1
	}
	return int(env.Dev.ChannelBytes() / perHead)
}

// strategy maps the TCP toggle to the partitioning strategy.
func (p pimShared) strategy(env *Env) mapping.Strategy {
	if env.Tech.TCP {
		return mapping.TCP{}
	}
	return mapping.HFP{CapacityTokens: p.headCapacityTokens(env)}
}

// attentionLayer evaluates one layer's attention time on one module group
// for the given micro-batch of requests.
func (p pimShared) attentionLayer(env *Env, reqs []workload.Request, tokensOf TokensOf) (Stats, error) {
	m := env.Model
	// TP shards KV heads first; beyond the head count it shards the token
	// axis across module groups (how TP-centric systems like NeuPIMs keep
	// scaling past the head count).
	kvHeadsPerModule, tokenShard := p.headGeometry(env)
	mreqs := make([]mapping.Request, len(reqs))
	for i, r := range reqs {
		t := (tokensOf(r) + tokenShard - 1) / tokenShard
		mreqs[i] = mapping.Request{ID: r.ID, Tokens: t}
	}
	assign, err := p.strategy(env).Assign(mreqs, kvHeadsPerModule, m.GQAGroup, env.Dev.Channels)
	if err != nil {
		return Stats{}, err
	}
	sc, baseline := p.schedKind(env)
	var st Stats
	st.Channels = env.Dev.Channels
	var maxCh timing.Cycles
	for _, works := range assign.Channels {
		var chCycles timing.Cycles
		for _, w := range works {
			lat, err := p.priceAttention(env, w.Tokens, m.HeadDim, w.Queries, baseline, sc)
			if err != nil {
				return Stats{}, err
			}
			chCycles += lat.Cycles
			st.Busy += lat.Breakdown.MAC
			st.MACs += lat.MACs
			st.IOBytes += lat.IOBytes
			st.ActPre += lat.ActPre
		}
		if chCycles > maxCh {
			maxCh = chCycles
		}
	}
	st.Cycles = maxCh
	// EPU softmax: one per (request, query head) on this module, spread
	// over the EPU lanes; under TCP the segments are concatenated first
	// (no extra cost beyond the softmax itself).
	var softmax timing.Cycles
	qHeadsPerModule := kvHeadsPerModule * m.GQAGroup
	for _, r := range reqs {
		softmax += env.Hub.SoftmaxCycles((tokensOf(r)+tokenShard-1)/tokenShard) * timing.Cycles(qHeadsPerModule)
	}
	st.Cycles += softmax / epuLanes
	// TCP pays one SV reduction per (request, KV head); the HUB performs
	// reductions for completed heads while the channels compute the next
	// head, so only the lane-parallel EPU residue is exposed (the paper
	// measures < 0.2% of attention latency).
	if env.Tech.TCP {
		red := env.Hub.ReduceCycles(env.Dev.Channels, m.HeadDim)
		st.Cycles += red * timing.Cycles(len(reqs)*kvHeadsPerModule) / epuLanes
	}
	return st, nil
}

// priceAttention prices one channel's attention tile. The KV mapping
// (row-reuse vs query-resident) is a compile-time choice, so every
// configuration gets the cheaper of the two under its own scheduler —
// row-reuse wins under DCS because the extra WR-INP traffic hides behind
// MAC execution (Sec. V-C), while static controllers often prefer the
// query-resident mapping.
func (pimShared) priceAttention(env *Env, tokens, headDim, queries int, baseline bool, sc perfmodel.Sched) (perfmodel.Latency, error) {
	plain, err := env.Perf.AttentionLatency(tokens, headDim, queries, false, baseline, sc)
	if err != nil {
		return perfmodel.Latency{}, err
	}
	if !env.RowReuse || queries == 1 {
		return plain, nil
	}
	reuse, err := env.Perf.AttentionLatency(tokens, headDim, queries, true, baseline, sc)
	if err != nil {
		return perfmodel.Latency{}, err
	}
	if reuse.Cycles < plain.Cycles {
		return reuse, nil
	}
	return plain, nil
}

// fcShard is the per-module TP shard of one layer's FC work.
func fcShard(env *Env) (shardFlops, shardBytes int64) {
	m := env.Model
	fcFlops := m.FCLayerFlops()
	fcBytes := m.FCLayerWeightBytes()
	return fcFlops / int64(env.TP), fcBytes / int64(env.TP)
}

// syncCycles is the per-layer TP all-reduce cost.
func (pimShared) syncCycles(env *Env, batch int) timing.Cycles {
	if env.TP <= 1 {
		return 0
	}
	bytes := int64(batch) * int64(env.Model.DIn) * int64(env.Model.ElemBytes)
	per := timing.Cycles(float64(bytes) * float64(env.TP-1) / float64(env.TP) / env.Dev.LinkBytesPerCycle)
	return 2 * (env.Dev.LinkLatency + per) // attention-out + FFN-out
}

// composeStage folds one layer's attention stats with the FC and TP
// all-reduce costs into the per-stage time. The naive step path and the
// memoizing stepper (stepper.go) share it, so the two produce
// bit-identical stage times from the same per-layer inputs.
func composeStage(env *Env, at Stats, fcSec, syncSec float64, combine combineFunc) (float64, Stats, float64) {
	layers := env.Model.Layers / env.PP
	attnSec := float64(at.Cycles) / cyclesPerSecond
	layerSec := combine(attnSec, fcSec, syncSec)
	stage := layerSec * float64(layers)
	attnShare := attnSec / layerSec
	// Scale the per-layer attention stats to the stage.
	at.Cycles *= timing.Cycles(layers)
	at.Busy *= timing.Cycles(layers)
	at.MACs *= int64(layers)
	at.IOBytes *= int64(layers)
	at.ActPre *= int64(layers)
	return stage, at, attnShare
}

// stageTime returns the per-stage time in seconds for a micro-batch, plus
// the attention stats for utilization/energy accounting.
func (p pimShared) stageTime(env *Env, reqs []workload.Request, tokensOf TokensOf, fc fcFunc, combine combineFunc) (float64, Stats, float64, error) {
	at, err := p.attentionLayer(env, reqs, tokensOf)
	if err != nil {
		return 0, Stats{}, 0, err
	}
	fcSec := fc(env, len(reqs))
	syncSec := float64(p.syncCycles(env, len(reqs))) / cyclesPerSecond
	stage, at, attnShare := composeStage(env, at, fcSec, syncSec, combine)
	return stage, at, attnShare, nil
}

// step evaluates one decode iteration for a batch: the iteration time in
// seconds, the attention stats merged across the per-request stage
// evaluations (cycles and busy sum over PP micro-batches), and the
// attention share of iteration time. Both the batch simulator (RunCtx)
// and the serving engine (Engine.Step) price their iterations here.
func (p pimShared) step(ctx context.Context, env *Env, batch []workload.Request, tokensOf TokensOf, fc fcFunc, combine combineFunc) (StepCost, error) {
	if env.PP == 1 {
		sec, stats, share, err := p.stageTime(env, batch, tokensOf, fc, combine)
		return StepCost{Seconds: sec, AttnShare: share, Stats: stats}, err
	}
	// Request-granular micro-batches through PP stages: sum of
	// per-request stage times + (PP-1) bubbles of the max. The
	// per-request evaluations are independent (the perfmodel cache
	// is internally locked), so they fan out through the sweep
	// engine; the ordered reduction below accumulates floats in
	// request order, keeping the result identical to the
	// sequential loop.
	type stageOut struct {
		sec   float64
		stats Stats
		share float64
	}
	evalOne := func(r workload.Request) (stageOut, error) {
		st, stats1, share1, err := p.stageTime(env, []workload.Request{r}, tokensOf, fc, combine)
		return stageOut{st, stats1, share1}, err
	}
	var outs []stageOut
	var err error
	// Tiny batches are mostly memoized perfmodel hits; spinning a
	// worker pool per decode step costs more than it saves there
	// (and this loop already nests under the experiment grid and
	// stage-ladder sweeps).
	if len(batch) < 4 {
		outs = make([]stageOut, len(batch))
		for i, r := range batch {
			if outs[i], err = evalOne(r); err != nil {
				return StepCost{}, err
			}
		}
	} else {
		if outs, err = sweep.Run(ctx, batch, func(_ context.Context, r workload.Request) (stageOut, error) {
			return evalOne(r)
		}); err != nil {
			return StepCost{}, err
		}
	}
	var stats Stats
	var share float64
	var sum, max float64
	for _, o := range outs {
		sum += o.sec
		if o.sec > max {
			max = o.sec
		}
		stats.Busy += o.stats.Busy
		stats.Cycles += o.stats.Cycles
		stats.Channels = o.stats.Channels
		share += o.share
		stats.MACs += o.stats.MACs
		stats.IOBytes += o.stats.IOBytes
		stats.ActPre += o.stats.ActPre
	}
	share /= float64(len(batch))
	iterSec := sum + float64(env.PP-1)*max
	return StepCost{Seconds: iterSec, AttnShare: share, Stats: stats}, nil
}

// iterEnergy prices one iteration's energy on the shared PIM model: the
// accumulated stats cover one module's shard (TP) of one stage (PP); all
// Modules perform equivalent shards, and background power accrues only
// over the attention phase of the iteration.
func (p pimShared) iterEnergy(env *Env, cost StepCost, batch int) (attn, fc energy.Breakdown) {
	attnCycles := timing.Cycles(cost.Seconds * cost.AttnShare * cyclesPerSecond)
	eb := env.EMod.ForAggregate(env.Dev, cost.Stats.MACs, cost.Stats.IOBytes, cost.Stats.ActPre,
		cost.Stats.Channels, attnCycles)
	return eb.Scale(float64(env.Modules)), p.fcEnergy(env, batch)
}

// fcEnergy coarsely prices the FC phase of one iteration: DRAM reads of all
// sharded weights plus MAC-array energy for the batched GEMM. The price is
// pure in (model, batch), so it is memoized on the Env by batch size —
// the FC shape walk otherwise ran once per decode iteration.
func (pimShared) fcEnergy(env *Env, batch int) energy.Breakdown {
	if batch < len(env.fcEOK) && env.fcEOK[batch] {
		return env.fcE[batch]
	}
	m := env.Model
	fcBytes := m.FCLayerWeightBytes() * int64(m.Layers)
	macEquiv := fcBytes / int64(env.Dev.TileBytes*env.Dev.Banks) * int64(batch)
	v := energy.Breakdown{
		MAC:        float64(macEquiv) * env.EMod.MACpJ,
		IO:         float64(batch) * float64(m.DIn*m.Layers*m.ElemBytes) * env.EMod.IOpJPerByte,
		Background: 0, // background power is attributed once, in AttnEnergy
		Else:       float64(fcBytes) * env.EMod.DRAMReadpJPerByte,
	}
	env.fcE, env.fcEOK = memoPut(env.fcE, env.fcEOK, batch, v)
	return v
}

// prefillFlops is the total prompt-processing work at a context length:
// the FC GEMMs over all prompt tokens plus causal attention, quadratic
// in the context.
func prefillFlops(m model.Config, context int) int64 {
	fcFlopsPerTok := m.FCFlopsPerToken()
	// Causal attention per layer: sum_{t=1..T} 2*2*heads*dh*t ~ 2*heads*dh*T^2.
	attnFlops := int64(m.Layers) * 2 * int64(m.Heads) * int64(m.HeadDim) * int64(context) * int64(context)
	return int64(context)*fcFlopsPerTok + attnFlops
}

// additive composes a layer with no FC/attention overlap — the
// PIM-only schedule, whose FC and attention phases share the channel
// command bus.
func additive(attnSec, fcSec, syncSec float64) float64 {
	return attnSec + fcSec + syncSec
}

// overlapped composes a layer with sub-batch interleaving: 85% of the
// shorter phase hides under the longer one. NeuPIMs pioneered it for
// NPU GEMM vs PIM attention; the DIMM-PIM backend reuses it for its
// host-GPU GEMM vs DIMM attention (the L3 integrated schedule).
func overlapped(attnSec, fcSec, syncSec float64) float64 {
	longer, shorter := attnSec, fcSec
	if fcSec > attnSec {
		longer, shorter = fcSec, attnSec
	}
	return longer + 0.15*shorter + syncSec
}

// ---------------------------------------------------------------------------
// PIM-only (CENT-style) backend
// ---------------------------------------------------------------------------

// pimOnly is a CENT-style system: FC on per-module PNM, attention on PIM.
type pimOnly struct{ pimShared }

func init() { Register(pimOnly{}) }

func (pimOnly) Name() string { return PIMOnly }

func (pimOnly) Describe() string {
	return "CENT-style PIM-only: FC on per-module PNM, attention on PIM channels"
}

func (pimOnly) PIMAttention() bool { return true }

func (p pimOnly) Validate(env *Env) error { return p.validatePIM(env) }

func (p pimOnly) CapacityBytes(env *Env) int64 { return p.moduleCapacity(env) }

func (p pimOnly) Admission(env *Env) Admission { return p.admission(env) }

// pnmFC prices one layer's FC time on the PIM banks themselves: the max
// of the MAC-command issue roof (one command per Banks*ElemsPerTile
// MAC-ops per channel, at the scheduler's steady-state interval) and the
// weight-read roof (weights stream once per accumulator-file batch).
func pnmFC(env *Env, batch int) float64 {
	shardFlops, shardBytes := fcShard(env)
	dev := env.Dev
	macOpsPerCmd := int64(dev.Banks * dev.ElemsPerTile())
	cmds := int64(batch) * shardFlops / 2 / macOpsPerCmd
	perChannel := cmds / int64(dev.Channels)
	interval := dev.TMAC // static controllers pace MACs at tMAC
	if env.Tech.DCS {
		interval = dev.TCCDS // DCS sustains the pipelined interval
	}
	cmdSec := float64(perChannel) * float64(interval) / cyclesPerSecond
	// The accumulator file bounds how many requests share one weight
	// streaming pass; the baseline OutReg re-reads weights per pair.
	outEntries := dev.OutRegEntries()
	if env.Tech.DCS {
		outEntries = dev.OBufEntries()
	}
	passes := (batch + outEntries - 1) / outEntries
	byteSec := float64(shardBytes*int64(passes)) / (dev.InternalBandwidth() * cyclesPerSecond)
	if cmdSec > byteSec {
		return cmdSec
	}
	return byteSec
}

func (p pimOnly) Step(ctx context.Context, env *Env, batch []workload.Request, tokensOf TokensOf) (StepCost, error) {
	return p.step(ctx, env, batch, tokensOf, pnmFC, additive)
}

// pimModuleDollarsPerHour amortises one GDDR6-AiM-class PIM module
// (device plus its hosting share) — commodity-DRAM economics, an order
// of magnitude below a datacenter GPU.
const pimModuleDollarsPerHour = 0.45

// CostPerHour charges the module stack: a CENT-style system is PIM
// modules and nothing else.
func (pimOnly) CostPerHour(env *Env) float64 {
	return pimModuleDollarsPerHour * float64(env.Modules)
}

func (p pimOnly) IterEnergy(env *Env, cost StepCost, batch int) (attn, fc energy.Breakdown) {
	return p.iterEnergy(env, cost, batch)
}

// PrefillSeconds runs the prompt on the per-module PNM — the PIM-only
// system's known weakness and the motivation for GPU/NPU prefill offload
// in Hybe and NeuPIMs.
func (pimOnly) PrefillSeconds(env *Env, context int) float64 {
	dev := xpu.CENTPNM(env.Dev.InternalBandwidth())
	flops := prefillFlops(env.Model, context)
	return dev.OpTime(flops/int64(env.Modules), env.Model.WeightBytes()/int64(env.Modules))
}
