package backend

import (
	"context"
	"strings"
	"testing"

	"pimphony/internal/energy"
	"pimphony/internal/hub"
	"pimphony/internal/model"
	"pimphony/internal/perfmodel"
	"pimphony/internal/timing"
	"pimphony/internal/workload"
	"pimphony/internal/xpu"
)

// pimEnv builds a CENT-shaped environment with live pricing services.
func pimEnv(m model.Config, tech Technique) *Env {
	dev := timing.AiM16().WithChannels(32).WithCapacity(16 << 30)
	return &Env{
		Name: "test-pim", Dev: dev, Modules: 8, TP: 8, PP: 1,
		Model: m, Tech: tech, RowReuse: m.IsGQA(),
		Perf: perfmodel.New(dev), Hub: hub.New(dev), EMod: energy.Default(),
	}
}

// dimmEnv builds a DIMM-PIM-shaped environment.
func dimmEnv(m model.Config, tech Technique) *Env {
	dev := timing.DDR5DIMM()
	return &Env{
		Name: "test-dimm", Dev: dev, Modules: 8, TP: 8, PP: 1,
		Model: m, Tech: tech, RowReuse: m.IsGQA(),
		Perf: perfmodel.New(dev), Hub: hub.New(dev), EMod: energy.Default(),
	}
}

// gpuEnv builds the A100-baseline environment (no PIM services needed).
func gpuEnv(m model.Config) *Env {
	return &Env{Name: "test-gpu", GPUs: 2, Model: m, EMod: energy.Default()}
}

func smallBatch(n int) []workload.Request {
	return workload.Uniform(8192, 3).Batch(n)
}

func ctxOf(r workload.Request) int { return r.Context }

func TestRegistryNamesAndLookup(t *testing.T) {
	names := Names()
	want := []string{DIMMPIM, GPU, PIMOnly, XPUPIM}
	if len(names) != len(want) {
		t.Fatalf("registry has %v, want %v", names, want)
	}
	for i, n := range want {
		if names[i] != n {
			t.Errorf("Names()[%d] = %q, want %q (sorted)", i, names[i], n)
		}
	}
	for _, n := range names {
		b, err := Lookup(n)
		if err != nil {
			t.Fatalf("Lookup(%q): %v", n, err)
		}
		if b.Name() != n {
			t.Errorf("Lookup(%q).Name() = %q", n, b.Name())
		}
		if b.Describe() == "" {
			t.Errorf("%s has no description", n)
		}
	}
	// The empty name is the historical default organisation.
	if b, err := Lookup(""); err != nil || b.Name() != PIMOnly {
		t.Errorf(`Lookup("") = %v, %v; want pim-only`, b, err)
	}
	if _, err := Lookup("nope"); err == nil || !strings.Contains(err.Error(), "nope") {
		t.Errorf("unknown lookup should name the offender: %v", err)
	}
}

func TestRegisterDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Register should panic")
		}
	}()
	Register(gpu{})
}

func TestPIMAttentionCapability(t *testing.T) {
	for name, want := range map[string]bool{PIMOnly: true, XPUPIM: true, DIMMPIM: true, GPU: false} {
		b, err := Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		if b.PIMAttention() != want {
			t.Errorf("%s.PIMAttention() = %v, want %v", name, b.PIMAttention(), want)
		}
	}
}

func TestValidate(t *testing.T) {
	m := model.LLM7B32K()
	pim, _ := Lookup(PIMOnly)
	if err := pim.Validate(pimEnv(m, Baseline())); err != nil {
		t.Errorf("valid pim env rejected: %v", err)
	}
	bad := pimEnv(m, Baseline())
	bad.TP, bad.PP = 3, 1 // 3*1 != 8 modules
	if err := pim.Validate(bad); err == nil {
		t.Error("TP*PP != Modules should fail")
	}
	badTP := pimEnv(m, Baseline())
	badTP.Modules, badTP.TP = 48, 48 // 48 neither divides nor is divided by 32 heads
	if err := pim.Validate(badTP); err == nil {
		t.Error("non-dividing TP should fail")
	}
	badPP := pimEnv(m, Baseline())
	badPP.Modules, badPP.TP, badPP.PP = 3, 1, 3 // 32 layers % 3 != 0
	if err := pim.Validate(badPP); err == nil {
		t.Error("PP not dividing layers should fail")
	}
	g, _ := Lookup(GPU)
	if err := g.Validate(gpuEnv(m)); err != nil {
		t.Errorf("valid gpu env rejected: %v", err)
	}
	noGPUs := gpuEnv(m)
	noGPUs.GPUs = 0
	if err := g.Validate(noGPUs); err == nil {
		t.Error("GPUs=0 should fail")
	}
}

func TestCapacityBytes(t *testing.T) {
	m := model.LLM7B32K()
	env := pimEnv(m, Baseline())
	pim, _ := Lookup(PIMOnly)
	if got, want := pim.CapacityBytes(env), int64(env.Modules)*env.Dev.ModuleBytes(); got != want {
		t.Errorf("pim capacity %d, want %d", got, want)
	}
	g, _ := Lookup(GPU)
	if got, want := g.CapacityBytes(gpuEnv(m)), int64(2)*xpu.A100().MemBytes; got != want {
		t.Errorf("gpu capacity %d, want %d", got, want)
	}
	d, _ := Lookup(DIMMPIM)
	de := dimmEnv(m, Baseline())
	if got, want := d.CapacityBytes(de), int64(8)*timing.DDR5DIMM().ModuleBytes(); got != want {
		t.Errorf("dimm capacity %d, want %d", got, want)
	}
}

func TestAdmissionParameters(t *testing.T) {
	m := model.LLM7B32K()
	pim, _ := Lookup(PIMOnly)
	// Head-first placement bounds admission only without TCP.
	hfp := pim.Admission(pimEnv(m, Baseline()))
	if hfp.HeadBudget <= 0 || hfp.KVHeadsPerModule != m.KVHeads()/8 {
		t.Errorf("HFP admission %+v lacks a head budget", hfp)
	}
	tcp := pim.Admission(pimEnv(m, PIMphony()))
	if tcp.HeadBudget != 0 {
		t.Errorf("TCP admission should not carry a head budget: %+v", tcp)
	}
	if hfp.SkipUnfit || hfp.ReserveHorizon || hfp.WeightsHosted || hfp.PoolScale != 0 {
		t.Errorf("pim admission has GPU-shaped fields: %+v", hfp)
	}
	g, _ := Lookup(GPU)
	ga := g.Admission(gpuEnv(m))
	if !ga.SkipUnfit || !ga.ReserveHorizon || !ga.UnclampedHorizon {
		t.Errorf("gpu admission must pack greedily with upfront reservations: %+v", ga)
	}
	if ga.PoolScale != xpu.A100().PagedAttentionEff || ga.ReportedUtil != xpu.A100().PagedAttentionEff {
		t.Errorf("gpu admission must carry the paged-attention derate: %+v", ga)
	}
	alloc, err := ga.NewAllocator(1<<30, m.KVBytesPerToken(), m.ContextWindow)
	if err != nil || alloc.Name() != "paged" {
		t.Errorf("gpu allocator = %v, %v; want paged", alloc, err)
	}
	d, _ := Lookup(DIMMPIM)
	da := d.Admission(dimmEnv(m, PIMphony()))
	if !da.WeightsHosted {
		t.Error("dimm-pim pool must be all-KV (weights hosted)")
	}
}

// TestTokenShardGeometry covers TP beyond the KV-head count: the token
// axis shards and the head budget scales with the shard factor.
func TestTokenShardGeometry(t *testing.T) {
	m := model.LLM7B128KGQA() // 8 KV heads
	env := pimEnv(m, Baseline())
	env.Modules, env.TP = 16, 16 // TP 16 > 8 KV heads -> token shard 2
	var p pimShared
	kvHeads, shard := p.headGeometry(env)
	if kvHeads != 1 || shard != 2 {
		t.Fatalf("headGeometry = (%d, %d), want (1, 2)", kvHeads, shard)
	}
	adm := p.admission(env)
	if adm.KVHeadsPerModule != 1 {
		t.Errorf("admission kv heads %d, want 1", adm.KVHeadsPerModule)
	}
}

func TestStepDeterministicAndOrdered(t *testing.T) {
	m := model.LLM7B32K()
	batch := smallBatch(6)
	for _, name := range []string{PIMOnly, XPUPIM, DIMMPIM} {
		b, _ := Lookup(name)
		env := pimEnv(m, PIMphony())
		if name == DIMMPIM {
			env = dimmEnv(m, PIMphony())
		}
		c1, err := b.Step(context.Background(), env, batch, ctxOf)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		c2, err := b.Step(context.Background(), env, batch, ctxOf)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if c1 != c2 {
			t.Errorf("%s: Step not deterministic: %+v vs %+v", name, c1, c2)
		}
		if c1.Seconds <= 0 || c1.AttnShare <= 0 || c1.AttnShare > 1 {
			t.Errorf("%s: implausible cost %+v", name, c1)
		}
		if c1.Stats.Cycles <= 0 || c1.Stats.Channels != env.Dev.Channels {
			t.Errorf("%s: missing attention stats %+v", name, c1.Stats)
		}
	}
}

// TestOverlapBeatsAdditive: with identical phase times, the NeuPIMs
// combine must be cheaper than the additive one by 85% of the shorter
// phase.
func TestOverlapBeatsAdditive(t *testing.T) {
	if add, over := additive(3, 2, 1), overlapped(3, 2, 1); over >= add {
		t.Errorf("overlap %g should beat additive %g", over, add)
	}
	if got := overlapped(2, 3, 0); got != 3+0.15*2 {
		t.Errorf("overlapped(2,3,0) = %g", got)
	}
}

// TestPPPipelineComposition: with PP stages, one request's iteration is
// its per-stage time times (1 + PP-1) bubbles — cross-checked against
// the PP=1 stage of the same request with layers scaled.
func TestPPPipelineComposition(t *testing.T) {
	m := model.LLM7B32K()
	b, _ := Lookup(PIMOnly)
	one := smallBatch(1)
	ppEnv := pimEnv(m, PIMphony())
	ppEnv.Modules, ppEnv.TP, ppEnv.PP = 8, 1, 8
	cost, err := b.Step(context.Background(), ppEnv, one, ctxOf)
	if err != nil {
		t.Fatal(err)
	}
	var p pimShared
	stage, _, _, err := p.stageTime(ppEnv, one, ctxOf, pnmFC, additive)
	if err != nil {
		t.Fatal(err)
	}
	want := stage + 7*stage
	if diff := cost.Seconds - want; diff > 1e-15 || diff < -1e-15 {
		t.Errorf("PP iteration %g, want stage+7 bubbles = %g", cost.Seconds, want)
	}
	// The >= 4-request path fans out through the sweep engine and must
	// agree with the sequential composition too.
	four := smallBatch(5)
	costPar, err := b.Step(context.Background(), ppEnv, four, ctxOf)
	if err != nil {
		t.Fatal(err)
	}
	var sum, max float64
	for _, r := range four {
		st, _, _, err := p.stageTime(ppEnv, []workload.Request{r}, ctxOf, pnmFC, additive)
		if err != nil {
			t.Fatal(err)
		}
		sum += st
		if st > max {
			max = st
		}
	}
	if want := sum + 7*max; costPar.Seconds != want {
		t.Errorf("PP batch iteration %g, want %g", costPar.Seconds, want)
	}
}

// TestGPUStepMatchesRoofline: the GPU step is the plain A100 roofline
// sum of batched FC and flash-decoding attention.
func TestGPUStepMatchesRoofline(t *testing.T) {
	m := model.LLM7B32K()
	env := gpuEnv(m)
	b, _ := Lookup(GPU)
	batch := smallBatch(4)
	cost, err := b.Step(context.Background(), env, batch, ctxOf)
	if err != nil {
		t.Fatal(err)
	}
	g := xpu.A100()
	var kv int64
	for _, r := range batch {
		kv += m.KVBytes(r.Context)
	}
	fc := g.OpTime(4*m.FCFlopsPerToken()/2, m.WeightBytes()/2)
	attn := g.AttentionTime(kv / 2)
	if cost.Seconds != fc+attn {
		t.Errorf("gpu step %g, want %g", cost.Seconds, fc+attn)
	}
	if cost.Stats != (Stats{}) {
		t.Errorf("gpu step should carry no PIM stats: %+v", cost.Stats)
	}
}

func TestIterEnergyPerBackend(t *testing.T) {
	m := model.LLM7B32K()
	batch := smallBatch(4)
	pim, _ := Lookup(PIMOnly)
	env := pimEnv(m, PIMphony())
	cost, err := pim.Step(context.Background(), env, batch, ctxOf)
	if err != nil {
		t.Fatal(err)
	}
	attn, fc := pim.IterEnergy(env, cost, len(batch))
	if attn.Total() <= 0 || fc.Total() <= 0 {
		t.Errorf("pim energy must be positive: attn %g fc %g", attn.Total(), fc.Total())
	}
	xp, _ := Lookup(XPUPIM)
	if xattn, xfc := xp.IterEnergy(env, cost, len(batch)); xattn.Total() <= 0 || xfc.Total() <= 0 {
		t.Error("xpu+pim energy must be positive")
	}
	d, _ := Lookup(DIMMPIM)
	de := dimmEnv(m, PIMphony())
	dcost, err := d.Step(context.Background(), de, batch, ctxOf)
	if err != nil {
		t.Fatal(err)
	}
	dattn, dfc := d.IterEnergy(de, dcost, len(batch))
	if dattn.Total() <= 0 {
		t.Error("dimm-pim attention energy must be positive")
	}
	if dfc.Total() != 0 {
		t.Errorf("dimm-pim FC energy is host-side, want 0, got %g", dfc.Total())
	}
	g, _ := Lookup(GPU)
	if ga, gf := g.IterEnergy(gpuEnv(m), StepCost{Seconds: 1}, 4); ga.Total() != 0 || gf.Total() != 0 {
		t.Error("gpu energy must be zero (outside the module model)")
	}
}

// TestPrefillOrdering: the 3-TFLOPS PNM is the slowest prefill engine;
// the DIMM-PIM host GPU and the A100 baseline are dense-engine class.
func TestPrefillOrdering(t *testing.T) {
	m := model.LLM7B32K()
	const ctx = 32768
	pim, _ := Lookup(PIMOnly)
	xp, _ := Lookup(XPUPIM)
	g, _ := Lookup(GPU)
	d, _ := Lookup(DIMMPIM)
	pp := pim.PrefillSeconds(pimEnv(m, PIMphony()), ctx)
	xn := xp.PrefillSeconds(pimEnv(m, PIMphony()), ctx)
	gg := g.PrefillSeconds(gpuEnv(m), ctx)
	dd := d.PrefillSeconds(dimmEnv(m, PIMphony()), ctx)
	if !(pp > xn && pp > gg && pp > dd) {
		t.Errorf("PNM prefill %.3fs should be slowest (npu %.3fs, gpu %.3fs, dimm host %.3fs)", pp, xn, gg, dd)
	}
	for _, v := range []float64{pp, xn, gg, dd} {
		if v <= 0 {
			t.Error("prefill times must be positive")
		}
	}
}

// TestDCSAcceleratesPNMFC: the DCS command interval and deeper OBuf must
// not slow the PNM FC path down.
func TestDCSAcceleratesPNMFC(t *testing.T) {
	m := model.LLM72B32K()
	base := pimEnv(m, Baseline())
	base.Modules, base.TP = 32, 32
	dcs := pimEnv(m, Technique{DCS: true})
	dcs.Modules, dcs.TP = 32, 32
	for _, batch := range []int{1, 8, 64} {
		b, d := pnmFC(base, batch), pnmFC(dcs, batch)
		if d > b {
			t.Errorf("batch %d: DCS FC %g slower than static %g", batch, d, b)
		}
	}
}

// TestAllocatorFallbackSelection: a nil Admission.NewAllocator means the
// cluster picks static vs DPA from the technique — make sure the PIM
// backends leave it nil so that contract holds.
func TestAllocatorFallbackSelection(t *testing.T) {
	m := model.LLM7B32K()
	for _, name := range []string{PIMOnly, XPUPIM, DIMMPIM} {
		b, _ := Lookup(name)
		env := pimEnv(m, PIMphony())
		if name == DIMMPIM {
			env = dimmEnv(m, PIMphony())
		}
		if adm := b.Admission(env); adm.NewAllocator != nil {
			t.Errorf("%s overrides the technique-selected allocator", name)
		}
	}
}

// TestStepperMatchesStep pins the incremental stepper's contract: for
// every PIM-attention backend, technique mix and geometry, the memoized
// pricer must return the exact StepCost the naive Backend.Step computes
// — bit for bit — across growing token counts (bucket crossings
// included) and changing batch compositions.
func TestStepperMatchesStep(t *testing.T) {
	m := model.LLM7B32K()
	gqa := model.LLM7B128KGQA()
	shardEnv := pimEnv(gqa, PIMphony())
	shardEnv.TP = 2 * gqa.KVHeads() // token-axis sharding past the head count
	shardEnv.Modules = shardEnv.TP
	ppEnv := pimEnv(m, PIMphony())
	ppEnv.TP, ppEnv.PP = 4, 2 // pipeline fallback path
	cases := []struct {
		name string
		be   Backend
		env  *Env
	}{
		{"pim-baseline", pimOnly{}, pimEnv(m, Baseline())},
		{"pim-pimphony", pimOnly{}, pimEnv(m, PIMphony())},
		{"pim-tcp-only", pimOnly{}, pimEnv(m, Technique{TCP: true})},
		{"pim-dcs-only", pimOnly{}, pimEnv(m, Technique{DCS: true})},
		{"pim-gqa-rowreuse", pimOnly{}, pimEnv(gqa, PIMphony())},
		{"pim-gqa-hfp", pimOnly{}, pimEnv(gqa, Baseline())},
		{"pim-token-sharded", pimOnly{}, shardEnv},
		{"pim-pipelined", pimOnly{}, ppEnv},
		{"xpu-pimphony", xpuPIM{}, pimEnv(m, PIMphony())},
		{"xpu-baseline", xpuPIM{}, pimEnv(m, Baseline())},
		{"dimm-pimphony", dimmPIM{}, dimmEnv(m, PIMphony())},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if err := c.be.Validate(c.env); err != nil {
				t.Fatalf("config invalid: %v", err)
			}
			st := c.be.(Incremental).NewStepper(c.env)
			batch := smallBatch(5)
			// A tiny context exercises the sub-channel (zero-token slice)
			// edge; a huge one the quantization cap.
			batch[0].Context = 10
			batch[1].Context = 70000
			for step := 0; step < 48; step++ {
				if step == 20 {
					batch = batch[:3] // completion shrinks the batch
				}
				if step == 30 {
					batch = append(batch, smallBatch(7)[6]) // admission
				}
				grown := step
				tokensOf := func(r workload.Request) int { return r.Context + grown }
				want, err := c.be.Step(context.Background(), c.env, batch, tokensOf)
				if err != nil {
					t.Fatal(err)
				}
				got, err := st.Step(context.Background(), batch, tokensOf)
				if err != nil {
					t.Fatal(err)
				}
				if got != want {
					t.Fatalf("step %d diverged:\nstepper %+v\nnaive   %+v", step, got, want)
				}
			}
		})
	}
}

func TestCostPerHourAllBackends(t *testing.T) {
	m := model.LLM7B32K()
	envs := map[string]*Env{
		PIMOnly: pimEnv(m, PIMphony()),
		XPUPIM:  pimEnv(m, PIMphony()),
		DIMMPIM: dimmEnv(m, PIMphony()),
		GPU:     gpuEnv(m),
	}
	for name, env := range envs {
		b, err := Lookup(name)
		if err != nil {
			t.Fatalf("Lookup(%s): %v", name, err)
		}
		if c := b.CostPerHour(env); c <= 0 {
			t.Errorf("%s: CostPerHour = %g, want positive", name, c)
		}
	}
	// Cost ordering the docs promise: the commodity PIM stack undercuts
	// the GPU pair, and hybrids pay their host/NPU premium over pure PIM.
	pim, _ := Lookup(PIMOnly)
	gpuB, _ := Lookup(GPU)
	xpu, _ := Lookup(XPUPIM)
	if pim.CostPerHour(envs[PIMOnly]) >= gpuB.CostPerHour(envs[GPU]) {
		t.Errorf("PIM stack $%g/h not below GPU $%g/h", pim.CostPerHour(envs[PIMOnly]), gpuB.CostPerHour(envs[GPU]))
	}
	if xpu.CostPerHour(envs[XPUPIM]) <= pim.CostPerHour(envs[PIMOnly]) {
		t.Errorf("xPU+PIM $%g/h not above PIM-only $%g/h", xpu.CostPerHour(envs[XPUPIM]), pim.CostPerHour(envs[PIMOnly]))
	}
}
