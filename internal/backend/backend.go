// Package backend defines the pluggable system-backend seam of the
// cluster simulator: one Backend per system organisation (CENT-style
// PIM-only, NeuPIMs-style xPU+PIM, the A100 GPU baseline, and an
// L3/LoL-PIM-style DIMM-PIM system), each pricing the per-step phases of
// a decode iteration — FC projections, attention, collective
// communication — and declaring its KV-capacity geometry and admission
// semantics. The step loop in internal/cluster (both the batch simulator
// and the serving engine) is backend-agnostic: it admits against the
// backend's Admission parameters, prices every iteration through
// Backend.Step, and accrues energy through Backend.IterEnergy. Adding a
// new system organisation is one Register call; no step-loop fork.
package backend

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"pimphony/internal/energy"
	"pimphony/internal/hub"
	"pimphony/internal/memory"
	"pimphony/internal/model"
	"pimphony/internal/perfmodel"
	"pimphony/internal/timing"
	"pimphony/internal/workload"
)

// Technique toggles PIMphony's three co-designed techniques.
type Technique struct {
	TCP bool // token-centric partitioning (vs head-first)
	DCS bool // dynamic command scheduling + I/O-aware buffering (vs static)
	DPA bool // dynamic PIM access / lazy KV allocation (vs T_max reservation)
}

// Baseline is the all-off configuration.
func Baseline() Technique { return Technique{} }

// PIMphony is the all-on configuration.
func PIMphony() Technique { return Technique{TCP: true, DCS: true, DPA: true} }

// Registered backend names. The constants double as the Config.Backend
// values the cluster package accepts.
const (
	PIMOnly = "pim-only"
	XPUPIM  = "xpu+pim"
	GPU     = "gpu"
	DIMMPIM = "dimm-pim"
)

// Env is the per-system context a backend prices against: the relevant
// configuration subset plus the memoized pricing services the owning
// cluster.System builds once.
type Env struct {
	// Name is the owning configuration's name, used in error messages.
	Name string
	// Dev is the PIM module geometry (zero-valued for backends without
	// PIM modules, e.g. the GPU baseline).
	Dev timing.Device
	// Modules, TP, PP describe the module count and its parallelism
	// split; GPUs is the device count of GPU configurations.
	Modules, TP, PP, GPUs int
	Model                 model.Config
	Tech                  Technique
	// RowReuse applies the row-reuse KV mapping (Sec. V-C).
	RowReuse bool
	// Perf and Hub are the memoized channel-latency service and the HUB
	// model; EMod prices energy. They are nil/zero in validation-only
	// environments.
	Perf *perfmodel.Service
	Hub  *hub.Hub
	EMod energy.Model

	// fcE memoizes the FC half of iterEnergy by micro-batch size: it is
	// a pure function of the model and batch, but recomputing it walked
	// the FC shape list on every decode iteration — the single hottest
	// line of the serving fast-forward loop. An Env is single-goroutine
	// like the stepper it rides with, so a plain slice suffices.
	fcE   []energy.Breakdown
	fcEOK []bool
}

// Stats aggregates the PIM-channel attention counters of one priced
// iteration: the utilization and energy inputs the step loop accrues.
// Zero-valued for backends without PIM channels.
type Stats struct {
	Cycles   timing.Cycles // critical-path attention cycles
	Busy     timing.Cycles // aggregate MAC-busy cycles across channels
	MACs     int64
	IOBytes  int64
	ActPre   int64
	Channels int
}

// StepCost is the price of one decode iteration for a batch.
type StepCost struct {
	// Seconds is the iteration time.
	Seconds float64
	// AttnShare is the attention fraction of iteration time.
	AttnShare float64
	// Stats carries the PIM attention counters (zero for non-PIM
	// backends).
	Stats Stats
}

// TokensOf resolves a request's current KV length (prompt context plus
// tokens generated so far).
type TokensOf func(workload.Request) int

// Admission describes how the cluster admitter treats this backend:
// pool geometry, queue semantics and the allocator that tracks KV
// reservations.
type Admission struct {
	// PoolScale derates the post-weights KV pool to the usable fraction
	// (the GPU's paged-attention efficiency); <= 0 or 1 leaves the pool
	// untouched, with no float round trip.
	PoolScale float64
	// WeightsHosted marks backends whose weights live outside the KV
	// pool (the DIMM-PIM host keeps them in its own HBM), so the whole
	// device capacity serves KV and no weights-fit check applies.
	WeightsHosted bool
	// SkipUnfit scans past queued requests that do not fit instead of
	// stopping at the queue head — the GPU's paged pool packs greedily.
	SkipUnfit bool
	// ReserveHorizon admits a request at its full admission horizon
	// (upfront paged reservation) rather than its current context.
	ReserveHorizon bool
	// UnclampedHorizon leaves the admission horizon at context+window
	// even past T_max (the GPU reserves exactly what the decode window
	// will touch).
	UnclampedHorizon bool
	// HeadBudget bounds head-first placement: total (request, KV head)
	// tile tokens that fit per module under per-channel capacity. Zero
	// disables the bound (TCP, or backends without channel placement).
	HeadBudget int64
	// KVHeadsPerModule is the per-request head-tile count charged
	// against HeadBudget.
	KVHeadsPerModule int
	// ReportedUtil, when positive, overrides the batch Report's
	// CapacityUtil (the GPU reports its paged-attention efficiency
	// rather than pool fill).
	ReportedUtil float64
	// NewAllocator builds the KV allocator for a pool. Nil selects the
	// technique default: DPA chunks when Tech.DPA, static T_max
	// reservation otherwise.
	NewAllocator func(pool, bytesPerToken int64, tmax int) (memory.Allocator, error)
}

// Backend prices one system organisation. Implementations must be
// stateless (shared across Systems and goroutines); all per-system
// state lives in the Env.
type Backend interface {
	// Name is the registry key and the Report's system label.
	Name() string
	// Describe is the one-line summary CLI -list flags print.
	Describe() string
	// PIMAttention reports whether attention executes on PIM channels,
	// i.e. whether the compiler / on-module dispatcher path applies.
	PIMAttention() bool
	// Validate checks the backend-specific parts of a configuration.
	Validate(env *Env) error
	// CapacityBytes is the total device memory across the system
	// (weights + KV unless Admission.WeightsHosted).
	CapacityBytes(env *Env) int64
	// Admission returns the admitter parameters for this backend.
	Admission(env *Env) Admission
	// Step prices one decode iteration over the active batch.
	Step(ctx context.Context, env *Env, batch []workload.Request, tokensOf TokensOf) (StepCost, error)
	// IterEnergy prices one iteration's attention and FC energy from a
	// Step's cost.
	IterEnergy(env *Env, cost StepCost, batch int) (attn, fc energy.Breakdown)
	// PrefillSeconds estimates prompt processing on the backend's dense
	// engine.
	PrefillSeconds(env *Env, context int) float64
	// CostPerHour is the amortised provisioning cost of one replica of
	// this system in dollars per hour — hardware capital spread over its
	// service life plus hosting, excluding the modeled device energy
	// (which serving reports price separately at the grid rate). Values
	// are order-of-magnitude; the reproduced metric is the cost ratio
	// between system organisations, not a market quote.
	CostPerHour(env *Env) float64
}

var (
	regMu    sync.RWMutex
	registry = map[string]Backend{}
)

// Register adds a backend under its Name; duplicate names panic (the
// registry is populated from init functions, where a collision is a
// programming error).
func Register(b Backend) {
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[b.Name()]; dup {
		panic(fmt.Sprintf("backend: duplicate registration of %q", b.Name()))
	}
	registry[b.Name()] = b
}

// Lookup resolves a backend by registry name. The empty name resolves
// to the PIM-only backend, the historical default system organisation.
func Lookup(name string) (Backend, error) {
	if name == "" {
		name = PIMOnly
	}
	regMu.RLock()
	b, ok := registry[name]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("backend: unknown system backend %q (known: %v)", name, Names())
	}
	return b, nil
}

// Names returns the registered backend names in sorted order.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
