package backend

import (
	"context"

	"pimphony/internal/energy"
	"pimphony/internal/workload"
	"pimphony/internal/xpu"
)

// npuMemGBsPerModule is the weight-read bandwidth available to the NeuPIMs
// NPU per module. The NPU accesses DRAM through the regular channel
// interface (not the bank-internal MAC path), so it sees GDDR6-class
// external bandwidth rather than the 32 TB/s internal figure.
const npuMemGBsPerModule = 1000

// xpuPIM is a NeuPIMs-style system: FC on an NPU, attention on PIM, the
// two phases overlapped by sub-batch interleaving.
type xpuPIM struct{ pimShared }

func init() { Register(xpuPIM{}) }

func (xpuPIM) Name() string { return XPUPIM }

func (xpuPIM) Describe() string {
	return "NeuPIMs-style xPU+PIM: batched GEMM on an NPU overlapped with PIM attention"
}

func (xpuPIM) PIMAttention() bool { return true }

func (x xpuPIM) Validate(env *Env) error { return x.validatePIM(env) }

func (x xpuPIM) CapacityBytes(env *Env) int64 { return x.moduleCapacity(env) }

func (x xpuPIM) Admission(env *Env) Admission { return x.admission(env) }

// npuFC prices one layer's FC as a batched GEMM on the NPU roofline.
func npuFC(env *Env, batch int) float64 {
	shardFlops, shardBytes := fcShard(env)
	return xpu.NeuPIMsNPU(npuMemGBsPerModule).OpTime(int64(batch)*shardFlops, shardBytes)
}

func (x xpuPIM) Step(ctx context.Context, env *Env, batch []workload.Request, tokensOf TokensOf) (StepCost, error) {
	return x.step(ctx, env, batch, tokensOf, npuFC, overlapped)
}

func (x xpuPIM) IterEnergy(env *Env, cost StepCost, batch int) (attn, fc energy.Breakdown) {
	return x.iterEnergy(env, cost, batch)
}

// PrefillSeconds runs the prompt on the NPU (the phase split NeuPIMs and
// Hybe argue for).
func (xpuPIM) PrefillSeconds(env *Env, context int) float64 {
	dev := xpu.NeuPIMsNPU(npuMemGBsPerModule)
	flops := prefillFlops(env.Model, context)
	return dev.OpTime(flops/int64(env.Modules), env.Model.WeightBytes()/int64(env.Modules))
}

// npuDollarsPerHour amortises the NPU die the hybrid adds on top of its
// PIM modules.
const npuDollarsPerHour = 1.20

// CostPerHour charges the PIM module stack plus the NPU.
func (xpuPIM) CostPerHour(env *Env) float64 {
	return npuDollarsPerHour + pimModuleDollarsPerHour*float64(env.Modules)
}
