package backend

import (
	"context"

	"pimphony/internal/energy"
	"pimphony/internal/workload"
	"pimphony/internal/xpu"
)

// dimmPIM is an L3/LoL-PIM-style DIMM-PIM organisation: attention
// executes on rank-level PIM units inside commodity DDR5 DIMMs (high
// capacity, modest internal bandwidth — timing.DDR5DIMM), while the FC
// projections run on a host GPU-class engine out of its own HBM
// (xpu.DIMMHostGPU), overlapped with the DIMM attention the way L3's
// integrated scheduler hides PIM latency under the GEMM. The weights
// therefore live outside the DIMM pool: every DIMM byte serves KV
// cache, which is the capacity roofline these systems trade on for
// long-context serving.
type dimmPIM struct{ pimShared }

func init() { Register(dimmPIM{}) }

func (dimmPIM) Name() string { return DIMMPIM }

func (dimmPIM) Describe() string {
	return "L3/LoL-PIM-style DIMM-PIM: host-GPU FC, DIMM-rank PIM attention, all-KV DIMM pool"
}

func (dimmPIM) PIMAttention() bool { return true }

func (d dimmPIM) Validate(env *Env) error { return d.validatePIM(env) }

func (d dimmPIM) CapacityBytes(env *Env) int64 { return d.moduleCapacity(env) }

// Admission is the shared PIM admission with the weights hosted on the
// GPU: the whole DIMM capacity is KV pool.
func (d dimmPIM) Admission(env *Env) Admission {
	adm := d.admission(env)
	adm.WeightsHosted = true
	return adm
}

// hostFC prices one layer's FC as a batched GEMM on the host GPU, which
// holds the full (unsharded) weights in its own HBM: one weight
// streaming pass per layer regardless of the DIMM count.
func hostFC(env *Env, batch int) float64 {
	m := env.Model
	return xpu.DIMMHostGPU().OpTime(int64(batch)*m.FCLayerFlops(), m.FCLayerWeightBytes())
}

func (d dimmPIM) Step(ctx context.Context, env *Env, batch []workload.Request, tokensOf TokensOf) (StepCost, error) {
	return d.step(ctx, env, batch, tokensOf, hostFC, overlapped)
}

// IterEnergy prices the DIMM attention on the shared PIM module model;
// the host-side FC burns HBM/GPU energy outside the module model, so
// its share is reported as zero here.
func (d dimmPIM) IterEnergy(env *Env, cost StepCost, batch int) (attn, fc energy.Breakdown) {
	attn, _ = d.iterEnergy(env, cost, batch)
	return attn, energy.Breakdown{}
}

// PrefillSeconds runs the prompt on the host GPU at full weight
// residency (no per-module sharding).
func (dimmPIM) PrefillSeconds(env *Env, context int) float64 {
	dev := xpu.DIMMHostGPU()
	return dev.OpTime(prefillFlops(env.Model, context), env.Model.WeightBytes())
}

// dimmDollarsPerHour amortises one PIM-enabled DDR5 DIMM — commodity
// memory pricing, the capacity-per-dollar argument of the L3/LoL-PIM
// line.
const dimmDollarsPerHour = 0.09

// CostPerHour charges the host GPU (which keeps the weights and runs
// FC) plus the DIMM pool.
func (dimmPIM) CostPerHour(env *Env) float64 {
	return gpuDollarsPerHour + dimmDollarsPerHour*float64(env.Modules)
}
