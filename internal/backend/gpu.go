package backend

import (
	"context"
	"fmt"

	"pimphony/internal/energy"
	"pimphony/internal/memory"
	"pimphony/internal/workload"
	"pimphony/internal/xpu"
)

// gpu is the A100 flash-decoding + paged-attention baseline of Fig. 20.
// It prices the whole iteration on the GPU rooflines (batched-GEMM FC
// plus KV-streaming attention) and admits against a paged pool: the
// post-weights capacity derated by the paged-attention efficiency,
// packed greedily with upfront per-request reservations — the exact
// semantics of the pre-refactor dedicated GPU path, now expressed
// through the same admitter and step loop as every other backend (which
// is what gives the GPU baseline serving-engine support).
type gpu struct{}

func init() { Register(gpu{}) }

func (gpu) Name() string { return GPU }

func (gpu) Describe() string {
	return "A100 GPU baseline with flash-decoding and paged-attention"
}

func (gpu) PIMAttention() bool { return false }

func (gpu) Validate(env *Env) error {
	if env.GPUs <= 0 {
		return fmt.Errorf("cluster %s: GPU system needs GPUs > 0", env.Name)
	}
	return nil
}

func (gpu) CapacityBytes(env *Env) int64 {
	return int64(env.GPUs) * xpu.A100().MemBytes
}

func (gpu) Admission(env *Env) Admission {
	g := xpu.A100()
	return Admission{
		PoolScale:        g.PagedAttentionEff,
		SkipUnfit:        true,
		ReserveHorizon:   true,
		UnclampedHorizon: true,
		ReportedUtil:     g.PagedAttentionEff,
		NewAllocator: func(pool, bytesPerToken int64, _ int) (memory.Allocator, error) {
			return memory.NewPaged(pool, bytesPerToken)
		},
	}
}

func (gpu) Step(_ context.Context, env *Env, batch []workload.Request, tokensOf TokensOf) (StepCost, error) {
	g := xpu.A100()
	m := env.Model
	var kv int64
	for _, r := range batch {
		kv += m.KVBytes(tokensOf(r))
	}
	fc := g.OpTime(int64(len(batch))*m.FCFlopsPerToken()/int64(env.GPUs), m.WeightBytes()/int64(env.GPUs))
	attn := g.AttentionTime(kv / int64(env.GPUs))
	return StepCost{Seconds: fc + attn, AttnShare: attn / (fc + attn)}, nil
}

// IterEnergy is zero: the module energy model covers PIM systems only.
func (gpu) IterEnergy(*Env, StepCost, int) (attn, fc energy.Breakdown) {
	return energy.Breakdown{}, energy.Breakdown{}
}

func (gpu) PrefillSeconds(env *Env, context int) float64 {
	g := xpu.A100()
	flops := prefillFlops(env.Model, context)
	return g.OpTime(flops/int64(env.GPUs), env.Model.WeightBytes()/int64(env.GPUs))
}

// gpuDollarsPerHour amortises one A100-class device (cloud on-demand
// scale). The GPU prices no module energy (IterEnergy is zero), so its
// serving cost is provisioning-only.
const gpuDollarsPerHour = 2.10

// CostPerHour charges the device count.
func (gpu) CostPerHour(env *Env) float64 {
	return gpuDollarsPerHour * float64(env.GPUs)
}
