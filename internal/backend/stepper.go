package backend

import (
	"context"

	"pimphony/internal/perfmodel"
	"pimphony/internal/timing"
	"pimphony/internal/workload"
)

// Incremental is an optional Backend refinement: backends whose Step
// cost is dominated by re-deriving the per-channel work assignment and
// re-pricing kernel shapes implement it to expose a stateful stepper
// that memoizes those derivations across decode iterations. A stepper's
// Step must be observationally identical to the backend's own Step —
// the same StepCost bit for bit — differing only in wall-clock cost;
// the cluster step loops route every iteration through it when present.
type Incremental interface {
	NewStepper(env *Env) Stepper
}

// Stepper prices decode iterations for one system with state memoized
// across calls. Steppers are stateful and not safe for concurrent use;
// each cluster.System owns exactly one.
type Stepper interface {
	Step(ctx context.Context, batch []workload.Request, tokensOf TokensOf) (StepCost, error)
}

// pimStepper is the incremental pricer shared by the PIM-attention
// backends. attentionLayer re-derives the same structures on every
// iteration: the mapping.Assign work lists — whose per-channel shape
// follows in closed form from the partitioning strategy — and the
// per-work perfmodel latencies, which collapse to at most two distinct
// shapes per request under TCP (token slices of base and base+1 tokens)
// and to the capacity tile plus one remainder under HFP. The stepper
// computes the per-channel cycle sums directly from those closed forms
// and memoizes each priced shape, so a decode iteration touches the
// perfmodel cache only when a token count the stepper has not seen yet
// appears. Everything ahead of the final stage fold is integer
// arithmetic over the exact same priced values the naive path sums, and
// the fold itself is the shared composeStage, which keeps the stepper's
// StepCost bit-identical to Backend.Step.
type pimStepper struct {
	env     *Env
	shared  pimShared
	fc      fcFunc
	combine combineFunc

	// geometry, resolved once per system
	kvHeads    int
	tokenShard int
	tcp        bool
	capTokens  int // HFP force-split channel capacity
	sc         perfmodel.Sched
	baseline   bool
	queries    int

	lat     map[int]perfmodel.Latency // priceAttention by per-channel tokens
	fcSec   map[int]float64           // FC cost by micro-batch size
	syncSec map[int]float64           // TP all-reduce cost by micro-batch size
	chSum   []timing.Cycles           // per-channel scratch
}

func newPIMStepper(env *Env, shared pimShared, fc fcFunc, combine combineFunc) *pimStepper {
	kvHeads, tokenShard := shared.headGeometry(env)
	sc, baseline := shared.schedKind(env)
	s := &pimStepper{
		env: env, shared: shared, fc: fc, combine: combine,
		kvHeads: kvHeads, tokenShard: tokenShard,
		tcp: env.Tech.TCP, sc: sc, baseline: baseline,
		queries: env.Model.GQAGroup,
		lat:     make(map[int]perfmodel.Latency),
		fcSec:   make(map[int]float64),
		syncSec: make(map[int]float64),
		chSum:   make([]timing.Cycles, env.Dev.Channels),
	}
	if !s.tcp {
		s.capTokens = shared.headCapacityTokens(env)
	}
	return s
}

// Step implements Stepper.
func (s *pimStepper) Step(ctx context.Context, batch []workload.Request, tokensOf TokensOf) (StepCost, error) {
	if s.env.PP != 1 {
		// Pipeline systems evaluate per-request stage times on the sweep
		// worker pool; the memoized fast path is single-threaded, so they
		// keep the naive (already parallel) pricing.
		return s.shared.step(ctx, s.env, batch, tokensOf, s.fc, s.combine)
	}
	at, err := s.attention(batch, tokensOf)
	if err != nil {
		return StepCost{}, err
	}
	sec, stats, share := composeStage(s.env, at, s.fcCost(len(batch)), s.syncCost(len(batch)), s.combine)
	return StepCost{Seconds: sec, AttnShare: share, Stats: stats}, nil
}

func (s *pimStepper) fcCost(batch int) float64 {
	if v, ok := s.fcSec[batch]; ok {
		return v
	}
	v := s.fc(s.env, batch)
	s.fcSec[batch] = v
	return v
}

func (s *pimStepper) syncCost(batch int) float64 {
	if v, ok := s.syncSec[batch]; ok {
		return v
	}
	v := float64(s.shared.syncCycles(s.env, batch)) / cyclesPerSecond
	s.syncSec[batch] = v
	return v
}

// price memoizes priceAttention for one per-channel token count (the
// query count is the GQA group for every work of a batch).
func (s *pimStepper) price(tokens int) (perfmodel.Latency, error) {
	if l, ok := s.lat[tokens]; ok {
		return l, nil
	}
	l, err := s.shared.priceAttention(s.env, tokens, s.env.Model.HeadDim, s.queries, s.baseline, s.sc)
	if err != nil {
		return perfmodel.Latency{}, err
	}
	s.lat[tokens] = l
	return l, nil
}

// attention reproduces attentionLayer's per-layer Stats without
// materializing the assignment.
func (s *pimStepper) attention(reqs []workload.Request, tokensOf TokensOf) (Stats, error) {
	env := s.env
	channels := env.Dev.Channels
	sums := s.chSum
	for i := range sums {
		sums[i] = 0
	}
	var st Stats
	st.Channels = channels
	if s.tcp {
		// TCP slices every (request, head) token range evenly over all
		// channels: rem channels carry base+1 tokens, the rest base.
		for _, r := range reqs {
			t := (tokensOf(r) + s.tokenShard - 1) / s.tokenShard
			base, rem := t/channels, t%channels
			var c0, c1 perfmodel.Latency
			var err error
			if base > 0 {
				if c0, err = s.price(base); err != nil {
					return Stats{}, err
				}
			}
			if rem > 0 {
				if c1, err = s.price(base + 1); err != nil {
					return Stats{}, err
				}
			}
			heads := timing.Cycles(s.kvHeads)
			for ch := 0; ch < rem; ch++ {
				sums[ch] += c1.Cycles * heads
			}
			if base > 0 {
				for ch := rem; ch < channels; ch++ {
					sums[ch] += c0.Cycles * heads
				}
			}
			n1 := int64(rem)
			n0 := int64(channels - rem)
			if base == 0 {
				n0 = 0 // zero-token slices are not placed
			}
			kh := int64(s.kvHeads)
			st.Busy += timing.Cycles((int64(c1.Breakdown.MAC)*n1 + int64(c0.Breakdown.MAC)*n0) * kh)
			st.MACs += (c1.MACs*n1 + c0.MACs*n0) * kh
			st.IOBytes += (c1.IOBytes*n1 + c0.IOBytes*n0) * kh
			st.ActPre += (c1.ActPre*n1 + c0.ActPre*n0) * kh
		}
	} else {
		// HFP places whole (request, head) tiles round-robin, force-split
		// at the channel capacity — the same placement order Assign uses.
		i := 0
		place := func(tokens int) error {
			c, err := s.price(tokens)
			if err != nil {
				return err
			}
			sums[i%channels] += c.Cycles
			st.Busy += c.Breakdown.MAC
			st.MACs += c.MACs
			st.IOBytes += c.IOBytes
			st.ActPre += c.ActPre
			i++
			return nil
		}
		for _, r := range reqs {
			t := (tokensOf(r) + s.tokenShard - 1) / s.tokenShard
			for h := 0; h < s.kvHeads; h++ {
				tt := t
				if s.capTokens > 0 {
					for tt > s.capTokens {
						if err := place(s.capTokens); err != nil {
							return Stats{}, err
						}
						tt -= s.capTokens
					}
				}
				if tt > 0 {
					if err := place(tt); err != nil {
						return Stats{}, err
					}
				}
			}
		}
	}
	var maxCh timing.Cycles
	for _, c := range sums {
		if c > maxCh {
			maxCh = c
		}
	}
	st.Cycles = maxCh
	var softmax timing.Cycles
	qHeads := s.kvHeads * env.Model.GQAGroup
	for _, r := range reqs {
		softmax += env.Hub.SoftmaxCycles((tokensOf(r)+s.tokenShard-1)/s.tokenShard) * timing.Cycles(qHeads)
	}
	st.Cycles += softmax / epuLanes
	if s.tcp {
		red := env.Hub.ReduceCycles(channels, env.Model.HeadDim)
		st.Cycles += red * timing.Cycles(len(reqs)*s.kvHeads) / epuLanes
	}
	return st, nil
}

// NewStepper implements Incremental.
func (p pimOnly) NewStepper(env *Env) Stepper {
	return newPIMStepper(env, p.pimShared, pnmFC, additive)
}

// NewStepper implements Incremental.
func (x xpuPIM) NewStepper(env *Env) Stepper {
	return newPIMStepper(env, x.pimShared, npuFC, overlapped)
}

// NewStepper implements Incremental.
func (d dimmPIM) NewStepper(env *Env) Stepper {
	return newPIMStepper(env, d.pimShared, hostFC, overlapped)
}
