package backend

import (
	"context"

	"pimphony/internal/perfmodel"
	"pimphony/internal/timing"
	"pimphony/internal/workload"
)

// Incremental is an optional Backend refinement: backends whose Step
// cost is dominated by re-deriving the per-channel work assignment and
// re-pricing kernel shapes implement it to expose a stateful stepper
// that memoizes those derivations across decode iterations. A stepper's
// Step must be observationally identical to the backend's own Step —
// the same StepCost bit for bit — differing only in wall-clock cost;
// the cluster step loops route every iteration through it when present.
type Incremental interface {
	NewStepper(env *Env) Stepper
}

// Stepper prices decode iterations for one system with state memoized
// across calls. Steppers are stateful and not safe for concurrent use;
// each cluster.System owns exactly one.
type Stepper interface {
	Step(ctx context.Context, batch []workload.Request, tokensOf TokensOf) (StepCost, error)
}

// SliceStepper is an optional Stepper fast path for callers that already
// hold every request's token count in batch order: toks[i] is batch[i]'s
// current KV length. It skips the per-request TokensOf indirection (a
// closure call plus an ID lookup per request per iteration on the
// serving fast-forward path) and must price identically to Step.
type SliceStepper interface {
	StepSlice(ctx context.Context, batch []workload.Request, toks []int) (StepCost, error)
}

// pimStepper is the incremental pricer shared by the PIM-attention
// backends. attentionLayer re-derives the same structures on every
// iteration: the mapping.Assign work lists — whose per-channel shape
// follows in closed form from the partitioning strategy — and the
// per-work perfmodel latencies, which collapse to at most two distinct
// shapes per request under TCP (token slices of base and base+1 tokens)
// and to the capacity tile plus one remainder under HFP. The stepper
// computes the per-channel cycle sums directly from those closed forms
// and memoizes each priced shape, so a decode iteration touches the
// perfmodel cache only when a token count the stepper has not seen yet
// appears. Everything ahead of the final stage fold is integer
// arithmetic over the exact same priced values the naive path sums, and
// the fold itself is the shared composeStage, which keeps the stepper's
// StepCost bit-identical to Backend.Step.
type pimStepper struct {
	env     *Env
	shared  pimShared
	fc      fcFunc
	combine combineFunc

	// geometry, resolved once per system
	kvHeads    int
	tokenShard int
	tcp        bool
	capTokens  int // HFP force-split channel capacity
	sc         perfmodel.Sched
	baseline   bool
	queries    int

	// The memo tables are dense slices indexed by their small integer
	// keys (per-channel token counts, micro-batch sizes) with parallel
	// validity bitmaps: the serving hot path hits them once per request
	// per iteration, where a map lookup's hashing dominated the lookup.
	lat     []perfmodel.Latency // priceAttention by per-channel tokens
	latOK   []bool
	fcSec   []float64 // FC cost by micro-batch size
	fcOK    []bool
	syncSec []float64 // TP all-reduce cost by micro-batch size
	syncOK  []bool
	chSum   []timing.Cycles // per-channel scratch
	red     timing.Cycles   // Hub.ReduceCycles(channels, HeadDim), constant per system
	redOK   bool
	tokBuf  []int // batch-order token counts for the TokensOf entry point

	// Softmax pricing constants hoisted out of Hub.SoftmaxCycles, which
	// runs once per request per iteration: same arithmetic, no Device
	// copy per call. (A per-token-count memo does not pay here — decode
	// sweeps mostly-distinct token counts, so it never warms up.)
	softEPT     int
	softBase    timing.Cycles
	softPerTile timing.Cycles
}

func newPIMStepper(env *Env, shared pimShared, fc fcFunc, combine combineFunc) *pimStepper {
	kvHeads, tokenShard := shared.headGeometry(env)
	sc, baseline := shared.schedKind(env)
	s := &pimStepper{
		env: env, shared: shared, fc: fc, combine: combine,
		kvHeads: kvHeads, tokenShard: tokenShard,
		tcp: env.Tech.TCP, sc: sc, baseline: baseline,
		queries: env.Model.GQAGroup,
		chSum:   make([]timing.Cycles, env.Dev.Channels),

		softEPT:     env.Dev.ElemsPerTile(),
		softBase:    env.Dev.EPUSoftmaxBase,
		softPerTile: env.Dev.EPUSoftmaxPerTile,
	}
	if !s.tcp {
		s.capTokens = shared.headCapacityTokens(env)
	}
	return s
}

// softmax is Hub.SoftmaxCycles with the device constants pre-resolved.
func (s *pimStepper) softmax(scores int) timing.Cycles {
	tiles := (scores + s.softEPT - 1) / s.softEPT
	return s.softBase + timing.Cycles(tiles)*s.softPerTile
}

// Step implements Stepper.
func (s *pimStepper) Step(ctx context.Context, batch []workload.Request, tokensOf TokensOf) (StepCost, error) {
	if s.env.PP != 1 {
		// Pipeline systems evaluate per-request stage times on the sweep
		// worker pool; the memoized fast path is single-threaded, so they
		// keep the naive (already parallel) pricing.
		return s.shared.step(ctx, s.env, batch, tokensOf, s.fc, s.combine)
	}
	toks := s.tokBuf[:0]
	for _, r := range batch {
		toks = append(toks, tokensOf(r))
	}
	s.tokBuf = toks
	return s.stepToks(toks)
}

// StepSlice implements SliceStepper.
func (s *pimStepper) StepSlice(ctx context.Context, batch []workload.Request, toks []int) (StepCost, error) {
	if s.env.PP != 1 {
		pos := make(map[int]int, len(batch))
		for i, r := range batch {
			pos[r.ID] = i
		}
		return s.shared.step(ctx, s.env, batch,
			func(r workload.Request) int { return toks[pos[r.ID]] }, s.fc, s.combine)
	}
	return s.stepToks(toks)
}

func (s *pimStepper) stepToks(toks []int) (StepCost, error) {
	at, err := s.attention(toks)
	if err != nil {
		return StepCost{}, err
	}
	sec, stats, share := composeStage(s.env, at, s.fcCost(len(toks)), s.syncCost(len(toks)), s.combine)
	return StepCost{Seconds: sec, AttnShare: share, Stats: stats}, nil
}

func (s *pimStepper) fcCost(batch int) float64 {
	if batch < len(s.fcOK) && s.fcOK[batch] {
		return s.fcSec[batch]
	}
	v := s.fc(s.env, batch)
	s.fcSec, s.fcOK = memoPut(s.fcSec, s.fcOK, batch, v)
	return v
}

func (s *pimStepper) syncCost(batch int) float64 {
	if batch < len(s.syncOK) && s.syncOK[batch] {
		return s.syncSec[batch]
	}
	v := float64(s.shared.syncCycles(s.env, batch)) / cyclesPerSecond
	s.syncSec, s.syncOK = memoPut(s.syncSec, s.syncOK, batch, v)
	return v
}

// memoPut stores v at index k, growing the dense memo to fit.
func memoPut[T any](vals []T, ok []bool, k int, v T) ([]T, []bool) {
	if k >= len(vals) {
		vals = append(vals, make([]T, k+1-len(vals))...)
		ok = append(ok, make([]bool, k+1-len(ok))...)
	}
	vals[k] = v
	ok[k] = true
	return vals, ok
}

// price memoizes priceAttention for one per-channel token count (the
// query count is the GQA group for every work of a batch). It returns
// the memo index rather than the Latency value so hot callers read the
// few fields they need in place instead of copying the whole struct;
// the index stays valid across later price calls (only the slice header
// moves on growth), but a *pointer* into s.lat would not.
func (s *pimStepper) price(tokens int) (int, error) {
	if tokens < len(s.latOK) && s.latOK[tokens] {
		return tokens, nil
	}
	l, err := s.shared.priceAttention(s.env, tokens, s.env.Model.HeadDim, s.queries, s.baseline, s.sc)
	if err != nil {
		return 0, err
	}
	s.lat, s.latOK = memoPut(s.lat, s.latOK, tokens, l)
	return tokens, nil
}

// attention reproduces attentionLayer's per-layer Stats without
// materializing the assignment; toks holds each batch member's current
// KV length.
func (s *pimStepper) attention(toks []int) (Stats, error) {
	env := s.env
	channels := env.Dev.Channels
	var st Stats
	st.Channels = channels
	if s.tcp {
		// TCP slices every (request, head) token range evenly over all
		// channels: rem channels carry base+1 tokens, the rest base. The
		// per-channel sums are never walked per request: a request adds
		// C0 to every channel and (C1-C0) to channels below its rem, so
		// sums[ch] = ΣC0 + Σ_{rem>ch}(C1-C0) — accumulate the common term
		// and a rem-indexed delta histogram (all integer cycles, so the
		// regrouping is exact) and fold the channel max in one sweep.
		dd := s.chSum // zeroed by the previous sweep (or by make)
		var base0, busy, softSum timing.Cycles
		var macs, io, ap int64
		heads := timing.Cycles(s.kvHeads)
		kh := int64(s.kvHeads)
		for _, tok := range toks {
			t := tok
			if s.tokenShard != 1 {
				t = (tok + s.tokenShard - 1) / s.tokenShard
			}
			base, rem := t/channels, t%channels
			var cyc0, mac0, cyc1, mac1 timing.Cycles
			var macs0, io0, ap0, macs1, io1, ap1 int64
			if base > 0 {
				i0, err := s.price(base)
				if err != nil {
					return Stats{}, err
				}
				l := &s.lat[i0]
				cyc0, mac0, macs0, io0, ap0 = l.Cycles, l.Breakdown.MAC, l.MACs, l.IOBytes, l.ActPre
			}
			if rem > 0 {
				i1, err := s.price(base + 1)
				if err != nil {
					return Stats{}, err
				}
				l := &s.lat[i1]
				cyc1, mac1, macs1, io1, ap1 = l.Cycles, l.Breakdown.MAC, l.MACs, l.IOBytes, l.ActPre
			}
			c0h := cyc0 * heads
			base0 += c0h
			if rem > 0 {
				dd[rem] += cyc1*heads - c0h
			}
			n1 := int64(rem)
			n0 := int64(channels - rem)
			if base == 0 {
				n0 = 0 // zero-token slices are not placed
			}
			busy += timing.Cycles((int64(mac1)*n1 + int64(mac0)*n0) * kh)
			macs += (macs1*n1 + macs0*n0) * kh
			io += (io1*n1 + io0*n0) * kh
			ap += (ap1*n1 + ap0*n0) * kh
			softSum += s.softmax(t)
		}
		st.Busy, st.MACs, st.IOBytes, st.ActPre = busy, macs, io, ap
		var maxCh, suffix timing.Cycles
		for ch := channels - 1; ch >= 0; ch-- {
			if v := base0 + suffix; v > maxCh {
				maxCh = v
			}
			suffix += dd[ch]
			dd[ch] = 0
		}
		st.Cycles = maxCh
		qHeads := s.kvHeads * env.Model.GQAGroup
		st.Cycles += softSum * timing.Cycles(qHeads) / epuLanes
		if !s.redOK {
			s.red = env.Hub.ReduceCycles(channels, env.Model.HeadDim)
			s.redOK = true
		}
		st.Cycles += s.red * timing.Cycles(len(toks)*s.kvHeads) / epuLanes
		return st, nil
	}
	sums := s.chSum
	for i := range sums {
		sums[i] = 0
	}
	// HFP places whole (request, head) tiles round-robin, force-split
	// at the channel capacity — the same placement order Assign uses.
	i := 0
	place := func(tokens int) error {
		idx, err := s.price(tokens)
		if err != nil {
			return err
		}
		c := &s.lat[idx]
		sums[i%channels] += c.Cycles
		st.Busy += c.Breakdown.MAC
		st.MACs += c.MACs
		st.IOBytes += c.IOBytes
		st.ActPre += c.ActPre
		i++
		return nil
	}
	for _, tok := range toks {
		t := (tok + s.tokenShard - 1) / s.tokenShard
		for h := 0; h < s.kvHeads; h++ {
			tt := t
			if s.capTokens > 0 {
				for tt > s.capTokens {
					if err := place(s.capTokens); err != nil {
						return Stats{}, err
					}
					tt -= s.capTokens
				}
			}
			if tt > 0 {
				if err := place(tt); err != nil {
					return Stats{}, err
				}
			}
		}
	}
	var maxCh timing.Cycles
	for _, c := range sums {
		if c > maxCh {
			maxCh = c
		}
	}
	st.Cycles = maxCh
	var softmax timing.Cycles
	qHeads := s.kvHeads * env.Model.GQAGroup
	for _, tok := range toks {
		softmax += s.softmax((tok+s.tokenShard-1)/s.tokenShard) * timing.Cycles(qHeads)
	}
	st.Cycles += softmax / epuLanes
	return st, nil
}

// NewStepper implements Incremental.
func (p pimOnly) NewStepper(env *Env) Stepper {
	return newPIMStepper(env, p.pimShared, pnmFC, additive)
}

// NewStepper implements Incremental.
func (x xpuPIM) NewStepper(env *Env) Stepper {
	return newPIMStepper(env, x.pimShared, npuFC, overlapped)
}

// NewStepper implements Incremental.
func (d dimmPIM) NewStepper(env *Env) Stepper {
	return newPIMStepper(env, d.pimShared, hostFC, overlapped)
}
