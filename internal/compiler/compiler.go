// Package compiler is PIMphony's MLIR-style compilation pipeline reduced to
// the parts the evaluation exercises: pattern-matching passes that locate
// the PIM-amenable kernels (QK^T, SV and the FC projections) in a decoder
// graph, and lowering passes that emit module-level PIM instruction
// programs in two encodings — the conventional static unrolling whose
// footprint grows linearly with the maximum context (Fig. 10a), and the
// DPA encoding (Dyn-Loop / Dyn-Modi) whose footprint is constant
// (Fig. 10b/c).
package compiler

import (
	"fmt"

	"pimphony/internal/ir"
	"pimphony/internal/isa"
	"pimphony/internal/model"
	"pimphony/internal/timing"
)

// Class labels a detected kernel.
type Class uint8

const (
	// QKT is the attention score kernel (token-dependent).
	QKT Class = iota
	// SV is the attention value kernel (token-dependent).
	SV
	// FC is a fully-connected projection (fixed shape).
	FC
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case QKT:
		return "qkt"
	case SV:
		return "sv"
	case FC:
		return "fc"
	default:
		return fmt.Sprintf("Class(%d)", uint8(c))
	}
}

// Kernel is one detected PIM-amenable kernel.
type Kernel struct {
	Class Class
	Label string
	// FC dims (valid when Class == FC).
	DIn, DOut int
	// HeadDim (valid for attention kernels).
	HeadDim int
	// TokenDependent kernels iterate over the KV cache.
	TokenDependent bool
}

// DetectKernels walks a decoder-layer graph and extracts the kernels:
//   - a MatMul whose right operand is a transposed KV cache is QK^T;
//   - a MatMul of a Softmax output against a KV cache is SV;
//   - a MatMul against a Weight is an FC projection.
func DetectKernels(layer *ir.DecoderLayer) ([]Kernel, error) {
	g := layer.Graph
	if err := g.Verify(); err != nil {
		return nil, fmt.Errorf("compiler: %w", err)
	}
	var out []Kernel
	for _, n := range g.Nodes {
		if n.Kind != ir.MatMul {
			continue
		}
		lhs, rhs := g.Producer(n.Inputs[0]), g.Producer(n.Inputs[1])
		switch {
		case rhs != nil && rhs.Kind == ir.Transpose && isKVCache(g, rhs.Inputs[0]):
			out = append(out, Kernel{
				Class: QKT, Label: n.Label,
				HeadDim:        g.Values[rhs.Inputs[0]].Shape[1],
				TokenDependent: true,
			})
		case rhs != nil && rhs.Kind == ir.KVCache && lhs != nil && lhs.Kind == ir.Softmax:
			out = append(out, Kernel{
				Class: SV, Label: n.Label,
				HeadDim:        g.Values[n.Inputs[1]].Shape[1],
				TokenDependent: true,
			})
		case rhs != nil && rhs.Kind == ir.Weight:
			sh := g.Values[n.Inputs[1]].Shape
			out = append(out, Kernel{Class: FC, Label: n.Label, DIn: sh[0], DOut: sh[1]})
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("compiler: no PIM kernels detected in %s", g.Name)
	}
	return out, nil
}

func isKVCache(g *ir.Graph, valueID int) bool {
	p := g.Producer(valueID)
	return p != nil && p.Kind == ir.KVCache
}

// ---------------------------------------------------------------------------
// Lowering
// ---------------------------------------------------------------------------

// Target carries the device geometry the lowering needs.
type Target struct {
	Dev timing.Device
	// TCP lowers attention kernels with token-parallel channel masks; when
	// false the head-first mapping addresses a single channel per head.
	TCP bool
}

// LowerFC emits the (fixed-size) program of one FC projection: the input
// streams once, then one MAC instruction per output group with Op-size
// covering the input tiles, and one RD-OUT per group.
func (t Target) LowerFC(k Kernel) (*isa.Program, error) {
	if k.Class != FC {
		return nil, fmt.Errorf("compiler: LowerFC on %s kernel %q", k.Class, k.Label)
	}
	d := t.Dev
	inTiles := ceilDiv(k.DIn, d.ElemsPerTile())
	groups := ceilDiv(k.DOut, d.Banks*d.Channels) // dout sharded over channels
	mask := isa.AllChannels(d.Channels)
	p := &isa.Program{Name: k.Label}
	p.Insts = append(p.Insts, isa.Instruction{Op: isa.WRINP, ChMask: mask, OpSize: inTiles})
	for g := 0; g < groups; g++ {
		p.Insts = append(p.Insts,
			isa.Instruction{Op: isa.MAC, ChMask: mask, OpSize: inTiles, Row: g * inTiles / d.TilesPerRow(), Col: g * inTiles % d.TilesPerRow()},
			isa.Instruction{Op: isa.RDOUT, ChMask: mask, OpSize: 1, Out: g % 2})
	}
	return p, validated(p)
}

// LowerAttentionDPA emits the compact DPA encoding of an attention kernel:
// a Dyn-Loop over score/value groups whose bound resolves from the
// request's T_cur, with Dyn-Modi striding the row/column operands. The
// program size is independent of context length.
func (t Target) LowerAttentionDPA(k Kernel) (*isa.Program, error) {
	if k.Class != QKT && k.Class != SV {
		return nil, fmt.Errorf("compiler: LowerAttentionDPA on %s kernel %q", k.Class, k.Label)
	}
	d := t.Dev
	dhTiles := ceilDiv(k.HeadDim, d.ElemsPerTile())
	mask := t.channelMask()
	channels := 1
	if t.TCP {
		channels = d.Channels
	}
	// Tokens per loop iteration: one group of Banks keys per channel, all
	// active channels in parallel.
	tokensPerIter := d.Banks * channels
	var body []isa.Instruction
	if k.Class == QKT {
		body = []isa.Instruction{
			{Op: isa.DYNMODI, Target: 0, Field: isa.FieldCol, Stride: dhTiles},
			{Op: isa.MAC, ChMask: mask, OpSize: dhTiles},
			{Op: isa.RDOUT, ChMask: mask, OpSize: 1},
		}
	} else {
		// SV: stream one score tile per iteration and accumulate into the
		// head-dim output groups.
		body = []isa.Instruction{
			{Op: isa.DYNMODI, Target: 1, Field: isa.FieldCol, Stride: dhTiles},
			{Op: isa.WRINP, ChMask: mask, OpSize: 1},
			{Op: isa.MAC, ChMask: mask, OpSize: dhTiles},
		}
	}
	p := &isa.Program{Name: k.Label + "-dpa"}
	if k.Class == QKT {
		p.Insts = append(p.Insts, isa.Instruction{Op: isa.WRINP, ChMask: mask, OpSize: dhTiles}) // query tiles
	}
	p.Insts = append(p.Insts, isa.Instruction{Op: isa.DYNLOOP,
		Bound: isa.LoopBound{TokensPerIter: tokensPerIter}, Body: body})
	if k.Class == SV {
		p.Insts = append(p.Insts, isa.Instruction{Op: isa.RDOUT, ChMask: mask, OpSize: dhTiles})
	}
	return p, validated(p)
}

// LowerAttentionStatic emits the conventional fully unrolled encoding for a
// maximum context length: one MAC (and RD-OUT / WR-INP) instruction group
// per token group, with physical addresses fixed at compile time. The
// program size grows linearly with tmax.
func (t Target) LowerAttentionStatic(k Kernel, tmax int) (*isa.Program, error) {
	if k.Class != QKT && k.Class != SV {
		return nil, fmt.Errorf("compiler: LowerAttentionStatic on %s kernel %q", k.Class, k.Label)
	}
	if tmax <= 0 {
		return nil, fmt.Errorf("compiler: tmax must be positive, got %d", tmax)
	}
	d := t.Dev
	dhTiles := ceilDiv(k.HeadDim, d.ElemsPerTile())
	mask := t.channelMask()
	channels := 1
	if t.TCP {
		channels = d.Channels
	}
	groups := ceilDiv(tmax, d.Banks*channels)
	p := &isa.Program{Name: fmt.Sprintf("%s-static-%d", k.Label, tmax)}
	if k.Class == QKT {
		p.Insts = append(p.Insts, isa.Instruction{Op: isa.WRINP, ChMask: mask, OpSize: dhTiles})
		for g := 0; g < groups; g++ {
			p.Insts = append(p.Insts,
				isa.Instruction{Op: isa.MAC, ChMask: mask, OpSize: dhTiles, Col: g * dhTiles},
				isa.Instruction{Op: isa.RDOUT, ChMask: mask, OpSize: 1})
		}
	} else {
		for g := 0; g < groups; g++ {
			p.Insts = append(p.Insts,
				isa.Instruction{Op: isa.WRINP, ChMask: mask, OpSize: 1},
				isa.Instruction{Op: isa.MAC, ChMask: mask, OpSize: dhTiles, Col: g * dhTiles})
		}
		p.Insts = append(p.Insts, isa.Instruction{Op: isa.RDOUT, ChMask: mask, OpSize: dhTiles})
	}
	return p, validated(p)
}

func (t Target) channelMask() uint32 {
	if t.TCP {
		return isa.AllChannels(t.Dev.Channels)
	}
	return 1 // head-first: one channel per head kernel
}

func validated(p *isa.Program) error {
	if err := p.Validate(); err != nil {
		return fmt.Errorf("compiler: emitted invalid program %q: %w", p.Name, err)
	}
	return nil
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

// ---------------------------------------------------------------------------
// Whole-model compilation and footprint accounting (Fig. 10c)
// ---------------------------------------------------------------------------

// Compiled is the result of compiling one model for one target.
type Compiled struct {
	Model   model.Config
	Target  Target
	Kernels []Kernel
	// DPAttn are the DPA-encoded attention programs (one per kernel).
	DPAttn []*isa.Program
	// FCProgs are the projection programs.
	FCProgs []*isa.Program
}

// Compile builds the decoder-layer graph, detects kernels and lowers them.
func Compile(cfg model.Config, target Target) (*Compiled, error) {
	layer, err := ir.BuildDecoderLayer(cfg)
	if err != nil {
		return nil, err
	}
	kernels, err := DetectKernels(layer)
	if err != nil {
		return nil, err
	}
	c := &Compiled{Model: cfg, Target: target, Kernels: kernels}
	for _, k := range kernels {
		switch k.Class {
		case FC:
			p, err := target.LowerFC(k)
			if err != nil {
				return nil, err
			}
			c.FCProgs = append(c.FCProgs, p)
		default:
			p, err := target.LowerAttentionDPA(k)
			if err != nil {
				return nil, err
			}
			c.DPAttn = append(c.DPAttn, p)
		}
	}
	return c, nil
}

// DPAFootprint is the per-layer attention instruction footprint under the
// DPA encoding (context-independent).
func (c *Compiled) DPAFootprint() int64 {
	var n int64
	for _, p := range c.DPAttn {
		n += p.EncodedSize()
	}
	return n
}

// StaticFootprint is the per-layer attention instruction footprint under
// static unrolling for the given maximum context.
func (c *Compiled) StaticFootprint(tmax int) (int64, error) {
	var n int64
	for _, k := range c.Kernels {
		if k.Class == FC {
			continue
		}
		p, err := c.Target.LowerAttentionStatic(k, tmax)
		if err != nil {
			return 0, err
		}
		n += p.EncodedSize()
	}
	return n, nil
}
