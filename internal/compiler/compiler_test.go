package compiler

import (
	"testing"

	"pimphony/internal/ir"
	"pimphony/internal/isa"
	"pimphony/internal/kernels"
	"pimphony/internal/model"
	"pimphony/internal/timing"
)

func target() Target { return Target{Dev: timing.AiM16(), TCP: true} }

func detect(t *testing.T, cfg model.Config) []Kernel {
	t.Helper()
	layer, err := ir.BuildDecoderLayer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ks, err := DetectKernels(layer)
	if err != nil {
		t.Fatal(err)
	}
	return ks
}

func TestDetectKernels(t *testing.T) {
	ks := detect(t, model.LLM7B32K())
	byClass := map[Class]int{}
	labels := map[string]Class{}
	for _, k := range ks {
		byClass[k.Class]++
		labels[k.Label] = k.Class
	}
	if byClass[QKT] != 1 || byClass[SV] != 1 {
		t.Errorf("attention kernel counts = %v, want 1 QKT + 1 SV", byClass)
	}
	if byClass[FC] != 7 {
		t.Errorf("FC kernel count = %d, want 7 projections", byClass[FC])
	}
	if labels["qk_t"] != QKT || labels["sv"] != SV || labels["ffn_down"] != FC {
		t.Errorf("kernel labels misclassified: %v", labels)
	}
	for _, k := range ks {
		if (k.Class == QKT || k.Class == SV) && !k.TokenDependent {
			t.Errorf("%s should be token dependent", k.Label)
		}
		if (k.Class == QKT || k.Class == SV) && k.HeadDim != 128 {
			t.Errorf("%s head dim = %d", k.Label, k.HeadDim)
		}
	}
}

func TestCompileAllModels(t *testing.T) {
	for _, cfg := range model.All() {
		c, err := Compile(cfg, target())
		if err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
		if len(c.DPAttn) != 2 {
			t.Errorf("%s: %d DPA attention programs, want 2", cfg.Name, len(c.DPAttn))
		}
		if len(c.FCProgs) != 7 {
			t.Errorf("%s: %d FC programs, want 7", cfg.Name, len(c.FCProgs))
		}
	}
}

// TestFig10FootprintShape pins the paper's Fig. 10c claim: static unrolled
// footprint grows linearly with context while the DPA footprint is small
// and constant.
func TestFig10FootprintShape(t *testing.T) {
	c, err := Compile(model.LLM7B128KGQA(), target())
	if err != nil {
		t.Fatal(err)
	}
	dpa := c.DPAFootprint()
	if dpa <= 0 || dpa > 1024 {
		t.Errorf("DPA footprint = %d B, want small constant", dpa)
	}
	prev := int64(0)
	for _, tmax := range []int{32 << 10, 128 << 10, 1 << 20} {
		st, err := c.StaticFootprint(tmax)
		if err != nil {
			t.Fatal(err)
		}
		if st <= prev {
			t.Errorf("static footprint must grow with tmax: %d B at %d", st, tmax)
		}
		prev = st
	}
	st128, _ := c.StaticFootprint(128 << 10)
	if ratio := float64(st128) / float64(dpa); ratio < 50 {
		t.Errorf("static/DPA footprint ratio at 128K = %.0fx, want large", ratio)
	}
	st1m, _ := c.StaticFootprint(1 << 20)
	st128k, _ := c.StaticFootprint(128 << 10)
	lin := float64(st1m) / float64(st128k)
	if lin < 7 || lin > 9 {
		t.Errorf("8x context should give ~8x static footprint, got %.1fx", lin)
	}
}

// TestLoweredQKTMatchesKernelBuilder cross-checks the compiler against the
// channel-level kernel builder: the DPA program expanded at a context
// length must produce the same per-channel MAC count the simulator's
// command stack contains.
func TestLoweredQKTMatchesKernelBuilder(t *testing.T) {
	dev := timing.AiM16()
	tg := Target{Dev: dev, TCP: true}
	k := Kernel{Class: QKT, Label: "qk_t", HeadDim: 128, TokenDependent: true}
	p, err := tg.LowerAttentionDPA(k)
	if err != nil {
		t.Fatal(err)
	}
	for _, tokens := range []int{4096, 16384} {
		counts, err := p.CountExpanded(tokens)
		if err != nil {
			t.Fatal(err)
		}
		// Kernel builder: per-channel slice of tokens/channels.
		kc := kernels.NewConfig(dev, kernels.OBufBuffers(dev))
		stack, err := kc.QKT(tokens/dev.Channels, 128, 1, false)
		if err != nil {
			t.Fatal(err)
		}
		st := kernels.StackStats(stack)
		perChannel := counts[isa.MAC] / int64(dev.Channels)
		if perChannel != int64(st.Mac) {
			t.Errorf("tokens=%d: compiler expands %d MACs/channel, builder emits %d",
				tokens, perChannel, st.Mac)
		}
	}
}

func TestLowerFCProgramShape(t *testing.T) {
	tg := target()
	k := Kernel{Class: FC, Label: "ffn_up", DIn: 4096, DOut: 12288}
	p, err := tg.LowerFC(k)
	if err != nil {
		t.Fatal(err)
	}
	counts, err := p.CountExpanded(1)
	if err != nil {
		t.Fatal(err)
	}
	// MAC-ops = din/16 tiles x ceil(dout/(banks*channels)) groups x channels.
	wantMAC := int64(4096/16) * int64((12288+255)/256) * 16
	if counts[isa.MAC] != wantMAC {
		t.Errorf("FC MAC commands = %d, want %d", counts[isa.MAC], wantMAC)
	}
}

func TestLoweringClassChecks(t *testing.T) {
	tg := target()
	if _, err := tg.LowerFC(Kernel{Class: QKT}); err == nil {
		t.Error("LowerFC on attention kernel should fail")
	}
	if _, err := tg.LowerAttentionDPA(Kernel{Class: FC}); err == nil {
		t.Error("LowerAttentionDPA on FC kernel should fail")
	}
	if _, err := tg.LowerAttentionStatic(Kernel{Class: FC}, 1024); err == nil {
		t.Error("LowerAttentionStatic on FC kernel should fail")
	}
	if _, err := tg.LowerAttentionStatic(Kernel{Class: QKT, HeadDim: 128}, 0); err == nil {
		t.Error("non-positive tmax should fail")
	}
}

func TestHFPMaskTargetsOneChannel(t *testing.T) {
	tg := Target{Dev: timing.AiM16(), TCP: false}
	p, err := tg.LowerAttentionDPA(Kernel{Class: QKT, Label: "q", HeadDim: 128, TokenDependent: true})
	if err != nil {
		t.Fatal(err)
	}
	cmds, err := p.Expand(256, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cmds {
		if c.Channel != 0 {
			t.Fatalf("HFP lowering touched channel %d", c.Channel)
		}
	}
}

func TestClassString(t *testing.T) {
	if QKT.String() != "qkt" || SV.String() != "sv" || FC.String() != "fc" {
		t.Fatal("class names changed")
	}
}
