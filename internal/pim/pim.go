// Package pim models a single PIM channel at command granularity.
//
// A channel executes a linear stack of PIM commands. Three primitive kinds
// follow the paper's Table III: WR-INP copies one 32 B tile from the HUB GPR
// into a Global Buffer (GBuf) entry; MAC reads one GBuf entry, multiplies it
// against one DRAM column tile in every bank in parallel and accumulates
// into a per-bank output entry; RD-OUT drains one output entry from all
// banks (2 B per bank, 32 B total) back to the GPR. ACT/PRE row commands are
// materialised by the kernel builders when a MAC touches a closed row.
package pim

import "fmt"

// Kind enumerates PIM command kinds.
type Kind uint8

const (
	// WRINP writes one input tile into a GBuf entry.
	WRINP Kind = iota
	// MAC multiplies one GBuf entry against one DRAM column tile per bank
	// and accumulates into an output entry.
	MAC
	// RDOUT drains one output entry from all banks to the GPR.
	RDOUT
	// ACT activates (opens) a DRAM row in all banks of the channel.
	ACT
	// PRE precharges (closes) the open DRAM row.
	PRE
)

// String implements fmt.Stringer for command kinds.
func (k Kind) String() string {
	switch k {
	case WRINP:
		return "WR-INP"
	case MAC:
		return "MAC"
	case RDOUT:
		return "RD-OUT"
	case ACT:
		return "ACT"
	case PRE:
		return "PRE"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Command is one channel-level PIM command. IDs are assigned densely by the
// Stack builder in program order, mirroring the paper's Fig. 7 example where
// each command carries a unique identifier used for dependency tracking.
type Command struct {
	ID   int
	Kind Kind
	// GBuf is the Global Buffer entry index accessed by WRINP (write) and
	// MAC (read). Unused (-1) for other kinds.
	GBuf int
	// Out is the output entry index accumulated by MAC and drained by
	// RDOUT. Unused (-1) for other kinds.
	Out int
	// Row and Col locate the DRAM tile read by MAC. Row is also set for
	// ACT/PRE. Unused (-1) otherwise.
	Row, Col int
}

// Stack is an ordered PIM command stream for one channel, as produced by the
// kernel builders and consumed by the schedulers.
type Stack struct {
	Cmds []Command
	// GBufEntries and OutEntries record the buffer geometry the stack was
	// built for; schedulers validate against their device config.
	GBufEntries int
	OutEntries  int
}

// NewStack returns an empty stack for the given buffer geometry.
func NewStack(gbufEntries, outEntries int) *Stack {
	return &Stack{GBufEntries: gbufEntries, OutEntries: outEntries}
}

// push appends a command, assigning the next dense ID, and returns it.
func (s *Stack) push(c Command) Command {
	c.ID = len(s.Cmds)
	s.Cmds = append(s.Cmds, c)
	return c
}

// WrInp appends a WR-INP command targeting the given GBuf entry.
func (s *Stack) WrInp(gbuf int) Command {
	return s.push(Command{Kind: WRINP, GBuf: gbuf, Out: -1, Row: -1, Col: -1})
}

// Mac appends a MAC command reading gbuf and accumulating into out at the
// DRAM location (row, col).
func (s *Stack) Mac(gbuf, out, row, col int) Command {
	return s.push(Command{Kind: MAC, GBuf: gbuf, Out: out, Row: row, Col: col})
}

// RdOut appends an RD-OUT command draining the given output entry.
func (s *Stack) RdOut(out int) Command {
	return s.push(Command{Kind: RDOUT, GBuf: -1, Out: out, Row: -1, Col: -1})
}

// Act appends a row-activate command for the given row.
func (s *Stack) Act(row int) Command {
	return s.push(Command{Kind: ACT, GBuf: -1, Out: -1, Row: row, Col: -1})
}

// Pre appends a precharge command closing the given row.
func (s *Stack) Pre(row int) Command {
	return s.push(Command{Kind: PRE, GBuf: -1, Out: -1, Row: row, Col: -1})
}

// Len is the number of commands in the stack.
func (s *Stack) Len() int { return len(s.Cmds) }

// Counts tallies commands by kind.
func (s *Stack) Counts() map[Kind]int {
	m := make(map[Kind]int, 5)
	for _, c := range s.Cmds {
		m[c.Kind]++
	}
	return m
}

// Validate checks stack-level invariants: IDs are dense and in order, buffer
// indices are within the declared geometry, every MAC reads a GBuf entry
// that was written earlier, every RD-OUT drains an output entry some MAC
// accumulated into since the previous drain, and row commands alternate
// sensibly (no MAC on a closed row once any ACT appears).
func (s *Stack) Validate() error {
	written := make([]bool, s.GBufEntries)
	accum := make([]bool, s.OutEntries)
	usesRowCmds := false
	for _, c := range s.Cmds {
		if c.Kind == ACT || c.Kind == PRE {
			usesRowCmds = true
			break
		}
	}
	openRow := -1
	for i, c := range s.Cmds {
		if c.ID != i {
			return fmt.Errorf("pim: command %d has ID %d, want dense IDs", i, c.ID)
		}
		switch c.Kind {
		case WRINP:
			if c.GBuf < 0 || c.GBuf >= s.GBufEntries {
				return fmt.Errorf("pim: cmd %d WR-INP GBuf index %d out of range [0,%d)", i, c.GBuf, s.GBufEntries)
			}
			written[c.GBuf] = true
		case MAC:
			if c.GBuf < 0 || c.GBuf >= s.GBufEntries {
				return fmt.Errorf("pim: cmd %d MAC GBuf index %d out of range", i, c.GBuf)
			}
			if !written[c.GBuf] {
				return fmt.Errorf("pim: cmd %d MAC reads GBuf %d before any WR-INP", i, c.GBuf)
			}
			if c.Out < 0 || c.Out >= s.OutEntries {
				return fmt.Errorf("pim: cmd %d MAC Out index %d out of range [0,%d)", i, c.Out, s.OutEntries)
			}
			if usesRowCmds && openRow != c.Row {
				return fmt.Errorf("pim: cmd %d MAC on row %d but open row is %d", i, c.Row, openRow)
			}
			accum[c.Out] = true
		case RDOUT:
			if c.Out < 0 || c.Out >= s.OutEntries {
				return fmt.Errorf("pim: cmd %d RD-OUT Out index %d out of range", i, c.Out)
			}
			if !accum[c.Out] {
				return fmt.Errorf("pim: cmd %d RD-OUT drains Out %d with no pending accumulation", i, c.Out)
			}
			accum[c.Out] = false
		case ACT:
			if openRow != -1 {
				return fmt.Errorf("pim: cmd %d ACT row %d while row %d is open", i, c.Row, openRow)
			}
			openRow = c.Row
		case PRE:
			if openRow == -1 || openRow != c.Row {
				return fmt.Errorf("pim: cmd %d PRE row %d but open row is %d", i, c.Row, openRow)
			}
			openRow = -1
		default:
			return fmt.Errorf("pim: cmd %d has unknown kind %d", i, c.Kind)
		}
	}
	return nil
}

// IOBytes returns the number of bytes moved over the channel I/O path
// (WR-INP input tiles plus RD-OUT output tiles) for the given tile size.
func (s *Stack) IOBytes(tileBytes int) int64 {
	var n int64
	for _, c := range s.Cmds {
		if c.Kind == WRINP || c.Kind == RDOUT {
			n += int64(tileBytes)
		}
	}
	return n
}

// DRAMBytes returns the bytes read from DRAM cells by MAC commands across
// all banks.
func (s *Stack) DRAMBytes(tileBytes, banks int) int64 {
	var n int64
	for _, c := range s.Cmds {
		if c.Kind == MAC {
			n += int64(tileBytes) * int64(banks)
		}
	}
	return n
}
