// Package hub models the PIM HUB of Fig. 3(a): the shared General-Purpose
// Register file (GPR), the Extra Processing Unit (EPU) performing softmax
// and reductions, and the multicast interconnect that ships tiles between
// the HUB and the channels.
//
// Besides cycle costs, the EPU operations are implemented functionally so
// the TCP aggregation path (score concatenation for QK^T, partial-sum
// reduction for SV) can be verified against the float32 reference decoder.
package hub

import (
	"fmt"

	"pimphony/internal/refmath"
	"pimphony/internal/timing"
)

// Hub is one module's HUB state.
type Hub struct {
	dev      timing.Device
	gprUsed  int64
	gprAlloc map[string]int64
}

// New creates a HUB for the device.
func New(dev timing.Device) *Hub {
	return &Hub{dev: dev, gprAlloc: make(map[string]int64)}
}

// GPRCapacity is the register-file size in bytes.
func (h *Hub) GPRCapacity() int64 { return int64(h.dev.GPRBytes) }

// GPRUsed is the currently allocated GPR bytes.
func (h *Hub) GPRUsed() int64 { return h.gprUsed }

// AllocGPR reserves named GPR space (inputs, outputs, partial sums).
func (h *Hub) AllocGPR(name string, bytes int64) error {
	if bytes <= 0 {
		return fmt.Errorf("hub: GPR allocation %q must be positive", name)
	}
	if _, dup := h.gprAlloc[name]; dup {
		return fmt.Errorf("hub: GPR region %q already allocated", name)
	}
	if h.gprUsed+bytes > h.GPRCapacity() {
		return fmt.Errorf("hub: GPR overflow: %q needs %d B, %d of %d in use",
			name, bytes, h.gprUsed, h.GPRCapacity())
	}
	h.gprAlloc[name] = bytes
	h.gprUsed += bytes
	return nil
}

// FreeGPR releases a named region.
func (h *Hub) FreeGPR(name string) error {
	b, ok := h.gprAlloc[name]
	if !ok {
		return fmt.Errorf("hub: GPR region %q not allocated", name)
	}
	delete(h.gprAlloc, name)
	h.gprUsed -= b
	return nil
}

// ---------------------------------------------------------------------------
// EPU cost model
// ---------------------------------------------------------------------------

// SoftmaxCycles is the EPU cost of a softmax over `scores` values: a fixed
// base plus a per-tile marginal (the EPU streams score tiles from the GPR).
func (h *Hub) SoftmaxCycles(scores int) timing.Cycles {
	tiles := (scores + h.dev.ElemsPerTile() - 1) / h.dev.ElemsPerTile()
	return h.dev.EPUSoftmaxBase + timing.Cycles(tiles)*h.dev.EPUSoftmaxPerTile
}

// ReduceCycles is the cost of the TCP SV inter-channel reduction for one
// head: every participating channel ships dh worth of tiles to the GPR
// over the HUB's parallel gather links (bandwidth-limited, plus one hop of
// latency), and the EPU folds them with a pipelined tree of adds. The
// paper measures this below 0.2% of attention latency for LLM-7B at 16K.
func (h *Hub) ReduceCycles(channels, dh int) timing.Cycles {
	tiles := (dh + h.dev.ElemsPerTile() - 1) / h.dev.ElemsPerTile()
	bytes := float64(channels * tiles * h.dev.TileBytes)
	gather := timing.Cycles(bytes/h.dev.HubBytesPerCycle) + h.dev.HubHopCycles
	// Pipelined fold: (channels-1) adds deep, one tile per EPUAddCycles.
	add := timing.Cycles(channels-1+tiles) * h.dev.EPUAddCycles
	return gather + add
}

// MulticastCycles is the cost of broadcasting `tiles` input tiles from the
// GPR to any subset of channels (the interconnect multicasts, so the cost
// is per-tile, not per-channel).
func (h *Hub) MulticastCycles(tiles int) timing.Cycles {
	return timing.Cycles(tiles) * h.dev.HubHopCycles
}

// ---------------------------------------------------------------------------
// EPU functional model
// ---------------------------------------------------------------------------

// ConcatSoftmax models the QK^T aggregation under TCP: per-channel score
// segments are concatenated in token order and softmaxed by the EPU. The
// returned slice is the full softmax distribution.
func ConcatSoftmax(segments [][]float32) []float32 {
	var all []float32
	for _, s := range segments {
		all = append(all, s...)
	}
	return refmath.Softmax(all)
}

// ReducePartials models the SV aggregation under TCP: per-channel partial
// output vectors are summed by the EPU into the final head output.
func ReducePartials(partials [][]float32) ([]float32, error) {
	if len(partials) == 0 {
		return nil, fmt.Errorf("hub: no partials to reduce")
	}
	out := make([]float32, len(partials[0]))
	for i, p := range partials {
		if len(p) != len(out) {
			return nil, fmt.Errorf("hub: partial %d has length %d, want %d", i, len(p), len(out))
		}
		if err := refmath.Add(out, p); err != nil {
			return nil, err
		}
	}
	return out, nil
}
