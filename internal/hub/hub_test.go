package hub

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"pimphony/internal/refmath"
	"pimphony/internal/timing"
)

func TestGPRAllocation(t *testing.T) {
	h := New(timing.AiM16())
	if err := h.AllocGPR("inputs", 256<<10); err != nil {
		t.Fatal(err)
	}
	if err := h.AllocGPR("outputs", 256<<10); err != nil {
		t.Fatal(err)
	}
	if err := h.AllocGPR("overflow", 1); err == nil {
		t.Fatal("GPR overflow should be rejected")
	}
	if err := h.FreeGPR("inputs"); err != nil {
		t.Fatal(err)
	}
	if err := h.AllocGPR("again", 128<<10); err != nil {
		t.Fatalf("freed space should be reusable: %v", err)
	}
	if err := h.FreeGPR("nope"); err == nil {
		t.Fatal("freeing unknown region should fail")
	}
	if err := h.AllocGPR("again", 1); err == nil {
		t.Fatal("duplicate region name should fail")
	}
	if err := h.AllocGPR("bad", 0); err == nil {
		t.Fatal("zero-byte allocation should fail")
	}
}

func TestSoftmaxCyclesScale(t *testing.T) {
	h := New(timing.AiM16())
	short := h.SoftmaxCycles(1024)
	long := h.SoftmaxCycles(65536)
	if long <= short {
		t.Fatal("softmax cost should grow with score count")
	}
	// Base cost dominates only for tiny inputs.
	if h.SoftmaxCycles(16) <= 0 {
		t.Fatal("softmax cost must be positive")
	}
}

func TestReduceCyclesMatchPaperScale(t *testing.T) {
	h := New(timing.AiM16())
	// Paper: the per-module SV reduction is < 0.2% of attention latency
	// for LLM-7B at 16K tokens; the gather is bandwidth-limited and must
	// stay in the tens of cycles.
	c := h.ReduceCycles(16, 128)
	if c <= 0 || c > 100 {
		t.Fatalf("ReduceCycles = %d, outside plausible band", c)
	}
	if h.ReduceCycles(32, 128) <= c {
		t.Fatal("more channels must cost more to reduce")
	}
}

func TestMulticastCycles(t *testing.T) {
	h := New(timing.AiM16())
	if h.MulticastCycles(8) != 8*h.dev.HubHopCycles {
		t.Fatal("multicast cost should be per-tile")
	}
}

// TestTCPAttentionNumericallyExact is the core correctness argument for
// token-centric partitioning: slicing tokens across channels, concatenating
// per-channel QK^T segments, softmaxing globally in the EPU, computing
// per-channel SV partials and reducing them must reproduce the reference
// single-query attention bit-for-bit up to float accumulation order.
func TestTCPAttentionNumericallyExact(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	const (
		tokens   = 333 // deliberately not a multiple of channels
		dh       = 64
		channels = 16
	)
	q := refmath.RandVec(rng, dh)
	k := refmath.RandMat(rng, tokens, dh)
	v := refmath.RandMat(rng, tokens, dh)

	want, err := refmath.Attention(q, k, v)
	if err != nil {
		t.Fatal(err)
	}

	// Token-centric split: channel c owns a contiguous slice of tokens.
	bounds := make([]int, channels+1)
	for c := 0; c <= channels; c++ {
		bounds[c] = c * tokens / channels
	}
	scale := float32(1 / math.Sqrt(float64(dh)))

	// Phase 1: per-channel QK^T segments.
	segments := make([][]float32, channels)
	for c := 0; c < channels; c++ {
		seg := make([]float32, bounds[c+1]-bounds[c])
		for i := range seg {
			d, err := refmath.Dot(q, k[bounds[c]+i])
			if err != nil {
				t.Fatal(err)
			}
			seg[i] = d * scale
		}
		segments[c] = seg
	}

	// Phase 2: EPU concatenation + global softmax.
	scores := ConcatSoftmax(segments)
	if len(scores) != tokens {
		t.Fatalf("concat produced %d scores, want %d", len(scores), tokens)
	}

	// Phase 3: per-channel SV partials + EPU reduction.
	partials := make([][]float32, channels)
	for c := 0; c < channels; c++ {
		p := make([]float32, dh)
		for i := bounds[c]; i < bounds[c+1]; i++ {
			for j := 0; j < dh; j++ {
				p[j] += scores[i] * v[i][j]
			}
		}
		partials[c] = p
	}
	got, err := ReducePartials(partials)
	if err != nil {
		t.Fatal(err)
	}
	if d := refmath.MaxAbsDiff(got, want); d > 1e-4 {
		t.Fatalf("TCP attention deviates from reference by %g", d)
	}
}

func TestReducePartialsErrors(t *testing.T) {
	if _, err := ReducePartials(nil); err == nil {
		t.Fatal("empty reduction should fail")
	}
	if _, err := ReducePartials([][]float32{{1, 2}, {1}}); err == nil {
		t.Fatal("ragged partials should fail")
	}
}

// Property: reduction is permutation-invariant (up to float error) — the
// channel arrival order must not change the result materially.
func TestReduceOrderInvariance(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(8) + 2
		parts := make([][]float32, n)
		for i := range parts {
			parts[i] = refmath.RandVec(rng, 16)
		}
		a, err := ReducePartials(parts)
		if err != nil {
			return false
		}
		perm := rng.Perm(n)
		shuffled := make([][]float32, n)
		for i, p := range perm {
			shuffled[i] = parts[p]
		}
		b, err := ReducePartials(shuffled)
		if err != nil {
			return false
		}
		return refmath.MaxAbsDiff(a, b) < 1e-4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
