// Package kernels builds per-channel PIM command stacks for the operations
// the paper offloads to PIM: fully-connected GEMV, attention score
// computation (QK^T) and attention value aggregation (SV), including the
// GQA variants and the row-reuse mapping of Sec. V-C.
//
// The builders are shape-faithful: they enumerate the exact WR-INP / MAC /
// RD-OUT / ACT / PRE command sequence a compiler would emit for the given
// buffer geometry, including input re-streaming when the Global Buffer
// cannot hold the operand and partial output drains when the accumulator
// file (baseline OutReg vs PIMphony OBuf) is too small to keep all live
// partial sums resident.
package kernels

import (
	"fmt"

	"pimphony/internal/pim"
	"pimphony/internal/timing"
)

// Buffers selects the channel buffer geometry a stack is built for.
type Buffers struct {
	GBufEntries int // input tiles resident in the Global Buffer
	OutEntries  int // per-bank accumulators (2 = baseline OutReg, 32 = OBuf)
}

// BaselineBuffers returns the conventional PIM buffer geometry: full GBuf
// but only the 4-byte per-bank output register file.
func BaselineBuffers(d timing.Device) Buffers {
	return Buffers{GBufEntries: d.GBufEntries(), OutEntries: d.OutRegEntries()}
}

// OBufBuffers returns PIMphony's I/O-aware buffer geometry with the
// expanded output buffer.
func OBufBuffers(d timing.Device) Buffers {
	return Buffers{GBufEntries: d.GBufEntries(), OutEntries: d.OBufEntries()}
}

// Config carries everything the builders need.
type Config struct {
	Dev timing.Device
	Buf Buffers
}

// NewConfig pairs a device with a buffer geometry.
func NewConfig(d timing.Device, b Buffers) Config { return Config{Dev: d, Buf: b} }

func ceilDiv(a, b int) int { return (a + b - 1) / b }

// ---------------------------------------------------------------------------
// Allocator helpers
// ---------------------------------------------------------------------------

// gbufAlloc manages Global Buffer residency for input tiles. Acquiring a
// non-resident tile emits a WR-INP into a round-robin entry; acquiring a
// resident tile is free (data reuse).
type gbufAlloc struct {
	s       *pim.Stack
	entries int
	owner   []int       // entry -> tile key (-1 free)
	slot    map[int]int // tile key -> entry
	next    int
	writes  int
}

func newGBufAlloc(s *pim.Stack, entries int) *gbufAlloc {
	owner := make([]int, entries)
	for i := range owner {
		owner[i] = -1
	}
	return &gbufAlloc{s: s, entries: entries, owner: owner, slot: make(map[int]int)}
}

// acquire returns the GBuf entry holding the tile, streaming it in first if
// needed.
func (a *gbufAlloc) acquire(key int) int {
	if e, ok := a.slot[key]; ok {
		return e
	}
	e := a.next
	a.next = (a.next + 1) % a.entries
	if old := a.owner[e]; old >= 0 {
		delete(a.slot, old)
	}
	a.owner[e] = key
	a.slot[key] = e
	a.s.WrInp(e)
	a.writes++
	return e
}

// invalidateAll drops residency info (e.g. when a kernel phase reuses keys).
func (a *gbufAlloc) invalidateAll() {
	for i := range a.owner {
		a.owner[i] = -1
	}
	a.slot = make(map[int]int)
}

// outAlloc manages per-bank accumulator entries. Acquiring an accumulator
// for a new logical output while all entries are live evicts the
// round-robin victim with a partial RD-OUT drain (the EPU merges partial
// sums in the GPR).
type outAlloc struct {
	s       *pim.Stack
	entries int
	owner   []int // entry -> logical output key (-1 free)
	dirty   []bool
	slot    map[int]int
	next    int
	drains  int
}

func newOutAlloc(s *pim.Stack, entries int) *outAlloc {
	owner := make([]int, entries)
	for i := range owner {
		owner[i] = -1
	}
	return &outAlloc{s: s, entries: entries, owner: owner, dirty: make([]bool, entries), slot: make(map[int]int)}
}

// acquire returns the accumulator entry for the logical output key,
// draining a victim if necessary.
func (a *outAlloc) acquire(key int) int {
	if e, ok := a.slot[key]; ok {
		return e
	}
	e := a.next
	a.next = (a.next + 1) % a.entries
	if old := a.owner[e]; old >= 0 {
		if a.dirty[e] {
			a.s.RdOut(e)
			a.drains++
			a.dirty[e] = false
		}
		delete(a.slot, old)
	}
	a.owner[e] = key
	a.slot[key] = e
	return e
}

// mac records an accumulation into the entry.
func (a *outAlloc) mac(e int) { a.dirty[e] = true }

// release drains the accumulator of key if live and dirty (a completed
// logical output).
func (a *outAlloc) release(key int) {
	e, ok := a.slot[key]
	if !ok {
		return
	}
	if a.dirty[e] {
		a.s.RdOut(e)
		a.drains++
		a.dirty[e] = false
	}
	delete(a.slot, key)
	a.owner[e] = -1
}

// flush drains every dirty accumulator (end of kernel).
func (a *outAlloc) flush() {
	for e := range a.owner {
		if a.owner[e] >= 0 && a.dirty[e] {
			a.s.RdOut(e)
			a.drains++
			a.dirty[e] = false
		}
	}
}

// rowTracker emits PRE/ACT pairs when the DRAM row of a MAC changes.
type rowTracker struct {
	s    *pim.Stack
	open int // -1 = closed
	acts int
}

func newRowTracker(s *pim.Stack) *rowTracker { return &rowTracker{s: s, open: -1} }

// mac emits the row commands needed for tile address addr and then the MAC.
func (r *rowTracker) mac(gbuf, out, addr, tilesPerRow int) {
	row, col := addr/tilesPerRow, addr%tilesPerRow
	if r.open != row {
		if r.open >= 0 {
			r.s.Pre(r.open)
		}
		r.s.Act(row)
		r.acts++
		r.open = row
	}
	r.s.Mac(gbuf, out, row, col)
}

// close precharges the open row, if any.
func (r *rowTracker) close() {
	if r.open >= 0 {
		r.s.Pre(r.open)
		r.open = -1
	}
}

// ---------------------------------------------------------------------------
// GEMV / FC
// ---------------------------------------------------------------------------

// GEMV builds the command stack of a (1 x din) * (din x dout) GEMV with the
// weight matrix resident in the channel's DRAM. The input vector streams
// into GBuf in blocks (the whole vector when it fits); for each resident
// block every output group accumulates its MACs, with the accumulator file
// bounding how many groups stay live before a partial drain. The compiler
// owns the weight layout, so tiles are stored in traversal order — each
// weight tile is read exactly once and rows are walked sequentially.
func (c Config) GEMV(din, dout int) (*pim.Stack, error) {
	if din <= 0 || dout <= 0 {
		return nil, fmt.Errorf("kernels: GEMV dims must be positive, got (%d,%d)", din, dout)
	}
	d := c.Dev
	s := pim.NewStack(c.Buf.GBufEntries, c.Buf.OutEntries)
	e := d.ElemsPerTile()
	inTiles := ceilDiv(din, e)
	groups := ceilDiv(dout, d.Banks)
	tilesPerRow := d.TilesPerRow()
	block := c.Buf.GBufEntries
	if block > inTiles {
		block = inTiles
	}

	gb := newGBufAlloc(s, c.Buf.GBufEntries)
	out := newOutAlloc(s, c.Buf.OutEntries)
	rows := newRowTracker(s)

	addr := 0 // weights laid out in traversal order
	for k0 := 0; k0 < inTiles; k0 += block {
		k1 := k0 + block
		if k1 > inTiles {
			k1 = inTiles
		}
		for g := 0; g < groups; g++ {
			oe := out.acquire(g)
			for k := k0; k < k1; k++ {
				ge := gb.acquire(k)
				rows.mac(ge, oe, addr, tilesPerRow)
				addr++
				out.mac(oe)
			}
			if k1 == inTiles {
				out.release(g) // final block: the group is complete
			}
		}
	}
	rows.close()
	out.flush()
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("kernels: GEMV(%d,%d) built invalid stack: %w", din, dout, err)
	}
	return s, nil
}

// ---------------------------------------------------------------------------
// Attention QK^T
// ---------------------------------------------------------------------------

// QKT builds the score kernel for one attention head slice on one channel:
// `tokens` keys resident in DRAM, `queries` query vectors of dimension dh
// (queries > 1 models GQA where a group of query heads shares the keys).
//
// With rowReuse=true the kernel iterates DRAM rows in the outer loop and
// queries in the inner loop, re-streaming each query's tiles at every row
// visit (the paper's row-reuse mapping: fewer ACT/PRE, more WR-INP). With
// rowReuse=false each query performs a full pass over the key rows with its
// tiles resident in GBuf (more ACT/PRE, fewer WR-INP).
func (c Config) QKT(tokens, dh, queries int, rowReuse bool) (*pim.Stack, error) {
	if tokens <= 0 || dh <= 0 || queries <= 0 {
		return nil, fmt.Errorf("kernels: QKT args must be positive, got tokens=%d dh=%d queries=%d", tokens, dh, queries)
	}
	d := c.Dev
	s := pim.NewStack(c.Buf.GBufEntries, c.Buf.OutEntries)
	e := d.ElemsPerTile()
	dhTiles := ceilDiv(dh, e)
	groups := ceilDiv(tokens, d.Banks) // one score group = Banks keys
	tilesPerRow := d.TilesPerRow()
	slotsPerRow := tilesPerRow / dhTiles
	if slotsPerRow == 0 {
		slotsPerRow = 1
	}
	nRows := ceilDiv(groups, slotsPerRow)

	gb := newGBufAlloc(s, c.Buf.GBufEntries)
	out := newOutAlloc(s, c.Buf.OutEntries)
	rows := newRowTracker(s)

	macGroup := func(q, g int) {
		key := q*groups + g
		oe := out.acquire(key)
		for k := 0; k < dhTiles; k++ {
			ge := gb.acquire(q*dhTiles + k)
			addr := g*dhTiles + k
			rows.mac(ge, oe, addr, tilesPerRow)
			out.mac(oe)
		}
		out.release(key) // a score group is complete after dhTiles MACs
	}

	if rowReuse {
		for r := 0; r < nRows; r++ {
			lo, hi := r*slotsPerRow, (r+1)*slotsPerRow
			if hi > groups {
				hi = groups
			}
			for q := 0; q < queries; q++ {
				// Row-reuse swaps this query's tiles back in at every row.
				if queries > 1 {
					gb.invalidateAll()
				}
				for g := lo; g < hi; g++ {
					macGroup(q, g)
				}
			}
		}
	} else {
		for q := 0; q < queries; q++ {
			for g := 0; g < groups; g++ {
				macGroup(q, g)
			}
		}
	}
	rows.close()
	out.flush()
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("kernels: QKT(tokens=%d dh=%d q=%d rowReuse=%v) invalid: %w", tokens, dh, queries, rowReuse, err)
	}
	return s, nil
}

// ---------------------------------------------------------------------------
// Attention SV
// ---------------------------------------------------------------------------

// SV builds the value-aggregation kernel for one head slice on one channel:
// y = s * V where s holds `tokens` softmax scores (per query) and V is the
// tokens x dh value cache. The score vector is the streamed input (low
// reuse: the paper's I/O-bound case); the dh outputs form dh/Banks groups.
//
// The accumulator file bounds how many output groups can stay live during
// one streaming pass: with the baseline 2-entry OutReg the scores must be
// re-streamed ceil(groups/2) times, while PIMphony's OBuf usually holds all
// groups and streams the scores once. With rowReuse=true and queries > 1,
// DRAM rows are the outer loop and each query's score chunks are re-streamed
// per row visit.
func (c Config) SV(tokens, dh, queries int, rowReuse bool) (*pim.Stack, error) {
	if tokens <= 0 || dh <= 0 || queries <= 0 {
		return nil, fmt.Errorf("kernels: SV args must be positive, got tokens=%d dh=%d queries=%d", tokens, dh, queries)
	}
	d := c.Dev
	s := pim.NewStack(c.Buf.GBufEntries, c.Buf.OutEntries)
	e := d.ElemsPerTile()
	chunks := ceilDiv(tokens, e)   // score tiles per query
	groups := ceilDiv(dh, d.Banks) // output groups (dh across banks)
	tilesPerRow := d.TilesPerRow()

	gb := newGBufAlloc(s, c.Buf.GBufEntries)
	out := newOutAlloc(s, c.Buf.OutEntries)
	rows := newRowTracker(s)

	// V layout is token-major per group batch: addr = k*groups + o so a
	// streaming pass over chunks walks rows sequentially.
	if rowReuse && queries > 1 {
		// Row-outer mapping: every V row is activated once; all queries'
		// score chunks touching that row are streamed per visit.
		chunksPerRow := ceilDiv(tilesPerRow, groups)
		if chunksPerRow == 0 {
			chunksPerRow = 1
		}
		nRows := ceilDiv(chunks, chunksPerRow)
		for r := 0; r < nRows; r++ {
			lo, hi := r*chunksPerRow, (r+1)*chunksPerRow
			if hi > chunks {
				hi = chunks
			}
			for q := 0; q < queries; q++ {
				gb.invalidateAll() // scores swapped in per row visit
				for k := lo; k < hi; k++ {
					ge := gb.acquire(q*chunks + k)
					for o := 0; o < groups; o++ {
						oe := out.acquire(q*groups + o)
						rows.mac(ge, oe, k*groups+o, tilesPerRow)
						out.mac(oe)
					}
				}
			}
		}
	} else {
		// Query-outer mapping: per query, output groups are processed in
		// batches bounded by the accumulator file; scores are re-streamed
		// once per batch.
		batch := c.Buf.OutEntries
		if batch > groups {
			batch = groups
		}
		for q := 0; q < queries; q++ {
			for g0 := 0; g0 < groups; g0 += batch {
				g1 := g0 + batch
				if g1 > groups {
					g1 = groups
				}
				gb.invalidateAll() // a new streaming pass over the scores
				for k := 0; k < chunks; k++ {
					ge := gb.acquire(q*chunks + k)
					for o := g0; o < g1; o++ {
						oe := out.acquire(q*groups + o)
						rows.mac(ge, oe, k*groups+o, tilesPerRow)
						out.mac(oe)
					}
				}
				for o := g0; o < g1; o++ {
					out.release(q*groups + o)
				}
			}
		}
	}
	rows.close()
	out.flush()
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("kernels: SV(tokens=%d dh=%d q=%d rowReuse=%v) invalid: %w", tokens, dh, queries, rowReuse, err)
	}
	return s, nil
}

// ---------------------------------------------------------------------------
// Introspection helpers used by experiments and tests
// ---------------------------------------------------------------------------

// Stats summarises a built stack.
type Stats struct {
	WrInp, Mac, RdOut, Act, Pre int
}

// StackStats tallies a stack by command kind.
func StackStats(s *pim.Stack) Stats {
	c := s.Counts()
	return Stats{
		WrInp: c[pim.WRINP],
		Mac:   c[pim.MAC],
		RdOut: c[pim.RDOUT],
		Act:   c[pim.ACT],
		Pre:   c[pim.PRE],
	}
}
