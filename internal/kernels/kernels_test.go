package kernels

import (
	"testing"
	"testing/quick"

	"pimphony/internal/pim"
	"pimphony/internal/sched"
	"pimphony/internal/timing"
)

func cfg(t *testing.T, baseline bool) Config {
	t.Helper()
	d := timing.AiM16()
	if baseline {
		return NewConfig(d, BaselineBuffers(d))
	}
	return NewConfig(d, OBufBuffers(d))
}

func TestGEMVCommandCounts(t *testing.T) {
	c := cfg(t, false)
	s, err := c.GEMV(128, 128)
	if err != nil {
		t.Fatal(err)
	}
	st := StackStats(s)
	// 128/16 = 8 input tiles, written once (fits GBuf, reused across groups).
	if st.WrInp != 8 {
		t.Errorf("WrInp = %d, want 8", st.WrInp)
	}
	// 128/16 banks = 8 groups x 8 tiles = 64 MACs.
	if st.Mac != 64 {
		t.Errorf("Mac = %d, want 64", st.Mac)
	}
	if st.RdOut != 8 {
		t.Errorf("RdOut = %d, want 8 (one per group)", st.RdOut)
	}
	// 64 weight tiles per bank = exactly one 64-tile row.
	if st.Act != 1 {
		t.Errorf("Act = %d, want 1", st.Act)
	}
}

func TestGEMVBlockedMappingWritesInputsOnce(t *testing.T) {
	d := timing.AiM16()
	small := NewConfig(d, Buffers{GBufEntries: 4, OutEntries: 8})
	s, err := small.GEMV(128, 64) // 8 input tiles > 4 GBuf entries -> 2 blocks
	if err != nil {
		t.Fatal(err)
	}
	st := StackStats(s)
	// The blocked mapping streams each input tile exactly once; group
	// partial sums stay resident across blocks (8 accumulators >= 4 groups).
	if st.WrInp != 8 {
		t.Errorf("WrInp = %d, want 8 (one write per input tile)", st.WrInp)
	}
	if st.RdOut != 4 {
		t.Errorf("RdOut = %d, want 4 (one drain per completed group)", st.RdOut)
	}
}

func TestGEMVPartialDrainsWhenAccumulatorsScarce(t *testing.T) {
	d := timing.AiM16()
	tight := NewConfig(d, Buffers{GBufEntries: 4, OutEntries: 2})
	s, err := tight.GEMV(128, 64) // 4 groups but only 2 accumulators
	if err != nil {
		t.Fatal(err)
	}
	st := StackStats(s)
	// Evictions force partial drains: more RD-OUTs than groups.
	if st.RdOut <= 4 {
		t.Errorf("RdOut = %d, want > 4 (partial-sum drains)", st.RdOut)
	}
	if st.WrInp != 8 {
		t.Errorf("WrInp = %d, want 8", st.WrInp)
	}
}

func TestGEMVMACCountInvariant(t *testing.T) {
	c := cfg(t, false)
	f := func(a, b uint16) bool {
		din := int(a%256)*16 + 16
		dout := int(b%256)*16 + 16
		s, err := c.GEMV(din, dout)
		if err != nil {
			return false
		}
		st := StackStats(s)
		wantMACs := ceilDiv(din, 16) * ceilDiv(dout, 16)
		return st.Mac == wantMACs && st.Act == st.Pre
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestGEMVRejectsBadDims(t *testing.T) {
	c := cfg(t, false)
	if _, err := c.GEMV(0, 16); err == nil {
		t.Error("GEMV(0,16) should fail")
	}
	if _, err := c.GEMV(16, -1); err == nil {
		t.Error("GEMV(16,-1) should fail")
	}
}

func TestQKTCounts(t *testing.T) {
	c := cfg(t, false)
	tokens, dh := 1024, 128
	s, err := c.QKT(tokens, dh, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	st := StackStats(s)
	groups := tokens / 16 // 64 groups of 16 keys
	if st.Mac != groups*8 {
		t.Errorf("Mac = %d, want %d", st.Mac, groups*8)
	}
	if st.RdOut != groups {
		t.Errorf("RdOut = %d, want %d", st.RdOut, groups)
	}
	if st.WrInp != 8 { // query tiles written once
		t.Errorf("WrInp = %d, want 8", st.WrInp)
	}
}

func TestQKTRowReuseTradesActForWrInp(t *testing.T) {
	c := cfg(t, false)
	tokens, dh, g := 2048, 128, 8
	reuse, err := c.QKT(tokens, dh, g, true)
	if err != nil {
		t.Fatal(err)
	}
	noReuse, err := c.QKT(tokens, dh, g, false)
	if err != nil {
		t.Fatal(err)
	}
	r, n := StackStats(reuse), StackStats(noReuse)
	if r.Act >= n.Act {
		t.Errorf("row-reuse should reduce ACT count: reuse=%d noReuse=%d", r.Act, n.Act)
	}
	if r.WrInp <= n.WrInp {
		t.Errorf("row-reuse should increase WR-INP count: reuse=%d noReuse=%d", r.WrInp, n.WrInp)
	}
	if r.Mac != n.Mac {
		t.Errorf("mapping must not change MAC count: reuse=%d noReuse=%d", r.Mac, n.Mac)
	}
}

func TestSVBaselineRestreamsScores(t *testing.T) {
	d := timing.AiM16()
	base := NewConfig(d, BaselineBuffers(d))
	obuf := NewConfig(d, OBufBuffers(d))
	tokens, dh := 2048, 128

	sb, err := base.SV(tokens, dh, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	so, err := obuf.SV(tokens, dh, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	b, o := StackStats(sb), StackStats(so)
	chunks := tokens / 16
	groups := dh / 16
	// Baseline OutReg holds 2 accumulators -> groups/2 streaming passes.
	if b.WrInp != chunks*groups/2 {
		t.Errorf("baseline WrInp = %d, want %d (4 passes)", b.WrInp, chunks*groups/2)
	}
	// OBuf holds all 8 groups -> one pass.
	if o.WrInp != chunks {
		t.Errorf("obuf WrInp = %d, want %d (single pass)", o.WrInp, chunks)
	}
	if b.Mac != o.Mac {
		t.Errorf("MAC counts must match: baseline=%d obuf=%d", b.Mac, o.Mac)
	}
}

func TestSVRowReuseStreamsPerRowVisit(t *testing.T) {
	c := cfg(t, false)
	tokens, dh, g := 1024, 128, 4
	reuse, err := c.SV(tokens, dh, g, true)
	if err != nil {
		t.Fatal(err)
	}
	noReuse, err := c.SV(tokens, dh, g, false)
	if err != nil {
		t.Fatal(err)
	}
	r, n := StackStats(reuse), StackStats(noReuse)
	if r.Act >= n.Act {
		t.Errorf("row-reuse should reduce ACTs: reuse=%d noReuse=%d", r.Act, n.Act)
	}
	if r.Mac != n.Mac {
		t.Errorf("MAC count must be mapping-invariant: %d vs %d", r.Mac, n.Mac)
	}
}

// TestAttentionMACWork checks the fundamental work invariant: both QKT and
// SV perform queries * ceil(tokens/banks-or-elems) * dh-derived MAC counts
// regardless of mapping or buffers.
func TestAttentionMACWork(t *testing.T) {
	d := timing.AiM16()
	f := func(a, b uint8, baseline, reuse bool) bool {
		tokens := (int(a%32) + 1) * 64
		g := []int{1, 2, 4, 8}[b%4]
		var c Config
		if baseline {
			c = NewConfig(d, BaselineBuffers(d))
		} else {
			c = NewConfig(d, OBufBuffers(d))
		}
		qkt, err := c.QKT(tokens, 128, g, reuse)
		if err != nil {
			return false
		}
		sv, err := c.SV(tokens, 128, g, reuse)
		if err != nil {
			return false
		}
		wantQKT := g * (tokens / 16) * 8
		wantSV := g * (tokens / 16) * 8
		return StackStats(qkt).Mac == wantQKT && StackStats(sv).Mac == wantSV
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestDCSBeatsStaticOnAttention: the headline DCS claim must hold on the
// kernels it was designed for.
func TestDCSBeatsStaticOnAttention(t *testing.T) {
	d := timing.AiM16()
	c := NewConfig(d, OBufBuffers(d))
	for _, build := range []struct {
		name string
		f    func() (*pim.Stack, error)
	}{
		{"qkt", func() (*pim.Stack, error) { return c.QKT(2048, 128, 4, true) }},
		{"sv", func() (*pim.Stack, error) { return c.SV(2048, 128, 4, true) }},
		{"gemv", func() (*pim.Stack, error) { return c.GEMV(4096, 4096) }},
	} {
		s1, err := build.f()
		if err != nil {
			t.Fatalf("%s: %v", build.name, err)
		}
		s2, _ := build.f()
		st, err := (&sched.Static{Dev: d}).Schedule(s1)
		if err != nil {
			t.Fatalf("%s static: %v", build.name, err)
		}
		dc, err := (&sched.DCS{Dev: d}).Schedule(s2)
		if err != nil {
			t.Fatalf("%s dcs: %v", build.name, err)
		}
		if dc.Total >= st.Total {
			t.Errorf("%s: DCS (%d) not faster than static (%d)", build.name, dc.Total, st.Total)
		}
		speedup := float64(st.Total) / float64(dc.Total)
		t.Logf("%s: static=%d dcs=%d speedup=%.2fx macUtil %.1f%% -> %.1f%%",
			build.name, st.Total, dc.Total, speedup,
			100*st.MACUtilization(), 100*dc.MACUtilization())
	}
}

func TestStacksValidate(t *testing.T) {
	c := cfg(t, true)
	builders := map[string]func() (*pim.Stack, error){
		"gemv-small": func() (*pim.Stack, error) { return c.GEMV(48, 32) },
		"gemv-odd":   func() (*pim.Stack, error) { return c.GEMV(100, 100) },
		"qkt-odd":    func() (*pim.Stack, error) { return c.QKT(1000, 100, 3, true) },
		"sv-odd":     func() (*pim.Stack, error) { return c.SV(1000, 100, 3, false) },
	}
	for name, b := range builders {
		s, err := b()
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if err := s.Validate(); err != nil {
			t.Errorf("%s produced invalid stack: %v", name, err)
		}
	}
}

func TestBaselineBufferGeometry(t *testing.T) {
	d := timing.AiM16()
	b := BaselineBuffers(d)
	if b.OutEntries != 2 {
		t.Errorf("baseline OutEntries = %d, want 2 (4-byte OutReg)", b.OutEntries)
	}
	o := OBufBuffers(d)
	if o.OutEntries <= b.OutEntries {
		t.Errorf("OBuf (%d) must be larger than OutReg (%d)", o.OutEntries, b.OutEntries)
	}
}
