package experiments

import (
	"context"
	"fmt"

	"pimphony/internal/kernels"
	"pimphony/internal/mapping"
	"pimphony/internal/perfmodel"
	"pimphony/internal/pim"
	"pimphony/internal/sched"
	"pimphony/internal/sweep"
	"pimphony/internal/tablefmt"
	"pimphony/internal/timing"
)

// addRows appends swept rows to a table in sweep (input) order.
func addRows(t *tablefmt.Table, rows [][]any) {
	for _, r := range rows {
		t.AddRow(r...)
	}
}

// addRowGroups appends swept row groups (several consecutive rows per
// point) in sweep order.
func addRowGroups(t *tablefmt.Table, groups [][][]any) {
	for _, rows := range groups {
		addRows(t, rows)
	}
}

// Fig7DCSExample reproduces the paper's Fig. 7 worked scheduling example:
// the (1x48)*(48x32) GEMV command stack under the static controller
// (34 cycles in the paper) and under DCS (22 cycles).
func Fig7DCSExample() (*Result, error) {
	dev := timing.AiM16()
	dev.TRFC = 0 // the worked example counts raw pipeline cycles
	build := func() *pim.Stack {
		s := pim.NewStack(dev.GBufEntries(), dev.OBufEntries())
		s.WrInp(0)
		s.WrInp(1)
		s.WrInp(2)
		s.Mac(0, 0, 0, 0)
		s.Mac(1, 0, 0, 1)
		s.Mac(2, 0, 0, 2)
		s.RdOut(0)
		s.Mac(0, 1, 0, 3)
		s.Mac(1, 1, 0, 4)
		s.Mac(2, 1, 0, 5)
		s.RdOut(1)
		return s
	}
	t := tablefmt.New("Fig. 7 — DCS worked example (paper: static 34, DCS 22 cycles)",
		"scheduler", "cycles", "mac-util-%")
	rows, err := sweep.Rows(context.Background(), []func() sched.Scheduler{
		func() sched.Scheduler { return &sched.Static{Dev: dev} },
		func() sched.Scheduler { return &sched.DCS{Dev: dev} },
	}, func(_ context.Context, mk func() sched.Scheduler) ([]any, error) {
		sc := mk()
		res, err := sc.Schedule(build())
		if err != nil {
			return nil, err
		}
		return []any{sc.Name(), int64(res.Total), 100 * res.MACUtilization()}, nil
	})
	if err != nil {
		return nil, err
	}
	addRows(t, rows)
	return &Result{ID: "fig7", Title: "Dynamic PIM command scheduling worked example", Tables: []*tablefmt.Table{t}}, nil
}

// Fig8Breakdown reproduces the latency breakdown across matrix dimensions
// under the conventional static controller (the paper reports MAC
// utilization collapsing to 14.7% at d=128), with the DCS column added for
// contrast.
func Fig8Breakdown() (*Result, error) {
	dev := timing.AiM16()
	svc := perfmodel.New(dev)
	t := tablefmt.New("Fig. 8 — static latency breakdown vs matrix dimension (one channel GEMV)",
		"d", "total-cyc", "mac%", "act/pre%", "ref%", "dt-gbuf%", "dt-outreg%", "penalty%", "dcs-mac%")
	rows, err := sweep.Rows(context.Background(), []int{128, 256, 512, 1024, 2048, 4096},
		func(_ context.Context, d int) ([]any, error) {
			lat, err := svc.Price(perfmodel.Query{Kernel: perfmodel.GEMV, Tokens: d, Dh: d, Baseline: true, Sched: perfmodel.Static})
			if err != nil {
				return nil, err
			}
			dcs, err := svc.Price(perfmodel.Query{Kernel: perfmodel.GEMV, Tokens: d, Dh: d, Sched: perfmodel.DCS})
			if err != nil {
				return nil, err
			}
			tot := float64(lat.Cycles)
			pct := func(c timing.Cycles) float64 { return 100 * float64(c) / tot }
			b := lat.Breakdown
			return []any{d, int64(lat.Cycles), pct(b.MAC), pct(b.ActPre), pct(b.Refresh),
				pct(b.DTGBuf), pct(b.DTOutReg), pct(b.Penalty), 100 * dcs.MACUtil}, nil
		})
	if err != nil {
		return nil, err
	}
	addRows(t, rows)
	return &Result{
		ID:     "fig8",
		Title:  "Latency breakdown across matrix dimensions",
		Tables: []*tablefmt.Table{t},
		Notes:  []string{"paper: MAC utilization drops sharply to 14.7% at d=128 under static scheduling"},
	}, nil
}

// Fig9AttnBreakdown reproduces the QK^T / SV latency breakdown for
// LLM-72B attention (GQA g=8, row-reuse mapping) with and without DCS.
func Fig9AttnBreakdown() (*Result, error) {
	dev := timing.AiM16()
	svc := perfmodel.New(dev)
	const tokensPerChannel = 2048 // a 64K-context head sliced over 32 channels
	t := tablefmt.New("Fig. 9 — LLM-72B attention breakdown, row-reuse mapping (g=8)",
		"kernel", "sched", "total-cyc", "mac%", "act/pre%", "dt-gbuf%", "dt-outreg%", "penalty%")
	type point struct {
		k        perfmodel.Kernel
		name     string
		s        perfmodel.Sched
		baseline bool
	}
	var pts []point
	for _, k := range []perfmodel.Kernel{perfmodel.QKT, perfmodel.SV} {
		for _, sc := range []struct {
			name     string
			s        perfmodel.Sched
			baseline bool
		}{{"static", perfmodel.Static, true}, {"dcs", perfmodel.DCS, false}} {
			pts = append(pts, point{k, sc.name, sc.s, sc.baseline})
		}
	}
	rows, err := sweep.Rows(context.Background(), pts,
		func(_ context.Context, p point) ([]any, error) {
			lat, err := svc.Price(perfmodel.Query{Kernel: p.k, Tokens: tokensPerChannel, Dh: 128,
				Queries: 8, RowReuse: true, Baseline: p.baseline, Sched: p.s})
			if err != nil {
				return nil, err
			}
			tot := float64(lat.Cycles)
			pct := func(c timing.Cycles) float64 { return 100 * float64(c) / tot }
			b := lat.Breakdown
			return []any{p.k.String(), p.name, int64(lat.Cycles), pct(b.MAC), pct(b.ActPre),
				pct(b.DTGBuf), pct(b.DTOutReg), pct(b.Penalty)}, nil
		})
	if err != nil {
		return nil, err
	}
	addRows(t, rows)
	return &Result{ID: "fig9", Title: "Attention command-execution breakdown ±DCS", Tables: []*tablefmt.Table{t},
		Notes: []string{"paper: DCS hides the extra WR-INP traffic row-reuse creates, unlocking its ACT/PRE savings"}}, nil
}

// Fig18PingPong reproduces the DCS vs ping-pong compute-utilization
// comparison across MHA and GQA group sizes (both with row-reuse; the
// paper reports up to 1.4x higher utilization for DCS).
func Fig18PingPong() (*Result, error) {
	dev := timing.AiM16()
	svc := perfmodel.New(dev)
	const tokensPerChannel = 2048
	t := tablefmt.New("Fig. 18 — compute utilization: ping-pong vs DCS (row-reuse)",
		"config", "pingpong-util%", "dcs-util%", "dcs-gain")
	rows, err := sweep.Rows(context.Background(), []int{1, 2, 4, 8},
		func(_ context.Context, g int) ([]any, error) {
			name := "MHA"
			if g > 1 {
				name = fmt.Sprintf("GQA g=%d", g)
			}
			var utils [2]float64
			for i, sc := range []perfmodel.Sched{perfmodel.PingPong, perfmodel.DCS} {
				att, err := svc.AttentionLatency(tokensPerChannel, 128, g, g > 1, false, sc)
				if err != nil {
					return nil, err
				}
				utils[i] = att.MACUtil
			}
			return []any{name, 100 * utils[0], 100 * utils[1], utils[1] / utils[0]}, nil
		})
	if err != nil {
		return nil, err
	}
	addRows(t, rows)
	return &Result{ID: "fig18", Title: "DCS vs ping-pong buffering", Tables: []*tablefmt.Table{t},
		Notes: []string{"paper: DCS achieves up to 1.4x higher compute-unit utilization"}}, nil
}

// Fig6Partitioning reproduces the schematic channel-activity comparison of
// Fig. 6: two requests, two layers, four channels, under TP-style
// simultaneous execution and PP-style stage-at-a-time execution.
func Fig6Partitioning() (*Result, error) {
	reqs := []mapping.Request{{ID: 0, Tokens: 16 << 10}, {ID: 1, Tokens: 8 << 10}}
	t := tablefmt.New("Fig. 6 — channel activity: HFP vs TCP (4 channels, 2 requests x 2 heads)",
		"mode", "strategy", "active-channels%", "balance-util%")
	type point struct {
		mode string
		s    mapping.Strategy
	}
	pts := []point{
		{"TP", mapping.HFP{}}, {"TP", mapping.TCP{}},
		{"PP", mapping.HFP{}}, {"PP", mapping.TCP{}},
	}
	rows, err := sweep.Rows(context.Background(), pts,
		func(_ context.Context, p point) ([]any, error) {
			if p.mode == "TP" {
				// TP-style: both requests resident, all heads concurrently.
				a, err := p.s.Assign(reqs, 2, 1, 4)
				if err != nil {
					return nil, err
				}
				return []any{"TP", p.s.Name(), 100 * float64(a.ActiveChannels()) / 4, 100 * a.Utilization()}, nil
			}
			// PP-style: one request per pipeline stage.
			g, err := mapping.PipelineActivity(p.s, reqs, 2, 1, 4, 4, func(step int) []int { return []int{step % 2} })
			if err != nil {
				return nil, err
			}
			return []any{"PP", p.s.Name(), 100 * g.ActiveFraction(), "-"}, nil
		})
	if err != nil {
		return nil, err
	}
	addRows(t, rows)
	return &Result{ID: "fig6", Title: "KV-cache partitioning strategies", Tables: []*tablefmt.Table{t}}, nil
}

// AblationIsMAC quantifies the is-MAC accumulate bypass inside DCS.
func AblationIsMAC() (*Result, error) {
	dev := timing.AiM16()
	svc := perfmodel.New(dev)
	t := tablefmt.New("Ablation — DCS is-MAC accumulate bypass",
		"kernel", "tokens/ch", "dcs-cyc", "no-ismac-cyc", "bypass-gain")
	type point struct {
		k      perfmodel.Kernel
		tokens int
	}
	var pts []point
	for _, k := range []perfmodel.Kernel{perfmodel.QKT, perfmodel.SV} {
		for _, tokens := range []int{1024, 4096} {
			pts = append(pts, point{k, tokens})
		}
	}
	rows, err := sweep.Rows(context.Background(), pts,
		func(_ context.Context, p point) ([]any, error) {
			with, err := svc.Price(perfmodel.Query{Kernel: p.k, Tokens: p.tokens, Dh: 128, Queries: 1, Sched: perfmodel.DCS})
			if err != nil {
				return nil, err
			}
			without, err := svc.Price(perfmodel.Query{Kernel: p.k, Tokens: p.tokens, Dh: 128, Queries: 1, Sched: perfmodel.DCSNoIsMAC})
			if err != nil {
				return nil, err
			}
			return []any{p.k.String(), p.tokens, int64(with.Cycles), int64(without.Cycles),
				float64(without.Cycles) / float64(with.Cycles)}, nil
		})
	if err != nil {
		return nil, err
	}
	addRows(t, rows)
	return &Result{ID: "abl-ismac", Title: "is-MAC bypass ablation", Tables: []*tablefmt.Table{t}}, nil
}

// AblationOBufDepth sweeps the output-buffer depth that I/O-aware
// buffering adds (the paper picks a 64 B per-bank OBuf).
func AblationOBufDepth() (*Result, error) {
	dev := timing.AiM16()
	t := tablefmt.New("Ablation — OBuf depth (SV kernel, 4096 tokens/channel, DCS)",
		"obuf-entries", "cycles", "wr-inp-cmds", "rd-out-cmds")
	rows, err := sweep.Rows(context.Background(), []int{2, 4, 8, 16, 32},
		func(_ context.Context, entries int) ([]any, error) {
			cfg := kernels.NewConfig(dev, kernels.Buffers{GBufEntries: dev.GBufEntries(), OutEntries: entries})
			stack, err := cfg.SV(4096, 128, 1, false)
			if err != nil {
				return nil, err
			}
			res, err := (&sched.DCS{Dev: dev}).Schedule(stack)
			if err != nil {
				return nil, err
			}
			st := kernels.StackStats(stack)
			return []any{entries, int64(res.Total), st.WrInp, st.RdOut}, nil
		})
	if err != nil {
		return nil, err
	}
	addRows(t, rows)
	return &Result{ID: "abl-obuf", Title: "Output buffer depth ablation", Tables: []*tablefmt.Table{t},
		Notes: []string{"entries=2 is the conventional 4-byte OutReg; PIMphony uses 32"}}, nil
}

// AblationTCPReduce quantifies the sensitivity of TCP to the inter-channel
// SV reduction cost by sweeping the HUB gather bandwidth. The share is
// measured against a full 16K-token layer's attention (batch of 8 heads
// per channel), mirroring the paper's < 0.2% claim.
func AblationTCPReduce() (*Result, error) {
	base := timing.AiM16()
	t := tablefmt.New("Ablation — TCP SV-reduction sensitivity (per head, 32 channels)",
		"hub-B/cyc", "reduce-cyc", "share-of-16k-layer%")
	svc := perfmodel.New(base)
	att, err := svc.AttentionLatency(16384/32, 128, 1, false, false, perfmodel.DCS)
	if err != nil {
		return nil, err
	}
	const headsPerLayer = 8 // concurrent head tiles per channel per layer
	layer := float64(att.Cycles) * headsPerLayer
	rows, err := sweep.Rows(context.Background(), []float64{64, 128, 256, 512, 1024},
		func(_ context.Context, bw float64) ([]any, error) {
			c := mapping.SVReduction(32, 128, base.ElemsPerTile(), base.TileBytes, bw,
				int64(base.HubHopCycles), int64(base.EPUAddCycles))
			return []any{bw, c.TotalCycles, 100 * float64(c.TotalCycles) / layer}, nil
		})
	if err != nil {
		return nil, err
	}
	addRows(t, rows)
	return &Result{ID: "abl-tcp", Title: "TCP aggregation-cost sensitivity", Tables: []*tablefmt.Table{t},
		Notes: []string{"paper: SV reduction is below 0.2% of attention latency for LLM-7B at 16K tokens"}}, nil
}
