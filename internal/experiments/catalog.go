package experiments

import (
	"fmt"
	"io"
	"strings"

	"pimphony/internal/backend"
	"pimphony/internal/core"
)

// Catalog renders the registered system backends (with their preset
// aliases) and the experiment drivers, one line each — the shared body
// of the CLI -list flags, so pimphony-sim and pimphony-serve cannot
// drift apart. mid, when non-nil, runs between the two sections
// (pimphony-serve inserts its load-balancing policy list there).
func Catalog(w io.Writer, mid func(io.Writer)) {
	fmt.Fprintln(w, "registered system backends (-system):")
	for _, p := range core.Presets() {
		b, err := backend.Lookup(p.Backend)
		if err != nil {
			continue
		}
		name := p.Backend
		if len(p.Aliases) > 0 {
			name += " (" + strings.Join(p.Aliases, ", ") + ")"
		}
		fmt.Fprintf(w, "  %-28s %s\n", name, b.Describe())
	}
	if mid != nil {
		mid(w)
	}
	fmt.Fprintln(w, "\nexperiments (pimphony-bench -run <id>):")
	for _, id := range IDs() {
		fmt.Fprintf(w, "  %-28s %s\n", id, Description(id))
	}
	fmt.Fprintln(w, "\nper-experiment commands and the metrics glossary: docs/EXPERIMENTS.md")
}
