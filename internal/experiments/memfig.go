package experiments

import (
	"context"
	"fmt"

	"pimphony/internal/compiler"
	"pimphony/internal/memory"
	"pimphony/internal/model"
	"pimphony/internal/sweep"
	"pimphony/internal/tablefmt"
	"pimphony/internal/timing"
	"pimphony/internal/workload"
)

// Table1Models prints the Table I model specifications with derived
// footprints.
func Table1Models() (*Result, error) {
	t := tablefmt.New("Table I — LLM specifications",
		"model", "nl", "nh", "dh", "din", "dffn", "gqa", "cw", "weights-GiB", "kv-KiB/token")
	for _, m := range model.All() {
		if err := m.Validate(); err != nil {
			return nil, err
		}
		t.AddRow(m.Name, m.Layers, m.Heads, m.HeadDim, m.DIn, m.DFFN,
			m.GQAGroup, m.ContextWindow, float64(m.WeightBytes())/(1<<30), float64(m.KVBytesPerToken())/(1<<10))
	}
	return &Result{ID: "tab1", Title: "Model configurations", Tables: []*tablefmt.Table{t}}, nil
}

// Table2Workloads checks the synthetic trace generators against the
// Table II statistics. Sampling the traces is independent work, so the
// per-trace points fan out through the sweep engine.
func Table2Workloads() (*Result, error) {
	t := tablefmt.New("Table II — context-length statistics (paper vs sampled, n=4000)",
		"trace", "suite", "mean(paper)", "mean(sim)", "std(paper)", "std(sim)", "min", "max")
	rows, err := sweep.Rows(context.Background(), workload.All(),
		func(_ context.Context, tr workload.Trace) ([]any, error) {
			g := workload.NewGenerator(tr, 42)
			st := workload.Summarize(g.Batch(4000))
			return []any{tr.Name, tr.Suite, tr.Mean, st.Mean, tr.Std, st.Std, st.Min, st.Max}, nil
		})
	if err != nil {
		return nil, err
	}
	addRows(t, rows)
	return &Result{ID: "tab2", Title: "Workload statistics", Tables: []*tablefmt.Table{t}}, nil
}

// Table4Configs prints the evaluated module configurations.
func Table4Configs() (*Result, error) {
	t := tablefmt.New("Table IV — PIMphony module configurations",
		"system", "channels", "module-GiB", "internal-GB/s", "compute")
	cent := timing.AiM16().WithChannels(32).WithCapacity(16 << 30)
	neu := timing.AiM16().WithChannels(32).WithCapacity(32 << 30)
	t.AddRow("CENT", cent.Channels, cent.ModuleBytes()>>30, cent.InternalBandwidth(), "PNM (FC on PIM banks)")
	t.AddRow("NeuPIMs", neu.Channels, neu.ModuleBytes()>>30, neu.InternalBandwidth(), "8 matrix units, 256 TFLOPS")
	return &Result{ID: "tab4", Title: "Module configurations", Tables: []*tablefmt.Table{t}}, nil
}

// Fig2Motivation reproduces the motivation study: compute intensity vs
// context length and memory footprint vs (context, batch).
func Fig2Motivation() (*Result, error) {
	m := model.LLM7B128KGQA()
	a := tablefmt.New("Fig. 2a — compute intensity vs context (LLM-7B GQA, batch 16)",
		"context", "flops/byte")
	for _, ctx := range []int{1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20} {
		a.AddRow(ctx, m.ComputeIntensity(16, ctx))
	}
	b := tablefmt.New("Fig. 2b — memory footprint GiB vs (context, batch); A100 = 80 GiB",
		"context", "batch-1", "batch-8", "batch-32", "batch-8-fits-A100")
	for _, ctx := range []int{4 << 10, 32 << 10, 128 << 10, 1 << 20} {
		f1 := float64(m.MemoryFootprint(1, ctx)) / (1 << 30)
		f8 := float64(m.MemoryFootprint(8, ctx)) / (1 << 30)
		f32 := float64(m.MemoryFootprint(32, ctx)) / (1 << 30)
		b.AddRow(ctx, f1, f8, f32, f8 <= 80)
	}
	return &Result{ID: "fig2", Title: "Long-context decoding characteristics", Tables: []*tablefmt.Table{a, b}}, nil
}

// Fig10InstrFootprint reproduces the instruction-footprint comparison:
// statically unrolled programs grow linearly with context; DPA stays
// constant.
func Fig10InstrFootprint() (*Result, error) {
	tgt := compiler.Target{Dev: timing.AiM16().WithChannels(32), TCP: true}
	c, err := compiler.Compile(model.LLM7B128KGQA(), tgt)
	if err != nil {
		return nil, err
	}
	t := tablefmt.New("Fig. 10c — per-layer attention instruction footprint (bytes)",
		"context", "static-unrolled", "dpa", "ratio")
	dpa := c.DPAFootprint()
	rows, err := sweep.Rows(context.Background(), []int{32 << 10, 128 << 10, 512 << 10, 1 << 20},
		func(_ context.Context, ctx int) ([]any, error) {
			st, err := c.StaticFootprint(ctx)
			if err != nil {
				return nil, err
			}
			return []any{ctx, st, dpa, float64(st) / float64(dpa)}, nil
		})
	if err != nil {
		return nil, err
	}
	addRows(t, rows)
	return &Result{ID: "fig10", Title: "DPA instruction-footprint scalability", Tables: []*tablefmt.Table{t},
		Notes: []string{"paper: static instruction streams bloat the command buffer at long context; DPA is ~constant"}}, nil
}

// Fig19Capacity reproduces the capacity-utilization study: static T_max
// reservations vs DPA lazy chunks, per workload, filling a 128 GiB pool.
func Fig19Capacity() (*Result, error) {
	t := tablefmt.New("Fig. 19 — KV capacity utilization at admission saturation (128 GiB pool)",
		"trace", "model", "static-util%", "dpa-util%", "static-batch", "dpa-batch")
	type capCase struct {
		tr workload.Trace
		m  model.Config
	}
	cases := []capCase{
		{workload.QMSum(), model.LLM7B32K()},
		{workload.Musique(), model.LLM7B32K()},
		{workload.MultiFieldQA(), model.LLM7B128KGQA()},
		{workload.LoogleSD(), model.LLM7B128KGQA()},
	}
	rows, err := sweep.Rows(context.Background(), cases,
		func(_ context.Context, c capCase) ([]any, error) {
			pool := int64(128<<30) - c.m.WeightBytes()
			bpt := c.m.KVBytesPerToken()
			st, err := memory.NewStatic(pool, bpt, c.m.ContextWindow)
			if err != nil {
				return nil, err
			}
			dpa, err := memory.NewDPA(pool, bpt, memory.DefaultChunkBytes)
			if err != nil {
				return nil, err
			}
			reqs := workload.NewGenerator(c.tr, 21).Batch(512)
			fill := func(a memory.Allocator) int {
				n := 0
				for _, r := range reqs {
					if !a.CanAdmit(r.Context) {
						break
					}
					if a.Admit(r.ID, r.Context) != nil {
						break
					}
					n++
				}
				return n
			}
			sb := fill(st)
			db := fill(dpa)
			return []any{c.tr.Name, c.m.Name, 100 * memory.PoolUtilization(st), 100 * memory.PoolUtilization(dpa), sb, db}, nil
		})
	if err != nil {
		return nil, err
	}
	addRows(t, rows)
	return &Result{ID: "fig19", Title: "Capacity utilization with and without DPA", Tables: []*tablefmt.Table{t},
		Notes: []string{"paper: static 31.0-40.5%; DPA average 75.6%"}}, nil
}

// AblationChunkSize sweeps the DPA allocation granularity.
func AblationChunkSize() (*Result, error) {
	m := model.LLM7B128KGQA()
	tr := workload.MultiFieldQA()
	poolBytes := int64(128<<30) - m.WeightBytes()
	t := tablefmt.New("Ablation — DPA chunk size (multifieldqa, 128 GiB pool)",
		"chunk", "pool-util%", "batch", "va2pa-entries/request")
	rows, err := sweep.Rows(context.Background(), []int64{256 << 10, 1 << 20, 4 << 20, 16 << 20, 64 << 20},
		func(_ context.Context, chunk int64) ([]any, error) {
			a, err := memory.NewDPA(poolBytes, m.KVBytesPerToken(), chunk)
			if err != nil {
				return nil, err
			}
			reqs := workload.NewGenerator(tr, 5).Batch(512)
			n := 0
			var entries int
			for _, r := range reqs {
				if !a.CanAdmit(r.Context) {
					break
				}
				if a.Admit(r.ID, r.Context) != nil {
					break
				}
				entries += len(a.Chunks(r.ID))
				n++
			}
			if n == 0 {
				return nil, fmt.Errorf("chunk %d admitted nothing", chunk)
			}
			return []any{byteSize(chunk), 100 * memory.PoolUtilization(a), n, entries / n}, nil
		})
	if err != nil {
		return nil, err
	}
	addRows(t, rows)
	return &Result{ID: "abl-chunk", Title: "DPA chunk-size ablation", Tables: []*tablefmt.Table{t},
		Notes: []string{"the paper's 1 MB chunk balances fragmentation against VA2PA table pressure"}}, nil
}

func byteSize(b int64) string {
	switch {
	case b >= 1<<20:
		return fmt.Sprintf("%dMiB", b>>20)
	default:
		return fmt.Sprintf("%dKiB", b>>10)
	}
}
