package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// TestAllExperimentsRun executes every registered experiment end to end
// and sanity-checks that tables are populated. This is the integration
// test tying the whole stack together.
func TestAllExperimentsRun(t *testing.T) {
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			res, err := Run(id)
			if err != nil {
				t.Fatalf("%s: %v", id, err)
			}
			if res.ID != id {
				t.Errorf("result ID %q != %q", res.ID, id)
			}
			if len(res.Tables) == 0 {
				t.Fatalf("%s produced no tables", id)
			}
			for _, tb := range res.Tables {
				if len(tb.Rows) == 0 {
					t.Errorf("%s: table %q has no rows", id, tb.Title)
				}
				if len(tb.Headers) == 0 {
					t.Errorf("%s: table %q has no headers", id, tb.Title)
				}
				for _, row := range tb.Rows {
					if len(row) != len(tb.Headers) {
						t.Errorf("%s: ragged row in %q", id, tb.Title)
					}
				}
			}
			if out := res.String(); !strings.Contains(out, id) {
				t.Errorf("%s: rendering lacks the id", id)
			}
		})
	}
}

func TestUnknownID(t *testing.T) {
	if _, err := Run("nope"); err == nil {
		t.Fatal("unknown experiment should error")
	}
}

// TestFig7PinsPaperNumbers extracts the Fig. 7 cycle counts and pins them
// to the paper's 34 (static) and 22 (DCS).
func TestFig7PinsPaperNumbers(t *testing.T) {
	res, err := Run("fig7")
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]string{}
	for _, row := range res.Tables[0].Rows {
		got[row[0]] = row[1]
	}
	if got["static"] != "34" {
		t.Errorf("static = %s cycles, paper says 34", got["static"])
	}
	if got["dcs"] != "22" {
		t.Errorf("dcs = %s cycles, paper says 22", got["dcs"])
	}
}

// TestFig13SpeedupBands checks the headline speedups stay in credible
// bands relative to the paper (shape, not absolute numbers).
func TestFig13SpeedupBands(t *testing.T) {
	if testing.Short() {
		t.Skip("system study")
	}
	res, err := Run("fig13")
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Tables[0].Rows {
		sp, err := strconv.ParseFloat(row[len(row)-1], 64)
		if err != nil {
			t.Fatalf("bad speedup cell %q", row[len(row)-1])
		}
		if sp < 1.2 {
			t.Errorf("%s/%s: full-stack speedup %.2fx is implausibly low", row[0], row[1], sp)
		}
		// The paper tops out at 11.3x; our baseline enforces stricter
		// single-channel KV locality, so the 72B-GQA extreme overshoots
		// (documented in EXPERIMENTS.md). Anything beyond 50x would
		// indicate a modelling bug rather than that divergence.
		if sp > 50 {
			t.Errorf("%s/%s: full-stack speedup %.2fx is implausibly high", row[0], row[1], sp)
		}
	}
}

// TestFig19Bands checks the capacity-utilization split matches the
// paper's direction and rough magnitudes.
func TestFig19Bands(t *testing.T) {
	res, err := Run("fig19")
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Tables[0].Rows {
		st, _ := strconv.ParseFloat(row[2], 64)
		dpa, _ := strconv.ParseFloat(row[3], 64)
		if dpa <= st {
			t.Errorf("%s: DPA util %.1f%% should beat static %.1f%%", row[0], dpa, st)
		}
		if st > 60 {
			t.Errorf("%s: static util %.1f%% too high (paper: 31.0-40.5%%)", row[0], st)
		}
		if dpa < 55 {
			t.Errorf("%s: DPA util %.1f%% too low (paper: ~75.6%%)", row[0], dpa)
		}
	}
}

// TestFig18Bands checks DCS beats ping-pong on every attention setting.
func TestFig18Bands(t *testing.T) {
	res, err := Run("fig18")
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Tables[0].Rows {
		gain, err := strconv.ParseFloat(row[3], 64)
		if err != nil {
			t.Fatalf("bad gain cell %q", row[3])
		}
		if gain < 1.0 {
			t.Errorf("%s: DCS should not lose to ping-pong (gain %.2f)", row[0], gain)
		}
		if gain > 3.0 {
			t.Errorf("%s: DCS gain %.2fx implausible (paper: up to 1.4x)", row[0], gain)
		}
	}
}
