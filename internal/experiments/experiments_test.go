package experiments

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"

	"pimphony/internal/backend"
	"pimphony/internal/sweep"
)

// useGrids applies the -short grid selection for one test.
func useGrids(t *testing.T) {
	prev := SetShort(testing.Short())
	t.Cleanup(func() { SetShort(prev) })
}

// resultCache memoizes experiment results per (id, grid mode) so the
// band-pinning tests reuse what TestAllExperimentsRun already computed
// instead of regenerating multi-second system studies.
var (
	resultMu    sync.Mutex
	resultCache = map[string]*Result{}
)

func runCached(t *testing.T, id string) *Result {
	t.Helper()
	key := fmt.Sprintf("%s/short=%v", id, Short())
	resultMu.Lock()
	res, ok := resultCache[key]
	resultMu.Unlock()
	if ok {
		return res
	}
	res, err := Run(id)
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	resultMu.Lock()
	resultCache[key] = res
	resultMu.Unlock()
	return res
}

// TestAllExperimentsRun executes every registered experiment end to end
// and sanity-checks that tables are populated. This is the integration
// test tying the whole stack together; the experiments are independent,
// so the subtests run in parallel on top of each driver's own sweep
// parallelism.
func TestAllExperimentsRun(t *testing.T) {
	useGrids(t)
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			res := runCached(t, id)
			if res.ID != id {
				t.Errorf("result ID %q != %q", res.ID, id)
			}
			if len(res.Tables) == 0 {
				t.Fatalf("%s produced no tables", id)
			}
			for _, tb := range res.Tables {
				if len(tb.Rows) == 0 {
					t.Errorf("%s: table %q has no rows", id, tb.Title)
				}
				if len(tb.Headers) == 0 {
					t.Errorf("%s: table %q has no headers", id, tb.Title)
				}
				for _, row := range tb.Rows {
					if len(row) != len(tb.Headers) {
						t.Errorf("%s: ragged row in %q", id, tb.Title)
					}
				}
			}
			if out := res.String(); !strings.Contains(out, id) {
				t.Errorf("%s: rendering lacks the id", id)
			}
		})
	}
}

func TestUnknownID(t *testing.T) {
	_, err := Run("nope")
	if err == nil {
		t.Fatal("unknown experiment should error")
	}
	if !strings.Contains(err.Error(), `"nope"`) {
		t.Errorf("error should name the unknown id: %v", err)
	}
}

// TestIDsSortedAndStable pins the registry enumeration: sorted order,
// no duplicates, and identical across calls (cmd/pimphony-bench's 'all'
// mode and the benchmark harness both rely on it).
func TestIDsSortedAndStable(t *testing.T) {
	ids := IDs()
	if len(ids) == 0 {
		t.Fatal("registry is empty")
	}
	if !sort.StringsAreSorted(ids) {
		t.Errorf("IDs not sorted: %v", ids)
	}
	seen := map[string]bool{}
	for _, id := range ids {
		if seen[id] {
			t.Errorf("duplicate id %q", id)
		}
		seen[id] = true
	}
	again := IDs()
	if len(again) != len(ids) {
		t.Fatalf("IDs changed between calls: %d vs %d", len(again), len(ids))
	}
	for i := range ids {
		if again[i] != ids[i] {
			t.Errorf("IDs()[%d] unstable: %q vs %q", i, again[i], ids[i])
		}
	}
	for _, id := range ids {
		if _, ok := registry[id]; !ok {
			t.Errorf("id %q not resolvable via registry", id)
		}
	}
}

// TestParallelMatchesSequential is the determinism contract of the sweep
// refactor: for a representative slice of drivers (system-study ladder,
// (TP,PP) grid, microbenchmark, capacity study), the rendered output
// under parallelism=8 must be byte-identical to a parallelism=1 run.
// The scaled-down grids keep it cheap; grid size is orthogonal to the
// ordering guarantees under test.
func TestParallelMatchesSequential(t *testing.T) {
	prevShort := SetShort(true)
	t.Cleanup(func() { SetShort(prevShort) })
	for _, id := range []string{"fig8", "fig13", "fig15", "fig19", "serve", "capacity", "fleet", "megafleet"} {
		id := id
		t.Run(id, func(t *testing.T) {
			prev := sweep.SetDefault(1)
			seqRes, seqErr := Run(id)
			sweep.SetDefault(8)
			parRes, parErr := Run(id)
			sweep.SetDefault(prev)
			if seqErr != nil || parErr != nil {
				t.Fatalf("seq err %v, par err %v", seqErr, parErr)
			}
			seq, par := seqRes.String(), parRes.String()
			if seq != par {
				t.Errorf("parallel output diverges from sequential:\n--- sequential ---\n%s\n--- parallel ---\n%s", seq, par)
			}
		})
	}
}

// TestShortGridsShrink guards the -short CI lane: the scaled-down grids
// must actually be smaller than the full ones, while keeping every
// column.
func TestShortGridsShrink(t *testing.T) {
	if testing.Short() {
		t.Skip("needs both grid settings; the full lane covers it")
	}
	prev := SetShort(false)
	fullRes := runCached(t, "fig15")
	SetShort(true)
	shortRes, err := Run("fig15")
	SetShort(prev)
	if err != nil {
		t.Fatal(err)
	}
	for i := range shortRes.Tables {
		s, f := shortRes.Tables[i], fullRes.Tables[i]
		if len(s.Rows) == 0 || len(s.Rows) >= len(f.Rows) {
			t.Errorf("table %q: short grid has %d rows vs full %d; want a non-empty strict subset",
				s.Title, len(s.Rows), len(f.Rows))
		}
		if len(s.Headers) != len(f.Headers) {
			t.Errorf("table %q: short grid changed the columns", s.Title)
		}
	}
}

// TestFig7PinsPaperNumbers extracts the Fig. 7 cycle counts and pins them
// to the paper's 34 (static) and 22 (DCS).
func TestFig7PinsPaperNumbers(t *testing.T) {
	useGrids(t)
	res := runCached(t, "fig7")
	got := map[string]string{}
	for _, row := range res.Tables[0].Rows {
		got[row[0]] = row[1]
	}
	if got["static"] != "34" {
		t.Errorf("static = %s cycles, paper says 34", got["static"])
	}
	if got["dcs"] != "22" {
		t.Errorf("dcs = %s cycles, paper says 22", got["dcs"])
	}
}

// TestFig13SpeedupBands checks the headline speedups stay in credible
// bands relative to the paper (shape, not absolute numbers).
func TestFig13SpeedupBands(t *testing.T) {
	if testing.Short() {
		t.Skip("system study")
	}
	res := runCached(t, "fig13")
	for _, row := range res.Tables[0].Rows {
		sp, err := strconv.ParseFloat(row[len(row)-1], 64)
		if err != nil {
			t.Fatalf("bad speedup cell %q", row[len(row)-1])
		}
		if sp < 1.2 {
			t.Errorf("%s/%s: full-stack speedup %.2fx is implausibly low", row[0], row[1], sp)
		}
		// The paper tops out at 11.3x; our baseline enforces stricter
		// single-channel KV locality, so the 72B-GQA extreme overshoots
		// (documented in the fig17 driver notes). Anything beyond 50x would
		// indicate a modelling bug rather than that divergence.
		if sp > 50 {
			t.Errorf("%s/%s: full-stack speedup %.2fx is implausibly high", row[0], row[1], sp)
		}
	}
}

// TestFig19Bands checks the capacity-utilization split matches the
// paper's direction and rough magnitudes.
func TestFig19Bands(t *testing.T) {
	useGrids(t)
	res := runCached(t, "fig19")
	for _, row := range res.Tables[0].Rows {
		st, _ := strconv.ParseFloat(row[2], 64)
		dpa, _ := strconv.ParseFloat(row[3], 64)
		if dpa <= st {
			t.Errorf("%s: DPA util %.1f%% should beat static %.1f%%", row[0], dpa, st)
		}
		if st > 60 {
			t.Errorf("%s: static util %.1f%% too high (paper: 31.0-40.5%%)", row[0], st)
		}
		if dpa < 55 {
			t.Errorf("%s: DPA util %.1f%% too low (paper: ~75.6%%)", row[0], dpa)
		}
	}
}

// TestCapacityGapBands pins the headline of the online capacity study:
// at every (rate, replica) point of both tables, DPA admits strictly
// more concurrent long-context requests than static at the same KV
// budget, and never less goodput. Static, which cannot over-admit, must
// never preempt.
func TestCapacityGapBands(t *testing.T) {
	useGrids(t)
	res := runCached(t, "capacity")
	parse := func(s string) float64 {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			t.Fatalf("bad cell %q", s)
		}
		return v
	}
	for _, tb := range res.Tables {
		type row struct{ maxAct, preempt, goodput float64 }
		static := map[string]row{}
		for _, r := range tb.Rows {
			// Columns: alloc repl req/s max-act preempt blocked-s
			// recomp-s peak-live peak-resv tok/s goodput ...
			key := r[1] + "@" + r[2]
			v := row{maxAct: parse(r[3]), preempt: parse(r[4]), goodput: parse(r[10])}
			switch r[0] {
			case "static":
				if v.preempt != 0 {
					t.Errorf("%s: static preempted %g times; T_max reservation cannot over-admit", tb.Title, v.preempt)
				}
				static[key] = v
			case "dpa":
				st, ok := static[key]
				if !ok {
					t.Fatalf("%s: dpa row %v has no static counterpart", tb.Title, r)
				}
				if v.maxAct <= st.maxAct {
					t.Errorf("%s @ %s: DPA max-active %g not strictly above static %g at the same budget",
						tb.Title, key, v.maxAct, st.maxAct)
				}
				if v.goodput < st.goodput {
					t.Errorf("%s @ %s: DPA goodput %g below static %g", tb.Title, key, v.goodput, st.goodput)
				}
			default:
				t.Fatalf("%s: unknown alloc %q", tb.Title, r[0])
			}
		}
	}
}

// TestFig18Bands checks DCS beats ping-pong on every attention setting.
func TestFig18Bands(t *testing.T) {
	useGrids(t)
	res := runCached(t, "fig18")
	for _, row := range res.Tables[0].Rows {
		gain, err := strconv.ParseFloat(row[3], 64)
		if err != nil {
			t.Fatalf("bad gain cell %q", row[3])
		}
		if gain < 1.0 {
			t.Errorf("%s: DCS should not lose to ping-pong (gain %.2f)", row[0], gain)
		}
		if gain > 3.0 {
			t.Errorf("%s: DCS gain %.2fx implausible (paper: up to 1.4x)", row[0], gain)
		}
	}
}

// TestCatalogListsEverything: the shared -list body must name every
// registered backend and every experiment with a description, and run
// the mid-section hook between them.
func TestCatalogListsEverything(t *testing.T) {
	var b strings.Builder
	Catalog(&b, func(w io.Writer) { fmt.Fprintln(w, "MID-SECTION") })
	out := b.String()
	for _, name := range backend.Names() {
		if !strings.Contains(out, name) {
			t.Errorf("catalog misses backend %q", name)
		}
	}
	for _, id := range IDs() {
		if !strings.Contains(out, id) {
			t.Errorf("catalog misses experiment %q", id)
		}
		if Description(id) == "" {
			t.Errorf("experiment %q has no description", id)
		}
	}
	mid := strings.Index(out, "MID-SECTION")
	if mid < 0 || mid < strings.Index(out, "pim-only") || mid > strings.Index(out, "experiments (") {
		t.Error("mid-section hook not rendered between backends and experiments")
	}
}
