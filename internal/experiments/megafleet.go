package experiments

import (
	"context"
	"fmt"
	"strings"

	"pimphony/internal/core"
	"pimphony/internal/model"
	"pimphony/internal/serve"
	"pimphony/internal/tablefmt"
	"pimphony/internal/workload"
)

// megafleetBudgetBytes is the per-replica decode KV budget: small on
// purpose. The study stresses the global scheduler — placement, held
// retries, provision/drain churn across thousands of replicas — so each
// replica holds only a couple of requests and fleet-level decisions
// dominate.
const megafleetBudgetBytes int64 = 2 << 30

// megafleetPerRate is the offered load per replica (req/s). Total rate
// scales linearly with fleet size, so every row serves the same ~3.6
// requests per replica and the rows differ only in scale.
func megafleetPerRate() float64 {
	if Short() {
		return 0.006
	}
	return 0.0005
}

// megafleetSizes is the fleet-size grid: two decades of scale-up in
// full mode (the 10k row is the scheduler's stress ceiling), two small
// sizes in the short CI lane.
func megafleetSizes() []int {
	if Short() {
		return []int{50, 200}
	}
	return []int{100, 1000, 10000}
}

// megafleetArrivals thins each row's arrival stream along a diurnal day
// curve — a two-hour day in full mode (one full period over the run),
// a ten-minute day in short mode — with the same short-prompt mix as
// the autoscale study.
func megafleetArrivals(rate float64, n int) func() ([]workload.Arrival, error) {
	flag := "diurnal:7200:0.9"
	if Short() {
		flag = "diurnal:600:0.9"
	}
	return func() ([]workload.Arrival, error) {
		gen, err := workload.HeavyTailed(256, 2048, 1.2, 61)
		if err != nil {
			return nil, err
		}
		gen.DecodeLen = fleetDecodeLen
		return workload.ArrivalsByFlag(flag, gen, rate, 4, n, 62)
	}
}

// MegafleetScale is the fleet-size scaling study: SLO-autoscaled
// CENT+PIMphony fleets from one hundred to ten thousand unified
// replicas, each serving a diurnal trace whose offered load scales with
// the fleet, so per-replica work is constant and the only variable is
// how many replicas the global scheduler manages. Every scheduler
// decision — placement, held retries, steal/drain/provision picks, the
// autoscaler's fleet view — answers from incrementally maintained
// indexes in O(log n) or O(1), so simulated-event cost is flat across
// the two decades of scale; the megafleet benchmark floor (bench/
// baseline.json) pins that property.
func MegafleetScale() (*Result, error) {
	m := model.LLM7B32K()
	var pts []serve.AutoscalePoint
	var sizes []string
	for _, size := range megafleetSizes() {
		size := size
		rate := megafleetPerRate() * float64(size)
		n := int(3.6 * float64(size))
		min := size / 20
		if min < 1 {
			min = 1
		}
		cfg := core.CENT(m, core.PIMphony())
		cfg.KVBudgetBytes = megafleetBudgetBytes
		pts = append(pts, serve.AutoscalePoint{
			Name: fmt.Sprintf("n=%d", size),
			Specs: []serve.ReplicaSpec{{
				System: cfg, Count: size, Role: serve.RoleUnified,
				Min: min, WarmupSeconds: autoscaleWarmup,
			}},
			AutoscalerName: "slo",
			// Round-robin spreads the diurnal peak across the fleet
			// instead of serializing on the lowest-index replicas.
			PlacementName: "round-robin-fit",
			Arrivals:      megafleetArrivals(rate, n),
		})
		sizes = append(sizes, fmt.Sprintf("%d", size))
	}
	slo := serve.SLO{TTFT: 2.5, TBT: 0.025}
	t, err := serve.AutoscaleTable(context.Background(),
		fmt.Sprintf("Megafleet — scheduler scaling across fleet sizes {%s} (%s, %d GiB CENT+PIMphony per replica, diurnal trace, %g req/s per replica, ~3.6 reqs/replica, 5%% initially online, warm-up %gs, SLO ttft<=2.5s tbt<=25ms)",
			strings.Join(sizes, ", "), m.Name, megafleetBudgetBytes>>30, megafleetPerRate(), autoscaleWarmup),
		pts, slo)
	if err != nil {
		return nil, err
	}
	return &Result{
		ID:     "megafleet",
		Title:  "scheduler scaling from 100 to 10k replicas under a diurnal trace",
		Tables: []*tablefmt.Table{t},
		Notes: []string{
			"per-replica offered load is constant across rows, so goodput and avg-onl scale ~linearly with fleet size; slo-met% and ttft-p95 improve with scale — statistical multiplexing smooths the diurnal peak as relative burst variance shrinks",
			"the fleet scheduler answers every per-event decision from incrementally maintained ordered indexes (O(log n) placement and migration/steal/drain/provision picks, O(1) autoscale views); the wall-clock floor for this table is pinned in bench/baseline.json, so an accidental O(n) reintroduction fails the bench gate",
			"5% of each fleet starts online and the SLO scaler owns the rest of the timeline (Min does not floor later drains): the diurnal valley drains toward zero and the peak provisions upward, so the 10k row churns ~1.5k provision/drain index transitions",
		},
	}, nil
}
