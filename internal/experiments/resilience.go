package experiments

import (
	"context"
	"fmt"

	"pimphony/internal/core"
	"pimphony/internal/model"
	"pimphony/internal/serve"
	"pimphony/internal/tablefmt"
)

// resilienceRetries is the per-request retry budget of the study:
// enough to survive isolated crashes, small enough that a crash storm
// on a drained fleet can still exhaust it and surface failed requests.
const resilienceRetries = 3

// resilienceBackoff is the base of the deterministic exponential
// backoff a withdrawn request waits before re-admission.
const resilienceBackoff = 0.25

// ResilienceStudy is the fault-tolerance study: the autoscale study's
// four-replica CENT+PIMphony fleet under the compressed diurnal day
// curve, fixed versus SLO-autoscaled, swept across a crash MTBF × MTTR
// grid. Each mode's zero-fault row is its baseline; the faulted rows
// report how much goodput survives replica crashes (lost KV, retries,
// recompute on re-admission), what the tail TTFT pays, and how the
// economics move — a fixed fleet is only billed for replica uptime, so
// crashes cut its bill along with its capacity, while the autoscaled
// fleet re-provisions around failures at warm-up latency.
func ResilienceStudy() (*Result, error) {
	m := model.LLM7B32K()
	n := pool(64)
	specs := func() []serve.ReplicaSpec {
		cfg := core.CENT(m, core.PIMphony())
		cfg.KVBudgetBytes = fleetBudgetBytes / 4
		return []serve.ReplicaSpec{{
			System: cfg, Count: 4, Role: serve.RoleUnified,
			Min: 1, WarmupSeconds: autoscaleWarmup,
		}}
	}
	type schedule struct {
		name       string
		mtbf, mttr float64
	}
	grid := []schedule{{"none", 0, 0}}
	for _, mtbf := range []float64{20, 60} {
		for _, mttr := range []float64{1, 5} {
			grid = append(grid, schedule{
				fmt.Sprintf("crash mtbf=%gs mttr=%gs", mtbf, mttr), mtbf, mttr,
			})
		}
	}
	var pts []serve.ResiliencePoint
	for _, mode := range []string{"", "slo"} {
		for _, g := range grid {
			var plan *serve.FaultPlan
			if g.mtbf > 0 {
				plan = &serve.FaultPlan{
					Seed: 41,
					Groups: []serve.FaultGroup{{
						Spec: -1, Mode: serve.FaultCrash,
						MTBFSeconds: g.mtbf, MTTRSeconds: g.mttr,
					}},
					MaxRetries:     resilienceRetries,
					BackoffSeconds: resilienceBackoff,
				}
			}
			pts = append(pts, serve.ResiliencePoint{
				Name:           g.name,
				Specs:          specs(),
				AutoscalerName: mode,
				PlacementName:  "round-robin-fit",
				Faults:         plan,
				Arrivals:       autoscaleArrivals("diurnal:60:0.9", n),
			})
		}
	}
	slo := serve.SLO{TTFT: 2.5, TBT: 0.025}
	t, err := serve.ResilienceTable(context.Background(),
		fmt.Sprintf("Resilience — fixed vs SLO-autoscaled fleet under replica crashes (%s, 4x%d GiB CENT+PIMphony, diurnal @ %g req/s avg, %d reqs, retries %d, backoff %gs, SLO ttft<=2.5s tbt<=25ms; ttft-p99 in ms)",
			m.Name, (fleetBudgetBytes/4)>>30, autoscaleRate, n, resilienceRetries, resilienceBackoff),
		pts, slo)
	if err != nil {
		return nil, err
	}
	return &Result{
		ID:     "resilience",
		Title:  "Fault injection: goodput retained and retry economics under replica crashes",
		Tables: []*tablefmt.Table{t},
		Notes: []string{
			"each crash loses the replica's KV and withdraws its in-flight requests; retries re-admit through the recompute path after deterministic exponential backoff, and requests exhausting the budget count in failed (they keep no latency sample but stay in the SLO denominator)",
			"retained% is goodput relative to the same mode's zero-fault baseline row, so the fixed and autoscaled columns isolate fault damage from provisioning policy",
			"down(s) integrates crash-to-recovery time across replicas; fixed fleets are billed only for online intervals, so downtime cuts the provisioning bill along with capacity — goodtok/$ can move either way",
			"fault schedules are seeded MTBF/MTTR renewal chains compiled to explicit heap events, so every cell is byte-identical at any leap horizon, sync discipline and sweep parallelism (the des-equivalence CI lane diffs this table at -parallel 1 vs 8)",
		},
	}, nil
}
