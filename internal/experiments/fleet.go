package experiments

import (
	"context"
	"fmt"

	"pimphony/internal/core"
	"pimphony/internal/model"
	"pimphony/internal/serve"
	"pimphony/internal/tablefmt"
	"pimphony/internal/timing"
	"pimphony/internal/workload"
)

// fleetBudgetBytes is the aggregate decode-side KV budget every fleet
// composition is given, split evenly across its decode-capable
// replicas. Holding the aggregate fixed is what makes the comparison a
// placement question rather than a provisioning one: the homogeneous
// and disaggregated fleets hold exactly as much live KV in total.
const fleetBudgetBytes int64 = 96 << 30

// fleetDecodeLen matches the serving study's generation length: long
// enough for TBT percentiles to mean something, short enough that the
// many fleet simulations stay cheap.
const fleetDecodeLen = 32

// fleetRates returns the offered-load grid of the fleet study.
func fleetRates() []float64 {
	if Short() {
		return []float64{4}
	}
	return []float64{2, 4, 8}
}

// fleetArrivals builds the long-context schedule of the fleet study: a
// heavy-tailed prompt mix from 1K to 24K tokens. The tail is what
// separates the fleets — a 16K prompt prefills in ~15 s on a CENT
// module stack but in ~0.4 s on NeuPIMs' xPU, so a PIM-only fleet burns
// its TTFT budget on prefill while the disaggregated fleet pays only an
// explicit KV-transfer hop.
func fleetArrivals(n int) func(rate float64) ([]workload.Arrival, error) {
	return func(rate float64) ([]workload.Arrival, error) {
		gen, err := workload.HeavyTailed(1024, 24000, 1.1, 46)
		if err != nil {
			return nil, err
		}
		gen.DecodeLen = fleetDecodeLen
		return workload.PoissonArrivals(gen, rate, 4, n, 47)
	}
}

// fleetSpecs builds the three compositions of the study at an equal
// aggregate decode KV budget:
//
//   - "pim": four CENT+PIMphony unified replicas — the throughput-dense
//     decode fabric, but every prompt prefills on the PIM stack.
//   - "gpu": two A100-class unified replicas — fast prefill, but decode
//     is memory-bound and the energy per token is the GPU's.
//   - "disagg": one NeuPIMs xPU-heavy prefill replica feeding three
//     CENT decode replicas over the fleet interconnect — prefill where
//     compute is, decode where memory bandwidth is, KV moved once.
func fleetSpecs(m model.Config) map[string][]serve.ReplicaSpec {
	perBudget := func(cfg core.Config, n int64) core.Config {
		cfg.KVBudgetBytes = fleetBudgetBytes / n
		return cfg
	}
	return map[string][]serve.ReplicaSpec{
		"pim": {
			{System: perBudget(core.CENT(m, core.PIMphony()), 4), Count: 4, Role: serve.RoleUnified},
		},
		"gpu": {
			{System: perBudget(core.GPU(m), 2), Count: 2, Role: serve.RoleUnified},
		},
		"disagg": {
			{System: core.NeuPIMs(m, core.PIMphony()), Count: 1, Role: serve.RolePrefill},
			{System: perBudget(core.CENT(m, core.PIMphony()), 3), Count: 3, Role: serve.RoleDecode},
		},
	}
}

// FleetCompare is the disaggregated-serving study: homogeneous PIM-only
// and GPU fleets against an xPU-prefill/PIM-decode split, all at the
// same aggregate KV budget and SLO, under the global scheduler
// (KV-headroom placement, migration and stealing enabled). The table
// reports goodput under the SLO next to the TTFT/TBT tails that produce
// it, the explicit transfer seconds the disaggregated fleet pays, the
// recompute seconds preemptions cost, and joules per generated token
// from the decode replicas' energy counters.
func FleetCompare() (*Result, error) {
	m := model.LLM7B32K()
	specs := fleetSpecs(m)
	nReqs := pool(32)
	var pts []serve.FleetPoint
	for _, name := range []string{"pim", "gpu", "disagg"} {
		for _, rate := range fleetRates() {
			pts = append(pts, serve.FleetPoint{
				Name:  name,
				Specs: specs[name],
				Rate:  rate,
				Cfg: serve.Config{
					Interconnect: timing.DefaultInterconnect(),
					Migrate:      true,
					Steal:        true,
				},
			})
		}
	}
	slo := serve.SLO{TTFT: 1.0, TBT: 0.025}
	t, err := serve.FleetTable(context.Background(),
		fmt.Sprintf("Fleet — homogeneous vs disaggregated prefill/decode at a %d GiB aggregate KV budget (%s, heavy-tailed ctx 1K-24K, decode %d, %d reqs, SLO ttft<=1s tbt<=25ms; latencies in ms)",
			fleetBudgetBytes>>30, m.Name, fleetDecodeLen, nReqs),
		pts, slo, fleetArrivals(nReqs))
	if err != nil {
		return nil, err
	}
	return &Result{
		ID:     "fleet",
		Title:  "Disaggregated prefill/decode fleets under a global scheduler",
		Tables: []*tablefmt.Table{t},
		Notes: []string{
			"equal aggregate decode KV budget per fleet: 4x24 GiB CENT, 2x48 GiB GPU, 1 NeuPIMs prefill + 3x32 GiB CENT decode",
			"PIM-only prefill serializes 1K-24K prompts at seconds each, so its TTFT blows the SLO the moment load arrives; the disaggregated fleet prefills on xPU and ships the KV once (xfer-s), keeping PIM replicas on the decode they are dense at",
			"j/tok counts the decode replicas' modeled energy; the GPU backend prices no energy (see internal/backend/gpu.go), so its column is zero by construction",
		},
	}, nil
}
