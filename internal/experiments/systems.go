package experiments

import (
	"fmt"

	"pimphony/internal/cluster"
	"pimphony/internal/core"
	"pimphony/internal/model"
	"pimphony/internal/tablefmt"
	"pimphony/internal/workload"
)

// traceFor pairs each Table I model with its evaluation suite: non-GQA
// models run LongBench, GQA models run LV-Eval (Sec. VIII-A).
func tracesFor(m model.Config) []workload.Trace {
	if m.IsGQA() {
		return []workload.Trace{workload.MultiFieldQA(), workload.LoogleSD()}
	}
	return []workload.Trace{workload.QMSum(), workload.Musique()}
}

// requestPool samples a deterministic candidate pool for a trace.
func requestPool(tr workload.Trace, n int) []workload.Request {
	return workload.NewGenerator(tr, 42).Batch(n)
}

// incrementalTable runs the +TCP/+DCS/+DPA ladder for one preset across
// its traces.
func incrementalTable(title string, preset func(model.Config, core.Technique) core.Config, models []model.Config, poolSize int) (*tablefmt.Table, error) {
	t := tablefmt.New(title,
		"model", "trace", "baseline", "+TCP", "+DCS", "+DPA", "speedup")
	for _, m := range models {
		for _, tr := range tracesFor(m) {
			reqs := requestPool(tr, poolSize)
			stages, err := core.IncrementalStudy(preset(m, core.Baseline()), reqs)
			if err != nil {
				return nil, fmt.Errorf("%s/%s: %w", m.Name, tr.Name, err)
			}
			tp := func(i int) float64 { return stages[i].Report.Throughput }
			t.AddRow(m.Name, tr.Name, tp(0), tp(1), tp(2), tp(3), tp(3)/tp(0))
		}
	}
	return t, nil
}

// Fig13PIMOnly reproduces the PIM-only (CENT-style) throughput study:
// incremental TCP/DCS/DPA bars for all four models on their suites.
func Fig13PIMOnly() (*Result, error) {
	t, err := incrementalTable("Fig. 13 — PIM-only throughput (tokens/s), optimal TP/PP",
		core.CENT, model.All(), 64)
	if err != nil {
		return nil, err
	}
	return &Result{ID: "fig13", Title: "PIM-only system throughput", Tables: []*tablefmt.Table{t},
		Notes: []string{"paper: 2.1-4.5x on non-GQA 32K models, up to 11.3x on GQA 128K models"}}, nil
}

// Fig14XPUPIM reproduces the xPU+PIM (NeuPIMs-style) throughput study.
func Fig14XPUPIM() (*Result, error) {
	t, err := incrementalTable("Fig. 14 — xPU+PIM throughput (tokens/s), optimal TP/PP",
		core.NeuPIMs, model.All(), 64)
	if err != nil {
		return nil, err
	}
	return &Result{ID: "fig14", Title: "xPU+PIM system throughput", Tables: []*tablefmt.Table{t},
		Notes: []string{"paper: up to 8.4x; DPA matters most here (larger batches feed the NPU)"}}, nil
}

// Fig4Utilization reproduces the PIM-utilization preview: CENT vs the
// incremental PIMphony stages under a short (4K-class) and a long
// (32K-class, QMSum) workload, with the static reservation sized to each
// workload's maximum (batch size scales inversely with context).
func Fig4Utilization() (*Result, error) {
	m := model.LLM7B128KGQA() // the paper's LLM-7B-32K-GQA equivalent
	t := tablefmt.New("Fig. 4 — PIM utilization under short and long contexts (CENT, LLM-7B GQA)",
		"workload", "stage", "pim-util%", "eff-batch", "tok/s")
	cases := []struct {
		label string
		reqs  []workload.Request
		tmax  int
	}{
		{"4K", workload.ThreeSigma(4096, 7).Batch(192), 3 * 4096 / 2},
		{"32K(QMSum)", workload.NewGenerator(workload.QMSum(), 7).Batch(192), 32768},
	}
	for _, c := range cases {
		cfg := core.CENT(m, core.Baseline())
		cfg.TMaxOverride = c.tmax
		stages, err := core.IncrementalStudy(cfg, c.reqs)
		if err != nil {
			return nil, err
		}
		for _, st := range stages {
			t.AddRow(c.label, st.Stage, 100*st.Report.PIMUtil, st.Report.Batch, st.Report.Throughput)
		}
	}
	return &Result{ID: "fig4", Title: "PIM utilization preview", Tables: []*tablefmt.Table{t},
		Notes: []string{"paper: 48% utilization reduction at 32K for CENT; PIMphony restores it (effective batch 53 with DPA)"}}, nil
}

// Fig15Parallelism sweeps (TP, PP) combinations for the two Fig. 15
// workloads under baseline and full PIMphony.
func Fig15Parallelism() (*Result, error) {
	cases := []struct {
		m  model.Config
		tr workload.Trace
	}{
		{model.LLM7B32K(), workload.QMSum()},
		{model.LLM7B128KGQA(), workload.MultiFieldQA()},
	}
	t := tablefmt.New("Fig. 15 — throughput across (TP,PP) on CENT (tokens/s)",
		"model", "trace", "tp", "pp", "baseline", "pimphony")
	for _, c := range cases {
		reqs := requestPool(c.tr, 64)
		for _, par := range []struct{ tp, pp int }{{8, 1}, {4, 2}, {2, 4}, {1, 8}} {
			if c.m.Layers%par.pp != 0 || par.tp > c.m.KVHeads() {
				continue
			}
			var tput [2]float64
			for i, tech := range []core.Technique{core.Baseline(), core.PIMphony()} {
				cfg := core.CENT(c.m, tech)
				cfg.TP, cfg.PP = par.tp, par.pp
				sys, err := core.NewSystem(cfg)
				if err != nil {
					return nil, err
				}
				rep, err := sys.Serve(reqs)
				if err != nil {
					return nil, err
				}
				tput[i] = rep.Throughput
			}
			t.AddRow(c.m.Name, c.tr.Name, par.tp, par.pp, tput[0], tput[1])
		}
	}
	return &Result{ID: "fig15", Title: "Tensor vs pipeline parallelization", Tables: []*tablefmt.Table{t},
		Notes: []string{"paper: TCP lifts TP efficiency; DPA's larger batches make PP viable (20% gain for GQA)"}}, nil
}

// Fig16Energy reproduces the energy breakdowns of CENT vs CENT+PIMphony.
func Fig16Energy() (*Result, error) {
	t := tablefmt.New("Fig. 16 — attention energy breakdown per decode window (CENT)",
		"model", "system", "mac%", "io%", "background%", "else%", "attn-energy-ratio")
	for _, m := range []model.Config{model.LLM7B32K(), model.LLM7B128KGQA()} {
		tr := tracesFor(m)[0]
		reqs := requestPool(tr, 48)
		var base, full *core.Report
		for _, tech := range []core.Technique{core.Baseline(), core.PIMphony()} {
			sys, err := core.NewSystem(core.CENT(m, tech))
			if err != nil {
				return nil, err
			}
			rep, err := sys.Serve(reqs)
			if err != nil {
				return nil, err
			}
			if tech.TCP {
				full = rep
			} else {
				base = rep
			}
		}
		for _, row := range []struct {
			name string
			rep  *core.Report
		}{{"cent", base}, {"cent+pimphony", full}} {
			e := row.rep.AttnEnergy
			tot := e.Total()
			// Normalise per generated token for a fair ratio (batches differ).
			perTok := tot / float64(row.rep.Batch*row.rep.Steps)
			basePerTok := base.AttnEnergy.Total() / float64(base.Batch*base.Steps)
			t.AddRow(m.Name, row.name, 100*e.MAC/tot, 100*e.IO/tot,
				100*e.Background/tot, 100*e.Else/tot, basePerTok/perTok)
		}
	}
	return &Result{ID: "fig16", Title: "Energy breakdown", Tables: []*tablefmt.Table{t},
		Notes: []string{"paper: background share collapses 71.5% -> 13.0%; up to 3.46x attention energy reduction"}}, nil
}

// Fig17Scalability reproduces both panels: throughput vs system capacity
// at 64K mean context, and throughput vs context length (4K - 1M) at
// 512 GiB, for CENT and NeuPIMs, baseline vs PIMphony.
func Fig17Scalability() (*Result, error) {
	m := model.LLM7B128KGQA()
	capTable := tablefmt.New("Fig. 17a — throughput vs capacity (LLM-7B-128K-GQA, 64K±3σ)",
		"system", "capacity-GiB", "modules", "baseline", "pimphony", "speedup")
	type preset struct {
		name      string
		make      func(model.Config, core.Technique) core.Config
		modBytes  int64
		modsForGB func(gib int) int
		tpOnly    bool // NeuPIMs scales via pure (token-sharded) TP
	}
	presets := []preset{
		{"cent", core.CENT, 16 << 30, func(gib int) int { return gib / 16 }, false},
		{"neupims", core.NeuPIMs, 32 << 30, func(gib int) int { return gib / 32 }, true},
	}
	for _, p := range presets {
		for _, gib := range []int{128, 256, 512, 1024} {
			reqs := workload.ThreeSigma(64<<10, 9).Batch(64)
			var tput [2]float64
			for i, tech := range []core.Technique{core.Baseline(), core.PIMphony()} {
				cfg := p.make(m, tech)
				cfg.Modules = p.modsForGB(gib)
				if p.tpOnly {
					cfg.TP, cfg.PP = cfg.Modules, 1
				} else {
					cfg.TP, cfg.PP = optimalTPPP(m, cfg.Modules)
				}
				cfg.TMaxOverride = 3 * 64 << 10 / 2 // 3-sigma upper bound
				cfg.DecodeWindow = 2
				sys, err := core.NewSystem(cfg)
				if err != nil {
					return nil, err
				}
				rep, err := sys.Serve(reqs)
				if err != nil {
					return nil, err
				}
				tput[i] = rep.Throughput
			}
			capTable.AddRow(p.name, gib, p.modsForGB(gib), tput[0], tput[1], tput[1]/tput[0])
		}
	}
	ctxTable := tablefmt.New("Fig. 17b — throughput vs context length at 512 GiB (LLM-7B-128K-GQA, ±3σ)",
		"system", "context", "baseline", "pimphony", "speedup")
	for _, p := range presets {
		for _, ctx := range []int{4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20} {
			reqs := workload.ThreeSigma(ctx, 13).Batch(64)
			var tput [2]float64
			for i, tech := range []core.Technique{core.Baseline(), core.PIMphony()} {
				cfg := p.make(m, tech)
				cfg.Modules = p.modsForGB(512)
				if p.tpOnly {
					cfg.TP, cfg.PP = cfg.Modules, 1
				} else {
					cfg.TP, cfg.PP = optimalTPPP(m, cfg.Modules)
				}
				cfg.TMaxOverride = 3 * ctx / 2
				cfg.DecodeWindow = 2
				sys, err := core.NewSystem(cfg)
				if err != nil {
					return nil, err
				}
				rep, err := sys.Serve(reqs)
				if err != nil {
					return nil, err
				}
				tput[i] = rep.Throughput
			}
			ctxTable.AddRow(p.name, ctx, tput[0], tput[1], tput[1]/tput[0])
		}
	}
	return &Result{ID: "fig17", Title: "Scalability with capacity and context length",
		Tables: []*tablefmt.Table{capTable, ctxTable},
		Notes:  []string{"paper: 46.6x over CENT and 5.0x over NeuPIMs at 1M context; 2.1x even at short contexts"}}, nil
}

// optimalTPPP mirrors core's preset logic for sweeps that resize modules.
func optimalTPPP(m model.Config, modules int) (int, int) {
	tp := m.KVHeads()
	if tp > modules {
		tp = modules
	}
	for modules%tp != 0 {
		tp--
	}
	pp := modules / tp
	if pp > 1 && m.Layers%pp != 0 {
		return tp * pp, 1
	}
	return tp, pp
}

// Fig20GPUCompare reproduces the GPU comparison: A100s with
// flash-decoding + paged-attention vs memory-matched PIMphony systems.
func Fig20GPUCompare() (*Result, error) {
	cases := []struct {
		m  model.Config
		tr workload.Trace
	}{
		{model.LLM7B32K(), workload.QMSum()},
		{model.LLM72B32K(), workload.QMSum()},
		{model.LLM7B128KGQA(), workload.MultiFieldQA()},
		{model.LLM72B128KGQA(), workload.MultiFieldQA()},
	}
	t := tablefmt.New("Fig. 20 — GPU (A100+FD+PA) vs PIMphony (tokens/s, memory-matched)",
		"model", "trace", "gpu", "cent+pimphony", "neupims+pimphony", "best-vs-gpu")
	for _, c := range cases {
		reqs := requestPool(c.tr, 48)
		gpuSys, err := core.NewSystem(core.GPU(c.m))
		if err != nil {
			return nil, err
		}
		gpuRep, err := gpuSys.Serve(reqs)
		if err != nil {
			return nil, err
		}
		var pims [2]float64
		for i, mk := range []func(model.Config, core.Technique) core.Config{core.CENT, core.NeuPIMs} {
			sys, err := core.NewSystem(mk(c.m, core.PIMphony()))
			if err != nil {
				return nil, err
			}
			rep, err := sys.Serve(reqs)
			if err != nil {
				return nil, err
			}
			pims[i] = rep.Throughput
		}
		best := pims[0]
		if pims[1] > best {
			best = pims[1]
		}
		t.AddRow(c.m.Name, c.tr.Name, gpuRep.Throughput, pims[0], pims[1], best/gpuRep.Throughput)
	}
	return &Result{ID: "fig20", Title: "Throughput comparison with GPU systems", Tables: []*tablefmt.Table{t},
		Notes: []string{"paper: largest gains on non-GQA models; the GPU's FC advantage narrows the 72B gap"}}, nil
}

// AblationPrefill quantifies the prompt-processing (prefill) phase the
// decode-centric evaluation holds fixed: PIM-only systems prefill on their
// weak dense engine, which is why heterogeneous designs (NeuPIMs, Hybe)
// offload prefill to an xPU — the trade-off the paper's related work
// discusses.
func AblationPrefill() (*Result, error) {
	m := model.LLM7B32K()
	t := tablefmt.New("Ablation — prefill time per request (seconds, LLM-7B)",
		"context", "cent(pnm)", "neupims(npu)", "a100x2")
	mk := func(cfg core.Config) (*cluster.System, error) {
		return cluster.New(cfg)
	}
	centSys, err := mk(core.CENT(m, core.PIMphony()))
	if err != nil {
		return nil, err
	}
	neuSys, err := mk(core.NeuPIMs(m, core.PIMphony()))
	if err != nil {
		return nil, err
	}
	gpuSys, err := mk(core.GPU(m))
	if err != nil {
		return nil, err
	}
	for _, ctx := range []int{4 << 10, 16 << 10, 32 << 10, 128 << 10} {
		t.AddRow(ctx, centSys.PrefillSeconds(ctx), neuSys.PrefillSeconds(ctx), gpuSys.PrefillSeconds(ctx))
	}
	return &Result{ID: "abl-prefill", Title: "Prefill-phase cost across systems", Tables: []*tablefmt.Table{t},
		Notes: []string{"decode throughput (Fig. 13/14) excludes prefill; this shows why xPU+PIM splits the phases"}}, nil
}
