package experiments

import (
	"context"
	"fmt"

	"pimphony/internal/cluster"
	"pimphony/internal/core"
	"pimphony/internal/model"
	"pimphony/internal/sweep"
	"pimphony/internal/tablefmt"
	"pimphony/internal/workload"
)

// traceFor pairs each Table I model with its evaluation suite: non-GQA
// models run LongBench, GQA models run LV-Eval (Sec. VIII-A).
func tracesFor(m model.Config) []workload.Trace {
	if m.IsGQA() {
		return []workload.Trace{workload.MultiFieldQA(), workload.LoogleSD()}
	}
	return []workload.Trace{workload.QMSum(), workload.Musique()}
}

// requestPool samples a deterministic candidate pool for a trace.
func requestPool(tr workload.Trace, n int) []workload.Request {
	return workload.NewGenerator(tr, 42).Batch(n)
}

// modelTrace is one (model, trace) sweep point.
type modelTrace struct {
	m  model.Config
	tr workload.Trace
}

// modelTraceGrid crosses each model with its evaluation suite.
func modelTraceGrid(models []model.Config) []modelTrace {
	var pts []modelTrace
	for _, m := range models {
		for _, tr := range tracesFor(m) {
			pts = append(pts, modelTrace{m, tr})
		}
	}
	return pts
}

// incrementalTable runs the +TCP/+DCS/+DPA ladder for one preset across
// its traces, sweeping the independent (model, trace) points in
// parallel.
func incrementalTable(title string, preset func(model.Config, core.Technique) core.Config, models []model.Config, poolSize int) (*tablefmt.Table, error) {
	t := tablefmt.New(title,
		"model", "trace", "baseline", "+TCP", "+DCS", "+DPA", "speedup")
	rows, err := sweep.Rows(context.Background(), modelTraceGrid(models),
		func(ctx context.Context, p modelTrace) ([]any, error) {
			reqs := requestPool(p.tr, poolSize)
			stages, err := core.IncrementalStudyCtx(ctx, preset(p.m, core.Baseline()), reqs)
			if err != nil {
				return nil, fmt.Errorf("%s/%s: %w", p.m.Name, p.tr.Name, err)
			}
			tp := func(i int) float64 { return stages[i].Report.Throughput }
			return []any{p.m.Name, p.tr.Name, tp(0), tp(1), tp(2), tp(3), tp(3) / tp(0)}, nil
		})
	if err != nil {
		return nil, err
	}
	addRows(t, rows)
	return t, nil
}

// Fig13PIMOnly reproduces the PIM-only (CENT-style) throughput study:
// incremental TCP/DCS/DPA bars for all four models on their suites.
func Fig13PIMOnly() (*Result, error) {
	t, err := incrementalTable("Fig. 13 — PIM-only throughput (tokens/s), optimal TP/PP",
		core.CENT, sweepModels(), pool(64))
	if err != nil {
		return nil, err
	}
	return &Result{ID: "fig13", Title: "PIM-only system throughput", Tables: []*tablefmt.Table{t},
		Notes: []string{"paper: 2.1-4.5x on non-GQA 32K models, up to 11.3x on GQA 128K models"}}, nil
}

// Fig14XPUPIM reproduces the xPU+PIM (NeuPIMs-style) throughput study.
func Fig14XPUPIM() (*Result, error) {
	t, err := incrementalTable("Fig. 14 — xPU+PIM throughput (tokens/s), optimal TP/PP",
		core.NeuPIMs, sweepModels(), pool(64))
	if err != nil {
		return nil, err
	}
	return &Result{ID: "fig14", Title: "xPU+PIM system throughput", Tables: []*tablefmt.Table{t},
		Notes: []string{"paper: up to 8.4x; DPA matters most here (larger batches feed the NPU)"}}, nil
}

// Fig4Utilization reproduces the PIM-utilization preview: CENT vs the
// incremental PIMphony stages under a short (4K-class) and a long
// (32K-class, QMSum) workload, with the static reservation sized to each
// workload's maximum (batch size scales inversely with context).
func Fig4Utilization() (*Result, error) {
	m := model.LLM7B128KGQA() // the paper's LLM-7B-32K-GQA equivalent
	t := tablefmt.New("Fig. 4 — PIM utilization under short and long contexts (CENT, LLM-7B GQA)",
		"workload", "stage", "pim-util%", "eff-batch", "tok/s")
	type utilCase struct {
		label string
		reqs  []workload.Request
		tmax  int
	}
	cases := []utilCase{
		{"4K", workload.ThreeSigma(4096, 7).Batch(pool(192)), 3 * 4096 / 2},
		{"32K(QMSum)", workload.NewGenerator(workload.QMSum(), 7).Batch(pool(192)), 32768},
	}
	groups, err := sweep.RowGroups(context.Background(), cases,
		func(ctx context.Context, c utilCase) ([][]any, error) {
			cfg := core.CENT(m, core.Baseline())
			cfg.TMaxOverride = c.tmax
			stages, err := core.IncrementalStudyCtx(ctx, cfg, c.reqs)
			if err != nil {
				return nil, err
			}
			var rows [][]any
			for _, st := range stages {
				rows = append(rows, []any{c.label, st.Stage, 100 * st.Report.PIMUtil, st.Report.Batch, st.Report.Throughput})
			}
			return rows, nil
		})
	if err != nil {
		return nil, err
	}
	addRowGroups(t, groups)
	return &Result{ID: "fig4", Title: "PIM utilization preview", Tables: []*tablefmt.Table{t},
		Notes: []string{"paper: 48% utilization reduction at 32K for CENT; PIMphony restores it (effective batch 53 with DPA)"}}, nil
}

// Fig15Parallelism sweeps (TP, PP) combinations for the two Fig. 15
// workloads under baseline and full PIMphony.
func Fig15Parallelism() (*Result, error) {
	cases := []modelTrace{
		{model.LLM7B32K(), workload.QMSum()},
		{model.LLM7B128KGQA(), workload.MultiFieldQA()},
	}
	parGrid := []struct{ tp, pp int }{{8, 1}, {4, 2}, {2, 4}, {1, 8}}
	if Short() {
		parGrid = []struct{ tp, pp int }{{8, 1}, {1, 8}}
	}
	type point struct {
		modelTrace
		tp, pp int
		reqs   []workload.Request // shared read-only across the case's points
	}
	var pts []point
	for _, c := range cases {
		reqs := requestPool(c.tr, pool(64))
		for _, par := range parGrid {
			if c.m.Layers%par.pp != 0 || par.tp > c.m.KVHeads() {
				continue
			}
			pts = append(pts, point{c, par.tp, par.pp, reqs})
		}
	}
	t := tablefmt.New("Fig. 15 — throughput across (TP,PP) on CENT (tokens/s)",
		"model", "trace", "tp", "pp", "baseline", "pimphony")
	rows, err := sweep.Rows(context.Background(), pts,
		func(ctx context.Context, p point) ([]any, error) {
			reqs := p.reqs
			var tput [2]float64
			for i, tech := range []core.Technique{core.Baseline(), core.PIMphony()} {
				cfg := core.CENT(p.m, tech)
				cfg.TP, cfg.PP = p.tp, p.pp
				sys, err := core.NewSystem(cfg)
				if err != nil {
					return nil, err
				}
				rep, err := sys.ServeCtx(ctx, reqs)
				if err != nil {
					return nil, err
				}
				tput[i] = rep.Throughput
			}
			return []any{p.m.Name, p.tr.Name, p.tp, p.pp, tput[0], tput[1]}, nil
		})
	if err != nil {
		return nil, err
	}
	addRows(t, rows)
	return &Result{ID: "fig15", Title: "Tensor vs pipeline parallelization", Tables: []*tablefmt.Table{t},
		Notes: []string{"paper: TCP lifts TP efficiency; DPA's larger batches make PP viable (20% gain for GQA)"}}, nil
}

// Fig16Energy reproduces the energy breakdowns of CENT vs CENT+PIMphony.
func Fig16Energy() (*Result, error) {
	t := tablefmt.New("Fig. 16 — attention energy breakdown per decode window (CENT)",
		"model", "system", "mac%", "io%", "background%", "else%", "attn-energy-ratio")
	models := []model.Config{model.LLM7B32K(), model.LLM7B128KGQA()}
	groups, err := sweep.RowGroups(context.Background(), models,
		func(ctx context.Context, m model.Config) ([][]any, error) {
			tr := tracesFor(m)[0]
			reqs := requestPool(tr, pool(48))
			var base, full *core.Report
			for _, tech := range []core.Technique{core.Baseline(), core.PIMphony()} {
				sys, err := core.NewSystem(core.CENT(m, tech))
				if err != nil {
					return nil, err
				}
				rep, err := sys.ServeCtx(ctx, reqs)
				if err != nil {
					return nil, err
				}
				if tech.TCP {
					full = rep
				} else {
					base = rep
				}
			}
			var rows [][]any
			for _, row := range []struct {
				name string
				rep  *core.Report
			}{{"cent", base}, {"cent+pimphony", full}} {
				e := row.rep.AttnEnergy
				tot := e.Total()
				// Normalise per generated token for a fair ratio (batches differ).
				perTok := tot / float64(row.rep.Batch*row.rep.Steps)
				basePerTok := base.AttnEnergy.Total() / float64(base.Batch*base.Steps)
				rows = append(rows, []any{m.Name, row.name, 100 * e.MAC / tot, 100 * e.IO / tot,
					100 * e.Background / tot, 100 * e.Else / tot, basePerTok / perTok})
			}
			return rows, nil
		})
	if err != nil {
		return nil, err
	}
	addRowGroups(t, groups)
	return &Result{ID: "fig16", Title: "Energy breakdown", Tables: []*tablefmt.Table{t},
		Notes: []string{"paper: background share collapses 71.5% -> 13.0%; up to 3.46x attention energy reduction"}}, nil
}

// fig17Preset describes one Fig. 17 system family.
type fig17Preset struct {
	name      string
	make      func(model.Config, core.Technique) core.Config
	modBytes  int64
	modsForGB func(gib int) int
	tpOnly    bool // NeuPIMs scales via pure (token-sharded) TP
}

func fig17Presets() []fig17Preset {
	return []fig17Preset{
		{"cent", core.CENT, 16 << 30, func(gib int) int { return gib / 16 }, false},
		{"neupims", core.NeuPIMs, 32 << 30, func(gib int) int { return gib / 32 }, true},
	}
}

// fig17Pair runs one sweep point under baseline and full PIMphony. The
// two techniques are themselves independent simulations, so they nest
// another level of fan-out (halving the critical path of the slowest
// long-context points).
func fig17Pair(ctx context.Context, m model.Config, p fig17Preset, modules, tmax int, reqs []workload.Request) ([2]float64, error) {
	tputs, err := sweep.Run(ctx, []core.Technique{core.Baseline(), core.PIMphony()},
		func(ctx context.Context, tech core.Technique) (float64, error) {
			cfg := p.make(m, tech)
			cfg.Modules = modules
			if p.tpOnly {
				cfg.TP, cfg.PP = cfg.Modules, 1
			} else {
				cfg.TP, cfg.PP = optimalTPPP(m, cfg.Modules)
			}
			cfg.TMaxOverride = tmax
			cfg.DecodeWindow = 2
			sys, err := core.NewSystem(cfg)
			if err != nil {
				return 0, err
			}
			rep, err := sys.ServeCtx(ctx, reqs)
			if err != nil {
				return 0, err
			}
			return rep.Throughput, nil
		})
	if err != nil {
		return [2]float64{}, err
	}
	return [2]float64{tputs[0], tputs[1]}, nil
}

// Fig17Scalability reproduces both panels: throughput vs system capacity
// at 64K mean context, and throughput vs context length (4K - 1M) at
// 512 GiB, for CENT and NeuPIMs, baseline vs PIMphony.
func Fig17Scalability() (*Result, error) {
	m := model.LLM7B128KGQA()
	capTable := tablefmt.New("Fig. 17a — throughput vs capacity (LLM-7B-128K-GQA, 64K±3σ)",
		"system", "capacity-GiB", "modules", "baseline", "pimphony", "speedup")
	gibGrid := []int{128, 256, 512, 1024}
	ctxGrid := []int{4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20}
	if Short() {
		gibGrid = []int{128}
		ctxGrid = []int{4 << 10, 16 << 10}
	}
	ctxTable := tablefmt.New("Fig. 17b — throughput vs context length at 512 GiB (LLM-7B-128K-GQA, ±3σ)",
		"system", "context", "baseline", "pimphony", "speedup")
	// Both panels fan out through ONE sweep so the expensive long-context
	// points pack against the cheap capacity points on the worker pool;
	// the first len(capacity grid) results route to Fig. 17a, the rest to
	// Fig. 17b (result order is input order).
	type f17Point struct {
		p     fig17Preset
		isCap bool
		gib   int // capacity panel
		ctx   int // context panel
	}
	var pts []f17Point
	for _, p := range fig17Presets() {
		for _, gib := range gibGrid {
			pts = append(pts, f17Point{p: p, isCap: true, gib: gib})
		}
	}
	capPoints := len(pts)
	for _, p := range fig17Presets() {
		for _, ctx := range ctxGrid {
			pts = append(pts, f17Point{p: p, ctx: ctx})
		}
	}
	rows, err := sweep.Rows(context.Background(), pts,
		func(ctx context.Context, pt f17Point) ([]any, error) {
			if pt.isCap {
				reqs := workload.ThreeSigma(64<<10, 9).Batch(pool(64))
				tput, err := fig17Pair(ctx, m, pt.p, pt.p.modsForGB(pt.gib), 3*64<<10/2, reqs)
				if err != nil {
					return nil, err
				}
				return []any{pt.p.name, pt.gib, pt.p.modsForGB(pt.gib), tput[0], tput[1], tput[1] / tput[0]}, nil
			}
			reqs := workload.ThreeSigma(pt.ctx, 13).Batch(pool(64))
			tput, err := fig17Pair(ctx, m, pt.p, pt.p.modsForGB(512), 3*pt.ctx/2, reqs)
			if err != nil {
				return nil, err
			}
			return []any{pt.p.name, pt.ctx, tput[0], tput[1], tput[1] / tput[0]}, nil
		})
	if err != nil {
		return nil, err
	}
	addRows(capTable, rows[:capPoints])
	addRows(ctxTable, rows[capPoints:])
	return &Result{ID: "fig17", Title: "Scalability with capacity and context length",
		Tables: []*tablefmt.Table{capTable, ctxTable},
		Notes:  []string{"paper: 46.6x over CENT and 5.0x over NeuPIMs at 1M context; 2.1x even at short contexts"}}, nil
}

// optimalTPPP mirrors core's preset logic for sweeps that resize modules.
func optimalTPPP(m model.Config, modules int) (int, int) {
	tp := m.KVHeads()
	if tp > modules {
		tp = modules
	}
	for modules%tp != 0 {
		tp--
	}
	pp := modules / tp
	if pp > 1 && m.Layers%pp != 0 {
		return tp * pp, 1
	}
	return tp, pp
}

// Fig20GPUCompare reproduces the GPU comparison: A100s with
// flash-decoding + paged-attention vs memory-matched PIMphony systems.
func Fig20GPUCompare() (*Result, error) {
	cases := []modelTrace{
		{model.LLM7B32K(), workload.QMSum()},
		{model.LLM72B32K(), workload.QMSum()},
		{model.LLM7B128KGQA(), workload.MultiFieldQA()},
		{model.LLM72B128KGQA(), workload.MultiFieldQA()},
	}
	if Short() {
		cases = []modelTrace{
			{model.LLM7B32K(), workload.QMSum()},
			{model.LLM7B128KGQA(), workload.MultiFieldQA()},
		}
	}
	t := tablefmt.New("Fig. 20 — GPU (A100+FD+PA) vs PIMphony (tokens/s, memory-matched)",
		"model", "trace", "gpu", "cent+pimphony", "neupims+pimphony", "best-vs-gpu")
	rows, err := sweep.Rows(context.Background(), cases,
		func(ctx context.Context, c modelTrace) ([]any, error) {
			reqs := requestPool(c.tr, pool(48))
			gpuSys, err := core.NewSystem(core.GPU(c.m))
			if err != nil {
				return nil, err
			}
			gpuRep, err := gpuSys.ServeCtx(ctx, reqs)
			if err != nil {
				return nil, err
			}
			var pims [2]float64
			for i, mk := range []func(model.Config, core.Technique) core.Config{core.CENT, core.NeuPIMs} {
				sys, err := core.NewSystem(mk(c.m, core.PIMphony()))
				if err != nil {
					return nil, err
				}
				rep, err := sys.ServeCtx(ctx, reqs)
				if err != nil {
					return nil, err
				}
				pims[i] = rep.Throughput
			}
			best := pims[0]
			if pims[1] > best {
				best = pims[1]
			}
			return []any{c.m.Name, c.tr.Name, gpuRep.Throughput, pims[0], pims[1], best / gpuRep.Throughput}, nil
		})
	if err != nil {
		return nil, err
	}
	addRows(t, rows)
	return &Result{ID: "fig20", Title: "Throughput comparison with GPU systems", Tables: []*tablefmt.Table{t},
		Notes: []string{"paper: largest gains on non-GQA models; the GPU's FC advantage narrows the 72B gap"}}, nil
}

// SystemsCompare prices every registered system backend — PIM-only
// (CENT), xPU+PIM (NeuPIMs), the A100 GPU baseline, and the DIMM-PIM
// (L3/LoL-PIM-style) organisation — on the shared (model, trace) grid,
// with full PIMphony techniques wherever PIM attention applies. The
// column set is derived from the backend registry, so a newly
// registered backend appears here without touching the driver.
func SystemsCompare() (*Result, error) {
	presets := core.Presets()
	headers := []string{"model", "trace"}
	for _, p := range presets {
		headers = append(headers, p.Backend)
	}
	headers = append(headers, "best-vs-gpu")
	t := tablefmt.New("Systems — decode throughput (tokens/s) across registered backends (PIMphony techniques where applicable)",
		headers...)
	rows, err := sweep.Rows(context.Background(), modelTraceGrid(sweepModels()),
		func(ctx context.Context, p modelTrace) ([]any, error) {
			reqs := requestPool(p.tr, pool(48))
			tputs, err := sweep.Run(ctx, presets, func(ctx context.Context, pr core.Preset) (float64, error) {
				sys, err := core.NewSystem(pr.Make(p.m, core.PIMphony()))
				if err != nil {
					return 0, err
				}
				rep, err := sys.ServeCtx(ctx, reqs)
				if err != nil {
					return 0, err
				}
				return rep.Throughput, nil
			})
			if err != nil {
				return nil, fmt.Errorf("%s/%s: %w", p.m.Name, p.tr.Name, err)
			}
			row := []any{p.m.Name, p.tr.Name}
			var gpuTput, best float64
			for i, pr := range presets {
				row = append(row, tputs[i])
				if pr.Backend == cluster.GPUSystem {
					gpuTput = tputs[i]
				} else if tputs[i] > best {
					best = tputs[i]
				}
			}
			row = append(row, best/gpuTput)
			return row, nil
		})
	if err != nil {
		return nil, err
	}
	addRows(t, rows)
	return &Result{ID: "systems", Title: "Cross-backend system comparison", Tables: []*tablefmt.Table{t},
		Notes: []string{
			"columns follow the backend registry; dimm-pim trades internal bandwidth per GiB for an all-KV DIMM pool (weights on the host GPU)",
			"gpu throughput can exceed the PIM systems on short-context non-GQA mixes where FC dominates; the PIM backends win as attention bytes take over",
		}}, nil
}

// AblationPrefill quantifies the prompt-processing (prefill) phase the
// decode-centric evaluation holds fixed: PIM-only systems prefill on their
// weak dense engine, which is why heterogeneous designs (NeuPIMs, Hybe)
// offload prefill to an xPU — the trade-off the paper's related work
// discusses.
func AblationPrefill() (*Result, error) {
	m := model.LLM7B32K()
	t := tablefmt.New("Ablation — prefill time per request (seconds, LLM-7B)",
		"context", "cent(pnm)", "neupims(npu)", "a100x2")
	mk := func(cfg core.Config) (*cluster.System, error) {
		return cluster.New(cfg)
	}
	centSys, err := mk(core.CENT(m, core.PIMphony()))
	if err != nil {
		return nil, err
	}
	neuSys, err := mk(core.NeuPIMs(m, core.PIMphony()))
	if err != nil {
		return nil, err
	}
	gpuSys, err := mk(core.GPU(m))
	if err != nil {
		return nil, err
	}
	rows, err := sweep.Rows(context.Background(), []int{4 << 10, 16 << 10, 32 << 10, 128 << 10},
		func(_ context.Context, ctx int) ([]any, error) {
			return []any{ctx, centSys.PrefillSeconds(ctx), neuSys.PrefillSeconds(ctx), gpuSys.PrefillSeconds(ctx)}, nil
		})
	if err != nil {
		return nil, err
	}
	addRows(t, rows)
	return &Result{ID: "abl-prefill", Title: "Prefill-phase cost across systems", Tables: []*tablefmt.Table{t},
		Notes: []string{"decode throughput (Fig. 13/14) excludes prefill; this shows why xPU+PIM splits the phases"}}, nil
}
