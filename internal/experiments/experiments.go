// Package experiments contains one driver per table and figure of the
// paper's evaluation. Every driver returns a Result whose table prints the
// same rows/series the paper reports; the drivers are shared by the
// repository-level benchmark harness (bench_test.go) and the
// cmd/pimphony-bench binary. docs/EXPERIMENTS.md catalogs every
// registered experiment and defines every table metric; paper-vs-measured
// commentary lives in each driver's Notes.
package experiments

import (
	"fmt"
	"sort"
	"sync/atomic"

	"pimphony/internal/model"
	"pimphony/internal/tablefmt"
)

// shortMode selects the scaled-down experiment grids. The full grids
// reproduce every row of the paper's tables; the short grids keep the
// same row *shapes* on smaller request pools and fewer sweep points so
// the -short CI lane finishes in seconds. Tests enable it from
// testing.Short().
var shortMode atomic.Bool

// SetShort toggles the scaled-down grids and returns the previous
// setting so callers can restore it.
func SetShort(v bool) bool { return shortMode.Swap(v) }

// Short reports whether the scaled-down grids are active.
func Short() bool { return shortMode.Load() }

// pool scales a candidate-request-pool size for the active grid.
func pool(full int) int {
	if !Short() {
		return full
	}
	n := full / 8
	if n < 8 {
		n = 8
	}
	return n
}

// sweepModels is the model grid for the system studies: all four Table I
// models in full mode, the two 7B-class models in short mode (the
// 72B-class systems are the expensive 32-module simulations).
func sweepModels() []model.Config {
	if Short() {
		return []model.Config{model.LLM7B32K(), model.LLM7B128KGQA()}
	}
	return model.All()
}

// Result is one experiment's outcome.
type Result struct {
	ID     string
	Title  string
	Tables []*tablefmt.Table
	Notes  []string
}

// String renders the result.
func (r *Result) String() string {
	s := fmt.Sprintf("### %s — %s\n", r.ID, r.Title)
	for _, t := range r.Tables {
		s += t.String() + "\n"
	}
	for _, n := range r.Notes {
		s += "note: " + n + "\n"
	}
	return s
}

// Runner produces a Result.
type Runner func() (*Result, error)

// entry is one registered experiment: its driver plus the one-line
// description the CLI -list flags print.
type entry struct {
	run  Runner
	desc string
}

// registry maps experiment IDs to their drivers and descriptions.
var registry = map[string]entry{
	"tab1":  {Table1Models, "Table I model specifications and derived weight/KV footprints"},
	"tab2":  {Table2Workloads, "Table II context-length statistics of the evaluated traces"},
	"tab4":  {Table4Configs, "Table IV module configurations of the evaluated systems"},
	"fig2":  {Fig2Motivation, "compute intensity and memory footprint vs context length (motivation)"},
	"fig4":  {Fig4Utilization, "PIM utilization at short vs long context, CENT vs PIMphony stages"},
	"fig6":  {Fig6Partitioning, "HFP vs TCP channel activity under TP and PP"},
	"fig7":  {Fig7DCSExample, "the worked scheduling example: 34 cycles static, 22 DCS"},
	"fig8":  {Fig8Breakdown, "static-controller latency breakdown across matrix dimensions"},
	"fig9":  {Fig9AttnBreakdown, "QK^T/SV breakdown with and without DCS under row-reuse"},
	"fig10": {Fig10InstrFootprint, "static vs DPA instruction footprint vs context length"},
	"fig13": {Fig13PIMOnly, "PIM-only (CENT) throughput with incremental TCP/DCS/DPA"},
	"fig14": {Fig14XPUPIM, "xPU+PIM (NeuPIMs) throughput with incremental TCP/DCS/DPA"},
	"fig15": {Fig15Parallelism, "throughput across (TP,PP) splits on CENT"},
	"fig16": {Fig16Energy, "attention energy breakdown, CENT vs CENT+PIMphony"},
	"fig17": {Fig17Scalability, "throughput vs system capacity and vs context length (4K-1M)"},
	"fig18": {Fig18PingPong, "DCS vs ping-pong buffering compute utilization"},
	"fig19": {Fig19Capacity, "KV capacity utilization, static reservation vs DPA"},
	"fig20": {Fig20GPUCompare, "A100 GPU baseline vs memory-matched PIMphony systems"},

	// Cross-backend studies over the system-backend registry.
	"systems": {SystemsCompare, "all registered backends (pim-only, xpu+pim, gpu, dimm-pim) on shared workloads"},

	// Online serving studies beyond the paper's batch evaluation.
	"serve":      {ServeCurve, "online latency-throughput curve under TTFT/TBT SLOs"},
	"capacity":   {CapacityGap, "online Static-vs-DPA capacity gap at an equal KV budget"},
	"fleet":      {FleetCompare, "homogeneous vs disaggregated prefill/decode fleets at equal KV budget"},
	"autoscale":  {AutoscaleStudy, "fixed vs SLO-driven autoscaled fleet under bursty traffic, goodput per dollar"},
	"megafleet":  {MegafleetScale, "scheduler scaling from 100 to 10k autoscaled replicas under a diurnal trace"},
	"resilience": {ResilienceStudy, "goodput retained and retry economics under replica crashes, fixed vs autoscaled"},

	// Design-choice ablations beyond the paper's figures.
	"abl-ismac":   {AblationIsMAC, "MAC-command issue-interval sensitivity"},
	"abl-obuf":    {AblationOBufDepth, "output-buffer depth sensitivity"},
	"abl-chunk":   {AblationChunkSize, "DPA allocation chunk-size sensitivity"},
	"abl-tcp":     {AblationTCPReduce, "TCP reduction-cost sensitivity"},
	"abl-prefill": {AblationPrefill, "prefill-phase cost across system backends"},
}

// IDs returns all experiment identifiers in sorted order.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Description returns an experiment's one-line description ("" for
// unknown IDs).
func Description(id string) string { return registry[id].desc }

// Run executes one experiment by ID.
func Run(id string) (*Result, error) {
	e, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown id %q (known: %v)", id, IDs())
	}
	return e.run()
}
