// Package experiments contains one driver per table and figure of the
// paper's evaluation. Every driver returns a Result whose table prints the
// same rows/series the paper reports; the drivers are shared by the
// repository-level benchmark harness (bench_test.go) and the
// cmd/pimphony-bench binary, and EXPERIMENTS.md records paper-vs-measured
// values for each.
package experiments

import (
	"fmt"
	"sort"
	"sync/atomic"

	"pimphony/internal/model"
	"pimphony/internal/tablefmt"
)

// shortMode selects the scaled-down experiment grids. The full grids
// reproduce every row of the paper's tables; the short grids keep the
// same row *shapes* on smaller request pools and fewer sweep points so
// the -short CI lane finishes in seconds. Tests enable it from
// testing.Short().
var shortMode atomic.Bool

// SetShort toggles the scaled-down grids and returns the previous
// setting so callers can restore it.
func SetShort(v bool) bool { return shortMode.Swap(v) }

// Short reports whether the scaled-down grids are active.
func Short() bool { return shortMode.Load() }

// pool scales a candidate-request-pool size for the active grid.
func pool(full int) int {
	if !Short() {
		return full
	}
	n := full / 8
	if n < 8 {
		n = 8
	}
	return n
}

// sweepModels is the model grid for the system studies: all four Table I
// models in full mode, the two 7B-class models in short mode (the
// 72B-class systems are the expensive 32-module simulations).
func sweepModels() []model.Config {
	if Short() {
		return []model.Config{model.LLM7B32K(), model.LLM7B128KGQA()}
	}
	return model.All()
}

// Result is one experiment's outcome.
type Result struct {
	ID     string
	Title  string
	Tables []*tablefmt.Table
	Notes  []string
}

// String renders the result.
func (r *Result) String() string {
	s := fmt.Sprintf("### %s — %s\n", r.ID, r.Title)
	for _, t := range r.Tables {
		s += t.String() + "\n"
	}
	for _, n := range r.Notes {
		s += "note: " + n + "\n"
	}
	return s
}

// Runner produces a Result.
type Runner func() (*Result, error)

// registry maps experiment IDs to runners.
var registry = map[string]Runner{
	"tab1":  Table1Models,
	"tab2":  Table2Workloads,
	"tab4":  Table4Configs,
	"fig2":  Fig2Motivation,
	"fig4":  Fig4Utilization,
	"fig6":  Fig6Partitioning,
	"fig7":  Fig7DCSExample,
	"fig8":  Fig8Breakdown,
	"fig9":  Fig9AttnBreakdown,
	"fig10": Fig10InstrFootprint,
	"fig13": Fig13PIMOnly,
	"fig14": Fig14XPUPIM,
	"fig15": Fig15Parallelism,
	"fig16": Fig16Energy,
	"fig17": Fig17Scalability,
	"fig18": Fig18PingPong,
	"fig19": Fig19Capacity,
	"fig20": Fig20GPUCompare,

	// Online serving studies beyond the paper's batch evaluation.
	"serve":    ServeCurve,
	"capacity": CapacityGap,

	// Design-choice ablations beyond the paper's figures.
	"abl-ismac":   AblationIsMAC,
	"abl-obuf":    AblationOBufDepth,
	"abl-chunk":   AblationChunkSize,
	"abl-tcp":     AblationTCPReduce,
	"abl-prefill": AblationPrefill,
}

// IDs returns all experiment identifiers in sorted order.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Run executes one experiment by ID.
func Run(id string) (*Result, error) {
	r, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown id %q (known: %v)", id, IDs())
	}
	return r()
}
