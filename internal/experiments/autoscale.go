package experiments

import (
	"context"
	"fmt"

	"pimphony/internal/core"
	"pimphony/internal/model"
	"pimphony/internal/serve"
	"pimphony/internal/tablefmt"
	"pimphony/internal/workload"
)

// autoscaleWarmup is the provisioning delay a scaled-up replica pays
// (weight loading and pool initialisation for a CENT module stack): a
// compressed stand-in for the minutes real fleets pay, matching the
// compressed day curve below.
const autoscaleWarmup = 2.0

// autoscaleRate is the time-averaged offered load of both traffic
// patterns — high enough that one replica saturates at the peaks, low
// enough that the fixed four-replica fleet idles through the valleys,
// which is exactly the gap an autoscaler monetises.
const autoscaleRate = 3.0

// autoscaleArrivals builds one of the study's bursty schedules via the
// -arrivals flag grammar: a compressed diurnal day curve (one 60 s
// "day", 90% amplitude) and a two-state MMPP burst process (6x rate
// bursts dwelling ~8 s). Both time-average to autoscaleRate, so the
// fixed/autoscaled comparison is at equal offered work.
func autoscaleArrivals(flag string, n int) func() ([]workload.Arrival, error) {
	return func() ([]workload.Arrival, error) {
		// Short prompts (256-2K) keep the colocated CENT prefill under
		// ~2 s each, so the TTFT budget is attainable and the study
		// isolates provisioning economics rather than prefill latency
		// (the fleet study covers that axis).
		gen, err := workload.HeavyTailed(256, 2048, 1.2, 52)
		if err != nil {
			return nil, err
		}
		gen.DecodeLen = fleetDecodeLen
		return workload.ArrivalsByFlag(flag, gen, autoscaleRate, 4, n, 53)
	}
}

// AutoscaleStudy is the provisioning-economics study: a four-replica
// CENT+PIMphony fleet serving bursty diurnal and MMPP traffic, fixed
// (all replicas online for the whole run) versus SLO-driven autoscaled
// (one replica always on, the rest provisioned against TTFT pressure
// with a warm-up and drained when idle). Goodput per dollar is the
// headline: the autoscaled fleet gives up a little SLO attainment at
// burst fronts (capacity arrives a warm-up late) and buys back the
// valley hours the fixed fleet pays for idle replicas.
func AutoscaleStudy() (*Result, error) {
	m := model.LLM7B32K()
	n := pool(64)
	specs := func() []serve.ReplicaSpec {
		cfg := core.CENT(m, core.PIMphony())
		cfg.KVBudgetBytes = fleetBudgetBytes / 4
		return []serve.ReplicaSpec{{
			System: cfg, Count: 4, Role: serve.RoleUnified,
			Min: 1, WarmupSeconds: autoscaleWarmup,
		}}
	}
	patterns := []struct{ name, flag string }{
		{"diurnal", "diurnal:60:0.9"},
		{"mmpp", "mmpp:6:8"},
	}
	var pts []serve.AutoscalePoint
	for _, p := range patterns {
		for _, mode := range []string{"", "slo"} {
			pts = append(pts, serve.AutoscalePoint{
				Name:           p.name,
				Specs:          specs(),
				AutoscalerName: mode,
				// Round-robin spreads burst fronts across the colocated
				// prefill servers; kv-headroom ties to the lowest index
				// until KV diverges and serializes them on one replica.
				PlacementName: "round-robin-fit",
				Arrivals:      autoscaleArrivals(p.flag, n),
			})
		}
	}
	slo := serve.SLO{TTFT: 2.5, TBT: 0.025}
	t, err := serve.AutoscaleTable(context.Background(),
		fmt.Sprintf("Autoscale — fixed vs SLO-driven fleet under bursty traffic (%s, 4x%d GiB CENT+PIMphony, ctx 256-2K, decode %d, %d reqs @ %g req/s avg, warm-up %gs, SLO ttft<=2.5s tbt<=25ms; ttft-p95 in ms)",
			m.Name, (fleetBudgetBytes/4)>>30, fleetDecodeLen, n, autoscaleRate, autoscaleWarmup),
		pts, slo)
	if err != nil {
		return nil, err
	}
	return &Result{
		ID:     "autoscale",
		Title:  "SLO-driven fleet autoscaling under bursty diurnal traffic",
		Tables: []*tablefmt.Table{t},
		Notes: []string{
			"avg-onl is the time-weighted online replica count; the fixed fleet pays for 4 replicas across the whole makespan, the autoscaled one for the provision-to-drain integral (Report.Energy.ReplicaSeconds)",
			"goodtok/$ divides SLO-compliant tokens by provisioning + grid-energy dollars — the axis where draining idle valley capacity beats holding peak capacity online",
			"scale-ups pay a warm-up before capacity lands, so the autoscaled rows trade ttft-p95 and slo-met% at burst fronts for the dollars saved in the valleys: the trade wins on the predictable diurnal curve and loses on memoryless MMPP bursts, where reactive provisioning is always a warm-up behind the burst front",
			"arrival grammars: diurnal:<period-s>[:<amp>] thins a peak-rate Poisson stream along a sinusoidal day curve; mmpp:<burst>[:<dwell-s>] switches between burst and lull rates with exponential dwells (internal/workload, -arrivals flag)",
		},
	}, nil
}
