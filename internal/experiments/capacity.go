package experiments

import (
	"context"
	"fmt"

	"pimphony/internal/core"
	"pimphony/internal/model"
	"pimphony/internal/serve"
	"pimphony/internal/tablefmt"
	"pimphony/internal/workload"
)

// capacityBudgetBytes is the per-replica KV budget the Static-vs-DPA
// comparison runs at. It is deliberately tight: static T_max
// reservation (16 GiB per request at the 32K window of LLM-7B) can hold
// only two concurrent requests in it, while DPA packs requests by their
// actual KV footprint.
const capacityBudgetBytes = 32 << 30

// capacityGrid returns the (rate, replica) grid of the capacity study.
func capacityGrid() (rates []float64, replicas []int) {
	if Short() {
		return []float64{96}, []int{1}
	}
	return []float64{8, 32, 96}, []int{1}
}

// capacityArrivals builds the heavy-tailed single-turn schedule: most
// prompts are a few thousand tokens with a fat Pareto tail reaching
// the context window — the mix where static reservation strands the
// most capacity — while every request decodes for the same long
// window (see the DecodeLen comment below).
func capacityArrivals(n int) func(rate float64) ([]workload.Arrival, error) {
	return func(rate float64) ([]workload.Arrival, error) {
		gen, err := workload.HeavyTailed(2048, 30000, 1.1, 42)
		if err != nil {
			return nil, err
		}
		// A long uniform decode phase: every admitted request keeps
		// growing its KV for 256 steps, so under a tight pool DPA's
		// over-admission actually runs out of chunks mid-decode (short
		// heavy-tailed decodes complete early and refill the free list
		// before growth can exhaust it).
		gen.DecodeLen = 256
		return workload.PoissonArrivals(gen, rate, 8, n, 43)
	}
}

// CapacityGap is the online Static-vs-DPA capacity study — the serving
// counterpart of Fig. 19. Both schemes serve identical heavy-tailed
// long-context schedules at the same per-replica KV budget; the table
// shows the admission gap (max concurrent requests), the preemption and
// admission-blocked costs DPA pays for lazy growth, and how the gap
// translates into the latency–goodput margin LoL-PIM-style serving
// systems optimise for. A second table replays multi-turn conversations
// whose contexts re-extend every turn.
func CapacityGap() (*Result, error) {
	m := model.LLM7B32K()
	sysCfg := core.CENT(m, core.PIMphony())
	sysCfg.KVBudgetBytes = capacityBudgetBytes
	rates, replicas := capacityGrid()
	var pts []serve.CapacityPoint
	for _, alloc := range []string{"static", "dpa"} {
		for _, r := range replicas {
			for _, rate := range rates {
				pts = append(pts, serve.CapacityPoint{Alloc: alloc, Replicas: r, Rate: rate})
			}
		}
	}
	slo := serve.SLO{TTFT: 0.05, TBT: 0.025}
	nReqs := pool(64)
	single, err := serve.CapacityTable(context.Background(),
		fmt.Sprintf("Capacity — Static vs DPA at a %d GiB/replica KV budget (CENT, %s, heavy-tailed ctx 2K-30K, decode 256, %d reqs, SLO ttft<=50ms tbt<=25ms; latencies in ms)",
			capacityBudgetBytes>>30, m.Name, nReqs),
		sysCfg, "round-robin", pts, slo, capacityArrivals(nReqs))
	if err != nil {
		return nil, err
	}

	// Multi-turn conversations: each follow-up turn re-sends the grown
	// context, so a session's KV re-extends turn over turn.
	sessions := pool(16)
	mkMulti := func(rate float64) ([]workload.Arrival, error) {
		gen, err := workload.HeavyTailed(2048, 16000, 1.1, 44)
		if err != nil {
			return nil, err
		}
		gen.DecodeLen = 64
		return workload.MultiTurnArrivals(gen, workload.MultiTurnSpec{
			Sessions:  sessions,
			Turns:     3,
			Rate:      rate,
			ThinkMean: 0.2,
			PromptMin: 64,
			PromptMax: 512,
			// Leave decode headroom below the 32K window.
			MaxContext: m.ContextWindow - 128,
		}, 45)
	}
	var mpts []serve.CapacityPoint
	for _, alloc := range []string{"static", "dpa"} {
		mpts = append(mpts, serve.CapacityPoint{Alloc: alloc, Replicas: 1, Rate: rates[len(rates)-1]})
	}
	multi, err := serve.CapacityTable(context.Background(),
		fmt.Sprintf("Capacity — multi-turn sessions (%d sessions x 3 turns, contexts re-extend per turn, same %d GiB budget)",
			sessions, capacityBudgetBytes>>30),
		sysCfg, "session", mpts, slo, mkMulti)
	if err != nil {
		return nil, err
	}
	// DIMM-PIM replica at the same budget and schedule: the backend's
	// all-KV DIMM pool changes the pricing (host-GPU FC, DIMM-rank
	// attention) but not the allocator physics, so the static-vs-DPA
	// gap must reproduce on it — the registry seam exercised end to end.
	dimmCfg := core.DIMMPIM(m, core.PIMphony())
	dimmCfg.KVBudgetBytes = capacityBudgetBytes
	var dpts []serve.CapacityPoint
	for _, alloc := range []string{"static", "dpa"} {
		dpts = append(dpts, serve.CapacityPoint{Alloc: alloc, Replicas: 1, Rate: rates[len(rates)-1]})
	}
	dimm, err := serve.CapacityTable(context.Background(),
		fmt.Sprintf("Capacity — DIMM-PIM backend at the same %d GiB/replica budget (host-GPU FC, DIMM-rank attention, %s)",
			capacityBudgetBytes>>30, m.Name),
		dimmCfg, "round-robin", dpts, slo, capacityArrivals(nReqs))
	if err != nil {
		return nil, err
	}
	return &Result{
		ID:     "capacity",
		Title:  "Online Static-vs-DPA capacity gap",
		Tables: []*tablefmt.Table{single, multi, dimm},
		Notes: []string{
			"same KV budget, same schedule: static admits at most pool/T_max concurrent requests (max-act), DPA packs by live KV and admits strictly more — the paper's Fig. 19 inefficiency, online",
			"preempt counts DPA evictions when lazy growth exhausts the pool mid-decode; the evicted request re-queues and its KV is recomputed on re-admission (recomp-s), the over-admission cost static never pays",
		},
	}, nil
}
