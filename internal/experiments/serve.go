package experiments

import (
	"context"
	"fmt"

	"pimphony/internal/core"
	"pimphony/internal/model"
	"pimphony/internal/serve"
	"pimphony/internal/tablefmt"
	"pimphony/internal/workload"
)

// serveDecodeLen is the generation length of the serving study. It is
// deliberately shorter than the Generator default (256) so the curve's
// many online simulations stay cheap; the latency shape is set by the
// arrival process and batch dynamics, not the absolute trace length.
const serveDecodeLen = 32

// serveGrid returns the (rate, replica) grid for the latency–throughput
// curve. A single replica saturates near 100 req/s at this decode
// length (the probe behind README's serving section), so the full grid
// spans under-load to 2x over-load while the short grid keeps one
// under- and one over-loaded point per replica count.
func serveGrid() (rates []float64, replicas []int) {
	if Short() {
		return []float64{100}, []int{1, 2}
	}
	return []float64{50, 100, 200}, []int{1, 2, 4}
}

// ServeCurve is the online serving study (beyond the paper's batch
// evaluation, toward the ROADMAP's serving regime): a Poisson stream of
// QMSum-sized requests is balanced across CENT+PIMphony decode replicas
// under round-robin and least-outstanding-tokens routing, and the SLO
// metrics are reported per (policy, replicas, rate) point — the
// latency–throughput curve serving systems like LoL-PIM evaluate.
func ServeCurve() (*Result, error) {
	m := model.LLM7B32K()
	sysCfg := core.CENT(m, core.PIMphony())
	rates, replicas := serveGrid()
	var pts []serve.CurvePoint
	for _, pol := range []string{"round-robin", "least-tokens"} {
		for _, r := range replicas {
			for _, rate := range rates {
				pts = append(pts, serve.CurvePoint{Policy: pol, Replicas: r, Rate: rate})
			}
		}
	}
	nReqs := pool(48)
	// Distinct seeds keep the size and arrival-timing RNG streams
	// independent (the same source would correlate them draw for draw).
	mkArrivals := func(rate float64) ([]workload.Arrival, error) {
		gen := workload.NewGenerator(workload.QMSum(), 42)
		gen.DecodeLen = serveDecodeLen
		return workload.PoissonArrivals(gen, rate, 8, nReqs, 43)
	}
	slo := serve.SLO{TTFT: 0.1, TBT: 0.025}
	t, err := serve.CurveTable(context.Background(),
		fmt.Sprintf("Serving — latency–throughput curve (CENT+PIMphony, %s, QMSum, %d reqs, decode %d, SLO ttft<=100ms tbt<=25ms; latencies in ms)",
			m.Name, nReqs, serveDecodeLen),
		sysCfg, pts, slo, false, mkArrivals)
	if err != nil {
		return nil, err
	}
	return &Result{ID: "serve", Title: "Online serving under SLOs", Tables: []*tablefmt.Table{t},
		Notes: []string{"goodput = decode tokens/s from requests meeting the SLO; a replica saturates near 100 req/s, where queueing delay moves TTFT past the SLO while TBT stays flat"}}, nil
}
