package ir

import (
	"testing"

	"pimphony/internal/model"
)

func TestBuildDecoderLayerVerifies(t *testing.T) {
	for _, cfg := range model.All() {
		layer, err := BuildDecoderLayer(cfg)
		if err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
		if err := layer.Graph.Verify(); err != nil {
			t.Errorf("%s: %v", cfg.Name, err)
		}
		if layer.Output == 0 {
			t.Errorf("%s: no output anchor", cfg.Name)
		}
	}
}

func TestDecoderLayerShapes(t *testing.T) {
	cfg := model.LLM7B128KGQA()
	layer, err := BuildDecoderLayer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g := layer.Graph
	// The scores value must carry the symbolic token dimension.
	if !g.HasDynTokens(layer.Scores) {
		t.Error("softmax scores should have a dynamic token dim")
	}
	// k_proj output must be GQA-shrunk.
	for _, n := range g.Nodes {
		if n.Label == "k_proj" {
			if got := g.Values[n.Out].Shape[1]; got != cfg.DIn/cfg.GQAGroup {
				t.Errorf("k_proj out dim = %d, want %d", got, cfg.DIn/cfg.GQAGroup)
			}
		}
	}
	// Layer output shape is (1, DIn).
	out := g.Values[layer.Output].Shape
	if len(out) != 2 || out[0] != 1 || out[1] != cfg.DIn {
		t.Errorf("layer output shape = %v", out)
	}
}

func TestMatMulShapeChecking(t *testing.T) {
	g := NewGraph("t")
	a := g.AddInput("a", 1, 4)
	b := g.AddWeight("b", 8, 2) // inner dim mismatch
	if _, err := g.MatMul("bad", a, b); err == nil {
		t.Fatal("inner-dim mismatch should fail")
	}
	c := g.AddWeight("c", 4, 2)
	out, err := g.MatMul("good", a, c)
	if err != nil {
		t.Fatal(err)
	}
	if sh := g.Values[out].Shape; sh[0] != 1 || sh[1] != 2 {
		t.Errorf("matmul out shape = %v", sh)
	}
}

func TestBinaryShapeChecking(t *testing.T) {
	g := NewGraph("t")
	a := g.AddInput("a", 1, 4)
	b := g.AddInput("b", 1, 5)
	if _, err := g.Binary(Add, "bad", a, b); err == nil {
		t.Fatal("shape mismatch should fail")
	}
}

func TestTransposeNeedsRank2(t *testing.T) {
	g := NewGraph("t")
	a := g.AddInput("a", 4)
	if _, err := g.Transpose("bad", a); err == nil {
		t.Fatal("rank-1 transpose should fail")
	}
}

func TestVerifyCatchesUseBeforeProduction(t *testing.T) {
	g := NewGraph("t")
	a := g.AddInput("a", 1, 4)
	// Hand-craft a node referencing a value that is never produced.
	g.Nodes = append(g.Nodes, Node{ID: len(g.Nodes), Kind: SiLU, Inputs: []int{a + 99}, Out: g.value("x", []int{1, 4})})
	if err := g.Verify(); err == nil {
		t.Fatal("missing value should fail verification")
	}
}

func TestElemsResolvesDynTokens(t *testing.T) {
	v := Value{Shape: []int{DynTokens, 128}}
	if got := v.Elems(1000); got != 128000 {
		t.Fatalf("Elems = %d", got)
	}
}

func TestKindString(t *testing.T) {
	if MatMul.String() != "matmul" || Softmax.String() != "softmax" {
		t.Fatal("kind names changed")
	}
}
