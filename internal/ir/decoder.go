package ir

import (
	"fmt"

	"pimphony/internal/model"
)

// DecoderLayer holds the graph of one transformer decode step (one new
// token) for a single layer, plus the value IDs the compiler passes use as
// anchors.
type DecoderLayer struct {
	Graph *Graph
	// Anchor values.
	Hidden  int // layer input (1, DIn)
	Query   int // q_proj output
	Scores  int // softmax output (1, T)
	AttnOut int // SV output per head group (1, DIn)
	Output  int // layer output (1, DIn)
}

// BuildDecoderLayer constructs the per-layer decode graph for a model
// configuration: RMSNorm -> QKV projections -> QK^T -> scale -> softmax ->
// SV -> output projection -> residual -> RMSNorm -> gated FFN -> residual.
// Attention is expressed per KV-head group with the token dimension
// symbolic; the projections keep their exact Table I shapes.
func BuildDecoderLayer(cfg model.Config) (*DecoderLayer, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	g := NewGraph(cfg.Name + "-decoder-layer")
	d := &DecoderLayer{Graph: g}
	kvOut := cfg.DIn / cfg.GQAGroup

	d.Hidden = g.AddInput("hidden", 1, cfg.DIn)
	normed := g.Unary(RMSNorm, "attn_norm", d.Hidden)

	wq := g.AddWeight("w_q", cfg.DIn, cfg.DIn)
	wk := g.AddWeight("w_k", cfg.DIn, kvOut)
	wv := g.AddWeight("w_v", cfg.DIn, kvOut)
	wo := g.AddWeight("w_o", cfg.DIn, cfg.DIn)

	q, err := g.MatMul("q_proj", normed, wq)
	if err != nil {
		return nil, err
	}
	d.Query = q
	if _, err = g.MatMul("k_proj", normed, wk); err != nil {
		return nil, err
	}
	if _, err = g.MatMul("v_proj", normed, wv); err != nil {
		return nil, err
	}

	// Attention over one KV head group: K cache is (T, dh); scores (1, T).
	kCache := g.AddKVCache("k_cache", cfg.HeadDim)
	vCache := g.AddKVCache("v_cache", cfg.HeadDim)
	qHead := g.AddInput("q_head", 1, cfg.HeadDim) // sliced from q_proj
	kT, err := g.Transpose("k_cache_t", kCache)
	if err != nil {
		return nil, err
	}
	logits, err := g.MatMul("qk_t", qHead, kT)
	if err != nil {
		return nil, err
	}
	scaled := g.Unary(Scale, "scale", logits)
	d.Scores = g.Unary(Softmax, "softmax", scaled)
	sv, err := g.MatMul("sv", d.Scores, vCache)
	if err != nil {
		return nil, err
	}
	_ = sv

	// Output projection + residual (heads concatenated back to DIn).
	attnCat := g.AddInput("attn_cat", 1, cfg.DIn)
	attnProj, err := g.MatMul("o_proj", attnCat, wo)
	if err != nil {
		return nil, err
	}
	d.AttnOut = attnProj
	resid1, err := g.Binary(Add, "residual1", d.Hidden, attnProj)
	if err != nil {
		return nil, err
	}

	// Gated FFN.
	ffnNorm := g.Unary(RMSNorm, "ffn_norm", resid1)
	wUp := g.AddWeight("w_up", cfg.DIn, cfg.DFFN)
	wGate := g.AddWeight("w_gate", cfg.DIn, cfg.DFFN)
	wDown := g.AddWeight("w_down", cfg.DFFN, cfg.DIn)
	up, err := g.MatMul("ffn_up", ffnNorm, wUp)
	if err != nil {
		return nil, err
	}
	gate, err := g.MatMul("ffn_gate", ffnNorm, wGate)
	if err != nil {
		return nil, err
	}
	act := g.Unary(SiLU, "ffn_act", gate)
	gated, err := g.Binary(Mul, "ffn_gated", up, act)
	if err != nil {
		return nil, err
	}
	down, err := g.MatMul("ffn_down", gated, wDown)
	if err != nil {
		return nil, err
	}
	out, err := g.Binary(Add, "residual2", resid1, down)
	if err != nil {
		return nil, err
	}
	d.Output = out
	if err := g.Verify(); err != nil {
		return nil, fmt.Errorf("ir: decoder layer failed verification: %w", err)
	}
	return d, nil
}
