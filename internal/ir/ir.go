// Package ir is the small graph intermediate representation PIMphony's
// compiler front-end operates on: enough of an MLIR-like dialect to express
// a transformer decoder layer with a symbolic token dimension, verify
// shapes, and let the pattern-matching passes of internal/compiler locate
// the PIM-amenable kernels (QK^T, SV, the FC projections).
package ir

import (
	"fmt"
)

// DynTokens is the symbolic size of the token dimension: the number of KV
// cache entries, known only at runtime (the DPA motivation).
const DynTokens = -1

// Kind enumerates operation kinds.
type Kind uint8

const (
	// Input introduces a graph input tensor.
	Input Kind = iota
	// Weight introduces a parameter tensor resident in PIM DRAM.
	Weight
	// KVCache introduces a cache tensor with a dynamic token dimension.
	KVCache
	// MatMul multiplies (m,k) x (k,n) -> (m,n).
	MatMul
	// Scale multiplies by a scalar.
	Scale
	// Softmax normalises the last dimension.
	Softmax
	// Add is element-wise addition.
	Add
	// Mul is element-wise multiplication (gating).
	Mul
	// SiLU is the sigmoid-linear activation.
	SiLU
	// RMSNorm is root-mean-square layer normalisation.
	RMSNorm
	// Transpose swaps the two dimensions of a matrix.
	Transpose
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	names := [...]string{"input", "weight", "kvcache", "matmul", "scale",
		"softmax", "add", "mul", "silu", "rmsnorm", "transpose"}
	if int(k) < len(names) {
		return names[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Value is a tensor produced by a node.
type Value struct {
	ID    int
	Name  string
	Shape []int // DynTokens marks the symbolic token dimension
}

// Elems returns the element count with DynTokens resolved to tokens.
func (v Value) Elems(tokens int) int64 {
	n := int64(1)
	for _, d := range v.Shape {
		if d == DynTokens {
			d = tokens
		}
		n *= int64(d)
	}
	return n
}

// Node is one operation.
type Node struct {
	ID     int
	Kind   Kind
	Inputs []int // value IDs
	Out    int   // value ID
	Label  string
}

// Graph is a single-assignment operation graph.
type Graph struct {
	Name   string
	Nodes  []Node
	Values []Value
}

// NewGraph creates an empty graph.
func NewGraph(name string) *Graph { return &Graph{Name: name} }

// value registers a new value and returns its ID.
func (g *Graph) value(name string, shape []int) int {
	id := len(g.Values)
	g.Values = append(g.Values, Value{ID: id, Name: name, Shape: shape})
	return id
}

// node registers a new node producing a fresh value.
func (g *Graph) node(k Kind, label string, shape []int, inputs ...int) int {
	out := g.value(label, shape)
	g.Nodes = append(g.Nodes, Node{ID: len(g.Nodes), Kind: k, Inputs: inputs, Out: out, Label: label})
	return out
}

// AddInput introduces a graph input.
func (g *Graph) AddInput(name string, shape ...int) int {
	return g.node(Input, name, shape)
}

// AddWeight introduces a DRAM-resident parameter.
func (g *Graph) AddWeight(name string, shape ...int) int {
	return g.node(Weight, name, shape)
}

// AddKVCache introduces a cache tensor with a leading dynamic token dim.
func (g *Graph) AddKVCache(name string, width int) int {
	return g.node(KVCache, name, []int{DynTokens, width})
}

// MatMul appends a (m,k)x(k,n) multiply.
func (g *Graph) MatMul(label string, a, b int) (int, error) {
	sa, sb := g.Values[a].Shape, g.Values[b].Shape
	if len(sa) != 2 || len(sb) != 2 {
		return 0, fmt.Errorf("ir: matmul %q needs rank-2 operands", label)
	}
	if sa[1] != sb[0] {
		return 0, fmt.Errorf("ir: matmul %q inner dims %d vs %d", label, sa[1], sb[0])
	}
	return g.node(MatMul, label, []int{sa[0], sb[1]}, a, b), nil
}

// Transpose appends a matrix transpose.
func (g *Graph) Transpose(label string, a int) (int, error) {
	s := g.Values[a].Shape
	if len(s) != 2 {
		return 0, fmt.Errorf("ir: transpose %q needs a rank-2 operand", label)
	}
	return g.node(Transpose, label, []int{s[1], s[0]}, a), nil
}

// Unary appends a shape-preserving unary op.
func (g *Graph) Unary(k Kind, label string, a int) int {
	return g.node(k, label, g.Values[a].Shape, a)
}

// Binary appends a shape-preserving binary op.
func (g *Graph) Binary(k Kind, label string, a, b int) (int, error) {
	sa, sb := g.Values[a].Shape, g.Values[b].Shape
	if len(sa) != len(sb) {
		return 0, fmt.Errorf("ir: %s %q rank mismatch", k, label)
	}
	for i := range sa {
		if sa[i] != sb[i] {
			return 0, fmt.Errorf("ir: %s %q shape mismatch at dim %d: %d vs %d", k, label, i, sa[i], sb[i])
		}
	}
	return g.node(k, label, sa, a, b), nil
}

// Verify checks single-assignment discipline and operand validity.
func (g *Graph) Verify() error {
	produced := make(map[int]bool)
	for _, n := range g.Nodes {
		for _, in := range n.Inputs {
			if in < 0 || in >= len(g.Values) {
				return fmt.Errorf("ir %s: node %d (%s) references missing value %d", g.Name, n.ID, n.Label, in)
			}
			if !produced[in] {
				return fmt.Errorf("ir %s: node %d (%s) uses value %d before production", g.Name, n.ID, n.Label, in)
			}
		}
		if produced[n.Out] {
			return fmt.Errorf("ir %s: value %d produced twice", g.Name, n.Out)
		}
		produced[n.Out] = true
		switch n.Kind {
		case Input, Weight, KVCache:
			if len(n.Inputs) != 0 {
				return fmt.Errorf("ir %s: source node %d (%s) must have no inputs", g.Name, n.ID, n.Label)
			}
		case MatMul, Add, Mul:
			if len(n.Inputs) != 2 {
				return fmt.Errorf("ir %s: node %d (%s) needs 2 inputs", g.Name, n.ID, n.Label)
			}
		case Scale, Softmax, SiLU, RMSNorm, Transpose:
			if len(n.Inputs) != 1 {
				return fmt.Errorf("ir %s: node %d (%s) needs 1 input", g.Name, n.ID, n.Label)
			}
		}
	}
	return nil
}

// Producer returns the node producing a value, or nil for none.
func (g *Graph) Producer(valueID int) *Node {
	for i := range g.Nodes {
		if g.Nodes[i].Out == valueID {
			return &g.Nodes[i]
		}
	}
	return nil
}

// HasDynTokens reports whether a value's shape involves the symbolic token
// dimension.
func (g *Graph) HasDynTokens(valueID int) bool {
	for _, d := range g.Values[valueID].Shape {
		if d == DynTokens {
			return true
		}
	}
	return false
}
