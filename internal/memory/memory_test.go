package memory

import (
	"math/rand"
	"testing"
	"testing/quick"
)

const (
	kib = 1 << 10
	mib = 1 << 20
	gib = 1 << 30
)

func newStaticT(t *testing.T) *Static {
	t.Helper()
	// 1 GiB pool, 128 KiB/token (7B GQA), T_max 4096 -> 512 MiB per slot.
	s, err := NewStatic(gib, 128*kib, 4096)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func newDPAT(t *testing.T) *DPA {
	t.Helper()
	d, err := NewDPA(gib, 128*kib, DefaultChunkBytes)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestStaticReservesTmax(t *testing.T) {
	s := newStaticT(t)
	if err := s.Admit(0, 100); err != nil {
		t.Fatal(err)
	}
	if got := s.ReservedBytes(); got != 4096*128*kib {
		t.Errorf("reserved = %d, want full T_max slot", got)
	}
	if got := s.LiveBytes(); got != 100*128*kib {
		t.Errorf("live = %d", got)
	}
	if u := Utilization(s); u > 0.03 {
		t.Errorf("utilization of a short request should be tiny, got %f", u)
	}
}

func TestStaticBatchBound(t *testing.T) {
	s := newStaticT(t)
	if s.MaxBatch() != 2 {
		t.Fatalf("MaxBatch = %d, want 2 (1 GiB / 512 MiB)", s.MaxBatch())
	}
	if err := s.Admit(0, 10); err != nil {
		t.Fatal(err)
	}
	if err := s.Admit(1, 10); err != nil {
		t.Fatal(err)
	}
	if err := s.Admit(2, 10); err == nil {
		t.Fatal("third request should be rejected: static pool is full")
	}
	if s.CanAdmit(10) {
		t.Fatal("CanAdmit should be false when full")
	}
}

func TestStaticRejectsOverTmax(t *testing.T) {
	s := newStaticT(t)
	if err := s.Admit(0, 5000); err == nil {
		t.Fatal("context beyond T_max must be rejected")
	}
	if err := s.Admit(0, 4000); err != nil {
		t.Fatal(err)
	}
	if err := s.Grow(0, 5000); err == nil {
		t.Fatal("growth past T_max must fail")
	}
	if err := s.Grow(0, 3000); err == nil {
		t.Fatal("shrinking must fail")
	}
}

func TestDPAAdmitsMoreRequestsThanStatic(t *testing.T) {
	s := newStaticT(t)
	d := newDPAT(t)
	// Short requests (512 tokens = 64 MiB live).
	admittedStatic, admittedDPA := 0, 0
	for i := 0; ; i++ {
		if s.Admit(i, 512) != nil {
			break
		}
		admittedStatic++
	}
	for i := 0; ; i++ {
		if d.Admit(i, 512) != nil {
			break
		}
		admittedDPA++
	}
	if admittedStatic != 2 {
		t.Errorf("static admitted %d, want 2", admittedStatic)
	}
	if admittedDPA != 16 {
		t.Errorf("DPA admitted %d, want 16 (1 GiB / 64 MiB)", admittedDPA)
	}
	// The effective-batch gain is the Fig. 4 "effective batch" effect.
	if admittedDPA <= admittedStatic {
		t.Error("DPA must admit strictly more short requests")
	}
}

func TestDPAUtilizationBeatsStatic(t *testing.T) {
	s := newStaticT(t)
	d := newDPAT(t)
	for i := 0; i < 2; i++ {
		if err := s.Admit(i, 1500); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		if err := d.Admit(i, 1500); err != nil {
			t.Fatal(err)
		}
	}
	us, ud := Utilization(s), Utilization(d)
	if ud <= us {
		t.Errorf("DPA utilization (%.2f) should exceed static (%.2f)", ud, us)
	}
	// DPA fragmentation is bounded by one chunk per request.
	if ud < 0.99 {
		t.Errorf("DPA utilization %.3f; fragmentation should be < 1 chunk/request", ud)
	}
}

func TestDPALazyGrowth(t *testing.T) {
	d := newDPAT(t)
	if err := d.Admit(0, 8); err != nil { // 8 tokens = 1 MiB = 1 chunk
		t.Fatal(err)
	}
	if got := len(d.Chunks(0)); got != 1 {
		t.Fatalf("chunks = %d, want 1", got)
	}
	msgs := d.HostMessages()
	// Growing within the chunk allocates nothing and sends no messages.
	if err := d.Grow(0, 8); err != nil {
		t.Fatal(err)
	}
	if d.HostMessages() != msgs {
		t.Error("no-op growth should not message the host")
	}
	// Spilling allocates exactly one more chunk.
	if err := d.Grow(0, 9); err != nil {
		t.Fatal(err)
	}
	if got := len(d.Chunks(0)); got != 2 {
		t.Fatalf("chunks after spill = %d, want 2", got)
	}
	if d.HostMessages() != msgs+1 {
		t.Error("chunk spill should message the host once")
	}
}

func TestDPATranslate(t *testing.T) {
	d := newDPAT(t)
	if err := d.Admit(7, 24); err != nil { // 3 MiB -> 3 chunks
		t.Fatal(err)
	}
	chunks := d.Chunks(7)
	if len(chunks) != 3 {
		t.Fatalf("want 3 chunks, got %d", len(chunks))
	}
	for vc := 0; vc < 3; vc++ {
		va := int64(vc)*mib + 12345
		pa, err := d.Translate(7, va)
		if err != nil {
			t.Fatal(err)
		}
		want := int64(chunks[vc])*mib + 12345
		if pa != want {
			t.Errorf("Translate(vc=%d) = %d, want %d", vc, pa, want)
		}
	}
	if _, err := d.Translate(7, 3*mib); err == nil {
		t.Error("translation beyond mapped region must fail")
	}
	if _, err := d.Translate(99, 0); err == nil {
		t.Error("translation for unknown request must fail")
	}
}

func TestDPANonContiguousAfterChurn(t *testing.T) {
	d := newDPAT(t)
	if err := d.Admit(0, 16); err != nil { // 2 chunks
		t.Fatal(err)
	}
	if err := d.Admit(1, 16); err != nil {
		t.Fatal(err)
	}
	if err := d.Release(0); err != nil {
		t.Fatal(err)
	}
	if err := d.Admit(2, 24); err != nil { // 3 chunks: reuses freed + fresh
		t.Fatal(err)
	}
	chunks := d.Chunks(2)
	contig := true
	for i := 1; i < len(chunks); i++ {
		if chunks[i] != chunks[i-1]+1 {
			contig = false
		}
	}
	if contig {
		t.Log("note: chunks happened to be contiguous; VA2PA still required")
	}
	// Translation must remain correct regardless of physical layout.
	for vc := range chunks {
		pa, err := d.Translate(2, int64(vc)*mib)
		if err != nil {
			t.Fatal(err)
		}
		if pa != int64(chunks[vc])*mib {
			t.Errorf("vc %d -> pa %d, want chunk base %d", vc, pa, int64(chunks[vc])*mib)
		}
	}
}

func TestReleaseUnknownFails(t *testing.T) {
	s := newStaticT(t)
	d := newDPAT(t)
	if err := s.Release(9); err == nil {
		t.Error("static release of unknown request should fail")
	}
	if err := d.Release(9); err == nil {
		t.Error("DPA release of unknown request should fail")
	}
}

func TestConstructorValidation(t *testing.T) {
	if _, err := NewStatic(0, 1, 1); err == nil {
		t.Error("zero capacity static should fail")
	}
	if _, err := NewDPA(10, 1, 100); err == nil {
		t.Error("capacity below one chunk should fail")
	}
	if _, err := NewDPA(gib, -1, mib); err == nil {
		t.Error("negative bytes/token should fail")
	}
}

// Property: under random admit/grow/release traffic the DPA allocator never
// double-maps a physical chunk, never leaks, and utilization stays in [0,1].
func TestDPAInvariantProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d, err := NewDPA(64*mib, 8*kib, mib)
		if err != nil {
			return false
		}
		live := map[int]int{}
		nextID := 0
		for step := 0; step < 200; step++ {
			switch rng.Intn(3) {
			case 0:
				tok := rng.Intn(2000) + 1
				if d.CanAdmit(tok) {
					if d.Admit(nextID, tok) != nil {
						return false
					}
					live[nextID] = tok
					nextID++
				}
			case 1:
				for id, tok := range live {
					nt := tok + rng.Intn(500)
					if err := d.Grow(id, nt); err == nil {
						live[id] = nt
					}
					break
				}
			case 2:
				for id := range live {
					if d.Release(id) != nil {
						return false
					}
					delete(live, id)
					break
				}
			}
			// Invariant: no physical chunk is mapped twice.
			seen := map[ChunkID]bool{}
			var mapped int64
			for id := range live {
				for _, c := range d.Chunks(id) {
					if seen[c] {
						return false
					}
					seen[c] = true
					mapped++
				}
			}
			if mapped*mib != d.ReservedBytes() {
				return false
			}
			if u := Utilization(d); u < 0 || u > 1.0000001 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: static reserved bytes is always batch * T_max reservation and
// live never exceeds reserved.
func TestStaticInvariantProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s, err := NewStatic(gib, 64*kib, 2048)
		if err != nil {
			return false
		}
		admitted := 0
		for i := 0; i < 20; i++ {
			tok := rng.Intn(2048) + 1
			if s.CanAdmit(tok) {
				if s.Admit(i, tok) != nil {
					return false
				}
				admitted++
			}
		}
		if s.ReservedBytes() != int64(admitted)*2048*64*kib {
			return false
		}
		return s.LiveBytes() <= s.ReservedBytes()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// ---------------------------------------------------------------------------
// Serving-path edge cases: free-order independence, exhaustion, and
// reserve/release accounting under preemption-style churn.
// ---------------------------------------------------------------------------

// TestFreeOrderIndependence: whatever order requests are released in —
// FIFO, LIFO, interleaved, as completion and preemption mix them on the
// serving path — the pool ends empty and re-admits the same workload.
func TestFreeOrderIndependence(t *testing.T) {
	const bpt = 1 << 10
	orders := [][]int{
		{0, 1, 2, 3},
		{3, 2, 1, 0},
		{1, 3, 0, 2},
		{2, 0, 3, 1},
	}
	mk := func() []Allocator {
		s, err := NewStatic(64<<20, bpt, 1024)
		if err != nil {
			t.Fatal(err)
		}
		d, err := NewDPA(64<<20, bpt, 1<<20)
		if err != nil {
			t.Fatal(err)
		}
		return []Allocator{s, d}
	}
	for _, order := range orders {
		for _, a := range mk() {
			for id := 0; id < 4; id++ {
				if err := a.Admit(id, 600+id*13); err != nil {
					t.Fatalf("%s order %v: admit %d: %v", a.Name(), order, id, err)
				}
			}
			for _, id := range order {
				if err := a.Release(id); err != nil {
					t.Fatalf("%s order %v: release %d: %v", a.Name(), order, id, err)
				}
			}
			if a.ReservedBytes() != 0 || a.LiveBytes() != 0 {
				t.Errorf("%s order %v: reserved %d / live %d after full release",
					a.Name(), order, a.ReservedBytes(), a.LiveBytes())
			}
			// The drained pool must accept the same workload again, and
			// at full size — no fragmentation regardless of free order.
			for id := 10; id < 14; id++ {
				if err := a.Admit(id, 600); err != nil {
					t.Errorf("%s order %v: re-admit %d failed: %v", a.Name(), order, id, err)
				}
			}
		}
	}
}

// TestDPAChunkTableExhaustion drives the chunk table to exactly zero
// free entries and checks Admit, Grow and CanAdmit all fail cleanly,
// then recover after one release.
func TestDPAChunkTableExhaustion(t *testing.T) {
	const chunk = 1 << 20
	d, err := NewDPA(4*chunk, 1<<10, chunk) // 4 chunks, 1024 tokens each
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Admit(1, 2048); err != nil { // 2 chunks
		t.Fatal(err)
	}
	if err := d.Admit(2, 2048); err != nil { // 2 chunks -> table full
		t.Fatal(err)
	}
	if d.ReservedBytes() != 4*chunk {
		t.Fatalf("reserved %d, want the whole pool", d.ReservedBytes())
	}
	if d.CanAdmit(1) {
		t.Error("CanAdmit should fail with zero free chunks")
	}
	if err := d.Admit(3, 1); err == nil {
		t.Error("Admit should fail with zero free chunks")
	}
	if err := d.Grow(1, 2049); err == nil {
		t.Error("Grow past the last mapped chunk should fail when the table is exhausted")
	}
	// The failed Grow must not have corrupted state: token count intact.
	if got := d.LiveBytes(); got != 2*2048<<10 {
		t.Errorf("live bytes %d after failed grow, want %d", got, 2*2048<<10)
	}
	if err := d.Release(2); err != nil {
		t.Fatal(err)
	}
	if err := d.Grow(1, 2049); err != nil {
		t.Errorf("Grow should succeed after release: %v", err)
	}
	if !d.CanAdmit(1024) {
		t.Error("CanAdmit should succeed after release")
	}
}

// TestAccountingUnderPreemptionChurn mimics the serving engine's
// preemption pattern — admit, grow a few steps, evict (release) the
// youngest, re-admit it at its grown size — and checks the
// reserve/release accounting invariants hold throughout: reserved >=
// live, reserved == 0 when idle, and every release matched by exactly
// one prior admission.
func TestAccountingUnderPreemptionChurn(t *testing.T) {
	const bpt = 512 << 10 // 0.5 MiB/token, the 7B-class footprint
	d, err := NewDPA(64<<20, bpt, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	check := func(stage string) {
		t.Helper()
		if d.LiveBytes() > d.ReservedBytes() {
			t.Fatalf("%s: live %d > reserved %d", stage, d.LiveBytes(), d.ReservedBytes())
		}
		if d.ReservedBytes() > d.CapacityBytes() {
			t.Fatalf("%s: reserved %d > capacity %d", stage, d.ReservedBytes(), d.CapacityBytes())
		}
	}
	// Admit two, grow both until the pool exhausts.
	if err := d.Admit(1, 60); err != nil { // 30 MiB
		t.Fatal(err)
	}
	if err := d.Admit(2, 60); err != nil { // 30 MiB -> 4 MiB slack
		t.Fatal(err)
	}
	check("admitted")
	grown := map[int]int{1: 60, 2: 60}
	var evicted bool
	for step := 0; step < 16 && !evicted; step++ {
		for id := 1; id <= 2; id++ {
			if err := d.Grow(id, grown[id]+1); err != nil {
				// The engine's move: evict the youngest (2), re-queue.
				if rerr := d.Release(2); rerr != nil {
					t.Fatal(rerr)
				}
				evicted = true
				break
			}
			grown[id]++
			check("grow")
		}
	}
	if !evicted {
		t.Fatal("pool never exhausted; churn scenario mis-sized")
	}
	// Request 1 can now grow freely; re-admit 2 at its grown size once 1
	// completes, as re-admission after preemption does.
	if err := d.Grow(1, grown[1]+4); err != nil {
		t.Fatalf("grow after eviction freed chunks: %v", err)
	}
	check("regrow")
	if err := d.Release(1); err != nil {
		t.Fatal(err)
	}
	if err := d.Admit(2, grown[2]); err != nil {
		t.Fatalf("re-admission at grown size: %v", err)
	}
	check("re-admitted")
	if err := d.Release(2); err != nil {
		t.Fatal(err)
	}
	if err := d.Release(2); err == nil {
		t.Error("double release must fail")
	}
	if d.ReservedBytes() != 0 || d.LiveBytes() != 0 {
		t.Errorf("drained pool not empty: reserved %d live %d", d.ReservedBytes(), d.LiveBytes())
	}
}

// TestPagedAllocatorRoundTrip exercises the GPU paged allocator the way
// the serving engine drives it: admit at live context, grow per token,
// fail at the pool edge, release. Growth at or below the current
// reservation must be a no-op — the batch simulator re-grows within the
// upfront context+window reservation every step.
func TestPagedAllocatorRoundTrip(t *testing.T) {
	a, err := NewPaged(1000, 10)
	if err != nil {
		t.Fatal(err)
	}
	if a.Name() != "paged" {
		t.Errorf("name %q", a.Name())
	}
	if err := a.Admit(1, 50); err != nil {
		t.Fatal(err)
	}
	if err := a.Admit(1, 10); err == nil {
		t.Error("double admit should fail")
	}
	if a.LiveBytes() != 500 || a.ReservedBytes() != 500 || a.CapacityBytes() != 1000 {
		t.Fatalf("reserved %d live %d cap %d", a.ReservedBytes(), a.LiveBytes(), a.CapacityBytes())
	}
	if !a.CanAdmit(50) || a.CanAdmit(51) {
		t.Error("CanAdmit boundary wrong")
	}
	if err := a.Admit(2, 51); err == nil {
		t.Error("admit past the pool should fail")
	}
	if err := a.Grow(1, 100); err != nil {
		t.Fatal(err)
	}
	if err := a.Grow(1, 101); err == nil {
		t.Error("growth past the pool should fail")
	}
	if err := a.Grow(1, 40); err != nil {
		t.Errorf("growth within the reservation must be a no-op: %v", err)
	}
	if a.ReservedBytes() != 1000 {
		t.Errorf("no-op growth changed the reservation to %d", a.ReservedBytes())
	}
	if err := a.Release(1); err != nil {
		t.Fatal(err)
	}
	if a.ReservedBytes() != 0 {
		t.Errorf("reserved %d after release", a.ReservedBytes())
	}
	if err := a.Grow(1, 10); err == nil {
		t.Error("grow after release should fail")
	}
	if err := a.Release(1); err == nil {
		t.Error("double release should fail")
	}
	if _, err := NewPaged(0, 10); err == nil {
		t.Error("zero capacity should fail")
	}
}

// TestGrowBudgetStatic: static growth never allocates, so the lockstep
// budget is the tightest headroom to T_max across the batch.
func TestGrowBudgetStatic(t *testing.T) {
	s, err := NewStatic(1<<30, 1<<10, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Admit(1, 100); err != nil {
		t.Fatal(err)
	}
	if err := s.Admit(2, 990); err != nil {
		t.Fatal(err)
	}
	if got := s.GrowBudget([]int{1}); got != 900 {
		t.Errorf("budget %d, want 900 (T_max headroom)", got)
	}
	if got := s.GrowBudget([]int{1, 2}); got != 10 {
		t.Errorf("batch budget %d, want the tightest request's 10", got)
	}
	if got := s.GrowBudget([]int{1, 99}); got != 0 {
		t.Errorf("unknown request budgeted %d, want 0", got)
	}
	if got := s.GrowBudget(nil); got != 0 {
		t.Errorf("empty batch budgeted %d, want 0", got)
	}
	// Growing through the budget must succeed without error.
	for k := 1; k <= 10; k++ {
		if err := s.Grow(2, 990+k); err != nil {
			t.Fatalf("in-budget grow to %d failed: %v", 990+k, err)
		}
	}
	if got := s.GrowBudget([]int{2}); got != 0 {
		t.Errorf("budget at T_max is %d, want 0", got)
	}
}

// TestGrowBudgetDPA: the budget is the largest lockstep growth whose
// chunk demand fits the free list — growth through it must succeed at
// every step, growth past it must be able to fail.
func TestGrowBudgetDPA(t *testing.T) {
	// 1 KiB/token, 4 KiB chunks -> 4 tokens per chunk, 2-chunk pool.
	d, err := NewDPA(8<<10, 1<<10, 4<<10)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Admit(1, 4); err != nil { // 1 chunk mapped, 1 chunk free
		t.Fatal(err)
	}
	// One free chunk holds 4 more tokens.
	if got := d.GrowBudget([]int{1}); got != 4 {
		t.Errorf("budget %d, want 4 (one free chunk)", got)
	}
	for k := 1; k <= 4; k++ {
		if err := d.Grow(1, 4+k); err != nil {
			t.Fatalf("in-budget grow to %d failed: %v", 4+k, err)
		}
	}
	if got := d.GrowBudget([]int{1}); got != 0 {
		t.Errorf("budget of an exhausted pool is %d, want 0", got)
	}
	if err := d.Grow(1, 9); err == nil {
		t.Error("growth past the budget should exhaust the pool")
	}
	if got := d.GrowBudget([]int{1, 3}); got != 0 {
		t.Errorf("unknown request budgeted %d, want 0", got)
	}
	if got := d.GrowBudget(nil); got != 0 {
		t.Errorf("empty batch budgeted %d, want 0", got)
	}
	// Two requests sharing the pool split the chunk demand.
	d2, err := NewDPA(16<<10, 1<<10, 4<<10) // 4 chunks
	if err != nil {
		t.Fatal(err)
	}
	if err := d2.Admit(1, 4); err != nil {
		t.Fatal(err)
	}
	if err := d2.Admit(2, 4); err != nil {
		t.Fatal(err)
	}
	// 2 free chunks, both requests at a chunk edge: each can take one
	// chunk's worth of lockstep growth.
	if got := d2.GrowBudget([]int{1, 2}); got != 4 {
		t.Errorf("batch budget %d, want 4", got)
	}
}

// TestGrowBudgetPaged: every token reserves pool, so the lockstep budget
// splits the free pool across the growing batch.
func TestGrowBudgetPaged(t *testing.T) {
	p, err := NewPaged(100<<10, 1<<10) // 100-token pool
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Admit(1, 30); err != nil {
		t.Fatal(err)
	}
	if err := p.Admit(2, 30); err != nil {
		t.Fatal(err)
	}
	if got := p.GrowBudget([]int{1, 2}); got != 20 {
		t.Errorf("budget %d, want 20 (40 free tokens over 2 requests)", got)
	}
	// Growing both through the budget must succeed.
	for k := 1; k <= 20; k++ {
		if err := p.Grow(1, 30+k); err != nil {
			t.Fatal(err)
		}
		if err := p.Grow(2, 30+k); err != nil {
			t.Fatal(err)
		}
	}
	if got := p.GrowBudget([]int{1, 2}); got != 0 {
		t.Errorf("budget of a full pool is %d, want 0", got)
	}
	if got := p.GrowBudget([]int{1, 9}); got != 0 {
		t.Errorf("unknown request budgeted %d, want 0", got)
	}
	if got := p.GrowBudget(nil); got != 0 {
		t.Errorf("empty batch budgeted %d, want 0", got)
	}
}
