// Package memory implements the two KV-cache management schemes compared in
// Sec. VI of the paper: conventional static allocation, which reserves
// T_max-sized regions per request because PIM instruction streams embed
// fixed physical addresses, and PIMphony's Dynamic PIM Access (DPA)
// allocation, which lazily maps 1 MB chunks through a VA2PA table as a
// request's KV cache grows.
package memory

import (
	"fmt"
)

// DefaultChunkBytes is the paper's DPA allocation granularity.
const DefaultChunkBytes = 1 << 20

// Allocator is a KV-cache capacity manager for one memory pool (a module or
// a whole system partition).
type Allocator interface {
	Name() string
	// Admit reserves space for a new request with the given current
	// context length; it fails if capacity is insufficient.
	Admit(reqID, tokens int) error
	// Grow extends a request's context to newTokens (monotonically).
	Grow(reqID, newTokens int) error
	// Release frees all memory of a request.
	Release(reqID int) error
	// CanAdmit reports whether a request of the given length would fit.
	CanAdmit(tokens int) bool
	// GrowBudget is the batched next-boundary query behind the serving
	// engine's multi-step fast-forward: how many additional tokens each
	// of the given admitted requests can absorb, all growing one token
	// per step in lockstep, before a Grow call could fail (the
	// preemption/eviction trigger a fast-forward must not skip past).
	// Growth within the budget may still map memory — allocation that
	// cannot fail is not an event, and a single batched Grow to the
	// final count leaves the allocator in the same observable state as
	// one call per token. Zero means the very next lockstep Grow could
	// hit a boundary; an unknown request ID also yields zero.
	GrowBudget(reqIDs []int) int
	// LiveBytes is the memory holding actual KV data.
	LiveBytes() int64
	// ReservedBytes is the memory unavailable to other requests.
	ReservedBytes() int64
	// CapacityBytes is the pool size.
	CapacityBytes() int64
}

// Utilization is live / reserved bytes: how much of the memory an
// allocator has claimed actually holds KV data. When nothing is reserved
// it is defined as zero.
func Utilization(a Allocator) float64 {
	r := a.ReservedBytes()
	if r == 0 {
		return 0
	}
	return float64(a.LiveBytes()) / float64(r)
}

// PoolUtilization is live / pool capacity — the Fig. 19 metric, evaluated
// when the admission loop has filled the pool: static T_max reservations
// strand most of the pool (the paper measures 31.0-40.5%), while DPA's
// lazy chunks reach ~75%.
func PoolUtilization(a Allocator) float64 {
	c := a.CapacityBytes()
	if c == 0 {
		return 0
	}
	return float64(a.LiveBytes()) / float64(c)
}

// ---------------------------------------------------------------------------
// Static allocator
// ---------------------------------------------------------------------------

// Static reserves a fixed T_max-sized KV region per admitted request,
// mirroring conventional PIM systems whose compiled instruction streams
// address physical memory directly (Fig. 10a).
type Static struct {
	capacity      int64
	bytesPerToken int64
	tmax          int
	live          map[int]int64 // request -> live KV bytes
	reservePer    int64
	liveSum       int64 // Σ live, so LiveBytes is O(1) on the sampling path
}

// NewStatic builds a static allocator for a pool of the given capacity.
func NewStatic(capacity, bytesPerToken int64, tmax int) (*Static, error) {
	if capacity <= 0 || bytesPerToken <= 0 || tmax <= 0 {
		return nil, fmt.Errorf("memory: static allocator params must be positive")
	}
	return &Static{
		capacity:      capacity,
		bytesPerToken: bytesPerToken,
		tmax:          tmax,
		live:          make(map[int]int64),
		reservePer:    int64(tmax) * bytesPerToken,
	}, nil
}

// Name implements Allocator.
func (s *Static) Name() string { return "static" }

// Admit implements Allocator.
func (s *Static) Admit(reqID, tokens int) error {
	if _, ok := s.live[reqID]; ok {
		return fmt.Errorf("memory: request %d already admitted", reqID)
	}
	if tokens > s.tmax {
		return fmt.Errorf("memory: request %d context %d exceeds T_max %d", reqID, tokens, s.tmax)
	}
	if !s.CanAdmit(tokens) {
		return fmt.Errorf("memory: static pool full (%d reserved of %d)", s.ReservedBytes(), s.capacity)
	}
	s.live[reqID] = int64(tokens) * s.bytesPerToken
	s.liveSum += s.live[reqID]
	return nil
}

// Grow implements Allocator. Static growth never allocates — the region was
// pre-reserved — but overflowing T_max is fatal.
func (s *Static) Grow(reqID, newTokens int) error {
	cur, ok := s.live[reqID]
	if !ok {
		return fmt.Errorf("memory: request %d not admitted", reqID)
	}
	if newTokens > s.tmax {
		return fmt.Errorf("memory: request %d grew past T_max %d", reqID, s.tmax)
	}
	nb := int64(newTokens) * s.bytesPerToken
	if nb < cur {
		return fmt.Errorf("memory: request %d shrank (%d -> %d tokens)", reqID, cur/s.bytesPerToken, newTokens)
	}
	s.liveSum += nb - cur
	s.live[reqID] = nb
	return nil
}

// Release implements Allocator.
func (s *Static) Release(reqID int) error {
	b, ok := s.live[reqID]
	if !ok {
		return fmt.Errorf("memory: request %d not admitted", reqID)
	}
	s.liveSum -= b
	delete(s.live, reqID)
	return nil
}

// CanAdmit implements Allocator.
func (s *Static) CanAdmit(tokens int) bool {
	if tokens > s.tmax {
		return false
	}
	return s.ReservedBytes()+s.reservePer <= s.capacity
}

// GrowBudget implements Allocator: static regions are pre-reserved, so
// growth never allocates and can only fail past T_max — each request's
// budget is its headroom to the window.
func (s *Static) GrowBudget(reqIDs []int) int {
	budget := -1
	for _, id := range reqIDs {
		b, ok := s.live[id]
		if !ok {
			return 0
		}
		if h := s.tmax - int(b/s.bytesPerToken); budget < 0 || h < budget {
			budget = h
		}
	}
	if budget < 0 {
		return 0
	}
	return budget
}

// LiveBytes implements Allocator.
func (s *Static) LiveBytes() int64 { return s.liveSum }

// ReservedBytes implements Allocator.
func (s *Static) ReservedBytes() int64 { return int64(len(s.live)) * s.reservePer }

// CapacityBytes implements Allocator.
func (s *Static) CapacityBytes() int64 { return s.capacity }

// MaxBatch is the static batch-size bound: capacity / T_max reservation.
func (s *Static) MaxBatch() int { return int(s.capacity / s.reservePer) }

// ---------------------------------------------------------------------------
// DPA allocator
// ---------------------------------------------------------------------------

// ChunkID is a physical chunk index within the pool.
type ChunkID int

// DPA implements lazy chunked allocation with virtual-to-physical chunk
// translation, the software model of the on-module dispatcher's VA2PA table
// (Fig. 11). Chunks are handed out on demand as requests grow, so internal
// fragmentation is limited to the final chunk of each request.
type DPA struct {
	capacity      int64
	bytesPerToken int64
	chunkBytes    int64
	nChunks       int
	freeList      []ChunkID
	va2pa         map[int][]ChunkID // request -> virtual chunk order -> physical
	liveTokens    map[int]int
	hostMessages  int // host<->module allocation messages (Sec. VI-C)

	// Running aggregates so LiveBytes/ReservedBytes are O(1) — the
	// serving engine samples capacity on every leap, which made the map
	// walks here a measurable share of the whole simulation.
	liveTokSum int64 // Σ liveTokens
	mappedSum  int64 // Σ len(va2pa[id])

	// growScratch snapshots (liveTokens, mapped chunks) per request so
	// GrowBudget's monotone probes walk a slice instead of two maps.
	growScratch []growSnap
}

type growSnap struct{ live, have int }

// NewDPA builds a DPA allocator with the given chunk granularity.
func NewDPA(capacity, bytesPerToken, chunkBytes int64) (*DPA, error) {
	if capacity <= 0 || bytesPerToken <= 0 || chunkBytes <= 0 {
		return nil, fmt.Errorf("memory: DPA allocator params must be positive")
	}
	n := int(capacity / chunkBytes)
	if n == 0 {
		return nil, fmt.Errorf("memory: capacity %d below one chunk (%d)", capacity, chunkBytes)
	}
	free := make([]ChunkID, n)
	for i := range free {
		free[i] = ChunkID(n - 1 - i) // pop from the end -> ascending IDs
	}
	return &DPA{
		capacity:      capacity,
		bytesPerToken: bytesPerToken,
		chunkBytes:    chunkBytes,
		nChunks:       n,
		freeList:      free,
		va2pa:         make(map[int][]ChunkID),
		liveTokens:    make(map[int]int),
	}, nil
}

// Name implements Allocator.
func (d *DPA) Name() string { return "dpa" }

// chunksFor is the chunk count needed for a context length.
func (d *DPA) chunksFor(tokens int) int {
	b := int64(tokens) * d.bytesPerToken
	return int((b + d.chunkBytes - 1) / d.chunkBytes)
}

// Admit implements Allocator.
func (d *DPA) Admit(reqID, tokens int) error {
	if _, ok := d.va2pa[reqID]; ok {
		return fmt.Errorf("memory: request %d already admitted", reqID)
	}
	need := d.chunksFor(tokens)
	if need > len(d.freeList) {
		return fmt.Errorf("memory: DPA pool has %d free chunks, need %d", len(d.freeList), need)
	}
	d.va2pa[reqID] = d.pop(need)
	d.liveTokens[reqID] = tokens
	d.liveTokSum += int64(tokens)
	d.mappedSum += int64(need)
	d.hostMessages++ // initial VA2PA setup
	return nil
}

// Grow implements Allocator: allocates additional chunks only when the new
// context spills past the last mapped chunk (lazy allocation).
func (d *DPA) Grow(reqID, newTokens int) error {
	cur, ok := d.liveTokens[reqID]
	if !ok {
		return fmt.Errorf("memory: request %d not admitted", reqID)
	}
	if newTokens < cur {
		return fmt.Errorf("memory: request %d shrank (%d -> %d)", reqID, cur, newTokens)
	}
	have := len(d.va2pa[reqID])
	need := d.chunksFor(newTokens)
	if extra := need - have; extra > 0 {
		if extra > len(d.freeList) {
			return fmt.Errorf("memory: DPA pool exhausted growing request %d (need %d chunks, %d free)", reqID, extra, len(d.freeList))
		}
		// Append straight off the free-list tail (the same ascending IDs
		// pop hands out) without materializing an intermediate slice.
		tail := d.freeList[len(d.freeList)-extra:]
		d.va2pa[reqID] = append(d.va2pa[reqID], tail...)
		d.freeList = d.freeList[:len(d.freeList)-extra]
		d.mappedSum += int64(extra)
		d.hostMessages++ // one host message per chunk-allocation event
	}
	d.liveTokSum += int64(newTokens - cur)
	d.liveTokens[reqID] = newTokens
	return nil
}

// Release implements Allocator.
func (d *DPA) Release(reqID int) error {
	chunks, ok := d.va2pa[reqID]
	if !ok {
		return fmt.Errorf("memory: request %d not admitted", reqID)
	}
	d.freeList = append(d.freeList, chunks...)
	d.mappedSum -= int64(len(chunks))
	d.liveTokSum -= int64(d.liveTokens[reqID])
	delete(d.va2pa, reqID)
	delete(d.liveTokens, reqID)
	d.hostMessages++
	return nil
}

// CanAdmit implements Allocator.
func (d *DPA) CanAdmit(tokens int) bool { return d.chunksFor(tokens) <= len(d.freeList) }

// GrowBudget implements Allocator: the largest lockstep growth whose
// chunk demand across the whole batch fits the free list. Growth within
// the budget cannot fail at any step prefix (chunk demand is monotone
// in the step count), so the fast-forward can leap through it; lazy
// allocation past the budget can exhaust the pool — the preemption
// trigger. A batched Grow covering several chunks coalesces the
// per-chunk host messages into one, which only the host-message
// counter (not any capacity or serving metric) can observe.
func (d *DPA) GrowBudget(reqIDs []int) int {
	if len(reqIDs) == 0 {
		return 0
	}
	// Snapshot each request's live tokens and mapped chunks once; the
	// monotone probes below then walk a slice instead of two maps.
	snap := d.growScratch[:0]
	for _, id := range reqIDs {
		live, ok := d.liveTokens[id]
		if !ok {
			return 0
		}
		snap = append(snap, growSnap{live: live, have: len(d.va2pa[id])})
	}
	d.growScratch = snap
	free := len(d.freeList)
	// Chunks the batch must allocate to grow n tokens per request.
	need := func(n int) int {
		total := 0
		for _, s := range snap {
			total += d.chunksFor(s.live+n) - s.have
		}
		return total
	}
	if need(1) > free {
		return 0
	}
	// Exponential then binary search for the largest affordable n: the
	// demand is monotone in n, and the probe stays cheap because leap
	// horizons are bounded by completions long before the cap.
	hi := 1
	for need(hi) <= free && hi < 1<<30 {
		hi <<= 1
	}
	lo := hi >> 1 // need(lo) <= free < need(hi), or hi hit the cap
	if hi >= 1<<30 && need(hi) <= free {
		return hi
	}
	for lo+1 < hi {
		mid := lo + (hi-lo)/2
		if need(mid) <= free {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// LiveBytes implements Allocator.
func (d *DPA) LiveBytes() int64 { return d.liveTokSum * d.bytesPerToken }

// ReservedBytes implements Allocator.
func (d *DPA) ReservedBytes() int64 { return d.mappedSum * d.chunkBytes }

// CapacityBytes implements Allocator.
func (d *DPA) CapacityBytes() int64 { return d.capacity }

// HostMessages counts host<->module management messages so far; the paper
// argues these are rare (not per decode step).
func (d *DPA) HostMessages() int { return d.hostMessages }

// Translate resolves a request-relative virtual byte address to a physical
// byte address through the VA2PA table, mirroring the on-module
// dispatcher's decode step.
func (d *DPA) Translate(reqID int, vaddr int64) (int64, error) {
	chunks, ok := d.va2pa[reqID]
	if !ok {
		return 0, fmt.Errorf("memory: request %d not admitted", reqID)
	}
	vc := int(vaddr / d.chunkBytes)
	if vc < 0 || vc >= len(chunks) {
		return 0, fmt.Errorf("memory: request %d vaddr %d beyond mapped region", reqID, vaddr)
	}
	return int64(chunks[vc])*d.chunkBytes + vaddr%d.chunkBytes, nil
}

// Chunks returns a copy of the request's physical chunk list (for tests and
// the dispatcher model).
func (d *DPA) Chunks(reqID int) []ChunkID {
	src := d.va2pa[reqID]
	out := make([]ChunkID, len(src))
	copy(out, src)
	return out
}

func (d *DPA) pop(n int) []ChunkID {
	out := make([]ChunkID, n)
	copy(out, d.freeList[len(d.freeList)-n:])
	d.freeList = d.freeList[:len(d.freeList)-n]
	return out
}

// ---------------------------------------------------------------------------
// Paged allocator
// ---------------------------------------------------------------------------

// Paged reserves exactly the bytes a request's token count occupies —
// the software model of GPU paged-attention, whose page tables make
// reservation granularity effectively the token (the page-size
// fragmentation is already folded into the pool's paged-attention
// efficiency derate). Unlike Static there is no fixed T_max region, and
// unlike DPA there is no chunk rounding: admission and growth succeed
// while the byte sum fits the pool. The GPU backend admits batch decode
// at the full context+window horizon (upfront reservation) and serving
// at the live context (growth may fail mid-decode, triggering
// preemption — the vLLM recompute path).
type Paged struct {
	capacity      int64
	bytesPerToken int64
	tokens        map[int]int // request -> reserved tokens
	reserved      int64
}

// NewPaged builds a paged allocator for a pool of the given capacity.
func NewPaged(capacity, bytesPerToken int64) (*Paged, error) {
	if capacity <= 0 || bytesPerToken <= 0 {
		return nil, fmt.Errorf("memory: paged allocator params must be positive")
	}
	return &Paged{capacity: capacity, bytesPerToken: bytesPerToken, tokens: make(map[int]int)}, nil
}

// Name implements Allocator.
func (p *Paged) Name() string { return "paged" }

// Admit implements Allocator.
func (p *Paged) Admit(reqID, tokens int) error {
	if _, ok := p.tokens[reqID]; ok {
		return fmt.Errorf("memory: request %d already admitted", reqID)
	}
	need := int64(tokens) * p.bytesPerToken
	if p.reserved+need > p.capacity {
		return fmt.Errorf("memory: paged pool full (%d of %d bytes)", p.reserved, p.capacity)
	}
	p.tokens[reqID] = tokens
	p.reserved += need
	return nil
}

// Grow implements Allocator: extends the request's reservation to
// newTokens, failing when the pool cannot hold the extra bytes. Growth
// at or below the current reservation is a no-op — the reservation is a
// high-water mark, and decode within an upfront context+window
// reservation never allocates.
func (p *Paged) Grow(reqID, newTokens int) error {
	cur, ok := p.tokens[reqID]
	if !ok {
		return fmt.Errorf("memory: request %d not admitted", reqID)
	}
	if newTokens <= cur {
		return nil
	}
	extra := int64(newTokens-cur) * p.bytesPerToken
	if p.reserved+extra > p.capacity {
		return fmt.Errorf("memory: paged pool full (%d of %d bytes)", p.reserved, p.capacity)
	}
	p.tokens[reqID] = newTokens
	p.reserved += extra
	return nil
}

// Release implements Allocator.
func (p *Paged) Release(reqID int) error {
	cur, ok := p.tokens[reqID]
	if !ok {
		return fmt.Errorf("memory: request %d not admitted", reqID)
	}
	p.reserved -= int64(cur) * p.bytesPerToken
	delete(p.tokens, reqID)
	return nil
}

// CanAdmit implements Allocator.
func (p *Paged) CanAdmit(tokens int) bool {
	return p.reserved+int64(tokens)*p.bytesPerToken <= p.capacity
}

// GrowBudget implements Allocator: paged growth reserves every token but
// can only fail at pool exhaustion, so the lockstep budget is the free
// pool split evenly across the growing requests (conservative for
// requests still decoding inside an upfront high-water reservation,
// whose Grow calls no-op).
func (p *Paged) GrowBudget(reqIDs []int) int {
	if len(reqIDs) == 0 {
		return 0
	}
	for _, id := range reqIDs {
		if _, ok := p.tokens[id]; !ok {
			return 0
		}
	}
	return int((p.capacity - p.reserved) / p.bytesPerToken / int64(len(reqIDs)))
}

// LiveBytes implements Allocator: every reserved byte is backed by KV
// data (no over-reservation).
func (p *Paged) LiveBytes() int64 { return p.reserved }

// ReservedBytes implements Allocator.
func (p *Paged) ReservedBytes() int64 { return p.reserved }

// CapacityBytes implements Allocator.
func (p *Paged) CapacityBytes() int64 { return p.capacity }

var (
	_ Allocator = (*Static)(nil)
	_ Allocator = (*DPA)(nil)
	_ Allocator = (*Paged)(nil)
)
