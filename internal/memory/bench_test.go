package memory

import "testing"

// BenchmarkDPAChurn measures admit/grow/release cycles on the DPA
// allocator — the per-decode-step hot path of the serving loop.
func BenchmarkDPAChurn(b *testing.B) {
	d, err := NewDPA(64<<30, 128<<10, DefaultChunkBytes)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := i
		if err := d.Admit(id, 4096); err != nil {
			b.Fatal(err)
		}
		for t := 4096; t < 4096+64; t++ {
			if err := d.Grow(id, t); err != nil {
				b.Fatal(err)
			}
		}
		if err := d.Release(id); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDPATranslate measures the VA2PA hot path the dispatcher resolves
// per MAC instruction group.
func BenchmarkDPATranslate(b *testing.B) {
	d, err := NewDPA(64<<30, 128<<10, DefaultChunkBytes)
	if err != nil {
		b.Fatal(err)
	}
	if err := d.Admit(0, 100000); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.Translate(0, int64(i)%d.LiveBytes()); err != nil {
			b.Fatal(err)
		}
	}
}
