package workload

import (
	"math"
	"reflect"
	"testing"
)

func modGen(t *testing.T, seed int64) *Generator {
	t.Helper()
	gen, err := HeavyTailed(256, 8192, 1.2, seed)
	if err != nil {
		t.Fatalf("HeavyTailed: %v", err)
	}
	return gen
}

// dispersionIndex is the variance-to-mean ratio of arrival counts in
// fixed windows — 1 for a Poisson process, > 1 for bursty traffic.
func dispersionIndex(arr []Arrival, window float64) float64 {
	last := arr[len(arr)-1].At
	bins := make([]float64, int(last/window)+1)
	for _, a := range arr {
		bins[int(a.At/window)]++
	}
	var mean float64
	for _, c := range bins {
		mean += c
	}
	mean /= float64(len(bins))
	var varc float64
	for _, c := range bins {
		varc += (c - mean) * (c - mean)
	}
	varc /= float64(len(bins))
	return varc / mean
}

func TestMMPPDeterminism(t *testing.T) {
	spec := MMPPSpec{RateHigh: 8, RateLow: 0.5, DwellHigh: 5, DwellLow: 5}
	a, err := MMPPArrivals(modGen(t, 3), spec, 4, 500, 11)
	if err != nil {
		t.Fatalf("MMPPArrivals: %v", err)
	}
	b, err := MMPPArrivals(modGen(t, 3), spec, 4, 500, 11)
	if err != nil {
		t.Fatalf("MMPPArrivals: %v", err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different MMPP schedules")
	}
	c, err := MMPPArrivals(modGen(t, 3), spec, 4, 500, 12)
	if err != nil {
		t.Fatalf("MMPPArrivals: %v", err)
	}
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical MMPP schedules")
	}
}

func TestMMPPSchedule(t *testing.T) {
	spec := MMPPSpec{RateHigh: 8, RateLow: 0.5, DwellHigh: 5, DwellLow: 5}
	arr, err := MMPPArrivals(modGen(t, 3), spec, 4, 2000, 11)
	if err != nil {
		t.Fatalf("MMPPArrivals: %v", err)
	}
	for i, a := range arr {
		if a.At < 0 {
			t.Fatalf("arrival %d at negative time %g", i, a.At)
		}
		if i > 0 && a.At < arr[i-1].At {
			t.Fatalf("arrivals not sorted at %d (%g after %g)", i, a.At, arr[i-1].At)
		}
	}
	// Empirical rate near the dwell-weighted mean.
	want := spec.MeanRate()
	got := OfferedRate(arr)
	if got < 0.7*want || got > 1.3*want {
		t.Errorf("empirical rate %g, want within 30%% of mean %g", got, want)
	}
	// Overdispersion: the modulated process must be visibly burstier
	// than a Poisson process of the same mean rate.
	poisson, err := PoissonArrivals(modGen(t, 3), want, 4, 2000, 11)
	if err != nil {
		t.Fatalf("PoissonArrivals: %v", err)
	}
	di, dp := dispersionIndex(arr, 2), dispersionIndex(poisson, 2)
	if di < 1.5 || di < 2*dp {
		t.Errorf("MMPP dispersion index %g vs Poisson %g; want bursty (>= 1.5 and >= 2x Poisson)", di, dp)
	}
}

func TestMMPPErrors(t *testing.T) {
	gen := modGen(t, 3)
	ok := MMPPSpec{RateHigh: 8, RateLow: 0.5, DwellHigh: 5, DwellLow: 5}
	if _, err := MMPPArrivals(nil, ok, 4, 10, 1); err == nil {
		t.Error("nil generator accepted")
	}
	if _, err := MMPPArrivals(gen, ok, 0, 10, 1); err == nil {
		t.Error("zero sessions accepted")
	}
	if _, err := MMPPArrivals(gen, ok, 4, -1, 1); err == nil {
		t.Error("negative count accepted")
	}
	for _, bad := range []MMPPSpec{
		{RateHigh: 0, RateLow: 0, DwellHigh: 5, DwellLow: 5},
		{RateHigh: 4, RateLow: -1, DwellHigh: 5, DwellLow: 5},
		{RateHigh: 4, RateLow: 8, DwellHigh: 5, DwellLow: 5},
		{RateHigh: 4, RateLow: 1, DwellHigh: 0, DwellLow: 5},
	} {
		if _, err := MMPPArrivals(gen, bad, 4, 10, 1); err == nil {
			t.Errorf("invalid spec %+v accepted", bad)
		}
	}
}

func TestMMPPSilentLull(t *testing.T) {
	// A zero lull rate must not loop or misorder: arrivals cluster
	// entirely inside burst dwells.
	spec := MMPPSpec{RateHigh: 10, RateLow: 0, DwellHigh: 2, DwellLow: 2}
	arr, err := MMPPArrivals(modGen(t, 3), spec, 4, 200, 5)
	if err != nil {
		t.Fatalf("MMPPArrivals: %v", err)
	}
	for i := 1; i < len(arr); i++ {
		if arr[i].At < arr[i-1].At {
			t.Fatalf("arrivals not sorted at %d", i)
		}
	}
}

func TestDiurnalDeterminism(t *testing.T) {
	spec := DiurnalSpec{BaseRate: 4, Amplitude: 0.9, PeriodSeconds: 60}
	a, err := DiurnalArrivals(modGen(t, 3), spec, 4, 500, 11)
	if err != nil {
		t.Fatalf("DiurnalArrivals: %v", err)
	}
	b, err := DiurnalArrivals(modGen(t, 3), spec, 4, 500, 11)
	if err != nil {
		t.Fatalf("DiurnalArrivals: %v", err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different diurnal schedules")
	}
	c, err := DiurnalArrivals(modGen(t, 3), spec, 4, 500, 12)
	if err != nil {
		t.Fatalf("DiurnalArrivals: %v", err)
	}
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical diurnal schedules")
	}
}

func TestDiurnalShape(t *testing.T) {
	spec := DiurnalSpec{BaseRate: 4, Amplitude: 0.9, PeriodSeconds: 60}
	arr, err := DiurnalArrivals(modGen(t, 3), spec, 4, 2000, 11)
	if err != nil {
		t.Fatalf("DiurnalArrivals: %v", err)
	}
	// Peak half-periods (phase [0.25, 0.75) of each day, around the
	// sine's maximum at phase 0.5) must out-arrive trough halves.
	var peak, trough float64
	for i, a := range arr {
		if a.At < 0 || (i > 0 && a.At < arr[i-1].At) {
			t.Fatalf("bad arrival time at %d", i)
		}
		phase := math.Mod(a.At, spec.PeriodSeconds) / spec.PeriodSeconds
		if phase >= 0.25 && phase < 0.75 {
			peak++
		} else {
			trough++
		}
	}
	if peak < 1.5*trough {
		t.Errorf("peak-half arrivals %g vs trough-half %g; want day-curve concentration (>= 1.5x)", peak, trough)
	}
	// The thinning must preserve the mean rate.
	got := OfferedRate(arr)
	if got < 0.7*spec.BaseRate || got > 1.3*spec.BaseRate {
		t.Errorf("empirical rate %g, want within 30%% of base %g", got, spec.BaseRate)
	}
	// Instantaneous rate bounds.
	if r := spec.Rate(0); r > 0.11*spec.BaseRate {
		t.Errorf("trough rate %g, want ~BaseRate*(1-Amplitude)=%g", r, spec.BaseRate*(1-spec.Amplitude))
	}
}

func TestDiurnalErrors(t *testing.T) {
	gen := modGen(t, 3)
	for _, bad := range []DiurnalSpec{
		{BaseRate: 0, Amplitude: 0.5, PeriodSeconds: 60},
		{BaseRate: 4, Amplitude: -0.1, PeriodSeconds: 60},
		{BaseRate: 4, Amplitude: 1.1, PeriodSeconds: 60},
		{BaseRate: 4, Amplitude: 0.5, PeriodSeconds: 0},
	} {
		if _, err := DiurnalArrivals(gen, bad, 4, 10, 1); err == nil {
			t.Errorf("invalid spec %+v accepted", bad)
		}
	}
	if _, err := DiurnalArrivals(nil, DiurnalSpec{BaseRate: 4, Amplitude: 0.5, PeriodSeconds: 60}, 4, 10, 1); err == nil {
		t.Error("nil generator accepted")
	}
}

func TestArrivalsByFlag(t *testing.T) {
	for _, spec := range []string{"", "poisson", "mmpp:4", "mmpp:4:2", "diurnal:60", "diurnal:60:0.5"} {
		arr, err := ArrivalsByFlag(spec, modGen(t, 3), 4, 4, 50, 9)
		if err != nil {
			t.Errorf("ArrivalsByFlag(%q): %v", spec, err)
			continue
		}
		if len(arr) != 50 {
			t.Errorf("ArrivalsByFlag(%q): %d arrivals, want 50", spec, len(arr))
		}
		// Byte-determinism across calls, the property sweeps rely on.
		again, err := ArrivalsByFlag(spec, modGen(t, 3), 4, 4, 50, 9)
		if err != nil || !reflect.DeepEqual(arr, again) {
			t.Errorf("ArrivalsByFlag(%q) not deterministic", spec)
		}
	}
	for _, bad := range []string{"mmpp", "mmpp:0.5", "mmpp:4:0", "mmpp:4:2:9", "diurnal", "diurnal:0", "diurnal:60:2", "weibull:3"} {
		if _, err := ArrivalsByFlag(bad, modGen(t, 3), 4, 4, 50, 9); err == nil {
			t.Errorf("ArrivalsByFlag(%q): want error", bad)
		}
	}
}

func TestMMPPMeanRateNormalisation(t *testing.T) {
	// The mmpp:<burst> grammar promises a time-averaged rate equal to
	// the -rate argument.
	arr, err := ArrivalsByFlag("mmpp:4:2", modGen(t, 3), 6, 4, 4000, 21)
	if err != nil {
		t.Fatalf("ArrivalsByFlag: %v", err)
	}
	got := OfferedRate(arr)
	if got < 0.75*6 || got > 1.25*6 {
		t.Errorf("empirical mmpp rate %g, want ~6", got)
	}
}
