package workload

import (
	"fmt"
	"math/rand"
	"sort"
)

// Arrival is one request tagged with its arrival time in an online
// serving trace. The batch simulators (cluster.System.Run) ignore time;
// the serving simulator (internal/serve) admits requests only once the
// simulated clock reaches At.
type Arrival struct {
	Req Request
	// At is the arrival time in seconds since the start of the trace.
	At float64
	// Session groups requests that belong to one conversation; the
	// session-affinity load-balancing policy routes all requests of a
	// session to the same replica (their KV prefixes could be reused).
	Session int
}

// PoissonArrivals samples n arrivals from a Poisson process with the
// given rate (requests per second): inter-arrival gaps are exponential
// with mean 1/rate, request sizes come from gen, and each request is
// assigned to one of `sessions` session keys uniformly at random. The
// whole schedule is driven by a deterministic RNG derived from seed, so
// the same (gen seed, rate, sessions, n, seed) tuple always yields the
// same schedule — latency tables built from it are reproducible in CI.
func PoissonArrivals(gen *Generator, rate float64, sessions, n int, seed int64) ([]Arrival, error) {
	switch {
	case gen == nil:
		return nil, fmt.Errorf("workload: PoissonArrivals needs a generator")
	case rate <= 0:
		return nil, fmt.Errorf("workload: arrival rate must be positive, got %g", rate)
	case sessions <= 0:
		return nil, fmt.Errorf("workload: session count must be positive, got %d", sessions)
	case n < 0:
		return nil, fmt.Errorf("workload: arrival count must be non-negative, got %d", n)
	}
	rng := rand.New(rand.NewSource(seed))
	arr := make([]Arrival, n)
	clock := 0.0
	for i := range arr {
		clock += rng.ExpFloat64() / rate
		arr[i] = Arrival{Req: gen.Next(), At: clock, Session: rng.Intn(sessions)}
	}
	return arr, nil
}

// ReplayArrivals pairs an explicit timestamp schedule with requests,
// replaying a recorded production trace: times[i] is when reqs[i]
// arrives. Times must be non-negative and non-decreasing. Each request
// keeps its own session (Session = Req.ID); callers replaying real
// conversation traces can overwrite Session afterwards.
func ReplayArrivals(times []float64, reqs []Request) ([]Arrival, error) {
	if len(times) != len(reqs) {
		return nil, fmt.Errorf("workload: replay schedule has %d times for %d requests", len(times), len(reqs))
	}
	arr := make([]Arrival, len(reqs))
	for i := range reqs {
		switch {
		case times[i] < 0:
			return nil, fmt.Errorf("workload: replay time %d is negative (%g)", i, times[i])
		case i > 0 && times[i] < times[i-1]:
			return nil, fmt.Errorf("workload: replay times not sorted at %d (%g after %g)", i, times[i], times[i-1])
		}
		arr[i] = Arrival{Req: reqs[i], At: times[i], Session: reqs[i].ID}
	}
	return arr, nil
}

// MultiTurnSpec describes a multi-turn conversation workload: sessions
// whose follow-up turns re-send the whole conversation so far, so each
// turn's context is the previous turn's context plus everything
// generated plus the new user prompt — the KV cache of a session keeps
// re-extending, the long-context growth pattern chat serving must
// absorb.
type MultiTurnSpec struct {
	// Sessions is the number of conversations.
	Sessions int
	// Turns is the number of turns per conversation (later turns are
	// dropped if MaxContext would be exceeded).
	Turns int
	// Rate is the session-start rate in sessions per second (Poisson).
	Rate float64
	// ThinkMean is the mean think time in seconds between a turn's
	// arrival and the next turn of the same session (exponential).
	ThinkMean float64
	// PromptMin/PromptMax bound the extra user-prompt tokens a
	// follow-up turn appends (uniform).
	PromptMin, PromptMax int
	// MaxContext, when positive, drops the rest of a session once a
	// turn's context plus its generation would exceed it (a serving
	// system cannot admit past the model's window anyway).
	MaxContext int
}

// Validate reports inconsistent specs.
func (s MultiTurnSpec) Validate() error {
	switch {
	case s.Sessions <= 0 || s.Turns <= 0:
		return fmt.Errorf("workload: multi-turn needs positive Sessions and Turns")
	case s.Rate <= 0:
		return fmt.Errorf("workload: multi-turn session rate must be positive, got %g", s.Rate)
	case s.ThinkMean < 0:
		return fmt.Errorf("workload: negative think time %g", s.ThinkMean)
	case s.PromptMin < 0 || s.PromptMax < s.PromptMin:
		return fmt.Errorf("workload: prompt-delta bounds [%d,%d] out of range", s.PromptMin, s.PromptMax)
	}
	return nil
}

// MultiTurnArrivals builds a deterministic multi-turn conversation
// schedule: session starts form a Poisson process at spec.Rate, turn-0
// contexts come from gen, and every follow-up turn re-extends its
// session's context by the previous generation plus a fresh prompt
// delta, arriving one exponential think time after the previous turn.
// Arrivals are returned sorted by time (sessions interleave); request
// IDs are session*Turns+turn, so a session's KV growth can be traced
// back from the ID.
func MultiTurnArrivals(gen *Generator, spec MultiTurnSpec, seed int64) ([]Arrival, error) {
	if gen == nil {
		return nil, fmt.Errorf("workload: MultiTurnArrivals needs a generator")
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	var arr []Arrival
	start := 0.0
	for s := 0; s < spec.Sessions; s++ {
		start += rng.ExpFloat64() / spec.Rate
		at := start
		ctx := gen.SampleContext()
		for turn := 0; turn < spec.Turns; turn++ {
			dec := gen.SampleDecode()
			if spec.MaxContext > 0 && ctx+dec > spec.MaxContext {
				break // the conversation outgrew the window
			}
			arr = append(arr, Arrival{
				Req:     Request{ID: s*spec.Turns + turn, Context: ctx, Decode: dec},
				At:      at,
				Session: s,
			})
			ctx += dec + spec.PromptMin + rng.Intn(spec.PromptMax-spec.PromptMin+1)
			at += rng.ExpFloat64() * spec.ThinkMean
		}
	}
	if len(arr) == 0 {
		return nil, fmt.Errorf("workload: every session outgrew MaxContext %d on turn 0", spec.MaxContext)
	}
	sort.Slice(arr, func(i, j int) bool {
		if arr[i].At != arr[j].At {
			return arr[i].At < arr[j].At
		}
		return arr[i].Req.ID < arr[j].Req.ID
	})
	return arr, nil
}

// OfferedRate is the empirical arrival rate of a schedule: requests per
// second over the span from time zero to the last arrival. It is the
// serving simulator's x-axis when plotting latency–throughput curves.
func OfferedRate(arr []Arrival) float64 {
	if len(arr) == 0 {
		return 0
	}
	last := arr[len(arr)-1].At
	if last <= 0 {
		return 0
	}
	return float64(len(arr)) / last
}
