package workload

import (
	"fmt"
	"math/rand"
)

// Arrival is one request tagged with its arrival time in an online
// serving trace. The batch simulators (cluster.System.Run) ignore time;
// the serving simulator (internal/serve) admits requests only once the
// simulated clock reaches At.
type Arrival struct {
	Req Request
	// At is the arrival time in seconds since the start of the trace.
	At float64
	// Session groups requests that belong to one conversation; the
	// session-affinity load-balancing policy routes all requests of a
	// session to the same replica (their KV prefixes could be reused).
	Session int
}

// PoissonArrivals samples n arrivals from a Poisson process with the
// given rate (requests per second): inter-arrival gaps are exponential
// with mean 1/rate, request sizes come from gen, and each request is
// assigned to one of `sessions` session keys uniformly at random. The
// whole schedule is driven by a deterministic RNG derived from seed, so
// the same (gen seed, rate, sessions, n, seed) tuple always yields the
// same schedule — latency tables built from it are reproducible in CI.
func PoissonArrivals(gen *Generator, rate float64, sessions, n int, seed int64) ([]Arrival, error) {
	switch {
	case gen == nil:
		return nil, fmt.Errorf("workload: PoissonArrivals needs a generator")
	case rate <= 0:
		return nil, fmt.Errorf("workload: arrival rate must be positive, got %g", rate)
	case sessions <= 0:
		return nil, fmt.Errorf("workload: session count must be positive, got %d", sessions)
	case n < 0:
		return nil, fmt.Errorf("workload: arrival count must be non-negative, got %d", n)
	}
	rng := rand.New(rand.NewSource(seed))
	arr := make([]Arrival, n)
	clock := 0.0
	for i := range arr {
		clock += rng.ExpFloat64() / rate
		arr[i] = Arrival{Req: gen.Next(), At: clock, Session: rng.Intn(sessions)}
	}
	return arr, nil
}

// ReplayArrivals pairs an explicit timestamp schedule with requests,
// replaying a recorded production trace: times[i] is when reqs[i]
// arrives. Times must be non-negative and non-decreasing. Each request
// keeps its own session (Session = Req.ID); callers replaying real
// conversation traces can overwrite Session afterwards.
func ReplayArrivals(times []float64, reqs []Request) ([]Arrival, error) {
	if len(times) != len(reqs) {
		return nil, fmt.Errorf("workload: replay schedule has %d times for %d requests", len(times), len(reqs))
	}
	arr := make([]Arrival, len(reqs))
	for i := range reqs {
		switch {
		case times[i] < 0:
			return nil, fmt.Errorf("workload: replay time %d is negative (%g)", i, times[i])
		case i > 0 && times[i] < times[i-1]:
			return nil, fmt.Errorf("workload: replay times not sorted at %d (%g after %g)", i, times[i], times[i-1])
		}
		arr[i] = Arrival{Req: reqs[i], At: times[i], Session: reqs[i].ID}
	}
	return arr, nil
}

// OfferedRate is the empirical arrival rate of a schedule: requests per
// second over the span from time zero to the last arrival. It is the
// serving simulator's x-axis when plotting latency–throughput curves.
func OfferedRate(arr []Arrival) float64 {
	if len(arr) == 0 {
		return 0
	}
	last := arr[len(arr)-1].At
	if last <= 0 {
		return 0
	}
	return float64(len(arr)) / last
}
