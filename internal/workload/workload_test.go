package workload

import (
	"math"
	"reflect"
	"testing"
	"testing/quick"
)

func TestTracesValidate(t *testing.T) {
	for _, tr := range All() {
		if err := tr.Validate(); err != nil {
			t.Errorf("%s: %v", tr.Name, err)
		}
	}
}

func TestByName(t *testing.T) {
	tr, err := ByName("QMSum")
	if err != nil || tr.Suite != "LongBench" {
		t.Fatalf("ByName(QMSum) = %+v, %v", tr, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown trace should error")
	}
}

// TestTable2Reproduction checks that sampled statistics land near the
// paper's Table II values. The normal fit is truncated, which biases the
// sample mean slightly; we allow 15% on mean and 35% on std.
func TestTable2Reproduction(t *testing.T) {
	for _, tr := range All() {
		g := NewGenerator(tr, 42)
		st := Summarize(g.Batch(4000))
		if rel := math.Abs(st.Mean-tr.Mean) / tr.Mean; rel > 0.15 {
			t.Errorf("%s: sample mean %.0f vs table %.0f (%.1f%% off)", tr.Name, st.Mean, tr.Mean, 100*rel)
		}
		if tr.Std > 0 {
			if rel := math.Abs(st.Std-tr.Std) / tr.Std; rel > 0.35 {
				t.Errorf("%s: sample std %.0f vs table %.0f (%.1f%% off)", tr.Name, st.Std, tr.Std, 100*rel)
			}
		}
		if st.Min < tr.Min || st.Max > tr.Max {
			t.Errorf("%s: sample range [%d,%d] escapes table range [%d,%d]",
				tr.Name, st.Min, st.Max, tr.Min, tr.Max)
		}
	}
}

func TestDeterminism(t *testing.T) {
	a := NewGenerator(QMSum(), 7).Batch(100)
	b := NewGenerator(QMSum(), 7).Batch(100)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("generators with same seed diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
	c := NewGenerator(QMSum(), 8).Batch(100)
	same := true
	for i := range a {
		if a[i].Context != c[i].Context {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestRequestIDsAreSequential(t *testing.T) {
	g := NewGenerator(Musique(), 1)
	for i := 0; i < 10; i++ {
		if r := g.Next(); r.ID != i {
			t.Fatalf("request %d has ID %d", i, r.ID)
		}
	}
}

// Property: samples always respect the trace's truncation bounds.
func TestSampleBoundsProperty(t *testing.T) {
	f := func(seed int64, which uint8) bool {
		tr := All()[int(which)%4]
		g := NewGenerator(tr, seed)
		for i := 0; i < 50; i++ {
			c := g.SampleContext()
			if c < tr.Min || c > tr.Max {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestThreeSigma(t *testing.T) {
	g := ThreeSigma(65536, 3)
	st := Summarize(g.Batch(2000))
	if math.Abs(st.Mean-65536)/65536 > 0.05 {
		t.Errorf("3-sigma mean %.0f, want ~65536", st.Mean)
	}
	if st.Min < 65536/2 || st.Max > 3*65536/2 {
		t.Errorf("3-sigma range [%d,%d] out of bounds", st.Min, st.Max)
	}
}

func TestUniform(t *testing.T) {
	g := Uniform(4096, 1)
	for _, r := range g.Batch(10) {
		if r.Context != 4096 {
			t.Fatalf("uniform generator produced %d", r.Context)
		}
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if st := Summarize(nil); st.N != 0 || st.Mean != 0 {
		t.Fatalf("empty summary should be zero, got %+v", st)
	}
}

func TestSummarizeKnownValues(t *testing.T) {
	reqs := []Request{{Context: 10}, {Context: 20}, {Context: 30}}
	st := Summarize(reqs)
	if st.Mean != 20 || st.Min != 10 || st.Max != 30 || st.Median != 20 || st.N != 3 {
		t.Fatalf("unexpected summary %+v", st)
	}
	want := math.Sqrt(200.0 / 3.0)
	if math.Abs(st.Std-want) > 1e-9 {
		t.Fatalf("std = %f, want %f", st.Std, want)
	}
}

func TestValidateCatchesBadTraces(t *testing.T) {
	bad := []Trace{
		{Name: "a", Mean: -1, Std: 1, Min: 1, Max: 2},
		{Name: "b", Mean: 10, Std: 1, Min: 5, Max: 4},
		{Name: "c", Mean: 100, Std: 1, Min: 1, Max: 50},
		{Name: "d", Mean: 10, Std: -2, Min: 1, Max: 50},
	}
	for _, tr := range bad {
		if err := tr.Validate(); err == nil {
			t.Errorf("trace %s should fail validation", tr.Name)
		}
	}
}

func TestHeavyTailedBoundsAndDeterminism(t *testing.T) {
	mk := func() *Generator {
		g, err := HeavyTailed(2048, 30000, 1.1, 9)
		if err != nil {
			t.Fatal(err)
		}
		if err := g.HeavyTailDecode(16, 256, 1.1); err != nil {
			t.Fatal(err)
		}
		return g
	}
	a, b := mk().Batch(4000), mk().Batch(4000)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("heavy-tailed generator not deterministic")
	}
	tr := mk().Trace()
	if err := tr.Validate(); err != nil {
		t.Fatalf("synthetic trace stats invalid: %v", err)
	}
	small, big := 0, 0
	for _, r := range a {
		if r.Context < 2048 || r.Context > 30000 {
			t.Fatalf("context %d outside [2048,30000]", r.Context)
		}
		if r.Decode < 16 || r.Decode > 256 {
			t.Fatalf("decode %d outside [16,256]", r.Decode)
		}
		if r.Context < 2*2048 {
			small++
		}
		if r.Context > 15000 {
			big++
		}
	}
	// Power-law shape: the bulk sits near the minimum, yet the tail is
	// populated — a truncated normal with these bounds has essentially
	// no mass at both extremes at once.
	if small < len(a)/2 {
		t.Errorf("only %d/%d requests near the minimum; not heavy-bodied", small, len(a))
	}
	if big == 0 {
		t.Error("no requests in the tail; not heavy-tailed")
	}
	mean := boundedParetoMean(2048, 30000, 1.1)
	if got := Summarize(a).Mean; got < 0.9*mean || got > 1.1*mean {
		t.Errorf("sample mean %.0f far from analytic %.0f", got, mean)
	}
	// Alpha = 1 uses the closed-form log mean; sanity-check it too.
	if m := boundedParetoMean(100, 1000, 1); m <= 100 || m >= 1000 {
		t.Errorf("alpha=1 mean %.1f outside bounds", m)
	}
}

func TestHeavyTailedErrors(t *testing.T) {
	if _, err := HeavyTailed(0, 100, 1.2, 1); err == nil {
		t.Error("zero min should fail")
	}
	if _, err := HeavyTailed(100, 100, 1.2, 1); err == nil {
		t.Error("max == min should fail")
	}
	if _, err := HeavyTailed(100, 200, 0, 1); err == nil {
		t.Error("zero alpha should fail")
	}
	g := Uniform(64, 1)
	if err := g.HeavyTailDecode(0, 10, 1.2); err == nil {
		t.Error("zero decode min should fail")
	}
	if err := g.HeavyTailDecode(10, 5, 1.2); err == nil {
		t.Error("inverted decode bounds should fail")
	}
}

func TestGeneratorByFlagHeavy(t *testing.T) {
	g, err := GeneratorByFlag("heavy:1024-8192", 3)
	if err != nil {
		t.Fatal(err)
	}
	if tr := g.Trace(); tr.Min != 1024 || tr.Max != 8192 {
		t.Errorf("bounds [%d,%d], want [1024,8192]", tr.Min, tr.Max)
	}
	if _, err := GeneratorByFlag("heavy:1024-8192:2.5", 3); err != nil {
		t.Errorf("explicit alpha rejected: %v", err)
	}
	for _, bad := range []string{"heavy:1024", "heavy:a-b", "heavy:1024-8192:x", "heavy:8192-1024"} {
		if _, err := GeneratorByFlag(bad, 3); err == nil {
			t.Errorf("%q should fail", bad)
		}
	}
}
