// Package workload synthesises the long-context request traces the paper
// evaluates on. The paper consumes LongBench (QMSum, Musique) and LV-Eval
// (multifieldqa_en_mixup, Loogle-SD) only through their input context-length
// distributions (Table II); we reproduce those statistics with a truncated
// normal sampler driven by a deterministic RNG, so every experiment is
// exactly repeatable.
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strconv"
	"strings"
)

// Trace names the four evaluated benchmarks.
type Trace struct {
	Name  string
	Suite string // "LongBench" or "LV-Eval"
	Mean  float64
	Std   float64
	Min   int
	Max   int
}

// Table II statistics.
func QMSum() Trace {
	return Trace{Name: "QMSum", Suite: "LongBench", Mean: 13966, Std: 6182, Min: 2651, Max: 30456}
}

func Musique() Trace {
	return Trace{Name: "Musique", Suite: "LongBench", Mean: 16362, Std: 1651, Min: 6820, Max: 17917}
}

func MultiFieldQA() Trace {
	return Trace{Name: "multifieldqa", Suite: "LV-Eval", Mean: 60780, Std: 31025, Min: 20333, Max: 119480}
}

func LoogleSD() Trace {
	return Trace{Name: "Loogle-SD", Suite: "LV-Eval", Mean: 50693, Std: 26506, Min: 13347, Max: 109221}
}

// All returns the four traces in the paper's Table II order.
func All() []Trace { return []Trace{QMSum(), Musique(), MultiFieldQA(), LoogleSD()} }

// ByName finds a trace by its Table II name.
func ByName(name string) (Trace, error) {
	for _, tr := range All() {
		if tr.Name == name {
			return tr, nil
		}
	}
	return Trace{}, fmt.Errorf("workload: unknown trace %q", name)
}

// GeneratorByFlag builds a generator from the trace argument the CLI
// binaries share: a Table II trace name (ByName), "uniform:<tokens>"
// for a fixed-length microbenchmark workload, or
// "heavy:<min>-<max>[:alpha]" for a bounded-Pareto heavy-tailed one
// (alpha defaults to 1.2).
func GeneratorByFlag(name string, seed int64) (*Generator, error) {
	if rest, ok := strings.CutPrefix(name, "uniform:"); ok {
		tokens, err := strconv.Atoi(rest)
		if err != nil || tokens <= 0 {
			return nil, fmt.Errorf("workload: bad uniform trace %q (want uniform:<tokens>)", name)
		}
		return Uniform(tokens, seed), nil
	}
	if rest, ok := strings.CutPrefix(name, "heavy:"); ok {
		alpha := 1.2
		if bounds, alphaStr, hasAlpha := strings.Cut(rest, ":"); hasAlpha {
			v, err := strconv.ParseFloat(alphaStr, 64)
			if err != nil {
				return nil, fmt.Errorf("workload: bad heavy-tail alpha in %q", name)
			}
			alpha, rest = v, bounds
		}
		loStr, hiStr, ok := strings.Cut(rest, "-")
		if !ok {
			return nil, fmt.Errorf("workload: bad heavy trace %q (want heavy:<min>-<max>[:alpha])", name)
		}
		lo, err1 := strconv.Atoi(loStr)
		hi, err2 := strconv.Atoi(hiStr)
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("workload: bad heavy trace %q (want heavy:<min>-<max>[:alpha])", name)
		}
		return HeavyTailed(lo, hi, alpha, seed)
	}
	tr, err := ByName(name)
	if err != nil {
		return nil, err
	}
	return NewGenerator(tr, seed), nil
}

// Validate reports inconsistent statistics.
func (t Trace) Validate() error {
	switch {
	case t.Mean <= 0 || t.Std < 0:
		return fmt.Errorf("workload %s: mean/std out of range", t.Name)
	case t.Min <= 0 || t.Max < t.Min:
		return fmt.Errorf("workload %s: min/max out of range", t.Name)
	case t.Mean < float64(t.Min) || t.Mean > float64(t.Max):
		return fmt.Errorf("workload %s: mean outside [min,max]", t.Name)
	}
	return nil
}

// Request is one inference request: a prefilled context plus the number of
// tokens to generate during decode.
type Request struct {
	ID      int
	Context int // prompt tokens already in the KV cache
	Decode  int // tokens to generate
}

// Generator samples deterministic request streams from a trace.
type Generator struct {
	trace Trace
	rng   *rand.Rand
	// DecodeLen is the generation length per request. The paper's
	// throughput metric is decode tokens/sec; a fixed modest generation
	// window mirrors the LongBench answer lengths.
	DecodeLen int
	// sampleCtx, when set, replaces the truncated-normal context sampler
	// (HeavyTailed installs a bounded-Pareto draw).
	sampleCtx func(*rand.Rand) int
	// sampleDecode, when set, replaces the fixed DecodeLen
	// (HeavyTailDecode installs a bounded-Pareto draw).
	sampleDecode func(*rand.Rand) int
	next         int
}

// NewGenerator creates a deterministic generator for a trace.
func NewGenerator(t Trace, seed int64) *Generator {
	return &Generator{trace: t, rng: rand.New(rand.NewSource(seed)), DecodeLen: 256}
}

// Trace returns the generator's source trace.
func (g *Generator) Trace() Trace { return g.trace }

// SampleContext draws one context length from the truncated normal fit of
// the trace statistics (or the generator's custom sampler, if installed).
func (g *Generator) SampleContext() int {
	if g.sampleCtx != nil {
		return g.sampleCtx(g.rng)
	}
	for {
		v := g.trace.Mean + g.trace.Std*g.rng.NormFloat64()
		if v >= float64(g.trace.Min) && v <= float64(g.trace.Max) {
			return int(v)
		}
	}
}

// SampleDecode draws one generation length: the fixed DecodeLen unless a
// heavy-tailed decode distribution is installed (HeavyTailDecode).
func (g *Generator) SampleDecode() int {
	if g.sampleDecode != nil {
		return g.sampleDecode(g.rng)
	}
	return g.DecodeLen
}

// Next produces the next request.
func (g *Generator) Next() Request {
	r := Request{ID: g.next, Context: g.SampleContext(), Decode: g.SampleDecode()}
	g.next++
	return r
}

// Batch produces n requests.
func (g *Generator) Batch(n int) []Request {
	rs := make([]Request, n)
	for i := range rs {
		rs[i] = g.Next()
	}
	return rs
}

// ---------------------------------------------------------------------------
// Synthetic variation sets (Fig. 17)
// ---------------------------------------------------------------------------

// ThreeSigma builds the paper's Fig. 17 workload: requests centred on a
// target context with 3-sigma variation, truncated to [mean/2, 3*mean/2] so
// the mean context is exactly the sweep point.
func ThreeSigma(meanContext int, seed int64) *Generator {
	m := float64(meanContext)
	t := Trace{
		Name:  fmt.Sprintf("3sigma-%d", meanContext),
		Suite: "synthetic",
		Mean:  m,
		Std:   m / 6, // 3 sigma spans half the mean
		Min:   int(m / 2),
		Max:   int(3 * m / 2),
	}
	return NewGenerator(t, seed)
}

// Uniform builds a fixed-length workload (every request at exactly n
// tokens) for controlled microbenchmarks.
func Uniform(n int, seed int64) *Generator {
	t := Trace{Name: fmt.Sprintf("uniform-%d", n), Suite: "synthetic", Mean: float64(n), Std: 0, Min: n, Max: n}
	return NewGenerator(t, seed)
}

// ---------------------------------------------------------------------------
// Heavy-tailed workloads (serving scenario diversity beyond Table II)
// ---------------------------------------------------------------------------

// boundedPareto draws from a Pareto distribution with tail index alpha
// truncated to [lo, hi], via the inverse CDF. Small alpha (≈1) puts
// real mass on the extreme contexts that stress KV capacity; large
// alpha concentrates near lo.
func boundedPareto(rng *rand.Rand, lo, hi float64, alpha float64) float64 {
	u := rng.Float64()
	r := math.Pow(lo/hi, alpha)
	return lo / math.Pow(1-u*(1-r), 1/alpha)
}

// boundedParetoMean is the analytic mean of the bounded Pareto.
func boundedParetoMean(lo, hi, alpha float64) float64 {
	if alpha == 1 {
		return lo * hi / (hi - lo) * math.Log(hi/lo)
	}
	r := math.Pow(lo/hi, alpha)
	return alpha * math.Pow(lo, alpha) / (1 - r) *
		(math.Pow(hi, 1-alpha) - math.Pow(lo, 1-alpha)) / (1 - alpha)
}

// HeavyTailed builds a generator whose context lengths follow a bounded
// Pareto (power-law) distribution on [minCtx, maxCtx] with tail index
// alpha — mostly modest prompts with a fat tail of near-window ones,
// the mix that makes static T_max reservation waste the most capacity
// (every small request still reserves for the tail).
func HeavyTailed(minCtx, maxCtx int, alpha float64, seed int64) (*Generator, error) {
	if minCtx <= 0 || maxCtx <= minCtx || alpha <= 0 {
		return nil, fmt.Errorf("workload: heavy-tailed params out of range (min %d, max %d, alpha %g)",
			minCtx, maxCtx, alpha)
	}
	mean := boundedParetoMean(float64(minCtx), float64(maxCtx), alpha)
	t := Trace{
		Name:  fmt.Sprintf("heavy-%d-%d", minCtx, maxCtx),
		Suite: "synthetic",
		Mean:  mean,
		Std:   mean, // descriptive: heavy tails have std on the order of the mean
		Min:   minCtx,
		Max:   maxCtx,
	}
	g := NewGenerator(t, seed)
	g.sampleCtx = func(rng *rand.Rand) int {
		return int(boundedPareto(rng, float64(minCtx), float64(maxCtx), alpha))
	}
	return g, nil
}

// HeavyTailDecode switches the generator's generation lengths from the
// fixed DecodeLen to a bounded Pareto draw on [minDec, maxDec]: most
// answers short, a fat tail of long generations that keep growing their
// KV — the decode-side pressure DPA's lazy chunks absorb and static
// reservation pre-pays for.
func (g *Generator) HeavyTailDecode(minDec, maxDec int, alpha float64) error {
	if minDec <= 0 || maxDec <= minDec || alpha <= 0 {
		return fmt.Errorf("workload: heavy-tailed decode params out of range (min %d, max %d, alpha %g)",
			minDec, maxDec, alpha)
	}
	g.sampleDecode = func(rng *rand.Rand) int {
		return int(boundedPareto(rng, float64(minDec), float64(maxDec), alpha))
	}
	return nil
}

// ---------------------------------------------------------------------------
// Statistics (to verify Table II reproduction)
// ---------------------------------------------------------------------------

// Stats summarises a sample of context lengths.
type Stats struct {
	Mean, Std        float64
	Min, Max, Median int
	N                int
}

// Summarize computes sample statistics over request context lengths.
func Summarize(reqs []Request) Stats {
	if len(reqs) == 0 {
		return Stats{}
	}
	xs := make([]int, len(reqs))
	var sum float64
	mn, mx := reqs[0].Context, reqs[0].Context
	for i, r := range reqs {
		xs[i] = r.Context
		sum += float64(r.Context)
		if r.Context < mn {
			mn = r.Context
		}
		if r.Context > mx {
			mx = r.Context
		}
	}
	mean := sum / float64(len(reqs))
	var ss float64
	for _, x := range xs {
		d := float64(x) - mean
		ss += d * d
	}
	std := math.Sqrt(ss / float64(len(reqs)))
	sort.Ints(xs)
	return Stats{Mean: mean, Std: std, Min: mn, Max: mx, Median: xs[len(xs)/2], N: len(reqs)}
}
