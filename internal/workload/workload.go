// Package workload synthesises the long-context request traces the paper
// evaluates on. The paper consumes LongBench (QMSum, Musique) and LV-Eval
// (multifieldqa_en_mixup, Loogle-SD) only through their input context-length
// distributions (Table II); we reproduce those statistics with a truncated
// normal sampler driven by a deterministic RNG, so every experiment is
// exactly repeatable.
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strconv"
	"strings"
)

// Trace names the four evaluated benchmarks.
type Trace struct {
	Name  string
	Suite string // "LongBench" or "LV-Eval"
	Mean  float64
	Std   float64
	Min   int
	Max   int
}

// Table II statistics.
func QMSum() Trace {
	return Trace{Name: "QMSum", Suite: "LongBench", Mean: 13966, Std: 6182, Min: 2651, Max: 30456}
}

func Musique() Trace {
	return Trace{Name: "Musique", Suite: "LongBench", Mean: 16362, Std: 1651, Min: 6820, Max: 17917}
}

func MultiFieldQA() Trace {
	return Trace{Name: "multifieldqa", Suite: "LV-Eval", Mean: 60780, Std: 31025, Min: 20333, Max: 119480}
}

func LoogleSD() Trace {
	return Trace{Name: "Loogle-SD", Suite: "LV-Eval", Mean: 50693, Std: 26506, Min: 13347, Max: 109221}
}

// All returns the four traces in the paper's Table II order.
func All() []Trace { return []Trace{QMSum(), Musique(), MultiFieldQA(), LoogleSD()} }

// ByName finds a trace by its Table II name.
func ByName(name string) (Trace, error) {
	for _, tr := range All() {
		if tr.Name == name {
			return tr, nil
		}
	}
	return Trace{}, fmt.Errorf("workload: unknown trace %q", name)
}

// GeneratorByFlag builds a generator from the trace argument the CLI
// binaries share: a Table II trace name (ByName) or "uniform:<tokens>"
// for a fixed-length microbenchmark workload.
func GeneratorByFlag(name string, seed int64) (*Generator, error) {
	if rest, ok := strings.CutPrefix(name, "uniform:"); ok {
		tokens, err := strconv.Atoi(rest)
		if err != nil || tokens <= 0 {
			return nil, fmt.Errorf("workload: bad uniform trace %q (want uniform:<tokens>)", name)
		}
		return Uniform(tokens, seed), nil
	}
	tr, err := ByName(name)
	if err != nil {
		return nil, err
	}
	return NewGenerator(tr, seed), nil
}

// Validate reports inconsistent statistics.
func (t Trace) Validate() error {
	switch {
	case t.Mean <= 0 || t.Std < 0:
		return fmt.Errorf("workload %s: mean/std out of range", t.Name)
	case t.Min <= 0 || t.Max < t.Min:
		return fmt.Errorf("workload %s: min/max out of range", t.Name)
	case t.Mean < float64(t.Min) || t.Mean > float64(t.Max):
		return fmt.Errorf("workload %s: mean outside [min,max]", t.Name)
	}
	return nil
}

// Request is one inference request: a prefilled context plus the number of
// tokens to generate during decode.
type Request struct {
	ID      int
	Context int // prompt tokens already in the KV cache
	Decode  int // tokens to generate
}

// Generator samples deterministic request streams from a trace.
type Generator struct {
	trace Trace
	rng   *rand.Rand
	// DecodeLen is the generation length per request. The paper's
	// throughput metric is decode tokens/sec; a fixed modest generation
	// window mirrors the LongBench answer lengths.
	DecodeLen int
	next      int
}

// NewGenerator creates a deterministic generator for a trace.
func NewGenerator(t Trace, seed int64) *Generator {
	return &Generator{trace: t, rng: rand.New(rand.NewSource(seed)), DecodeLen: 256}
}

// Trace returns the generator's source trace.
func (g *Generator) Trace() Trace { return g.trace }

// SampleContext draws one context length from the truncated normal fit of
// the trace statistics.
func (g *Generator) SampleContext() int {
	for {
		v := g.trace.Mean + g.trace.Std*g.rng.NormFloat64()
		if v >= float64(g.trace.Min) && v <= float64(g.trace.Max) {
			return int(v)
		}
	}
}

// Next produces the next request.
func (g *Generator) Next() Request {
	r := Request{ID: g.next, Context: g.SampleContext(), Decode: g.DecodeLen}
	g.next++
	return r
}

// Batch produces n requests.
func (g *Generator) Batch(n int) []Request {
	rs := make([]Request, n)
	for i := range rs {
		rs[i] = g.Next()
	}
	return rs
}

// ---------------------------------------------------------------------------
// Synthetic variation sets (Fig. 17)
// ---------------------------------------------------------------------------

// ThreeSigma builds the paper's Fig. 17 workload: requests centred on a
// target context with 3-sigma variation, truncated to [mean/2, 3*mean/2] so
// the mean context is exactly the sweep point.
func ThreeSigma(meanContext int, seed int64) *Generator {
	m := float64(meanContext)
	t := Trace{
		Name:  fmt.Sprintf("3sigma-%d", meanContext),
		Suite: "synthetic",
		Mean:  m,
		Std:   m / 6, // 3 sigma spans half the mean
		Min:   int(m / 2),
		Max:   int(3 * m / 2),
	}
	return NewGenerator(t, seed)
}

// Uniform builds a fixed-length workload (every request at exactly n
// tokens) for controlled microbenchmarks.
func Uniform(n int, seed int64) *Generator {
	t := Trace{Name: fmt.Sprintf("uniform-%d", n), Suite: "synthetic", Mean: float64(n), Std: 0, Min: n, Max: n}
	return NewGenerator(t, seed)
}

// ---------------------------------------------------------------------------
// Statistics (to verify Table II reproduction)
// ---------------------------------------------------------------------------

// Stats summarises a sample of context lengths.
type Stats struct {
	Mean, Std        float64
	Min, Max, Median int
	N                int
}

// Summarize computes sample statistics over request context lengths.
func Summarize(reqs []Request) Stats {
	if len(reqs) == 0 {
		return Stats{}
	}
	xs := make([]int, len(reqs))
	var sum float64
	mn, mx := reqs[0].Context, reqs[0].Context
	for i, r := range reqs {
		xs[i] = r.Context
		sum += float64(r.Context)
		if r.Context < mn {
			mn = r.Context
		}
		if r.Context > mx {
			mx = r.Context
		}
	}
	mean := sum / float64(len(reqs))
	var ss float64
	for _, x := range xs {
		d := float64(x) - mean
		ss += d * d
	}
	std := math.Sqrt(ss / float64(len(reqs)))
	sort.Ints(xs)
	return Stats{Mean: mean, Std: std, Min: mn, Max: mx, Median: xs[len(xs)/2], N: len(reqs)}
}
