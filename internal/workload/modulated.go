// Rate-modulated arrival processes: traffic whose intensity changes
// over the schedule, unlike the rate-stationary Poisson/heavy-tailed
// generators. Production serving traffic is bursty on short horizons
// (an MMPP captures burst/lull alternation) and diurnal on long ones
// (a day-curve swings between a night trough and a daytime peak); both
// are what make static provisioning wasteful and SLO-driven
// autoscaling worth simulating.
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"strconv"
	"strings"
)

// MMPPSpec parameterizes a two-state Markov-modulated Poisson process:
// arrivals follow a Poisson process whose rate alternates between a
// burst state and a lull state, with exponentially distributed dwell
// times in each. It is the standard parsimonious model for bursty
// request traffic — overdispersed relative to a Poisson process of the
// same mean rate (index of dispersion > 1).
type MMPPSpec struct {
	// RateHigh / RateLow are the arrival rates (requests/second) in the
	// burst and lull states. RateHigh must be positive; RateLow may be
	// zero (complete silence between bursts) but not negative.
	RateHigh, RateLow float64
	// DwellHigh / DwellLow are the mean dwell times (seconds) in each
	// state; actual dwells are exponential.
	DwellHigh, DwellLow float64
}

// Validate reports inconsistent specs.
func (s MMPPSpec) Validate() error {
	switch {
	case s.RateHigh <= 0:
		return fmt.Errorf("workload: MMPP burst rate must be positive, got %g", s.RateHigh)
	case s.RateLow < 0:
		return fmt.Errorf("workload: MMPP lull rate must be non-negative, got %g", s.RateLow)
	case s.RateLow > s.RateHigh:
		return fmt.Errorf("workload: MMPP lull rate %g above burst rate %g", s.RateLow, s.RateHigh)
	case s.DwellHigh <= 0 || s.DwellLow <= 0:
		return fmt.Errorf("workload: MMPP dwell times must be positive, got %g/%g", s.DwellHigh, s.DwellLow)
	}
	return nil
}

// MeanRate is the spec's time-averaged arrival rate (dwell-weighted).
func (s MMPPSpec) MeanRate() float64 {
	return (s.RateHigh*s.DwellHigh + s.RateLow*s.DwellLow) / (s.DwellHigh + s.DwellLow)
}

// MMPPArrivals samples n arrivals from the modulated process. The
// schedule starts in the lull state. Like PoissonArrivals, the whole
// schedule is driven by one deterministic RNG derived from seed — the
// same (gen seed, spec, sessions, n, seed) tuple always yields the
// same schedule, byte for byte, so tables built from it are
// reproducible at any sweep parallelism.
func MMPPArrivals(gen *Generator, spec MMPPSpec, sessions, n int, seed int64) ([]Arrival, error) {
	switch {
	case gen == nil:
		return nil, fmt.Errorf("workload: MMPPArrivals needs a generator")
	case sessions <= 0:
		return nil, fmt.Errorf("workload: session count must be positive, got %d", sessions)
	case n < 0:
		return nil, fmt.Errorf("workload: arrival count must be non-negative, got %d", n)
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	rates := [2]float64{spec.RateLow, spec.RateHigh}
	dwells := [2]float64{spec.DwellLow, spec.DwellHigh}
	state := 0 // lull first: the day starts quiet
	clock := 0.0
	stateEnd := rng.ExpFloat64() * dwells[state]
	arr := make([]Arrival, n)
	for i := range arr {
		for {
			// Candidate gap at the current state's rate; a candidate past
			// the state boundary is discarded and redrawn in the next
			// state — valid by memorylessness of the exponential. A zero
			// lull rate yields an infinite gap, i.e. silence until the
			// burst resumes.
			gap := math.Inf(1)
			if rates[state] > 0 {
				gap = rng.ExpFloat64() / rates[state]
			}
			if clock+gap > stateEnd {
				clock = stateEnd
				state = 1 - state
				stateEnd = clock + rng.ExpFloat64()*dwells[state]
				continue
			}
			clock += gap
			break
		}
		arr[i] = Arrival{Req: gen.Next(), At: clock, Session: rng.Intn(sessions)}
	}
	return arr, nil
}

// DiurnalSpec parameterizes a sinusoidal day-curve: the arrival rate
// swings around BaseRate with the given amplitude over one period,
// starting at the trough (the compressed day begins at night). It is
// the non-stationary load shape that makes fixed provisioning pay for
// peak capacity all day.
type DiurnalSpec struct {
	// BaseRate is the mean arrival rate (requests/second) over a full
	// period.
	BaseRate float64
	// Amplitude is the peak swing as a fraction of BaseRate, in [0, 1]:
	// the rate runs from BaseRate*(1-Amplitude) at the trough to
	// BaseRate*(1+Amplitude) at the peak. Zero degenerates to a
	// stationary Poisson process.
	Amplitude float64
	// PeriodSeconds is the length of one simulated day.
	PeriodSeconds float64
}

// Validate reports inconsistent specs.
func (s DiurnalSpec) Validate() error {
	switch {
	case s.BaseRate <= 0:
		return fmt.Errorf("workload: diurnal base rate must be positive, got %g", s.BaseRate)
	case s.Amplitude < 0 || s.Amplitude > 1:
		return fmt.Errorf("workload: diurnal amplitude must be in [0,1], got %g", s.Amplitude)
	case s.PeriodSeconds <= 0:
		return fmt.Errorf("workload: diurnal period must be positive, got %g", s.PeriodSeconds)
	}
	return nil
}

// Rate is the instantaneous arrival rate at time t.
func (s DiurnalSpec) Rate(t float64) float64 {
	return s.BaseRate * (1 + s.Amplitude*math.Sin(2*math.Pi*t/s.PeriodSeconds-math.Pi/2))
}

// DiurnalArrivals samples n arrivals from the non-homogeneous Poisson
// process by thinning: candidates are drawn at the peak rate and
// accepted with probability Rate(t)/peak. Deterministic for a given
// seed, like every schedule builder in this package.
func DiurnalArrivals(gen *Generator, spec DiurnalSpec, sessions, n int, seed int64) ([]Arrival, error) {
	switch {
	case gen == nil:
		return nil, fmt.Errorf("workload: DiurnalArrivals needs a generator")
	case sessions <= 0:
		return nil, fmt.Errorf("workload: session count must be positive, got %d", sessions)
	case n < 0:
		return nil, fmt.Errorf("workload: arrival count must be non-negative, got %d", n)
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	peak := spec.BaseRate * (1 + spec.Amplitude)
	clock := 0.0
	arr := make([]Arrival, n)
	for i := range arr {
		for {
			clock += rng.ExpFloat64() / peak
			// rng.Float64 is in [0,1), so an amplitude-zero spec accepts
			// every candidate and degenerates to PoissonArrivals' shape.
			if rng.Float64()*peak <= spec.Rate(clock) {
				break
			}
		}
		arr[i] = Arrival{Req: gen.Next(), At: clock, Session: rng.Intn(sessions)}
	}
	return arr, nil
}

// ArrivalsByFlag builds an arrival schedule from the -arrivals CLI
// grammar, mirroring GeneratorByFlag's syntax. rate is the mean
// arrival rate every process is normalised to:
//
//	"" or "poisson"              stationary Poisson
//	"mmpp:<burst>[:<dwell-s>]"   two-state MMPP: the burst state runs at
//	                             burst times the lull state's rate, equal
//	                             mean dwells (default 8 s), scaled so the
//	                             time-averaged rate is rate
//	"diurnal:<period-s>[:<amp>]" sinusoidal day-curve with mean rate,
//	                             amplitude amp (default 0.8)
func ArrivalsByFlag(spec string, gen *Generator, rate float64, sessions, n int, seed int64) ([]Arrival, error) {
	if spec == "" || spec == "poisson" {
		return PoissonArrivals(gen, rate, sessions, n, seed)
	}
	if rest, ok := strings.CutPrefix(spec, "mmpp:"); ok {
		parts := strings.Split(rest, ":")
		if len(parts) > 2 {
			return nil, fmt.Errorf("workload: bad arrivals %q (want mmpp:<burst>[:<dwell-s>])", spec)
		}
		burst, err := strconv.ParseFloat(parts[0], 64)
		if err != nil || burst < 1 {
			return nil, fmt.Errorf("workload: bad arrivals %q: burst factor must be >= 1", spec)
		}
		dwell := 8.0
		if len(parts) == 2 {
			if dwell, err = strconv.ParseFloat(parts[1], 64); err != nil || dwell <= 0 {
				return nil, fmt.Errorf("workload: bad arrivals %q: dwell must be positive seconds", spec)
			}
		}
		// Lull at rate/burst, burst at rate*burst, then both scaled so
		// the equal-dwell time average is exactly rate.
		mean := (burst + 1/burst) / 2
		return MMPPArrivals(gen, MMPPSpec{
			RateHigh:  rate * burst / mean,
			RateLow:   rate / burst / mean,
			DwellHigh: dwell,
			DwellLow:  dwell,
		}, sessions, n, seed)
	}
	if rest, ok := strings.CutPrefix(spec, "diurnal:"); ok {
		parts := strings.Split(rest, ":")
		if len(parts) > 2 {
			return nil, fmt.Errorf("workload: bad arrivals %q (want diurnal:<period-s>[:<amp>])", spec)
		}
		period, err := strconv.ParseFloat(parts[0], 64)
		if err != nil || period <= 0 {
			return nil, fmt.Errorf("workload: bad arrivals %q: period must be positive seconds", spec)
		}
		amp := 0.8
		if len(parts) == 2 {
			if amp, err = strconv.ParseFloat(parts[1], 64); err != nil || amp < 0 || amp > 1 {
				return nil, fmt.Errorf("workload: bad arrivals %q: amplitude must be in [0,1]", spec)
			}
		}
		return DiurnalArrivals(gen, DiurnalSpec{BaseRate: rate, Amplitude: amp, PeriodSeconds: period}, sessions, n, seed)
	}
	return nil, fmt.Errorf("workload: unknown arrivals process %q (want poisson, mmpp:<burst>[:<dwell>], diurnal:<period>[:<amp>])", spec)
}
