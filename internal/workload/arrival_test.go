package workload

import (
	"math"
	"reflect"
	"sort"
	"strings"
	"testing"
)

// TestPoissonDeterminism is the reproducibility contract of the serving
// tables: the same seed must yield the same schedule (sizes, times and
// sessions), and a different seed must not.
func TestPoissonDeterminism(t *testing.T) {
	mk := func(genSeed, arrSeed int64) []Arrival {
		arr, err := PoissonArrivals(NewGenerator(QMSum(), genSeed), 4, 8, 100, arrSeed)
		if err != nil {
			t.Fatal(err)
		}
		return arr
	}
	a, b := mk(7, 11), mk(7, 11)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seeds diverged at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
	c := mk(7, 12)
	same := true
	for i := range a {
		if a[i].At != c[i].At {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different arrival seeds produced identical schedules")
	}
}

func TestPoissonSchedule(t *testing.T) {
	const rate, n = 8.0, 4000
	arr, err := PoissonArrivals(NewGenerator(Musique(), 1), rate, 4, n, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(arr) != n {
		t.Fatalf("got %d arrivals, want %d", len(arr), n)
	}
	prev := 0.0
	for i, a := range arr {
		if a.At <= prev {
			t.Fatalf("arrival %d not strictly increasing: %g after %g", i, a.At, prev)
		}
		prev = a.At
		if a.Session < 0 || a.Session >= 4 {
			t.Fatalf("arrival %d session %d out of range", i, a.Session)
		}
		if a.Req.ID != i {
			t.Fatalf("arrival %d carries request ID %d", i, a.Req.ID)
		}
	}
	// The empirical rate should be close to the configured one.
	if got := OfferedRate(arr); math.Abs(got-rate)/rate > 0.1 {
		t.Errorf("offered rate %.2f, want ~%g", got, rate)
	}
}

func TestPoissonErrors(t *testing.T) {
	gen := NewGenerator(QMSum(), 1)
	cases := []struct {
		name string
		run  func() ([]Arrival, error)
	}{
		{"nil generator", func() ([]Arrival, error) { return PoissonArrivals(nil, 1, 1, 1, 1) }},
		{"zero rate", func() ([]Arrival, error) { return PoissonArrivals(gen, 0, 1, 1, 1) }},
		{"negative rate", func() ([]Arrival, error) { return PoissonArrivals(gen, -2, 1, 1, 1) }},
		{"zero sessions", func() ([]Arrival, error) { return PoissonArrivals(gen, 1, 0, 1, 1) }},
		{"negative count", func() ([]Arrival, error) { return PoissonArrivals(gen, 1, 1, -1, 1) }},
	}
	for _, c := range cases {
		if _, err := c.run(); err == nil {
			t.Errorf("%s: want error", c.name)
		}
	}
	if arr, err := PoissonArrivals(gen, 1, 1, 0, 1); err != nil || len(arr) != 0 {
		t.Errorf("zero arrivals should be fine: %v, %v", arr, err)
	}
}

func TestReplayArrivals(t *testing.T) {
	reqs := NewGenerator(QMSum(), 3).Batch(3)
	arr, err := ReplayArrivals([]float64{0, 0.5, 0.5}, reqs)
	if err != nil {
		t.Fatal(err)
	}
	for i, a := range arr {
		if a.Req != reqs[i] {
			t.Fatalf("arrival %d request mismatch", i)
		}
		if a.Session != reqs[i].ID {
			t.Fatalf("arrival %d session %d, want request ID %d", i, a.Session, reqs[i].ID)
		}
	}
	if arr[1].At != 0.5 || arr[2].At != 0.5 {
		t.Fatalf("equal timestamps must be preserved: %+v", arr)
	}

	if _, err := ReplayArrivals([]float64{0}, reqs); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := ReplayArrivals([]float64{0, -1, 2}, reqs); err == nil {
		t.Error("negative time should error")
	}
	if _, err := ReplayArrivals([]float64{0, 2, 1}, reqs); err == nil {
		t.Error("unsorted times should error")
	}
}

func TestOfferedRateEdges(t *testing.T) {
	if r := OfferedRate(nil); r != 0 {
		t.Errorf("empty schedule rate = %g", r)
	}
	if r := OfferedRate([]Arrival{{At: 0}}); r != 0 {
		t.Errorf("zero-span schedule rate = %g", r)
	}
	if r := OfferedRate([]Arrival{{At: 1}, {At: 2}}); r != 1 {
		t.Errorf("rate = %g, want 1", r)
	}
}

// TestByNameAllTraces pins the lookup for every Table II trace and the
// error path's message content.
func TestByNameAllTraces(t *testing.T) {
	for _, want := range All() {
		got, err := ByName(want.Name)
		if err != nil {
			t.Errorf("ByName(%s): %v", want.Name, err)
			continue
		}
		if got != want {
			t.Errorf("ByName(%s) = %+v, want %+v", want.Name, got, want)
		}
	}
	_, err := ByName("qmsum") // lookup is exact, not case-folded
	if err == nil {
		t.Fatal("lowercase alias should not resolve")
	}
	if !strings.Contains(err.Error(), `"qmsum"`) {
		t.Errorf("error should quote the unknown name: %v", err)
	}
}

func TestGeneratorByFlag(t *testing.T) {
	g, err := GeneratorByFlag("QMSum", 1)
	if err != nil || g.Trace().Name != "QMSum" {
		t.Fatalf("GeneratorByFlag(QMSum) = %v, %v", g, err)
	}
	g, err = GeneratorByFlag("uniform:4096", 1)
	if err != nil {
		t.Fatal(err)
	}
	if r := g.Next(); r.Context != 4096 {
		t.Errorf("uniform:4096 produced %d", r.Context)
	}
	for _, bad := range []string{"nope", "uniform:", "uniform:x", "uniform:-3", "uniform:0"} {
		if _, err := GeneratorByFlag(bad, 1); err == nil {
			t.Errorf("%q should error", bad)
		}
	}
}

func TestSummarizeSingleAndEven(t *testing.T) {
	one := Summarize([]Request{{Context: 42}})
	if one.Mean != 42 || one.Std != 0 || one.Min != 42 || one.Max != 42 || one.Median != 42 || one.N != 1 {
		t.Errorf("single-request summary wrong: %+v", one)
	}
	// Even count: Median is the upper of the two middle values
	// (nearest-rank at index n/2 of the sorted sample).
	even := Summarize([]Request{{Context: 10}, {Context: 20}, {Context: 30}, {Context: 40}})
	if even.Median != 30 {
		t.Errorf("even-count median = %d, want 30", even.Median)
	}
	if even.Mean != 25 || even.Min != 10 || even.Max != 40 || even.N != 4 {
		t.Errorf("even-count summary wrong: %+v", even)
	}
}

func multiTurnSpec() MultiTurnSpec {
	return MultiTurnSpec{
		Sessions:   6,
		Turns:      4,
		Rate:       2,
		ThinkMean:  0.5,
		PromptMin:  64,
		PromptMax:  256,
		MaxContext: 32000,
	}
}

func TestMultiTurnArrivals(t *testing.T) {
	gen := NewGenerator(QMSum(), 11)
	gen.DecodeLen = 32
	arr, err := MultiTurnArrivals(gen, multiTurnSpec(), 12)
	if err != nil {
		t.Fatal(err)
	}
	// Deterministic: same inputs, same schedule.
	gen2 := NewGenerator(QMSum(), 11)
	gen2.DecodeLen = 32
	arr2, err := MultiTurnArrivals(gen2, multiTurnSpec(), 12)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(arr, arr2) {
		t.Fatal("multi-turn schedule not deterministic")
	}
	// Sorted by time, unique IDs.
	seen := map[int]bool{}
	for i, a := range arr {
		if i > 0 && a.At < arr[i-1].At {
			t.Fatalf("arrivals not sorted at %d", i)
		}
		if seen[a.Req.ID] {
			t.Fatalf("duplicate ID %d", a.Req.ID)
		}
		seen[a.Req.ID] = true
	}
	// Within a session, each turn re-extends the context by at least
	// the previous generation plus the minimum prompt delta, and stays
	// under MaxContext.
	bySession := map[int][]Arrival{}
	for _, a := range arr {
		bySession[a.Session] = append(bySession[a.Session], a)
	}
	if len(bySession) != 6 {
		t.Fatalf("%d sessions, want 6", len(bySession))
	}
	spec := multiTurnSpec()
	for s, turns := range bySession {
		sort.Slice(turns, func(i, j int) bool { return turns[i].Req.ID < turns[j].Req.ID })
		for i, a := range turns {
			if a.Req.Context+a.Req.Decode > spec.MaxContext {
				t.Errorf("session %d turn %d exceeds MaxContext", s, i)
			}
			if i == 0 {
				continue
			}
			prev := turns[i-1]
			if a.Req.Context < prev.Req.Context+prev.Req.Decode+spec.PromptMin {
				t.Errorf("session %d turn %d context %d did not re-extend (prev %d+%d)",
					s, i, a.Req.Context, prev.Req.Context, prev.Req.Decode)
			}
			if a.At < prev.At {
				t.Errorf("session %d turn %d arrives before its predecessor", s, i)
			}
		}
	}
}

func TestMultiTurnTruncatesAtMaxContext(t *testing.T) {
	gen := Uniform(10000, 1)
	gen.DecodeLen = 2000
	spec := multiTurnSpec()
	spec.MaxContext = 13000 // turn 0 (10000+2000) fits, turn 1 (12064+2000) does not
	arr, err := MultiTurnArrivals(gen, spec, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(arr) != spec.Sessions {
		t.Fatalf("%d arrivals, want one turn per session (%d)", len(arr), spec.Sessions)
	}
	spec.MaxContext = 11000 // even turn 0 outgrows it
	if _, err := MultiTurnArrivals(gen, spec, 5); err == nil {
		t.Error("all-truncated schedule should error")
	}
}

func TestMultiTurnSpecErrors(t *testing.T) {
	gen := Uniform(100, 1)
	if _, err := MultiTurnArrivals(nil, multiTurnSpec(), 1); err == nil {
		t.Error("nil generator should fail")
	}
	cases := []func(*MultiTurnSpec){
		func(s *MultiTurnSpec) { s.Sessions = 0 },
		func(s *MultiTurnSpec) { s.Turns = 0 },
		func(s *MultiTurnSpec) { s.Rate = 0 },
		func(s *MultiTurnSpec) { s.ThinkMean = -1 },
		func(s *MultiTurnSpec) { s.PromptMin = -1 },
		func(s *MultiTurnSpec) { s.PromptMax = s.PromptMin - 1 },
	}
	for i, mut := range cases {
		spec := multiTurnSpec()
		mut(&spec)
		if _, err := MultiTurnArrivals(gen, spec, 1); err == nil {
			t.Errorf("case %d: bad spec accepted", i)
		}
	}
}
