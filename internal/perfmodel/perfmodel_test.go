package perfmodel

import (
	"math"
	"testing"
	"testing/quick"

	"pimphony/internal/timing"
)

func TestQuantizeBounds(t *testing.T) {
	f := func(raw uint32) bool {
		n := int(raw%2_000_000) + 1
		q := quantize(n)
		if q < n {
			return false // never rounds down
		}
		return float64(q-n)/float64(n) <= 1.0/16 // bounded relative error
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
	// Small values are exact.
	for n := 1; n <= 64; n++ {
		if quantize(n) != n {
			t.Fatalf("quantize(%d) = %d, want exact", n, quantize(n))
		}
	}
}

func TestCacheHitsAcrossNearbyTokens(t *testing.T) {
	s := New(timing.AiM16())
	base := Query{Kernel: QKT, Tokens: 100000, Dh: 128, Queries: 1, Sched: DCS}
	if _, err := s.Price(base); err != nil {
		t.Fatal(err)
	}
	misses := s.CacheMisses()
	// 100 consecutive decode steps should not trigger new simulations more
	// than a couple of times (bucket boundaries).
	for i := 1; i <= 100; i++ {
		q := base
		q.Tokens += i
		if _, err := s.Price(q); err != nil {
			t.Fatal(err)
		}
	}
	if extra := s.CacheMisses() - misses; extra > 2 {
		t.Errorf("100 decode steps caused %d cold simulations, want <= 2", extra)
	}
}

func TestScalingIsApproximatelyLinear(t *testing.T) {
	s := New(timing.AiM16())
	l1, err := s.Price(Query{Kernel: SV, Tokens: 4096, Dh: 128, Queries: 1, Sched: DCS})
	if err != nil {
		t.Fatal(err)
	}
	l2, err := s.Price(Query{Kernel: SV, Tokens: 8192, Dh: 128, Queries: 1, Sched: DCS})
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(l2.Cycles) / float64(l1.Cycles)
	if math.Abs(ratio-2) > 0.2 {
		t.Errorf("doubling tokens changed latency by %.2fx, want ~2x", ratio)
	}
}

func TestSchedulerOrderingHolds(t *testing.T) {
	s := New(timing.AiM16())
	q := Query{Kernel: QKT, Tokens: 8192, Dh: 128, Queries: 4, RowReuse: true}
	var totals [3]timing.Cycles
	for i, sc := range []Sched{Static, PingPong, DCS} {
		q.Sched = sc
		l, err := s.Price(q)
		if err != nil {
			t.Fatal(err)
		}
		totals[i] = l.Cycles
	}
	if !(totals[2] <= totals[1] && totals[1] <= totals[0]) {
		t.Errorf("want dcs <= pingpong <= static, got %v", totals)
	}
}

func TestBreakdownConsistency(t *testing.T) {
	s := New(timing.AiM16())
	l, err := s.Price(Query{Kernel: QKT, Tokens: 5000, Dh: 128, Queries: 2, Sched: DCS})
	if err != nil {
		t.Fatal(err)
	}
	// After scaling, the breakdown must still sum to within rounding of the
	// total (each component is rounded independently).
	diff := int64(l.Breakdown.Total() - l.Cycles)
	if diff < -8 || diff > 8 {
		t.Errorf("scaled breakdown off by %d cycles", diff)
	}
	if l.MACs <= 0 || l.IOBytes <= 0 {
		t.Error("counts must be positive")
	}
}

func TestAttentionLatencyCombines(t *testing.T) {
	s := New(timing.AiM16())
	att, err := s.AttentionLatency(4096, 128, 1, false, false, DCS)
	if err != nil {
		t.Fatal(err)
	}
	qkt, _ := s.Price(Query{Kernel: QKT, Tokens: 4096, Dh: 128, Queries: 1, Sched: DCS})
	sv, _ := s.Price(Query{Kernel: SV, Tokens: 4096, Dh: 128, Queries: 1, Sched: DCS})
	if att.Cycles != qkt.Cycles+sv.Cycles {
		t.Errorf("attention = %d, want %d + %d", att.Cycles, qkt.Cycles, sv.Cycles)
	}
	if att.MACUtil <= 0 || att.MACUtil > 1 {
		t.Errorf("combined MAC util %f out of range", att.MACUtil)
	}
}

func TestInvalidQueries(t *testing.T) {
	s := New(timing.AiM16())
	if _, err := s.Price(Query{Kernel: QKT, Tokens: 0, Dh: 128}); err == nil {
		t.Error("zero tokens should fail")
	}
	if _, err := s.Price(Query{Kernel: Kernel(99), Tokens: 16, Dh: 16}); err == nil {
		t.Error("unknown kernel should fail")
	}
	if _, err := s.Price(Query{Kernel: QKT, Tokens: 16, Dh: 16, Sched: Sched(99)}); err == nil {
		t.Error("unknown scheduler should fail")
	}
}

func TestGEMVPath(t *testing.T) {
	s := New(timing.AiM16())
	l, err := s.Price(Query{Kernel: GEMV, Tokens: 4096, Dh: 4096, Sched: Static})
	if err != nil {
		t.Fatal(err)
	}
	if l.Cycles <= 0 {
		t.Fatal("GEMV latency must be positive")
	}
	// GEMV queries are not quantized: same query = exact cache hit.
	m := s.CacheMisses()
	if _, err := s.Price(Query{Kernel: GEMV, Tokens: 4096, Dh: 4096, Sched: Static}); err != nil {
		t.Fatal(err)
	}
	if s.CacheMisses() != m {
		t.Error("identical GEMV query should hit the cache")
	}
}

func TestKindStrings(t *testing.T) {
	if QKT.String() != "qkt" || SV.String() != "sv" || GEMV.String() != "gemv" {
		t.Error("kernel names changed")
	}
	if Static.String() != "static" || DCS.String() != "dcs" {
		t.Error("sched names changed")
	}
}

func TestBucketMatchesPriceQuantization(t *testing.T) {
	s := New(timing.AiM16())
	// Walking a token count through its bucket must not trigger new
	// simulations; crossing BucketEnd must move to a new bucket.
	for _, start := range []int{65, 100, 1000, 4096, 100000} {
		end := BucketEnd(start)
		if end < start {
			t.Fatalf("BucketEnd(%d) = %d below the count itself", start, end)
		}
		if end == math.MaxInt {
			continue // the unbounded final bucket at the simulation cap
		}
		if Bucket(end) != Bucket(start) {
			t.Fatalf("BucketEnd(%d) = %d left the bucket", start, end)
		}
		if Bucket(end+1) == Bucket(start) {
			t.Fatalf("bucket did not change past BucketEnd(%d) = %d", start, end)
		}
		if _, err := s.Price(Query{Kernel: QKT, Tokens: start, Dh: 128, Queries: 1, Sched: DCS}); err != nil {
			t.Fatal(err)
		}
		misses := s.CacheMisses()
		for tok := start; tok <= end && tok < start+256; tok++ {
			if _, err := s.Price(Query{Kernel: QKT, Tokens: tok, Dh: 128, Queries: 1, Sched: DCS}); err != nil {
				t.Fatal(err)
			}
		}
		if s.CacheMisses() != misses {
			t.Errorf("pricing within bucket [%d, %d] caused %d cold simulations",
				start, end, s.CacheMisses()-misses)
		}
	}
	// Small counts are their own buckets (quantization is exact there).
	for n := 1; n <= 64; n++ {
		if Bucket(n) != n || BucketEnd(n) != n {
			t.Fatalf("Bucket(%d) = %d end %d, want exact", n, Bucket(n), BucketEnd(n))
		}
	}
}

func TestCacheLookupsCounted(t *testing.T) {
	s := New(timing.AiM16())
	if s.CacheLookups() != 0 {
		t.Fatal("fresh service should have zero lookups")
	}
	q := Query{Kernel: SV, Tokens: 2048, Dh: 128, Queries: 1, Sched: DCS}
	for i := 0; i < 3; i++ {
		if _, err := s.Price(q); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.CacheLookups(); got != 3 {
		t.Errorf("3 Price calls counted %d lookups", got)
	}
	if s.CacheMisses() != 1 {
		t.Errorf("repeat pricing missed %d times, want 1", s.CacheMisses())
	}
}
