package perfmodel

import (
	"testing"

	"pimphony/internal/timing"
)

// BenchmarkPriceCold measures an uncached kernel pricing (builds and
// schedules the full command stack).
func BenchmarkPriceCold(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := New(timing.AiM16())
		if _, err := s.Price(Query{Kernel: QKT, Tokens: 16384, Dh: 128, Queries: 1, Sched: DCS}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPriceHot measures the memoized path the cluster simulator hits
// on every decode step.
func BenchmarkPriceHot(b *testing.B) {
	s := New(timing.AiM16())
	q := Query{Kernel: QKT, Tokens: 16384, Dh: 128, Queries: 1, Sched: DCS}
	if _, err := s.Price(q); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Tokens = 16384 + i%64 // decode-step token drift stays in-bucket
		if _, err := s.Price(q); err != nil {
			b.Fatal(err)
		}
	}
}
