// Package perfmodel turns kernel shapes into channel latencies: it builds
// the command stack for a kernel (internal/kernels), schedules it under the
// selected controller (internal/sched) and memoizes the result.
//
// Long-context sweeps query millions of nearly identical shapes (token
// counts grow by one per decode step), so token counts are quantized to 32
// logarithmically spaced buckets per octave and the simulated latency is
// scaled linearly to the exact token count; attention kernels are linear in
// tokens beyond the fixed query-setup work, keeping the error well under
// the run-to-run noise of the modelled hardware.
package perfmodel

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"pimphony/internal/kernels"
	"pimphony/internal/pim"
	"pimphony/internal/sched"
	"pimphony/internal/timing"
)

// Kernel enumerates the kernels the service can price.
type Kernel uint8

const (
	// QKT is the attention score kernel.
	QKT Kernel = iota
	// SV is the attention value-aggregation kernel.
	SV
	// GEMV is a fully-connected kernel.
	GEMV
)

// String implements fmt.Stringer.
func (k Kernel) String() string {
	switch k {
	case QKT:
		return "qkt"
	case SV:
		return "sv"
	case GEMV:
		return "gemv"
	default:
		return fmt.Sprintf("Kernel(%d)", uint8(k))
	}
}

// Sched selects the controller.
type Sched uint8

const (
	// Static is the conventional in-order controller.
	Static Sched = iota
	// PingPong is the dual-buffering baseline.
	PingPong
	// DCS is PIMphony's dynamic scheduler.
	DCS
	// DCSNoIsMAC is DCS with the is-MAC bypass disabled (ablation).
	DCSNoIsMAC
)

// String implements fmt.Stringer.
func (s Sched) String() string {
	switch s {
	case Static:
		return "static"
	case PingPong:
		return "pingpong"
	case DCS:
		return "dcs"
	case DCSNoIsMAC:
		return "dcs-no-ismac"
	default:
		return fmt.Sprintf("Sched(%d)", uint8(s))
	}
}

// Query is one kernel-latency request. For attention kernels Tokens is the
// per-channel token count and Dh the head dimension; for GEMV Tokens is the
// input dimension and Dh the output dimension.
type Query struct {
	Kernel   Kernel
	Tokens   int
	Dh       int
	Queries  int
	RowReuse bool
	Baseline bool // baseline OutReg geometry instead of PIMphony's OBuf
	Sched    Sched
}

// Latency is the priced result, linearly rescaled to the exact token count.
type Latency struct {
	Cycles    timing.Cycles
	Breakdown sched.Breakdown
	MACUtil   float64
	MACs      int64
	IOBytes   int64
	ActPre    int64
}

// Service memoizes kernel latencies for one device. The cache is guarded
// by an RWMutex so concurrent sweeps sharing a Service stop serializing
// on cache hits — the hit path takes only the read lock.
type Service struct {
	dev timing.Device

	mu    sync.RWMutex
	cache map[Query]Latency
	// Misses counts cold simulations (observability for tests/benches).
	misses int
	// lookups counts Price cache consultations. The serving engine's
	// step-cost memoization is judged by how few of these a run needs —
	// the pre-memoization step loop consulted the cache once per
	// (channel, kernel) work unit per decode iteration.
	lookups atomic.Int64
}

// New creates a latency service.
func New(dev timing.Device) *Service {
	return &Service{dev: dev, cache: make(map[Query]Latency)}
}

var (
	sharedMu sync.Mutex
	shared   = map[timing.Device]*Service{}
)

// Shared returns the process-wide latency service for a device. Kernel
// latencies are a pure function of the device geometry and the query,
// so every simulator instance pricing against the same device can share
// one memoized cache: a config-grid sweep then pays each cold
// simulation once per process instead of once per grid point, and the
// RWMutex hit path keeps concurrent sweep workers from serializing on
// the shared cache.
func Shared(dev timing.Device) *Service {
	sharedMu.Lock()
	defer sharedMu.Unlock()
	s, ok := shared[dev]
	if !ok {
		s = New(dev)
		shared[dev] = s
	}
	return s
}

// CacheMisses reports how many cold simulations ran.
func (s *Service) CacheMisses() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.misses
}

// CacheLookups reports how many Price calls consulted the cache (hits
// and misses alike).
func (s *Service) CacheLookups() int64 { return s.lookups.Load() }

// quantize rounds tokens up so at most 32 buckets exist per octave, bounding
// both cache size and scaling error (< ~3%).
func quantize(tokens int) int {
	if tokens <= 64 {
		return tokens
	}
	step := 1
	for tokens>>5 >= step<<1 {
		step <<= 1
	}
	return (tokens + step - 1) / step * step
}

// maxAttnSimTokens caps the per-channel token count that is simulated
// command-by-command; longer slices are priced at the cap and scaled
// linearly. Attention command streams are strictly periodic beyond a few
// rows, so the extrapolation is exact up to the fixed setup work.
const maxAttnSimTokens = 1 << 16

// Bucket returns the quantization bucket an attention token count is
// priced from: the quantized (and simulation-capped) token count whose
// cold simulation Price scales linearly to the exact count. Two token
// counts share a bucket exactly when they are priced from the same
// cached simulation — the invariant the serving engine's step-cost
// memoization keys on. GEMV shapes are not quantized and have no bucket.
func Bucket(tokens int) int {
	if tokens >= maxAttnSimTokens {
		return maxAttnSimTokens
	}
	q := quantize(tokens)
	if q > maxAttnSimTokens {
		q = maxAttnSimTokens
	}
	return q
}

// BucketEnd returns the largest token count sharing tokens' quantization
// bucket — the event horizon after which a growing attention shape needs
// a different cached simulation. Quantization rounds up to a multiple of
// the octave step, so the bucket value itself is the boundary; past the
// simulation cap every count scales from the capped simulation, making
// the final bucket unbounded (math.MaxInt).
func BucketEnd(tokens int) int {
	b := Bucket(tokens)
	if b >= maxAttnSimTokens {
		return math.MaxInt
	}
	return b
}

// Price returns the latency of a kernel query.
func (s *Service) Price(q Query) (Latency, error) {
	if q.Tokens <= 0 || q.Dh <= 0 {
		return Latency{}, fmt.Errorf("perfmodel: non-positive shape %+v", q)
	}
	if q.Queries <= 0 {
		q.Queries = 1
	}
	exact := q.Tokens
	if q.Kernel != GEMV {
		q.Tokens = quantize(q.Tokens)
		if q.Tokens > maxAttnSimTokens {
			q.Tokens = maxAttnSimTokens
		}
	}
	s.lookups.Add(1)
	s.mu.RLock()
	lat, ok := s.cache[q]
	s.mu.RUnlock()
	if !ok {
		var err error
		lat, err = s.simulate(q)
		if err != nil {
			return Latency{}, err
		}
		s.mu.Lock()
		if prior, dup := s.cache[q]; dup {
			lat = prior // a racing goroutine cached the same shape first
		} else {
			s.cache[q] = lat
			s.misses++
		}
		s.mu.Unlock()
	}
	if q.Kernel != GEMV && exact != q.Tokens {
		f := float64(exact) / float64(q.Tokens)
		lat = scale(lat, f)
	}
	return lat, nil
}

func scale(l Latency, f float64) Latency {
	return Latency{
		Cycles: timing.Cycles(float64(l.Cycles) * f),
		Breakdown: sched.Breakdown{
			MAC:      timing.Cycles(float64(l.Breakdown.MAC) * f),
			ActPre:   timing.Cycles(float64(l.Breakdown.ActPre) * f),
			Refresh:  timing.Cycles(float64(l.Breakdown.Refresh) * f),
			DTGBuf:   timing.Cycles(float64(l.Breakdown.DTGBuf) * f),
			DTOutReg: timing.Cycles(float64(l.Breakdown.DTOutReg) * f),
			Penalty:  timing.Cycles(float64(l.Breakdown.Penalty) * f),
		},
		MACUtil: l.MACUtil,
		MACs:    int64(float64(l.MACs) * f),
		IOBytes: int64(float64(l.IOBytes) * f),
		ActPre:  int64(float64(l.ActPre) * f),
	}
}

func (s *Service) simulate(q Query) (Latency, error) {
	var buf kernels.Buffers
	if q.Baseline {
		buf = kernels.BaselineBuffers(s.dev)
	} else {
		buf = kernels.OBufBuffers(s.dev)
	}
	kc := kernels.NewConfig(s.dev, buf)
	var (
		stack *pim.Stack
		err   error
	)
	switch q.Kernel {
	case QKT:
		stack, err = kc.QKT(q.Tokens, q.Dh, q.Queries, q.RowReuse)
	case SV:
		stack, err = kc.SV(q.Tokens, q.Dh, q.Queries, q.RowReuse)
	case GEMV:
		stack, err = kc.GEMV(q.Tokens, q.Dh)
	default:
		return Latency{}, fmt.Errorf("perfmodel: unknown kernel %d", q.Kernel)
	}
	if err != nil {
		return Latency{}, err
	}
	var scheduler sched.Scheduler
	switch q.Sched {
	case Static:
		scheduler = &sched.Static{Dev: s.dev}
	case PingPong:
		scheduler = &sched.PingPong{Dev: s.dev}
	case DCS:
		scheduler = &sched.DCS{Dev: s.dev}
	case DCSNoIsMAC:
		scheduler = &sched.DCS{Dev: s.dev, DisableIsMAC: true}
	default:
		return Latency{}, fmt.Errorf("perfmodel: unknown scheduler %d", q.Sched)
	}
	res, err := scheduler.Schedule(stack)
	if err != nil {
		return Latency{}, err
	}
	st := kernels.StackStats(stack)
	return Latency{
		Cycles:    res.Total,
		Breakdown: res.Breakdown,
		MACUtil:   res.MACUtilization(),
		MACs:      int64(st.Mac),
		IOBytes:   int64(st.WrInp+st.RdOut) * int64(s.dev.TileBytes),
		ActPre:    int64(st.Act),
	}, nil
}

// AttentionLatency prices a full per-channel attention slice: QK^T plus SV
// for the given per-channel token count.
func (s *Service) AttentionLatency(tokens, dh, queries int, rowReuse, baseline bool, sc Sched) (Latency, error) {
	qkt, err := s.Price(Query{Kernel: QKT, Tokens: tokens, Dh: dh, Queries: queries, RowReuse: rowReuse, Baseline: baseline, Sched: sc})
	if err != nil {
		return Latency{}, err
	}
	sv, err := s.Price(Query{Kernel: SV, Tokens: tokens, Dh: dh, Queries: queries, RowReuse: rowReuse, Baseline: baseline, Sched: sc})
	if err != nil {
		return Latency{}, err
	}
	sum := qkt
	sum.Cycles += sv.Cycles
	sum.Breakdown.Add(sv.Breakdown)
	sum.MACs += sv.MACs
	sum.IOBytes += sv.IOBytes
	sum.ActPre += sv.ActPre
	if sum.Cycles > 0 {
		sum.MACUtil = float64(sum.Breakdown.MAC) / float64(sum.Cycles)
	}
	return sum, nil
}
