package tablefmt

import (
	"strings"
	"testing"
)

func TestRendering(t *testing.T) {
	tb := New("demo", "name", "value")
	tb.AddRow("alpha", 1234.5678)
	tb.AddRow("b", 0.1234)
	out := tb.String()
	if !strings.Contains(out, "== demo ==") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "1235") {
		t.Errorf("missing cells:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, sep, 2 rows
		t.Errorf("expected 5 lines, got %d:\n%s", len(lines), out)
	}
}

func TestFloatFormatting(t *testing.T) {
	cases := map[float64]string{
		0:       "0",
		12345:   "12345",
		42.42:   "42.4",
		0.98765: "0.988",
	}
	for in, want := range cases {
		if got := formatFloat(in); got != want {
			t.Errorf("formatFloat(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestCSV(t *testing.T) {
	tb := New("", "a", "b")
	tb.AddRow(1, 2)
	csv := tb.CSV()
	if csv != "a,b\n1,2\n" {
		t.Errorf("CSV = %q", csv)
	}
}

func TestAlignment(t *testing.T) {
	tb := New("", "x", "yyyyyy")
	tb.AddRow("longvalue", "s")
	out := tb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// All lines should be equally wide (trailing spaces trimmed per line).
	if len(lines[0]) == 0 || len(lines[1]) == 0 {
		t.Fatalf("bad render:\n%s", out)
	}
}
