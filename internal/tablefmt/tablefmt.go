// Package tablefmt renders aligned plain-text tables for the experiment
// harness, mirroring the rows the paper's tables and figures report.
package tablefmt

import (
	"fmt"
	"strings"
)

// Table is a simple column-aligned text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// New creates a table with the given title and column headers.
func New(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; values are rendered with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		case float32:
			row[i] = formatFloat(float64(v))
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

func formatFloat(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v >= 1000:
		return fmt.Sprintf("%.0f", v)
	case v >= 10:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// String renders the table.
func (t *Table) String() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (headers first).
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.Headers, ","))
	b.WriteByte('\n')
	for _, r := range t.Rows {
		b.WriteString(strings.Join(r, ","))
		b.WriteByte('\n')
	}
	return b.String()
}
