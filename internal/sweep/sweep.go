// Package sweep is the deterministic worker-pool engine behind every
// parameter sweep in the repository: the experiment drivers
// (internal/experiments), the multi-config cluster sweeps
// (internal/cluster) and the grid modes of cmd/pimphony-bench and
// cmd/pimphony-sim all fan their independent simulation points through
// Run.
//
// The engine guarantees that parallel execution is observationally
// identical to the sequential loop it replaces: results come back in
// input order, every point is evaluated by a pure-per-point function
// (shared caches such as perfmodel's memoizer are internally locked and
// value-deterministic), and the reported error is the lowest-indexed
// failure. The only difference parallelism makes is wall-clock time.
package sweep

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
)

// defaultParallelism is the process-wide worker bound used when a Run
// call does not pass Parallelism. Zero means GOMAXPROCS. Binaries expose
// it as their -parallel flag via SetDefault.
var defaultParallelism atomic.Int64

// SetDefault sets the process-wide default worker bound. n <= 0 restores
// the GOMAXPROCS default. It returns the previous setting so callers
// (e.g. equivalence tests) can restore it.
func SetDefault(n int) int {
	if n < 0 {
		n = 0
	}
	return int(defaultParallelism.Swap(int64(n)))
}

// Default reports the current default worker bound (GOMAXPROCS if unset).
func Default() int {
	if n := int(defaultParallelism.Load()); n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// options holds per-Run configuration.
type options struct {
	parallelism int
	onProgress  func(done, total int)
}

// Option configures one Run call.
type Option func(*options)

// Parallelism bounds the worker count for this Run; n <= 0 means the
// process default (SetDefault / GOMAXPROCS). Parallelism(1) degenerates
// to the plain sequential loop.
func Parallelism(n int) Option {
	return func(o *options) { o.parallelism = n }
}

// Progress registers a callback invoked after each successfully
// completed point with the number of finished points and the total.
// Invocations are serialized, so the callback needs no locking of its
// own; completion order (not input order) determines the call order.
// Failed points do not report, and after the first failure the
// remaining points are cancelled, so on an erroring sweep the counter
// stops short of the total.
func Progress(fn func(done, total int)) Option {
	return func(o *options) { o.onProgress = fn }
}

// Run evaluates fn over every point on a bounded worker pool and returns
// the results in input order.
//
// On the first failure the sweep context is cancelled so in-flight and
// not-yet-started points can stop early; fn implementations running long
// simulations should poll ctx. After the pool drains, Run returns the
// error of the lowest-indexed point that failed of its own accord
// (deterministic under Parallelism(1): always the first failure the
// sequential loop would have hit). Points that merely observed the
// cancellation — skipped before starting, or in-flight returns wrapping
// context.Canceled — are not reported as the cause. If the parent
// context is cancelled, Run returns its error.
func Run[P, R any](ctx context.Context, points []P, fn func(ctx context.Context, p P) (R, error), opts ...Option) ([]R, error) {
	o := options{}
	for _, opt := range opts {
		opt(&o)
	}
	workers := o.parallelism
	if workers <= 0 {
		workers = Default()
	}
	if workers > len(points) {
		workers = len(points)
	}
	results := make([]R, len(points))
	if len(points) == 0 {
		return results, ctx.Err()
	}

	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	errs := make([]error, len(points))
	var next atomic.Int64
	var mu sync.Mutex // serializes the progress callback and its counter
	done := 0
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(points) {
					return
				}
				if cctx.Err() != nil {
					// A failure (or the caller) cancelled the sweep;
					// drain the remaining points without evaluating.
					continue
				}
				r, err := fn(cctx, points[i])
				if err != nil {
					errs[i] = err
					cancel()
					continue
				}
				results[i] = r
				if o.onProgress != nil {
					mu.Lock()
					done++
					o.onProgress(done, len(points))
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	// Report the lowest-indexed point that failed of its own accord. A
	// point that returned context.Canceled after a sibling's failure
	// tripped the sweep context is a cancellation casualty, not the
	// cause — skipping it keeps the root error from being masked by a
	// lower-indexed in-flight point that happened to observe the cancel
	// first.
	var canceledErr error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if errors.Is(err, context.Canceled) && ctx.Err() == nil {
			if canceledErr == nil {
				canceledErr = err
			}
			continue
		}
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if canceledErr != nil {
		return nil, canceledErr
	}
	return results, nil
}

// Rows is a convenience wrapper for the common experiment-driver shape:
// each point yields one pre-formatted table row. It preserves input
// order, so appending the returned rows reproduces the sequential loop's
// table byte for byte.
func Rows[P any](ctx context.Context, points []P, fn func(ctx context.Context, p P) ([]any, error), opts ...Option) ([][]any, error) {
	return Run(ctx, points, fn, opts...)
}

// RowGroups is Rows for drivers whose points each emit several
// consecutive table rows (e.g. one row per incremental technique stage).
// The groups come back in input order; flattening them reproduces the
// sequential table.
func RowGroups[P any](ctx context.Context, points []P, fn func(ctx context.Context, p P) ([][]any, error), opts ...Option) ([][][]any, error) {
	return Run(ctx, points, fn, opts...)
}
