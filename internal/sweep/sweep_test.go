package sweep

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestOrderingPreserved(t *testing.T) {
	points := make([]int, 100)
	for i := range points {
		points[i] = i
	}
	for _, par := range []int{1, 2, 7, 64} {
		got, err := Run(context.Background(), points,
			func(_ context.Context, p int) (int, error) { return p * p, nil },
			Parallelism(par))
		if err != nil {
			t.Fatalf("par=%d: %v", par, err)
		}
		for i, r := range got {
			if r != i*i {
				t.Fatalf("par=%d: result[%d] = %d, want %d", par, i, r, i*i)
			}
		}
	}
}

func TestParallelism1Equivalence(t *testing.T) {
	// Under Parallelism(1) the engine must behave exactly like the
	// sequential loop: same results, same evaluation order, and the first
	// error stops evaluation of later points.
	var order []int
	points := []int{10, 20, 30, 40}
	seq, err := Run(context.Background(), points, func(_ context.Context, p int) (string, error) {
		order = append(order, p)
		return fmt.Sprintf("v%d", p), nil
	}, Parallelism(1))
	if err != nil {
		t.Fatal(err)
	}
	if want := []int{10, 20, 30, 40}; !reflect.DeepEqual(order, want) {
		t.Errorf("evaluation order %v, want %v", order, want)
	}
	par, err := Run(context.Background(), points, func(_ context.Context, p int) (string, error) {
		return fmt.Sprintf("v%d", p), nil
	}, Parallelism(4))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Errorf("parallel results %v differ from sequential %v", par, seq)
	}
}

func TestErrorPropagation(t *testing.T) {
	boom := errors.New("boom")
	points := []int{0, 1, 2, 3, 4, 5}
	_, err := Run(context.Background(), points, func(_ context.Context, p int) (int, error) {
		if p == 3 {
			return 0, fmt.Errorf("point %d: %w", p, boom)
		}
		return p, nil
	}, Parallelism(2))
	if !errors.Is(err, boom) {
		t.Fatalf("error not propagated: %v", err)
	}
}

func TestLowestIndexedErrorWins(t *testing.T) {
	// Two failing points: the reported error must be the lower-indexed
	// one whenever both actually ran, and under Parallelism(1) it is
	// always the first failure the sequential loop would hit.
	points := []int{0, 1, 2, 3}
	_, err := Run(context.Background(), points, func(_ context.Context, p int) (int, error) {
		if p >= 2 {
			return 0, fmt.Errorf("fail-%d", p)
		}
		return p, nil
	}, Parallelism(1))
	if err == nil || err.Error() != "fail-2" {
		t.Fatalf("sequential first error should win, got %v", err)
	}
}

func TestFirstErrorCancelsRemaining(t *testing.T) {
	// With one worker, a failure at the first point must prevent every
	// later point from being evaluated at all.
	var evaluated atomic.Int64
	points := make([]int, 50)
	for i := range points {
		points[i] = i
	}
	_, err := Run(context.Background(), points, func(_ context.Context, p int) (int, error) {
		evaluated.Add(1)
		if p == 0 {
			return 0, errors.New("early failure")
		}
		return p, nil
	}, Parallelism(1))
	if err == nil {
		t.Fatal("expected error")
	}
	if n := evaluated.Load(); n != 1 {
		t.Errorf("evaluated %d points after first-point failure, want 1", n)
	}
}

func TestInFlightPointsSeeCancellation(t *testing.T) {
	// A failing point cancels the context handed to concurrently running
	// points, so long simulations can stop early.
	release := make(chan struct{})
	var sawCancel atomic.Bool
	points := []string{"fail", "slow"}
	_, err := Run(context.Background(), points, func(ctx context.Context, p string) (int, error) {
		if p == "fail" {
			<-release // hold until the slow point is definitely running
			return 0, errors.New("fail point")
		}
		close(release)
		select {
		case <-ctx.Done():
			sawCancel.Store(true)
		case <-time.After(5 * time.Second):
		}
		return 0, nil
	}, Parallelism(2))
	if err == nil {
		t.Fatal("expected the fail point's error")
	}
	if !sawCancel.Load() {
		t.Error("in-flight point never observed cancellation")
	}
}

func TestCancellationCasualtyDoesNotMaskRootError(t *testing.T) {
	// Point 0 is a long simulation that aborts with context.Canceled
	// once point 1's real failure trips the sweep context; Run must
	// still report point 1's error, not the lower-indexed casualty.
	release := make(chan struct{})
	boom := errors.New("root failure")
	_, err := Run(context.Background(), []int{0, 1}, func(ctx context.Context, p int) (int, error) {
		if p == 1 {
			<-release // wait until point 0 is definitely in flight
			return 0, boom
		}
		close(release)
		<-ctx.Done()
		return 0, fmt.Errorf("simulation aborted: %w", ctx.Err())
	}, Parallelism(2))
	if !errors.Is(err, boom) {
		t.Fatalf("cancellation casualty masked the root error: got %v", err)
	}
}

func TestParentContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Run(ctx, []int{1, 2, 3}, func(ctx context.Context, p int) (int, error) {
		return p, nil
	}, Parallelism(2))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled parent context should surface, got %v", err)
	}
}

func TestEmptyPoints(t *testing.T) {
	got, err := Run(context.Background(), nil, func(_ context.Context, p int) (int, error) {
		t.Fatal("fn must not run")
		return 0, nil
	})
	if err != nil || len(got) != 0 {
		t.Fatalf("empty sweep: got %v, %v", got, err)
	}
}

func TestProgressCallback(t *testing.T) {
	var mu sync.Mutex
	var dones []int
	total := 0
	points := []int{1, 2, 3, 4, 5}
	_, err := Run(context.Background(), points, func(_ context.Context, p int) (int, error) {
		return p, nil
	}, Parallelism(3), Progress(func(done, tot int) {
		mu.Lock()
		dones = append(dones, done)
		total = tot
		mu.Unlock()
	}))
	if err != nil {
		t.Fatal(err)
	}
	if total != len(points) {
		t.Errorf("total = %d, want %d", total, len(points))
	}
	if want := []int{1, 2, 3, 4, 5}; !reflect.DeepEqual(dones, want) {
		t.Errorf("progress sequence %v, want %v", dones, want)
	}
}

func TestActuallyRunsConcurrently(t *testing.T) {
	// Two points rendezvous: that is only possible if the pool really
	// runs them on separate goroutines.
	var barrier sync.WaitGroup
	barrier.Add(2)
	done := make(chan struct{})
	go func() {
		barrier.Wait()
		close(done)
	}()
	_, err := Run(context.Background(), []int{0, 1}, func(ctx context.Context, p int) (int, error) {
		barrier.Done()
		select {
		case <-done:
			return p, nil
		case <-time.After(5 * time.Second):
			return 0, errors.New("rendezvous timed out: points did not overlap")
		}
	}, Parallelism(2))
	if err != nil {
		t.Fatal(err)
	}
}

func TestSetDefault(t *testing.T) {
	prev := SetDefault(3)
	defer SetDefault(prev)
	if Default() != 3 {
		t.Fatalf("Default() = %d after SetDefault(3)", Default())
	}
	SetDefault(0)
	if Default() != runtime.GOMAXPROCS(0) {
		t.Fatalf("Default() = %d, want GOMAXPROCS", Default())
	}
	SetDefault(-5)
	if Default() != runtime.GOMAXPROCS(0) {
		t.Fatalf("negative SetDefault should mean GOMAXPROCS, got %d", Default())
	}
}

func TestRowsHelpers(t *testing.T) {
	rows, err := Rows(context.Background(), []int{1, 2}, func(_ context.Context, p int) ([]any, error) {
		return []any{p, p * 10}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[1][1] != 20 {
		t.Fatalf("Rows = %v", rows)
	}
	groups, err := RowGroups(context.Background(), []int{1}, func(_ context.Context, p int) ([][]any, error) {
		return [][]any{{p}, {p + 1}}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 1 || len(groups[0]) != 2 || groups[0][1][0] != 2 {
		t.Fatalf("RowGroups = %v", groups)
	}
}
