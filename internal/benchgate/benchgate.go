// Package benchgate is the CI bench-regression gate: it times the key
// serving experiments on the scaled-down grids, hashes their rendered
// tables, and compares the result against a checked-in baseline
// (bench/baseline.json). Two classes of regression fail the gate:
//
//   - output drift — a table hash no longer matches the baseline, i.e.
//     the deterministic simulation now produces different numbers (an
//     intentional change must regenerate the baseline via
//     `make bench-baseline`);
//   - performance — an experiment's runtime, normalised by a fixed
//     CPU calibration loop so machines of different speeds are
//     comparable, regressed more than the tolerance (20% in CI).
//
// The emitted JSON (BENCH_serve.json) is uploaded as a CI artifact so a
// regression can be diagnosed from the run that caught it.
package benchgate

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"time"

	"pimphony/internal/cluster"
	"pimphony/internal/experiments"
	"pimphony/internal/sweep"
)

// Schema is the current file-format version.
const Schema = 1

// DefaultIDs are the gated experiments: the serving-path studies plus
// the cross-backend comparison, whose tables CI pins (the batch figures
// are covered by the bench smoke).
func DefaultIDs() []string {
	return []string{"autoscale", "capacity", "fleet", "megafleet", "resilience", "serve", "systems"}
}

// Entry is one experiment's measurement.
type Entry struct {
	// Hash is the SHA-256 of the experiment's rendered result (all
	// tables and notes) — the determinism pin.
	Hash string `json:"hash"`
	// Ns is the best-of-N wall-clock runtime in nanoseconds.
	Ns int64 `json:"ns"`
	// Score is Ns divided by the calibration-loop time: a
	// machine-speed-normalised cost the gate compares across runs.
	Score float64 `json:"score"`
	// SimRate is the experiment's simulator throughput — simulated
	// decode tokens per wall-second of the best run. It is diagnostic
	// (raw wall-clock, not machine-normalised like Score, so the gate
	// does not compare it across hosts); the README's before/after
	// table and perf PRs read it off this file.
	SimRate float64 `json:"sim_rate"`
	// SimRateFloor is the lowest SimRate the gate accepts for this
	// experiment: a coarse absolute backstop (baseline SimRate / 20)
	// that catches catastrophic slowdowns — a scheduler accidentally
	// degenerating to per-iteration stepping, say — while staying far
	// enough below the baseline that ordinary host-speed variance never
	// trips it. Score remains the fine-grained, machine-normalised
	// regression check.
	SimRateFloor float64 `json:"sim_rate_floor,omitempty"`
}

// File is the on-disk gate format.
type File struct {
	Schema  int   `json:"schema"`
	Short   bool  `json:"short"`
	CalibNs int64 `json:"calib_ns"`
	// Experiments maps experiment ID to its measurement.
	Experiments map[string]Entry `json:"experiments"`
}

// calibSink keeps the calibration loop from being optimised away.
var calibSink uint64

// calibrate times a fixed integer-arithmetic loop (best of runs): a
// machine-speed yardstick that scales with the same scalar throughput
// the simulator's hot loops do, so Score transfers across hosts. The
// normalisation is approximate — the simulator is also map- and
// branch-heavy, so the work/calibration ratio can drift a little
// between microarchitectures; the 20% tolerance absorbs that, and if a
// hardware generation shift ever makes the gate fail with no code
// change, regenerate the baseline (`make bench-baseline`).
func calibrate(runs int) int64 {
	best := int64(1<<63 - 1)
	for r := 0; r < runs; r++ {
		start := time.Now()
		acc := uint64(1469598103934665603)
		for i := 0; i < 1<<24; i++ {
			acc ^= uint64(i)
			acc *= 1099511628211
		}
		calibSink = acc
		if d := time.Since(start).Nanoseconds(); d < best {
			best = d
		}
	}
	if best <= 0 {
		best = 1
	}
	return best
}

// Collect runs each experiment `runs` times (keeping the fastest) and
// returns the gate file. Callers choose the grid mode beforehand via
// experiments.SetShort. The experiments run with the sweep engine
// pinned to one worker: the calibration loop is single-threaded, so
// the timed work must be too — otherwise Score would shrink with the
// host's core count and the gate would not transfer between the
// baseline machine and CI runners.
func Collect(ids []string, runs int) (*File, error) {
	if runs <= 0 {
		runs = 1
	}
	prev := sweep.SetDefault(1)
	defer sweep.SetDefault(prev)
	f := &File{Schema: Schema, Short: experiments.Short(), CalibNs: calibrate(runs),
		Experiments: make(map[string]Entry, len(ids))}
	for _, id := range ids {
		var hash string
		best := int64(1<<63 - 1)
		var bestToks int64
		for r := 0; r < runs; r++ {
			tok0 := cluster.SimulatedTokens()
			start := time.Now()
			res, err := experiments.Run(id)
			if err != nil {
				return nil, fmt.Errorf("benchgate: %s: %w", id, err)
			}
			d := time.Since(start).Nanoseconds()
			toks := cluster.SimulatedTokens() - tok0
			if d < best {
				best, bestToks = d, toks
			}
			sum := sha256.Sum256([]byte(res.String()))
			h := hex.EncodeToString(sum[:])
			if hash != "" && h != hash {
				return nil, fmt.Errorf("benchgate: %s is non-deterministic across runs (%s vs %s)", id, hash[:12], h[:12])
			}
			hash = h
		}
		rate := float64(bestToks) / (float64(best) / 1e9)
		f.Experiments[id] = Entry{Hash: hash, Ns: best, Score: float64(best) / float64(f.CalibNs),
			SimRate: rate, SimRateFloor: rate / 20}
	}
	return f, nil
}

// Save writes the file as indented JSON with sorted keys (encoding/json
// sorts map keys, so the baseline diffs cleanly).
func (f *File) Save(path string) error {
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Load reads a gate file.
func Load(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("benchgate: %s: %w", path, err)
	}
	if f.Schema != Schema {
		return nil, fmt.Errorf("benchgate: %s has schema %d, want %d", path, f.Schema, Schema)
	}
	return &f, nil
}

// Compare checks the current measurements against a baseline with the
// given relative runtime tolerance (0.20 = fail beyond +20%). It
// returns one human-readable problem per violation, sorted; an empty
// slice means the gate passes. Experiments present only in the current
// file are ignored (new experiments gate once the baseline includes
// them); experiments missing from the current file fail.
func Compare(baseline, current *File, tol float64) []string {
	var problems []string
	if baseline.Short != current.Short {
		problems = append(problems,
			fmt.Sprintf("grid mode mismatch: baseline short=%v, current short=%v", baseline.Short, current.Short))
	}
	ids := make([]string, 0, len(baseline.Experiments))
	for id := range baseline.Experiments {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		base := baseline.Experiments[id]
		cur, ok := current.Experiments[id]
		if !ok {
			problems = append(problems, fmt.Sprintf("%s: missing from current run", id))
			continue
		}
		if cur.Hash != base.Hash {
			problems = append(problems,
				fmt.Sprintf("%s: table output changed (hash %.12s -> %.12s); if intended, regenerate bench/baseline.json (make bench-baseline)",
					id, base.Hash, cur.Hash))
		}
		if base.Score > 0 && cur.Score > base.Score*(1+tol) {
			problems = append(problems,
				fmt.Sprintf("%s: runtime regressed %.0f%% (score %.3f -> %.3f, tolerance %.0f%%)",
					id, 100*(cur.Score/base.Score-1), base.Score, cur.Score, 100*tol))
		}
		if base.SimRateFloor > 0 && cur.SimRate < base.SimRateFloor {
			problems = append(problems,
				fmt.Sprintf("%s: simulator throughput collapsed (sim_rate %.0f tok/s below floor %.0f)",
					id, cur.SimRate, base.SimRateFloor))
		}
	}
	return problems
}
