package benchgate

import (
	"path/filepath"
	"strings"
	"testing"

	"pimphony/internal/experiments"
)

func entry(hash string, score float64) Entry {
	return Entry{Hash: hash, Ns: int64(score * 1e6), Score: score}
}

func gateFile(short bool, entries map[string]Entry) *File {
	return &File{Schema: Schema, Short: short, CalibNs: 1e6, Experiments: entries}
}

func TestCompareRules(t *testing.T) {
	base := gateFile(true, map[string]Entry{
		"serve":    entry("aaa", 1.0),
		"capacity": entry("bbb", 4.0),
	})
	ok := gateFile(true, map[string]Entry{
		"serve":    entry("aaa", 1.1),  // +10%: inside tolerance
		"capacity": entry("bbb", 3.0),  // improvement: always fine
		"extra":    entry("ccc", 99.0), // new experiment: ignored until baselined
	})
	if problems := Compare(base, ok, 0.20); len(problems) != 0 {
		t.Fatalf("clean run flagged: %v", problems)
	}

	regressed := gateFile(true, map[string]Entry{
		"serve":    entry("aaa", 1.3), // +30%: beyond 20% tolerance
		"capacity": entry("bbb", 4.0),
	})
	problems := Compare(base, regressed, 0.20)
	if len(problems) != 1 || !strings.Contains(problems[0], "serve") ||
		!strings.Contains(problems[0], "regressed") {
		t.Fatalf("runtime regression not flagged correctly: %v", problems)
	}

	drifted := gateFile(true, map[string]Entry{
		"serve":    entry("zzz", 1.0), // table output changed
		"capacity": entry("bbb", 4.0),
	})
	problems = Compare(base, drifted, 0.20)
	if len(problems) != 1 || !strings.Contains(problems[0], "output changed") {
		t.Fatalf("table drift not flagged: %v", problems)
	}

	missing := gateFile(true, map[string]Entry{"serve": entry("aaa", 1.0)})
	problems = Compare(base, missing, 0.20)
	if len(problems) != 1 || !strings.Contains(problems[0], "capacity") ||
		!strings.Contains(problems[0], "missing") {
		t.Fatalf("missing experiment not flagged: %v", problems)
	}

	wrongMode := gateFile(false, base.Experiments)
	if problems := Compare(base, wrongMode, 0.20); len(problems) == 0 {
		t.Fatal("grid-mode mismatch not flagged")
	}

	// The sim-rate floor is an absolute backstop: a current rate below
	// the baselined floor fails even when Score stays inside tolerance
	// (Score normalises away machine speed, the floor catches the
	// simulator itself collapsing).
	floorBase := gateFile(true, map[string]Entry{
		"fleet": {Hash: "fff", Score: 1.0, SimRate: 1e6, SimRateFloor: 5e4},
	})
	slowSim := gateFile(true, map[string]Entry{
		"fleet": {Hash: "fff", Score: 1.0, SimRate: 4e4},
	})
	problems = Compare(floorBase, slowSim, 0.20)
	if len(problems) != 1 || !strings.Contains(problems[0], "throughput collapsed") {
		t.Fatalf("sim-rate floor violation not flagged: %v", problems)
	}
	fastSim := gateFile(true, map[string]Entry{
		"fleet": {Hash: "fff", Score: 1.0, SimRate: 9e5},
	})
	if problems := Compare(floorBase, fastSim, 0.20); len(problems) != 0 {
		t.Fatalf("healthy sim rate flagged: %v", problems)
	}

	// Problems come back sorted by experiment ID (deterministic CI logs).
	both := gateFile(true, map[string]Entry{
		"serve":    entry("zzz", 9.0),
		"capacity": entry("yyy", 9.0),
	})
	problems = Compare(base, both, 0.20)
	if len(problems) < 2 || !strings.Contains(problems[0], "capacity") {
		t.Fatalf("problems not sorted: %v", problems)
	}
}

func TestSaveLoadRoundtrip(t *testing.T) {
	f := gateFile(true, map[string]Entry{"serve": entry("aaa", 1.5)})
	path := filepath.Join(t.TempDir(), "gate.json")
	if err := f.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Short != f.Short || got.CalibNs != f.CalibNs ||
		got.Experiments["serve"] != f.Experiments["serve"] {
		t.Fatalf("roundtrip mismatch: %+v vs %+v", got, f)
	}
	if _, err := Load(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Error("missing file should error")
	}
	f.Schema = 99
	if err := f.Save(path); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Error("wrong schema should error")
	}
}

// TestCollectDeterministicHashes runs the real gated experiments twice
// (scaled-down grids) and checks the table hashes are identical — the
// property the CI drift check relies on. Timing fields only need to be
// positive.
func TestCollectDeterministicHashes(t *testing.T) {
	prev := experiments.SetShort(true)
	t.Cleanup(func() { experiments.SetShort(prev) })
	a, err := Collect(DefaultIDs(), 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Collect(DefaultIDs(), 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range DefaultIDs() {
		ea, eb := a.Experiments[id], b.Experiments[id]
		if ea.Hash == "" || ea.Hash != eb.Hash {
			t.Errorf("%s: hashes differ across runs (%q vs %q)", id, ea.Hash, eb.Hash)
		}
		if ea.Ns <= 0 || ea.Score <= 0 {
			t.Errorf("%s: non-positive timing %+v", id, ea)
		}
	}
	if problems := Compare(a, b, 5.0); len(problems) != 0 {
		t.Errorf("back-to-back runs should pass a loose gate: %v", problems)
	}
}

func TestCollectUnknownExperiment(t *testing.T) {
	if _, err := Collect([]string{"nope"}, 1); err == nil {
		t.Fatal("unknown experiment should error")
	}
}
