// Package dispatch models PIMphony's on-module instruction dispatcher
// (Sec. VI-C, Fig. 11a): an instruction buffer holding compact DPA-encoded
// programs, a configuration buffer with per-request state (request ID and
// current token length), and pipelined decode that resolves Dyn-Loop bounds
// and virtual addresses against a VA2PA table before staging instructions
// for the sequencer.
//
// The dispatcher also exposes the failure mode it was designed to avoid:
// loading a conventional statically-unrolled program whose footprint grows
// with context length overflows the instruction buffer (Fig. 10c).
package dispatch

import (
	"fmt"

	"pimphony/internal/isa"
	"pimphony/internal/memory"
	"pimphony/internal/timing"
)

// RequestState is one entry of the dispatcher's configuration buffer.
type RequestState struct {
	ID      int
	TCur    int // current token length, incremented locally per decode step
	Program string
}

// Dispatcher is the per-module dispatch unit.
type Dispatcher struct {
	dev      timing.Device
	programs map[string]*isa.Program
	bufUsed  int64
	requests map[int]*RequestState
	va2pa    *memory.DPA // optional; nil disables translation
	// hostMsgs counts host->module management messages (program loads,
	// request registration/release). Token progression is host-free.
	hostMsgs int
}

// New creates a dispatcher for the device's instruction-buffer capacity.
func New(dev timing.Device) *Dispatcher {
	return &Dispatcher{
		dev:      dev,
		programs: make(map[string]*isa.Program),
		requests: make(map[int]*RequestState),
	}
}

// AttachVA2PA wires a DPA allocator as the translation table.
func (d *Dispatcher) AttachVA2PA(a *memory.DPA) { d.va2pa = a }

// BufferCapacity is the instruction buffer size in bytes.
func (d *Dispatcher) BufferCapacity() int64 { return int64(d.dev.InstrBufKB) << 10 }

// BufferUsed is the currently loaded program footprint in bytes.
func (d *Dispatcher) BufferUsed() int64 { return d.bufUsed }

// LoadProgram stages a program into the instruction buffer; it fails when
// the encoded footprint would overflow the buffer — the scalability wall
// static unrolled programs hit at long context.
func (d *Dispatcher) LoadProgram(p *isa.Program) error {
	if err := p.Validate(); err != nil {
		return fmt.Errorf("dispatch: %w", err)
	}
	if _, dup := d.programs[p.Name]; dup {
		return fmt.Errorf("dispatch: program %q already loaded", p.Name)
	}
	size := p.EncodedSize()
	if d.bufUsed+size > d.BufferCapacity() {
		return fmt.Errorf("dispatch: program %q (%d B) overflows instruction buffer (%d of %d B used)",
			p.Name, size, d.bufUsed, d.BufferCapacity())
	}
	d.programs[p.Name] = p
	d.bufUsed += size
	d.hostMsgs++
	return nil
}

// UnloadProgram frees a program's buffer space.
func (d *Dispatcher) UnloadProgram(name string) error {
	p, ok := d.programs[name]
	if !ok {
		return fmt.Errorf("dispatch: program %q not loaded", name)
	}
	d.bufUsed -= p.EncodedSize()
	delete(d.programs, name)
	return nil
}

// Register adds a request to the configuration buffer with its initial
// token length (one host message; afterwards the dispatcher maintains token
// progression autonomously).
func (d *Dispatcher) Register(reqID, tcur int, program string) error {
	if _, ok := d.programs[program]; !ok {
		return fmt.Errorf("dispatch: program %q not loaded", program)
	}
	if _, dup := d.requests[reqID]; dup {
		return fmt.Errorf("dispatch: request %d already registered", reqID)
	}
	if tcur < 0 {
		return fmt.Errorf("dispatch: negative token length %d", tcur)
	}
	d.requests[reqID] = &RequestState{ID: reqID, TCur: tcur, Program: program}
	d.hostMsgs++
	return nil
}

// Release removes a completed request (one host message).
func (d *Dispatcher) Release(reqID int) error {
	if _, ok := d.requests[reqID]; !ok {
		return fmt.Errorf("dispatch: request %d not registered", reqID)
	}
	delete(d.requests, reqID)
	d.hostMsgs++
	return nil
}

// AdvanceToken increments a request's token length after a generation step.
// No host communication is involved.
func (d *Dispatcher) AdvanceToken(reqID int) error {
	st, ok := d.requests[reqID]
	if !ok {
		return fmt.Errorf("dispatch: request %d not registered", reqID)
	}
	st.TCur++
	return nil
}

// TCur reports the dispatcher-maintained token length.
func (d *Dispatcher) TCur(reqID int) (int, error) {
	st, ok := d.requests[reqID]
	if !ok {
		return 0, fmt.Errorf("dispatch: request %d not registered", reqID)
	}
	return st.TCur, nil
}

// HostMessages counts host<->module messages so far.
func (d *Dispatcher) HostMessages() int { return d.hostMsgs }

// DecodeResult summarises one dispatch of a program for a request.
type DecodeResult struct {
	Commands     int64         // channel commands produced
	DecodeCycles timing.Cycles // pipeline-fill latency visible to execution
}

// Decode resolves a request's program against its current token length:
// Dyn-Loop bounds are computed from TCur and rows are translated through
// the VA2PA table. Decode is pipelined with execution, so only the pipeline
// fill (a handful of cycles) is exposed on the critical path.
func (d *Dispatcher) Decode(reqID int) (*DecodeResult, error) {
	st, ok := d.requests[reqID]
	if !ok {
		return nil, fmt.Errorf("dispatch: request %d not registered", reqID)
	}
	p := d.programs[st.Program]
	counts, err := p.CountExpanded(st.TCur)
	if err != nil {
		return nil, fmt.Errorf("dispatch: decoding %q for request %d: %w", st.Program, reqID, err)
	}
	var total int64
	for _, n := range counts {
		total += n
	}
	// Pipelined decode: a 4-stage fetch/resolve/translate/stage pipeline.
	const decodePipelineDepth = 4
	return &DecodeResult{Commands: total, DecodeCycles: decodePipelineDepth}, nil
}

// Translate resolves a virtual row index of a request to a physical row via
// the attached VA2PA table, mirroring Fig. 11a's per-request resolution.
func (d *Dispatcher) Translate(reqID, vrow, rowBytes int) (int, error) {
	if d.va2pa == nil {
		return vrow, nil
	}
	pa, err := d.va2pa.Translate(reqID, int64(vrow)*int64(rowBytes))
	if err != nil {
		return 0, fmt.Errorf("dispatch: %w", err)
	}
	return int(pa / int64(rowBytes)), nil
}
