package dispatch

import (
	"testing"

	"pimphony/internal/isa"
	"pimphony/internal/memory"
	"pimphony/internal/timing"
)

func dpaProgram(name string) *isa.Program {
	return &isa.Program{Name: name, Insts: []isa.Instruction{
		{Op: isa.WRINP, ChMask: isa.AllChannels(16), OpSize: 8},
		{Op: isa.DYNLOOP, Bound: isa.LoopBound{TokensPerIter: 256}, Body: []isa.Instruction{
			{Op: isa.DYNMODI, Target: 0, Field: isa.FieldRow, Stride: 1},
			{Op: isa.MAC, ChMask: isa.AllChannels(16), OpSize: 8},
			{Op: isa.RDOUT, ChMask: isa.AllChannels(16), OpSize: 1},
		}},
	}}
}

// staticProgram unrolls one MAC instruction per 256-token group.
func staticProgram(name string, tokens int) *isa.Program {
	p := &isa.Program{Name: name}
	for g := 0; g < (tokens+255)/256; g++ {
		p.Insts = append(p.Insts,
			isa.Instruction{Op: isa.MAC, ChMask: isa.AllChannels(16), OpSize: 8, Row: g},
			isa.Instruction{Op: isa.RDOUT, ChMask: isa.AllChannels(16), OpSize: 1})
	}
	return p
}

func TestLoadDPAProgramFits(t *testing.T) {
	d := New(timing.AiM16())
	if err := d.LoadProgram(dpaProgram("attn")); err != nil {
		t.Fatal(err)
	}
	if d.BufferUsed() != 5*isa.EncodedBytes {
		t.Errorf("buffer used = %d, want %d", d.BufferUsed(), 5*isa.EncodedBytes)
	}
}

func TestStaticProgramOverflowsAtLongContext(t *testing.T) {
	d := New(timing.AiM16())
	// Static unrolled program for 1M tokens: 2 insts per 256-token group
	// = 8192 insts * 16 B = 128 KiB... push context until overflow.
	if err := d.LoadProgram(staticProgram("short", 32<<10)); err != nil {
		t.Fatalf("32K static program should fit: %v", err)
	}
	if err := d.LoadProgram(staticProgram("long", 4<<20)); err == nil {
		t.Fatal("4M-token static program should overflow the instruction buffer")
	}
}

func TestUnloadFreesSpace(t *testing.T) {
	d := New(timing.AiM16())
	p := staticProgram("p", 32<<10)
	if err := d.LoadProgram(p); err != nil {
		t.Fatal(err)
	}
	used := d.BufferUsed()
	if err := d.UnloadProgram("p"); err != nil {
		t.Fatal(err)
	}
	if d.BufferUsed() != 0 {
		t.Errorf("buffer used after unload = %d (was %d)", d.BufferUsed(), used)
	}
	if err := d.UnloadProgram("p"); err == nil {
		t.Error("double unload should fail")
	}
}

func TestDuplicateLoadRejected(t *testing.T) {
	d := New(timing.AiM16())
	if err := d.LoadProgram(dpaProgram("a")); err != nil {
		t.Fatal(err)
	}
	if err := d.LoadProgram(dpaProgram("a")); err == nil {
		t.Fatal("duplicate program name should be rejected")
	}
}

func TestTokenProgressionWithoutHost(t *testing.T) {
	d := New(timing.AiM16())
	if err := d.LoadProgram(dpaProgram("attn")); err != nil {
		t.Fatal(err)
	}
	if err := d.Register(1, 10000, "attn"); err != nil {
		t.Fatal(err)
	}
	msgs := d.HostMessages()
	for i := 0; i < 100; i++ {
		if err := d.AdvanceToken(1); err != nil {
			t.Fatal(err)
		}
	}
	if d.HostMessages() != msgs {
		t.Error("token progression must not message the host")
	}
	tc, err := d.TCur(1)
	if err != nil || tc != 10100 {
		t.Fatalf("TCur = %d, %v; want 10100", tc, err)
	}
}

func TestDecodeScalesWithTCur(t *testing.T) {
	d := New(timing.AiM16())
	if err := d.LoadProgram(dpaProgram("attn")); err != nil {
		t.Fatal(err)
	}
	if err := d.Register(1, 1024, "attn"); err != nil {
		t.Fatal(err)
	}
	if err := d.Register(2, 65536, "attn"); err != nil {
		t.Fatal(err)
	}
	r1, err := d.Decode(1)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := d.Decode(2)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Commands <= r1.Commands {
		t.Errorf("longer context must decode into more commands: %d vs %d", r1.Commands, r2.Commands)
	}
	if r1.DecodeCycles != r2.DecodeCycles {
		t.Error("pipelined decode latency must be context-independent")
	}
	if r1.DecodeCycles <= 0 || r1.DecodeCycles > 16 {
		t.Errorf("decode pipeline fill %d cycles is implausible", r1.DecodeCycles)
	}
}

func TestRegisterValidation(t *testing.T) {
	d := New(timing.AiM16())
	if err := d.Register(1, 10, "missing"); err == nil {
		t.Error("registering against a missing program should fail")
	}
	if err := d.LoadProgram(dpaProgram("p")); err != nil {
		t.Fatal(err)
	}
	if err := d.Register(1, -1, "p"); err == nil {
		t.Error("negative token length should fail")
	}
	if err := d.Register(1, 10, "p"); err != nil {
		t.Fatal(err)
	}
	if err := d.Register(1, 10, "p"); err == nil {
		t.Error("duplicate registration should fail")
	}
	if err := d.Release(1); err != nil {
		t.Fatal(err)
	}
	if err := d.Release(1); err == nil {
		t.Error("double release should fail")
	}
	if err := d.AdvanceToken(42); err == nil {
		t.Error("advancing an unknown request should fail")
	}
	if _, err := d.TCur(42); err == nil {
		t.Error("TCur of unknown request should fail")
	}
	if _, err := d.Decode(42); err == nil {
		t.Error("decoding an unknown request should fail")
	}
}

func TestTranslateThroughVA2PA(t *testing.T) {
	dev := timing.AiM16()
	d := New(dev)
	alloc, err := memory.NewDPA(1<<30, 128<<10, memory.DefaultChunkBytes)
	if err != nil {
		t.Fatal(err)
	}
	if err := alloc.Admit(5, 24); err != nil { // 3 MiB = 3 chunks
		t.Fatal(err)
	}
	d.AttachVA2PA(alloc)
	rowBytes := dev.RowBytes // 2 KiB: 512 rows per chunk
	// Virtual row 600 lives in virtual chunk 1.
	prow, err := d.Translate(5, 600, rowBytes)
	if err != nil {
		t.Fatal(err)
	}
	chunks := alloc.Chunks(5)
	wantBase := int(chunks[1]) * (memory.DefaultChunkBytes / rowBytes)
	if prow != wantBase+600-512 {
		t.Errorf("translated row = %d, want %d", prow, wantBase+600-512)
	}
	// Without a table, translation is identity.
	d2 := New(dev)
	if r, err := d2.Translate(5, 600, rowBytes); err != nil || r != 600 {
		t.Errorf("identity translation broken: %d, %v", r, err)
	}
	// Beyond the mapped region the translation must fail.
	if _, err := d.Translate(5, 100000, rowBytes); err == nil {
		t.Error("translation beyond mapping should fail")
	}
}
