package mapping

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestHFPAssignsWholeHeads(t *testing.T) {
	reqs := []Request{{ID: 0, Tokens: 4096}, {ID: 1, Tokens: 1024}}
	a, err := HFP{}.Assign(reqs, 2, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	// 2 requests x 2 heads = 4 tiles over 4 channels: one each.
	for ch, ws := range a.Channels {
		if len(ws) != 1 {
			t.Errorf("channel %d has %d works, want 1", ch, len(ws))
		}
	}
	if a.TotalTokens() != 2*(4096+1024) {
		t.Errorf("TotalTokens = %d", a.TotalTokens())
	}
}

func TestHFPImbalanceWithMixedLengths(t *testing.T) {
	reqs := []Request{{ID: 0, Tokens: 32768}, {ID: 1, Tokens: 2048}}
	a, err := HFP{}.Assign(reqs, 2, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	util := a.Utilization()
	if util > 0.6 {
		t.Errorf("HFP with 16:1 length skew should be imbalanced, util=%.2f", util)
	}
}

func TestTCPBalancesMixedLengths(t *testing.T) {
	reqs := []Request{{ID: 0, Tokens: 32768}, {ID: 1, Tokens: 2048}}
	a, err := TCP{}.Assign(reqs, 2, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if util := a.Utilization(); util < 0.99 {
		t.Errorf("TCP should balance evenly-divisible loads, util=%.3f", util)
	}
	if a.ActiveChannels() != 4 {
		t.Errorf("TCP should activate all channels, got %d", a.ActiveChannels())
	}
}

func TestTCPActivatesAllChannelsForSingleRequest(t *testing.T) {
	// The long-context regime: one request fills a channel under HFP.
	reqs := []Request{{ID: 0, Tokens: 100000}}
	h, _ := HFP{}.Assign(reqs, 1, 1, 16)
	c, _ := TCP{}.Assign(reqs, 1, 1, 16)
	if h.ActiveChannels() != 1 {
		t.Errorf("HFP single request/head should use 1 channel, got %d", h.ActiveChannels())
	}
	if c.ActiveChannels() != 16 {
		t.Errorf("TCP should use all 16 channels, got %d", c.ActiveChannels())
	}
}

// Property: both strategies conserve total tokens and never produce
// negative work.
func TestTokenConservationProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(8) + 1
		reqs := make([]Request, n)
		var want int
		for i := range reqs {
			tk := rng.Intn(50000)
			reqs[i] = Request{ID: i, Tokens: tk}
			want += tk
		}
		kvHeads := rng.Intn(8) + 1
		channels := []int{4, 8, 16, 32}[rng.Intn(4)]
		want *= kvHeads
		for _, s := range []Strategy{HFP{}, TCP{}} {
			a, err := s.Assign(reqs, kvHeads, 1, channels)
			if err != nil {
				return false
			}
			if a.TotalTokens() != want {
				return false
			}
			for _, ws := range a.Channels {
				for _, w := range ws {
					if w.Tokens <= 0 {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: TCP utilization is always at least HFP utilization.
func TestTCPUtilizationDominatesHFP(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(6) + 1
		reqs := make([]Request, n)
		for i := range reqs {
			reqs[i] = Request{ID: i, Tokens: rng.Intn(100000) + 1000}
		}
		kvHeads := rng.Intn(4) + 1
		h, err1 := HFP{}.Assign(reqs, kvHeads, 1, 16)
		c, err2 := TCP{}.Assign(reqs, kvHeads, 1, 16)
		if err1 != nil || err2 != nil {
			return false
		}
		return c.Utilization() >= h.Utilization()-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestValidation(t *testing.T) {
	if _, err := (HFP{}).Assign(nil, 1, 1, 0); err == nil {
		t.Error("zero channels should fail")
	}
	if _, err := (TCP{}).Assign(nil, 0, 1, 4); err == nil {
		t.Error("zero heads should fail")
	}
	if _, err := (TCP{}).Assign([]Request{{ID: 0, Tokens: -5}}, 1, 1, 4); err == nil {
		t.Error("negative tokens should fail")
	}
	if _, err := (HFP{}).Assign(nil, 1, 0, 4); err == nil {
		t.Error("zero queries should fail")
	}
}

func TestCriticalLoad(t *testing.T) {
	reqs := []Request{{ID: 0, Tokens: 1600}, {ID: 1, Tokens: 160}}
	a, _ := HFP{}.Assign(reqs, 1, 1, 2)
	max, mean := a.CriticalLoad(func(w Work) float64 { return float64(w.Tokens) })
	if max != 1600 {
		t.Errorf("critical load = %f, want 1600", max)
	}
	if mean != (1600+160)/2.0 {
		t.Errorf("mean load = %f", mean)
	}
}

func TestSVReductionCost(t *testing.T) {
	// 16 channels, dh=128 -> 8 tiles shipped per channel over a 256 B/cyc
	// gather fabric with a 4-cycle hop and single-cycle fold stages.
	c := SVReduction(16, 128, 16, 32, 256, 4, 1)
	if c.TilesPerReduce != 8 {
		t.Errorf("TilesPerReduce = %d, want 8", c.TilesPerReduce)
	}
	if c.GatherCycles != 16*8*32/256+4 {
		t.Errorf("GatherCycles = %d", c.GatherCycles)
	}
	if c.TotalCycles != c.GatherCycles+c.EPUAddCycles {
		t.Error("TotalCycles must be the sum of parts")
	}
	// The paper: aggregation is < 0.2% of attention latency for 7B @ 16K.
	// The reduction must stay in the tens of cycles.
	if c.TotalCycles > 100 {
		t.Errorf("SV reduction cost %d cycles is implausibly large", c.TotalCycles)
	}
}

func TestHFPCapacitySplitsOversizedTiles(t *testing.T) {
	// One request whose head tile is 3.5x a channel's capacity must be
	// force-split across 4 channels.
	reqs := []Request{{ID: 0, Tokens: 3500}}
	a, err := HFP{CapacityTokens: 1000}.Assign(reqs, 1, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	if a.ActiveChannels() != 4 {
		t.Fatalf("want 4 channels for a 3.5x-capacity tile, got %d", a.ActiveChannels())
	}
	if a.TotalTokens() != 3500 {
		t.Fatalf("split must conserve tokens, got %d", a.TotalTokens())
	}
	for _, ws := range a.Channels {
		for _, w := range ws {
			if w.Tokens > 1000 {
				t.Fatalf("split produced oversized tile of %d tokens", w.Tokens)
			}
		}
	}
}

func TestPipelineActivityFig6(t *testing.T) {
	// Two requests, two KV heads, four channels, two pipeline steps.
	// Under PP, HFP activates only the channels of the request in each
	// stage; TCP activates all channels every step.
	reqs := []Request{{ID: 0, Tokens: 8192}, {ID: 1, Tokens: 8192}}
	step := func(s int) []int { return []int{s % 2} }
	h, err := PipelineActivity(HFP{}, reqs, 2, 1, 4, 2, step)
	if err != nil {
		t.Fatal(err)
	}
	c, err := PipelineActivity(TCP{}, reqs, 2, 1, 4, 2, step)
	if err != nil {
		t.Fatal(err)
	}
	if hf, cf := h.ActiveFraction(), c.ActiveFraction(); cf <= hf {
		t.Errorf("TCP active fraction (%.2f) should exceed HFP (%.2f)", cf, hf)
	}
	if c.ActiveFraction() != 1.0 {
		t.Errorf("TCP should fully activate the grid, got %.2f", c.ActiveFraction())
	}
}

func TestStrategyNames(t *testing.T) {
	if (HFP{}).Name() != "hfp" || (TCP{}).Name() != "tcp" {
		t.Fatal("strategy names changed; experiments key on them")
	}
}
