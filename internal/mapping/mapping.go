// Package mapping implements the intra-module workload partitioning
// strategies compared in Sec. IV of the paper: conventional Head-First
// Partitioning (HFP), which assigns whole (request, head) attention tiles
// to individual PIM channels, and PIMphony's Token-Centric Partitioning
// (TCP), which splits the token axis of every head across all channels.
//
// The package is purely combinatorial: it produces per-channel work lists
// and balance metrics; per-work latencies are supplied by the caller (the
// cluster simulator uses internal/perfmodel) so the same assignment logic
// serves both token-count studies and cycle-accurate composition.
package mapping

import (
	"fmt"
)

// Request is one in-flight decode request with its current context length.
type Request struct {
	ID     int
	Tokens int // KV-cache entries currently attended over
}

// Work is one unit of attention work mapped onto a channel: the given
// number of tokens of one KV head of one request. Queries counts the query
// vectors sharing those tokens (GQA group size).
type Work struct {
	Req     int
	KVHead  int
	Tokens  int
	Queries int
}

// Assignment is the per-channel work distribution within one module.
type Assignment struct {
	Strategy string
	Channels [][]Work
}

// Strategy partitions a batch of requests' attention heads over channels.
type Strategy interface {
	Name() string
	// Assign maps every (request, KV head) pair of the batch onto the
	// module's channels. kvHeads is the number of KV heads resident on this
	// module (after tensor parallelism), queries the GQA group size.
	Assign(reqs []Request, kvHeads, queries, channels int) (*Assignment, error)
}

// HFP is the conventional head/batch-first partitioning used by CENT,
// NeuPIMs and AttAcc: each (request, KV head) attention tile — the KV
// cache plus the query head(s) reading it — runs entirely on one channel,
// because a PIM channel can only compute against its own DRAM. Tiles are
// assigned round-robin; under GQA the whole query group stays with its KV.
//
// CapacityTokens, when positive, is the KV capacity of one channel in
// tokens for one head: a tile larger than a channel is force-split across
// ceil(tokens/capacity) channels (how conventional systems cope once a
// single request outgrows a channel, at the cost of extra channels per
// tile).
type HFP struct {
	CapacityTokens int
}

// Name implements Strategy.
func (HFP) Name() string { return "hfp" }

// Assign implements Strategy.
func (s HFP) Assign(reqs []Request, kvHeads, queries, channels int) (*Assignment, error) {
	if err := validate(reqs, kvHeads, queries, channels); err != nil {
		return nil, err
	}
	a := &Assignment{Strategy: "hfp", Channels: make([][]Work, channels)}
	i := 0
	place := func(req, head, tokens int) {
		ch := i % channels
		a.Channels[ch] = append(a.Channels[ch], Work{Req: req, KVHead: head, Tokens: tokens, Queries: queries})
		i++
	}
	for _, r := range reqs {
		for h := 0; h < kvHeads; h++ {
			t := r.Tokens
			if s.CapacityTokens > 0 {
				for t > s.CapacityTokens {
					place(r.ID, h, s.CapacityTokens)
					t -= s.CapacityTokens
				}
			}
			if t > 0 {
				place(r.ID, h, t)
			}
		}
	}
	return a, nil
}

// TCP is PIMphony's token-centric partitioning: the token range of every
// (request, head) pair is sliced evenly across all channels, so every
// channel participates in every head regardless of batch size.
type TCP struct{}

// Name implements Strategy.
func (TCP) Name() string { return "tcp" }

// Assign implements Strategy.
func (TCP) Assign(reqs []Request, kvHeads, queries, channels int) (*Assignment, error) {
	if err := validate(reqs, kvHeads, queries, channels); err != nil {
		return nil, err
	}
	a := &Assignment{Strategy: "tcp", Channels: make([][]Work, channels)}
	for _, r := range reqs {
		for h := 0; h < kvHeads; h++ {
			base := r.Tokens / channels
			rem := r.Tokens % channels
			for ch := 0; ch < channels; ch++ {
				t := base
				if ch < rem {
					t++
				}
				if t == 0 {
					continue
				}
				a.Channels[ch] = append(a.Channels[ch], Work{Req: r.ID, KVHead: h, Tokens: t, Queries: queries})
			}
		}
	}
	return a, nil
}

func validate(reqs []Request, kvHeads, queries, channels int) error {
	if channels <= 0 {
		return fmt.Errorf("mapping: channels must be positive, got %d", channels)
	}
	if kvHeads <= 0 {
		return fmt.Errorf("mapping: kvHeads must be positive, got %d", kvHeads)
	}
	if queries <= 0 {
		return fmt.Errorf("mapping: queries must be positive, got %d", queries)
	}
	for _, r := range reqs {
		if r.Tokens < 0 {
			return fmt.Errorf("mapping: request %d has negative token count %d", r.ID, r.Tokens)
		}
	}
	return nil
}

// TokenLoads returns the total token count per channel (a latency proxy).
func (a *Assignment) TokenLoads() []int {
	loads := make([]int, len(a.Channels))
	for ch, ws := range a.Channels {
		for _, w := range ws {
			loads[ch] += w.Tokens
		}
	}
	return loads
}

// TotalTokens sums all mapped tokens.
func (a *Assignment) TotalTokens() int {
	var t int
	for _, l := range a.TokenLoads() {
		t += l
	}
	return t
}

// Utilization measures channel balance as mean(load)/max(load) over the
// token-count proxy. 1.0 means perfectly balanced; idle channels and
// stragglers both reduce it. An empty assignment has zero utilization.
func (a *Assignment) Utilization() float64 {
	loads := a.TokenLoads()
	var sum, max int
	for _, l := range loads {
		sum += l
		if l > max {
			max = l
		}
	}
	if max == 0 {
		return 0
	}
	return float64(sum) / float64(len(loads)) / float64(max)
}

// ActiveChannels counts channels with any work.
func (a *Assignment) ActiveChannels() int {
	n := 0
	for _, ws := range a.Channels {
		if len(ws) > 0 {
			n++
		}
	}
	return n
}

// CriticalLoad applies a per-work latency function and returns the maximum
// channel latency (the module's attention time) and the mean channel
// latency (for utilization studies).
func (a *Assignment) CriticalLoad(latency func(Work) float64) (max, mean float64) {
	var sum float64
	for _, ws := range a.Channels {
		var l float64
		for _, w := range ws {
			l += latency(w)
		}
		sum += l
		if l > max {
			max = l
		}
	}
	if len(a.Channels) > 0 {
		mean = sum / float64(len(a.Channels))
	}
	return max, mean
}

// ---------------------------------------------------------------------------
// TCP aggregation cost (Sec. IV-C)
// ---------------------------------------------------------------------------

// AggregationCost models the inter-channel combination step TCP requires:
// QK^T results are merely concatenated during the EPU softmax (no extra
// latency), while SV performs one inter-channel reduction per head through
// the HUB GPR: the channels' partial tiles stream over the HUB's parallel
// gather links and the EPU folds them in a pipelined tree.
type AggregationCost struct {
	GatherCycles   int64
	EPUAddCycles   int64
	TotalCycles    int64
	TilesPerReduce int
}

// SVReduction computes the per-head SV aggregation cost for TCP. tileBytes
// and hubBytesPerCycle describe the gather link; hubHop is the one-time
// hop latency and epuAdd the per-stage fold cost.
func SVReduction(channels, dh, elemsPerTile, tileBytes int, hubBytesPerCycle float64, hubHop, epuAdd int64) AggregationCost {
	tiles := (dh + elemsPerTile - 1) / elemsPerTile
	gather := int64(float64(channels*tiles*tileBytes)/hubBytesPerCycle) + hubHop
	add := int64(channels-1+tiles) * epuAdd
	return AggregationCost{
		GatherCycles:   gather,
		EPUAddCycles:   add,
		TotalCycles:    gather + add,
		TilesPerReduce: tiles,
	}
}

// ---------------------------------------------------------------------------
// Fig. 6 style activity grids
// ---------------------------------------------------------------------------

// ActivityGrid is a channels x timesteps boolean activity map used by the
// partitioning visualizer to reproduce the paper's Fig. 6 comparison.
type ActivityGrid struct {
	Strategy string
	Grid     [][]bool // [step][channel]
}

// PipelineActivity builds a schematic activity grid: at each pipeline step,
// the given assignment executes the work of one layer for the requests
// scheduled in that step (HFP activates only the channels owning those
// requests' heads; TCP activates all channels that received token slices).
func PipelineActivity(strategy Strategy, reqs []Request, kvHeads, queries, channels, steps int, reqsAtStep func(step int) []int) (*ActivityGrid, error) {
	g := &ActivityGrid{Strategy: strategy.Name(), Grid: make([][]bool, steps)}
	for s := 0; s < steps; s++ {
		active := reqsAtStep(s)
		set := map[int]bool{}
		for _, id := range active {
			set[id] = true
		}
		var sub []Request
		for _, r := range reqs {
			if set[r.ID] {
				sub = append(sub, r)
			}
		}
		a, err := strategy.Assign(sub, kvHeads, queries, channels)
		if err != nil {
			return nil, err
		}
		row := make([]bool, channels)
		for ch, ws := range a.Channels {
			row[ch] = len(ws) > 0
		}
		g.Grid[s] = row
	}
	return g, nil
}

// ActiveFraction is the fraction of (step, channel) cells that were active.
func (g *ActivityGrid) ActiveFraction() float64 {
	var on, total int
	for _, row := range g.Grid {
		for _, b := range row {
			total++
			if b {
				on++
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(on) / float64(total)
}
