// Package doclint is a documentation gate, not a library: its test
// walks the packages whose exported surface is meant to read as an API
// reference (`go doc pimphony/internal/serve`) and fails when a
// package lacks a package comment or an exported declaration lacks a
// doc comment. Running under `go test` puts it in every CI lane, so
// the godoc surface cannot rot silently.
package doclint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"strings"
	"testing"
)

// lintedPackages are the directories whose exported identifiers must
// all carry doc comments (paths relative to the repository root).
var lintedPackages = []string{
	"../serve",
	"../simtest",
}

// TestExportedDeclsAreDocumented parses every non-test file of the
// linted packages and requires a doc comment on the package clause (at
// least one file per package) and on every exported top-level
// declaration: funcs, methods with exported receivers, types, and
// const/var specs (a comment on the enclosing grouped declaration
// covers its specs, matching godoc's rendering).
func TestExportedDeclsAreDocumented(t *testing.T) {
	for _, dir := range lintedPackages {
		t.Run(filepath.Base(dir), func(t *testing.T) {
			fset := token.NewFileSet()
			pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
				return !strings.HasSuffix(fi.Name(), "_test.go")
			}, parser.ParseComments)
			if err != nil {
				t.Fatal(err)
			}
			for name, pkg := range pkgs {
				hasPkgDoc := false
				for _, f := range pkg.Files {
					if f.Doc != nil {
						hasPkgDoc = true
					}
					for _, decl := range f.Decls {
						lintDecl(t, fset, decl)
					}
				}
				if !hasPkgDoc {
					t.Errorf("package %s has no package doc comment in any file", name)
				}
			}
		})
	}
}

// lintDecl reports every exported identifier introduced by decl that
// godoc would render without a doc comment.
func lintDecl(t *testing.T, fset *token.FileSet, decl ast.Decl) {
	t.Helper()
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if !d.Name.IsExported() || exportedRecv(d) != "" && !ast.IsExported(exportedRecv(d)) {
			return
		}
		if d.Doc == nil {
			t.Errorf("%s: exported %s %s has no doc comment", fset.Position(d.Pos()), funcKind(d), funcName(d))
		}
	case *ast.GenDecl:
		// A doc comment on the grouped declaration documents the whole
		// block in godoc; only undocumented specs inside an
		// undocumented group are findings.
		for _, spec := range d.Specs {
			switch s := spec.(type) {
			case *ast.TypeSpec:
				if s.Name.IsExported() && d.Doc == nil && s.Doc == nil {
					t.Errorf("%s: exported type %s has no doc comment", fset.Position(s.Pos()), s.Name.Name)
				}
			case *ast.ValueSpec:
				if d.Doc != nil || s.Doc != nil {
					continue
				}
				for _, n := range s.Names {
					if n.IsExported() {
						t.Errorf("%s: exported %s %s has no doc comment", fset.Position(s.Pos()), d.Tok, n.Name)
					}
				}
			}
		}
	}
}

// exportedRecv returns the receiver's base type name for methods ("",
// for plain functions).
func exportedRecv(d *ast.FuncDecl) string {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return ""
	}
	typ := d.Recv.List[0].Type
	if star, ok := typ.(*ast.StarExpr); ok {
		typ = star.X
	}
	if id, ok := typ.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

// funcKind labels a finding as a func or a method.
func funcKind(d *ast.FuncDecl) string {
	if d.Recv != nil {
		return "method"
	}
	return "func"
}

// funcName renders Recv.Name for methods, Name for functions.
func funcName(d *ast.FuncDecl) string {
	if r := exportedRecv(d); r != "" {
		return r + "." + d.Name.Name
	}
	return d.Name.Name
}
