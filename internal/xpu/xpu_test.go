package xpu

import (
	"testing"
	"testing/quick"
)

func TestDevicesValidate(t *testing.T) {
	for _, d := range []Device{NeuPIMsNPU(32000), CENTPNM(16000), A100().Device} {
		if err := d.Validate(); err != nil {
			t.Errorf("%s: %v", d.Name, err)
		}
	}
	bad := Device{Name: "bad", TFLOPS: 0, MemGBs: 1, ComputeEff: 1, MemEff: 1}
	if err := bad.Validate(); err == nil {
		t.Error("zero TFLOPS should fail")
	}
	bad2 := Device{Name: "bad2", TFLOPS: 1, MemGBs: 1, ComputeEff: 2, MemEff: 1}
	if err := bad2.Validate(); err == nil {
		t.Error("efficiency > 1 should fail")
	}
}

func TestRooflineRegimes(t *testing.T) {
	d := Device{Name: "t", TFLOPS: 100, MemGBs: 1000, ComputeEff: 1, MemEff: 1}
	// 1 GFLOP on 1 KB: compute-bound (10 us compute vs 1 ns memory).
	if !d.IsComputeBound(1e9, 1024) {
		t.Error("large-FLOP small-byte op should be compute bound")
	}
	// 1 KFLOP on 1 GB: memory-bound.
	if d.IsComputeBound(1024, 1<<30) {
		t.Error("small-FLOP large-byte op should be memory bound")
	}
	// OpTime equals the binding roof.
	if got, want := d.OpTime(1e9, 0), 1e9/1e14; got != want {
		t.Errorf("compute-bound OpTime = %g, want %g", got, want)
	}
	if got, want := d.OpTime(0, 1e12), 1e12/1e12; got != want {
		t.Errorf("memory-bound OpTime = %g, want %g", got, want)
	}
}

// Property: OpTime is monotone in both flops and bytes.
func TestOpTimeMonotone(t *testing.T) {
	d := CENTPNM(16000)
	f := func(a, b uint32) bool {
		f1, b1 := int64(a), int64(b)
		return d.OpTime(f1, b1) <= d.OpTime(f1*2, b1) &&
			d.OpTime(f1, b1) <= d.OpTime(f1, b1*2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGPUDecodeRegime(t *testing.T) {
	g := A100()
	// 16 GiB of KV at ~1.4 TB/s effective: ~12 ms.
	tm := g.AttentionTime(16 << 30)
	if tm < 5e-3 || tm > 30e-3 {
		t.Errorf("16 GiB KV attention time = %g s, outside plausible band", tm)
	}
	// Flash-decoding must not exceed raw bandwidth.
	raw := float64(16<<30) / (g.MemGBs * 1e9)
	if tm < raw {
		t.Error("attention cannot beat raw bandwidth")
	}
}

func TestGPUMaxBatch(t *testing.T) {
	g := A100()
	// 7B weights (14 GiB) + 2 GiB KV per request on 80 GiB: ~29 requests
	// at 90% paging efficiency.
	got := g.MaxBatch(14<<30, 2<<30)
	if got < 25 || got > 32 {
		t.Errorf("MaxBatch = %d, want ~29", got)
	}
	if g.MaxBatch(100<<30, 1<<30) != 0 {
		t.Error("oversized weights should yield zero batch")
	}
	if g.MaxBatch(1<<30, 0) != 0 {
		t.Error("zero KV per request should yield zero batch, not panic")
	}
}

func TestNPUFasterThanPNMOnGEMM(t *testing.T) {
	npu := NeuPIMsNPU(32000)
	pnm := CENTPNM(16000)
	// A fat batched GEMM: NPU's 256 TFLOPS should win over PNM's 3.
	flops, bytes := int64(1e12), int64(1<<30)
	if npu.OpTime(flops, bytes) >= pnm.OpTime(flops, bytes) {
		t.Error("NPU should beat PNM on compute-heavy GEMM")
	}
}

// TestDIMMHostGPU: the DIMM-PIM host engine is A100-class on the
// rooflines but carries no paged-attention/flash-decoding software
// stack (it never touches KV).
func TestDIMMHostGPU(t *testing.T) {
	h := DIMMHostGPU()
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	a := A100()
	if h.TFLOPS != a.TFLOPS || h.MemGBs != a.MemGBs {
		t.Errorf("host rooflines %g/%g diverged from A100 %g/%g", h.TFLOPS, h.MemGBs, a.TFLOPS, a.MemGBs)
	}
	if h.OpTime(1e12, 1e9) <= 0 {
		t.Error("OpTime must be positive")
	}
}
